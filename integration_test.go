package ats

// Cross-module integration tests: each scenario wires several packages
// together the way a downstream system would (sharded ingestion,
// serialization across process boundaries, mixed sketch types over one
// stream) and checks end-to-end statistical behavior.

import (
	"math"
	"testing"

	"ats/internal/estimator"
	"ats/internal/stream"
)

// TestShardedPipelineWithSerialization simulates a distributed ingest:
// four shards each build a coordinated bottom-k sketch over their slice of
// a weighted stream, serialize it, "ship" the bytes to a coordinator that
// deserializes and merges, and the merged estimate must be unbiased — and
// identical to a single-node sketch of the whole stream.
func TestShardedPipelineWithSerialization(t *testing.T) {
	const (
		n      = 8000
		k      = 150
		shards = 4
		seed   = 71
	)
	items := stream.ParetoWeights(n, 1.5, seed)
	truth := 0.0
	for _, it := range items {
		truth += it.Value
	}

	single := NewBottomK(k, seed)
	shardSketches := make([][]byte, shards)
	for s := 0; s < shards; s++ {
		sk := NewBottomK(k, seed)
		for i := s; i < n; i += shards {
			sk.Add(items[i].Key, items[i].Weight, items[i].Value)
		}
		data, err := sk.MarshalBinary()
		if err != nil {
			t.Fatalf("shard %d marshal: %v", s, err)
		}
		shardSketches[s] = data
	}
	for _, it := range items {
		single.Add(it.Key, it.Weight, it.Value)
	}

	merged := NewBottomK(k, seed)
	for s, data := range shardSketches {
		var sk BottomK
		if err := sk.UnmarshalBinary(data); err != nil {
			t.Fatalf("shard %d unmarshal: %v", s, err)
		}
		if err := merged.Merge(&sk); err != nil {
			t.Fatalf("shard %d merge: %v", s, err)
		}
	}

	if merged.Threshold() != single.Threshold() {
		t.Errorf("merged threshold %v != single-node %v", merged.Threshold(), single.Threshold())
	}
	mergedSum, _ := merged.SubsetSum(nil)
	singleSum, _ := single.SubsetSum(nil)
	if math.Abs(mergedSum-singleSum) > 1e-9*singleSum {
		t.Errorf("merged estimate %v != single-node %v", mergedSum, singleSum)
	}
	if rel := math.Abs(mergedSum-truth) / truth; rel > 0.5 {
		t.Errorf("merged estimate %v too far from truth %v", mergedSum, truth)
	}
}

// TestDistinctShardedUnion ships serialized distinct sketches from shards
// with OVERLAPPING key ranges and verifies the three union rules agree
// with the true distinct count within sketch error.
func TestDistinctShardedUnion(t *testing.T) {
	const k, seed = 128, 72
	ranges := [][2]uint64{{0, 40000}, {30000, 70000}, {60000, 90000}}
	var blobs [][]byte
	global := make(map[uint64]struct{})
	for _, r := range ranges {
		sk := NewDistinctSketch(k, seed)
		for u := r[0]; u < r[1]; u++ {
			sk.Add(u)
			global[u] = struct{}{}
		}
		data, err := sk.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, data)
	}
	var sketches []*DistinctSketch
	for _, b := range blobs {
		var sk DistinctSketch
		if err := sk.UnmarshalBinary(b); err != nil {
			t.Fatal(err)
		}
		sketches = append(sketches, &sk)
	}
	truth := float64(len(global))
	for name, est := range map[string]float64{
		"lcs":     UnionEstimateLCS(sketches...),
		"theta":   UnionEstimateTheta(sketches...),
		"bottomk": UnionEstimateBottomK(sketches...),
	} {
		if rel := math.Abs(est-truth) / truth; rel > 0.4 {
			t.Errorf("%s union: %v vs truth %v (rel %v)", name, est, truth, rel)
		}
	}
}

// TestMixedSketchesOneStream runs four different samplers over the SAME
// event stream — as a monitoring agent would — and validates each one's
// answer against ground truth.
func TestMixedSketchesOneStream(t *testing.T) {
	const seed = 73
	py := NewPitmanYor(0.6, seed)
	topk := NewTopKSampler(10, seed+1)
	dist := NewDistinctSketch(256, seed+2)
	win := NewWindowSampler(50, 1.0, seed+3)
	hist := NewHistorySampler(64, seed+4)

	n := 60000
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		x := py.Next()
		counts[x]++
		topk.Add(x)
		dist.Add(x)
		win.Add(x, float64(i)/10000.0) // 10k events per "second"
		// history tracks per-event records, so each event gets a unique key
		hist.Add(uint64(i)+1<<40, 1, 1)
	}

	// Distinct count within sketch error (~1/sqrt(256) ≈ 6%).
	if rel := math.Abs(dist.Estimate()-float64(len(counts))) / float64(len(counts)); rel > 0.25 {
		t.Errorf("distinct estimate %v vs %d", dist.Estimate(), len(counts))
	}
	// Top-k: most of the true top-10 found.
	truth := make(map[uint64]struct{})
	for _, id := range py.TopK(10) {
		truth[id] = struct{}{}
	}
	hits := 0
	for _, e := range topk.TopK() {
		if _, ok := truth[e.Key]; ok {
			hits++
		}
	}
	if hits < 7 {
		t.Errorf("only %d/10 true heavy hitters found", hits)
	}
	// Window: both extraction rules bounded by k and uniform-ish.
	gl, _ := win.GLSample()
	imp, _ := win.ImprovedSample()
	if len(gl) > 50 || len(imp) > 50 {
		t.Error("window samples exceed k")
	}
	if len(imp) < len(gl) {
		t.Error("improved sample should not be smaller than G&L")
	}
	// History: prefix estimate of total appearances at n/2 within noise.
	est := hist.SubsetSumAt(n/2, nil)
	if rel := math.Abs(est-float64(n/2)) / float64(n/2); rel > 0.6 {
		t.Errorf("history prefix estimate %v vs %d", est, n/2)
	}
}

// TestBudgetFeedsAQP uses a budget sampler to select a working set and an
// AQP table over the same stream: the budget sample's HT total and the AQP
// early-stopped total must both track the truth.
func TestBudgetFeedsAQP(t *testing.T) {
	const seed = 74
	rng := NewRNG(seed)
	n := 30000
	keys := make([]uint64, n)
	weights := make([]float64, n)
	values := make([]float64, n)
	sizes := stream.NewSurveySizes(seed)
	truth := 0.0
	bud := NewBudgetSampler(300_000, seed+1)
	for i := 0; i < n; i++ {
		sz := sizes.Next()
		keys[i] = uint64(i)
		weights[i] = float64(sz)
		values[i] = float64(sz)
		truth += float64(sz)
		bud.Add(uint64(i), float64(sz), float64(sz), sz)
		_ = rng
	}
	budSum, _ := bud.SubsetSum(nil)
	if rel := math.Abs(budSum-truth) / truth; rel > 0.2 {
		t.Errorf("budget HT total %v vs %v (rel %v)", budSum, truth, rel)
	}
	table := NewAQPTable(keys, weights, values, seed+2)
	q := table.Query(nil, truth*0.02, 100)
	if rel := math.Abs(q.Sum-truth) / truth; rel > 0.15 {
		t.Errorf("AQP total %v vs %v (rel %v)", q.Sum, truth, rel)
	}
	if q.RowsRead >= n {
		t.Error("AQP did not stop early")
	}
}

// TestCoordinationAcrossSamplerKinds verifies the coordination contract:
// a bottom-k sketch and a weighted distinct sketch with the same seed
// assign every key the same underlying uniform, so their samples agree on
// which low-priority keys exist.
func TestCoordinationAcrossSamplerKinds(t *testing.T) {
	const seed = 75
	a := NewBottomK(64, seed)
	b := NewWeightedDistinctSketch(64, seed)
	for i := uint64(0); i < 5000; i++ {
		a.Add(i, 1, 1)
		b.Add(i, 1)
	}
	// Same k, same seed, same weights: identical thresholds.
	if math.Abs(a.Threshold()-b.Threshold()) > 1e-15 {
		t.Errorf("coordinated sketches disagree on threshold: %v vs %v",
			a.Threshold(), b.Threshold())
	}
	inA := make(map[uint64]struct{})
	for _, e := range a.Sample() {
		inA[e.Key] = struct{}{}
	}
	if len(inA) != 64 {
		t.Fatalf("unexpected sample size %d", len(inA))
	}
	if got := b.DistinctCount(); math.Abs(got-5000) > 5000*0.3 {
		t.Errorf("weighted distinct count %v", got)
	}
}

// TestVarianceEstimateCalibration: across three different samplers, the
// reported variance estimate must match the empirical spread (ratio within
// 25%) — the practical payoff of the substitutability theory.
func TestVarianceEstimateCalibration(t *testing.T) {
	items := stream.ParetoWeights(1500, 1.5, 76)
	truth := 0.0
	for _, it := range items {
		truth += it.Value
	}
	var est, varEst estimator.Running
	for trial := 0; trial < 1200; trial++ {
		sk := NewBottomK(80, uint64(trial)+900)
		for _, it := range items {
			sk.Add(it.Key, it.Weight, it.Value)
		}
		s, v := sk.SubsetSum(nil)
		est.Add(s)
		varEst.Add(v)
	}
	ratio := varEst.Mean() / est.Variance()
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("variance calibration ratio %v, want ≈ 1", ratio)
	}
}
