// Package ats is the public API of the adaptive threshold sampling
// library, a Go implementation of Ting, "Adaptive Threshold Sampling"
// (SIGMOD 2022; arXiv:1708.04970).
//
// Adaptive threshold sampling draws a sample by giving every stream item an
// independent random priority and keeping the items whose priority falls
// below a threshold. The threshold is allowed to adapt to the data — to
// enforce a memory budget, track a sliding window, learn the top-k items,
// and so on — and the paper's substitutability theory guarantees that the
// ordinary fixed-threshold (Poisson sampling) estimators remain unbiased.
//
// The package re-exports the samplers and estimators from the internal
// packages under one import path:
//
//	import "ats"
//
//	sk := ats.NewBottomK(100, 42)
//	for _, it := range items {
//	    sk.Add(it.Key, it.Weight, it.Value)
//	}
//	total, varEst := sk.SubsetSum(nil)
//
// For multi-core ingest, the sharded engine wraps the mergeable sketches
// behind per-shard locks with a batched add path:
//
//	eng := ats.NewShardedBottomK(100, 42, 0) // 0 shards = GOMAXPROCS
//	// any number of goroutines:
//	eng.AddBatch(items)
//	total, varEst := eng.SubsetSum(nil) // collapses shards, then estimates
//
// Sharded bottom-k and distinct sketches collapse to exactly the sketch a
// sequential run would build (priorities are hash-derived); the sharded
// window sampler consumes forked RNG streams, so its sample is
// reproducible for a fixed shard count but differs from a sequential
// run's — both are valid adaptive threshold samples.
//
// # Zero-allocation steady state
//
// Ingest is amortized O(1) per item with no allocation: the hot sketches
// keep their retained items in a flat scratch buffer (internal/keeper)
// that is compacted by quickselect when it fills, instead of paying a
// heap sift (and, for distinct counting, a map lookup) per accepted item.
// Queries have allocation-free variants that reuse caller-owned buffers —
// use them in steady-state loops:
//
//	buf := make([]ats.BottomKEntry, 0, sk.K())
//	var sc ats.Scratch
//	for batch := range batches {
//	    for _, it := range batch {
//	        sk.Add(it.Key, it.Weight, it.Value)
//	    }
//	    buf = sk.AppendSample(buf[:0])          // instead of Sample()
//	    total, _ := sk.SubsetSumInto(nil, &sc)  // instead of SubsetSum(nil)
//	    _ = total
//	}
//
// AppendSample/AppendHashes and SubsetSumInto perform 0 allocs/op once
// the reused buffers have grown to the sample size; see the README's
// Performance section for measured numbers.
//
// See the examples directory for runnable end-to-end programs and
// cmd/atsbench for the harness that regenerates every table and figure of
// the paper ("atsbench perf -json" records machine-readable ingest/query
// throughput).
package ats

import (
	"ats/internal/aqp"
	"ats/internal/bottomk"
	"ats/internal/budget"
	"ats/internal/codec"
	"ats/internal/core"
	"ats/internal/decay"
	"ats/internal/distinct"
	"ats/internal/engine"
	"ats/internal/estimator"
	"ats/internal/groupby"
	"ats/internal/history"
	"ats/internal/mest"
	"ats/internal/multiobj"
	"ats/internal/reservoir"
	"ats/internal/server"
	"ats/internal/store"
	"ats/internal/stratified"
	"ats/internal/stream"
	"ats/internal/topk"
	"ats/internal/varopt"
	"ats/internal/varsize"
	"ats/internal/window"
)

// ---- Core framework ----

// Rule is an adaptive thresholding rule mapping a priority vector to a
// per-item threshold vector; see the core framework for composition and
// recalibration helpers.
type Rule = core.Rule

// Dist is a priority distribution (CDF + quantile).
type Dist = core.Dist

// Uniform01 is the Uniform(0,1) priority distribution.
type Uniform01 = core.Uniform01

// InverseWeight is the priority-sampling distribution R = U/w.
type InverseWeight = core.InverseWeight

// Exponential is the Exponential(rate) priority distribution.
type Exponential = core.Exponential

// FixedRule returns the constant-threshold (Poisson sampling) rule.
func FixedRule(t float64) Rule { return core.FixedRule(t) }

// BottomKRule returns the bottom-k thresholding rule (threshold = (k+1)-th
// smallest priority).
func BottomKRule(k int) Rule { return core.BottomKRule(k) }

// BudgetRule returns the §3.1 variable item-size rule for the given sizes
// and byte budget.
func BudgetRule(sizes []int, budget int) Rule { return core.BudgetRule(sizes, budget) }

// MinRules composes rules by per-item minimum (preserves substitutability).
func MinRules(rules ...Rule) Rule { return core.MinRules(rules...) }

// MaxRules composes rules by per-item maximum (preserves
// 1-substitutability).
func MaxRules(rules ...Rule) Rule { return core.MaxRules(rules...) }

// Recalibrate computes the §2.5 recalibrated thresholds with respect to an
// index set.
func Recalibrate(rule Rule, priorities []float64, lambda []int) []float64 {
	return core.Recalibrate(rule, priorities, lambda)
}

// CheckSubstitutable verifies the substitutability condition on one
// realized priority vector.
func CheckSubstitutable(rule Rule, priorities []float64) bool {
	return core.CheckSubstitutable(rule, priorities)
}

// InclusionProb returns min(1, w*t), the pseudo-inclusion probability of a
// weight-w item under threshold t with R = U/w priorities.
func InclusionProb(w, t float64) float64 { return core.InclusionProb(w, t) }

// ---- Estimators ----

// Sampled is a sampled value with its pseudo-inclusion probability.
type Sampled = estimator.Sampled

// SubsetSum returns the Horvitz-Thompson estimate Σ x_i/P_i.
func SubsetSum(sample []Sampled) float64 { return estimator.SubsetSum(sample) }

// HTVarianceEstimate returns the unbiased variance estimate of the HT sum.
func HTVarianceEstimate(sample []Sampled) float64 { return estimator.HTVarianceEstimate(sample) }

// PairSample is a sampled (X, Y) pair for Kendall's tau estimation.
type PairSample = estimator.PairSample

// KendallTau returns the pseudo-HT estimate of Kendall's tau for a
// population of n items (requires a 2-substitutable threshold).
func KendallTau(sample []PairSample, n int) float64 { return estimator.KendallTau(sample, n) }

// PowerSums accumulates HT power sums for moment estimation (mean,
// variance, skew, kurtosis).
type PowerSums = estimator.PowerSums

// Scratch is a reusable buffer for the zero-allocation SubsetSumInto
// query variants; its zero value is ready to use.
type Scratch = estimator.Scratch

// ---- Samplers ----

// BottomK is a bottom-k / priority sampling sketch.
type BottomK = bottomk.Sketch

// BottomKEntry is one retained item of a BottomK sketch.
type BottomKEntry = bottomk.Entry

// NewBottomK returns a bottom-k sketch with sample size k; sketches
// sharing a seed are coordinated and mergeable.
func NewBottomK(k int, seed uint64) *BottomK { return bottomk.New(k, seed) }

// BudgetSampler keeps the maximal prefix (in priority order) of a stream
// of variable-size items that fits in a byte budget (§3.1).
type BudgetSampler = budget.Sampler

// NewBudgetSampler returns a budget sampler with the given byte budget.
func NewBudgetSampler(bytes int, seed uint64) *BudgetSampler { return budget.New(bytes, seed) }

// WindowSampler is the Gemulla & Lehner sliding-window sketch with both
// the original and the paper's improved extraction thresholds (§3.2).
type WindowSampler = window.Sampler

// NewWindowSampler returns a sliding-window sampler with sample parameter
// k and window length delta.
func NewWindowSampler(k int, delta float64, seed uint64) *WindowSampler {
	return window.New(k, delta, seed)
}

// TopKSampler is the paper's adaptive top-k sampler (§3.3).
type TopKSampler = topk.Sampler

// NewTopKSampler returns an adaptive top-k sampler targeting the k most
// frequent items.
func NewTopKSampler(k int, seed uint64) *TopKSampler { return topk.New(k, seed) }

// FrequentItems is a Misra-Gries-style frequent items sketch
// (DataSketches-like), the baseline of Figure 3.
type FrequentItems = topk.FrequentItems

// NewFrequentItems returns a FrequentItems sketch with the given allocated
// table size.
func NewFrequentItems(maxMapSize int) *FrequentItems { return topk.NewFrequentItems(maxMapSize) }

// SpaceSaving is the classic Space-Saving sketch, a second frequent-items
// baseline.
type SpaceSaving = topk.SpaceSaving

// NewSpaceSaving returns a Space-Saving sketch with m counters.
func NewSpaceSaving(m int) *SpaceSaving { return topk.NewSpaceSaving(m) }

// DistinctSketch is a KMV/bottom-k distinct counting sketch.
type DistinctSketch = distinct.Sketch

// NewDistinctSketch returns a distinct counting sketch of size k.
func NewDistinctSketch(k int, seed uint64) *DistinctSketch { return distinct.NewSketch(k, seed) }

// UnionEstimateTheta estimates the union cardinality with the Theta-sketch
// rule (threshold = min of input thresholds).
func UnionEstimateTheta(sketches ...*DistinctSketch) float64 {
	return distinct.UnionEstimateTheta(sketches...)
}

// UnionEstimateLCS estimates the union cardinality with the paper's
// adaptive-threshold (LCS) rule, which keeps every stored point.
func UnionEstimateLCS(sketches ...*DistinctSketch) float64 {
	return distinct.UnionEstimateLCS(sketches...)
}

// UnionEstimateBottomK estimates the union cardinality with the basic
// bottom-k-of-union rule.
func UnionEstimateBottomK(sketches ...*DistinctSketch) float64 {
	return distinct.UnionEstimateBottomK(sketches...)
}

// JaccardEstimate estimates the Jaccard similarity of the sets summarized
// by two coordinated distinct sketches (the classic bottom-k/MinHash
// resemblance estimator).
func JaccardEstimate(a, b *DistinctSketch) float64 { return distinct.Jaccard(a, b) }

// WeightedDistinctSketch answers both subset-sum and distinct-count
// queries from a single weighted coordinated sample (§3.4).
type WeightedDistinctSketch = distinct.WeightedSketch

// NewWeightedDistinctSketch returns a weighted distinct sketch of size k.
func NewWeightedDistinctSketch(k int, seed uint64) *WeightedDistinctSketch {
	return distinct.NewWeightedSketch(k, seed)
}

// GroupByCounter estimates per-group distinct counts with m dedicated
// sketches plus a shared sample pool (§3.6). Counters sharing (m, k,
// seed) are mergeable, and the canonical binary codec round-trips them
// bit-identically.
type GroupByCounter = groupby.Counter

// GroupEstimate is one group of a GroupByCounter ranking.
type GroupEstimate = groupby.GroupEstimate

// NewGroupByCounter returns a group-by distinct counter with m dedicated
// sketches of size k.
func NewGroupByCounter(m, k int, seed uint64) *GroupByCounter { return groupby.New(m, k, seed) }

// StratifiedItem is a record with one stratum label per dimension for
// multi-stratified sampling (§3.7).
type StratifiedItem = stratified.Item

// StratifiedDesign is a fitted multi-stratified sample.
type StratifiedDesign = stratified.Design

// FitStratified draws a sample that is simultaneously stratified along
// dims dimensions and fits the item budget.
func FitStratified(items []StratifiedItem, dims, budget int, seed uint64) StratifiedDesign {
	return stratified.Fit(items, dims, budget, seed)
}

// StratifiedSampler is the streaming form of §3.7 multi-stratified
// sampling: a budgeted sample that stays stratified along several
// dimensions as the stream flows, with mergeable, bit-identically
// serializable state.
type StratifiedSampler = stratified.Sampler

// StratumStat is one stratum's slice of a StratifiedSampler estimate.
type StratumStat = stratified.StratumStat

// NewStratifiedSampler returns a streaming multi-stratified sampler over
// dims dimensions retaining at most budget items, with per-stratum
// bottom-k parameter k.
func NewStratifiedSampler(budget, k, dims int, seed uint64) *StratifiedSampler {
	return stratified.NewSampler(budget, k, dims, seed)
}

// MultiObjectiveItem is a record with per-objective weights and values
// (§3.8).
type MultiObjectiveItem = multiobj.Item

// MultiObjectiveSketch holds coordinated per-objective bottom-k samples
// over shared uniforms.
type MultiObjectiveSketch = multiobj.Sketch

// NewMultiObjectiveSketch returns a multi-objective sketch with c
// objectives and per-objective sample size k.
func NewMultiObjectiveSketch(k, c int, seed uint64) *MultiObjectiveSketch {
	return multiobj.New(k, c, seed)
}

// VarianceSizedSampler grows its sample until the estimated variance of
// the HT total meets an absolute target (§3.9).
type VarianceSizedSampler = varsize.Sampler

// NewVarianceSizedSampler returns a sampler targeting absolute standard
// error delta with the given oversampling factor (>= 1).
func NewVarianceSizedSampler(delta, overshoot float64, seed uint64) *VarianceSizedSampler {
	return varsize.New(delta, overshoot, seed)
}

// AQPTable is a priority-ordered physical layout supporting early-stopping
// aggregate queries (§3.10).
type AQPTable = aqp.Table

// AQPRow is one stored row of an AQPTable.
type AQPRow = aqp.Row

// NewAQPTable builds a priority-ordered table from parallel key, weight
// and value columns.
func NewAQPTable(keys []uint64, weights, values []float64, seed uint64) *AQPTable {
	return aqp.NewTable(keys, weights, values, seed)
}

// ---- Concurrent sharded engine ----
//
// The engine scales the mergeable sketches to multi-core ingest: keys are
// hash-partitioned across N shards (default GOMAXPROCS), each shard an
// independent sketch behind its own mutex, with a batched AddBatch path
// that amortizes locking. Collapse merges the shards into one sketch for
// estimation; for bottom-k and distinct sketches the collapsed result is
// identical to a sequential run of the same stream, because priorities
// are hash-derived. The sharded window sampler instead forks per-shard
// RNG streams: reproducible for a fixed shard count, but not bit-equal to
// a sequential run (see the package doc of internal/engine).

// Item is one weighted stream record for the engine's batched ingest.
type Item = engine.Item

// ConcurrentSampler is the unified sampler contract the engine shards
// (Add, Sample, Threshold, Merge).
type ConcurrentSampler = engine.Sampler

// ShardedBottomK is a concurrent bottom-k sketch; its Collapse equals the
// sequential sketch of the same stream.
type ShardedBottomK = engine.ShardedBottomK

// NewShardedBottomK returns a sharded bottom-k engine with sample size k;
// shards <= 0 defaults to GOMAXPROCS.
func NewShardedBottomK(k int, seed uint64, shards int) *ShardedBottomK {
	return engine.NewShardedBottomK(k, seed, shards)
}

// ShardedDistinct is a concurrent KMV distinct-counting sketch.
type ShardedDistinct = engine.ShardedDistinct

// NewShardedDistinct returns a sharded distinct-counting engine of sketch
// size k; shards <= 0 defaults to GOMAXPROCS.
func NewShardedDistinct(k int, seed uint64, shards int) *ShardedDistinct {
	return engine.NewShardedDistinct(k, seed, shards)
}

// ShardedWindow is a concurrent sliding-window sampler with forked
// per-shard RNG streams.
type ShardedWindow = engine.ShardedWindow

// NewShardedWindow returns a sharded sliding-window engine with per-shard
// sample parameter k and window length delta; shards <= 0 defaults to
// GOMAXPROCS.
func NewShardedWindow(k int, delta float64, seed uint64, shards int) *ShardedWindow {
	return engine.NewShardedWindow(k, delta, seed, shards)
}

// ShardedTopK is a concurrent top-k/heavy-hitter sketch (Unbiased Space
// Saving per shard, counter-conserving merge on Collapse).
type ShardedTopK = engine.ShardedTopK

// NewShardedTopK returns a sharded top-k engine with m counters per
// shard; shards <= 0 defaults to GOMAXPROCS.
func NewShardedTopK(m int, seed uint64, shards int) *ShardedTopK {
	return engine.NewShardedTopK(m, seed, shards)
}

// ShardedVarOpt is a concurrent VarOpt_k variance-optimal weighted
// sampler with forked per-shard RNG streams.
type ShardedVarOpt = engine.ShardedVarOpt

// NewShardedVarOpt returns a sharded VarOpt engine with sample size k;
// shards <= 0 defaults to GOMAXPROCS.
func NewShardedVarOpt(k int, seed uint64, shards int) *ShardedVarOpt {
	return engine.NewShardedVarOpt(k, seed, shards)
}

// ShardedDecayed is a concurrent exponentially time-decayed sampler;
// priorities are hash-coordinated, so its Collapse equals a sequential
// run over the same arrivals.
type ShardedDecayed = engine.ShardedDecayed

// NewShardedDecayed returns a sharded time-decayed engine keeping k
// items per shard under decay rate lambda; shards <= 0 defaults to
// GOMAXPROCS.
func NewShardedDecayed(k int, lambda float64, seed uint64, shards int) *ShardedDecayed {
	return engine.NewShardedDecayed(k, lambda, seed, shards)
}

// ShardedGroupBy is a concurrent grouped distinct counter (§3.6);
// priorities are hash-coordinated, so its Collapse is a deterministic
// function of the shard states.
type ShardedGroupBy = engine.ShardedGroupBy

// NewShardedGroupBy returns a sharded grouped distinct counter with m
// dedicated sketches of size k per shard; shards <= 0 defaults to
// GOMAXPROCS.
func NewShardedGroupBy(m, k int, seed uint64, shards int) *ShardedGroupBy {
	return engine.NewShardedGroupBy(m, k, seed, shards)
}

// ShardedStratified is a concurrent budgeted multi-stratified sampler
// (§3.7); priorities are hash-coordinated, so its Collapse is a
// deterministic function of the shard states.
type ShardedStratified = engine.ShardedStratified

// NewShardedStratified returns a sharded multi-stratified engine over
// dims dimensions with item budget and per-stratum bottom-k parameter k
// per shard; shards <= 0 defaults to GOMAXPROCS.
func NewShardedStratified(budget, k, dims int, seed uint64, shards int) *ShardedStratified {
	return engine.NewShardedStratified(budget, k, dims, seed, shards)
}

// ---- Multi-tenant time-bucketed store and serving layer ----
//
// The store owns many named sketches, keyed by (namespace, metric), each
// a ring of time buckets: ingest goes to the current bucket's sharded
// engine, rotation seals buckets by collapsing them to one sketch, and
// range queries merge the covered buckets — exact for bottom-k and
// distinct sketches because merges depend only on the (key, priority)
// multiset. Snapshot/Restore persist the whole keyspace through the
// universal codec registry. cmd/atsd serves the store over HTTP.

// Store is a concurrent, multi-tenant, time-bucketed sketch store.
type Store = store.Store

// StoreConfig parameterizes a Store (kind, k, seed, bucket width,
// retention, shards, LRU key bound, clock).
type StoreConfig = store.Config

// StoreKey identifies one sketch series: namespace + metric.
type StoreKey = store.Key

// StoreStats is a snapshot of the store's counters and gauges.
type StoreStats = store.Stats

// StoreResult is the answer to a store range query.
type StoreResult = store.Result

// StoreTopKItem is one ranked entry of a top-k store query result.
type StoreTopKItem = store.TopKItem

// StoreGroupResult is one ranked entry of a grouped distinct-count store
// query result.
type StoreGroupResult = store.GroupResult

// StoreStratumResult is the per-stratum slice of a stratified store
// query result.
type StoreStratumResult = store.StratumResult

// SketchKind selects the sketch type of one store series. Every key
// carries its own kind, fixed at first write; a store serves the whole
// family at once.
type SketchKind = store.Kind

// Store sketch kinds.
const (
	KindBottomK    SketchKind = store.BottomK
	KindDistinct   SketchKind = store.Distinct
	KindWindow     SketchKind = store.Window
	KindTopK       SketchKind = store.TopK
	KindVarOpt     SketchKind = store.VarOpt
	KindDecay      SketchKind = store.Decay
	KindGroupBy    SketchKind = store.GroupBy
	KindStratified SketchKind = store.Stratified
)

// ErrSketchKindMismatch reports store ingest into an existing key under
// a different sketch kind than the key was created with.
var ErrSketchKindMismatch = store.ErrKindMismatch

// NewStore returns an empty store with cfg's zero fields defaulted.
func NewStore(cfg StoreConfig) *Store { return store.New(cfg) }

// NewTopKStore returns a store whose default kind is top-k/heavy-hitter
// counting (cfg.K counters per bucket).
func NewTopKStore(cfg StoreConfig) *Store { cfg.Kind = store.TopK; return store.New(cfg) }

// NewVarOptStore returns a store whose default kind is VarOpt_k weighted
// sampling.
func NewVarOptStore(cfg StoreConfig) *Store { cfg.Kind = store.VarOpt; return store.New(cfg) }

// NewDecayStore returns a store whose default kind is exponentially
// time-decayed sampling (rate cfg.DecayLambda).
func NewDecayStore(cfg StoreConfig) *Store { cfg.Kind = store.Decay; return store.New(cfg) }

// ParseSketchKind parses "bottomk", "distinct", "window", "topk",
// "varopt", "decay", "groupby" or "stratified".
func ParseSketchKind(s string) (SketchKind, error) { return store.ParseKind(s) }

// SketchKinds lists every sketch kind a store can serve.
func SketchKinds() []SketchKind { return store.Kinds() }

// StoreServer is the HTTP serving layer over a Store (the atsd daemon's
// handler; see cmd/atsd).
type StoreServer = server.Server

// NewStoreServer returns the atsd HTTP layer over st; snapshotPath, when
// non-empty, is where POST /v1/snapshot persists the keyspace.
func NewStoreServer(st *Store, snapshotPath string) *StoreServer {
	return server.New(st, snapshotPath)
}

// EncodeSketch wraps a sketch in a self-describing binary envelope using
// the universal codec registry; bottom-k, distinct, sliding-window,
// top-k (unbiased space-saving), varopt, time-decayed, grouped
// distinct-count and multi-stratified sketches are supported out of the
// box.
func EncodeSketch(v any) ([]byte, error) { return codec.Encode(v) }

// DecodeSketch decodes an EncodeSketch envelope, returning the codec
// name ("bottomk", "distinct", "window", "topk", "varopt", "decay",
// "groupby", "stratified") and the decoded sketch.
func DecodeSketch(data []byte) (name string, sketch any, err error) {
	return codec.Unmarshal(data)
}

// ---- Workloads (exposed for examples and downstream benchmarking) ----

// RNG is a deterministic xoshiro256** generator.
type RNG = stream.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return stream.NewRNG(seed) }

// PitmanYor is the Pitman-Yor(1, beta) preferential attachment stream used
// by the top-k experiment.
type PitmanYor = stream.PitmanYor

// NewPitmanYor returns a Pitman-Yor(1, beta) stream generator.
func NewPitmanYor(beta float64, seed uint64) *PitmanYor { return stream.NewPitmanYor(beta, seed) }

// HashU01 maps a key to a uniform (0,1) priority, coordinated by seed.
func HashU01(key, seed uint64) float64 { return stream.HashU01(key, seed) }

// ---- Baselines and extensions ----

// VarOpt is the variance-optimal fixed-size weighted sampler of Cohen et
// al. (SODA 2009), the strong baseline referenced in §1.1.
type VarOpt = varopt.Sketch

// VarOptEntry is one retained item of a VarOpt sketch.
type VarOptEntry = varopt.Entry

// NewVarOpt returns an empty VarOpt_k sketch.
func NewVarOpt(k int, seed uint64) *VarOpt { return varopt.New(k, seed) }

// HistorySampler archives every item that was ever in a bottom-k sketch,
// enabling unbiased aggregates over any prefix window [0, t] (§2.7).
type HistorySampler = history.Sampler

// HistoryEntry is one archived item of a HistorySampler.
type HistoryEntry = history.Entry

// NewHistorySampler returns a history sampler with sketch size k.
func NewHistorySampler(k int, seed uint64) *HistorySampler { return history.New(k, seed) }

// DecaySampler maintains a bottom-k sample under exponential time decay
// using the priority-threshold duality of §2.9.
type DecaySampler = decay.Sampler

// DecayEntry is one retained item of a DecaySampler.
type DecayEntry = decay.Entry

// NewDecaySampler returns a time-decayed sampler keeping k items with
// decay rate lambda per unit time.
func NewDecaySampler(k int, lambda float64, seed uint64) *DecaySampler {
	return decay.New(k, lambda, seed)
}

// MPoint is a sampled observation for M-estimation (value + inclusion
// probability).
type MPoint = mest.Point

// WeightedMean returns the HT-weighted mean of a sample (§4 M-estimation).
func WeightedMean(points []MPoint) float64 { return mest.Mean(points) }

// WeightedQuantile returns the HT-weighted q-quantile of a sample.
func WeightedQuantile(points []MPoint, q float64) float64 { return mest.Quantile(points, q) }

// UnbiasedVariance returns the pseudo-HT U-statistic estimate of the
// population variance (divisor n-1) from a 2-substitutable sample
// (§2.6.2).
func UnbiasedVariance(sample []Sampled, n int) float64 {
	return estimator.UnbiasedVariance(sample, n)
}

// UnbiasedThirdMoment returns the pseudo-HT degree-3 U-statistic (Fisher's
// k3) from a 3-substitutable sample.
func UnbiasedThirdMoment(sample []Sampled, n int) float64 {
	return estimator.UnbiasedThirdMoment(sample, n)
}

// KendallTauExact computes Kendall's tau over a full population (test and
// example baseline).
func KendallTauExact(xs, ys []float64) float64 { return estimator.KendallTauExact(xs, ys) }

// KendallTauVariance returns the unbiased pseudo-HT variance estimate for
// the KendallTau estimator (requires a 4-substitutable threshold).
func KendallTauVariance(sample []PairSample, n int) float64 {
	return estimator.KendallTauVariance(sample, n)
}

// WeightedReservoir is Efraimidis-Spirakis weighted reservoir sampling —
// exactly bottom-k adaptive threshold sampling with Exponential(w)
// priorities (cited as [13] in the paper; see Theorem 12).
type WeightedReservoir = reservoir.Sketch

// WeightedReservoirEntry is one retained item of a WeightedReservoir.
type WeightedReservoirEntry = reservoir.Entry

// NewWeightedReservoir returns an empty Efraimidis-Spirakis reservoir of
// size k.
func NewWeightedReservoir(k int, seed uint64) *WeightedReservoir { return reservoir.New(k, seed) }

// UnbiasedSpaceSaving is the Unbiased Space Saving sketch of [30]
// (Ting, SIGMOD 2018) — §3.3 describes the adaptive top-k sampler as its
// thresholding-based variation.
type UnbiasedSpaceSaving = topk.UnbiasedSpaceSaving

// NewUnbiasedSpaceSaving returns an Unbiased Space Saving sketch with m
// counters.
func NewUnbiasedSpaceSaving(m int, seed uint64) *UnbiasedSpaceSaving {
	return topk.NewUnbiasedSpaceSaving(m, seed)
}
