module ats

go 1.22
