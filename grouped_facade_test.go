package ats_test

import (
	"math"
	"testing"
	"time"

	"ats"
)

// TestGroupedFacades drives the grouped and stratified sharded engines
// and the grouped store queries purely through the public API.
func TestGroupedFacades(t *testing.T) {
	// Sharded group-by: group g owns 100*(g+1) distinct keys.
	gb := ats.NewShardedGroupBy(8, 64, 1, 4)
	exact := map[uint64]float64{}
	for g := uint64(0); g < 6; g++ {
		n := 100 * (int(g) + 1)
		for i := 0; i < 3*n; i++ { // every key three times: distinct counting
			gb.Observe(g, g<<32|uint64(i%n))
		}
		exact[g] = float64(n)
	}
	for g, want := range exact {
		if got := gb.Estimate(g); math.Abs(got-want)/want > 0.3 {
			t.Errorf("group %d estimate %v vs exact %v", g, got, want)
		}
	}
	ranking := gb.GroupEstimates(3)
	if len(ranking) != 3 || ranking[0].Group != 5 {
		t.Errorf("ranking %+v, want group 5 on top", ranking)
	}

	// Sharded stratified: two dimensions, exact totals known.
	st := ats.NewShardedStratified(300, 64, 2, 2, 4)
	rng := ats.NewRNG(5)
	exactTotal := 0.0
	items := make([]ats.Item, 20000)
	for i := range items {
		v := 1 + 9*rng.Float64()
		exactTotal += v
		items[i] = ats.Item{
			Key:    uint64(i)*2862933555777941757 + 1,
			Value:  v,
			Strata: []uint32{uint32(i % 5), uint32(i % 3)},
		}
	}
	st.AddBatch(items)
	sum, varEst := st.SubsetSum(nil)
	if math.Abs(sum-exactTotal)/exactTotal > 0.2 {
		t.Errorf("stratified sum %v vs exact %v", sum, exactTotal)
	}
	if varEst < 0 {
		t.Errorf("negative variance estimate %v", varEst)
	}
	if got := len(st.StratumStats(0)); got != 5 {
		t.Errorf("dimension 0 has %d strata, want 5", got)
	}

	// The streaming stratified sampler stands alone too.
	ss := ats.NewStratifiedSampler(100, 32, 2, 7)
	for i := 0; i < 5000; i++ {
		ss.Add(uint64(i)*0x9e3779b97f4a7c15+1, []uint32{uint32(i % 4), uint32(i % 3)}, 1)
	}
	if ss.Len() > 100 {
		t.Errorf("streaming sampler holds %d items over budget 100", ss.Len())
	}

	// Codec surface covers the new sketches.
	for _, v := range []any{gb.Collapse(), st.Collapse()} {
		data, err := ats.EncodeSketch(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ats.DecodeSketch(data); err != nil {
			t.Fatal(err)
		}
	}

	// Mixed-kind store: groupby and stratified series side by side,
	// queried through the grouped surface.
	now := time.Unix(1_700_000_000, 0)
	sto := ats.NewStore(ats.StoreConfig{
		K: 256, GroupM: 8, StratumK: 32, StratifiedDims: 2, Seed: 9,
		BucketWidth: time.Minute, Retention: 10,
		Now: func() time.Time { return now },
	})
	var gItems, sItems []ats.Item
	for i := 0; i < 8000; i++ {
		gItems = append(gItems, ats.Item{Key: uint64(i % 900), Group: uint64(i % 4)})
		sItems = append(sItems, ats.Item{Key: uint64(i)*6364136223846793005 + 1, Value: 1,
			Strata: []uint32{uint32(i % 3), uint32(i % 2)}})
	}
	if err := sto.AddBatchKind("ns", "g", ats.KindGroupBy, gItems); err != nil {
		t.Fatal(err)
	}
	if err := sto.AddBatchKind("ns", "s", ats.KindStratified, sItems); err != nil {
		t.Fatal(err)
	}
	gRes, err := sto.Query("ns", "g", time.Unix(0, 0), now)
	if err != nil {
		t.Fatal(err)
	}
	if gRes.Kind != ats.KindGroupBy.String() || len(gRes.Groups) != 4 {
		t.Errorf("groupby store result %+v", gRes)
	}
	sRes, err := sto.QueryGrouped("ns", "s", time.Unix(0, 0), now, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sRes.Kind != ats.KindStratified.String() || len(sRes.Strata) != 2 || sRes.StratumDim == nil || *sRes.StratumDim != 1 {
		t.Errorf("stratified store result %+v", sRes)
	}
}
