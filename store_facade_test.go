package ats_test

import (
	"bytes"
	"testing"
	"time"

	"ats"
)

// TestStoreFacade drives the store, serving handler and codec surface
// through the public API only.
func TestStoreFacade(t *testing.T) {
	st := ats.NewStore(ats.StoreConfig{Kind: ats.KindBottomK, K: 512, Seed: 4, BucketWidth: time.Minute})
	exact := 0.0
	for i := 0; i < 20_000; i++ {
		w := 1 + float64(i%13)
		st.Add("tenant", "metric", uint64(i), w, w)
		exact += w
	}
	res, err := st.Query("tenant", "metric", time.Unix(0, 0), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.Sum/exact - 1; rel > 0.2 || rel < -0.2 {
		t.Fatalf("estimate %v far from exact %v", res.Sum, exact)
	}
	if len(st.Keys()) != 1 || st.Stats().Adds != 20_000 {
		t.Fatalf("keys %v stats %+v", st.Keys(), st.Stats())
	}

	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := ats.NewStore(ats.StoreConfig{Kind: ats.KindBottomK, K: 512, Seed: 4, BucketWidth: time.Minute})
	if err := st2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	res2, err := st2.Query("tenant", "metric", time.Unix(0, 0), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Sum != res.Sum || res2.Threshold != res.Threshold {
		t.Fatalf("restored %+v != original %+v", res2, res)
	}

	if _, err := ats.ParseSketchKind("distinct"); err != nil {
		t.Fatal(err)
	}
	if srv := ats.NewStoreServer(st, ""); srv.Handler() == nil {
		t.Fatal("nil handler")
	}
}

func TestSketchCodecFacade(t *testing.T) {
	sk := ats.NewDistinctSketch(64, 9)
	for i := 0; i < 10_000; i++ {
		sk.Add(uint64(i % 3000))
	}
	env, err := ats.EncodeSketch(sk)
	if err != nil {
		t.Fatal(err)
	}
	name, v, err := ats.DecodeSketch(env)
	if err != nil {
		t.Fatal(err)
	}
	if name != "distinct" {
		t.Fatalf("codec name %q", name)
	}
	got, ok := v.(*ats.DistinctSketch)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if got.Estimate() != sk.Estimate() {
		t.Fatalf("estimate %v != %v", got.Estimate(), sk.Estimate())
	}
}
