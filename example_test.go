package ats_test

import (
	"fmt"

	"ats"
)

// ExampleNewBottomK draws a weighted sample and estimates a subset sum
// with the plain Horvitz-Thompson estimator — unbiased because the
// bottom-k threshold is substitutable.
func ExampleNewBottomK() {
	sk := ats.NewBottomK(100, 1)
	for i := 0; i < 10000; i++ {
		w := 1.0 + float64(i%5)
		sk.Add(uint64(i), w, w)
	}
	sum, _ := sk.SubsetSum(nil)
	fmt.Printf("sample %d of %d items; estimate within 20%%: %v\n",
		len(sk.Sample()), sk.N(), sum > 24000 && sum < 36000)
	// Output: sample 100 of 10000 items; estimate within 20%: true
}

// ExampleNewTopKSampler finds heavy hitters without pre-sizing a sketch.
func ExampleNewTopKSampler() {
	s := ats.NewTopKSampler(3, 2)
	for i := 0; i < 1000; i++ {
		s.Add(uint64(i % 7)) // items 0..6, equally frequent
		s.Add(42)            // plus one dominant item
	}
	fmt.Println("top item:", s.TopK()[0].Key)
	// Output: top item: 42
}

// ExampleUnionEstimateLCS merges coordinated distinct sketches with the
// paper's adaptive-threshold rule, which keeps every stored point.
func ExampleUnionEstimateLCS() {
	a := ats.NewDistinctSketch(64, 3)
	b := ats.NewDistinctSketch(64, 3)
	for i := 0; i < 300; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i + 200)) // overlap 200..299
	}
	est := ats.UnionEstimateLCS(a, b)
	fmt.Printf("union estimate near 400: %v\n", est > 320 && est < 480)
	// Output: union estimate near 400: true
}

// ExampleCheckSubstitutable verifies a thresholding rule against the
// paper's substitutability condition before trusting fixed-threshold
// estimators with it.
func ExampleCheckSubstitutable() {
	rng := ats.NewRNG(4)
	priorities := make([]float64, 50)
	for i := range priorities {
		priorities[i] = rng.Float64()
	}
	rule := ats.MinRules(ats.BottomKRule(10), ats.FixedRule(0.5))
	fmt.Println("substitutable:", ats.CheckSubstitutable(rule, priorities))
	// Output: substitutable: true
}

// ExampleNewBudgetSampler keeps as many smallest-priority items as fit a
// byte budget (§3.1), instead of a conservative fixed k.
func ExampleNewBudgetSampler() {
	s := ats.NewBudgetSampler(1000, 5)
	for i := 0; i < 500; i++ {
		size := 50 + (i%3)*100 // sizes 50, 150, 250
		s.Add(uint64(i), 1, float64(size), size)
	}
	fmt.Printf("bytes used <= budget: %v, items: %v\n",
		s.UsedBytes() <= 1000, s.Len() > 3)
	// Output: bytes used <= budget: true, items: true
}
