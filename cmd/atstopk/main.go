// Command atstopk maintains an adaptive top-k sample over a stream of
// whitespace-separated tokens from stdin and prints the top-k items with
// their unbiased count estimates.
//
// Usage:
//
//	generate-logs | atstopk -k 10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ats/internal/stream"
	"ats/internal/topk"
)

func main() {
	k := flag.Int("k", 10, "number of top items to report")
	seed := flag.Uint64("seed", 1, "priority seed")
	flag.Parse()

	sampler := topk.New(*k, *seed)
	// Remember one representative string per hashed key for display.
	names := make(map[uint64]string)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		tok := sc.Text()
		key := stream.HashString(tok, 0)
		sampler.Add(key)
		if _, ok := names[key]; !ok {
			names[key] = tok
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "atstopk: read error:", err)
		os.Exit(1)
	}

	fmt.Printf("processed %d tokens, tracking %d items (threshold %.6f)\n",
		sampler.N(), sampler.Len(), sampler.Threshold())
	for i, e := range sampler.TopK() {
		fmt.Printf("%2d. %-30s est. count %.1f\n", i+1, names[e.Key], e.Estimate())
	}
}
