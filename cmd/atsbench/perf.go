package main

// The perf subcommand is the machine-readable performance harness: it
// measures steady-state ingest and query cost per sketch and stream shape
// with testing.Benchmark and writes the numbers (ns/op, MB/s, allocs/op,
// items/s) as JSON so the perf trajectory is recorded and comparable
// PR-over-PR (BENCH_<n>.json at the repo root, uploaded as a CI
// artifact by the bench-smoke job).
//
//	atsbench perf [-json] [-out BENCH_3.json] [-quick]
//	atsbench -json -quick            // shorthand: flags imply perf

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"ats/internal/bench"
	"ats/internal/bottomk"
	"ats/internal/budget"
	"ats/internal/decay"
	"ats/internal/distinct"
	"ats/internal/engine"
	"ats/internal/estimator"
	"ats/internal/obs"
	"ats/internal/store"
	"ats/internal/stream"
	"ats/internal/topk"
	"ats/internal/varopt"
	"ats/internal/window"
	"ats/internal/wire"
)

// perfPR is the sequence number stamped into the default output name.
const perfPR = 10

type perfCase struct {
	sketch, op, shape string
	itemBytes         int64
	quick             bool // included in -quick runs
	bench             func(b *testing.B)
}

const itemBytes = 24 // key + weight + value
const keyBytes = 8

func perfCases() []perfCase {
	return []perfCase{
		{"bottomk", "add", "zipf", itemBytes, true, func(b *testing.B) {
			items := perfItems()
			sk := bottomk.New(256, 42)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it := items[i&(len(items)-1)]
				sk.Add(it.Key, it.Weight, it.Value)
			}
		}},
		{"bottomk", "add", "accepted", itemBytes, true, func(b *testing.B) {
			// Strictly decreasing priorities: every item enters the
			// sketch — the amortized-compaction worst case.
			sk := bottomk.New(256, 42)
			b.ResetTimer()
			b.ReportAllocs()
			p := 1e18
			for i := 0; i < b.N; i++ {
				p *= 0.999999
				sk.AddWithPriority(bottomk.Entry{Key: uint64(i), Weight: 1, Value: 1, Priority: p})
			}
		}},
		{"bottomk", "appendsample", "steady", 0, true, func(b *testing.B) {
			sk := bottomk.New(256, 42)
			for _, it := range perfItems() {
				sk.Add(it.Key, it.Weight, it.Value)
			}
			buf := make([]bottomk.Entry, 0, sk.K())
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = sk.AppendSample(buf[:0])
			}
		}},
		{"bottomk", "subsetsuminto", "steady", 0, true, func(b *testing.B) {
			sk := bottomk.New(256, 42)
			for _, it := range perfItems() {
				sk.Add(it.Key, it.Weight, it.Value)
			}
			var sc estimator.Scratch
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if s, _ := sk.SubsetSumInto(nil, &sc); s <= 0 {
					b.Fatal("bad estimate")
				}
			}
		}},
		{"distinct", "add", "unique", keyBytes, true, func(b *testing.B) {
			sk := distinct.NewSketch(256, 7)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk.Add(uint64(i) * 0x9e3779b97f4a7c15)
			}
		}},
		{"distinct", "add", "zipf", keyBytes, true, func(b *testing.B) {
			keys := perfZipfKeys()
			sk := distinct.NewSketch(256, 7)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk.Add(keys[i&(len(keys)-1)])
			}
		}},
		{"distinct", "add", "dupflood", keyBytes, true, func(b *testing.B) {
			sk := distinct.NewSketch(256, 7)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk.Add(uint64(i) % 200)
			}
		}},
		{"budget", "add", "uniform", itemBytes + 8, false, func(b *testing.B) {
			rng := stream.NewRNG(3)
			sizes := make([]int, 1<<16)
			for i := range sizes {
				sizes[i] = 16 + rng.Intn(64)
			}
			s := budget.New(1<<12, 2)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Add(uint64(i), 1, 1, sizes[i&(1<<16-1)])
			}
		}},
		{"window", "add", "steady", itemBytes, true, func(b *testing.B) {
			w := window.New(100, 1, 3)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Add(uint64(i), float64(i)*0.001) // 1000 items per window
			}
		}},
		{"varopt", "add", "uniform", itemBytes, true, func(b *testing.B) {
			rng := stream.NewRNG(13)
			ws := make([]float64, 1<<16)
			for i := range ws {
				ws[i] = rng.Open01() * 10
			}
			s := varopt.New(256, 12)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Add(uint64(i), ws[i&(1<<16-1)], 1)
			}
		}},
		{"sharded-bottomk", "addbatch", "zipf", itemBytes, true, func(b *testing.B) {
			items := perfItems()
			eng := engine.NewShardedBottomK(256, 71, 0)
			const batch = 512
			b.ResetTimer()
			b.ReportAllocs()
			for done := 0; done < b.N; {
				m := batch
				if m > b.N-done {
					m = b.N - done
				}
				lo := done & (len(items) - 1)
				hi := lo + m
				if hi > len(items) {
					hi = len(items)
					m = hi - lo
				}
				eng.AddBatch(items[lo:hi])
				done += m
			}
		}},
		{"sharded-bottomk", "addbatch-parallel", "zipf", itemBytes, true, func(b *testing.B) {
			items := perfItems()
			eng := engine.NewShardedBottomK(256, 71, 0)
			g := runtime.GOMAXPROCS(0)
			const batch = 512
			b.ResetTimer()
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N / g
			for w := 0; w < g; w++ {
				n := per
				if w == g-1 {
					n = b.N - per*(g-1)
				}
				wg.Add(1)
				go func(off, n int) {
					defer wg.Done()
					for done := 0; done < n; {
						m := batch
						if m > n-done {
							m = n - done
						}
						lo := (off + done) & (len(items) - 1)
						hi := lo + m
						if hi > len(items) {
							hi = len(items)
							m = hi - lo
						}
						eng.AddBatch(items[lo:hi])
						done += m
					}
				}(w*per, n)
			}
			wg.Wait()
		}},
		{"store", "addbatch", "1k-namespaces", itemBytes, true, func(b *testing.B) {
			// The serving subsystem's hot path: keyed ingest fanned out
			// across 1000 namespaces with the synthetic clock driving
			// bucket rotation (one rotation per key per bucket width).
			benchStoreNamespaces(b, newNamespacesStore())
		}},
		{"store", "addbatch", "1k-namespaces-observed", itemBytes, true, func(b *testing.B) {
			// The same workload with the metrics registry attached: the
			// pair bounds the ingest-path cost of instrumentation, gated
			// by `atsbench compare -max-overhead`.
			st := newNamespacesStore()
			st.Instrument(obs.NewRegistry(), nil, 0)
			benchStoreNamespaces(b, st)
		}},
		{"obs", "observe", "histogram", 0, true, func(b *testing.B) {
			h := obs.NewRegistry().Histogram("bench_observe_seconds", "bench fixture")
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.ObserveValue(int64(i)&0xffff + 1)
			}
		}},
		{"store", "query", "8-buckets", 0, true, func(b *testing.B) {
			// Cold row of the plan-cache warm/cold pair: the cache is
			// disabled so every iteration re-collapses the eight sealed
			// buckets the range covers. (Before the plan cache this row
			// merged seven sealed buckets plus the live one; the sealed
			// shape is what the warm twin is measured against.)
			st := benchStoreEightBuckets(b, store.BottomK, -1, true)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Query("tenant", "bytes", epochBench, sealedEightEnd)
				if err != nil || res.Sum <= 0 || res.Buckets != 8 {
					b.Fatalf("bad query: %+v, %v", res, err)
				}
			}
		}},
		{"store", "query", "8-buckets-warm", 0, true, func(b *testing.B) {
			// Warm twin: plan cache on, one warm-up query, then repeated
			// queries decode the cached merged prefix instead of
			// re-collapsing the eight sealed buckets. Gated against the
			// cold row by `atsbench compare -max-warm-ratio`.
			st := benchStoreEightBuckets(b, store.BottomK, 0, true)
			if res, err := st.Query("tenant", "bytes", epochBench, sealedEightEnd); err != nil || res.Planned {
				b.Fatalf("warm-up query: %+v, %v", res, err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Query("tenant", "bytes", epochBench, sealedEightEnd)
				if err != nil || res.Sum <= 0 || res.Buckets != 8 || !res.Planned {
					b.Fatalf("bad warm query: %+v, %v", res, err)
				}
			}
		}},
		{"topk-uss", "add", "zipf", keyBytes, true, func(b *testing.B) {
			keys := perfZipfKeys()
			sk := topk.NewUnbiasedSpaceSaving(256, 5)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk.Add(keys[i&(len(keys)-1)])
			}
		}},
		{"decay", "add", "steady", itemBytes + 8, false, func(b *testing.B) {
			sk := decay.New(256, 0.01, 6)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk.Add(uint64(i), 1, 1, float64(i)*0.001)
			}
		}},
		{"store-topk", "addbatch", "zipf", keyBytes, true, func(b *testing.B) {
			benchStoreKind(b, store.TopK)
		}},
		{"store-varopt", "addbatch", "zipf", itemBytes, true, func(b *testing.B) {
			benchStoreKind(b, store.VarOpt)
		}},
		{"store-decay", "addbatch", "zipf", itemBytes + 8, true, func(b *testing.B) {
			benchStoreKind(b, store.Decay)
		}},
		{"store-topk", "query", "8-buckets", 0, true, func(b *testing.B) {
			// Cold row of the USS warm/cold pair; same sealed-range shape
			// as store/query/8-buckets.
			st := benchStoreEightBuckets(b, store.TopK, -1, true)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Query("tenant", "bytes", epochBench, sealedEightEnd)
				if err != nil || len(res.TopK) == 0 || res.Buckets != 8 {
					b.Fatalf("bad query: %+v, %v", res, err)
				}
			}
		}},
		{"store-topk", "query", "8-buckets-warm", 0, true, func(b *testing.B) {
			// Warm twin of the USS query row: the cached prefix carries
			// the collapse target's full state including its RNG, so the
			// warm path stays bit-identical while skipping the eight
			// sealed merges.
			st := benchStoreEightBuckets(b, store.TopK, 0, true)
			if res, err := st.Query("tenant", "bytes", epochBench, sealedEightEnd); err != nil || res.Planned {
				b.Fatalf("warm-up query: %+v, %v", res, err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Query("tenant", "bytes", epochBench, sealedEightEnd)
				if err != nil || len(res.TopK) == 0 || res.Buckets != 8 || !res.Planned {
					b.Fatalf("bad warm query: %+v, %v", res, err)
				}
			}
		}},
		{"store-varopt", "query", "8-buckets", 0, true, func(b *testing.B) {
			st := benchStoreEightBuckets(b, store.VarOpt, -1, false)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Query("tenant", "bytes", epochBench, epochBench.Add(time.Hour))
				if err != nil || res.Sum <= 0 {
					b.Fatalf("bad query: %+v, %v", res, err)
				}
			}
		}},
		{"store-decay", "query", "8-buckets", 0, true, func(b *testing.B) {
			st := benchStoreEightBuckets(b, store.Decay, -1, false)
			// Query as-of just past the last bucket: the default
			// half-life is one bucket width, so an as-of far in the
			// future would decay every estimate to zero.
			to := epochBench.Add(8 * time.Second)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Query("tenant", "bytes", epochBench, to)
				if err != nil || res.DecayedCount <= 0 {
					b.Fatalf("bad query: %+v, %v", res, err)
				}
			}
		}},
		{"store-groupby", "addbatch", "zipf", itemBytes + 8, true, func(b *testing.B) {
			benchStoreIngest(b, store.GroupBy, perfLabeledItems())
		}},
		{"store-stratified", "addbatch", "zipf", itemBytes + 8, true, func(b *testing.B) {
			benchStoreIngest(b, store.Stratified, perfLabeledItems())
		}},
		{"store-groupby", "query", "8-buckets", 0, true, func(b *testing.B) {
			st := benchStoreEightBuckets(b, store.GroupBy, -1, false)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Query("tenant", "bytes", epochBench, epochBench.Add(time.Hour))
				if err != nil || len(res.Groups) == 0 {
					b.Fatalf("bad query: %+v, %v", res, err)
				}
			}
		}},
		{"store-stratified", "query", "8-buckets", 0, true, func(b *testing.B) {
			st := benchStoreEightBuckets(b, store.Stratified, -1, false)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := st.Query("tenant", "bytes", epochBench, epochBench.Add(time.Hour))
				if err != nil || res.Sum <= 0 || len(res.Strata) == 0 {
					b.Fatalf("bad query: %+v, %v", res, err)
				}
			}
		}},
		{"sharded-distinct", "addkeys", "zipf", keyBytes, false, func(b *testing.B) {
			keys := perfZipfKeys()
			eng := engine.NewShardedDistinct(256, 7, 0)
			const batch = 512
			buf := make([]uint64, batch)
			b.ResetTimer()
			b.ReportAllocs()
			for done := 0; done < b.N; {
				m := batch
				if m > b.N-done {
					m = b.N - done
				}
				lo := done & (len(keys) - 1)
				hi := lo + m
				if hi > len(keys) {
					hi = len(keys)
					m = hi - lo
				}
				eng.AddKeys(buf[:copy(buf, keys[lo:hi])])
				done += m
			}
		}},
		{"wire", "encode", "512-items", itemBytes, true, func(b *testing.B) {
			items := perfItems()[:512]
			buf := make([]byte, 0, 1<<14)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i += len(items) {
				var err error
				buf, err = wire.AppendFrame(buf[:0], wire.Frame{
					Namespace: "tenant", Metric: "bytes", Kind: wire.KindDefault, Items: items})
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"wire", "decode", "512-items", itemBytes, true, func(b *testing.B) {
			// The serving layer's per-item parse cost on /v1/addb: decode a
			// pre-encoded 512-item frame, the shape atsload sends.
			body, err := wire.AppendFrame(nil, wire.Frame{
				Namespace: "tenant", Metric: "bytes", Kind: wire.KindDefault,
				Items: perfItems()[:512]})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i += 512 {
				f, rest, err := wire.DecodeFrame(body)
				if err != nil || len(rest) != 0 || len(f.Items) != 512 {
					b.Fatalf("decode: %d items, %d rest, %v", len(f.Items), len(rest), err)
				}
			}
		}},
	}
}

var (
	perfItemsOnce    sync.Once
	perfItemsCache   []engine.Item
	perfLabeledOnce  sync.Once
	perfLabeledCache []engine.Item
	perfKeysOnce     sync.Once
	perfKeysCache    []uint64
)

var epochBench = time.Unix(1_700_000_000, 0)

// newNamespacesStore builds the 1k-namespaces ingest fixture's store.
func newNamespacesStore() *store.Store {
	return store.New(store.Config{
		Kind: store.BottomK, K: 128, Seed: 42,
		BucketWidth: time.Second, Retention: 8,
	})
}

// benchStoreNamespaces drives keyed ingest fanned out across 1000
// namespaces with the synthetic clock advancing one bucket width every
// 8000 batches (~8 batches per namespace per bucket).
func benchStoreNamespaces(b *testing.B, st *store.Store) {
	items := perfItems()
	namespaces := make([]string, 1000)
	for i := range namespaces {
		namespaces[i] = fmt.Sprintf("tenant-%03d", i)
	}
	epoch := time.Unix(1_700_000_000, 0)
	const batch = 128
	b.ResetTimer()
	b.ReportAllocs()
	batches := 0
	for done := 0; done < b.N; {
		m := batch
		if m > b.N-done {
			m = b.N - done
		}
		lo := done & (len(items) - 1)
		hi := lo + m
		if hi > len(items) {
			hi = len(items)
			m = hi - lo
		}
		at := epoch.Add(time.Duration(batches/8000) * time.Second)
		st.AddBatchAt(namespaces[batches%len(namespaces)], "bytes", items[lo:hi], at)
		batches++
		done += m
	}
}

// benchStoreKind measures the store's batched ingest hot path for one
// sketch kind: one rotating key, synthetic clock, 128-item batches.
func benchStoreKind(b *testing.B, kind store.Kind) {
	benchStoreIngest(b, kind, perfItems())
}

func benchStoreIngest(b *testing.B, kind store.Kind, items []engine.Item) {
	st := store.New(store.Config{
		Kind: kind, K: 128, Seed: 42,
		BucketWidth: time.Second, Retention: 8,
	})
	const batch = 128
	b.ResetTimer()
	b.ReportAllocs()
	batches := 0
	for done := 0; done < b.N; {
		m := batch
		if m > b.N-done {
			m = b.N - done
		}
		lo := done & (len(items) - 1)
		hi := lo + m
		if hi > len(items) {
			hi = len(items)
			m = hi - lo
		}
		at := epochBench.Add(time.Duration(batches/8000) * time.Second)
		if err := st.AddBatchAt("tenant", "bytes", items[lo:hi], at); err != nil {
			b.Fatal(err)
		}
		batches++
		done += m
	}
}

// benchStoreEightBuckets builds a store of the given kind holding eight
// buckets of 10k items each, the query-path fixture. planBytes selects
// the plan-cache mode: negative disables it (the cold rows, comparable
// to pre-plan-cache baselines), zero enables the default budget (the
// warm rows). With sealAll a ninth one-item bucket is ingested so all
// eight data buckets are sealed: the warm/cold pair rows query exactly
// that sealed prefix — the work the plan cache memoizes — while the
// other query rows keep the original seven-sealed-plus-live shape.
func benchStoreEightBuckets(b *testing.B, kind store.Kind, planBytes int64, sealAll bool) *store.Store {
	items := perfItems()
	if kind == store.GroupBy || kind == store.Stratified {
		items = perfLabeledItems()
	}
	st := store.New(store.Config{
		Kind: kind, K: 256, Seed: 42,
		BucketWidth: time.Second, Retention: 16,
		PlanCacheBytes: planBytes,
	})
	for bk := 0; bk < 8; bk++ {
		batch := make([]engine.Item, 10_000)
		copy(batch, items[bk*10_000:(bk+1)*10_000])
		if err := st.AddBatchAt("tenant", "bytes", batch,
			epochBench.Add(time.Duration(bk)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
	if sealAll {
		batch := make([]engine.Item, 1)
		copy(batch, items[:1])
		if err := st.AddBatchAt("tenant", "bytes", batch,
			epochBench.Add(8*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

// sealedEightEnd ends a query range inside the eighth bucket: with the
// sealAll fixture the range [epochBench, sealedEightEnd] covers exactly
// the eight sealed buckets and excludes the live ninth.
var sealedEightEnd = epochBench.Add(7500 * time.Millisecond)

// perfItems is a 1M-item Zipf(1.1) weighted stream shared by the cases.
func perfItems() []engine.Item {
	perfItemsOnce.Do(func() {
		const n = 1 << 20
		z := stream.NewZipf(100_000, 1.1, 71)
		rng := stream.NewRNG(72)
		perfItemsCache = make([]engine.Item, n)
		for i := range perfItemsCache {
			w := 1 + 9*rng.Float64()
			perfItemsCache[i] = engine.Item{Key: z.Next(), Weight: w, Value: w}
		}
	})
	return perfItemsCache
}

// perfLabeledItems is perfItems with group and stratum labels stamped
// on (the grouped-analytics ingest fixture): 64 Zipf-correlated groups
// and an 8×4 stratification grid.
func perfLabeledItems() []engine.Item {
	perfLabeledOnce.Do(func() {
		base := perfItems()
		perfLabeledCache = make([]engine.Item, len(base))
		for i, it := range base {
			it.Group = it.Key % 64
			it.Strata = []uint32{uint32(it.Key % 8), uint32(it.Key % 4)}
			perfLabeledCache[i] = it
		}
	})
	return perfLabeledCache
}

func perfZipfKeys() []uint64 {
	perfKeysOnce.Do(func() {
		z := stream.NewZipf(100_000, 1.1, 71)
		perfKeysCache = make([]uint64, 1<<20)
		for i := range perfKeysCache {
			perfKeysCache[i] = z.Next()
		}
	})
	return perfKeysCache
}

// bestOf damps scheduler noise on the rows the intra-report overhead
// gate pairs: each side runs three times and keeps its fastest result,
// so a one-off GC cycle or frequency dip on either side of a pair does
// not read as instrumentation cost.
var bestOf = map[string]int{
	"store/addbatch/1k-namespaces":          3,
	"store/addbatch/1k-namespaces-observed": 3,
	"store/query/8-buckets":                 3,
	"store/query/8-buckets-warm":            3,
	"store-topk/query/8-buckets":            3,
	"store-topk/query/8-buckets-warm":       3,
}

func runPerf(args []string) {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "write results as JSON")
	out := fs.String("out", fmt.Sprintf("BENCH_%d.json", perfPR), "JSON output path (with -json)")
	quick := fs.Bool("quick", false, "run the reduced CI-smoke subset")
	_ = fs.Parse(args)

	start := time.Now()
	report := bench.Report{
		Schema: bench.Schema,
		PR:     perfPR,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		GoVer:  runtime.Version(),
		Quick:  *quick,
	}
	fmt.Printf("%-34s %12s %14s %10s %8s\n", "benchmark", "ns/op", "items/s", "MB/s", "allocs")
	for _, c := range perfCases() {
		if *quick && !c.quick {
			continue
		}
		name := c.sketch + "/" + c.op + "/" + c.shape
		// Collect the previous case's fixture garbage before measuring:
		// without the barrier a large fixture (the query-path stores)
		// leaks GC cost into whichever case happens to run next.
		runtime.GC()
		r := testing.Benchmark(c.bench)
		for extra := 1; extra < bestOf[name]; extra++ {
			runtime.GC()
			r2 := testing.Benchmark(c.bench)
			if float64(r2.T.Nanoseconds())/float64(r2.N) < float64(r.T.Nanoseconds())/float64(r.N) {
				r = r2
			}
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res := bench.Result{
			Name:        name,
			Sketch:      c.sketch,
			Op:          c.op,
			Shape:       c.shape,
			NsPerOp:     ns,
			ItemsPerSec: 1e9 / ns,
			MBPerSec:    float64(c.itemBytes) * (1e9 / ns) / 1e6,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-34s %12.2f %14.0f %10.1f %8d\n",
			name, res.NsPerOp, res.ItemsPerSec, res.MBPerSec, res.AllocsPerOp)
	}
	report.Duration = time.Since(start).Round(time.Millisecond).String()
	if *jsonOut {
		if err := report.Write(*out); err != nil {
			fmt.Fprintln(os.Stderr, "perf: write:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
