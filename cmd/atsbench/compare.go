package main

// The compare subcommand is the perf regression gate: it diffs a fresh
// perf report against the newest checked-in BENCH_<n>.json over the
// named hot paths and exits non-zero when any of them slowed down by
// more than the allowed fraction. CI runs it after regenerating a quick
// report so hot-path drift fails the build instead of landing silently.
//
//	atsbench compare -new BENCH_fresh.json                  // vs newest checked-in
//	atsbench compare -old BENCH_4.json -new BENCH_5.json -max-regress 0.2

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ats/internal/bench"
)

func runCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	oldPath := fs.String("old", "", "baseline report (default: newest checked-in BENCH_<n>.json)")
	newPath := fs.String("new", "", "fresh report to gate (required)")
	dir := fs.String("dir", ".", "directory searched for the default baseline")
	maxRegress := fs.Float64("max-regress", 0.20, "max allowed ns/op slowdown fraction on hot paths")
	maxOverhead := fs.Float64("max-overhead", 0.05, "max allowed instrumentation overhead on paired observed rows in the fresh report")
	maxWarmRatio := fs.Float64("max-warm-ratio", 0.5, "max allowed warm/cold time ratio on plan-cache paired rows in the fresh report")
	paths := fs.String("paths", "", "comma-separated hot-path name prefixes (default: built-in list)")
	_ = fs.Parse(args)

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "compare: -new is required")
		os.Exit(2)
	}
	if *oldPath == "" {
		p, err := bench.LatestPath(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(2)
		}
		*oldPath = p
	}
	old, err := bench.Load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(2)
	}
	fresh, err := bench.Load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(2)
	}

	var prefixes []string
	if *paths != "" {
		for _, p := range strings.Split(*paths, ",") {
			if p = strings.TrimSpace(p); p != "" {
				prefixes = append(prefixes, p)
			}
		}
	}
	all, regressions, allocRegressions := bench.Compare(old, fresh, prefixes, *maxRegress)

	fmt.Printf("comparing %s (pr %d) -> %s (pr %d), gate %.0f%%\n\n",
		*oldPath, old.PR, *newPath, fresh.PR, *maxRegress*100)
	if len(all) == 0 {
		fmt.Fprintln(os.Stderr, "compare: no hot-path benchmarks present in both reports")
		os.Exit(2)
	}
	fmt.Printf("%-34s %12s %12s %9s %13s\n", "hot path", "old ns/op", "new ns/op", "change", "allocs/op")
	for _, d := range all {
		mark := ""
		if d.Change > *maxRegress {
			mark = "  << REGRESSION"
		}
		if d.NewAllocs > d.OldAllocs {
			mark += "  << ALLOC REGRESSION"
		}
		fmt.Printf("%-34s %12.2f %12.2f %+8.1f%% %6d -> %-4d%s\n",
			d.Name, d.OldNs, d.NewNs, d.Change*100, d.OldAllocs, d.NewAllocs, mark)
	}
	// The overhead gate is intra-report: it pairs each instrumented
	// benchmark row with its uninstrumented twin inside the fresh report,
	// so machine speed cancels out and the diff is pure instrumentation
	// cost.
	pairs, over := bench.Overhead(fresh, bench.OverheadPairs, *maxOverhead)
	if len(pairs) > 0 {
		fmt.Printf("\n%-44s %12s %12s %9s\n", "instrumentation overhead", "base ns/op", "obs ns/op", "change")
		for _, d := range pairs {
			mark := ""
			if d.Change > *maxOverhead {
				mark = "  << OVER BUDGET"
			}
			fmt.Printf("%-44s %12.2f %12.2f %+8.1f%%%s\n", d.Name, d.OldNs, d.NewNs, d.Change*100, mark)
		}
	}

	// The warm-query gate is also intra-report: the plan cache must keep
	// a repeated range query under the allowed fraction of the cold
	// (cache-disabled) collapse on the same machine.
	warm, slow := bench.WarmRatio(fresh, bench.WarmPairs, *maxWarmRatio)
	if len(warm) > 0 {
		fmt.Printf("\n%-44s %12s %12s %9s\n", "plan-cache warm query", "cold ns/op", "warm ns/op", "ratio")
		for _, d := range warm {
			mark := ""
			if d.Change > *maxWarmRatio {
				mark = "  << TOO SLOW"
			}
			fmt.Printf("%-44s %12.2f %12.2f %8.2fx%s\n", d.Name, d.OldNs, d.NewNs, d.Change, mark)
		}
	}

	failed := false
	if len(regressions) > 0 {
		fmt.Printf("\n%d hot path(s) regressed beyond %.0f%%\n", len(regressions), *maxRegress*100)
		failed = true
	}
	// Alloc counts are deterministic, so the alloc gate is strict: any
	// hot-path row allocating more per op than the baseline fails.
	if len(allocRegressions) > 0 {
		fmt.Printf("\n%d hot path(s) allocate more per op than the baseline\n", len(allocRegressions))
		failed = true
	}
	if len(over) > 0 {
		fmt.Printf("\n%d instrumented row(s) above the %.0f%% overhead budget\n", len(over), *maxOverhead*100)
		failed = true
	}
	if len(slow) > 0 {
		fmt.Printf("\n%d warm row(s) above the %.2fx warm/cold ratio gate\n", len(slow), *maxWarmRatio)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("\nall %d hot paths within the %.0f%% gate\n", len(all), *maxRegress*100)
}
