// Command atsbench regenerates every table and figure of the paper's
// evaluation from the library (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	atsbench <experiment> [flags]
//	atsbench all
//
// Experiments: fig1, fig2, fig3, fig4, budget, merge-dominated, unbiased,
// stratified, varsize, aqp, multiobj, groupby, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ats/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	if len(cmd) > 0 && cmd[0] == '-' && cmd != "-h" && cmd != "--help" {
		// Flags-first invocation ("atsbench -json -quick") implies the
		// perf harness, the only subcommand CI drives with bare flags;
		// -h/--help keep showing the global usage below.
		runPerf(os.Args[1:])
		return
	}
	switch cmd {
	case "perf":
		runPerf(args)
	case "compare":
		runCompare(args)
	case "all":
		for _, name := range []string{
			"fig1", "fig2", "fig3", "fig4", "budget", "merge-dominated",
			"unbiased", "stratified", "varsize", "aqp", "multiobj", "groupby",
			"asymptotic", "baselines", "ablation", "parallel",
		} {
			run(name, nil)
			fmt.Println()
		}
	case "help", "-h", "--help":
		usage()
	default:
		run(cmd, args)
	}
}

func run(name string, args []string) {
	start := time.Now()
	switch name {
	case "fig1":
		cfg := experiments.DefaultFig1Config()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.K, "k", cfg.K, "window sample parameter")
		fs.Float64Var(&cfg.Rate, "rate", cfg.Rate, "arrival rate (items/s)")
		fs.Float64Var(&cfg.Delta, "delta", cfg.Delta, "window length (s)")
		parse(fs, args)
		fmt.Print(experiments.Fig1(cfg).FormatFig1())
	case "fig2":
		cfg := experiments.DefaultFig2Config()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.K, "k", cfg.K, "window sample parameter")
		fs.Float64Var(&cfg.BaseRate, "base", cfg.BaseRate, "base arrival rate (items/s)")
		fs.Float64Var(&cfg.SpikeRate, "spike", cfg.SpikeRate, "spike arrival rate (items/s)")
		parse(fs, args)
		fmt.Print(experiments.Fig2(cfg).FormatFig2(cfg))
	case "fig3":
		cfg := experiments.DefaultFig3Config()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.K, "k", cfg.K, "top-k query size")
		fs.IntVar(&cfg.StreamLen, "n", cfg.StreamLen, "stream length")
		fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "trials per beta")
		parse(fs, args)
		fmt.Print(experiments.Fig3(cfg).Format())
	case "fig4":
		cfg := experiments.DefaultFig4Config()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.K, "k", cfg.K, "sketch size")
		fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "Monte-Carlo trials")
		fs.IntVar(&cfg.SizeA, "sizeA", cfg.SizeA, "|A|")
		fs.IntVar(&cfg.SizeB, "sizeB", cfg.SizeB, "|B|")
		parse(fs, args)
		fmt.Print(experiments.Fig4(cfg).Format())
	case "budget":
		cfg := experiments.DefaultBudgetConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.Budget, "budget", cfg.Budget, "byte budget")
		fs.IntVar(&cfg.Items, "n", cfg.Items, "stream length")
		parse(fs, args)
		fmt.Print(experiments.Budget(cfg).Format())
	case "merge-dominated":
		cfg := experiments.DefaultDominatedConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "Monte-Carlo trials")
		parse(fs, args)
		fmt.Print(experiments.MergeDominated(cfg).Format())
	case "unbiased":
		cfg := experiments.DefaultUnbiasedConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "Monte-Carlo trials")
		fs.IntVar(&cfg.K, "k", cfg.K, "sample size")
		parse(fs, args)
		fmt.Print(experiments.Unbiased(cfg).Format())
	case "stratified":
		cfg := experiments.DefaultStratifiedConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.Budget, "budget", cfg.Budget, "item budget")
		fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "trials")
		parse(fs, args)
		fmt.Print(experiments.Stratified(cfg).Format())
	case "varsize":
		cfg := experiments.DefaultVarSizeConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "trials")
		parse(fs, args)
		fmt.Print(experiments.VarSize(cfg).Format())
	case "aqp":
		cfg := experiments.DefaultAQPConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.Rows, "rows", cfg.Rows, "table rows")
		fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "trials")
		parse(fs, args)
		fmt.Print(experiments.AQP(cfg).Format())
	case "multiobj":
		cfg := experiments.DefaultMultiObjConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.K, "k", cfg.K, "per-objective sample size")
		fs.IntVar(&cfg.Objectives, "c", cfg.Objectives, "objectives")
		parse(fs, args)
		fmt.Print(experiments.MultiObj(cfg).Format())
	case "asymptotic":
		cfg := experiments.DefaultAsymptoticConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "trials per size")
		parse(fs, args)
		fmt.Print(experiments.Asymptotic(cfg).Format())
	case "ablation":
		cfg := experiments.DefaultAblationConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		parse(fs, args)
		fmt.Print(experiments.Ablation(cfg).Format())
	case "baselines":
		cfg := experiments.DefaultBaselinesConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.K, "k", cfg.K, "sample size")
		fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "Monte-Carlo trials")
		parse(fs, args)
		fmt.Print(experiments.Baselines(cfg).Format())
	case "parallel":
		cfg := experiments.DefaultParallelConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.K, "k", cfg.K, "bottom-k sample size")
		fs.IntVar(&cfg.StreamLen, "n", cfg.StreamLen, "stream length")
		fs.IntVar(&cfg.Shards, "shards", cfg.Shards, "engine shards (0 = GOMAXPROCS)")
		fs.IntVar(&cfg.Batch, "batch", cfg.Batch, "AddBatch size")
		parse(fs, args)
		fmt.Print(experiments.Parallel(cfg).Format())
	case "groupby":
		cfg := experiments.DefaultGroupByConfig()
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.IntVar(&cfg.Groups, "groups", cfg.Groups, "number of groups")
		fs.IntVar(&cfg.M, "m", cfg.M, "dedicated sketches")
		parse(fs, args)
		fmt.Print(experiments.GroupBy(cfg).Format())
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
		usage()
		os.Exit(2)
	}
	fmt.Printf("[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
}

func parse(fs *flag.FlagSet, args []string) {
	if args != nil {
		_ = fs.Parse(args)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `atsbench — regenerate the paper's tables and figures

usage: atsbench <experiment> [flags]

experiments:
  fig1             Figure 1: sliding-window thresholds, steady arrivals
  fig2             Figure 2: sliding-window spike recovery
  fig3             Figure 3: adaptive top-k vs FrequentItems across beta
  fig4             Figure 4: distinct-count union error vs Jaccard
  budget           §3.1: variable item sizes under a byte budget
  merge-dominated  §3.5: one large set + many small sets
  unbiased         §2.5/2.6: HT unbiasedness validation
  stratified       §3.7: multi-stratified sampling under a budget
  varsize          §3.9: variance-sized samples
  aqp              §3.10: AQP early stopping
  multiobj         §3.8: multi-objective sample footprint
  groupby          §3.6: group-by distinct counting
  asymptotic       §4-6: M-estimator consistency, priority equivalence
  baselines        priority sampling vs VarOpt vs Poisson at fixed k
  ablation         design-knob sweeps (top-k pacing, overshoot, AQP step)
  parallel         sharded engine: single-thread vs concurrent ingest throughput
  perf             machine-readable ingest/query micro-benchmarks
                   (-json writes BENCH_<n>.json; -quick runs the CI subset)
  compare          diff a fresh perf report against the checked-in baseline;
                   exits 1 on >20% hot-path regression (-max-regress to tune)
  all              run everything with default configs

pass -h after an experiment name for its flags`)
}
