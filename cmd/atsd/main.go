// Command atsd is the adaptive-threshold-sampling serving daemon: an
// HTTP front end over the multi-tenant, time-bucketed sketch store.
//
// Usage:
//
//	atsd [-addr :8321]
//	     [-kind bottomk|distinct|window|topk|varopt|decay|groupby|stratified]
//	     [-k 1024] [-seed 1] [-bucket 1m] [-retention 60] [-shards 1]
//	     [-max-keys 0] [-window 0] [-lambda 0] [-group-m 64] [-stratum-k 64]
//	     [-dims 2] [-plan-cache-bytes 0] [-snapshot path]
//	     [-wal-dir dir] [-fsync always|interval|none] [-fsync-interval 100ms]
//	     [-wal-segment-bytes 67108864] [-shutdown-timeout 10s]
//	     [-max-inflight-items 4194304] [-max-batch-items 1048576]
//	     [-log-format text|json] [-log-level info] [-slow-query 250ms]
//	     [-pprof-addr ""]
//
// -kind sets the DEFAULT sketch kind; each key's kind is fixed at first
// write and ingest may pick any kind per batch with the "kind" field, so
// one daemon serves the whole sketch family at once. Ingest and query
// over HTTP (docs/API.md is the full endpoint reference):
//
//	curl -XPOST localhost:8321/v1/add -d '{"namespace":"acme","metric":"bytes",
//	  "items":[{"key":1,"weight":3.5,"value":3.5}]}'
//	curl -XPOST localhost:8321/v1/add -d '{"namespace":"acme","metric":"hot",
//	  "kind":"topk","items":[{"key":7}]}'
//	curl -XPOST localhost:8321/v1/add -d '{"namespace":"acme","metric":"per-country",
//	  "kind":"groupby","items":[{"key":9,"group":44}]}'
//	curl -XPOST localhost:8321/v1/add -d '{"namespace":"acme","metric":"strat",
//	  "kind":"stratified","items":[{"key":9,"value":2.5,"strata":[44,3]}]}'
//	curl 'localhost:8321/v1/query?namespace=acme&metric=bytes&from=0'
//	curl 'localhost:8321/v1/query?namespace=acme&metric=hot&from=0&k=5'
//	curl 'localhost:8321/v1/query?namespace=acme&metric=per-country&from=0&group_by=group'
//	curl 'localhost:8321/v1/query?namespace=acme&metric=strat&from=0&group_by=1'
//
// High-volume ingest should prefer the binary frame endpoint POST
// /v1/addb (docs/API.md "Binary ingest" has the byte spec; cmd/atsload
// generates load in both transports). The admission flags bound ingest
// memory: past -max-inflight-items the daemon answers 429 with
// Retry-After, and a single request carrying more than -max-batch-items
// items is rejected with 413.
//
// # Observability
//
// The daemon always serves GET /metrics (Prometheus text exposition):
// per-endpoint request counters and latency histograms, ingest pipeline
// stage timings (admission → decode → wal_append → fsync → apply),
// store rotation/query histograms, and WAL counters. Logs are
// structured (log/slog): -log-format text (default, human-readable
// key=value lines) or json; -log-level debug additionally logs every
// request with a request ID. Queries slower than -slow-query emit a
// structured warning naming the series and merge width. -pprof-addr
// serves net/http/pprof on a separate listener (off by default; bind it
// to localhost). docs/OBSERVABILITY.md is the full reference.
//
// # Durability
//
// With -wal-dir, the daemon runs crash-safe: every accepted ingest
// batch is appended to a write-ahead log (fsynced per -fsync) before it
// is applied and acknowledged, POST /v1/snapshot cuts atomic snapshot
// generations in the same directory, and boot recovers by restoring the
// newest sound generation and replaying the log's uncovered suffix —
// truncating a torn tail and quarantining (not dying on) mid-log
// corruption. /readyz answers 503 until recovery completes and during
// shutdown drain; docs/ARCHITECTURE.md "Durability" has the full
// design. -wal-dir and -snapshot are mutually exclusive.
//
// With -snapshot (the lighter, non-durable mode), the daemon restores
// the keyspace from the file at boot (if present), persists it there on
// POST /v1/snapshot, and writes a final snapshot during graceful
// shutdown (SIGINT/SIGTERM), so a restart resumes serving the same
// estimates. Acknowledged writes since the last snapshot do NOT survive
// a crash in this mode.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ats/internal/obs"
	"ats/internal/server"
	"ats/internal/store"
	"ats/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8321", "listen address")
		kindFlag    = flag.String("kind", "bottomk", "default sketch kind: bottomk, distinct, window, topk, varopt, decay, groupby or stratified")
		k           = flag.Int("k", 1024, "per-bucket sketch size")
		seed        = flag.Uint64("seed", 1, "coordination seed shared by all buckets")
		bucket      = flag.Duration("bucket", time.Minute, "time-bucket width")
		retention   = flag.Int("retention", 60, "sealed buckets kept per key")
		shards      = flag.Int("shards", 1, "engine shards per current bucket")
		maxKeys     = flag.Int("max-keys", 0, "LRU bound on live keys (0 = unbounded)")
		windowSec   = flag.Float64("window", 0, "sliding-window length in seconds (window kind; 0 = bucket width)")
		lambda      = flag.Float64("lambda", 0, "decay rate per second (decay kind; 0 = ln2/bucket width)")
		groupM      = flag.Int("group-m", 0, "dedicated per-group sketches (groupby kind; 0 = 64)")
		stratumK    = flag.Int("stratum-k", 0, "per-stratum bottom-k parameter (stratified kind; 0 = 64)")
		dims        = flag.Int("dims", 0, "stratification dimensions (stratified kind; 0 = 2)")
		planBytes   = flag.Int64("plan-cache-bytes", 0, "query plan-cache byte budget (0 = 16 MiB default, negative = disabled)")
		snapPath    = flag.String("snapshot", "", "snapshot file: restored at boot, written on POST /v1/snapshot and shutdown (non-durable mode)")
		walDir      = flag.String("wal-dir", "", "durability directory: write-ahead log + snapshot generations; enables crash-safe mode")
		fsyncFlag   = flag.String("fsync", "interval", "WAL fsync policy: always, interval or none")
		fsyncEvery  = flag.Duration("fsync-interval", 100*time.Millisecond, "group-commit period under -fsync interval")
		segBytes    = flag.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation threshold")
		shutdownTmo = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown deadline for draining connections")
		inflight    = flag.Int64("max-inflight-items", 0, "admission-gate budget: items in flight across ingest requests before 429s (0 = default)")
		maxBatch    = flag.Int("max-batch-items", 0, "per-request item limit before 413s (0 = default)")
		logFormat   = flag.String("log-format", "text", "log output format: text (key=value) or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error (debug logs every request)")
		slowQuery   = flag.Duration("slow-query", 250*time.Millisecond, "log queries slower than this (0 disables the slow-query log)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off; bind to localhost)")
	)
	flag.Parse()

	lg, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		lg.Error(msg, args...)
		os.Exit(1)
	}

	kind, err := store.ParseKind(*kindFlag)
	if err != nil {
		fatal(err.Error())
	}
	if *walDir != "" && *snapPath != "" {
		fatal("-wal-dir and -snapshot are mutually exclusive: the WAL directory owns its own snapshot generations")
	}
	fsync, err := wal.ParseFsyncPolicy(*fsyncFlag)
	if err != nil {
		fatal(err.Error())
	}
	st := store.New(store.Config{
		Kind:           kind,
		K:              *k,
		Seed:           *seed,
		BucketWidth:    *bucket,
		Retention:      *retention,
		Shards:         *shards,
		MaxKeys:        *maxKeys,
		WindowDelta:    *windowSec,
		DecayLambda:    *lambda,
		GroupM:         *groupM,
		StratumK:       *stratumK,
		StratifiedDims: *dims,
		PlanCacheBytes: *planBytes,
	})

	// One registry spans the whole daemon: the store, the WAL manager
	// and the HTTP server all record into it, and GET /metrics renders
	// it in one scrape.
	reg := obs.NewRegistry()
	st.Instrument(reg, lg, *slowQuery)

	var mgr *wal.Manager
	if *walDir != "" {
		mgr, err = wal.Open(*walDir, st, wal.Options{
			Fsync:         fsync,
			FsyncInterval: *fsyncEvery,
			SegmentBytes:  *segBytes,
			Obs:           reg,
		})
		if err != nil {
			fatal("open wal", "dir", *walDir, "err", err)
		}
	} else if *snapPath != "" {
		if f, err := os.Open(*snapPath); err == nil {
			err = st.Restore(f)
			f.Close()
			if err != nil {
				fatal("restore snapshot", "path", *snapPath, "err", err)
			}
			s := st.Stats()
			lg.Info("restored snapshot", "path", *snapPath, "keys", s.Keys, "buckets", s.Buckets)
		} else if !errors.Is(err, os.ErrNotExist) {
			fatal("open snapshot", "path", *snapPath, "err", err)
		}
	}

	srv := server.NewWithOptions(st, server.Options{
		SnapshotPath:     *snapPath,
		MaxInflightItems: *inflight,
		MaxBatchItems:    *maxBatch,
		Durable:          mgr,
		Obs:              reg,
		Log:              lg,
	})
	httpSrv := server.NewHTTPServer(*addr, srv.Handler())

	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; serve it on its
		// own listener so profiling never shares the API's port (or its
		// exposure).
		go func() {
			lg.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				lg.Error("pprof server", "err", err)
			}
		}()
	}

	// Bind before recovery so probes and clients see a live socket that
	// answers /healthz and a 503 /readyz instead of connection refused;
	// recovery can take a while on a large log.
	if mgr != nil {
		srv.SetReady(false)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err.Error())
	}
	lg.Info("atsd listening", "addr", ln.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	if mgr != nil {
		rs, err := mgr.Recover()
		if err != nil {
			fatal("wal recovery", "err", err)
		}
		lg.Info("recovered",
			"dir", *walDir, "snapshot_seq", rs.SnapshotSeq,
			"records_replayed", rs.RecordsApplied, "records_skipped", rs.RecordsSkipped,
			"snapshots_rejected", rs.SnapshotsRejected, "torn_bytes", rs.TornBytesTruncated,
			"quarantined_bytes", rs.QuarantinedBytes)
		srv.SetReady(true)
	}
	lg.Info("atsd serving",
		"kind", kind.String(), "addr", *addr, "k", *k, "bucket", bucket.String(),
		"retention", *retention, "fsync", durMode(mgr, fsync))

	select {
	case err := <-errc:
		fatal(err.Error())
	case <-ctx.Done():
	}

	// Drain: flip /readyz to 503 and refuse new ingest, let in-flight
	// requests finish, then cut the final durable state.
	lg.Info("shutting down")
	srv.StartDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTmo)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		lg.Warn("shutdown", "err", err)
	}
	if mgr != nil {
		if info, err := mgr.Snapshot(); err != nil {
			lg.Warn("final snapshot", "err", err)
		} else {
			fmt.Printf("snapshot: seq %d, %d bytes -> %s\n", info.Seq, info.Bytes, info.Path)
		}
		if err := mgr.Close(); err != nil {
			lg.Warn("wal close", "err", err)
		}
	} else if *snapPath != "" {
		n, err := srv.SnapshotToPath()
		if err != nil {
			fatal("final snapshot", "err", err)
		}
		fmt.Printf("snapshot: %d bytes -> %s\n", n, *snapPath)
	}
}

func durMode(mgr *wal.Manager, fsync wal.FsyncPolicy) string {
	if mgr == nil {
		return "off"
	}
	return fsync.String()
}
