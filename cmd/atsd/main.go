// Command atsd is the adaptive-threshold-sampling serving daemon: an
// HTTP front end over the multi-tenant, time-bucketed sketch store.
//
// Usage:
//
//	atsd [-addr :8321]
//	     [-kind bottomk|distinct|window|topk|varopt|decay|groupby|stratified]
//	     [-k 1024] [-seed 1] [-bucket 1m] [-retention 60] [-shards 1]
//	     [-max-keys 0] [-window 0] [-lambda 0] [-group-m 64] [-stratum-k 64]
//	     [-dims 2] [-snapshot path]
//	     [-wal-dir dir] [-fsync always|interval|none] [-fsync-interval 100ms]
//	     [-wal-segment-bytes 67108864] [-shutdown-timeout 10s]
//	     [-max-inflight-items 4194304] [-max-batch-items 1048576]
//
// -kind sets the DEFAULT sketch kind; each key's kind is fixed at first
// write and ingest may pick any kind per batch with the "kind" field, so
// one daemon serves the whole sketch family at once. Ingest and query
// over HTTP (docs/API.md is the full endpoint reference):
//
//	curl -XPOST localhost:8321/v1/add -d '{"namespace":"acme","metric":"bytes",
//	  "items":[{"key":1,"weight":3.5,"value":3.5}]}'
//	curl -XPOST localhost:8321/v1/add -d '{"namespace":"acme","metric":"hot",
//	  "kind":"topk","items":[{"key":7}]}'
//	curl -XPOST localhost:8321/v1/add -d '{"namespace":"acme","metric":"per-country",
//	  "kind":"groupby","items":[{"key":9,"group":44}]}'
//	curl -XPOST localhost:8321/v1/add -d '{"namespace":"acme","metric":"strat",
//	  "kind":"stratified","items":[{"key":9,"value":2.5,"strata":[44,3]}]}'
//	curl 'localhost:8321/v1/query?namespace=acme&metric=bytes&from=0'
//	curl 'localhost:8321/v1/query?namespace=acme&metric=hot&from=0&k=5'
//	curl 'localhost:8321/v1/query?namespace=acme&metric=per-country&from=0&group_by=group'
//	curl 'localhost:8321/v1/query?namespace=acme&metric=strat&from=0&group_by=1'
//
// High-volume ingest should prefer the binary frame endpoint POST
// /v1/addb (docs/API.md "Binary ingest" has the byte spec; cmd/atsload
// generates load in both transports). The admission flags bound ingest
// memory: past -max-inflight-items the daemon answers 429 with
// Retry-After, and a single request carrying more than -max-batch-items
// items is rejected with 413.
//
// # Durability
//
// With -wal-dir, the daemon runs crash-safe: every accepted ingest
// batch is appended to a write-ahead log (fsynced per -fsync) before it
// is applied and acknowledged, POST /v1/snapshot cuts atomic snapshot
// generations in the same directory, and boot recovers by restoring the
// newest sound generation and replaying the log's uncovered suffix —
// truncating a torn tail and quarantining (not dying on) mid-log
// corruption. /readyz answers 503 until recovery completes and during
// shutdown drain; docs/ARCHITECTURE.md "Durability" has the full
// design. -wal-dir and -snapshot are mutually exclusive.
//
// With -snapshot (the lighter, non-durable mode), the daemon restores
// the keyspace from the file at boot (if present), persists it there on
// POST /v1/snapshot, and writes a final snapshot during graceful
// shutdown (SIGINT/SIGTERM), so a restart resumes serving the same
// estimates. Acknowledged writes since the last snapshot do NOT survive
// a crash in this mode.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ats/internal/server"
	"ats/internal/store"
	"ats/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8321", "listen address")
		kindFlag    = flag.String("kind", "bottomk", "default sketch kind: bottomk, distinct, window, topk, varopt, decay, groupby or stratified")
		k           = flag.Int("k", 1024, "per-bucket sketch size")
		seed        = flag.Uint64("seed", 1, "coordination seed shared by all buckets")
		bucket      = flag.Duration("bucket", time.Minute, "time-bucket width")
		retention   = flag.Int("retention", 60, "sealed buckets kept per key")
		shards      = flag.Int("shards", 1, "engine shards per current bucket")
		maxKeys     = flag.Int("max-keys", 0, "LRU bound on live keys (0 = unbounded)")
		windowSec   = flag.Float64("window", 0, "sliding-window length in seconds (window kind; 0 = bucket width)")
		lambda      = flag.Float64("lambda", 0, "decay rate per second (decay kind; 0 = ln2/bucket width)")
		groupM      = flag.Int("group-m", 0, "dedicated per-group sketches (groupby kind; 0 = 64)")
		stratumK    = flag.Int("stratum-k", 0, "per-stratum bottom-k parameter (stratified kind; 0 = 64)")
		dims        = flag.Int("dims", 0, "stratification dimensions (stratified kind; 0 = 2)")
		snapPath    = flag.String("snapshot", "", "snapshot file: restored at boot, written on POST /v1/snapshot and shutdown (non-durable mode)")
		walDir      = flag.String("wal-dir", "", "durability directory: write-ahead log + snapshot generations; enables crash-safe mode")
		fsyncFlag   = flag.String("fsync", "interval", "WAL fsync policy: always, interval or none")
		fsyncEvery  = flag.Duration("fsync-interval", 100*time.Millisecond, "group-commit period under -fsync interval")
		segBytes    = flag.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation threshold")
		shutdownTmo = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown deadline for draining connections")
		inflight    = flag.Int64("max-inflight-items", 0, "admission-gate budget: items in flight across ingest requests before 429s (0 = default)")
		maxBatch    = flag.Int("max-batch-items", 0, "per-request item limit before 413s (0 = default)")
	)
	flag.Parse()

	kind, err := store.ParseKind(*kindFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *walDir != "" && *snapPath != "" {
		log.Fatal("-wal-dir and -snapshot are mutually exclusive: the WAL directory owns its own snapshot generations")
	}
	fsync, err := wal.ParseFsyncPolicy(*fsyncFlag)
	if err != nil {
		log.Fatal(err)
	}
	st := store.New(store.Config{
		Kind:           kind,
		K:              *k,
		Seed:           *seed,
		BucketWidth:    *bucket,
		Retention:      *retention,
		Shards:         *shards,
		MaxKeys:        *maxKeys,
		WindowDelta:    *windowSec,
		DecayLambda:    *lambda,
		GroupM:         *groupM,
		StratumK:       *stratumK,
		StratifiedDims: *dims,
	})

	var mgr *wal.Manager
	if *walDir != "" {
		mgr, err = wal.Open(*walDir, st, wal.Options{
			Fsync:         fsync,
			FsyncInterval: *fsyncEvery,
			SegmentBytes:  *segBytes,
		})
		if err != nil {
			log.Fatalf("open wal %s: %v", *walDir, err)
		}
	} else if *snapPath != "" {
		if f, err := os.Open(*snapPath); err == nil {
			err = st.Restore(f)
			f.Close()
			if err != nil {
				log.Fatalf("restore %s: %v", *snapPath, err)
			}
			s := st.Stats()
			log.Printf("restored %d keys / %d buckets from %s", s.Keys, s.Buckets, *snapPath)
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatalf("open snapshot %s: %v", *snapPath, err)
		}
	}

	srv := server.NewWithOptions(st, server.Options{
		SnapshotPath:     *snapPath,
		MaxInflightItems: *inflight,
		MaxBatchItems:    *maxBatch,
		Durable:          mgr,
	})
	httpSrv := server.NewHTTPServer(*addr, srv.Handler())

	// Bind before recovery so probes and clients see a live socket that
	// answers /healthz and a 503 /readyz instead of connection refused;
	// recovery can take a while on a large log.
	if mgr != nil {
		srv.SetReady(false)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("atsd listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	if mgr != nil {
		rs, err := mgr.Recover()
		if err != nil {
			log.Fatalf("wal recovery: %v", err)
		}
		log.Printf("recovered from %s: snapshot seq %d, %d records replayed, %d skipped (rejected snapshots %d, torn bytes %d, quarantined %d)",
			*walDir, rs.SnapshotSeq, rs.RecordsApplied, rs.RecordsSkipped,
			rs.SnapshotsRejected, rs.TornBytesTruncated, rs.QuarantinedBytes)
		srv.SetReady(true)
	}
	log.Printf("atsd serving %s sketches on %s (k=%d, bucket=%v, retention=%d, fsync=%s)",
		kind, *addr, *k, *bucket, *retention, durMode(mgr, fsync))

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain: flip /readyz to 503 and refuse new ingest, let in-flight
	// requests finish, then cut the final durable state.
	log.Print("shutting down")
	srv.StartDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTmo)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if mgr != nil {
		if info, err := mgr.Snapshot(); err != nil {
			log.Printf("final snapshot: %v", err)
		} else {
			fmt.Printf("snapshot: seq %d, %d bytes -> %s\n", info.Seq, info.Bytes, info.Path)
		}
		if err := mgr.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	} else if *snapPath != "" {
		n, err := srv.SnapshotToPath()
		if err != nil {
			log.Fatalf("final snapshot: %v", err)
		}
		fmt.Printf("snapshot: %d bytes -> %s\n", n, *snapPath)
	}
}

func durMode(mgr *wal.Manager, fsync wal.FsyncPolicy) string {
	if mgr == nil {
		return "off"
	}
	return fsync.String()
}
