package main

// Crash-recovery end-to-end harness: SIGKILL a real atsd mid-ingest at
// randomized failpoints, restart it over the same WAL directory, and
// prove zero acknowledged write loss — every acknowledged batch is in
// the recovered log byte-for-byte, and the restarted daemon's streamed
// snapshot is bit-identical to a reference store fed exactly the
// surviving log records.
//
// Iterations default to 4 locally; CI raises them with ATS_CRASH_ITERS.
// Skipped under -short.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"ats/internal/engine"
	"ats/internal/fail"
	"ats/internal/store"
	"ats/internal/wal"
	"ats/internal/wire"
)

const crashMaxBatches = 30

// crashPoints are the failpoint specs an iteration picks from; %d is
// the randomized hit count. Each kills the daemon at a different
// instant of the append→fsync→apply→ack pipeline.
var crashPoints = []string{
	"wal/append/before=exit@%d", // before anything is written: batch fully lost, never acked
	"wal/append/torn=torn@%d",   // half a record on disk: recovery truncates it
	"wal/append/after=exit@%d",  // logged but not applied or acked
	"wal/apply/after=exit@%d",   // logged and applied, crash before the ack
}

// daemonConfig is the flag set the crashed and restarted daemons share;
// the reference store must be built from the identical configuration.
func daemonStoreConfig() store.Config {
	return store.Config{Kind: store.BottomK, K: 1024, Seed: 1, BucketWidth: time.Minute, Retention: 60}
}

// crashBatch derives a deterministic batch from its index, cycling the
// sketch kinds so replay covers the whole family.
func crashBatch(i int) (ns, metric string, kind store.Kind, items []engine.Item) {
	kinds := store.Kinds()
	kind = kinds[i%len(kinds)]
	ns = "crash"
	metric = fmt.Sprintf("m-%s", kind)
	rng := rand.New(rand.NewSource(int64(i) + 42))
	items = make([]engine.Item, 1+i%4)
	for j := range items {
		items[j] = engine.Item{
			Key:    rng.Uint64(),
			Weight: 1 + rng.Float64()*9,
			Value:  rng.Float64() * 50,
			Group:  rng.Uint64() % 4,
			Strata: []uint32{uint32(j % 3), uint32(i % 3)},
		}
	}
	return ns, metric, kind, items
}

func crashFrame(t *testing.T, i int) []byte {
	t.Helper()
	ns, metric, kind, items := crashBatch(i)
	frame, err := wire.AppendFrame(nil, wire.Frame{
		Namespace: ns, Metric: metric, Kind: byte(kind), Items: items})
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func buildAtsd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "atsd")
	// Race-instrument the daemon itself: a data race in atsd aborts the
	// process mid-iteration and fails the harness.
	cmd := exec.Command("go", "build", "-race", "-o", bin, "ats/cmd/atsd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build atsd: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startAtsd launches the daemon and waits for /readyz; failpoints is
// the ATS_FAILPOINTS value ("" = none).
func startAtsd(t *testing.T, bin, addr, walDir, fsync, failpoints string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-wal-dir", walDir, "-fsync", fsync,
		"-fsync-interval", "10ms", "-shutdown-timeout", "2s")
	cmd.Env = os.Environ()
	if failpoints != "" {
		cmd.Env = append(cmd.Env, fail.EnvVar+"="+failpoints)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("daemon on %s never became ready", addr)
	return nil
}

func waitForDeath(cmd *exec.Cmd, timeout time.Duration) bool {
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("crash e2e builds and kills real daemons; skipped in -short")
	}
	iters := 4
	if v := os.Getenv("ATS_CRASH_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("ATS_CRASH_ITERS=%q: %v", v, err)
		}
		iters = n
	}
	bin := buildAtsd(t)
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("iteration seed %d", seed)

	fsyncs := []string{"always", "interval", "none"}
	for iter := 0; iter < iters; iter++ {
		point := crashPoints[rng.Intn(len(crashPoints))]
		spec := fmt.Sprintf(point, 1+rng.Intn(crashMaxBatches-5))
		fsync := fsyncs[rng.Intn(len(fsyncs))]
		t.Run(fmt.Sprintf("iter%d_%s_%s", iter, fsync, spec[:len(spec)-len("=exit@00")]), func(t *testing.T) {
			runCrashIteration(t, bin, rng, fsync, spec)
		})
	}
}

func runCrashIteration(t *testing.T, bin string, rng *rand.Rand, fsync, failpoints string) {
	walDir := t.TempDir()
	addr := freeAddr(t)

	// Phase 1: ingest sequentially until the armed failpoint kills the
	// daemon. Only a 200 counts as acknowledged.
	cmd := startAtsd(t, bin, addr, walDir, fsync, failpoints)
	acked := 0
	for i := 1; i <= crashMaxBatches; i++ {
		resp, err := http.Post("http://"+addr+"/v1/addb", "application/octet-stream",
			bytes.NewReader(crashFrame(t, i)))
		if err != nil {
			break // connection died mid-request: the daemon crashed
		}
		ok := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if !ok {
			break
		}
		acked = i
	}
	// Either the failpoint fired (daemon dead) or every batch landed;
	// in the latter case SIGKILL it ourselves — still a valid crash.
	if !waitForDeath(cmd, 2*time.Second) {
		cmd.Process.Kill()
		waitForDeath(cmd, 5*time.Second)
	}

	// Phase 2: the log on disk must hold every acknowledged batch
	// byte-for-byte, in order, plus at most one unacknowledged tail
	// record (logged, crashed before the ack).
	verifyAckedPrefix(t, walDir, acked)

	// Phase 3: restart clean over the same directory; its recovered
	// keyspace must be bit-identical to a reference store fed exactly
	// the surviving log records.
	cmd2 := startAtsd(t, bin, addr, walDir, fsync, "")
	defer func() {
		cmd2.Process.Signal(os.Interrupt)
		if !waitForDeath(cmd2, 5*time.Second) {
			cmd2.Process.Kill()
			cmd2.Wait()
		}
	}()
	resp, err := http.Post("http://"+addr+"/v1/snapshot?stream=1", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stream snapshot: status %d err %v", resp.StatusCode, err)
	}

	// Recovery may have truncated a torn tail, so reread the log as it
	// stands now and replay it into the reference.
	recs, err := wal.ReadAll(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < acked {
		t.Fatalf("recovered log holds %d records, %d were acknowledged", len(recs), acked)
	}
	ref := store.New(daemonStoreConfig())
	for _, r := range recs {
		if err := ref.AddBatchKindAt(r.Frame.Namespace, r.Frame.Metric,
			store.Kind(r.Frame.Kind), r.Frame.Items, time.Unix(0, r.At)); err != nil {
			t.Fatalf("reference replay seq %d: %v", r.Seq, err)
		}
	}
	var want bytes.Buffer
	if err := ref.Snapshot(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("recovered snapshot (%d bytes) diverges from reference (%d bytes): acknowledged-write determinism broken",
			len(got), want.Len())
	}
}

// phaseFrame is crashFrame with the namespace overridden. The
// fallback test keeps its pre- and post-snapshot keyspaces disjoint:
// store.Restore seals restored buckets, so ingest into the SAME key
// after a restore opens a second bucket at the same index — query
// results merge seamlessly, but snapshot bytes then legitimately
// differ from a never-restored replay. Disjoint keys keep the
// byte-identity oracle exact.
func phaseFrame(t *testing.T, i int, ns string) []byte {
	t.Helper()
	_, metric, kind, items := crashBatch(i)
	frame, err := wire.AppendFrame(nil, wire.Frame{
		Namespace: ns, Metric: metric, Kind: byte(kind), Items: items})
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestCrashDuringSnapshotFallsBack crashes a real daemon while it
// writes a snapshot generation's footer, leaving a torn FINAL-named
// generation on disk. Boot must reject it, fall back to generation N-1,
// and rebuild the missing suffix from the WAL.
func TestCrashDuringSnapshotFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("crash e2e builds and kills real daemons; skipped in -short")
	}
	bin := buildAtsd(t)
	walDir := t.TempDir()
	addr := freeAddr(t)

	// Second snapshot tears: the first generation (seq 5) lands sound.
	cmd := startAtsd(t, bin, addr, walDir, "none", "snap/footer/torn=torn@2")
	for i := 1; i <= 5; i++ {
		resp, err := http.Post("http://"+addr+"/v1/addb", "application/octet-stream",
			bytes.NewReader(phaseFrame(t, i, "pre")))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %v", i, err)
		}
		resp.Body.Close()
	}
	if resp, err := http.Post("http://"+addr+"/v1/snapshot", "", nil); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("first snapshot: %v", err)
	} else {
		resp.Body.Close()
	}
	for i := 6; i <= 10; i++ {
		resp, err := http.Post("http://"+addr+"/v1/addb", "application/octet-stream",
			bytes.NewReader(phaseFrame(t, i, "post")))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %v", i, err)
		}
		resp.Body.Close()
	}
	// The daemon dies mid-footer; the request fails either way.
	if resp, err := http.Post("http://"+addr+"/v1/snapshot", "", nil); err == nil {
		resp.Body.Close()
	}
	if !waitForDeath(cmd, 5*time.Second) {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("snap/footer/torn did not kill the daemon")
	}
	gens, _ := filepath.Glob(filepath.Join(walDir, "snap-*.ats"))
	if len(gens) != 2 {
		t.Fatalf("want a sound and a torn generation on disk, got %v", gens)
	}

	cmd2 := startAtsd(t, bin, addr, walDir, "none", "")
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Ingest struct {
			Durability struct {
				Recovery wal.RecoveryStats `json:"recovery"`
			} `json:"durability"`
		} `json:"ingest"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	rec := stats.Ingest.Durability.Recovery
	if rec.SnapshotsRejected != 1 || rec.SnapshotSeq != 5 || rec.RecordsApplied != 5 {
		t.Fatalf("expected fallback to generation N-1 at seq 5 with 5 replayed: %+v", rec)
	}

	// And the recovered keyspace still matches a full reference replay.
	sresp, err := http.Post("http://"+addr+"/v1/snapshot?stream=1", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	recs, err := wal.ReadAll(walDir)
	if err != nil || len(recs) != 10 {
		t.Fatalf("log: %d records err %v", len(recs), err)
	}
	ref := store.New(daemonStoreConfig())
	for _, r := range recs {
		if err := ref.AddBatchKindAt(r.Frame.Namespace, r.Frame.Metric,
			store.Kind(r.Frame.Kind), r.Frame.Items, time.Unix(0, r.At)); err != nil {
			t.Fatal(err)
		}
	}
	var want bytes.Buffer
	if err := ref.Snapshot(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		off := 0
		for off < len(got) && off < len(want.Bytes()) && got[off] == want.Bytes()[off] {
			off++
		}
		t.Fatalf("post-fallback keyspace diverges from reference replay: got %d bytes, want %d, first diff at %d",
			len(got), want.Len(), off)
	}
}

// verifyAckedPrefix decodes the raw on-disk log and checks records
// 1..acked byte-match the client's canonical frames; one extra record
// beyond acked is legal (written, crash before the ack), more is not.
func verifyAckedPrefix(t *testing.T, walDir string, acked int) {
	t.Helper()
	recs, err := wal.ReadAll(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < acked {
		t.Fatalf("log holds %d intact records, client had %d acknowledged", len(recs), acked)
	}
	if len(recs) > acked+1 {
		t.Fatalf("log holds %d records for %d acknowledged batches — more than one in-flight", len(recs), acked)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has sequence %d", i, r.Seq)
		}
		gotFrame, err := wire.AppendFrame(nil, r.Frame)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotFrame, crashFrame(t, i+1)) {
			t.Fatalf("record %d differs from the batch the client sent", i+1)
		}
	}
}
