// Command atsgen emits synthetic workloads on stdout, one token per line,
// for piping into atstopk or external tools.
//
// Usage:
//
//	atsgen -dist pitman-yor -beta 0.7 -n 100000 | atstopk -k 10
//	atsgen -dist zipf -items 5000 -s 1.2 -n 100000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ats/internal/stream"
)

func main() {
	dist := flag.String("dist", "pitman-yor", "distribution: pitman-yor | zipf | uniform")
	n := flag.Int("n", 100000, "number of tokens")
	beta := flag.Float64("beta", 0.5, "Pitman-Yor discount in [0, 1)")
	items := flag.Int("items", 10000, "universe size (zipf, uniform)")
	s := flag.Float64("s", 1.1, "Zipf exponent")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var next func() uint64
	switch *dist {
	case "pitman-yor":
		py := stream.NewPitmanYor(*beta, *seed)
		next = py.Next
	case "zipf":
		z := stream.NewZipf(*items, *s, *seed)
		next = z.Next
	case "uniform":
		rng := stream.NewRNG(*seed)
		m := *items
		next = func() uint64 { return uint64(rng.Intn(m)) }
	default:
		fmt.Fprintf(os.Stderr, "atsgen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	for i := 0; i < *n; i++ {
		fmt.Fprintf(w, "item%d\n", next())
	}
}
