package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ats/internal/stream"
)

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	// Zero jitter maps to exactly 0.5x the nominal delay.
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 25 * time.Millisecond},   // 50ms * 0.5
		{2, 50 * time.Millisecond},   // 100ms * 0.5
		{3, 100 * time.Millisecond},  // 200ms * 0.5
		{8, 2500 * time.Millisecond}, // capped at 5s * 0.5
		{30, 2500 * time.Millisecond},
	} {
		if got := backoffDelay(tc.attempt, 0); got != tc.want {
			t.Errorf("backoffDelay(%d, 0) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	// Full jitter stays under 1.5x nominal and respects the cap.
	if got := backoffDelay(4, 0.999); got < 200*time.Millisecond || got > 600*time.Millisecond {
		t.Errorf("backoffDelay(4, 0.999) = %v, want ~[200ms, 600ms)", got)
	}
	for a := 1; a <= 40; a++ {
		if got := backoffDelay(a, 0.999); got >= time.Duration(1.5*float64(backoffCap))+time.Millisecond {
			t.Errorf("attempt %d: delay %v exceeds jittered cap", a, got)
		}
	}
}

func TestRetryableStatus(t *testing.T) {
	for code, want := range map[int]bool{502: true, 503: true, 504: true,
		200: false, 400: false, 409: false, 429: false, 500: false} {
		if got := retryableStatus(code); got != want {
			t.Errorf("retryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

// TestSendRetries503ThenSucceeds drives send through a daemon that is
// "draining" for two requests and healthy on the third.
func TestSendRetries503ThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"added":1}`))
	}))
	defer ts.Close()

	var st workerStats
	err := st.send(ts.Client(), ts.URL+"/v1/add", "application/json",
		[]byte(`{}`), stream.NewRNG(1), 5)
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	if st.retries != 2 || st.requests != 1 {
		t.Fatalf("retries=%d requests=%d, want 2 and 1", st.retries, st.requests)
	}
}

// TestSendReconnectsAfterTransportError drives send through a listener
// that kills the first two connections at the socket level — the shape
// of a daemon SIGKILLed mid-request — then serves normally.
func TestSendReconnectsAfterTransportError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0) // RST, not FIN: the client sees a hard error
			}
			conn.Close()
			return
		}
		w.Write([]byte(`{"added":1}`))
	}))
	defer ts.Close()

	var st workerStats
	err := st.send(ts.Client(), ts.URL+"/v1/add", "application/json",
		[]byte(`{}`), stream.NewRNG(1), 5)
	if err != nil {
		t.Fatalf("send after transport errors: %v", err)
	}
	if st.retries != 2 || st.requests != 1 {
		t.Fatalf("retries=%d requests=%d, want 2 and 1", st.retries, st.requests)
	}
}

// TestSendGivesUpAtRetryCap proves the cap is a cap: a daemon that
// never recovers fails the batch instead of spinning forever.
func TestSendGivesUpAtRetryCap(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad gateway"}`, http.StatusBadGateway)
	}))
	defer ts.Close()

	var st workerStats
	err := st.send(ts.Client(), ts.URL+"/v1/add", "application/json",
		[]byte(`{}`), stream.NewRNG(1), 2)
	if err == nil {
		t.Fatal("send succeeded against a permanently failing daemon")
	}
	if !strings.Contains(err.Error(), "status 502") {
		t.Fatalf("error does not name the failure: %v", err)
	}
	if st.retries != 3 {
		t.Fatalf("retries=%d, want 3 (cap of 2 + the final attempt)", st.retries)
	}
}

// TestSendNonRetryableIsFatal: a 400 must fail immediately — resending
// a malformed batch can never help.
func TestSendNonRetryableIsFatal(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"malformed"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	var st workerStats
	err := st.send(ts.Client(), ts.URL+"/v1/add", "application/json",
		[]byte(`{}`), stream.NewRNG(1), 5)
	if err == nil || calls.Load() != 1 {
		t.Fatalf("err=%v calls=%d, want one fatal attempt", err, calls.Load())
	}
}
