// Command atsload is the seeded, reproducible load generator for the
// atsd serving daemon: it drives the same synthetic workload through
// the JSON (/v1/add) and binary (/v1/addb) ingest transports and
// reports sustained items/s plus per-request latency quantiles, so the
// serving layer's cost is measured end to end and recorded next to the
// micro-benchmarks in BENCH_<n>.json.
//
// The stream is deterministic: -seed forks one decorrelated RNG stream
// per worker (stream.ForkSeeds), so two runs with the same flags offer
// the daemon byte-identical frames in the same per-worker order. Keys
// follow a Zipf or uniform distribution over -keyspace; batches walk
// the requested sketch kinds round-robin, stamping group labels for
// groupby and stratum coordinates for stratified.
//
//	atsd -addr :8321 &
//	atsload -addr http://localhost:8321 -mode both -items 400000 -out BENCH_5.json
//
// Admission-gate 429s are honored: the worker sleeps for the server's
// Retry-After and resends the same batch, so a throttled run still
// ingests every item and the rejection count lands in the report.
//
// -queries N appends a read phase after ingest: the same full-range
// query repeated N times, recording the cold first request (a full
// sealed-bucket collapse) against the plan-cache-warm repeats.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ats/internal/bench"
	"ats/internal/engine"
	"ats/internal/store"
	"ats/internal/stream"
	"ats/internal/wire"
)

type config struct {
	addr      string
	mode      string
	kinds     []store.Kind
	kindsFlag string
	workers   int
	items     int64
	batch     int
	dist      string
	zipfS     float64
	keyspace  int
	seed      uint64
	namespace string
	out       string
	retries   int
	checkSrv  bool
	queries   int64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://localhost:8321", "atsd base URL")
	flag.StringVar(&cfg.mode, "mode", "both", "transport: json, binary, or both (binary after json)")
	flag.StringVar(&cfg.kindsFlag, "kinds", "all", "comma-separated sketch kinds to spread the stream across, or all")
	flag.IntVar(&cfg.workers, "workers", 4, "concurrent ingest workers per mode")
	flag.Int64Var(&cfg.items, "items", 400_000, "items to ingest per mode")
	flag.IntVar(&cfg.batch, "batch", 512, "items per request")
	flag.StringVar(&cfg.dist, "dist", "zipf", "key distribution: zipf or uniform")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.2, "zipf skew (with -dist zipf)")
	flag.IntVar(&cfg.keyspace, "keyspace", 100_000, "distinct keys in the synthetic stream")
	flag.Uint64Var(&cfg.seed, "seed", 42, "root seed; forked per worker for decorrelated streams")
	flag.StringVar(&cfg.namespace, "namespace", "load", "ingest namespace")
	flag.StringVar(&cfg.out, "out", "", "BENCH_<n>.json to merge serving results into (created if absent)")
	flag.IntVar(&cfg.retries, "retries", 8, "consecutive retries per batch before a worker gives up (transport errors, 429s and 502/503/504s)")
	flag.BoolVar(&cfg.checkSrv, "check-server-quantiles", true, "cross-check client p99 against the server-side /metrics histograms and fail on disagreement")
	flag.Int64Var(&cfg.queries, "queries", 0, "after ingest, repeat a full-range query this many times and report the cold-vs-warm latency split (0 = skip)")
	flag.Parse()

	if cfg.mode != "json" && cfg.mode != "binary" && cfg.mode != "both" {
		fmt.Fprintf(os.Stderr, "atsload: unknown -mode %q\n", cfg.mode)
		os.Exit(2)
	}
	if cfg.dist != "zipf" && cfg.dist != "uniform" {
		fmt.Fprintf(os.Stderr, "atsload: unknown -dist %q\n", cfg.dist)
		os.Exit(2)
	}
	if cfg.kindsFlag == "all" {
		cfg.kinds = store.Kinds()
	} else {
		for _, s := range strings.Split(cfg.kindsFlag, ",") {
			k, err := store.ParseKind(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "atsload:", err)
				os.Exit(2)
			}
			cfg.kinds = append(cfg.kinds, k)
		}
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.workers * 4,
		MaxIdleConnsPerHost: cfg.workers * 4,
	}}
	if err := waitReady(client, cfg.addr); err != nil {
		fmt.Fprintln(os.Stderr, "atsload:", err)
		os.Exit(1)
	}

	modes := []string{cfg.mode}
	if cfg.mode == "both" {
		modes = []string{"json", "binary"}
	}
	endpoints := map[string]string{"json": "/v1/add", "binary": "/v1/addb"}
	var servings []bench.Serving
	checkFailed := false
	for _, mode := range modes {
		before, err := scrapeMetrics(client, cfg.addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atsload: scrape before run:", err)
			os.Exit(1)
		}
		s := runMode(client, cfg, mode)
		after, err := scrapeMetrics(client, cfg.addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atsload: scrape after run:", err)
			os.Exit(1)
		}
		s.Server = serverSide(before, after, endpoints[mode])
		servings = append(servings, s)
		fmt.Printf("%-22s %10.0f items/s  %8.1f ns/item  p50 %6.2fms  p99 %6.2fms  p999 %6.2fms  (%d items, %d reqs, %d x 429)\n",
			s.Name, s.ItemsPerSec, s.NsPerItem, s.P50Ms, s.P99Ms, s.P999Ms, s.Items, s.Requests, s.Rejected429)
		if s.Server == nil {
			fmt.Printf("%-22s (daemon exposes no /metrics; server-side view skipped)\n", "")
			continue
		}
		fmt.Printf("%-22s server %s p50 ≤%.2fms p99 ≤%.2fms", "", endpoints[mode],
			s.Server.EndpointP50Ms, s.Server.EndpointP99Ms)
		for _, st := range s.Server.Stages {
			fmt.Printf("  %s %.1fms", st.Stage, st.TotalMs)
		}
		fmt.Println()
		if cfg.checkSrv {
			if err := checkQuantiles(s); err != nil {
				fmt.Fprintln(os.Stderr, "atsload: quantile cross-check:", err)
				checkFailed = true
			}
		}
	}
	if len(servings) == 2 {
		speedup := servings[0].NsPerItem / servings[1].NsPerItem
		fmt.Printf("binary/json per-item speedup: %.2fx\n", speedup)
	}
	if cfg.queries > 0 {
		s, err := runQueries(client, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atsload:", err)
			os.Exit(1)
		}
		servings = append(servings, s)
	}

	if cfg.out != "" {
		report, err := bench.Load(cfg.out)
		if err != nil {
			if !os.IsNotExist(err) {
				fmt.Fprintln(os.Stderr, "atsload:", err)
				os.Exit(1)
			}
			report = bench.Report{Schema: bench.Schema}
		}
		for _, s := range servings {
			report.MergeServing(s)
		}
		if err := report.Write(cfg.out); err != nil {
			fmt.Fprintln(os.Stderr, "atsload: write:", err)
			os.Exit(1)
		}
		fmt.Printf("merged %d serving result(s) into %s\n", len(servings), cfg.out)
	}
	if checkFailed {
		// The report (with both views) is written above so the
		// disagreement can be diagnosed; the run still fails.
		os.Exit(1)
	}
}

// waitReady polls /v1/stats briefly so a freshly exec'd daemon has time
// to bind before the measured run starts.
func waitReady(client *http.Client, addr string) error {
	var last error
	for i := 0; i < 50; i++ {
		resp, err := client.Get(addr + "/v1/stats")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("%s/v1/stats: status %d", addr, resp.StatusCode)
		} else {
			last = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("daemon not ready: %w", last)
}

// workerStats is one worker's tally, merged after the run.
type workerStats struct {
	items     int64
	requests  int64
	rejected  int64
	retries   int64
	latencies []time.Duration
	err       error
}

// runMode ingests cfg.items items through one transport and measures it.
func runMode(client *http.Client, cfg config, mode string) bench.Serving {
	perWorker := cfg.items / int64(cfg.workers)
	seeds := stream.ForkSeeds(cfg.seed, cfg.workers)
	stats := make([]workerStats, cfg.workers)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := perWorker
			if w == cfg.workers-1 {
				n = cfg.items - perWorker*int64(cfg.workers-1)
			}
			stats[w] = runWorker(client, cfg, mode, seeds[w], w, n)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var total workerStats
	for _, s := range stats {
		if s.err != nil && total.err == nil {
			total.err = s.err
		}
		total.items += s.items
		total.requests += s.requests
		total.rejected += s.rejected
		total.retries += s.retries
		total.latencies = append(total.latencies, s.latencies...)
	}
	if total.retries > 0 {
		fmt.Fprintf(os.Stderr, "atsload: %s: %d transient failures retried\n", mode, total.retries)
	}
	if total.err != nil {
		fmt.Fprintln(os.Stderr, "atsload:", total.err)
		os.Exit(1)
	}
	if total.items != cfg.items {
		fmt.Fprintf(os.Stderr, "atsload: ingested %d of %d items\n", total.items, cfg.items)
		os.Exit(1)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })

	ns := float64(wall.Nanoseconds()) / float64(total.items)
	return bench.Serving{
		Name:        "serve/ingest/" + mode,
		Mode:        mode,
		Kinds:       cfg.kindsFlag,
		Dist:        cfg.dist,
		Seed:        cfg.seed,
		Workers:     cfg.workers,
		BatchItems:  cfg.batch,
		Items:       total.items,
		WallSeconds: wall.Seconds(),
		ItemsPerSec: 1e9 / ns,
		NsPerItem:   ns,
		P50Ms:       quantileMs(total.latencies, 0.50),
		P99Ms:       quantileMs(total.latencies, 0.99),
		P999Ms:      quantileMs(total.latencies, 0.999),
		Requests:    total.requests,
		Rejected429: total.rejected,
	}
}

// runQueries measures the repeated-range-query path after ingest: the
// first full-range query over the run's sealed buckets is cold (the
// store collapses every sealed sketch), repeats are answered from the
// plan cache when the daemon has it enabled. The reported quantiles
// cover all requests; the cold first request and the number of
// plan-cache-answered responses are printed so the warm payoff is
// visible end to end. Requests are sequential — this row measures
// per-query latency, not query throughput.
func runQueries(client *http.Client, cfg config) (bench.Serving, error) {
	metric := "load-" + cfg.kinds[0].String()
	url := fmt.Sprintf("%s/v1/query?namespace=%s&metric=%s&from=0", cfg.addr, cfg.namespace, metric)
	latencies := make([]time.Duration, 0, cfg.queries)
	var planned int64
	start := time.Now()
	for i := int64(0); i < cfg.queries; i++ {
		t0 := time.Now()
		resp, err := client.Get(url)
		if err != nil {
			return bench.Serving{}, fmt.Errorf("query %d: %w", i, err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return bench.Serving{}, fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, body)
		}
		latencies = append(latencies, time.Since(t0))
		var res struct {
			Result struct {
				Planned bool `json:"planned"`
			} `json:"result"`
		}
		if err := json.Unmarshal(body, &res); err != nil {
			return bench.Serving{}, fmt.Errorf("query %d: parse response: %w", i, err)
		}
		if res.Result.Planned {
			planned++
		}
	}
	wall := time.Since(start)
	cold := latencies[0]
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ns := float64(wall.Nanoseconds()) / float64(cfg.queries)
	s := bench.Serving{
		Name:        "serve/query/range",
		Mode:        "query",
		Kinds:       cfg.kinds[0].String(),
		Dist:        cfg.dist,
		Seed:        cfg.seed,
		Workers:     1,
		Items:       cfg.queries,
		WallSeconds: wall.Seconds(),
		ItemsPerSec: 1e9 / ns,
		NsPerItem:   ns,
		P50Ms:       quantileMs(sorted, 0.50),
		P99Ms:       quantileMs(sorted, 0.99),
		P999Ms:      quantileMs(sorted, 0.999),
		Requests:    cfg.queries,
	}
	fmt.Printf("%-22s %10.0f queries/s  p50 %6.2fms  p99 %6.2fms  cold %6.2fms  (%d queries, %d plan-cache answered)\n",
		s.Name, s.ItemsPerSec, s.P50Ms, s.P99Ms, float64(cold)/float64(time.Millisecond), cfg.queries, planned)
	return s, nil
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// runWorker generates and sends this worker's share of the stream. The
// item sequence depends only on (seed, worker index, kinds, dist), not
// on the transport, so json and binary runs offer identical streams.
func runWorker(client *http.Client, cfg config, mode string, seed uint64, w int, n int64) workerStats {
	rng := stream.NewRNG(seed)
	var zipf *stream.Zipf
	if cfg.dist == "zipf" {
		zipf = stream.NewZipf(cfg.keyspace, cfg.zipfS, seed^0x5bf03635)
	}
	nextKey := func() uint64 {
		if zipf != nil {
			return zipf.Next()
		}
		return rng.Uint64() % uint64(cfg.keyspace)
	}

	var st workerStats
	st.latencies = make([]time.Duration, 0, n/int64(cfg.batch)+1)
	items := make([]engine.Item, 0, cfg.batch)
	var jsonBuf bytes.Buffer
	var binBuf []byte

	for batchNo := 0; st.items < n; batchNo++ {
		kind := cfg.kinds[batchNo%len(cfg.kinds)]
		m := int64(cfg.batch)
		if m > n-st.items {
			m = n - st.items
		}
		items = items[:0]
		for i := int64(0); i < m; i++ {
			wgt := 0.5 + 9.5*rng.Float64()
			it := engine.Item{Key: nextKey(), Weight: wgt, Value: wgt}
			switch kind {
			case store.GroupBy:
				it.Group = rng.Uint64() % 16
			case store.Stratified:
				it.Strata = []uint32{uint32(rng.Intn(8)), uint32(rng.Intn(4))}
			case store.Distinct, store.TopK:
				it.Weight, it.Value = 1, 0
			}
			items = append(items, it)
		}

		var url, ctype string
		var body []byte
		metric := "load-" + kind.String()
		if mode == "binary" {
			var err error
			binBuf, err = wire.AppendFrame(binBuf[:0], wire.Frame{
				Namespace: cfg.namespace, Metric: metric, Kind: byte(kind), Items: items})
			if err != nil {
				st.err = fmt.Errorf("worker %d: encode: %w", w, err)
				return st
			}
			url, ctype, body = cfg.addr+"/v1/addb", "application/octet-stream", binBuf
		} else {
			jsonBuf.Reset()
			fmt.Fprintf(&jsonBuf, `{"namespace":%q,"metric":%q,"kind":%q,"items":[`,
				cfg.namespace, metric, kind.String())
			for i, it := range items {
				if i > 0 {
					jsonBuf.WriteByte(',')
				}
				fmt.Fprintf(&jsonBuf, `{"key":%d,"weight":%g,"value":%g`, it.Key, it.Weight, it.Value)
				if it.Group != 0 {
					fmt.Fprintf(&jsonBuf, `,"group":%d`, it.Group)
				}
				if len(it.Strata) > 0 {
					jsonBuf.WriteString(`,"strata":[`)
					for j, s := range it.Strata {
						if j > 0 {
							jsonBuf.WriteByte(',')
						}
						fmt.Fprintf(&jsonBuf, "%d", s)
					}
					jsonBuf.WriteByte(']')
				}
				jsonBuf.WriteByte('}')
			}
			jsonBuf.WriteString(`]}`)
			url, ctype, body = cfg.addr+"/v1/add", "application/json", jsonBuf.Bytes()
		}

		if err := st.send(client, url, ctype, body, rng, cfg.retries); err != nil {
			st.err = fmt.Errorf("worker %d: %w", w, err)
			return st
		}
		st.items += m
	}
	return st
}

// send posts one batch, retrying transient failures with jittered
// exponential backoff: admission-gate 429s (honoring Retry-After when
// present), gateway-style 502/503/504s, and transport errors — the
// daemon dying or restarting mid-request — where pooled connections are
// dropped so the retry reconnects instead of reusing a dead socket.
// After maxRetries consecutive failures the batch is given up on. Only
// successful requests enter the latency sample; 429s and retried
// failures are counted separately.
func (st *workerStats) send(client *http.Client, url, ctype string, body []byte, rng *stream.RNG, maxRetries int) error {
	attempt := 0
	for {
		t0 := time.Now()
		resp, err := client.Post(url, ctype, bytes.NewReader(body))
		if err != nil {
			attempt++
			st.retries++
			if attempt > maxRetries {
				return fmt.Errorf("POST %s: giving up after %d attempts: %w", url, attempt, err)
			}
			// Reconnect path: the pool may hold sockets into a daemon
			// that died; force fresh dials before the resend.
			client.CloseIdleConnections()
			time.Sleep(backoffDelay(attempt, rng.Float64()))
			continue
		}
		lat := time.Since(t0)
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			st.requests++
			st.latencies = append(st.latencies, lat)
			return nil
		case resp.StatusCode == http.StatusTooManyRequests:
			st.rejected++
			attempt++
			if attempt > maxRetries {
				return fmt.Errorf("POST %s: still throttled after %d attempts: %s", url, attempt, msg)
			}
			delay := backoffDelay(attempt, rng.Float64())
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = time.Duration(ra) * time.Second
			}
			time.Sleep(delay)
		case retryableStatus(resp.StatusCode):
			st.retries++
			attempt++
			if attempt > maxRetries {
				return fmt.Errorf("POST %s: status %d after %d attempts: %s", url, resp.StatusCode, attempt, msg)
			}
			time.Sleep(backoffDelay(attempt, rng.Float64()))
		default:
			return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, msg)
		}
	}
}
