package main

// Server-side metrics scraping: atsload scrapes the daemon's /metrics
// before and after each mode's run and diffs the cumulative histogram
// buckets, giving the server's own view of exactly this run's traffic
// (concurrent scrapes or earlier modes cannot leak in). The endpoint
// latency quantiles derived from the delta are cross-checked against
// the client-observed quantiles: the two measure the same requests
// from opposite ends of the socket, so they must agree to within the
// histogram's factor-of-two bucket resolution — a cheap end-to-end
// proof that the instrumentation measures what it claims.

import (
	"fmt"
	"io"
	"net/http"

	"ats/internal/bench"
	"ats/internal/obs"
)

// scrapeMetrics fetches and parses /metrics. A 404 (a daemon predating
// the exposition endpoint) returns nil samples and no error, which
// disables the server-side section for the run.
func scrapeMetrics(client *http.Client, addr string) ([]obs.Sample, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	return obs.ParseText(resp.Body)
}

// histDelta reassembles the named histogram series from both scrapes
// and subtracts: the returned buckets hold this run's observations
// only. Histograms absent from the before scrape count as zero.
func histDelta(before, after []obs.Sample, name string, labels map[string]string) (buckets []obs.BucketCount, count uint64, sumSeconds float64, found bool) {
	aB, aSum, aCount, ok := obs.HistogramFromSamples(after, name, labels)
	if !ok {
		return nil, 0, 0, false
	}
	bB, bSum, bCount, _ := obs.HistogramFromSamples(before, name, labels)
	prior := make(map[float64]uint64, len(bB))
	for _, b := range bB {
		prior[b.Le] = b.Cumulative
	}
	buckets = make([]obs.BucketCount, len(aB))
	for i, b := range aB {
		buckets[i] = obs.BucketCount{Le: b.Le, Cumulative: b.Cumulative - prior[b.Le]}
	}
	return buckets, aCount - bCount, aSum - bSum, true
}

// ingestStages is the pipeline order of the stage breakdown.
var ingestStages = []string{"admission", "decode", "wal_append", "fsync", "apply"}

// serverSide builds the bench report's server section for one mode:
// quantiles of the mode's ingest endpoint histogram plus the pipeline
// stage breakdown, all as before/after deltas. Returns nil when the
// daemon exposes no /metrics.
func serverSide(before, after []obs.Sample, endpoint string) *bench.ServerSide {
	if after == nil {
		return nil
	}
	buckets, count, _, ok := histDelta(before, after, "ats_http_request_seconds",
		map[string]string{"endpoint": endpoint})
	if !ok || count == 0 {
		return nil
	}
	out := &bench.ServerSide{
		EndpointP50Ms: obs.QuantileFromBuckets(buckets, 0.50) * 1e3,
		EndpointP99Ms: obs.QuantileFromBuckets(buckets, 0.99) * 1e3,
	}
	for _, stage := range ingestStages {
		sb, sc, sSum, ok := histDelta(before, after, "ats_ingest_stage_seconds",
			map[string]string{"stage": stage})
		if !ok || sc == 0 {
			continue
		}
		out.Stages = append(out.Stages, bench.ServerStage{
			Stage:   stage,
			Count:   sc,
			P50Ms:   obs.QuantileFromBuckets(sb, 0.50) * 1e3,
			P99Ms:   obs.QuantileFromBuckets(sb, 0.99) * 1e3,
			TotalMs: sSum * 1e3,
		})
	}
	return out
}

// checkQuantiles cross-validates the client-observed p99 against the
// server-side endpoint histogram. The server histogram has factor-of-
// two buckets, its p99 is the BUCKET UPPER BOUND, and the client's
// number additionally includes network and client-side overhead — so
// the check is a band, not an equality: the client p99 may not sit
// below half the server bucket's lower bound (the client cannot be
// faster than the server-side portion of the same requests), nor above
// four times the bucket's upper bound plus scheduling slack (the
// server histogram cannot be wildly under-reporting). Runs under 200
// requests are skipped: there the client "p99" is the literal maximum,
// and a single request queued in the kernel before the handler starts
// — time the server middleware cannot see — would fail the band
// without any histogram defect.
const checkMinRequests = 200

func checkQuantiles(s bench.Serving) error {
	if s.Server == nil || s.Requests < checkMinRequests {
		return nil
	}
	serverUpper := s.Server.EndpointP99Ms
	serverLower := serverUpper / 2
	client := s.P99Ms
	if client > serverUpper*4+5 {
		return fmt.Errorf("%s: client p99 %.2fms far above server-side p99 bucket (≤%.2fms): server histogram under-reports",
			s.Name, client, serverUpper)
	}
	if client*2+1 < serverLower {
		return fmt.Errorf("%s: client p99 %.2fms below server-side p99 bucket lower bound %.2fms: impossible ordering, histogram broken",
			s.Name, client, serverLower)
	}
	return nil
}
