package main

import "time"

// Retry tuning for transient ingest failures: transport errors (the
// daemon died or restarted mid-request), admission 429s without a
// usable Retry-After, and gateway-style 502/503/504s (a proxy in front
// of a restarting daemon, or atsd's own drain/recovery 503s).
const (
	backoffBase = 50 * time.Millisecond
	backoffCap  = 5 * time.Second
)

// backoffDelay is the nth (1-based) retry's sleep: exponential from
// backoffBase, capped at backoffCap, with ±50% jitter so a worker fleet
// retrying the same outage does not stampede the daemon in lockstep.
// jitter must be in [0, 1) — callers draw it from their seeded worker
// RNG, keeping runs reproducible.
func backoffDelay(attempt int, jitter float64) time.Duration {
	d := backoffBase
	for i := 1; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	// Scale into [0.5x, 1.5x).
	return time.Duration(float64(d) * (0.5 + jitter))
}

// retryableStatus reports response codes worth resending the same
// batch for. 429 is handled separately (it carries Retry-After).
func retryableStatus(code int) bool {
	switch code {
	case 502, 503, 504:
		return true
	}
	return false
}
