// Command atswindow simulates a sliding-window sampler over a synthetic
// arrival process and prints the evolution of both extraction thresholds
// (G&L and the paper's improved rule) and their sample sizes.
//
// Usage:
//
//	atswindow -k 100 -delta 1 -base 500 -spike 4000
package main

import (
	"flag"
	"fmt"

	"ats/internal/experiments"
)

func main() {
	cfg := experiments.DefaultFig2Config()
	flag.IntVar(&cfg.K, "k", cfg.K, "window sample parameter")
	flag.Float64Var(&cfg.Delta, "delta", cfg.Delta, "window length (s)")
	flag.Float64Var(&cfg.BaseRate, "base", cfg.BaseRate, "base arrival rate (items/s)")
	flag.Float64Var(&cfg.SpikeRate, "spike", cfg.SpikeRate, "spike arrival rate (items/s)")
	flag.Float64Var(&cfg.SpikeStart, "spike-start", cfg.SpikeStart, "spike start time (s)")
	flag.Float64Var(&cfg.SpikeEnd, "spike-end", cfg.SpikeEnd, "spike end time (s)")
	flag.Float64Var(&cfg.End, "end", cfg.End, "simulation end time (s)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.Parse()

	res := experiments.Fig2(cfg)
	fmt.Print(res.FormatFig2(cfg))
}
