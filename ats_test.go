package ats

import (
	"math"
	"testing"
)

// The facade tests exercise the public API end-to-end: anything a
// downstream user imports must work through these paths.

func TestBottomKFacade(t *testing.T) {
	sk := NewBottomK(50, 1)
	truth := 0.0
	for i := 0; i < 1000; i++ {
		w := 1 + float64(i%7)
		sk.Add(uint64(i), w, w)
		truth += w
	}
	sum, varEst := sk.SubsetSum(nil)
	if sum <= 0 || varEst <= 0 {
		t.Fatal("estimates must be positive")
	}
	if rel := math.Abs(sum-truth) / truth; rel > 0.5 {
		t.Errorf("rel error %v too large for a smoke test", rel)
	}
}

func TestRulesFacade(t *testing.T) {
	rng := NewRNG(2)
	pr := make([]float64, 40)
	for i := range pr {
		pr[i] = rng.Float64()
	}
	rule := MinRules(BottomKRule(5), FixedRule(0.9))
	if !CheckSubstitutable(rule, pr) {
		t.Error("min of substitutable rules must be substitutable")
	}
	rec := Recalibrate(rule, pr, []int{0})
	if len(rec) != len(pr) {
		t.Error("recalibrated thresholds wrong length")
	}
	sizes := make([]int, 40)
	for i := range sizes {
		sizes[i] = 1 + i%3
	}
	if th := BudgetRule(sizes, 10)(pr); len(th) != 40 {
		t.Error("budget rule wrong length")
	}
	if th := MaxRules(FixedRule(0.1), FixedRule(0.2))(pr); th[0] != 0.2 {
		t.Error("max rule wrong")
	}
}

func TestEstimatorFacade(t *testing.T) {
	s := []Sampled{{Value: 2, P: 0.5}, {Value: 1, P: 1}}
	if SubsetSum(s) != 5 {
		t.Error("SubsetSum wrong")
	}
	if HTVarianceEstimate(s) != 4*0.5/0.25 {
		t.Error("variance estimate wrong")
	}
	ps := []PairSample{{X: 1, Y: 1, P: 1}, {X: 2, Y: 2, P: 1}}
	if KendallTau(ps, 2) != 1 {
		t.Error("KendallTau wrong")
	}
	var pw PowerSums
	pw.Add(3, 1)
	if pw.Mean() != 3 {
		t.Error("PowerSums wrong")
	}
	if InclusionProb(2, 0.25) != 0.5 {
		t.Error("InclusionProb wrong")
	}
}

func TestDistributionsFacade(t *testing.T) {
	var dists = []Dist{Uniform01{}, InverseWeight{W: 2}, Exponential{Rate: 1}}
	for _, d := range dists {
		u := 0.3
		r := d.Quantile(u)
		if math.Abs(d.CDF(r)-u) > 1e-9 {
			t.Errorf("%T: CDF(Quantile(u)) != u", d)
		}
	}
}

func TestSamplersFacade(t *testing.T) {
	bs := NewBudgetSampler(100, 3)
	bs.Add(1, 1, 1, 10)
	if bs.Len() != 1 {
		t.Error("budget sampler broken")
	}

	ws := NewWindowSampler(5, 1, 4)
	ws.Add(1, 0.5)
	if got, _ := ws.ImprovedSample(); len(got) != 1 {
		t.Error("window sampler broken")
	}

	tk := NewTopKSampler(3, 5)
	for i := 0; i < 100; i++ {
		tk.Add(uint64(i % 5))
	}
	if len(tk.TopK()) != 3 {
		t.Error("topk sampler broken")
	}

	fi := NewFrequentItems(16)
	fi.Add(9)
	if fi.EstimateCount(9) != 1 {
		t.Error("frequent items broken")
	}

	ss := NewSpaceSaving(4)
	ss.Add(7)
	if ss.EstimateCount(7) != 1 {
		t.Error("space saving broken")
	}
}

func TestDistinctFacade(t *testing.T) {
	a := NewDistinctSketch(64, 6)
	b := NewDistinctSketch(64, 6)
	for i := 0; i < 500; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i + 250))
	}
	truth := 750.0
	for name, est := range map[string]float64{
		"theta":   UnionEstimateTheta(a, b),
		"lcs":     UnionEstimateLCS(a, b),
		"bottomk": UnionEstimateBottomK(a, b),
	} {
		if rel := math.Abs(est-truth) / truth; rel > 0.5 {
			t.Errorf("%s union estimate %v far from %v", name, est, truth)
		}
	}

	w := NewWeightedDistinctSketch(32, 7)
	w.Add(1, 2.5)
	if w.DistinctCount() != 1 {
		t.Error("weighted distinct broken")
	}
}

func TestGroupByFacade(t *testing.T) {
	c := NewGroupByCounter(2, 8, 8)
	c.Add(1, 100)
	if c.Estimate(1) != 1 {
		t.Error("group-by counter broken")
	}
}

func TestStratifiedFacade(t *testing.T) {
	items := make([]StratifiedItem, 200)
	for i := range items {
		items[i] = StratifiedItem{Key: uint64(i), Strata: []int{i % 4, i % 3}, Value: 1}
	}
	des := FitStratified(items, 2, 50, 9)
	if len(des.Sample) == 0 || len(des.Sample) > 50 {
		t.Errorf("stratified sample size %d", len(des.Sample))
	}
}

func TestMultiObjectiveFacade(t *testing.T) {
	s := NewMultiObjectiveSketch(10, 2, 10)
	s.Add(MultiObjectiveItem{Key: 1, Weights: []float64{1, 2}, Values: []float64{1, 2}})
	if s.CombinedSize() != 1 {
		t.Error("multi-objective sketch broken")
	}
}

func TestVarianceSizedFacade(t *testing.T) {
	s := NewVarianceSizedSampler(100, 2, 11)
	s.SetHorizon(10)
	for i := 0; i < 10; i++ {
		s.Add(uint64(i), 1, 1)
	}
	r := s.Estimate()
	if r.Sum != 10 {
		t.Errorf("exact sum %v, want 10", r.Sum)
	}
}

func TestAQPFacade(t *testing.T) {
	n := 2000
	keys := make([]uint64, n)
	weights := make([]float64, n)
	values := make([]float64, n)
	for i := range keys {
		keys[i] = uint64(i)
		weights[i] = 1
		values[i] = 1
	}
	tab := NewAQPTable(keys, weights, values, 12)
	q := tab.Query(nil, 100, 50)
	if q.RowsRead == 0 || q.Sum <= 0 {
		t.Error("AQP table broken")
	}
}

func TestWorkloadFacade(t *testing.T) {
	py := NewPitmanYor(0.5, 13)
	for i := 0; i < 100; i++ {
		py.Next()
	}
	if py.Unique() == 0 {
		t.Error("Pitman-Yor broken")
	}
	if u := HashU01(5, 6); u <= 0 || u >= 1 {
		t.Error("HashU01 broken")
	}
}

func TestShardedEngineFacade(t *testing.T) {
	eng := NewShardedBottomK(50, 1, 4)
	seq := NewBottomK(50, 1)
	items := make([]Item, 1000)
	for i := range items {
		w := 1 + float64(i%7)
		items[i] = Item{Key: uint64(i), Weight: w, Value: w}
		seq.Add(uint64(i), w, w)
	}
	eng.AddBatch(items)
	if eng.Threshold() != seq.Threshold() {
		t.Errorf("sharded threshold %v != sequential %v", eng.Threshold(), seq.Threshold())
	}
	got, _ := eng.SubsetSum(nil)
	want, _ := seq.SubsetSum(nil)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("sharded SubsetSum %v != sequential %v", got, want)
	}

	dst := NewShardedDistinct(50, 2, 3)
	ref := NewDistinctSketch(50, 2)
	for i := 0; i < 2000; i++ {
		dst.AddKey(uint64(i % 700))
		ref.Add(uint64(i % 700))
	}
	if dst.Estimate() != ref.Estimate() {
		t.Errorf("sharded distinct estimate %v != sequential %v", dst.Estimate(), ref.Estimate())
	}

	win := NewShardedWindow(10, 1.0, 3, 2)
	for i := 0; i < 500; i++ {
		win.Observe(uint64(i), float64(i)*0.01)
	}
	col := win.Collapse()
	if s, thr := col.ImprovedSample(); thr <= 0 || len(s) > 2*10 {
		t.Errorf("sharded window: %d items, threshold %v", len(s), thr)
	}

	// The generic engine interface round-trips through Snapshot.
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Threshold() != seq.Threshold() {
		t.Errorf("snapshot threshold %v != %v", snap.Threshold(), seq.Threshold())
	}
	if len(snap.Sample()) == 0 {
		t.Error("snapshot sample empty")
	}
}
