package ats_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"ats"
)

// TestFamilyFacades drives the three new sharded engines and the
// mixed-kind store purely through the public API.
func TestFamilyFacades(t *testing.T) {
	// Sharded top-k.
	tk := ats.NewShardedTopK(64, 1, 4)
	for i := 0; i < 20000; i++ {
		tk.Observe(uint64(i % 50)) // uniform: every count is 400
	}
	if got := tk.SubsetSum(nil); got != 20000 {
		t.Errorf("topk total %d, want exactly 20000", got)
	}
	for _, r := range tk.TopK(5) {
		if r.Estimate != 400 {
			t.Errorf("topk key %d estimate %d, want exact 400", r.Key, r.Estimate)
		}
	}

	// Sharded varopt.
	vo := ats.NewShardedVarOpt(128, 2, 4)
	rng := ats.NewRNG(3)
	exact := 0.0
	items := make([]ats.Item, 10000)
	for i := range items {
		w := rng.Float64()*9 + 1
		exact += w
		items[i] = ats.Item{Key: uint64(i), Weight: w, Value: w}
	}
	vo.AddBatch(items)
	if est := vo.SubsetSum(nil); math.Abs(est-exact)/exact > 0.2 {
		t.Errorf("varopt subset sum %v vs exact %v", est, exact)
	}

	// Sharded decayed.
	dc := ats.NewShardedDecayed(128, 0.1, 4, 4)
	for i := 0; i < 10000; i++ {
		dc.ObserveAt(uint64(i), 1, 1, float64(i)*0.01) // times 0..100
	}
	count := dc.DecayedCount(100)
	exactDecayed := 0.0
	for i := 0; i < 10000; i++ {
		exactDecayed += math.Exp(-0.1 * (100 - float64(i)*0.01))
	}
	if math.Abs(count-exactDecayed)/exactDecayed > 0.3 {
		t.Errorf("decayed count %v vs exact %v", count, exactDecayed)
	}

	// Codec surface covers the new sketches.
	for _, v := range []any{tk.Collapse(), vo.Collapse(), dc.Collapse()} {
		data, err := ats.EncodeSketch(v)
		if err != nil {
			t.Fatalf("EncodeSketch(%T): %v", v, err)
		}
		if _, _, err := ats.DecodeSketch(data); err != nil {
			t.Fatalf("DecodeSketch(%T): %v", v, err)
		}
	}
}

// TestFamilyStoreFacade serves every kind from one store through the
// public surface.
func TestFamilyStoreFacade(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	st := ats.NewStore(ats.StoreConfig{
		K: 256, Seed: 5, BucketWidth: time.Minute,
		Now: func() time.Time { return now },
	})
	items := make([]ats.Item, 2000)
	for i := range items {
		items[i] = ats.Item{Key: uint64(i % 100), Weight: 1, Value: 1}
	}
	for _, kind := range ats.SketchKinds() {
		batch := make([]ats.Item, len(items))
		copy(batch, items)
		if err := st.AddBatchKind("ns", kind.String(), kind, batch); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if err := st.AddBatchKind("ns", ats.KindTopK.String(), ats.KindDecay,
		[]ats.Item{{Key: 1, Weight: 1, Value: 1}}); !errors.Is(err, ats.ErrSketchKindMismatch) {
		t.Fatalf("cross-kind ingest: %v", err)
	}
	for _, kind := range ats.SketchKinds() {
		res, err := st.Query("ns", kind.String(), time.Unix(0, 0), now)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Kind != kind.String() || res.SampleSize == 0 {
			t.Errorf("%s: result %+v", kind, res)
		}
	}
}
