package ats

// This file is the benchmark harness required by DESIGN.md §4: one
// testing.B benchmark per table/figure of the paper (each drives the same
// experiment code as cmd/atsbench, at a reduced scale so `go test -bench`
// stays tractable), plus micro-benchmarks of the core samplers.
//
// Regenerate the full-scale numbers with:
//
//	go run ./cmd/atsbench all

import (
	"fmt"
	"sync"
	"testing"

	"ats/internal/experiments"
	"ats/internal/stream"
)

// ---- experiment benches (one per table/figure) ----

func BenchmarkFig1SlidingThresholds(b *testing.B) {
	cfg := experiments.DefaultFig1Config()
	cfg.End = 2 // shorter horizon per iteration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.Fig1(cfg)
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig2SpikeRecovery(b *testing.B) {
	cfg := experiments.DefaultFig2Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.Fig2(cfg)
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig3TopK(b *testing.B) {
	cfg := experiments.DefaultFig3Config()
	cfg.Betas = []float64{0.25, 0.75}
	cfg.StreamLen = 10000
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.Fig3(cfg)
		if len(res.Points) != 2 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkFig4DistinctUnion(b *testing.B) {
	cfg := experiments.DefaultFig4Config()
	cfg.SizeA, cfg.SizeB = 5000, 10000
	cfg.Jaccards = []float64{0, 0.3}
	cfg.Trials = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.Fig4(cfg)
		if len(res.Points) != 2 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkBudgetSampler(b *testing.B) {
	cfg := experiments.DefaultBudgetConfig()
	cfg.Items = 5000
	cfg.Trials = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.Budget(cfg)
		if res.Ratio <= 0 {
			b.Fatal("bad ratio")
		}
	}
}

func BenchmarkDominatedMerge(b *testing.B) {
	cfg := experiments.DefaultDominatedConfig()
	cfg.SmallSets = 300
	cfg.Trials = 3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.MergeDominated(cfg)
		if res.TrueUnion == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkHTEstimators(b *testing.B) {
	cfg := experiments.DefaultUnbiasedConfig()
	cfg.Trials = 50
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.Unbiased(cfg)
		if res.Truth == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkStratified(b *testing.B) {
	cfg := experiments.DefaultStratifiedConfig()
	cfg.Trials = 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.Stratified(cfg)
		if res.MeanSampleSize == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkVarianceSized(b *testing.B) {
	cfg := experiments.DefaultVarSizeConfig()
	cfg.N = 5000
	cfg.Deltas = []float64{2500}
	cfg.Trials = 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.VarSize(cfg)
		if len(res.Points) != 1 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkAQPEarlyStop(b *testing.B) {
	cfg := experiments.DefaultAQPConfig()
	cfg.Rows = 20000
	cfg.TargetSEs = []float64{0.02}
	cfg.Trials = 3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.AQP(cfg)
		if len(res.Points) != 1 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkMultiObjective(b *testing.B) {
	cfg := experiments.DefaultMultiObjConfig()
	cfg.N = 10000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.MultiObj(cfg)
		if len(res.Points) == 0 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkGroupByDistinct(b *testing.B) {
	cfg := experiments.DefaultGroupByConfig()
	cfg.Items = 50000
	cfg.Groups = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.GroupBy(cfg)
		if res.MemoryItems == 0 {
			b.Fatal("bad result")
		}
	}
}

// ---- micro-benchmarks of the core samplers (per-item costs) ----

func BenchmarkBottomKAdd(b *testing.B) {
	sk := NewBottomK(256, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk.Add(uint64(i), 1+float64(i%13), 1)
	}
}

func BenchmarkBudgetAdd(b *testing.B) {
	s := NewBudgetSampler(1<<20, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i), 1, 1, 100+i%4000)
	}
}

func BenchmarkWindowAdd(b *testing.B) {
	w := NewWindowSampler(100, 1, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(uint64(i), float64(i)*0.001) // 1000 items per window
	}
}

func BenchmarkTopKAdd(b *testing.B) {
	py := stream.NewPitmanYor(0.7, 4)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = py.Next()
	}
	s := NewTopKSampler(10, 5)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(keys[i&(1<<16-1)])
	}
}

func BenchmarkFrequentItemsAdd(b *testing.B) {
	py := stream.NewPitmanYor(0.7, 6)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = py.Next()
	}
	f := NewFrequentItems(128)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(keys[i&(1<<16-1)])
	}
}

func BenchmarkDistinctAdd(b *testing.B) {
	s := NewDistinctSketch(256, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}

// BenchmarkBottomKAddAccepted is the accept-heavy worst case the keeper
// refactor targets: strictly decreasing priorities mean every item enters
// the sketch, which used to cost an O(log k) heap sift per item. Compare
// with the in-package heap baselines (internal/bottomk BenchmarkAddHeapBaseline)
// via benchstat.
func BenchmarkBottomKAddAccepted(b *testing.B) {
	sk := NewBottomK(256, 1)
	b.ReportAllocs()
	p := 1e18
	for i := 0; i < b.N; i++ {
		p *= 0.999999
		sk.AddWithPriority(BottomKEntry{Key: uint64(i), Weight: 1, Value: 1, Priority: p})
	}
}

// BenchmarkDistinctAddDuplicates floods the sketch with repeats of a
// universe smaller than k: the regime where the old implementation paid a
// map lookup per add and the keeper pays one filter probe.
func BenchmarkDistinctAddDuplicates(b *testing.B) {
	s := NewDistinctSketch(256, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i) % 200)
	}
}

// BenchmarkBottomKAppendSample and BenchmarkBottomKSubsetSumInto pin the
// zero-allocation query paths.
func BenchmarkBottomKAppendSample(b *testing.B) {
	sk := NewBottomK(256, 1)
	for i := 0; i < 100000; i++ {
		sk.Add(uint64(i), 1+float64(i%13), 1)
	}
	buf := make([]BottomKEntry, 0, sk.K())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = sk.AppendSample(buf[:0])
	}
	if len(buf) == 0 {
		b.Fatal("empty sample")
	}
}

func BenchmarkBottomKSubsetSumInto(b *testing.B) {
	sk := NewBottomK(256, 1)
	for i := 0; i < 100000; i++ {
		sk.Add(uint64(i), 1+float64(i%13), 1)
	}
	var sc Scratch
	var sum float64
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, _ = sk.SubsetSumInto(nil, &sc)
	}
	if sum <= 0 {
		b.Fatal("bad estimate")
	}
}

func BenchmarkDistinctUnionLCS(b *testing.B) {
	a := NewDistinctSketch(256, 8)
	c := NewDistinctSketch(256, 8)
	for i := 0; i < 100000; i++ {
		a.Add(uint64(i))
		c.Add(uint64(i + 50000))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if UnionEstimateLCS(a, c) <= 0 {
			b.Fatal("bad estimate")
		}
	}
}

func BenchmarkVarianceSizedAdd(b *testing.B) {
	s := NewVarianceSizedSampler(1000, 2, 9)
	s.SetHorizon(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i), 1+float64(i%7), 1+float64(i%7))
	}
}

func BenchmarkHashU01(b *testing.B) {
	var sink float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += HashU01(uint64(i), 42)
	}
	_ = sink
}

func BenchmarkPitmanYorNext(b *testing.B) {
	py := stream.NewPitmanYor(0.5, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		py.Next()
	}
}

func BenchmarkAsymptotic(b *testing.B) {
	cfg := experiments.DefaultAsymptoticConfig()
	cfg.Sizes = []int{1000, 5000}
	cfg.Trials = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.Asymptotic(cfg)
		if len(res.Points) != 2 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkBaselines(b *testing.B) {
	cfg := experiments.DefaultBaselinesConfig()
	cfg.Trials = 30
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res := experiments.Baselines(cfg)
		if res.Truth == 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkVarOptAdd(b *testing.B) {
	s := NewVarOpt(256, 12)
	rng := stream.NewRNG(13)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i), rng.Open01()*10, 1)
	}
}

func BenchmarkHistoryAdd(b *testing.B) {
	s := NewHistorySampler(256, 14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i), 1+float64(i%9), 1)
	}
}

func BenchmarkDecayAdd(b *testing.B) {
	s := NewDecaySampler(256, 0.1, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i), 1, 1, float64(i)*0.001)
	}
}

func BenchmarkReservoirAdd(b *testing.B) {
	s := NewWeightedReservoir(256, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i), 1+float64(i%11), 1)
	}
}

func BenchmarkUnbiasedSpaceSavingAdd(b *testing.B) {
	py := stream.NewPitmanYor(0.7, 17)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = py.Next()
	}
	s := NewUnbiasedSpaceSaving(64, 18)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(keys[i&(1<<16-1)])
	}
}

// ---- sharded engine: parallel ingest throughput ----
//
// These benchmarks compare the single-threaded bottom-k sketch against the
// sharded engine on the same seeded Zipf stream, at 1–16 producer
// goroutines. ns/op is per item in every variant, so items/s ratios can be
// read straight off the output. Full-scale sweep: go run ./cmd/atsbench
// parallel.

var benchZipfItems []Item

func zipfBenchItems(b *testing.B) []Item {
	if benchZipfItems == nil {
		const n = 1 << 20
		z := stream.NewZipf(100_000, 1.1, 71)
		rng := stream.NewRNG(72)
		benchZipfItems = make([]Item, n)
		for i := range benchZipfItems {
			w := 1 + 9*rng.Float64()
			benchZipfItems[i] = Item{Key: z.Next(), Weight: w, Value: w}
		}
	}
	return benchZipfItems
}

func BenchmarkIngestSingleThread(b *testing.B) {
	items := zipfBenchItems(b)
	sk := NewBottomK(256, 71)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := items[i&(len(items)-1)]
		sk.Add(it.Key, it.Weight, it.Value)
	}
}

func BenchmarkIngestGlobalMutex(b *testing.B) {
	// The naive way to share one sketch: a global lock. This is the
	// baseline the sharded engine exists to beat.
	items := zipfBenchItems(b)
	sk := NewBottomK(256, 71)
	var mu sync.Mutex
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			it := items[i&(len(items)-1)]
			i++
			mu.Lock()
			sk.Add(it.Key, it.Weight, it.Value)
			mu.Unlock()
		}
	})
}

func BenchmarkIngestSharded(b *testing.B) {
	items := zipfBenchItems(b)
	for _, g := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			eng := NewShardedBottomK(256, 71, 0)
			const batch = 512
			b.ResetTimer()
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N / g
			for w := 0; w < g; w++ {
				n := per
				if w == g-1 {
					n = b.N - per*(g-1)
				}
				wg.Add(1)
				go func(off, n int) {
					defer wg.Done()
					for done := 0; done < n; {
						m := batch
						if m > n-done {
							m = n - done
						}
						lo := (off + done) & (len(items) - 1)
						hi := lo + m
						if hi > len(items) {
							hi = len(items)
							m = hi - lo
						}
						eng.AddBatch(items[lo:hi])
						done += m
					}
				}(w*per, n)
			}
			wg.Wait()
		})
	}
}

func BenchmarkShardedCollapse(b *testing.B) {
	items := zipfBenchItems(b)
	eng := NewShardedBottomK(256, 71, 0)
	eng.AddBatch(items[:1<<18])
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if eng.Collapse().Threshold() <= 0 {
			b.Fatal("bad collapse")
		}
	}
}

func BenchmarkShardedDistinctAddKeys(b *testing.B) {
	items := zipfBenchItems(b)
	keys := make([]uint64, len(items))
	for i, it := range items {
		keys[i] = it.Key
	}
	eng := NewShardedDistinct(256, 7, 0)
	const batch = 512
	b.ResetTimer()
	b.ReportAllocs()
	for done := 0; done < b.N; {
		m := batch
		if m > b.N-done {
			m = b.N - done
		}
		lo := done & (len(keys) - 1)
		hi := lo + m
		if hi > len(keys) {
			hi = len(keys)
			m = hi - lo
		}
		eng.AddKeys(keys[lo:hi])
		done += m
	}
}
