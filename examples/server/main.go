// Serving sketches over HTTP with the time-bucketed store.
//
// The program boots an in-process atsd serving layer on a local port,
// ingests a weighted stream for two tenants through POST /v1/add,
// answers range queries through GET /v1/query, then snapshots the whole
// keyspace, restores it into a second store and shows the estimates
// survive bit-for-bit — the same loop `cmd/atsd` runs as a standalone
// daemon.
//
// Run with:
//
//	go run ./examples/server
//
// Against a real daemon the equivalent curl session is:
//
//	go run ./cmd/atsd -addr :8321 -k 4096 -snapshot /tmp/ats.snap &
//	curl -XPOST localhost:8321/v1/add -d '{"namespace":"acme","metric":"bytes",
//	  "items":[{"key":1,"weight":3.5,"value":3.5},{"key":2,"weight":1,"value":1}]}'
//	curl 'localhost:8321/v1/query?namespace=acme&metric=bytes&from=0'
//	curl -XPOST localhost:8321/v1/snapshot
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"ats"
)

const (
	k       = 2048
	seed    = 42
	perKey  = 40_000
	tenants = 2
)

func main() {
	cfg := ats.StoreConfig{Kind: ats.KindBottomK, K: k, Seed: seed, BucketWidth: time.Minute}
	st := ats.NewStore(cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, ats.NewStoreServer(st, "").Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("atsd serving layer on %s\n\n", base)

	// --- ingest over HTTP ---
	rng := ats.NewRNG(7)
	exact := map[string]float64{}
	key := uint64(0)
	for t := 0; t < tenants; t++ {
		ns := fmt.Sprintf("tenant%d", t)
		for off := 0; off < perKey; off += 5000 {
			type item struct {
				Key    uint64  `json:"key"`
				Weight float64 `json:"weight"`
				Value  float64 `json:"value"`
			}
			items := make([]item, 5000)
			for i := range items {
				w := 0.5 + 9.5*rng.Float64()
				items[i] = item{Key: key, Weight: w, Value: w}
				exact[ns] += w
				key++
			}
			body, _ := json.Marshal(map[string]any{"namespace": ns, "metric": "bytes", "items": items})
			resp, err := http.Post(base+"/v1/add", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	fmt.Printf("ingested %d items across %d tenants over HTTP\n\n", tenants*perKey, tenants)

	// --- range queries ---
	query := func(base, ns string) (sum float64, raw []byte) {
		resp, err := http.Get(base + "/v1/query?namespace=" + ns + "&metric=bytes&from=0")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ = io.ReadAll(resp.Body)
		var out struct {
			Result ats.StoreResult `json:"result"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			log.Fatal(err)
		}
		return out.Result.Sum, raw
	}
	for t := 0; t < tenants; t++ {
		ns := fmt.Sprintf("tenant%d", t)
		est, _ := query(base, ns)
		fmt.Printf("%s: subset-sum estimate %12.1f   exact %12.1f   error %+.2f%%\n",
			ns, est, exact[ns], 100*(est/exact[ns]-1))
	}

	// --- snapshot the keyspace, restore into a second serving layer ---
	resp, err := http.Post(base+"/v1/snapshot", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\nsnapshot: %d bytes for %d tenants (O(k) per bucket, not O(items))\n", len(snap), tenants)

	st2 := ats.NewStore(cfg)
	if err := st2.Restore(bytes.NewReader(snap)); err != nil {
		log.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln2, ats.NewStoreServer(st2, "").Handler())
	base2 := "http://" + ln2.Addr().String()

	identical := true
	for t := 0; t < tenants; t++ {
		ns := fmt.Sprintf("tenant%d", t)
		_, before := query(base, ns)
		_, after := query(base2, ns)
		identical = identical && bytes.Equal(before, after)
	}
	fmt.Printf("restored daemon answers bit-identically: %v\n", identical)
}
