// Quickstart: weighted sampling with a bottom-k sketch and unbiased
// Horvitz-Thompson estimation.
//
// A stream of sales records (key, region, amount) is summarized by a
// 200-item priority sample. Because the bottom-k threshold is
// substitutable (§2.5.1 of the paper), the plain fixed-threshold HT
// estimator — and its variance estimate — apply unchanged.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"ats"
)

func main() {
	const (
		nRecords = 200000
		k        = 200
		seed     = 42
	)
	rng := ats.NewRNG(seed)

	// Simulate a skewed sales stream: region 0 is the big market.
	sk := ats.NewBottomK(k, seed)
	trueTotal := make([]float64, 4)
	for i := 0; i < nRecords; i++ {
		region := uint64(rng.Intn(4))
		amount := 10 + 500*rng.Float64()*rng.Float64()
		if region == 0 {
			amount *= 3
		}
		key := uint64(i)<<2 | region
		// PPS sampling: weight = the value being summed.
		sk.Add(key, amount, amount)
		trueTotal[region] += amount
	}

	fmt.Printf("stream: %d records, sample: %d items, threshold: %.3g\n\n",
		sk.N(), len(sk.Sample()), sk.Threshold())
	fmt.Printf("%-8s %14s %14s %12s %9s\n", "region", "true total", "HT estimate", "est. SE", "rel.err")
	for region := uint64(0); region < 4; region++ {
		r := region
		est, varEst := sk.SubsetSum(func(e ats.BottomKEntry) bool { return e.Key&3 == r })
		se := math.Sqrt(varEst)
		rel := (est - trueTotal[r]) / trueTotal[r]
		fmt.Printf("%-8d %14.0f %14.0f %12.0f %8.2f%%\n", r, trueTotal[r], est, se, 100*rel)
	}
	fmt.Println("\nEvery region estimate is unbiased; the SE column is the unbiased")
	fmt.Println("variance estimate of §2.6.1 evaluated on the same sample.")
}
