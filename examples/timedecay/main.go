// Time-decayed sampling (§2.9): keep a fixed-size sample of an event
// stream in which recent events matter exponentially more, using the
// priority-threshold duality — stored priorities never change; the
// effective threshold does. The sample answers "decayed sum" queries such
// as an exponentially weighted error-rate numerator.
//
// Run with:
//
//	go run ./examples/timedecay
package main

import (
	"fmt"
	"math"

	"ats"
)

func main() {
	const (
		k      = 200
		lambda = 0.1 // decay rate per second: ~10 s memory
		seed   = 23
	)
	rng := ats.NewRNG(seed)
	s := ats.NewDecaySampler(k, lambda, seed)

	// An event stream over 600 seconds; each event has a severity score.
	// A burst of high-severity events happens during [300, 320).
	var trueDecayed float64 // maintained exactly for comparison
	queryAt := 600.0
	n := 60000
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n) * 600
		sev := 1 + rng.Float64()
		if t >= 300 && t < 320 {
			sev += 8
		}
		s.Add(uint64(i), 1, sev, t)
		trueDecayed += sev * math.Exp(-lambda*(queryAt-t))
	}

	est := s.DecayedSum(queryAt, nil)
	fmt.Printf("events: %d, sample: %d items\n", s.N(), len(s.Sample()))
	fmt.Printf("decayed severity at t=%.0f: true %.1f, estimated %.1f (%+.1f%%)\n",
		queryAt, trueDecayed, est, 100*(est-trueDecayed)/trueDecayed)

	// Where do the sampled events come from? Almost entirely the recent
	// past — the old burst has decayed away.
	buckets := make([]int, 6)
	for _, e := range s.Sample() {
		b := int(e.Time / 100)
		if b > 5 {
			b = 5
		}
		buckets[b]++
	}
	fmt.Println("\nsampled events by arrival century:")
	for b, c := range buckets {
		fmt.Printf("  [%3d, %3d)s: %3d %s\n", b*100, (b+1)*100, c, bar(c))
	}
	fmt.Println("\nthe sample concentrates on recent events automatically;")
	fmt.Println("stored priorities were never rewritten (log-space duality).")
}

func bar(n int) string {
	out := ""
	for i := 0; i < n/4; i++ {
		out += "#"
	}
	return out
}
