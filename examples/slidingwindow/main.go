// Sliding-window monitoring: keep a uniform sample of the last Δ seconds
// of a request stream in bounded space, and watch both extraction rules —
// the Gemulla & Lehner threshold and the paper's improved threshold — on
// the same sketch while the request rate spikes (§3.2 / Figures 1-2).
//
// Run with:
//
//	go run ./examples/slidingwindow
package main

import (
	"fmt"

	"ats"
	"ats/internal/stream"
)

func main() {
	const (
		k     = 100
		delta = 1.0 // window length in seconds
		seed  = 7
	)
	// A request stream at 600 req/s with a burst to 4000 req/s at t=0.
	rate := stream.SpikeRate(600, 4000, 0, 0.5)
	arrivals := stream.NewArrivals(rate, -3, seed)

	w := ats.NewWindowSampler(k, delta, seed)

	fmt.Printf("%6s %8s %10s %10s %8s %8s %8s\n",
		"time", "rate", "T_GL", "T_imp", "|S_GL|", "|S_imp|", "stored")
	nextReport := -2.0
	for {
		a := arrivals.Next()
		if a.Time > 4 {
			break
		}
		w.Add(a.Key, a.Time)
		if a.Time >= nextReport {
			gl, glT := w.GLSample()
			imp, impT := w.ImprovedSample()
			fmt.Printf("%6.2f %8.0f %10.4f %10.4f %8d %8d %8d\n",
				a.Time, rate(a.Time), glT, impT, len(gl), len(imp), w.StoredItems())
			nextReport += 0.5
		}
	}

	fmt.Println("\nBoth samples are uniform over the current window; the improved")
	fmt.Println("threshold (min of per-item thresholds, Theorem 9 + Theorem 6)")
	fmt.Println("yields roughly twice as many usable points from the SAME sketch")
	fmt.Println("and recovers from the burst faster.")
}
