// Distinct counting across partitions: count the distinct users across
// three shards whose user sets overlap, comparing the Theta-style union
// (min threshold) against the paper's adaptive/LCS union (per-item max
// thresholds, §3.5), which uses every stored point.
//
// Run with:
//
//	go run ./examples/distinctunion
package main

import (
	"fmt"
	"math"

	"ats"
)

func main() {
	const (
		k    = 256
		seed = 5
	)

	// Three shards: a large one and two smaller ones sharing users with it.
	shardSpecs := []struct {
		name   string
		lo, hi uint64 // user-id range (overlapping ranges share users)
	}{
		{"us-east", 0, 400000},
		{"us-west", 300000, 550000},
		{"eu", 500000, 620000},
	}

	sketches := make([]*ats.DistinctSketch, len(shardSpecs))
	global := make(map[uint64]struct{})
	for i, spec := range shardSpecs {
		sk := ats.NewDistinctSketch(k, seed) // shared seed => coordinated
		for u := spec.lo; u < spec.hi; u++ {
			sk.Add(u)
			global[u] = struct{}{}
		}
		sketches[i] = sk
		fmt.Printf("%-8s %7d users, sketch estimate %9.0f (threshold %.5f)\n",
			spec.name, spec.hi-spec.lo, sk.Estimate(), sk.Threshold())
	}

	truth := float64(len(global))
	theta := ats.UnionEstimateTheta(sketches...)
	lcs := ats.UnionEstimateLCS(sketches...)
	bk := ats.UnionEstimateBottomK(sketches...)

	fmt.Printf("\ntrue distinct users across shards: %.0f\n\n", truth)
	fmt.Printf("%-24s %10s %9s\n", "union rule", "estimate", "rel.err")
	for _, row := range []struct {
		name string
		est  float64
	}{
		{"Theta (min threshold)", theta},
		{"bottom-k of union", bk},
		{"adaptive / LCS (ours)", lcs},
	} {
		fmt.Printf("%-24s %10.0f %8.2f%%\n", row.name, row.est,
			100*math.Abs(row.est-truth)/truth)
	}

	// Pairwise overlap, from the same coordinated sketches.
	fmt.Println("\npairwise Jaccard similarity (MinHash on the same sketches):")
	for i := 0; i < len(sketches); i++ {
		for j := i + 1; j < len(sketches); j++ {
			fmt.Printf("  %s ~ %s: %.3f\n", shardSpecs[i].name, shardSpecs[j].name,
				ats.JaccardEstimate(sketches[i], sketches[j]))
		}
	}
}
