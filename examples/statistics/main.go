// Statistics from one sample (§2.6.2): because the bottom-k threshold is
// fully substitutable, a single priority sample supports not just sums but
// higher-degree statistics — population variance (a degree-2 U-statistic),
// Kendall's tau correlation (degree 2), the third central moment
// (degree 3), and M-estimators like the weighted median — all with the
// plain fixed-threshold estimators.
//
// Run with:
//
//	go run ./examples/statistics
package main

import (
	"fmt"
	"math"
	"sort"

	"ats"
)

func main() {
	const (
		n    = 20000
		k    = 400
		seed = 31
	)
	rng := ats.NewRNG(seed)

	// A population of (latency, payload) pairs: correlated and skewed.
	latency := make([]float64, n)
	payload := make([]float64, n)
	for i := range latency {
		base := rng.ExpFloat64() * 20
		latency[i] = 5 + base + rng.Float64()*3
		payload[i] = 100 + 40*base + rng.NormFloat64()*80
	}

	// One uniform-priority bottom-k sample (weights 1): substitutable, so
	// every fixed-threshold estimator below is unbiased/valid.
	sk := ats.NewBottomK(k, seed)
	for i := 0; i < n; i++ {
		sk.Add(uint64(i), 1, latency[i])
	}
	th := sk.Threshold()
	p := th // weight-1 items: inclusion probability = min(1, threshold)
	if p > 1 {
		p = 1
	}

	var values []ats.Sampled
	var pairs []ats.PairSample
	var mpts []ats.MPoint
	for _, e := range sk.Sample() {
		values = append(values, ats.Sampled{Value: e.Value, P: p})
		pairs = append(pairs, ats.PairSample{X: latency[e.Key], Y: payload[e.Key], P: p})
		mpts = append(mpts, ats.MPoint{X: e.Value, P: p})
	}

	// Truths for comparison.
	trueMean, trueVar := meanVar(latency)
	trueTau := sampleTau(latency, payload, rng, 2000)
	sorted := append([]float64(nil), latency...)
	sort.Float64s(sorted)
	trueMedian := sorted[n/2]

	fmt.Printf("population %d, sample %d (threshold %.4f)\n\n", n, len(values), th)
	fmt.Printf("%-28s %12s %12s\n", "statistic", "true", "from sample")
	show := func(name string, truth, est float64) {
		fmt.Printf("%-28s %12.3f %12.3f\n", name, truth, est)
	}
	show("mean latency", trueMean, ats.WeightedMean(mpts))
	show("median latency", trueMedian, ats.WeightedQuantile(mpts, 0.5))
	show("p99 latency", sorted[n*99/100], ats.WeightedQuantile(mpts, 0.99))
	show("variance (U-stat, deg 2)", trueVar, ats.UnbiasedVariance(values, n))
	tau := ats.KendallTau(pairs, n)
	show("Kendall tau (deg 2)", trueTau, tau)
	tauSE := math.Sqrt(ats.KendallTauVariance(pairs, n))
	fmt.Printf("%-28s %12s %12.3f\n", "tau standard error (deg 4)", "-", tauSE)

	fmt.Println("\nall estimators are the textbook fixed-threshold forms; Theorem 4")
	fmt.Println("licenses plugging in the adaptive bottom-k threshold unchanged.")
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

// sampleTau estimates the population Kendall tau from a random subset (the
// exact O(n²) computation over 20k points is slow; a 2000-point subsample
// pins it to ±0.02, plenty for a demo comparison).
func sampleTau(xs, ys []float64, rng *ats.RNG, m int) float64 {
	idx := rng.Perm(len(xs))[:m]
	s := 0.0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			a, b := idx[i], idx[j]
			s += sign(xs[a]-xs[b]) * sign(ys[a]-ys[b])
		}
	}
	return s / (float64(m) * float64(m-1) / 2)
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}
