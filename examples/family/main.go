// One store, the whole sketch family.
//
// A single multi-tenant store serves eight sketch kinds at once — each
// key picks its kind at first write: a bottom-k subset-sum series, a
// distinct-count series, a sliding-window series, a top-k heavy-hitter
// series, a varopt weighted sample, an exponentially time-decayed
// series, a grouped distinct counter (flows per region), and a budgeted
// multi-stratified sample (bytes by region AND size class). The program
// ingests one synthetic traffic stream into all eight, queries each
// through the store's merge-collapse path, then snapshots the whole
// keyspace and proves the restored store answers identically.
//
// Run with:
//
//	go run ./examples/family
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"ats"
)

func main() {
	now := time.Unix(1_700_000_000, 0)
	st := ats.NewStore(ats.StoreConfig{
		K: 512, Seed: 7, BucketWidth: time.Minute, Retention: 60, Shards: 2,
		Now: func() time.Time { return now },
	})

	// One synthetic traffic stream, ingested minute by minute under two
	// key schemes: the count-style sketches (distinct, window, top-k) see
	// the Zipf-skewed ENDPOINT id of each request, while the weighted
	// samplers (bottom-k, varopt, decay) see one unique FLOW record per
	// request — bottom-k priorities are hash-derived per key, so a
	// weighted series wants distinct keys, one per sampled record.
	rng := ats.NewRNG(1)
	const minutes, perMinute = 10, 5_000
	flow := uint64(0)
	for m := 0; m < minutes; m++ {
		endpoints := make([]ats.Item, perMinute)
		flows := make([]ats.Item, perMinute)
		for i := range endpoints {
			endpoint := uint64(rng.Intn(2000))
			if rng.Float64() < 0.3 {
				endpoint = uint64(rng.Intn(10)) // hot head
			}
			size := 1 + 50*rng.Float64()*rng.Float64()
			endpoints[i] = ats.Item{Key: endpoint, Weight: size, Value: size}
			// Each flow carries grouped-analytics labels: its region (the
			// groupby attribute and stratification dim 0) and a size
			// class (dim 1).
			region := endpoint % 8
			sizeClass := uint32(0)
			if size > 10 {
				sizeClass = 1
			}
			flows[i] = ats.Item{Key: flow, Weight: size, Value: size,
				Group: region, Strata: []uint32{uint32(region), sizeClass}}
			flow++
		}
		for _, kind := range ats.SketchKinds() {
			src := flows
			switch kind {
			case ats.KindDistinct, ats.KindWindow, ats.KindTopK:
				src = endpoints
			}
			batch := make([]ats.Item, len(src))
			copy(batch, src)
			if err := st.AddBatchKind("edge", "traffic-"+kind.String(), kind, batch); err != nil {
				log.Fatal(err)
			}
		}
		now = now.Add(time.Minute)
	}

	from := time.Unix(0, 0)
	fmt.Printf("%d keys, %d kinds, one store\n\n", len(st.Keys()), len(ats.SketchKinds()))
	for _, kind := range ats.SketchKinds() {
		res, err := st.Query("edge", "traffic-"+kind.String(), from, now)
		if err != nil {
			log.Fatal(err)
		}
		switch kind {
		case ats.KindBottomK:
			fmt.Printf("bottomk   total bytes ≈ %.0f (±%.0f), sample %d\n",
				res.Sum, res.VarianceEstimate, res.SampleSize)
		case ats.KindDistinct:
			fmt.Printf("distinct  endpoints ≈ %.0f\n", res.DistinctEstimate)
		case ats.KindWindow:
			fmt.Printf("window    recent arrivals ≈ %.0f (uniform sample of %d)\n",
				res.CountEstimate, res.SampleSize)
		case ats.KindTopK:
			fmt.Printf("topk      exact total %.0f, hottest endpoints:", res.Sum)
			for _, it := range res.TopK[:5] {
				fmt.Printf(" %d(≈%.0f)", it.Key, it.Estimate)
			}
			fmt.Println()
		case ats.KindVarOpt:
			fmt.Printf("varopt    weighted bytes ≈ %.0f (weight sum ≈ %.0f)\n",
				res.Sum, res.WeightSum)
		case ats.KindDecay:
			fmt.Printf("decay     decayed bytes ≈ %.0f, decayed count ≈ %.0f (as of %s)\n",
				res.DecayedSum, res.DecayedCount, time.Unix(res.AsOfUnix, 0).UTC().Format(time.TimeOnly))
		case ats.KindGroupBy:
			fmt.Printf("groupby   %d regions, flows per region:", res.GroupCount)
			for _, g := range res.Groups[:3] {
				fmt.Printf(" r%d(≈%.0f)", g.Group, g.DistinctEstimate)
			}
			fmt.Println(" …")
		case ats.KindStratified:
			fmt.Printf("stratified total bytes ≈ %.0f across %d region strata:", res.Sum, len(res.Strata))
			for _, sr := range res.Strata[:3] {
				fmt.Printf(" r%d(≈%.0f)", sr.Label, sr.SumEstimate)
			}
			fmt.Println(" …")
		}
	}

	// Snapshot the whole keyspace and restore into a fresh store: every
	// series — all eight kinds — survives bit-identically.
	var snap bytes.Buffer
	if err := st.Snapshot(&snap); err != nil {
		log.Fatal(err)
	}
	st2 := ats.NewStore(ats.StoreConfig{
		K: 512, Seed: 7, BucketWidth: time.Minute, Retention: 60, Shards: 2,
		Now: func() time.Time { return now },
	})
	if err := st2.Restore(&snap); err != nil {
		log.Fatal(err)
	}
	same := true
	for _, kind := range ats.SketchKinds() {
		a, _ := st.Query("edge", "traffic-"+kind.String(), from, now)
		b, err := st2.Query("edge", "traffic-"+kind.String(), from, now)
		if err != nil {
			log.Fatal(err)
		}
		// Compare the wire (JSON) form: results may hold pointers, whose
		// addresses a naive %+v comparison would flag as different.
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			same = false
		}
	}
	fmt.Printf("\nsnapshot: %s → restored store answers identically: %v\n",
		byteCount(snap.Cap()), same)
}

func byteCount(n int) string {
	switch {
	case n > 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n > 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
