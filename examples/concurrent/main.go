// Concurrent ingest with the sharded sampling engine.
//
// Eight producer goroutines push a skewed weighted stream into a sharded
// bottom-k sketch and a sharded distinct sketch through the batched,
// lock-amortized AddBatch path. Because priorities are derived from a
// seeded hash of the key — not from arrival order — collapsing the shards
// yields *exactly* the sketch a single-threaded run over the same stream
// would have built: same threshold, same sample, same estimates. The
// program demonstrates this by running both and comparing.
//
// Run with:
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ats"
)

const (
	nItems    = 2_000_000
	k         = 256
	seed      = 42
	producers = 8
	batchSize = 512
)

func main() {
	// One deterministic stream, generated up front so both runs see the
	// same items: Zipf-ish keys with Pareto-ish weights.
	rng := ats.NewRNG(seed)
	items := make([]ats.Item, nItems)
	for i := range items {
		key := uint64(rng.Intn(200_000))
		w := 1 + 20*rng.Float64()*rng.Float64()
		items[i] = ats.Item{Key: key, Weight: w, Value: w}
	}

	// Sequential reference run.
	seq := ats.NewBottomK(k, seed)
	seqDistinct := ats.NewDistinctSketch(k, seed)
	start := time.Now()
	for _, it := range items {
		seq.Add(it.Key, it.Weight, it.Value)
		seqDistinct.Add(it.Key)
	}
	seqElapsed := time.Since(start)
	seqSum, _ := seq.SubsetSum(nil)

	// Concurrent run: the same stream split across producers.
	eng := ats.NewShardedBottomK(k, seed, 0)
	engDistinct := ats.NewShardedDistinct(k, seed, 0)
	start = time.Now()
	var wg sync.WaitGroup
	per := (len(items) + producers - 1) / producers
	for w := 0; w < producers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(chunk []ats.Item) {
			defer wg.Done()
			keys := make([]uint64, 0, batchSize)
			for len(chunk) > 0 {
				n := batchSize
				if n > len(chunk) {
					n = len(chunk)
				}
				eng.AddBatch(chunk[:n])
				keys = keys[:0]
				for _, it := range chunk[:n] {
					keys = append(keys, it.Key)
				}
				engDistinct.AddKeys(keys)
				chunk = chunk[n:]
			}
		}(items[lo:hi])
	}
	wg.Wait()
	parElapsed := time.Since(start)
	parSum, _ := eng.SubsetSum(nil)

	fmt.Printf("stream: %d items, %d producers, %d shards (GOMAXPROCS=%d)\n\n",
		nItems, producers, eng.NumShards(), runtime.GOMAXPROCS(0))
	fmt.Printf("%-28s %14s %14s\n", "", "sequential", "sharded")
	fmt.Printf("%-28s %14v %14v\n", "wall time (2 sketches)", seqElapsed.Round(time.Millisecond), parElapsed.Round(time.Millisecond))
	fmt.Printf("%-28s %14.4g %14.4g\n", "bottom-k threshold", seq.Threshold(), eng.Threshold())
	fmt.Printf("%-28s %14.0f %14.0f\n", "HT total estimate", seqSum, parSum)
	fmt.Printf("%-28s %14.0f %14.0f\n", "distinct estimate", seqDistinct.Estimate(), engDistinct.Estimate())

	if seq.Threshold() == eng.Threshold() && seqDistinct.Estimate() == engDistinct.Estimate() {
		fmt.Println("\nCollapsed shards are IDENTICAL to the sequential sketches — the")
		fmt.Println("merge is exact, so concurrency costs nothing in accuracy.")
	} else {
		fmt.Println("\nERROR: sharded results diverged from the sequential run!")
	}
}
