// Approximate query processing with early stopping (§3.10): store a
// sales table physically ordered by sampling priority, then answer
// aggregate queries by scanning only the prefix needed for a user-chosen
// standard error. A tighter accuracy knob reads more rows — at query time,
// with no re-sampling.
//
// Run with:
//
//	go run ./examples/aqp
package main

import (
	"fmt"

	"ats"
)

func main() {
	const (
		nRows = 500000
		seed  = 17
	)
	rng := ats.NewRNG(seed)

	keys := make([]uint64, nRows)
	weights := make([]float64, nRows)
	values := make([]float64, nRows)
	truth := 0.0
	truthBig := 0.0
	for i := range keys {
		keys[i] = uint64(i)
		// Order amounts: log-normal-ish, a few large.
		amount := 5 + 200*rng.Float64()*rng.Float64()*rng.Float64()
		weights[i] = amount // PPS layout: weight by the aggregated column
		values[i] = amount
		truth += amount
		if amount > 100 {
			truthBig += amount
		}
	}

	table := ats.NewAQPTable(keys, weights, values, seed)
	fmt.Printf("table: %d rows, true revenue %.0f\n\n", table.Len(), truth)

	fmt.Printf("%-12s %12s %10s %12s %10s\n",
		"target SE", "rows read", "% of table", "estimate", "rel.err")
	for _, relSE := range []float64{0.05, 0.02, 0.01, 0.005} {
		q := table.Query(nil, relSE*truth, 100)
		fmt.Printf("%10.1f%% %12d %9.2f%% %12.0f %9.2f%%\n",
			100*relSE, q.RowsRead, 100*float64(q.RowsRead)/float64(table.Len()),
			q.Sum, 100*(q.Sum-truth)/truth)
	}

	// Predicated query: revenue from large orders only, same layout.
	q := table.Query(func(r ats.AQPRow) bool { return r.Value > 100 }, 0.02*truthBig, 100)
	fmt.Printf("\nlarge orders (>100): true %.0f, estimate %.0f after %d rows (%+.2f%%)\n",
		truthBig, q.Sum, q.RowsRead, 100*(q.Sum-truthBig)/truthBig)
}
