// Top-k without tuning: find the 10 most viewed pages of a skewed page
// impression stream with the adaptive top-k sampler (§3.3), then answer a
// disaggregated subset-sum query ("how many impressions did the /blog/
// section get?") from the same sketch.
//
// The FrequentItems sketch is run alongside for comparison: it needs its
// table size chosen in advance, while the sampler adapts its footprint to
// the stream.
//
// Run with:
//
//	go run ./examples/topk
package main

import (
	"fmt"

	"ats"
)

func main() {
	const (
		k      = 10
		nViews = 300000
		seed   = 99
	)
	// Pitman-Yor(1, 0.7): heavy-tailed page popularity with no clean gap
	// between the head and the tail — the regime where fixed-size frequent
	// item sketches struggle (Figure 3).
	py := ats.NewPitmanYor(0.7, seed)

	sampler := ats.NewTopKSampler(k, seed+1)
	freq := ats.NewFrequentItems(128)
	truth := make(map[uint64]int)
	for i := 0; i < nViews; i++ {
		page := py.Next()
		sampler.Add(page)
		freq.Add(page)
		truth[page]++
	}

	trueTop := make(map[uint64]bool, k)
	for _, id := range py.TopK(k) {
		trueTop[id] = true
	}

	fmt.Printf("stream: %d views of %d distinct pages\n", nViews, py.Unique())
	fmt.Printf("adaptive sampler: %d tracked items (threshold %.5f)\n",
		sampler.Len(), sampler.Threshold())
	fmt.Printf("FrequentItems:    %d effective slots (fixed)\n\n", freq.EffectiveCapacity())

	fmt.Printf("%4s %10s %12s %12s %7s\n", "rank", "page", "true count", "est. count", "hit?")
	wrong := 0
	for i, e := range sampler.TopK() {
		hit := "yes"
		if !trueTop[e.Key] {
			hit = "NO"
			wrong++
		}
		fmt.Printf("%4d %10d %12d %12.0f %7s\n", i+1, e.Key, truth[e.Key], e.Estimate(), hit)
	}
	fmt.Printf("\nsampler errors in top-%d: %d\n", k, wrong)

	wrongF := 0
	for _, r := range freq.TopK(k) {
		if !trueTop[r.Key] {
			wrongF++
		}
	}
	fmt.Printf("FrequentItems errors in top-%d: %d\n\n", k, wrongF)

	// Disaggregated subset sum (§3.3): total views of even-numbered pages,
	// estimated from the sampler's entries with HT weights 1/T + v.
	trueEven := 0
	for page, c := range truth {
		if page%2 == 0 {
			trueEven += c
		}
	}
	est := sampler.SubsetSum(func(page uint64) bool { return page%2 == 0 })
	fmt.Printf("views of even pages: true %d, estimated %.0f (%+.1f%%)\n",
		trueEven, est, 100*(est-float64(trueEven))/float64(trueEven))
}
