package distinct

import (
	"math"
	"testing"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestWeightedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k <= 0 must panic")
		}
	}()
	NewWeightedSketch(0, 1)
}

func TestWeightedExactBelowK(t *testing.T) {
	s := NewWeightedSketch(50, 1)
	for i := 0; i < 30; i++ {
		s.Add(uint64(i), 1+float64(i))
	}
	if got := s.DistinctCount(); got != 30 {
		t.Errorf("distinct = %v, want exact 30", got)
	}
	wantSum := 0.0
	for i := 0; i < 30; i++ {
		wantSum += 1 + float64(i)
	}
	if got := s.SubsetSum(nil); got != wantSum {
		t.Errorf("subset sum = %v, want %v", got, wantSum)
	}
	if got := s.SubsetDistinctCount(func(k uint64) bool { return k < 10 }); got != 10 {
		t.Errorf("subset distinct = %v, want 10", got)
	}
}

func TestWeightedIgnoresDuplicatesAndBadWeights(t *testing.T) {
	s := NewWeightedSketch(10, 2)
	s.Add(1, 2)
	s.Add(1, 2)
	s.Add(2, 0)
	s.Add(3, -1)
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

// TestWeightedDistinctUnbiased is the §3.4 validation: one weighted
// coordinated sample answers distinct counts AND subset sums unbiasedly.
func TestWeightedDistinctUnbiased(t *testing.T) {
	n := 3000
	rng := stream.NewRNG(3)
	weights := make([]float64, n)
	var trueSum float64
	for i := range weights {
		// "paying users" (20%) have high weight, everyone else weight 1.
		if rng.Float64() < 0.2 {
			weights[i] = 5 + rng.Float64()*20
		} else {
			weights[i] = 1
		}
		trueSum += weights[i]
	}
	pred := func(key uint64) bool { return key%2 == 0 }
	var trueDistinctEven float64
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			trueDistinctEven++
		}
	}
	var distinctEst, subsetEst estimator.Running
	for trial := 0; trial < 1500; trial++ {
		s := NewWeightedSketch(150, uint64(trial)+10)
		for i := 0; i < n; i++ {
			s.Add(uint64(i), weights[i])
		}
		distinctEst.Add(s.SubsetDistinctCount(pred))
		subsetEst.Add(s.SubsetSum(nil))
	}
	if z := (distinctEst.Mean() - trueDistinctEven) / distinctEst.SE(); math.Abs(z) > 4.5 {
		t.Errorf("subset distinct count biased: mean %v truth %v z %v",
			distinctEst.Mean(), trueDistinctEven, z)
	}
	if z := (subsetEst.Mean() - trueSum) / subsetEst.SE(); math.Abs(z) > 4.5 {
		t.Errorf("subset sum biased: mean %v truth %v z %v", subsetEst.Mean(), trueSum, z)
	}
}

func TestWeightedThreshold(t *testing.T) {
	s := NewWeightedSketch(5, 4)
	if !math.IsInf(s.Threshold(), 1) {
		t.Error("threshold must start at +inf")
	}
	for i := 0; i < 100; i++ {
		s.Add(uint64(i), 1)
	}
	th := s.Threshold()
	if math.IsInf(th, 1) || th <= 0 {
		t.Errorf("threshold = %v after 100 items", th)
	}
	if s.Len() != 6 {
		t.Errorf("len = %d, want k+1 = 6", s.Len())
	}
}
