package distinct

import (
	"math"
	"testing"
	"testing/quick"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k <= 0 must panic")
		}
	}()
	NewSketch(0, 1)
}

func TestExactBelowK(t *testing.T) {
	s := NewSketch(100, 1)
	for i := 0; i < 50; i++ {
		s.Add(uint64(i))
	}
	if got := s.Estimate(); got != 50 {
		t.Errorf("estimate = %v, want exact 50", got)
	}
	if s.Threshold() != 1 {
		t.Error("threshold must be 1 below k+1 distinct items")
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	s := NewSketch(10, 2)
	for i := 0; i < 1000; i++ {
		s.Add(7)
	}
	if got := s.Estimate(); got != 1 {
		t.Errorf("estimate = %v, want 1", got)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	n := 50000
	k := 200
	var ests []float64
	for trial := 0; trial < 40; trial++ {
		s := NewSketch(k, 1)
		base := uint64(trial) << 32
		for i := 0; i < n; i++ {
			s.Add(base + uint64(i))
		}
		ests = append(ests, s.Estimate())
	}
	rel := estimator.RelativeSD(ests, float64(n))
	// Expected ≈ 1/sqrt(k) ≈ 7%.
	if rel > 0.12 {
		t.Errorf("relative error %v too large for k=%d", rel, k)
	}
	mean, _ := estimator.MeanAndSD(ests)
	if math.Abs(mean-float64(n))/float64(n) > 0.03 {
		t.Errorf("mean estimate %v biased vs %d", mean, n)
	}
}

func TestSampleBelowThreshold(t *testing.T) {
	s := NewSketch(20, 3)
	for i := 0; i < 500; i++ {
		s.Add(uint64(i))
	}
	th := s.Threshold()
	hs := s.Hashes()
	if len(hs) != 20 {
		t.Errorf("sample size %d, want 20", len(hs))
	}
	for _, h := range hs {
		if h >= th {
			t.Errorf("hash %v at or above threshold %v", h, th)
		}
	}
}

func TestMergeEqualsUnionStream(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		a := NewSketch(15, 9)
		b := NewSketch(15, 9)
		whole := NewSketch(15, 9)
		for i := 0; i < 300; i++ {
			key := rng.Uint64() % 200 // force some duplicates
			if i%2 == 0 {
				a.Add(key)
			} else {
				b.Add(key)
			}
			whole.Add(key)
		}
		a.Merge(b)
		if a.Threshold() != whole.Threshold() {
			return false
		}
		ha, hw := a.Hashes(), whole.Hashes()
		if len(ha) != len(hw) {
			return false
		}
		set := make(map[float64]bool)
		for _, h := range ha {
			set[h] = true
		}
		for _, h := range hw {
			if !set[h] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeCommutative(t *testing.T) {
	mk := func(lo, hi int) *Sketch {
		s := NewSketch(10, 4)
		for i := lo; i < hi; i++ {
			s.Add(uint64(i))
		}
		return s
	}
	ab := mk(0, 100)
	ab.Merge(mk(50, 150))
	ba := mk(50, 150)
	ba.Merge(mk(0, 100))
	if ab.Estimate() != ba.Estimate() || ab.Threshold() != ba.Threshold() {
		t.Error("merge must be commutative")
	}
}

func TestUnionEstimatorsExactWhenSmall(t *testing.T) {
	a := NewSketch(100, 5)
	b := NewSketch(100, 5)
	for i := 0; i < 30; i++ {
		a.Add(uint64(i))
	}
	for i := 20; i < 60; i++ {
		b.Add(uint64(i))
	}
	want := 60.0
	if got := UnionEstimateTheta(a, b); got != want {
		t.Errorf("theta union = %v, want %v", got, want)
	}
	if got := UnionEstimateLCS(a, b); got != want {
		t.Errorf("LCS union = %v, want %v", got, want)
	}
	if got := UnionEstimateBottomK(a, b); got != want {
		t.Errorf("bottom-k union = %v, want %v", got, want)
	}
}

func TestUnionEstimatorsEmpty(t *testing.T) {
	if UnionEstimateTheta() != 0 || UnionEstimateBottomK() != 0 {
		t.Error("empty unions must be 0")
	}
	if UnionEstimateLCS() != 0 {
		t.Error("empty LCS union must be 0")
	}
}

// TestUnionEstimatorsUnbiasedAndOrdered verifies on a moderate overlap
// that all three union estimators are approximately unbiased and that the
// paper's Figure 4 ordering holds: LCS error <= Theta error <= bottom-k
// error (allowing Theta ≈ bottom-k within noise).
func TestUnionEstimatorsUnbiasedAndOrdered(t *testing.T) {
	sizeA, sizeB := 5000, 10000
	overlap := 2000
	truth := float64(sizeA + sizeB - overlap)
	var lcs, th, bk []float64
	for trial := 0; trial < 120; trial++ {
		pair := stream.NewSetPair(sizeA, sizeB, overlap, uint64(trial)+1)
		a := NewSketch(100, 6)
		for _, k := range pair.A {
			a.Add(k)
		}
		b := NewSketch(100, 6)
		for _, k := range pair.B {
			b.Add(k)
		}
		lcs = append(lcs, UnionEstimateLCS(a, b))
		th = append(th, UnionEstimateTheta(a, b))
		bk = append(bk, UnionEstimateBottomK(a, b))
	}
	for name, ests := range map[string][]float64{"lcs": lcs, "theta": th, "bottomk": bk} {
		mean, sd := estimator.MeanAndSD(ests)
		se := sd / math.Sqrt(float64(len(ests)))
		if z := (mean - truth) / se; math.Abs(z) > 5 {
			t.Errorf("%s union biased: mean %v truth %v z %v", name, mean, truth, z)
		}
	}
	eLCS := estimator.RelativeSD(lcs, truth)
	eTheta := estimator.RelativeSD(th, truth)
	eBK := estimator.RelativeSD(bk, truth)
	if eLCS > eTheta*1.05 {
		t.Errorf("LCS error %v should not exceed Theta error %v", eLCS, eTheta)
	}
	if eLCS > eBK*1.05 {
		t.Errorf("LCS error %v should not exceed bottom-k error %v", eLCS, eBK)
	}
}

func TestJaccardEstimator(t *testing.T) {
	sizeA, sizeB := 20000, 20000
	for _, wantJ := range []float64{0.1, 0.5} {
		overlap := stream.OverlapForJaccard(sizeA, sizeB, wantJ)
		var est estimator.Running
		for trial := 0; trial < 30; trial++ {
			pair := stream.NewSetPair(sizeA, sizeB, overlap, uint64(trial)+77)
			a := NewSketch(256, 8)
			for _, k := range pair.A {
				a.Add(k)
			}
			b := NewSketch(256, 8)
			for _, k := range pair.B {
				b.Add(k)
			}
			est.Add(Jaccard(a, b))
		}
		if math.Abs(est.Mean()-wantJ) > 0.05 {
			t.Errorf("jaccard estimate %v, want ≈ %v", est.Mean(), wantJ)
		}
	}
}

func TestJaccardDegenerate(t *testing.T) {
	a := NewSketch(10, 1)
	b := NewSketch(10, 1)
	if Jaccard(a, b) != 0 {
		t.Error("empty sketches have Jaccard 0")
	}
}

func TestMergeChecked(t *testing.T) {
	a, b := NewSketch(16, 1), NewSketch(16, 1)
	for i := 0; i < 100; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i + 50))
	}
	if err := a.MergeChecked(b); err != nil {
		t.Fatal(err)
	}
	// Must equal the sketch of the union stream.
	u := NewSketch(16, 1)
	for i := 0; i < 150; i++ {
		u.Add(uint64(i))
	}
	if a.Estimate() != u.Estimate() {
		t.Errorf("merged estimate %v != union estimate %v", a.Estimate(), u.Estimate())
	}
	if err := a.MergeChecked(NewSketch(16, 2)); err == nil {
		t.Error("merging different seeds must fail")
	}
	if err := a.MergeChecked(NewSketch(8, 1)); err == nil {
		t.Error("merging different k must fail")
	}
}
