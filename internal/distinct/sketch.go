// Package distinct implements coordinated-sample distinct counting
// sketches and the merge rules compared in §3.5 / Figure 4 of the paper:
//
//   - Sketch: a KMV/bottom-k cardinality sketch (k smallest hash values,
//     threshold = (k+1)-th smallest), which is an adaptive threshold sample
//     with a substitutable threshold;
//   - Theta-style union: threshold = min of the input thresholds, entries
//     below it from either sketch (the 1-goodness rule of the Theta sketch
//     framework);
//   - Adaptive/LCS union: per-item thresholds T'_i <= max of the input
//     thresholds — items keep the largest threshold of any input sketch
//     that could have sampled them — which is 1-substitutable by Theorem 9
//     and generalizes the LCS sketch of Cohen & Kaplan. It uses strictly
//     more of the stored points than the Theta rule and therefore has lower
//     variance except when one set contains the other.
//
// Weighted distinct counting (§3.4) is provided by WeightedSketch: a single
// coordinated priority sample answers both subset-sum and distinct-count
// queries.
package distinct

import (
	"errors"
	"math"
	"sort"

	"ats/internal/keeper"
	"ats/internal/stream"
)

// Sketch is a KMV/bottom-k distinct counting sketch: it retains the k
// smallest distinct hash values in (0, 1).
//
// Ingest is amortized O(1) per key with zero allocation: hashes are kept
// as raw uint64 bit patterns in a scratch-buffer keeper (unsigned order
// equals float order for values in (0, 1)), duplicates are appended for
// the cost of one comparison and eliminated during compaction — there is
// no membership map. Query methods settle the keeper first; they may
// mutate the internal representation but never the logical state, so a
// Sketch shared across goroutines needs external synchronization for
// queries as well as Adds.
type Sketch struct {
	k    int
	seed uint64
	hk   keeper.Hashes
}

// NewSketch returns an empty sketch of size k. Sketches sharing a seed are
// coordinated and can be merged.
func NewSketch(k int, seed uint64) *Sketch {
	if k <= 0 {
		panic("distinct: k must be positive")
	}
	return &Sketch{k: k, seed: seed, hk: keeper.MakeHashes(k)}
}

// K returns the sketch size parameter.
func (s *Sketch) K() int { return s.k }

// Seed returns the hash seed.
func (s *Sketch) Seed() uint64 { return s.seed }

// Add offers a key. Duplicate keys are ignored (same hash).
func (s *Sketch) Add(key uint64) {
	s.addHash(stream.HashU01(key, s.seed))
}

// AddString offers a string key.
func (s *Sketch) AddString(key string) {
	s.addHash(stream.HashStringU01(key, s.seed))
}

func (s *Sketch) addHash(h float64) {
	s.hk.Add(math.Float64bits(h))
}

// Settle compacts the keeper to its canonical layout: the k+1 smallest
// distinct hashes, sorted ascending. The logical state of a distinct
// sketch is fully canonical (a sorted set), so settling never changes
// query answers; the store's query planner settles at plan boundaries
// for uniformity with the order-sensitive sketches.
func (s *Sketch) Settle() { s.hk.Settle() }

// Reset empties the sketch for reuse as a merge target, keeping the
// keeper's allocated buffers. A reset sketch retains exactly the hashes
// a fresh NewSketch(k, seed) would.
func (s *Sketch) Reset() { s.hk.Reset() }

// Threshold returns the sketch's threshold: the (k+1)-th smallest distinct
// hash seen, or 1 while fewer than k+1 distinct keys have been added. Every
// distinct key with hash below the threshold is retained, each with
// inclusion probability equal to the threshold.
func (s *Sketch) Threshold() float64 {
	if bits, ok := s.hk.Threshold(); ok {
		return math.Float64frombits(bits)
	}
	return 1
}

// Hashes returns the retained hash values strictly below the threshold
// (the sample), freshly allocated, in ascending order. Use AppendHashes to
// reuse a buffer instead.
func (s *Sketch) Hashes() []float64 {
	// Capacity follows stored size, not k: k may dwarf the stream (or come
	// from decoded data), and pre-allocating k would be an allocation bomb.
	c := s.k
	if n := s.hk.Len(); n < c {
		c = n
	}
	return s.AppendHashes(make([]float64, 0, c))
}

// AppendHashes appends the sample hashes (ascending) to dst and returns
// the extended slice; with a reused dst it performs no allocation.
func (s *Sketch) AppendHashes(dst []float64) []float64 {
	vals := s.hk.Values()
	if _, ok := s.hk.Threshold(); ok {
		vals = vals[:s.k] // the value at index k is the threshold, not sampled
	}
	for _, b := range vals {
		dst = append(dst, math.Float64frombits(b))
	}
	return dst
}

// SampleSize returns the number of sample hashes (len(Hashes())) without
// materializing them: k once the threshold is set, else every retained
// value.
func (s *Sketch) SampleSize() int {
	if _, ok := s.hk.Threshold(); ok {
		return s.k
	}
	return s.hk.Len()
}

// Estimate returns the unbiased HT cardinality estimate |sample| / T.
func (s *Sketch) Estimate() float64 {
	bits, ok := s.hk.Threshold()
	if !ok {
		return float64(s.hk.Len()) // exact below k+1 distinct keys
	}
	return float64(s.k) / math.Float64frombits(bits)
}

// Merge folds another coordinated sketch into s (stream-union semantics:
// the result is exactly the sketch of the concatenated streams). Both the
// Theta and LCS union estimators are available separately; Merge is the
// mutating building block. Merging a sketch into itself is a no-op: the
// union of a set with itself is the set.
func (s *Sketch) Merge(o *Sketch) {
	if o == s {
		return
	}
	for _, bits := range o.hk.Values() {
		s.hk.Add(bits)
	}
}

// MergeChecked is Merge with compatibility validation: the sketches must
// share k and seed, otherwise the hash values are not coordinated and the
// union would be silently biased. The concurrent engine merges shards
// through this entry point. Self-merges are rejected explicitly.
func (s *Sketch) MergeChecked(o *Sketch) error {
	if o == s {
		return errors.New("distinct: cannot merge a sketch into itself")
	}
	if o.k != s.k {
		return errors.New("distinct: cannot merge sketches with different k")
	}
	if o.seed != s.seed {
		return errors.New("distinct: cannot merge sketches with different seeds")
	}
	s.Merge(o)
	return nil
}

// sortedHashes returns the sample hashes in increasing order (Hashes
// already yields ascending order; this name is kept for the estimators
// below).
func (s *Sketch) sortedHashes() []float64 {
	return s.Hashes()
}

// UnionEstimateTheta returns the Theta-sketch union cardinality estimate
// for the union of the sets summarized by the sketches: threshold
// θ = min_i θ_i, estimate = |{distinct hashes < θ}| / θ.
func UnionEstimateTheta(sketches ...*Sketch) float64 {
	if len(sketches) == 0 {
		return 0
	}
	theta := 1.0
	for _, s := range sketches {
		if t := s.Threshold(); t < theta {
			theta = t
		}
	}
	seen := make(map[float64]struct{})
	for _, s := range sketches {
		for _, h := range s.Hashes() {
			if h < theta {
				seen[h] = struct{}{}
			}
		}
	}
	if theta >= 1 {
		return float64(len(seen))
	}
	return float64(len(seen)) / theta
}

// UnionEstimateLCS returns the adaptive-threshold (LCS-style) union
// estimate: every distinct hash retained by any sketch contributes weight
// 1 / max{θ_S : sketch S retains it}. An element present in several input
// sets is retained by every sketch whose threshold exceeds its hash, so
// the max over retaining sketches equals its true inclusion probability in
// the combined sample, making the estimator unbiased while using all
// stored points.
func UnionEstimateLCS(sketches ...*Sketch) float64 {
	weights := make(map[float64]float64)
	for _, s := range sketches {
		t := s.Threshold()
		for _, h := range s.Hashes() {
			if t > weights[h] {
				weights[h] = t
			}
		}
	}
	est := 0.0
	for _, t := range weights {
		est += 1 / t
	}
	return est
}

// UnionEstimateBottomK returns the "basic bottom-k" union estimate:
// combine all retained hashes, take the k smallest distinct values (k from
// the first sketch), and estimate with the (k+1)-th smallest as threshold.
// This is the strictest rule in Figure 4: it discards points the other two
// rules keep.
func UnionEstimateBottomK(sketches ...*Sketch) float64 {
	if len(sketches) == 0 {
		return 0
	}
	k := sketches[0].k
	seen := make(map[float64]struct{})
	for _, s := range sketches {
		// Only hashes below every... no: bottom-k of the union sample uses
		// hashes valid for the union, i.e. below the min threshold.
		for _, h := range s.Hashes() {
			seen[h] = struct{}{}
		}
	}
	theta := 1.0
	for _, s := range sketches {
		if t := s.Threshold(); t < theta {
			theta = t
		}
	}
	all := make([]float64, 0, len(seen))
	for h := range seen {
		if h < theta {
			all = append(all, h)
		}
	}
	sort.Float64s(all)
	if len(all) <= k {
		if theta >= 1 {
			return float64(len(all))
		}
		return float64(len(all)) / theta
	}
	// Threshold = (k+1)-th smallest combined hash; estimate = k / threshold.
	return float64(k) / all[k]
}

// Jaccard estimates the Jaccard similarity of two coordinated sketches
// using the k smallest hashes of their union (the classic MinHash/bottom-k
// resemblance estimator).
func Jaccard(a, b *Sketch) float64 {
	ha, hb := a.sortedHashes(), b.sortedHashes()
	inA := make(map[float64]struct{}, len(ha))
	for _, h := range ha {
		inA[h] = struct{}{}
	}
	inB := make(map[float64]struct{}, len(hb))
	for _, h := range hb {
		inB[h] = struct{}{}
	}
	// k smallest of the union of samples, restricted below both thresholds.
	theta := math.Min(a.Threshold(), b.Threshold())
	union := make([]float64, 0, len(ha)+len(hb))
	seen := make(map[float64]struct{}, len(ha)+len(hb))
	for _, h := range append(append([]float64{}, ha...), hb...) {
		if h < theta {
			if _, dup := seen[h]; !dup {
				seen[h] = struct{}{}
				union = append(union, h)
			}
		}
	}
	sort.Float64s(union)
	k := a.k
	if len(union) > k {
		union = union[:k]
	}
	if len(union) == 0 {
		return 0
	}
	both := 0
	for _, h := range union {
		_, ina := inA[h]
		_, inb := inB[h]
		if ina && inb {
			both++
		}
	}
	return float64(both) / float64(len(union))
}
