package distinct

import (
	"math"

	"ats/internal/core"
	"ats/internal/stream"
)

// WeightedSketch is the single coordinated weighted sample of §3.4 that
// answers both subset-sum and distinct-count queries: items are sampled
// with priority R = U/w (probability proportional to weight under the
// bottom-k threshold), the distinct count is estimated by Σ Z_i/F_i(w_i T)
// and subset sums by Σ w_i Z_i / F_i(w_i T).
type WeightedSketch struct {
	k    int
	seed uint64
	heap []wEntry // max-heap on Priority of the k+1 smallest
	keys map[uint64]struct{}
	n    int
}

type wEntry struct {
	Key      uint64
	Weight   float64
	Priority float64
}

// NewWeightedSketch returns an empty weighted distinct sketch of size k.
func NewWeightedSketch(k int, seed uint64) *WeightedSketch {
	if k <= 0 {
		panic("distinct: k must be positive")
	}
	return &WeightedSketch{
		k:    k,
		seed: seed,
		heap: make([]wEntry, 0, k+2),
		keys: make(map[uint64]struct{}, k+2),
	}
}

// Add offers a key with weight w > 0. Re-adding a key is a no-op (the
// sketch summarizes a set of distinct weighted items).
func (s *WeightedSketch) Add(key uint64, w float64) {
	if w <= 0 {
		return
	}
	s.n++
	pr := stream.HashU01(key, s.seed) / w
	if len(s.heap) == s.k+1 && pr >= s.heap[0].Priority {
		return
	}
	if _, dup := s.keys[key]; dup {
		return
	}
	s.keys[key] = struct{}{}
	s.heap = append(s.heap, wEntry{Key: key, Weight: w, Priority: pr})
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].Priority >= s.heap[i].Priority {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
	if len(s.heap) > s.k+1 {
		root := s.heap[0]
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		s.siftDown(0)
		delete(s.keys, root.Key)
	}
}

func (s *WeightedSketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.heap[l].Priority > s.heap[largest].Priority {
			largest = l
		}
		if r < n && s.heap[r].Priority > s.heap[largest].Priority {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}

// Threshold returns the (k+1)-th smallest priority, or +inf while fewer
// than k+1 distinct keys have been added.
func (s *WeightedSketch) Threshold() float64 {
	if len(s.heap) < s.k+1 {
		return math.Inf(1)
	}
	return s.heap[0].Priority
}

// DistinctCount returns the estimate N̂ = Σ Z_i / F_i(T) over sampled
// items, where F_i(T) = min(1, w_i T).
func (s *WeightedSketch) DistinctCount() float64 {
	t := s.Threshold()
	if math.IsInf(t, 1) {
		return float64(len(s.heap))
	}
	est := 0.0
	for _, e := range s.heap {
		if e.Priority < t {
			est += 1 / core.InclusionProb(e.Weight, t)
		}
	}
	return est
}

// SubsetSum returns the HT estimate of Σ w_i over distinct items matching
// pred (nil for all).
func (s *WeightedSketch) SubsetSum(pred func(key uint64) bool) float64 {
	t := s.Threshold()
	est := 0.0
	for _, e := range s.heap {
		if e.Priority >= t {
			continue
		}
		if pred != nil && !pred(e.Key) {
			continue
		}
		if math.IsInf(t, 1) {
			est += e.Weight
		} else {
			est += e.Weight / core.InclusionProb(e.Weight, t)
		}
	}
	return est
}

// SubsetDistinctCount returns the HT estimate of the number of distinct
// items matching pred — e.g. the total population of a demographic
// subgroup when only paying users were weighted highly (§3.4).
func (s *WeightedSketch) SubsetDistinctCount(pred func(key uint64) bool) float64 {
	t := s.Threshold()
	est := 0.0
	for _, e := range s.heap {
		if e.Priority >= t {
			continue
		}
		if pred != nil && !pred(e.Key) {
			continue
		}
		if math.IsInf(t, 1) {
			est++
		} else {
			est += 1 / core.InclusionProb(e.Weight, t)
		}
	}
	return est
}

// Len returns the current number of retained items (including the
// threshold item).
func (s *WeightedSketch) Len() int { return len(s.heap) }
