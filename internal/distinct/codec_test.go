package distinct

import (
	"errors"
	"testing"
	"testing/quick"

	"ats/internal/stream"
)

func TestCodecRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := stream.NewRNG(seed)
		orig := NewSketch(32, seed)
		m := int(n % 2000)
		for i := 0; i < m; i++ {
			orig.Add(rng.Uint64() % 1000)
		}
		data, err := orig.MarshalBinary()
		if err != nil {
			return false
		}
		var got Sketch
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		if got.Threshold() != orig.Threshold() || got.Estimate() != orig.Estimate() {
			return false
		}
		// Restored sketches must merge like the originals.
		other := NewSketch(32, seed)
		for i := 0; i < 100; i++ {
			other.Add(rng.Uint64())
		}
		got.Merge(other)
		orig.Merge(other)
		return got.Estimate() == orig.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	orig := NewSketch(16, 3)
	for i := 0; i < 500; i++ {
		orig.Add(uint64(i))
	}
	data, _ := orig.MarshalBinary()

	var s Sketch
	if err := s.UnmarshalBinary(data[:5]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[1] ^= 0xFF
	if err := s.UnmarshalBinary(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[4] = 200
	if err := s.UnmarshalBinary(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Corrupt a stored hash to be out of range.
	bad = append([]byte(nil), data...)
	for i := len(bad) - 8; i < len(bad); i++ {
		bad[i] = 0xFF
	}
	if err := s.UnmarshalBinary(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad hash: %v", err)
	}
}
