package distinct

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Serialization format (little-endian):
//
//	magic   uint32  "ATSd"
//	version uint8   1
//	k       uint32
//	seed    uint64
//	count   uint32
//	hashes  count × float64
const (
	codecMagic   = 0x41545364 // "ATSd"
	codecVersion = 1
)

var (
	// ErrCorrupt reports malformed or truncated serialized data.
	ErrCorrupt = errors.New("distinct: corrupt serialized sketch")
	// ErrVersion reports an unsupported serialization version.
	ErrVersion = errors.New("distinct: unsupported serialization version")
)

// MarshalBinary serializes the sketch. It settles the keeper first, so
// the hash count is always at most k+1 (the retained distinct values,
// including the threshold value when one exists).
func (s *Sketch) MarshalBinary() ([]byte, error) {
	vals := s.hk.Values()
	buf := make([]byte, 0, 4+1+4+8+4+len(vals)*8)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.k))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vals)))
	for _, bits := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, bits)
	}
	return buf, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary,
// overwriting the receiver.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	const header = 4 + 1 + 4 + 8 + 4
	if len(data) < header {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != codecMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != codecVersion {
		return fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	k := int(binary.LittleEndian.Uint32(data[5:]))
	if k <= 0 {
		return fmt.Errorf("%w: non-positive k", ErrCorrupt)
	}
	seed := binary.LittleEndian.Uint64(data[9:])
	count := int(binary.LittleEndian.Uint32(data[17:]))
	if count < 0 || count > k+1 {
		return fmt.Errorf("%w: %d hashes for k=%d", ErrCorrupt, count, k)
	}
	if len(data) != header+count*8 {
		return fmt.Errorf("%w: body is %d bytes, want %d", ErrCorrupt, len(data)-header, count*8)
	}
	// The keeper's scratch buffer grows on demand, so a crafted header
	// claiming k in the billions with a tiny body cannot force a huge
	// allocation.
	restored := NewSketch(k, seed)
	off := header
	for i := 0; i < count; i++ {
		h := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		if !(h > 0 && h < 1) {
			return fmt.Errorf("%w: hash %d out of (0,1)", ErrCorrupt, i)
		}
		restored.addHash(h)
		off += 8
	}
	*s = *restored
	return nil
}

// UnmarshalBinaryReuse is UnmarshalBinary refilling the receiver's
// existing keeper scratch instead of allocating a fresh sketch, for
// decode paths that run per query (the store's cached-plan decode). The
// decoded state is bit-identical to UnmarshalBinary's — a reset keeper
// retains exactly what a fresh one would — and once the scratch has
// grown to the serialized size the call performs no allocation. On a k
// mismatch it falls back to UnmarshalBinary; on corrupt input the
// receiver is left reset and must be discarded.
func (s *Sketch) UnmarshalBinaryReuse(data []byte) error {
	const header = 4 + 1 + 4 + 8 + 4
	if len(data) < header {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != codecMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != codecVersion {
		return fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	k := int(binary.LittleEndian.Uint32(data[5:]))
	if k != s.k {
		return s.UnmarshalBinary(data)
	}
	seed := binary.LittleEndian.Uint64(data[9:])
	count := int(binary.LittleEndian.Uint32(data[17:]))
	if count < 0 || count > k+1 {
		return fmt.Errorf("%w: %d hashes for k=%d", ErrCorrupt, count, k)
	}
	if len(data) != header+count*8 {
		return fmt.Errorf("%w: body is %d bytes, want %d", ErrCorrupt, len(data)-header, count*8)
	}
	s.seed = seed
	s.hk.Reset()
	off := header
	for i := 0; i < count; i++ {
		h := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		if !(h > 0 && h < 1) {
			s.hk.Reset()
			return fmt.Errorf("%w: hash %d out of (0,1)", ErrCorrupt, i)
		}
		s.addHash(h)
		off += 8
	}
	return nil
}
