package distinct

// This file preserves the pre-keeper heap+map implementation as a
// test-only reference: the keeper-backed Sketch must produce bit-identical
// thresholds and hash samples on any key stream, and the baseline
// benchmarks keep the before/after ingest numbers comparable via
// benchstat.

import (
	"sort"
	"testing"
	"testing/quick"

	"ats/internal/stream"
)

// heapSketch is the original max-heap + membership-map KMV sketch.
type heapSketch struct {
	k       int
	seed    uint64
	heap    []float64
	members map[float64]struct{}
}

func newHeapSketch(k int, seed uint64) *heapSketch {
	return &heapSketch{
		k:       k,
		seed:    seed,
		heap:    make([]float64, 0, k+2),
		members: make(map[float64]struct{}, k+2),
	}
}

func (s *heapSketch) Add(key uint64) { s.addHash(stream.HashU01(key, s.seed)) }

func (s *heapSketch) addHash(h float64) {
	if len(s.heap) == s.k+1 && h >= s.heap[0] {
		return
	}
	if _, ok := s.members[h]; ok {
		return
	}
	s.members[h] = struct{}{}
	s.heap = append(s.heap, h)
	for i := len(s.heap) - 1; i > 0; {
		p := (i - 1) / 2
		if s.heap[p] >= s.heap[i] {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
	if len(s.heap) > s.k+1 {
		root := s.heap[0]
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		n := len(s.heap)
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			largest := i
			if l < n && s.heap[l] > s.heap[largest] {
				largest = l
			}
			if r < n && s.heap[r] > s.heap[largest] {
				largest = r
			}
			if largest == i {
				break
			}
			s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
			i = largest
		}
		delete(s.members, root)
	}
}

func (s *heapSketch) Threshold() float64 {
	if len(s.heap) < s.k+1 {
		return 1
	}
	return s.heap[0]
}

func (s *heapSketch) Hashes() []float64 {
	t := s.Threshold()
	out := make([]float64, 0, len(s.heap))
	for _, h := range s.heap {
		if h < t {
			out = append(out, h)
		}
	}
	sort.Float64s(out)
	return out
}

// TestKeeperMatchesHeapImplementation: on seeded key streams with heavy
// duplication the keeper-backed sketch must produce bit-identical
// thresholds and hash samples to the heap+map reference, including with
// interleaved queries and for k=1 and streams shorter than k.
func TestKeeperMatchesHeapImplementation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		k := 1 + rng.Intn(40)
		universe := uint64(1 + rng.Intn(3*k+5)) // small: many duplicate keys
		n := rng.Intn(50 * (k + 1))
		a := NewSketch(k, 5)
		b := newHeapSketch(k, 5)
		for i := 0; i < n; i++ {
			key := rng.Uint64() % universe
			a.Add(key)
			b.Add(key)
			if i%31 == 0 {
				_ = a.Estimate() // interleaved settles must not change the outcome
			}
		}
		if a.Threshold() != b.Threshold() {
			return false
		}
		ha, hb := a.Hashes(), b.Hashes()
		if len(ha) != len(hb) {
			return false
		}
		for i := range ha {
			if ha[i] != hb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeSelfIsNoOp(t *testing.T) {
	s := NewSketch(8, 1)
	for i := 0; i < 100; i++ {
		s.Add(uint64(i))
	}
	before := s.Hashes()
	bt := s.Threshold()
	s.Merge(s) // must not corrupt the sketch
	if err := s.MergeChecked(s); err == nil {
		t.Error("MergeChecked must reject a self-merge")
	}
	after := s.Hashes()
	if s.Threshold() != bt || len(after) != len(before) {
		t.Fatalf("self-merge changed the sketch: threshold %v->%v, %d->%d hashes",
			bt, s.Threshold(), len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("self-merge changed hash[%d]: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	s := NewSketch(64, 3)
	for i := 0; i < 10000; i++ {
		s.Add(uint64(i))
	}
	key := uint64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		key++
		s.Add(key % 20000) // mix of duplicates and fresh keys
	}); allocs != 0 {
		t.Errorf("Add allocates %v per op in steady state, want 0", allocs)
	}
	buf := make([]float64, 0, s.K())
	if allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendHashes(buf[:0])
	}); allocs != 0 {
		t.Errorf("AppendHashes allocates %v per op, want 0", allocs)
	}
}

// --- benchmarks: keeper vs the preserved heap+map baseline ---

func benchKeys(universe uint64) []uint64 {
	rng := stream.NewRNG(99)
	out := make([]uint64, 1<<16)
	for i := range out {
		out[i] = rng.Uint64() % universe
	}
	return out
}

// BenchmarkAdd measures keeper-backed ingest. shape=unique is the
// all-fresh-keys steady state; shape=dup replays a universe comparable to
// the sketch size (about half the adds are below-threshold duplicates);
// shape=flood replays a universe smaller than k, so every add is a
// duplicate the old implementation resolved with a map lookup and the
// keeper resolves with one filter probe.
func BenchmarkAdd(b *testing.B) {
	for _, shape := range []struct {
		name     string
		universe uint64
	}{{"shape=unique", 1 << 62}, {"shape=dup", 512}, {"shape=flood", 200}} {
		keys := benchKeys(shape.universe)
		b.Run(shape.name, func(b *testing.B) {
			s := NewSketch(256, 7)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Add(keys[i&(1<<16-1)])
			}
		})
	}
}

// BenchmarkAddHeapBaseline is the identical workload on the pre-keeper
// heap+map implementation (compare with BenchmarkAdd via benchstat).
func BenchmarkAddHeapBaseline(b *testing.B) {
	for _, shape := range []struct {
		name     string
		universe uint64
	}{{"shape=unique", 1 << 62}, {"shape=dup", 512}, {"shape=flood", 200}} {
		keys := benchKeys(shape.universe)
		b.Run(shape.name, func(b *testing.B) {
			s := newHeapSketch(256, 7)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Add(keys[i&(1<<16-1)])
			}
		})
	}
}
