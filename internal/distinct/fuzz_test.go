package distinct

import (
	"sort"
	"testing"
)

func fuzzSeedDistinct(t testing.TB, k int, seed uint64, n int) []byte {
	sk := NewSketch(k, seed)
	for i := 0; i < n; i++ {
		sk.Add(uint64(i) * 0x9e3779b9)
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzCodecRoundTrip feeds arbitrary bytes to UnmarshalBinary. Decodable
// inputs must survive a marshal/unmarshal round trip with identical
// semantics (k, seed, threshold, hash sample, estimate); everything else
// must be rejected with an error, never a panic.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(fuzzSeedDistinct(f, 4, 1, 0))
	f.Add(fuzzSeedDistinct(f, 4, 1, 3))
	f.Add(fuzzSeedDistinct(f, 4, 5, 4))
	f.Add(fuzzSeedDistinct(f, 128, 9, 5000))
	merged := NewSketch(16, 3)
	other := NewSketch(16, 3)
	for i := 0; i < 200; i++ {
		merged.Add(uint64(i))
		other.Add(uint64(i + 100))
	}
	merged.Merge(other)
	if data, err := merged.MarshalBinary(); err == nil {
		f.Add(data)
		f.Add(data[:len(data)-5])
	}
	f.Add([]byte{})
	f.Add([]byte("ATSdgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sketch
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		if s.k <= 0 || s.hk.Len() > s.k+1 {
			t.Fatalf("decoded invalid sketch: k=%d retained=%d", s.k, s.hk.Len())
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var s2 Sketch
		if err := s2.UnmarshalBinary(out); err != nil {
			t.Fatalf("round trip rejected its own output: %v", err)
		}
		if s2.k != s.k || s2.seed != s.seed {
			t.Fatalf("round trip changed identity: (%d,%d) -> (%d,%d)", s.k, s.seed, s2.k, s2.seed)
		}
		if s.Threshold() != s2.Threshold() {
			t.Fatalf("round trip changed threshold: %v -> %v", s.Threshold(), s2.Threshold())
		}
		if s.Estimate() != s2.Estimate() {
			t.Fatalf("round trip changed estimate: %v -> %v", s.Estimate(), s2.Estimate())
		}
		a, b := s.Hashes(), s2.Hashes()
		sort.Float64s(a)
		sort.Float64s(b)
		if len(a) != len(b) {
			t.Fatalf("round trip changed sample size: %d -> %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed hash[%d]: %v -> %v", i, a[i], b[i])
			}
		}
	})
}
