// Package aqp implements early stopping for approximate query processing
// (§3.10): the data is stored in full but physically ordered by priority;
// a query with a user-specified standard-error target δ scans the prefix
// in priority order and stops as soon as the estimated variance of the
// running HT estimate drops to δ². Reading a prefix of the priority order
// is exactly adaptive threshold sampling with threshold equal to the next
// unread priority — a stopping time on the sorted sequence, substitutable
// by Theorem 8.
//
// The package also provides the multi-objective block layout sketched in
// the paper: blocks alternate bottom-k prefixes ordered by each
// objective's priority, so a scan of m blocks yields a weighted sample of
// size >= mk for every objective.
package aqp

import (
	"math"
	"sort"

	"ats/internal/core"
	"ats/internal/stream"
)

// Row is one stored record.
type Row struct {
	Key    uint64
	Weight float64
	Value  float64
	// Priority is assigned at load time: U(key)/Weight.
	Priority float64
}

// Table is a priority-ordered physical layout supporting early-stopping
// aggregate queries.
type Table struct {
	rows []Row // sorted ascending by Priority
}

// NewTable builds a table from weighted rows, assigning coordinated
// priorities and sorting by them. Rows with non-positive weight are
// dropped (they could never be sampled).
func NewTable(keys []uint64, weights, values []float64, seed uint64) *Table {
	if len(keys) != len(weights) || len(keys) != len(values) {
		panic("aqp: mismatched column lengths")
	}
	rows := make([]Row, 0, len(keys))
	for i, k := range keys {
		if weights[i] <= 0 {
			continue
		}
		rows = append(rows, Row{
			Key:      k,
			Weight:   weights[i],
			Value:    values[i],
			Priority: stream.HashU01(k, seed) / weights[i],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Priority < rows[j].Priority })
	return &Table{rows: rows}
}

// Len returns the number of stored rows.
func (t *Table) Len() int { return len(t.rows) }

// QueryResult reports an early-stopped aggregate.
type QueryResult struct {
	// Sum is the HT estimate of Σ value over rows matching the predicate.
	Sum float64
	// SE is the estimated standard error at the stopping point.
	SE float64
	// RowsRead is the number of rows scanned before stopping.
	RowsRead int
	// Threshold is the sampling threshold implied by the stopping point
	// (the priority of the first unread row; +inf if the whole table was
	// read).
	Threshold float64
}

// Query scans rows in priority order, maintaining the HT estimate of
// Σ value over rows matching pred (nil for all), and stops as soon as the
// estimated standard error is at most targetSE. It always reads at least
// minRows rows (default 2k-ish floor of 100 if 0) before trusting the
// variance estimate.
func (t *Table) Query(pred func(Row) bool, targetSE float64, minRows int) QueryResult {
	return t.QueryStep(pred, targetSE, minRows, 0.05)
}

// QueryStep is Query with an explicit checkpoint growth fraction: the
// stopping condition is evaluated at prefix lengths growing geometrically
// by stepFrac. Each evaluation is O(read), so the total work is O(n/step)
// amortized instead of O(n²), at the cost of reading up to stepFrac more
// rows than strictly necessary. stepFrac = 0 checks after every row
// (exact, quadratic).
func (t *Table) QueryStep(pred func(Row) bool, targetSE float64, minRows int, stepFrac float64) QueryResult {
	if targetSE <= 0 {
		panic("aqp: targetSE must be positive")
	}
	if minRows <= 0 {
		minRows = 100
	}
	target2 := targetSE * targetSE
	for read := minRows; read < len(t.rows); {
		threshold := t.rows[read].Priority // first unread row's priority
		sum, v := t.estimateAt(pred, read, threshold)
		if v <= target2 {
			return QueryResult{Sum: sum, SE: math.Sqrt(v), RowsRead: read, Threshold: threshold}
		}
		next := read + int(float64(read)*stepFrac)
		if next == read {
			next = read + 1
		}
		read = next
	}
	// Exact: whole table read.
	sum := 0.0
	for _, r := range t.rows {
		if pred == nil || pred(r) {
			sum += r.Value
		}
	}
	return QueryResult{Sum: sum, SE: 0, RowsRead: len(t.rows), Threshold: math.Inf(1)}
}

// estimateAt computes the HT estimate and variance estimate using the
// first read rows under the given threshold.
func (t *Table) estimateAt(pred func(Row) bool, read int, threshold float64) (sum, variance float64) {
	for _, r := range t.rows[:read] {
		if pred != nil && !pred(r) {
			continue
		}
		p := core.InclusionProb(r.Weight, threshold)
		if p <= 0 {
			continue
		}
		sum += r.Value / p
		if p < 1 {
			variance += r.Value * r.Value * (1 - p) / (p * p)
		}
	}
	return sum, variance
}

// Block is one physical block of the multi-objective layout.
type Block struct {
	// Objective is the index of the objective whose priority ordered this
	// block.
	Objective int
	Rows      []MultiRow
}

// MultiRow is a row with per-objective weights and priorities.
type MultiRow struct {
	Key        uint64
	Weights    []float64
	Value      float64
	Priorities []float64
}

// MultiLayout builds the §3.10 physical layout for multiple objectives:
// repeatedly, for each objective in turn, take the bottom-k remaining rows
// by that objective's priority and emit them as a block. Scanning the
// first m blocks yields, for every objective, a weighted sample of size at
// least floor(m/c)*k under a threshold computable from the scan.
func MultiLayout(rows []MultiRow, k int) []Block {
	if k <= 0 {
		panic("aqp: k must be positive")
	}
	remaining := make([]MultiRow, len(rows))
	copy(remaining, rows)
	var blocks []Block
	c := 0
	if len(rows) > 0 {
		c = len(rows[0].Priorities)
	}
	obj := 0
	for len(remaining) > 0 {
		sort.Slice(remaining, func(i, j int) bool {
			return remaining[i].Priorities[obj] < remaining[j].Priorities[obj]
		})
		n := k
		if n > len(remaining) {
			n = len(remaining)
		}
		blk := Block{Objective: obj, Rows: make([]MultiRow, n)}
		copy(blk.Rows, remaining[:n])
		remaining = remaining[n:]
		blocks = append(blocks, blk)
		if c > 0 {
			obj = (obj + 1) % c
		}
	}
	return blocks
}

// NewMultiRows assigns coordinated priorities (one shared uniform per key,
// divided by each objective weight) to build MultiRow records.
func NewMultiRows(keys []uint64, weights [][]float64, values []float64, seed uint64) []MultiRow {
	out := make([]MultiRow, len(keys))
	for i, k := range keys {
		u := stream.HashU01(k, seed)
		ws := weights[i]
		ps := make([]float64, len(ws))
		for j, w := range ws {
			ps[j] = u / w
		}
		out[i] = MultiRow{Key: k, Weights: ws, Value: values[i], Priorities: ps}
	}
	return out
}
