package aqp

import (
	"math"
	"testing"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func buildTable(n int, seed uint64) (*Table, float64) {
	items := stream.ParetoWeights(n, 1.5, seed)
	keys := make([]uint64, n)
	weights := make([]float64, n)
	values := make([]float64, n)
	truth := 0.0
	for i, it := range items {
		keys[i] = it.Key
		weights[i] = it.Weight
		values[i] = it.Value
		truth += it.Value
	}
	return NewTable(keys, weights, values, seed+1), truth
}

func TestNewTableValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched columns must panic")
		}
	}()
	NewTable([]uint64{1}, []float64{1, 2}, []float64{1}, 0)
}

func TestTableSortedByPriority(t *testing.T) {
	tab, _ := buildTable(5000, 3)
	last := -1.0
	for _, r := range tab.rows {
		if r.Priority < last {
			t.Fatal("rows not sorted by priority")
		}
		last = r.Priority
	}
}

func TestNonPositiveWeightsDropped(t *testing.T) {
	tab := NewTable([]uint64{1, 2, 3}, []float64{1, 0, -1}, []float64{1, 1, 1}, 5)
	if tab.Len() != 1 {
		t.Errorf("len = %d, want 1", tab.Len())
	}
}

func TestQueryValidation(t *testing.T) {
	tab, _ := buildTable(100, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("targetSE <= 0 must panic")
		}
	}()
	tab.Query(nil, 0, 10)
}

func TestQueryExactWhenTargetTiny(t *testing.T) {
	tab, truth := buildTable(500, 7)
	q := tab.Query(nil, 1e-9, 10)
	if q.RowsRead != tab.Len() {
		t.Errorf("rows read %d, want full table", q.RowsRead)
	}
	if math.Abs(q.Sum-truth) > 1e-6*truth {
		t.Errorf("full-scan sum %v, want %v", q.Sum, truth)
	}
	if q.SE != 0 || !math.IsInf(q.Threshold, 1) {
		t.Error("full scan must report SE 0 and threshold +inf")
	}
}

func TestQueryEarlyStop(t *testing.T) {
	tab, truth := buildTable(50000, 8)
	q := tab.Query(nil, truth*0.05, 50)
	if q.RowsRead >= tab.Len()/2 {
		t.Errorf("rows read %d; a 5%% target should stop early", q.RowsRead)
	}
	if q.SE > truth*0.05 {
		t.Errorf("reported SE %v exceeds target %v", q.SE, truth*0.05)
	}
	if rel := math.Abs(q.Sum-truth) / truth; rel > 0.25 {
		t.Errorf("single-query relative error %v suspiciously large", rel)
	}
}

func TestTighterTargetsReadMore(t *testing.T) {
	tab, truth := buildTable(50000, 9)
	loose := tab.Query(nil, truth*0.05, 50)
	tight := tab.Query(nil, truth*0.01, 50)
	if tight.RowsRead <= loose.RowsRead {
		t.Errorf("tight target read %d <= loose %d", tight.RowsRead, loose.RowsRead)
	}
}

func TestQueryUnbiased(t *testing.T) {
	n := 20000
	items := stream.ParetoWeights(n, 1.5, 10)
	keys := make([]uint64, n)
	weights := make([]float64, n)
	values := make([]float64, n)
	truth := 0.0
	for i, it := range items {
		keys[i] = it.Key
		weights[i] = it.Weight
		values[i] = it.Value
		truth += it.Value
	}
	var est estimator.Running
	for trial := 0; trial < 120; trial++ {
		tab := NewTable(keys, weights, values, 1000+uint64(trial))
		q := tab.Query(nil, truth*0.03, 50)
		est.Add(q.Sum)
	}
	if z := (est.Mean() - truth) / est.SE(); math.Abs(z) > 4.5 {
		t.Errorf("early-stopped estimate biased: mean %v truth %v z %v", est.Mean(), truth, z)
	}
}

func TestQueryWithPredicate(t *testing.T) {
	tab, truth := buildTable(30000, 11)
	pred := func(r Row) bool { return r.Key%2 == 0 }
	var predTruth float64
	for _, r := range tab.rows {
		if pred(r) {
			predTruth += r.Value
		}
	}
	q := tab.Query(pred, truth*0.03, 50)
	if rel := math.Abs(q.Sum-predTruth) / predTruth; rel > 0.25 {
		t.Errorf("predicate query rel error %v (est %v truth %v)", rel, q.Sum, predTruth)
	}
}

func TestMultiLayoutStructure(t *testing.T) {
	n := 1000
	keys := make([]uint64, n)
	weights := make([][]float64, n)
	values := make([]float64, n)
	rng := stream.NewRNG(12)
	for i := range keys {
		keys[i] = uint64(i)
		weights[i] = []float64{rng.Open01() * 3, rng.Open01() * 5}
		values[i] = 1
	}
	rows := NewMultiRows(keys, weights, values, 13)
	k := 50
	blocks := MultiLayout(rows, k)
	// Every row appears exactly once across blocks.
	seen := make(map[uint64]int)
	for _, b := range blocks {
		if len(b.Rows) > k {
			t.Fatalf("block larger than k: %d", len(b.Rows))
		}
		for _, r := range b.Rows {
			seen[r.Key]++
		}
	}
	if len(seen) != n {
		t.Fatalf("layout lost rows: %d of %d", len(seen), n)
	}
	for key, c := range seen {
		if c != 1 {
			t.Fatalf("row %d appears %d times", key, c)
		}
	}
	// Blocks alternate objectives 0, 1, 0, 1, ...
	for i, b := range blocks {
		if b.Objective != i%2 {
			t.Fatalf("block %d has objective %d", i, b.Objective)
		}
	}
	// Block 0 holds the k smallest priorities for objective 0 overall.
	maxB0 := 0.0
	for _, r := range blocks[0].Rows {
		if r.Priorities[0] > maxB0 {
			maxB0 = r.Priorities[0]
		}
	}
	count := 0
	for _, r := range rows {
		if r.Priorities[0] < maxB0 {
			count++
		}
	}
	if count > k {
		t.Errorf("block 0 is not the bottom-k by objective 0: %d rows below its max", count)
	}
}

func TestMultiLayoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k <= 0 must panic")
		}
	}()
	MultiLayout(nil, 0)
}

func TestMultiLayoutPrefixSampleProperty(t *testing.T) {
	// §3.10: scanning the first m blocks yields, for each objective, a
	// bottom-k style weighted sample of size >= floor(m/c)*k.
	n := 2000
	keys := make([]uint64, n)
	weights := make([][]float64, n)
	values := make([]float64, n)
	rng := stream.NewRNG(14)
	for i := range keys {
		keys[i] = uint64(i)
		weights[i] = []float64{rng.Open01() * 2, rng.Open01() * 2}
		values[i] = 1
	}
	rows := NewMultiRows(keys, weights, values, 15)
	k := 40
	blocks := MultiLayout(rows, k)
	m := 6 // scan 6 blocks => 3 per objective
	var scanned []MultiRow
	for _, b := range blocks[:m] {
		scanned = append(scanned, b.Rows...)
	}
	for obj := 0; obj < 2; obj++ {
		// Threshold: the max priority among the scanned rows of this
		// objective's own blocks is a valid bottom-(m/c · k) threshold.
		want := m / 2 * k
		// Count scanned rows below the objective's implied threshold.
		th := 0.0
		for i, b := range blocks[:m] {
			if b.Objective != obj {
				continue
			}
			_ = i
			for _, r := range b.Rows {
				if r.Priorities[obj] > th {
					th = r.Priorities[obj]
				}
			}
		}
		got := 0
		for _, r := range scanned {
			if r.Priorities[obj] <= th {
				got++
			}
		}
		if got < want {
			t.Errorf("objective %d: scanned sample %d < guaranteed %d", obj, got, want)
		}
	}
}
