package stratified

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func loadedSampler(t testing.TB, budget, k, dims int, seed uint64, items int) *Sampler {
	t.Helper()
	s := NewSampler(budget, k, dims, seed)
	pop := synthPopulation(items, seed^0xabcd)
	feed(s, pop)
	return s
}

func TestStratifiedCodecRoundTripBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    *Sampler
	}{
		{"empty", NewSampler(10, 4, 2, 1)},
		{"underfull", loadedSampler(t, 500, 32, 2, 2, 100)},
		{"budgeted", loadedSampler(t, 120, 32, 2, 3, 20000)},
		{"one-dim", loadedSampler(t, 64, 16, 1, 4, 8000)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, err := tc.s.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var d Sampler
			if err := d.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			again, err := d.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("marshal ∘ unmarshal is not the identity on bytes: %d vs %d", len(data), len(again))
			}
			if d.Len() != tc.s.Len() || d.N() != tc.s.N() || d.MaxThreshold() != tc.s.MaxThreshold() {
				t.Fatal("round trip changed state")
			}
			s1, _ := tc.s.SubsetSum(nil)
			s2, _ := d.SubsetSum(nil)
			if s1 != s2 {
				t.Fatalf("round trip changed the estimate: %v -> %v", s1, s2)
			}
			// A restored sampler must keep ingesting identically.
			extra := synthPopulation(300, 999)
			feed(tc.s, extra)
			feed(&d, extra)
			b1, _ := tc.s.MarshalBinary()
			b2, _ := d.MarshalBinary()
			if !bytes.Equal(b1, b2) {
				t.Fatal("restored sampler diverged from original under identical ingest")
			}
		})
	}
}

func TestStratifiedCodecRejectsCorrupt(t *testing.T) {
	s := loadedSampler(t, 120, 16, 2, 5, 10000)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), data...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":       {},
		"truncated":   data[:len(data)-5],
		"bad magic":   mutate(func(b []byte) { b[0] ^= 0xff }),
		"bad version": mutate(func(b []byte) { b[4] = 42 }),
		"zero budget": mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[5:], 0) }),
		"zero k":      mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[9:], 0) }),
		"zero dims":   mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[13:], 0) }),
		"seed swap (entries out of order)": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[17:], 12345)
		}),
		"trailing garbage": append(append([]byte(nil), data...), 9, 9),
	}
	for name, bad := range cases {
		var d Sampler
		if err := d.UnmarshalBinary(bad); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Errorf("%s: error %v is not ErrCorrupt/ErrVersion", name, err)
		}
	}
}

// TestStratifiedCodecDecodeBomb ensures a crafted header claiming huge
// dimension/strata/item counts cannot force a large allocation.
func TestStratifiedCodecDecodeBomb(t *testing.T) {
	buf := make([]byte, 0, codecHeader)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 1<<31) // budget
	buf = binary.LittleEndian.AppendUint32(buf, 1<<31) // k
	buf = binary.LittleEndian.AppendUint32(buf, 1<<31) // dims
	buf = binary.LittleEndian.AppendUint64(buf, 1)     // seed
	buf = binary.LittleEndian.AppendUint64(buf, 0)     // n
	var d Sampler
	if err := d.UnmarshalBinary(buf); err == nil {
		t.Fatal("decode bomb accepted")
	}
}
