package stratified

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ats/internal/stream"
)

// Serialization format (little-endian):
//
//	magic   uint32  "ATSt"
//	version uint8   1
//	budget  uint32
//	k       uint32
//	dims    uint32
//	seed    uint64
//	n       uint64  arrivals offered
//	per dimension d in 0..dims-1:
//	  nstrata uint32
//	  strata sorted by label ascending, each:
//	    label uint32
//	    cap   uint32  (1..k)
//	    ne    uint32  (1..cap+1)
//	    ne × key uint64   in ascending (priority, key) order
//	nitems uint32  (<= budget)
//	items sorted by key ascending, each:
//	  key uint64, value float64, dims × label uint32
//
// Priorities are derived state — HashU01(key, seed) — and are recomputed
// on decode with exactly the expression Add uses, so nothing but keys is
// stored and a round trip is bit-identical. Marshal walks maps in sorted
// order, so the encoding is canonical: equal logical states serialize to
// equal bytes.

const (
	codecMagic   = 0x41545374 // "ATSt"
	codecVersion = 1

	codecHeader = 4 + 1 + 4 + 4 + 4 + 8 + 8
)

var (
	// ErrCorrupt reports malformed or truncated serialized data.
	ErrCorrupt = errors.New("stratified: corrupt serialized sampler")
	// ErrVersion reports an unsupported serialization version.
	ErrVersion = errors.New("stratified: unsupported serialization version")
)

// MarshalBinary serializes the sampler in canonical form.
func (s *Sampler) MarshalBinary() ([]byte, error) {
	size := codecHeader + 4
	for d := 0; d < s.dims; d++ {
		size += 4
		for _, st := range s.strata[d] {
			size += 12 + len(st.entries)*8
		}
	}
	size += len(s.items) * (8 + 8 + 4*s.dims)
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.budget))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.dims))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.n))
	for d := 0; d < s.dims; d++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.strata[d])))
		for _, l := range sortedLabels(s.strata[d]) {
			st := s.strata[d][l]
			buf = binary.LittleEndian.AppendUint32(buf, l)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(st.cap))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.entries)))
			for _, e := range st.entries {
				buf = binary.LittleEndian.AppendUint64(buf, e.key)
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.items)))
	for _, k := range sortedItemKeys(s.items) {
		it := s.items[k]
		buf = binary.LittleEndian.AppendUint64(buf, it.key)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.value))
		for d := 0; d < s.dims; d++ {
			buf = binary.LittleEndian.AppendUint32(buf, it.labels[d])
		}
	}
	return buf, nil
}

// UnmarshalBinary restores a sampler serialized by MarshalBinary,
// overwriting the receiver. Every section length is validated against the
// actual data before any count-sized allocation (decode-bomb guard), and
// the sampler's structural invariants — caps within k, entry order,
// retained items covered by their thresholds, budget respected — are
// re-checked so a crafted stream cannot materialize an impossible state.
func (s *Sampler) UnmarshalBinary(data []byte) error {
	if len(data) < codecHeader {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != codecMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != codecVersion {
		return fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	budget := int(binary.LittleEndian.Uint32(data[5:]))
	k := int(binary.LittleEndian.Uint32(data[9:]))
	dims := int(binary.LittleEndian.Uint32(data[13:]))
	if budget <= 0 || k <= 0 || dims <= 0 {
		return fmt.Errorf("%w: non-positive budget=%d, k=%d or dims=%d", ErrCorrupt, budget, k, dims)
	}
	seed := binary.LittleEndian.Uint64(data[17:])
	n := int64(binary.LittleEndian.Uint64(data[25:]))
	if n < 0 {
		return fmt.Errorf("%w: negative n", ErrCorrupt)
	}
	off := codecHeader
	need := func(nb int) error {
		if nb < 0 || len(data)-off < nb {
			return fmt.Errorf("%w: truncated body at offset %d", ErrCorrupt, off)
		}
		return nil
	}
	// Dimension count is header input: the per-dimension loop reads at
	// least 4 bytes each, so bound dims by the data length before
	// allocating per-dimension maps.
	if err := need(dims * 4); err != nil {
		return err
	}

	restored := &Sampler{budget: budget, k: k, dims: dims, seed: seed, n: n,
		strata: make([]map[uint32]*stratum, dims),
		items:  make(map[uint64]*retainedItem),
	}
	totalStrata := 0
	for d := 0; d < dims; d++ {
		restored.strata[d] = make(map[uint32]*stratum)
		if err := need(4); err != nil {
			return err
		}
		nstrata := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		totalStrata += nstrata
		lastLabel, first := uint32(0), true
		for i := 0; i < nstrata; i++ {
			if err := need(12); err != nil {
				return err
			}
			label := binary.LittleEndian.Uint32(data[off:])
			cap := int(binary.LittleEndian.Uint32(data[off+4:]))
			ne := int(binary.LittleEndian.Uint32(data[off+8:]))
			off += 12
			if !first && label <= lastLabel {
				return fmt.Errorf("%w: dimension %d labels out of order", ErrCorrupt, d)
			}
			lastLabel, first = label, false
			if cap < 1 || cap > k {
				return fmt.Errorf("%w: stratum (%d,%d) cap %d outside [1,%d]", ErrCorrupt, d, label, cap, k)
			}
			if ne < 1 || ne > cap+1 {
				return fmt.Errorf("%w: stratum (%d,%d) holds %d entries for cap %d", ErrCorrupt, d, label, ne, cap)
			}
			if err := need(ne * 8); err != nil {
				return err
			}
			st := &stratum{cap: cap, entries: make([]stratumEntry, ne)}
			for j := 0; j < ne; j++ {
				key := binary.LittleEndian.Uint64(data[off:])
				off += 8
				e := stratumEntry{pr: stream.HashU01(key, seed), key: key}
				if j > 0 {
					prev := st.entries[j-1]
					if e.pr < prev.pr || (e.pr == prev.pr && e.key <= prev.key) {
						return fmt.Errorf("%w: stratum (%d,%d) entries out of order", ErrCorrupt, d, label)
					}
				}
				st.entries[j] = e
			}
			restored.strata[d][label] = st
		}
	}

	if err := need(4); err != nil {
		return err
	}
	nitems := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	// The live invariant is len(items) <= max(budget, total strata): the
	// greedy decrement keeps at least one item per stratum, so a stream
	// with more strata than budget legitimately retains one item per
	// stratum (every stratum then covers at most one item). Rejecting
	// anything beyond that keeps crafted streams from materializing an
	// impossible state; the section length check below bounds allocation.
	maxItems := budget
	if totalStrata > maxItems {
		maxItems = totalStrata
	}
	if nitems > maxItems {
		return fmt.Errorf("%w: %d retained items for budget %d and %d strata", ErrCorrupt, nitems, budget, totalStrata)
	}
	itemSize := 8 + 8 + 4*dims
	if nb := len(data) - off; nb != nitems*itemSize {
		return fmt.Errorf("%w: item section is %d bytes, want %d items", ErrCorrupt, nb, nitems)
	}
	lastKey, first := uint64(0), true
	for i := 0; i < nitems; i++ {
		key := binary.LittleEndian.Uint64(data[off:])
		value := math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		off += 16
		if !first && key <= lastKey {
			return fmt.Errorf("%w: items out of order", ErrCorrupt)
		}
		lastKey, first = key, false
		if math.IsNaN(value) || math.IsInf(value, 0) {
			return fmt.Errorf("%w: item %d has non-finite value", ErrCorrupt, key)
		}
		labels := make([]uint32, dims)
		for d := 0; d < dims; d++ {
			labels[d] = binary.LittleEndian.Uint32(data[off:])
			off += 4
			if restored.strata[d][labels[d]] == nil {
				return fmt.Errorf("%w: item %d references unknown stratum (%d,%d)", ErrCorrupt, key, d, labels[d])
			}
		}
		pr := stream.HashU01(key, seed)
		if pr >= restored.maxThresholdOf(labels) {
			return fmt.Errorf("%w: item %d lies above its threshold", ErrCorrupt, key)
		}
		restored.items[key] = &retainedItem{key: key, labels: labels, value: value, pr: pr}
	}
	*s = *restored
	return nil
}
