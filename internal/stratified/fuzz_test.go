package stratified

import (
	"bytes"
	"testing"
)

// FuzzStratifiedCodecRoundTrip feeds arbitrary bytes to UnmarshalBinary.
// Decodable inputs must satisfy the sampler's structural invariants and
// re-marshal to the identical bytes (the codec is canonical); everything
// else must be rejected with an error, never a panic or an unbounded
// allocation.
func FuzzStratifiedCodecRoundTrip(f *testing.F) {
	seedCorpus := func(budget, k, dims int, seed uint64, items int) {
		data, err := loadedSampler(f, budget, k, dims, seed, items).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seedCorpus(10, 4, 2, 1, 0)
	seedCorpus(500, 32, 2, 2, 100)
	seedCorpus(120, 32, 2, 3, 20000)
	seedCorpus(64, 16, 1, 4, 8000)
	seedCorpus(90, 8, 3, 5, 5000)
	f.Add([]byte{})
	f.Add([]byte("ATStgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sampler
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		totalStrata := 0
		for d := 0; d < s.dims; d++ {
			totalStrata += len(s.strata[d])
		}
		// len(items) may exceed the budget only up to one item per stratum
		// (the greedy decrement's >=1-per-stratum floor).
		maxItems := s.budget
		if totalStrata > maxItems {
			maxItems = totalStrata
		}
		if s.budget <= 0 || s.k <= 0 || s.dims <= 0 || len(s.items) > maxItems {
			t.Fatalf("decoded invalid sampler: budget=%d k=%d dims=%d strata=%d items=%d",
				s.budget, s.k, s.dims, totalStrata, len(s.items))
		}
		for d := 0; d < s.dims; d++ {
			for l, st := range s.strata[d] {
				if st.cap < 1 || st.cap > s.k || len(st.entries) > st.cap+1 {
					t.Fatalf("stratum (%d,%d): cap=%d entries=%d k=%d", d, l, st.cap, len(st.entries), s.k)
				}
			}
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("codec is not canonical: %d bytes in, %d bytes out", len(data), len(out))
		}
		sum, varEst := s.SubsetSum(nil)
		if sum != sum || varEst < 0 {
			t.Fatalf("degenerate estimates from decoded state: sum=%v var=%v", sum, varEst)
		}
	})
}
