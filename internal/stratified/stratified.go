// Package stratified implements the multi-stratified sampler of §3.7: a
// single sample that is simultaneously a stratified sample along several
// attributes (e.g. by country AND by age) and fits a total item budget B.
//
// Each stratum of each attribute keeps a bottom-k threshold; an item's
// threshold is the MAX over the thresholds of the strata it belongs to
// (Theorem 9: a max of substitutable thresholds is 1-substitutable, and
// since the combined rule is constant given the strata, Theorem 6 lifts it
// to full substitutability). To hit the budget exactly, the per-stratum
// counts are decremented greedily: repeatedly pick the stratum with the
// most items below its threshold and lower its threshold to the next
// smaller priority, until at most B items survive.
package stratified

import (
	"math"
	"sort"

	"ats/internal/estimator"
	"ats/internal/stream"
)

// Item is a record with one stratum label per attribute dimension.
type Item struct {
	Key uint64
	// Strata[d] is the item's stratum in dimension d (e.g. Strata[0] =
	// country, Strata[1] = age bucket).
	Strata []int
	Value  float64
}

// sampledItem is an item with its realized priority.
type sampledItem struct {
	Item
	priority float64
}

// Design holds the fitted thresholds after Fit: one threshold per stratum
// per dimension plus the final sample.
type Design struct {
	// Thresholds[d][s] is the bottom-k threshold for stratum s of
	// dimension d.
	Thresholds []map[int]float64
	// Sample holds the selected items with their per-item threshold (max
	// over their strata) and priority.
	Sample []SampledItem
}

// SampledItem is one selected item with its inclusion information.
type SampledItem struct {
	Item
	Priority float64
	// Threshold is the per-item threshold max_d Thresholds[d][strata[d]].
	Threshold float64
}

// Fit draws a multi-stratified sample of at most budget items from the
// population. Initially every stratum uses a bottom-k0 threshold with k0
// chosen generously; thresholds are then decremented per §3.7 until the
// combined sample fits the budget. The seed coordinates priorities.
func Fit(items []Item, dims int, budget int, seed uint64) Design {
	if budget <= 0 {
		panic("stratified: budget must be positive")
	}
	pop := make([]sampledItem, len(items))
	for i, it := range items {
		if len(it.Strata) != dims {
			panic("stratified: item with wrong number of strata")
		}
		pop[i] = sampledItem{Item: it, priority: stream.HashU01(it.Key, seed)}
	}

	// Group (priority, item index) pairs per stratum, sorted ascending by
	// priority.
	type rankedItem struct {
		pr  float64
		idx int
	}
	perStratum := make([]map[int][]rankedItem, dims)
	for d := 0; d < dims; d++ {
		perStratum[d] = make(map[int][]rankedItem)
	}
	for i, it := range pop {
		for d := 0; d < dims; d++ {
			s := it.Strata[d]
			perStratum[d][s] = append(perStratum[d][s], rankedItem{it.priority, i})
		}
	}
	for d := 0; d < dims; d++ {
		for s := range perStratum[d] {
			ps := perStratum[d][s]
			sort.Slice(ps, func(i, j int) bool { return ps[i].pr < ps[j].pr })
		}
	}

	// counts[d][s] = number of items currently below stratum (d, s)'s
	// threshold; the threshold is the (counts+1)-th smallest priority in
	// the stratum (or +inf when the whole stratum is kept).
	counts := make([]map[int]int, dims)
	for d := 0; d < dims; d++ {
		counts[d] = make(map[int]int)
		for s, ps := range perStratum[d] {
			counts[d][s] = len(ps)
		}
	}
	thresholdOf := func(d, s int) float64 {
		ps := perStratum[d][s]
		c := counts[d][s]
		if c >= len(ps) {
			return math.Inf(1)
		}
		return ps[c].pr
	}

	// cover[i] = number of dimensions whose stratum threshold currently
	// covers item i; the item is in the sample iff cover[i] > 0. Initially
	// every stratum keeps everything, so cover[i] = dims.
	cover := make([]int, len(pop))
	for i := range cover {
		cover[i] = dims
	}
	size := len(pop)

	// Greedy decrement until the budget is met: each step lowers the
	// threshold of the stratum with the most covered items by one rank,
	// which removes coverage from exactly one item (the one whose priority
	// was just below the old threshold). Each stratum keeps at least one
	// item so every stratum stays represented.
	for size > budget {
		bd, bs, best := -1, 0, 1
		for d := 0; d < dims; d++ {
			for s := range perStratum[d] {
				if c := counts[d][s]; c > best {
					bd, bs, best = d, s, c
				}
			}
		}
		if bd < 0 {
			break // every stratum is at its minimum; budget unreachable
		}
		c := counts[bd][bs]
		dropped := perStratum[bd][bs][c-1].idx
		counts[bd][bs] = c - 1
		cover[dropped]--
		if cover[dropped] == 0 {
			size--
		}
	}

	des := Design{Thresholds: make([]map[int]float64, dims)}
	for d := 0; d < dims; d++ {
		des.Thresholds[d] = make(map[int]float64)
		for s := range perStratum[d] {
			des.Thresholds[d][s] = thresholdOf(d, s)
		}
	}
	for _, it := range pop {
		t := 0.0
		for d := 0; d < dims; d++ {
			if th := des.Thresholds[d][it.Strata[d]]; th > t {
				t = th
			}
		}
		if it.priority < t {
			des.Sample = append(des.Sample, SampledItem{Item: it.Item, Priority: it.priority, Threshold: t})
		}
	}
	return des
}

// SubsetSum returns the HT estimate (and unbiased variance estimate) of
// Σ Value over population items matching pred, using the fitted per-item
// thresholds. Priorities are Uniform(0,1), so the pseudo-inclusion
// probability of an item is min(1, its threshold).
func (d Design) SubsetSum(pred func(Item) bool) (sum, varianceEstimate float64) {
	sampled := make([]estimator.Sampled, 0, len(d.Sample))
	for _, it := range d.Sample {
		if pred != nil && !pred(it.Item) {
			continue
		}
		p := it.Threshold
		if math.IsInf(p, 1) || p > 1 {
			p = 1
		}
		sampled = append(sampled, estimator.Sampled{Value: it.Value, P: p})
	}
	return estimator.SubsetSum(sampled), estimator.HTVarianceEstimate(sampled)
}

// StratumCounts returns, for the given dimension, the number of sampled
// items per stratum.
func (d Design) StratumCounts(dim int) map[int]int {
	out := make(map[int]int)
	for _, it := range d.Sample {
		out[it.Strata[dim]]++
	}
	return out
}

// Verify checks the defining property of the design on the original
// population: an item is in the sample iff its priority is below the max of
// its strata thresholds. It is used by tests; a correctly constructed
// design always verifies.
func (d Design) Verify(items []Item, seed uint64) bool {
	inSample := make(map[uint64]struct{}, len(d.Sample))
	for _, it := range d.Sample {
		inSample[it.Key] = struct{}{}
	}
	for _, it := range items {
		pr := stream.HashU01(it.Key, seed)
		t := 0.0
		for dim := 0; dim < len(d.Thresholds); dim++ {
			if th := d.Thresholds[dim][it.Strata[dim]]; th > t {
				t = th
			}
		}
		_, in := inSample[it.Key]
		if in != (pr < t) {
			return false
		}
	}
	return true
}
