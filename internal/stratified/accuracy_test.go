package stratified

import (
	"math"
	"testing"

	"ats/internal/stream"
)

// TestStratifiedSubsetSumAccuracy is the statistical-accuracy harness
// for budgeted multi-stratified sampling: seeded synthetic streams with
// Zipf-skewed and uniform stratum sizes, streaming estimates compared
// against exactly computed totals, asserting relative error bounds on
// the overall subset sum and on every large stratum of every dimension.
// Efraimidis-Spirakis-style hash priorities make the HT estimator
// exactly unbiased, so the bounds only absorb sampling variance.
func TestStratifiedSubsetSumAccuracy(t *testing.T) {
	type tc struct {
		name      string
		budget, k int
		dims      int
		seed      uint64
		items     int
		zipfS     float64 // 0 = uniform stratum skew
		strata0   int     // label count of dimension 0
		totalRel  float64 // bound on the overall sum's relative error
		heavyRel  float64 // bound per stratum holding >= 10% of the mass
	}
	cases := []tc{
		{"zipf-2d", 400, 64, 2, 211, 60000, 1.3, 12, 0.10, 0.30},
		{"zipf-steep-2d", 700, 64, 2, 223, 60000, 1.7, 12, 0.10, 0.30},
		{"uniform-2d", 400, 64, 2, 227, 60000, 0, 8, 0.10, 0.30},
		{"zipf-3d", 600, 64, 3, 229, 80000, 1.4, 10, 0.10, 0.35},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewSampler(c.budget, c.k, c.dims, c.seed)
			var z *stream.Zipf
			if c.zipfS > 0 {
				z = stream.NewZipf(c.strata0, c.zipfS, c.seed+1)
			}
			rng := stream.NewRNG(c.seed + 2)

			exactTotal := 0.0
			exactByStratum := make([]map[uint32]float64, c.dims)
			for d := range exactByStratum {
				exactByStratum[d] = make(map[uint32]float64)
			}
			for i := 0; i < c.items; i++ {
				labels := make([]uint32, c.dims)
				if z != nil {
					labels[0] = uint32(z.Next())
				} else {
					labels[0] = uint32(rng.Intn(c.strata0))
				}
				for d := 1; d < c.dims; d++ {
					labels[d] = uint32(rng.Intn(5))
				}
				v := 1 + 9*rng.Float64()
				key := uint64(i)*0x9e3779b97f4a7c15 + 1
				s.Add(key, labels, v)
				exactTotal += v
				for d := 0; d < c.dims; d++ {
					exactByStratum[d][labels[d]] += v
				}
			}

			if s.Len() > c.budget {
				t.Fatalf("sample size %d exceeds budget %d", s.Len(), c.budget)
			}
			sum, varEst := s.SubsetSum(nil)
			if rel := math.Abs(sum-exactTotal) / exactTotal; rel > c.totalRel {
				t.Errorf("total: estimate %.1f vs exact %.1f (rel %.3f > %.3f)",
					sum, exactTotal, rel, c.totalRel)
			}
			if varEst < 0 {
				t.Errorf("negative variance estimate %v", varEst)
			}

			// Per-stratum estimates on every dimension: strata carrying at
			// least 10% of the total mass must meet the relative bound.
			for d := 0; d < c.dims; d++ {
				stats := s.StratumStats(d)
				got := make(map[uint32]float64, len(stats))
				for _, st := range stats {
					got[st.Label] = st.SumEstimate
				}
				for l, exact := range exactByStratum[d] {
					if exact < 0.1*exactTotal {
						continue
					}
					est := got[l]
					if rel := math.Abs(est-exact) / exact; rel > c.heavyRel {
						t.Errorf("dim %d stratum %d: estimate %.1f vs exact %.1f (rel %.3f > %.3f)",
							d, l, est, exact, rel, c.heavyRel)
					}
				}
			}
		})
	}
}

// TestStreamingTracksBatchFit cross-checks the streaming sampler against
// the batch Fit reference on the same population: both must satisfy the
// defining membership property, respect the budget, and produce subset
// sums within sampling error of each other.
func TestStreamingTracksBatchFit(t *testing.T) {
	const n, budget = 15000, 250
	pop := make([]Item, n)
	sp := NewSampler(budget, 64, 2, 31)
	z := stream.NewZipf(10, 1.4, 32)
	rng := stream.NewRNG(33)
	exact := 0.0
	for i := range pop {
		labels := []uint32{uint32(z.Next()), uint32(rng.Intn(4))}
		v := 1 + rng.Float64()
		key := uint64(i)*2862933555777941757 + 3037000493
		pop[i] = Item{Key: key, Strata: []int{int(labels[0]), int(labels[1])}, Value: v}
		sp.Add(key, labels, v)
		exact += v
	}
	des := Fit(pop, 2, budget, 31)
	if !des.Verify(pop, 31) {
		t.Fatal("batch reference design does not verify")
	}
	batchSum, _ := des.SubsetSum(nil)
	streamSum, _ := sp.SubsetSum(nil)
	for name, est := range map[string]float64{"batch": batchSum, "streaming": streamSum} {
		if rel := math.Abs(est-exact) / exact; rel > 0.15 {
			t.Errorf("%s estimate %.1f vs exact %.1f (rel %.3f)", name, est, exact, rel)
		}
	}
	if len(des.Sample) > budget || sp.Len() > budget {
		t.Errorf("budget violated: batch %d, streaming %d, budget %d", len(des.Sample), sp.Len(), budget)
	}
}
