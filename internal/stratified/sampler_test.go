package stratified

import (
	"math"
	"testing"

	"ats/internal/stream"
)

// popItem is one synthetic population record used across the sampler
// tests.
type popItem struct {
	key    uint64
	labels []uint32
	value  float64
}

// synthPopulation builds n distinct-keyed items over a country×age-style
// two-dimensional stratification with Zipf-skewed stratum sizes.
func synthPopulation(n int, seed uint64) []popItem {
	zc := stream.NewZipf(12, 1.3, seed)
	rng := stream.NewRNG(seed + 1)
	out := make([]popItem, n)
	for i := range out {
		out[i] = popItem{
			key:    uint64(i)*0x9e3779b97f4a7c15 + 1,
			labels: []uint32{uint32(zc.Next()), uint32(rng.Intn(5))},
			value:  1 + 9*rng.Float64(),
		}
	}
	return out
}

func feed(s *Sampler, pop []popItem) {
	for _, it := range pop {
		s.Add(it.key, it.labels, it.value)
	}
}

func TestNewSamplerValidation(t *testing.T) {
	for _, c := range []struct{ b, k, d int }{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, -1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSampler(%d,%d,%d) must panic", c.b, c.k, c.d)
				}
			}()
			NewSampler(c.b, c.k, c.d, 1)
		}()
	}
}

// TestDefiningProperty checks the §3.7 membership rule in the stream
// setting: after any prefix, an item is retained iff its priority lies
// below the max of its strata thresholds (thresholds only ever fall, so
// the streaming sampler realizes the same defining property as the batch
// Fit).
func TestDefiningProperty(t *testing.T) {
	pop := synthPopulation(5000, 21)
	s := NewSampler(200, 32, 2, 42)
	feed(s, pop)

	inSample := make(map[uint64]struct{})
	for _, r := range s.Sample() {
		if r.Priority >= r.Threshold {
			t.Fatalf("retained item %d has priority %v >= threshold %v", r.Key, r.Priority, r.Threshold)
		}
		inSample[r.Key] = struct{}{}
	}
	for _, it := range pop {
		pr := stream.HashU01(it.key, 42)
		covered := pr < s.maxThresholdOf(s.normalize(it.labels))
		_, in := inSample[it.key]
		if covered != in {
			t.Fatalf("item %d: covered=%v but in-sample=%v", it.key, covered, in)
		}
	}
}

func TestBudgetAndRepresentation(t *testing.T) {
	pop := synthPopulation(20000, 33)
	s := NewSampler(150, 64, 2, 7)
	feed(s, pop)
	if s.Len() > s.Budget() {
		t.Fatalf("retained %d items over budget %d", s.Len(), s.Budget())
	}
	if s.N() != 20000 {
		t.Fatalf("N = %d", s.N())
	}
	// Every observed stratum of every dimension keeps at least one item:
	// the greedy decrement never lowers a kept-count below one.
	for dim := 0; dim < 2; dim++ {
		seen := make(map[uint32]bool)
		for _, it := range pop {
			seen[it.labels[dim]] = true
		}
		got := make(map[uint32]bool)
		for _, r := range s.Sample() {
			got[r.Labels[dim]] = true
		}
		for l := range seen {
			if !got[l] {
				t.Errorf("dimension %d stratum %d lost representation", dim, l)
			}
		}
	}
}

func TestDuplicateKeyOverwrites(t *testing.T) {
	s := NewSampler(10, 4, 1, 5)
	s.Add(1, []uint32{0}, 3)
	s.Add(1, []uint32{0}, 8)
	if s.Len() != 1 {
		t.Fatalf("duplicate key retained twice: %d items", s.Len())
	}
	sum, _ := s.SubsetSum(nil)
	if sum != 8 {
		t.Fatalf("re-arrival did not overwrite the value: sum %v", sum)
	}
}

// TestRelabeledReArrivalKeepsStateSerializable is the regression for a
// bug where re-offering a retained key with DIFFERENT labels adopted the
// new labels without registering the new strata, producing a state whose
// own codec rejected it (the daemon could write a snapshot that no boot
// could restore). Labels are now fixed at first arrival.
func TestRelabeledReArrivalKeepsStateSerializable(t *testing.T) {
	s := NewSampler(10, 4, 2, 5)
	s.Add(1, []uint32{0, 0}, 1)
	s.Add(1, []uint32{5, 9}, 2) // relabel attempt: value updates, labels stay
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sampler
	if err := d.UnmarshalBinary(data); err != nil {
		t.Fatalf("state written by the sampler is not restorable: %v", err)
	}
	r := d.Sample()
	if len(r) != 1 || r[0].Labels[0] != 0 || r[0].Labels[1] != 0 {
		t.Fatalf("labels not fixed at first arrival: %+v", r)
	}
	if sum, _ := d.SubsetSum(nil); sum != 2 {
		t.Fatalf("value not refreshed: sum %v", sum)
	}
}

// TestStratumFloorOverflowStaysSerializable is the regression for a bug
// where a stream with more strata than budget — every stratum keeps at
// least one item, so the sample legitimately overflows the budget — was
// serialized into bytes the decoder itself rejected (nitems > budget),
// leaving the daemon with snapshots no boot could restore.
func TestStratumFloorOverflowStaysSerializable(t *testing.T) {
	s := NewSampler(4, 2, 1, 11)
	for i := uint64(0); i < 10; i++ {
		s.Add(i*0x9e3779b97f4a7c15+1, []uint32{uint32(i)}, 1)
	}
	if s.Len() <= s.Budget() {
		t.Fatalf("test premise broken: %d items should exceed budget %d via the stratum floor",
			s.Len(), s.Budget())
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sampler
	if err := d.UnmarshalBinary(data); err != nil {
		t.Fatalf("state written by the sampler is not restorable: %v", err)
	}
	if d.Len() != s.Len() {
		t.Fatalf("round trip changed the sample: %d -> %d items", s.Len(), d.Len())
	}
}

// TestExactReflectsAnySubsampling is the regression for a bug where a
// single still-open stratum made the serving layer claim exact:true
// (MaxThreshold is a max over strata) even after items had been dropped.
func TestExactReflectsAnySubsampling(t *testing.T) {
	s := NewSampler(4, 2, 1, 7)
	if !s.Exact() {
		t.Fatal("empty sampler must be exact")
	}
	for i := 0; i < 50; i++ {
		s.Add(uint64(i)*0x9e3779b97f4a7c15+1, []uint32{0}, 1)
	}
	if s.Exact() {
		t.Fatal("subsampled stratum must clear Exact")
	}
	// A brand-new open stratum must NOT restore exactness, even though
	// it drives MaxThreshold back to +inf.
	s.Add(999, []uint32{9}, 1)
	if !math.IsInf(s.MaxThreshold(), 1) {
		t.Fatal("test premise broken: new stratum should open the max threshold")
	}
	if s.Exact() {
		t.Fatal("Exact claimed while another stratum is subsampling")
	}
}

func TestLabelNormalization(t *testing.T) {
	s := NewSampler(10, 4, 3, 5)
	s.Add(1, []uint32{2}, 1)             // short: pads dims 1,2 with 0
	s.Add(2, []uint32{1, 1, 1, 9, 9}, 1) // long: extras dropped
	for _, r := range s.Sample() {
		if len(r.Labels) != 3 {
			t.Fatalf("labels not normalized to dims: %v", r.Labels)
		}
	}
}

func TestMergeMatchesDefiningProperty(t *testing.T) {
	pop := synthPopulation(12000, 55)
	a := NewSampler(180, 32, 2, 9)
	b := NewSampler(180, 32, 2, 9)
	for i, it := range pop {
		if i%2 == 0 {
			a.Add(it.key, it.labels, it.value)
		} else {
			b.Add(it.key, it.labels, it.value)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() > a.Budget() {
		t.Fatalf("merged sample %d over budget %d", a.Len(), a.Budget())
	}
	if a.N() != 12000 {
		t.Fatalf("merged N = %d", a.N())
	}
	// The merged state must satisfy the defining property over the union
	// population.
	inSample := make(map[uint64]struct{})
	for _, r := range a.Sample() {
		inSample[r.Key] = struct{}{}
	}
	for _, it := range pop {
		pr := stream.HashU01(it.key, 9)
		covered := pr < a.maxThresholdOf(a.normalize(it.labels))
		if _, in := inSample[it.key]; covered != in {
			t.Fatalf("merged: item %d covered=%v in-sample=%v", it.key, covered, in)
		}
	}
	// And its overall estimate must still track the exact sum.
	exact := 0.0
	for _, it := range pop {
		exact += it.value
	}
	sum, _ := a.SubsetSum(nil)
	if rel := math.Abs(sum-exact) / exact; rel > 0.25 {
		t.Errorf("merged subset sum %v vs exact %v (rel %v)", sum, exact, rel)
	}
}

func TestMergeGuards(t *testing.T) {
	s := NewSampler(10, 4, 2, 1)
	if err := s.Merge(s); err == nil {
		t.Error("self-merge must be rejected")
	}
	for _, o := range []*Sampler{
		NewSampler(11, 4, 2, 1), NewSampler(10, 5, 2, 1),
		NewSampler(10, 4, 3, 1), NewSampler(10, 4, 2, 2),
	} {
		if err := s.Merge(o); err == nil {
			t.Errorf("incompatible merge (%d,%d,%d,%d) accepted", o.budget, o.k, o.dims, o.seed)
		}
	}
	if s.Len() != 0 || s.N() != 0 {
		t.Error("rejected merge mutated the sampler")
	}
}

func TestStratumStats(t *testing.T) {
	pop := synthPopulation(8000, 77)
	s := NewSampler(400, 64, 2, 13)
	feed(s, pop)
	for dim := 0; dim < 2; dim++ {
		stats := s.StratumStats(dim)
		if len(stats) == 0 {
			t.Fatalf("dim %d: no stratum stats", dim)
		}
		totalFromStrata := 0.0
		for i, st := range stats {
			if i > 0 && stats[i-1].Label >= st.Label {
				t.Fatalf("dim %d: stats out of label order", dim)
			}
			if st.Sampled <= 0 || st.SumEstimate < 0 || st.CountEstimate < 0 {
				t.Fatalf("dim %d stratum %d: degenerate stats %+v", dim, st.Label, st)
			}
			totalFromStrata += st.SumEstimate
		}
		sum, _ := s.SubsetSum(nil)
		if math.Abs(totalFromStrata-sum) > 1e-6*math.Abs(sum) {
			t.Errorf("dim %d: stratum sums %v do not add up to the total %v", dim, totalFromStrata, sum)
		}
	}
	if got := s.StratumStats(-1); got != nil {
		t.Error("negative dim must return nil")
	}
	if got := s.StratumStats(2); got != nil {
		t.Error("out-of-range dim must return nil")
	}
}
