package stratified

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ats/internal/estimator"
	"ats/internal/stream"
)

// Sampler is the streaming form of the §3.7 multi-stratified design: a
// single bounded sample that is simultaneously stratified along several
// attribute dimensions. Each stratum of each dimension maintains a
// bottom-k threshold over the priorities of its members; an item's
// threshold is the MAX over the thresholds of the strata it belongs to
// (Theorem 9 keeps the max 1-substitutable, so Horvitz-Thompson subset
// sums stay unbiased), and the item is retained while its priority lies
// below that max. When the retained set exceeds the budget, per-stratum
// kept-counts are decremented greedily — always the stratum currently
// covering the most items, exactly the batch Fit rule — which only ever
// lowers thresholds, preserving substitutability in the stream setting.
//
// Priorities are hash-derived from keys (coordinated by the seed), so
// samplers sharing a configuration merge deterministically, and the
// sampler deduplicates by key: re-offering a retained key overwrites its
// value (labels are fixed at the key's first arrival).
type Sampler struct {
	budget int
	k      int
	dims   int
	seed   uint64
	n      int64

	// strata[d] maps a stratum label of dimension d to its state.
	strata []map[uint32]*stratum
	// items holds the retained sample, keyed by item key.
	items map[uint64]*retainedItem
}

// stratum is the per-(dimension, label) bottom-k threshold state.
type stratum struct {
	// entries holds the smallest-priority distinct keys seen in the
	// stratum, ascending by priority, truncated to cap+1: the first
	// min(cap, len) entries are covered, entry[cap] (when present) is the
	// threshold witness.
	entries []stratumEntry
	// cap is the kept-count ceiling: k at creation, lowered (never
	// raised) by the budget decrement.
	cap int
}

type stratumEntry struct {
	pr  float64
	key uint64
}

// retainedItem is one sampled item.
type retainedItem struct {
	key    uint64
	labels []uint32
	value  float64
	pr     float64
}

// covered returns the number of covered entries.
func (s *stratum) covered() int {
	if len(s.entries) < s.cap {
		return len(s.entries)
	}
	return s.cap
}

// threshold returns the stratum's bottom-k threshold: the (cap+1)-th
// smallest priority, or +inf while the stratum retains every member.
func (s *stratum) threshold() float64 {
	if len(s.entries) <= s.cap {
		return math.Inf(1)
	}
	return s.entries[s.cap].pr
}

// insert offers (pr, key) to the stratum's bottom list. It returns the
// key that fell out of the covered prefix as a result, if any.
func (s *stratum) insert(pr float64, key uint64) (evicted uint64, hasEvicted bool) {
	i := sort.Search(len(s.entries), func(i int) bool {
		e := s.entries[i]
		return e.pr > pr || (e.pr == pr && e.key >= key)
	})
	if i < len(s.entries) && s.entries[i].pr == pr && s.entries[i].key == key {
		return 0, false // duplicate arrival of a tracked key
	}
	if i > s.cap {
		return 0, false // beyond the (cap+1)-th smallest; irrelevant
	}
	cOld := s.covered()
	s.entries = append(s.entries, stratumEntry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = stratumEntry{pr: pr, key: key}
	if len(s.entries) > s.cap+1 {
		s.entries = s.entries[:s.cap+1]
	}
	if cNew := s.covered(); cNew == cOld && i < cOld {
		// The covered prefix did not grow, so the entry formerly at its
		// edge (now at index cNew) lost coverage from this stratum.
		return s.entries[cNew].key, true
	}
	return 0, false
}

// NewSampler returns a streaming multi-stratified sampler over dims
// attribute dimensions, retaining at most budget items, with per-stratum
// bottom-k parameter k. Samplers sharing (budget, k, dims, seed) are
// mergeable.
func NewSampler(budget, k, dims int, seed uint64) *Sampler {
	if budget <= 0 || k <= 0 || dims <= 0 {
		panic("stratified: budget, k and dims must be positive")
	}
	s := &Sampler{budget: budget, k: k, dims: dims, seed: seed,
		strata: make([]map[uint32]*stratum, dims),
		items:  make(map[uint64]*retainedItem),
	}
	for d := range s.strata {
		s.strata[d] = make(map[uint32]*stratum)
	}
	return s
}

// Budget returns the retained-item budget B.
func (s *Sampler) Budget() int { return s.budget }

// K returns the per-stratum bottom-k parameter.
func (s *Sampler) K() int { return s.k }

// Dims returns the number of stratification dimensions.
func (s *Sampler) Dims() int { return s.dims }

// Seed returns the coordination seed.
func (s *Sampler) Seed() uint64 { return s.seed }

// Len returns the number of retained items.
func (s *Sampler) Len() int { return len(s.items) }

// N returns the number of arrivals offered.
func (s *Sampler) N() int64 { return s.n }

// normalize pads missing labels with 0 and drops extras, so callers with
// fewer attributes than the sampler's dimensionality land in stratum 0 of
// the remaining dimensions.
func (s *Sampler) normalize(labels []uint32) []uint32 {
	out := make([]uint32, s.dims)
	copy(out, labels)
	return out
}

// Add offers an item with per-dimension stratum labels and an aggregable
// value. Labels beyond the sampler's dimensionality are ignored; missing
// ones default to 0.
func (s *Sampler) Add(key uint64, labels []uint32, value float64) {
	s.n++
	// Short-circuit retained re-arrivals before normalize's allocation:
	// duplicate-heavy streams then ingest without touching the heap.
	if it, ok := s.items[key]; ok {
		it.value = value
		return
	}
	s.addHashed(key, stream.HashU01(key, s.seed), s.normalize(labels), value)
}

// addHashed is the shared ingest path of Add and Merge: labels must
// already be normalized and pr must be the item's coordinated priority.
func (s *Sampler) addHashed(key uint64, pr float64, labels []uint32, value float64) {
	if it, ok := s.items[key]; ok {
		// Re-arrival of a retained key: refresh the value only. Labels
		// are fixed at first arrival — adopting new labels here would
		// leave the item pointing at strata it was never registered in,
		// corrupting coverage accounting (and the serialized form).
		it.value = value
		return
	}
	// Offer the priority to every dimension's stratum, collecting items
	// that fell off a covered prefix for a global recheck.
	var rechecks []uint64
	for d := 0; d < s.dims; d++ {
		st := s.strata[d][labels[d]]
		if st == nil {
			st = &stratum{cap: s.k}
			s.strata[d][labels[d]] = st
		}
		if evicted, ok := st.insert(pr, key); ok && evicted != key {
			rechecks = append(rechecks, evicted)
		}
	}
	for _, k := range rechecks {
		s.recheck(k)
	}
	if pr < s.maxThresholdOf(labels) {
		s.items[key] = &retainedItem{key: key, labels: labels, value: value, pr: pr}
		s.enforceBudget()
	}
}

// maxThresholdOf returns the per-item threshold: the max over the
// thresholds of the item's strata (missing strata count as +inf — an
// unseen stratum keeps everything).
func (s *Sampler) maxThresholdOf(labels []uint32) float64 {
	t := 0.0
	for d := 0; d < s.dims; d++ {
		st := s.strata[d][labels[d]]
		if st == nil {
			return math.Inf(1)
		}
		if th := st.threshold(); th > t {
			t = th
			if math.IsInf(t, 1) {
				return t
			}
		}
	}
	return t
}

// recheck drops the keyed item from the sample if its priority no longer
// lies below its max-threshold.
func (s *Sampler) recheck(key uint64) {
	it, ok := s.items[key]
	if !ok {
		return
	}
	if it.pr >= s.maxThresholdOf(it.labels) {
		delete(s.items, key)
	}
}

// enforceBudget runs the §3.7 greedy decrement until at most budget items
// remain: repeatedly lower the kept-count of the stratum covering the
// most items (every stratum keeps at least one). Ties break on the
// smallest dimension, then the smallest label, so the walk is
// deterministic.
func (s *Sampler) enforceBudget() {
	for len(s.items) > s.budget {
		// Plain map walk with a (covered desc, dim asc, label asc) tuple
		// comparison: deterministic without sortedLabels' per-iteration
		// allocation and sort — this loop runs on nearly every retained
		// Add once the sample sits at budget.
		bd, bl, best := -1, uint32(0), 1
		for d := 0; d < s.dims; d++ {
			for l, st := range s.strata[d] {
				c := st.covered()
				if c > best || (c == best && d == bd && l < bl) {
					bd, bl, best = d, l, c
				}
			}
		}
		if bd < 0 {
			return // every stratum is at its floor; budget unreachable
		}
		st := s.strata[bd][bl]
		c := st.covered()
		dropped := st.entries[c-1].key
		st.cap = c - 1
		if len(st.entries) > st.cap+1 {
			st.entries = st.entries[:st.cap+1]
		}
		s.recheck(dropped)
	}
}

func sortedLabels(m map[uint32]*stratum) []uint32 {
	out := make([]uint32, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Exact reports whether the sample is still lossless: every stratum of
// every dimension retains all of its members (+inf threshold), so no
// item has ever been dropped and every estimate is exact. Note the
// asymmetry with MaxThreshold: a single open stratum makes MaxThreshold
// +inf while other strata may already be subsampling.
func (s *Sampler) Exact() bool {
	for d := 0; d < s.dims; d++ {
		for _, st := range s.strata[d] {
			if !math.IsInf(st.threshold(), 1) {
				return false
			}
		}
	}
	return true
}

// MaxThreshold returns the largest per-stratum threshold across all
// dimensions (+inf while any stratum still retains every member, or
// before any arrival).
func (s *Sampler) MaxThreshold() float64 {
	if s.n == 0 {
		return math.Inf(1)
	}
	t := 0.0
	for d := 0; d < s.dims; d++ {
		for _, st := range s.strata[d] {
			if th := st.threshold(); th > t {
				t = th
				if math.IsInf(t, 1) {
					return t
				}
			}
		}
	}
	return t
}

// Retained is one retained item with its inclusion information.
type Retained struct {
	Key uint64
	// Labels[d] is the item's stratum label in dimension d.
	Labels []uint32
	Value  float64
	// Priority is the item's coordinated hash priority.
	Priority float64
	// Threshold is the per-item threshold max_d T[d][Labels[d]].
	Threshold float64
	// P is the pseudo-inclusion probability min(1, Threshold).
	P float64
}

// Sample returns the retained items in ascending key order with their
// pseudo-inclusion probabilities.
func (s *Sampler) Sample() []Retained {
	keys := make([]uint64, 0, len(s.items))
	for k := range s.items {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Retained, 0, len(keys))
	for _, k := range keys {
		it := s.items[k]
		t := s.maxThresholdOf(it.labels)
		p := t
		if math.IsInf(p, 1) || p > 1 {
			p = 1
		}
		out = append(out, Retained{Key: it.key, Labels: append([]uint32(nil), it.labels...),
			Value: it.value, Priority: it.pr, Threshold: t, P: p})
	}
	return out
}

// SubsetSum returns the Horvitz-Thompson estimate (and unbiased variance
// estimate) of Σ value over population items matching pred (nil for all).
func (s *Sampler) SubsetSum(pred func(key uint64, labels []uint32) bool) (sum, varianceEstimate float64) {
	sampled := make([]estimator.Sampled, 0, len(s.items))
	// Walk in key order: float accumulation depends on summation order,
	// and estimates must be bit-stable across serialization round trips.
	for _, k := range sortedItemKeys(s.items) {
		it := s.items[k]
		if pred != nil && !pred(it.key, it.labels) {
			continue
		}
		t := s.maxThresholdOf(it.labels)
		if math.IsInf(t, 1) || t > 1 {
			t = 1
		}
		sampled = append(sampled, estimator.Sampled{Value: it.value, P: t})
	}
	return estimator.SubsetSum(sampled), estimator.HTVarianceEstimate(sampled)
}

// StratumStat is the per-stratum slice of a stratified estimate.
type StratumStat struct {
	Label uint32
	// Sampled is the number of retained items in the stratum.
	Sampled int
	// SumEstimate is the HT estimate of Σ value over the stratum.
	SumEstimate float64
	// CountEstimate is the HT estimate of the stratum's population size.
	CountEstimate float64
	// VarianceEstimate is the unbiased variance estimate of SumEstimate.
	VarianceEstimate float64
}

// StratumStats returns per-stratum HT estimates for one dimension,
// sorted by label. Only strata with retained items appear.
func (s *Sampler) StratumStats(dim int) []StratumStat {
	if dim < 0 || dim >= s.dims {
		return nil
	}
	byLabel := make(map[uint32][]estimator.Sampled)
	for _, k := range sortedItemKeys(s.items) {
		it := s.items[k]
		t := s.maxThresholdOf(it.labels)
		if math.IsInf(t, 1) || t > 1 {
			t = 1
		}
		l := it.labels[dim]
		byLabel[l] = append(byLabel[l], estimator.Sampled{Value: it.value, P: t})
	}
	labels := make([]uint32, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	out := make([]StratumStat, 0, len(labels))
	for _, l := range labels {
		sm := byLabel[l]
		st := StratumStat{Label: l, Sampled: len(sm),
			SumEstimate:      estimator.SubsetSum(sm),
			VarianceEstimate: estimator.HTVarianceEstimate(sm)}
		st.CountEstimate = estimator.SubsetCount(sm)
		out = append(out, st)
	}
	return out
}

// Merge folds another sampler into s. Both samplers must share budget, k,
// dims and seed; merging a sampler into itself is rejected. The other
// sampler is not modified. Per-stratum states merge under the bottom-k
// union rule with the kept-count cap taken as the minimum of the two
// sides (thresholds only ever fall), the retained sets are re-filtered
// under the merged thresholds, and the budget is re-enforced; everything
// walks in canonical sorted order, so merging equal logical states always
// produces identical results.
func (s *Sampler) Merge(o *Sampler) error {
	if s == o {
		return errors.New("stratified: cannot merge a sampler into itself")
	}
	if s.budget != o.budget || s.k != o.k || s.dims != o.dims || s.seed != o.seed {
		return fmt.Errorf("stratified: incompatible samplers (budget=%d/%d, k=%d/%d, dims=%d/%d, seed=%d/%d)",
			s.budget, o.budget, s.k, o.k, s.dims, o.dims, s.seed, o.seed)
	}
	for d := 0; d < s.dims; d++ {
		for _, l := range sortedLabels(o.strata[d]) {
			os := o.strata[d][l]
			st := s.strata[d][l]
			if st == nil {
				st = &stratum{cap: s.k}
				s.strata[d][l] = st
			}
			if os.cap < st.cap {
				st.cap = os.cap
			}
			st.entries = mergeEntries(st.entries, os.entries, st.cap)
		}
	}
	// Re-filter both retained sets under the merged thresholds. The
	// receiver's items are rechecked first, then the other's are offered;
	// order cannot matter (membership is a pure predicate of the merged
	// thresholds) but sorted walks keep the map insertions deterministic.
	for _, k := range sortedItemKeys(s.items) {
		s.recheck(k)
	}
	for _, k := range sortedItemKeys(o.items) {
		it := o.items[k]
		if _, ok := s.items[k]; ok {
			continue
		}
		if it.pr < s.maxThresholdOf(it.labels) {
			s.items[k] = &retainedItem{key: it.key, labels: append([]uint32(nil), it.labels...),
				value: it.value, pr: it.pr}
		}
	}
	s.enforceBudget()
	s.n += o.n
	return nil
}

// mergeEntries unions two ascending entry lists, deduplicating by
// (priority, key) and truncating to cap+1.
func mergeEntries(a, b []stratumEntry, cap int) []stratumEntry {
	out := make([]stratumEntry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case a[i].pr < b[j].pr || (a[i].pr == b[j].pr && a[i].key < b[j].key):
			out = append(out, a[i])
			i++
		case a[i].pr == b[j].pr && a[i].key == b[j].key:
			out = append(out, a[i])
			i++
			j++
		default:
			out = append(out, b[j])
			j++
		}
	}
	if len(out) > cap+1 {
		out = out[:cap+1]
	}
	return out
}

func sortedItemKeys(m map[uint64]*retainedItem) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
