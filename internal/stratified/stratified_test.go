package stratified

import (
	"math"
	"testing"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func makePop(n, countries, ages int, seed uint64) []Item {
	rng := stream.NewRNG(seed)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Key:    uint64(i),
			Strata: []int{rng.Intn(countries), rng.Intn(ages)},
			Value:  1 + rng.Float64(),
		}
	}
	return items
}

func TestFitValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("budget <= 0 must panic")
		}
	}()
	Fit(makePop(10, 2, 2, 1), 2, 0, 1)
}

func TestFitWrongDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong strata count must panic")
		}
	}()
	Fit([]Item{{Key: 1, Strata: []int{0}}}, 2, 5, 1)
}

func TestBudgetRespected(t *testing.T) {
	items := makePop(2000, 10, 5, 2)
	for _, budget := range []int{100, 300, 700} {
		des := Fit(items, 2, budget, 3)
		if len(des.Sample) > budget {
			t.Errorf("budget %d: sample %d", budget, len(des.Sample))
		}
		// The greedy rule should land close to the budget, not far under.
		if len(des.Sample) < budget-budget/10 {
			t.Errorf("budget %d: sample only %d (under-filled)", budget, len(des.Sample))
		}
	}
}

func TestSmallBudgetStillCoversStrata(t *testing.T) {
	items := makePop(2000, 10, 5, 4)
	des := Fit(items, 2, 30, 5)
	cc := des.StratumCounts(0)
	for s := 0; s < 10; s++ {
		if cc[s] == 0 {
			t.Errorf("country %d has no samples", s)
		}
	}
	ac := des.StratumCounts(1)
	for s := 0; s < 5; s++ {
		if ac[s] == 0 {
			t.Errorf("age %d has no samples", s)
		}
	}
}

func TestWholePopulationWhenBudgetLarge(t *testing.T) {
	items := makePop(100, 4, 3, 6)
	des := Fit(items, 2, 1000, 7)
	if len(des.Sample) != 100 {
		t.Errorf("sample %d, want the whole population", len(des.Sample))
	}
	sum, v := des.SubsetSum(nil)
	truth := 0.0
	for _, it := range items {
		truth += it.Value
	}
	if math.Abs(sum-truth) > 1e-9 || v != 0 {
		t.Errorf("exact case: sum %v (want %v) var %v", sum, truth, v)
	}
}

func TestVerifyProperty(t *testing.T) {
	items := makePop(1500, 8, 4, 8)
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		des := Fit(items, 2, 200, seed)
		if !des.Verify(items, seed) {
			t.Errorf("seed %d: sample inconsistent with max-of-thresholds rule", seed)
		}
	}
}

func TestSampleMatchesThresholdRule(t *testing.T) {
	// Every sampled item's priority is below its recorded threshold.
	items := makePop(1000, 6, 4, 9)
	des := Fit(items, 2, 150, 10)
	for _, it := range des.Sample {
		if it.Priority >= it.Threshold {
			t.Fatalf("sampled item %d priority %v >= threshold %v", it.Key, it.Priority, it.Threshold)
		}
	}
}

func TestSubsetSumUnbiased(t *testing.T) {
	items := makePop(1200, 6, 4, 11)
	truth := 0.0
	pred := func(it Item) bool { return it.Strata[0] == 3 }
	for _, it := range items {
		if pred(it) {
			truth += it.Value
		}
	}
	var est estimator.Running
	for trial := 0; trial < 400; trial++ {
		des := Fit(items, 2, 200, 500+uint64(trial))
		s, _ := des.SubsetSum(pred)
		est.Add(s)
	}
	if z := (est.Mean() - truth) / est.SE(); math.Abs(z) > 4.5 {
		t.Errorf("stratified HT biased: mean %v truth %v z %v", est.Mean(), truth, z)
	}
}

func TestSingleDimension(t *testing.T) {
	rng := stream.NewRNG(12)
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{Key: uint64(i), Strata: []int{rng.Intn(5)}, Value: 1}
	}
	des := Fit(items, 1, 50, 13)
	if len(des.Sample) > 50 {
		t.Errorf("budget exceeded: %d", len(des.Sample))
	}
	counts := des.StratumCounts(0)
	// One dimension: the greedy decrement equalizes per-stratum counts
	// (within one, since strata are decremented from the largest).
	min, max := 1<<30, 0
	for s := 0; s < 5; s++ {
		if counts[s] < min {
			min = counts[s]
		}
		if counts[s] > max {
			max = counts[s]
		}
	}
	if max-min > 1 {
		t.Errorf("single-dim stratified counts should be balanced, got %v", counts)
	}
}
