package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ats/internal/store"
	"ats/internal/wire"
)

// castagnoli is the CRC32C polynomial table shared by records and
// snapshot footers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded WAL record: an accepted ingest batch with its
// assigned sequence and ingest instant.
type Record struct {
	// Seq is the append sequence, strictly increasing across the log.
	Seq uint64
	// At is the store-clock ingest instant in unix nanoseconds; replay
	// feeds it back through AddBatchKindAt so bucket placement and
	// time-axis stamping reproduce exactly.
	At int64
	// Frame is the batch payload. Frame.Kind is always a resolved store
	// kind wire value, never wire.KindDefault.
	Frame wire.Frame
}

const (
	// recHeadLen is the fixed prefix: length + seq + at.
	recHeadLen = 4 + 8 + 8
	// recCRCLen trails every record.
	recCRCLen = 4
	// minFrameLen is the smallest canonical wire frame (8-byte header,
	// 1-byte namespace, 1-byte metric, 1-byte zero count).
	minFrameLen = 11
	// MaxRecordBytes bounds one record on disk — a decode-bomb guard
	// mirroring the serving layer's request body cap.
	MaxRecordBytes = 64 << 20
)

// ErrRecordCorrupt reports a malformed, truncated or checksum-failing
// WAL record.
var ErrRecordCorrupt = errors.New("wal: corrupt record")

// AppendRecord appends the canonical encoding of (seq, at, frame) to
// dst, where frame is an already-encoded canonical wire batch frame.
func AppendRecord(dst []byte, seq uint64, at int64, frame []byte) []byte {
	body := 8 + 8 + len(frame)
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(at))
	dst = append(dst, frame...)
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// EncodeRecord is AppendRecord from a Record, re-encoding the frame;
// it is the inverse the fuzz target holds DecodeRecord to.
func EncodeRecord(dst []byte, r Record) ([]byte, error) {
	frame, err := wire.AppendFrame(nil, r.Frame)
	if err != nil {
		return nil, err
	}
	return AppendRecord(dst, r.Seq, r.At, frame), nil
}

// DecodeRecord decodes the record at the front of data, returning the
// bytes consumed. Every failure mode — truncation, a checksum
// mismatch, a non-canonical or trailing-garbage frame, an unresolved
// or unknown kind byte — is ErrRecordCorrupt-wrapped; data[n:] is
// untouched so callers iterate a segment by re-slicing.
func DecodeRecord(data []byte) (r Record, n int, err error) {
	if len(data) < recHeadLen {
		return r, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrRecordCorrupt, len(data))
	}
	body := int(binary.LittleEndian.Uint32(data))
	if body < 8+8+minFrameLen {
		return r, 0, fmt.Errorf("%w: body length %d below minimum", ErrRecordCorrupt, body)
	}
	if body > MaxRecordBytes {
		return r, 0, fmt.Errorf("%w: body length %d exceeds %d", ErrRecordCorrupt, body, MaxRecordBytes)
	}
	total := 4 + body + recCRCLen
	if len(data) < total {
		return r, 0, fmt.Errorf("%w: %d bytes framed, %d present", ErrRecordCorrupt, total, len(data))
	}
	want := binary.LittleEndian.Uint32(data[4+body:])
	if got := crc32.Checksum(data[:4+body], castagnoli); got != want {
		return r, 0, fmt.Errorf("%w: checksum %08x, want %08x", ErrRecordCorrupt, got, want)
	}
	r.Seq = binary.LittleEndian.Uint64(data[4:])
	r.At = int64(binary.LittleEndian.Uint64(data[12:]))
	frame, rest, err := wire.DecodeFrame(data[recHeadLen : 4+body])
	if err != nil {
		return Record{}, 0, fmt.Errorf("%w: frame: %v", ErrRecordCorrupt, err)
	}
	if len(rest) != 0 {
		return Record{}, 0, fmt.Errorf("%w: %d trailing bytes after frame", ErrRecordCorrupt, len(rest))
	}
	if frame.Kind == wire.KindDefault || !store.Kind(frame.Kind).Valid() {
		return Record{}, 0, fmt.Errorf("%w: unresolved or unknown kind byte %#x", ErrRecordCorrupt, frame.Kind)
	}
	r.Frame = frame
	return r, total, nil
}
