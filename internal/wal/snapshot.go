package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot generation file layout: the store's own snapshot stream
// followed by the footer documented in the package comment. The file
// is named snap-%016x.ats by the last WAL sequence it covers and only
// ever appears under its final name complete and fsynced (temp file +
// fsync + rename + directory fsync).

const (
	footMagic = 0x46535441 // "ATSF"
	footLen   = 4 + 8 + 8 + 4
	snapPre   = "snap-"
	snapExt   = ".ats"
	tmpExt    = ".tmp"
)

// ErrSnapshotInvalid reports a generation file that fails footer or
// checksum verification — a half-written or bit-rotted snapshot.
var ErrSnapshotInvalid = errors.New("wal: invalid snapshot generation")

// generation is one on-disk snapshot generation.
type generation struct {
	seq  uint64
	path string
}

func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPre, seq, snapExt) }

// parseGenName extracts the covered sequence from a generation file
// name, reporting ok=false for anything else.
func parseGenName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPre) || !strings.HasSuffix(name, snapExt) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPre), snapExt)
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listGenerations returns the snapshot generations in dir, newest
// (highest covered sequence) first.
func listGenerations(dir string) ([]generation, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []generation
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseGenName(e.Name()); ok {
			gens = append(gens, generation{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].seq > gens[j].seq })
	return gens, nil
}

// crcWriter tees writes into a running CRC32C and a byte count.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   uint64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += uint64(n)
	return n, err
}

// footer builds the 24 footer bytes for a payload summary, computing
// the final CRC over payload CRC state continued across the footer's
// own leading fields.
func footer(seq, payloadLen uint64, payloadCRC uint32) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, footMagic)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, payloadLen)
	crc := crc32.Update(payloadCRC, castagnoli, buf)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// verifyGeneration streams path, checking the footer frame and the
// CRC32C over the whole payload. It returns the covered sequence and
// payload length on success and an ErrSnapshotInvalid-wrapped error on
// any mismatch.
func verifyGeneration(path string) (seq, payloadLen uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, err
	}
	if size < footLen {
		return 0, 0, fmt.Errorf("%w: %s is %d bytes, shorter than the footer", ErrSnapshotInvalid, path, size)
	}
	var foot [footLen]byte
	if _, err := f.ReadAt(foot[:], size-footLen); err != nil {
		return 0, 0, err
	}
	if binary.LittleEndian.Uint32(foot[:]) != footMagic {
		return 0, 0, fmt.Errorf("%w: %s: bad footer magic", ErrSnapshotInvalid, path)
	}
	seq = binary.LittleEndian.Uint64(foot[4:])
	payloadLen = binary.LittleEndian.Uint64(foot[12:])
	if payloadLen != uint64(size-footLen) {
		return 0, 0, fmt.Errorf("%w: %s: footer claims %d payload bytes, file has %d",
			ErrSnapshotInvalid, path, payloadLen, size-footLen)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	crc := uint32(0)
	buf := make([]byte, 256<<10)
	remaining := payloadLen
	for remaining > 0 {
		n := uint64(len(buf))
		if n > remaining {
			n = remaining
		}
		m, err := io.ReadFull(f, buf[:n])
		if err != nil {
			return 0, 0, fmt.Errorf("%w: %s: payload read: %v", ErrSnapshotInvalid, path, err)
		}
		crc = crc32.Update(crc, castagnoli, buf[:m])
		remaining -= uint64(m)
	}
	crc = crc32.Update(crc, castagnoli, foot[:footLen-4])
	if want := binary.LittleEndian.Uint32(foot[footLen-4:]); crc != want {
		return 0, 0, fmt.Errorf("%w: %s: checksum %08x, want %08x", ErrSnapshotInvalid, path, crc, want)
	}
	return seq, payloadLen, nil
}

// restoreGeneration verifies path and, if sound, feeds its payload to
// restore (the store's Restore).
func restoreGeneration(path string, restore func(io.Reader) error) (seq uint64, err error) {
	seq, payloadLen, err := verifyGeneration(path)
	if err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if err := restore(io.LimitReader(f, int64(payloadLen))); err != nil {
		return 0, fmt.Errorf("wal: restoring %s: %w", path, err)
	}
	return seq, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives power loss. Errors are returned; SIGKILL-style crashes do
// not need it, real crashes do.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
