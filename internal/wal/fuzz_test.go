package wal

import (
	"bytes"
	"testing"

	"ats/internal/wire"
)

// FuzzWALRecordDecode holds the record codec to the recovery-scan
// contract: any byte string either fails to decode (and recovery
// truncates or quarantines it) or decodes to a record whose canonical
// re-encoding is bit-identical to the bytes consumed — so a record can
// never silently change meaning across a crash and replay.
func FuzzWALRecordDecode(f *testing.F) {
	for i := 0; i < 12; i++ {
		ns, metric, kind, items, at := testBatch(i)
		frame, err := wire.AppendFrame(nil, wire.Frame{
			Namespace: ns, Metric: metric, Kind: byte(kind), Items: items})
		if err != nil {
			f.Fatal(err)
		}
		rec := AppendRecord(nil, uint64(i)+1, at.UnixNano(), frame)
		f.Add(rec)
		// Truncations model torn tails; concatenations model segment
		// scans; flips model bit rot.
		f.Add(rec[:len(rec)/2])
		f.Add(rec[:len(rec)-1])
		f.Add(append(append([]byte(nil), rec...), rec...))
		flipped := append([]byte(nil), rec...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("decode failed but consumed %d bytes", n)
			}
			return
		}
		if n < recHeadLen+minFrameLen+recCRCLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("re-encoding differs from the %d consumed bytes", n)
		}
		// Decoding the re-encoding must agree with itself.
		rec2, n2, err := DecodeRecord(enc)
		if err != nil || n2 != len(enc) {
			t.Fatalf("re-encoded record fails decode: n=%d err=%v", n2, err)
		}
		if rec2.Seq != rec.Seq || rec2.At != rec.At {
			t.Fatalf("roundtrip changed header: %+v vs %+v", rec2, rec)
		}
	})
}
