package wal

import (
	"strings"
	"testing"

	"ats/internal/obs"
)

// TestObservedIngest proves an instrumented manager records every
// pipeline stage and that the WAL counters surface through the
// registry's Prometheus rendering with the same values as Stats().
func TestObservedIngest(t *testing.T) {
	reg := obs.NewRegistry()
	st := testStore()
	m, _ := openRecovered(t, t.TempDir(), st, Options{
		Fsync:        FsyncAlways,
		SegmentBytes: 512, // force rotations
		Obs:          reg,
	})
	const n = 20
	ingestN(t, m, 0, n)

	for _, stage := range []string{"wal_append", "fsync", "apply"} {
		h := reg.FindHistogram("ats_ingest_stage_seconds", obs.L("stage", stage))
		if h == nil {
			t.Fatalf("stage %q histogram not registered", stage)
		}
		if got := h.Count(); got != n {
			t.Errorf("stage %q recorded %d observations, want %d", stage, got, n)
		}
	}
	if h := reg.FindHistogram("ats_wal_segment_rotation_seconds"); h == nil || h.Count() == 0 {
		t.Error("no segment rotations recorded despite tiny SegmentBytes")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	want := map[string]float64{
		"ats_wal_appended_records_total": float64(stats.AppendedRecords),
		"ats_wal_appended_bytes_total":   float64(stats.AppendedBytes),
		"ats_wal_fsyncs_total":           float64(stats.Fsyncs),
		"ats_wal_segments":               float64(stats.Segments),
		"ats_wal_last_seq":               float64(stats.LastSeq),
	}
	for _, s := range samples {
		if v, ok := want[s.Name]; ok {
			if s.Value != v {
				t.Errorf("%s = %g, want %g", s.Name, s.Value, v)
			}
			delete(want, s.Name)
		}
	}
	for name := range want {
		t.Errorf("metric %s missing from exposition", name)
	}
}
