package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ats/internal/engine"
	"ats/internal/fail"
	"ats/internal/store"
	"ats/internal/wire"
)

func encodeTestFrame(t *testing.T, ns, metric string, kind store.Kind, items []engine.Item) []byte {
	t.Helper()
	frame, err := wire.AppendFrame(nil, wire.Frame{Namespace: ns, Metric: metric, Kind: byte(kind), Items: items})
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

var testEpoch = time.Unix(1_700_000_000, 0)

func testStore() *store.Store {
	return store.New(store.Config{
		K:           64,
		Seed:        7,
		BucketWidth: time.Minute,
		Retention:   8,
		GroupM:      8,
		StratumK:    16,
		Now:         func() time.Time { return testEpoch },
	})
}

// testBatch derives a deterministic batch from i, cycling through the
// sketch kinds so replay exercises every time-sensitive path.
func testBatch(i int) (ns, metric string, kind store.Kind, items []engine.Item, at time.Time) {
	kinds := store.Kinds()
	kind = kinds[i%len(kinds)]
	ns = fmt.Sprintf("ns%d", i%3)
	metric = fmt.Sprintf("m-%s", kind)
	rng := rand.New(rand.NewSource(int64(i) + 1))
	items = make([]engine.Item, 1+i%5)
	for j := range items {
		items[j] = engine.Item{
			Key:    rng.Uint64(),
			Weight: 1 + rng.Float64()*10,
			Value:  rng.Float64() * 100,
			Group:  rng.Uint64() % 8,
			Strata: []uint32{uint32(j % 4), uint32(i % 4)},
		}
	}
	at = testEpoch.Add(time.Duration(i) * 7 * time.Second)
	return ns, metric, kind, items, at
}

func ingestN(t *testing.T, m *Manager, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		ns, metric, kind, items, at := testBatch(i)
		if err := m.Ingest(ns, metric, kind, items, at); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
}

// referenceStore builds the state batches [0, n) should produce by
// feeding the store directly, bypassing the log.
func referenceStore(t *testing.T, n int) *store.Store {
	t.Helper()
	ref := testStore()
	for i := 0; i < n; i++ {
		ns, metric, kind, items, at := testBatch(i)
		if err := ref.AddBatchKindAt(ns, metric, kind, items, at); err != nil {
			t.Fatalf("reference ingest %d: %v", i, err)
		}
	}
	return ref
}

func snapshotBytes(t *testing.T, st *store.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openRecovered(t *testing.T, dir string, st *store.Store, opts Options) (*Manager, RecoveryStats) {
	t.Helper()
	m, err := Open(dir, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, rs
}

func TestIngestRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	const n = 40

	st := testStore()
	m, rs := openRecovered(t, dir, st, Options{Fsync: FsyncNone})
	if rs.RecordsApplied != 0 || rs.SnapshotSeq != 0 {
		t.Fatalf("fresh dir recovery: %+v", rs)
	}
	ingestN(t, m, 0, n)
	want := snapshotBytes(t, st)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-style reopen: nothing but the log to go on.
	st2 := testStore()
	_, rs2 := openRecovered(t, dir, st2, Options{Fsync: FsyncNone})
	if rs2.RecordsApplied != n {
		t.Fatalf("replayed %d records, want %d (%+v)", rs2.RecordsApplied, n, rs2)
	}
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatalf("replayed store diverges: %d vs %d snapshot bytes", len(got), len(want))
	}
	// And against a store that never saw the log at all.
	if got := snapshotBytes(t, referenceStore(t, n)); !bytes.Equal(got, want) {
		t.Fatalf("reference store diverges from logged store")
	}
}

func TestRecoverAfterSnapshotSkipsCovered(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	m, _ := openRecovered(t, dir, st, Options{Fsync: FsyncNone})
	ingestN(t, m, 0, 10)
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingestN(t, m, 10, 25)
	want := snapshotBytes(t, st)
	m.Close()

	st2 := testStore()
	m2, rs := openRecovered(t, dir, st2, Options{Fsync: FsyncNone})
	if rs.SnapshotSeq != 10 {
		t.Fatalf("restored snapshot seq %d, want 10", rs.SnapshotSeq)
	}
	if rs.RecordsApplied != 15 {
		t.Fatalf("applied %d, want 15 (%+v)", rs.RecordsApplied, rs)
	}
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("snapshot+replay diverges from pre-crash state")
	}
	// Sequencing continues where it left off.
	ns, metric, kind, items, at := testBatch(25)
	if err := m2.Ingest(ns, metric, kind, items, at); err != nil {
		t.Fatal(err)
	}
	if s := m2.Stats(); s.LastSeq != 26 {
		t.Fatalf("last seq %d after continuing, want 26", s.LastSeq)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	m, _ := openRecovered(t, dir, st, Options{Fsync: FsyncNone})
	ingestN(t, m, 0, 12)
	want := snapshotBytes(t, st)
	m.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v err %v", segs, err)
	}
	// A torn append: half of a plausible record's bytes.
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := AppendRecord(nil, 13, testEpoch.UnixNano(), bytes.Repeat([]byte{0xAB}, 40))
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := testStore()
	m2, rs := openRecovered(t, dir, st2, Options{Fsync: FsyncNone})
	if rs.RecordsApplied != 12 {
		t.Fatalf("applied %d, want 12", rs.RecordsApplied)
	}
	if rs.TornBytesTruncated != int64(len(torn)/2) {
		t.Fatalf("truncated %d bytes, want %d", rs.TornBytesTruncated, len(torn)/2)
	}
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("state after torn-tail recovery diverges")
	}
	// The tail is gone from disk too: a third boot sees a clean log.
	ingestN(t, m2, 12, 13)
	m2.Close()
	st3 := testStore()
	_, rs3 := openRecovered(t, dir, st3, Options{Fsync: FsyncNone})
	if rs3.TornBytesTruncated != 0 || rs3.RecordsApplied != 13 {
		t.Fatalf("third boot: %+v", rs3)
	}
}

func TestMidLogCorruptionQuarantinesSegmentRemainder(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	// Tiny segments force several files.
	m, _ := openRecovered(t, dir, st, Options{Fsync: FsyncNone, SegmentBytes: 2 << 10})
	ingestN(t, m, 0, 60)
	m.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Flip a byte early in the FIRST segment's record area: everything
	// after it in that file is quarantined, later segments still boot.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[segHeadLen+20] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := testStore()
	m2, rs := openRecovered(t, dir, st2, Options{Fsync: FsyncNone, SegmentBytes: 2 << 10})
	if rs.QuarantineEvents != 1 || rs.QuarantinedBytes == 0 {
		t.Fatalf("quarantine not reported: %+v", rs)
	}
	if rs.RecordsApplied == 0 || rs.RecordsApplied >= 60 {
		t.Fatalf("applied %d records, want a strict subset of 60", rs.RecordsApplied)
	}
	if rs.TornBytesTruncated != 0 {
		t.Fatalf("mid-log damage must quarantine, not truncate: %+v", rs)
	}
	// The damaged file is untouched on disk.
	after, _ := os.ReadFile(segs[0])
	if !bytes.Equal(after, data) {
		t.Fatal("quarantine mutated the damaged segment")
	}
	// And the manager still serves writes.
	ingestN(t, m2, 60, 61)
}

func TestRotationAndReclaim(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	m, _ := openRecovered(t, dir, st, Options{Fsync: FsyncNone, SegmentBytes: 2 << 10})
	ingestN(t, m, 0, 80)
	pre := m.Stats()
	if pre.Segments < 3 {
		t.Fatalf("want rotation into >=3 segments, got %d", pre.Segments)
	}
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 80 {
		t.Fatalf("ReadAll saw %d records, want 80", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}

	info, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 80 {
		t.Fatalf("snapshot covers seq %d, want 80", info.Seq)
	}
	post := m.Stats()
	if post.Reclaimed == 0 || post.Segments != 1 {
		t.Fatalf("reclaim left %d segments (%d reclaimed)", post.Segments, post.Reclaimed)
	}
	if post.SnapshotSeq != 80 {
		t.Fatalf("snapshot seq %d", post.SnapshotSeq)
	}
	// Reopen from snapshot + surviving tail only.
	want := snapshotBytes(t, st)
	m.Close()
	st2 := testStore()
	_, rs := openRecovered(t, dir, st2, Options{Fsync: FsyncNone, SegmentBytes: 2 << 10})
	if rs.SnapshotSeq != 80 {
		t.Fatalf("recovered snapshot seq %d", rs.SnapshotSeq)
	}
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("post-reclaim recovery diverges")
	}
}

func TestGenerationFallback(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	m, _ := openRecovered(t, dir, st, Options{Fsync: FsyncNone})
	ingestN(t, m, 0, 10)
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingestN(t, m, 10, 20)
	info, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ingestN(t, m, 20, 24)
	want := snapshotBytes(t, st)
	m.Close()

	// Corrupt the NEWEST generation mid-payload.
	data, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(info.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := testStore()
	_, rs := openRecovered(t, dir, st2, Options{Fsync: FsyncNone})
	if rs.SnapshotsRejected != 1 {
		t.Fatalf("rejected %d generations, want 1 (%+v)", rs.SnapshotsRejected, rs)
	}
	if rs.SnapshotSeq != 10 {
		t.Fatalf("fell back to seq %d, want generation N-1 at 10", rs.SnapshotSeq)
	}
	// WAL replay past seq 10 still rebuilds the full state: the reclaim
	// pass keeps segments until a DURABLE snapshot covers them, and the
	// corrupted generation's reclaim only removed segments covered by
	// it... so records 11..24 must still be present.
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("generation fallback + replay diverges from pre-crash state")
	}
}

func TestRecordByteFlipAlwaysDetected(t *testing.T) {
	ns, metric, kind, items, at := testBatch(3)
	frame := encodeTestFrame(t, ns, metric, kind, items)
	rec := AppendRecord(nil, 42, at.UnixNano(), frame)
	if _, n, err := DecodeRecord(rec); err != nil || n != len(rec) {
		t.Fatalf("pristine record: n=%d err=%v", n, err)
	}
	for i := range rec {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x01
		r, n, err := DecodeRecord(mut)
		if err == nil && n == len(mut) && bytesEqualRecord(r, 42, at.UnixNano(), frame) {
			t.Fatalf("flip at byte %d went unnoticed", i)
		}
	}
}

func bytesEqualRecord(r Record, seq uint64, at int64, frame []byte) bool {
	if r.Seq != seq || r.At != at {
		return false
	}
	enc, err := EncodeRecord(nil, r)
	if err != nil {
		return false
	}
	ref := AppendRecord(nil, seq, at, frame)
	return bytes.Equal(enc, ref)
}

func TestFsyncErrorFailStops(t *testing.T) {
	fail.Reset()
	t.Cleanup(fail.Reset)
	if err := fail.Arm("wal/fsync=error@2"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st := testStore()
	m, _ := openRecovered(t, dir, st, Options{Fsync: FsyncAlways})
	ingestN(t, m, 0, 1)
	ns, metric, kind, items, at := testBatch(1)
	if err := m.Ingest(ns, metric, kind, items, at); !errors.Is(err, ErrFailed) {
		t.Fatalf("fsync failure surfaced as %v, want ErrFailed", err)
	}
	// Fail-stop: everything after is rejected without touching disk.
	if err := m.Ingest(ns, metric, kind, items, at); !errors.Is(err, ErrFailed) {
		t.Fatalf("post-failure ingest returned %v, want ErrFailed", err)
	}
	if s := m.Stats(); s.Failed == "" {
		t.Fatal("failed state missing from stats")
	}
	if _, err := m.Snapshot(); !errors.Is(err, ErrFailed) {
		t.Fatalf("snapshot on failed log returned %v", err)
	}
}

func TestInjectedAppendErrorIsNotAcknowledged(t *testing.T) {
	fail.Reset()
	t.Cleanup(fail.Reset)
	if err := fail.Arm("wal/append/before=error@1"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st := testStore()
	m, _ := openRecovered(t, dir, st, Options{Fsync: FsyncNone})
	ns, metric, kind, items, at := testBatch(0)
	if err := m.Ingest(ns, metric, kind, items, at); !errors.Is(err, fail.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	// Injected faults are transient, not fail-stop.
	ingestN(t, m, 0, 3)
	if s := m.Stats(); s.LastSeq != 3 || s.Failed != "" {
		t.Fatalf("stats after transient fault: %+v", s)
	}
}

func TestTmpFilesCleanedAtBoot(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, snapName(99)+tmpExt)
	if err := os.WriteFile(stray, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := testStore()
	_, rs := openRecovered(t, dir, st, Options{Fsync: FsyncNone})
	if rs.TmpFilesRemoved != 1 {
		t.Fatalf("cleaned %d tmp files, want 1", rs.TmpFilesRemoved)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray tmp file survived boot: %v", err)
	}
}

func TestGenerationPruneKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	st := testStore()
	m, _ := openRecovered(t, dir, st, Options{Fsync: FsyncNone})
	for i := 0; i < 4; i++ {
		ingestN(t, m, i*5, (i+1)*5)
		if _, err := m.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := filepath.Glob(filepath.Join(dir, "snap-*.ats"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("retained %d generations %v, want 2", len(gens), gens)
	}
	for _, g := range gens {
		base := filepath.Base(g)
		if !strings.Contains(base, fmt.Sprintf("%016x", 20)) && !strings.Contains(base, fmt.Sprintf("%016x", 15)) {
			t.Fatalf("unexpected surviving generation %s", base)
		}
	}
}

func TestParseFsyncPolicyRoundtrip(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNone} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("roundtrip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("accepted bogus policy")
	}
}
