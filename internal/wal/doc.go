// Package wal is the crash-safe durability layer of the serving stack:
// a write-ahead log of accepted ingest batches plus atomic, checksummed
// snapshot generations, with recovery that replays the log through the
// store's normal ingest path and reproduces the pre-crash state
// bit-for-bit.
//
// # Log records
//
// One record is one accepted ingest batch: the canonical internal/wire
// batch frame (with the sketch kind resolved — never the "store
// default" byte) prefixed by the assigned sequence number and the
// store-clock ingest instant, framed and checksummed (all integers
// little-endian):
//
//	length uint32  body length (seq through frame end)
//	seq    uint64  assigned append sequence, strictly increasing
//	at     int64   ingest instant, unix nanoseconds
//	frame  bytes   one canonical internal/wire batch frame
//	crc    uint32  CRC32C over the length prefix and the body
//
// Recording the instant is what makes replay deterministic: the store
// stamps Window arrival times and Decay time axes from the ingest
// clock, and bucket placement is a pure function of the instant, so
// replaying (namespace, metric, kind, items, at) tuples in log order
// reproduces identical sketch state — the property the crash e2e
// harness checks bit-for-bit against a reference store.
//
// Records live in segment files ("wal-%016x.log", named and headed by
// their first sequence number) that rotate at a size threshold and are
// reclaimed once a durable snapshot covers them.
//
// # Snapshot generations
//
// Snapshots are the store's own stream (internal/store Snapshot) made
// atomic and self-verifying: written to a temp file, fsynced, renamed
// into place as "snap-%016x.ats" (named by the last WAL sequence the
// snapshot covers), with a checksummed footer:
//
//	magic      uint32  "ATSF"
//	seq        uint64  last WAL sequence covered by the payload
//	payloadLen uint64  store-stream byte length
//	crc        uint32  CRC32C over the payload and the fields above
//
// Boot verifies the newest generation end to end before restoring it;
// a half-written or bit-rotted generation is rejected and boot falls
// back to the previous one (generations N and N-1 are retained), then
// replays every log record past the restored generation's sequence.
//
// # Recovery state machine
//
// Open → restore newest verifiable snapshot (else N-1, else empty) →
// scan segments in order, skipping records the snapshot covers and
// applying the rest → a torn tail in the final segment is truncated
// (it can only be an unacknowledged append) → corrupt bytes mid-log
// quarantine the remainder of that segment, counted and surfaced in
// stats rather than failing boot → position the writer after the last
// valid record. Failed writes and fsyncs after recovery fail-stop the
// manager: later ingests are rejected rather than acknowledged into a
// log that can no longer promise durability.
//
// Failpoints (internal/fail) cover the append, fsync, snapshot-write
// and rename steps, so the crash harness can SIGKILL the daemon at
// every interesting instant.
package wal
