package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ats/internal/engine"
	"ats/internal/fail"
	"ats/internal/obs"
	"ats/internal/store"
	"ats/internal/wire"
)

// FsyncPolicy selects when appended records reach stable storage.
type FsyncPolicy uint8

const (
	// FsyncAlways syncs before every acknowledgment: no acknowledged
	// write is lost even to power failure. Slowest.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval group-commits: a background ticker syncs dirty
	// segments every Options.FsyncInterval. A process crash (SIGKILL)
	// loses nothing — page cache survives the process — but power loss
	// may lose up to one interval of acknowledged writes.
	FsyncInterval
	// FsyncNone never syncs explicitly; the OS flushes on its own
	// schedule. Process crashes still lose nothing.
	FsyncNone
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	}
	return fmt.Sprintf("fsync(%d)", uint8(p))
}

// ParseFsyncPolicy is the inverse of FsyncPolicy.String.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or none)", s)
}

// Applier is the store surface the manager drives: live ingest and
// replay go through AddBatchKindAt, snapshots through Snapshot and
// Restore. *store.Store satisfies it.
type Applier interface {
	AddBatchKindAt(namespace, metric string, kind store.Kind, items []engine.Item, at time.Time) error
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

// Options tunes a Manager. The zero value gets sensible defaults.
type Options struct {
	// Fsync is the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the group-commit period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold of one log segment
	// (default 64 MiB). Tests shrink it to force rotation.
	SegmentBytes int64
	// Generations is how many verified snapshot generations to retain
	// (default 2: the newest plus the fallback).
	Generations int
	// Obs, when set, receives per-stage ingest timings (the
	// ats_ingest_stage_seconds family shared with the HTTP server),
	// segment-rotation durations, and scrape-time views of the WAL
	// counters. Nil disables instrumentation at zero cost.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.Generations <= 0 {
		o.Generations = 2
	}
	return o
}

// Segment file layout: a 13-byte header (magic "ATSW", version, base
// sequence) followed by records.
const (
	segMagic   = 0x57535441 // "ATSW"
	segVersion = 1
	segHeadLen = 4 + 1 + 8
	segPre     = "wal-"
	segExt     = ".log"
)

// ErrFailed reports a manager that has fail-stopped after a write or
// fsync error: the log can no longer promise durability, so ingest is
// rejected instead of acknowledged.
var ErrFailed = errors.New("wal: log failed, ingest disabled")

// ErrNotRecovered reports use of a manager before Recover.
var ErrNotRecovered = errors.New("wal: not recovered yet")

type segMeta struct {
	base uint64
	path string
}

func segName(base uint64) string { return fmt.Sprintf("%s%016x%s", segPre, base, segExt) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPre) || !strings.HasSuffix(name, segExt) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPre), segExt)
	if len(hex) != 16 {
		return 0, false
	}
	base, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// RecoveryStats describes what boot-time recovery found and did; it is
// surfaced verbatim in /v1/stats so quarantined damage is visible, not
// silently swallowed.
type RecoveryStats struct {
	// SnapshotSeq is the covered sequence of the restored generation
	// (0 = booted from an empty store).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotsRejected counts generations that failed verification or
	// restore and were skipped (the N-1 fallback path).
	SnapshotsRejected int `json:"snapshots_rejected,omitempty"`
	// TmpFilesRemoved counts stray temp files from crashed snapshot
	// writes cleaned at boot.
	TmpFilesRemoved int `json:"tmp_files_removed,omitempty"`
	// RecordsApplied replayed through the ingest path; RecordsSkipped
	// were already covered by the restored snapshot.
	RecordsApplied int `json:"records_applied"`
	RecordsSkipped int `json:"records_skipped,omitempty"`
	// ApplyErrors counts records the store rejected during replay (for
	// example a kind mismatch) — deterministic re-rejections of writes
	// the live path also rejected.
	ApplyErrors int `json:"apply_errors,omitempty"`
	// TornBytesTruncated were cut off the final segment's tail — a
	// write that died mid-record and was never acknowledged.
	TornBytesTruncated int64 `json:"torn_bytes_truncated,omitempty"`
	// QuarantineEvents and QuarantinedBytes count corrupt mid-log
	// stretches that were skipped (the rest of their segment) rather
	// than aborting boot.
	QuarantineEvents int   `json:"quarantine_events,omitempty"`
	QuarantinedBytes int64 `json:"quarantined_bytes,omitempty"`
}

// Stats is the durability section of /v1/stats.
type Stats struct {
	Fsync           string        `json:"fsync"`
	LastSeq         uint64        `json:"last_seq"`
	AppendedRecords int64         `json:"appended_records"`
	AppendedBytes   int64         `json:"appended_bytes"`
	Fsyncs          int64         `json:"fsyncs"`
	Segments        int           `json:"segments"`
	SegmentBytes    int64         `json:"segment_bytes"`
	SnapshotSeq     uint64        `json:"snapshot_seq"`
	Snapshots       int64         `json:"snapshots"`
	Reclaimed       int64         `json:"reclaimed_segments"`
	Failed          string        `json:"failed,omitempty"`
	Recovery        RecoveryStats `json:"recovery"`
}

// SnapshotInfo describes one written generation.
type SnapshotInfo struct {
	Seq   uint64 `json:"seq"`
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// Manager owns one durability directory: the WAL segments, the
// snapshot generations, and the serialized append→apply ingest path.
// With a manager attached, WAL order IS apply order — the property
// that makes crash replay bit-deterministic — so ingest through it is
// serialized by design; queries and snapshots-to-stream still run
// concurrently against the store's own locks.
type Manager struct {
	dir  string
	opts Options
	app  Applier

	mu        sync.Mutex
	recovered bool
	failed    error
	seg       *os.File
	segs      []segMeta // ascending by base; last is the active segment
	segSize   int64
	nextSeq   uint64
	snapSeq   uint64
	dirty     bool
	closed    bool

	frameBuf []byte
	recBuf   []byte

	appended  int64
	appendedB int64
	fsyncs    int64
	snapshots int64
	reclaimed int64
	recStats  RecoveryStats

	// Stage histograms, nil when Options.Obs is unset. Observe is
	// lock-free, so recording happens inside the ingest critical
	// section without widening it.
	hAppend *obs.Histogram
	hFsync  *obs.Histogram
	hApply  *obs.Histogram
	hRotate *obs.Histogram

	stopTick chan struct{}
	tickDone chan struct{}
}

// Open prepares a manager over dir (created if absent) applying to
// app. Nothing is read until Recover, and ingest is rejected before it.
func Open(dir string, app Applier, opts Options) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{dir: dir, opts: opts.withDefaults(), app: app, nextSeq: 1}
	if r := m.opts.Obs; r != nil {
		const stageHelp = "Ingest pipeline stage durations."
		m.hAppend = r.Histogram("ats_ingest_stage_seconds", stageHelp, obs.L("stage", "wal_append"))
		m.hFsync = r.Histogram("ats_ingest_stage_seconds", stageHelp, obs.L("stage", "fsync"))
		m.hApply = r.Histogram("ats_ingest_stage_seconds", stageHelp, obs.L("stage", "apply"))
		m.hRotate = r.Histogram("ats_wal_segment_rotation_seconds", "WAL segment seal+open durations.")
		lockedInt := func(p *int64) func() int64 {
			return func() int64 { m.mu.Lock(); defer m.mu.Unlock(); return *p }
		}
		r.CounterFunc("ats_wal_appended_records_total", "Records appended to the WAL.", lockedInt(&m.appended))
		r.CounterFunc("ats_wal_appended_bytes_total", "Bytes appended to the WAL.", lockedInt(&m.appendedB))
		r.CounterFunc("ats_wal_fsyncs_total", "WAL fsync calls.", lockedInt(&m.fsyncs))
		r.CounterFunc("ats_wal_snapshots_total", "Snapshot generations written.", lockedInt(&m.snapshots))
		r.CounterFunc("ats_wal_reclaimed_segments_total", "Sealed segments reclaimed after snapshots.", lockedInt(&m.reclaimed))
		r.GaugeFunc("ats_wal_segments", "Live WAL segment files.", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(len(m.segs))
		})
		r.GaugeFunc("ats_wal_last_seq", "Highest assigned WAL sequence number.", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(m.nextSeq - 1)
		})
	}
	return m, nil
}

// Dir returns the durability directory.
func (m *Manager) Dir() string { return m.dir }

// Recover runs the boot state machine documented in the package
// comment: restore the newest sound snapshot generation, replay the
// uncovered log suffix through the applier, truncate a torn tail,
// quarantine mid-log corruption, and position the writer. It must be
// called exactly once, before any Ingest.
func (m *Manager) Recover() (RecoveryStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recovered {
		return m.recStats, errors.New("wal: already recovered")
	}
	var rs RecoveryStats

	// Stray temp files are crashed snapshot writes: never renamed in,
	// never trusted, always removed.
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return rs, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), tmpExt) {
			if err := os.Remove(filepath.Join(m.dir, e.Name())); err == nil {
				rs.TmpFilesRemoved++
			}
		}
	}

	// Newest verifiable generation wins; damaged ones are skipped, not
	// fatal — the WAL suffix re-derives what they would have held.
	gens, err := listGenerations(m.dir)
	if err != nil {
		return rs, err
	}
	for _, g := range gens {
		seq, err := restoreGeneration(g.path, m.app.Restore)
		if err != nil {
			rs.SnapshotsRejected++
			continue
		}
		m.snapSeq = seq
		rs.SnapshotSeq = seq
		break
	}

	segs, err := m.listSegments()
	if err != nil {
		return rs, err
	}
	maxSeq := m.snapSeq
	live := segs[:0]
	for i, sm := range segs {
		last := i == len(segs)-1
		ok, segMax := m.replaySegment(sm, last, &rs)
		if segMax > maxSeq {
			maxSeq = segMax
		}
		if !ok {
			// Unusable (torn or mismatched) header on the last segment:
			// the file holds nothing replayable, recycle the name.
			if last {
				if err := os.Remove(sm.path); err != nil && !errors.Is(err, os.ErrNotExist) {
					return rs, err
				}
				continue
			}
		}
		live = append(live, sm)
	}
	m.segs = append([]segMeta(nil), live...)
	m.nextSeq = maxSeq + 1

	if err := m.openWriterLocked(); err != nil {
		return rs, err
	}
	m.reclaimLocked(m.snapSeq)
	m.recStats = rs
	m.recovered = true

	if m.opts.Fsync == FsyncInterval {
		m.stopTick = make(chan struct{})
		m.tickDone = make(chan struct{})
		go m.tick()
	}
	return rs, nil
}

// listSegments returns dir's segment files ascending by base sequence.
func (m *Manager) listSegments() ([]segMeta, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var segs []segMeta
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if base, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segMeta{base: base, path: filepath.Join(m.dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// replaySegment scans one segment, applying records past the restored
// snapshot. It returns header-ok and the highest valid sequence seen.
// Damage policy: an invalid suffix of the LAST segment is a torn tail
// (truncated — it can only be an unacknowledged append in progress at
// the crash); invalid bytes in any earlier segment are quarantined (the
// segment's remainder is skipped and counted) because later segments
// hold later, sound data that must still boot.
func (m *Manager) replaySegment(sm segMeta, last bool, rs *RecoveryStats) (headerOK bool, maxSeq uint64) {
	data, err := os.ReadFile(sm.path)
	if err != nil {
		// Unreadable file: quarantine rather than abort.
		rs.QuarantineEvents++
		return !last, 0
	}
	if len(data) < segHeadLen ||
		binary.LittleEndian.Uint32(data) != segMagic ||
		data[4] != segVersion ||
		binary.LittleEndian.Uint64(data[5:]) != sm.base {
		if last {
			rs.TornBytesTruncated += int64(len(data))
			return false, 0
		}
		rs.QuarantineEvents++
		rs.QuarantinedBytes += int64(len(data))
		return false, 0
	}
	off := segHeadLen
	expect := sm.base
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err == nil && rec.Seq != expect {
			err = fmt.Errorf("%w: sequence %d where %d expected", ErrRecordCorrupt, rec.Seq, expect)
		}
		if err != nil {
			if last {
				rs.TornBytesTruncated += int64(len(data) - off)
				if terr := os.Truncate(sm.path, int64(off)); terr != nil {
					rs.QuarantineEvents++
				}
			} else {
				rs.QuarantineEvents++
				rs.QuarantinedBytes += int64(len(data) - off)
			}
			return true, maxSeq
		}
		if rec.Seq > m.snapSeq {
			if aerr := m.app.AddBatchKindAt(rec.Frame.Namespace, rec.Frame.Metric,
				store.Kind(rec.Frame.Kind), rec.Frame.Items, time.Unix(0, rec.At)); aerr != nil {
				rs.ApplyErrors++
			} else {
				rs.RecordsApplied++
			}
		} else {
			rs.RecordsSkipped++
		}
		maxSeq = rec.Seq
		expect++
		off += n
	}
	return true, maxSeq
}

// openWriterLocked positions the appender: reuse the final segment
// when it is intact and under the rotation threshold, else start a
// fresh one at nextSeq.
func (m *Manager) openWriterLocked() error {
	if n := len(m.segs); n > 0 {
		sm := m.segs[n-1]
		st, err := os.Stat(sm.path)
		if err == nil && st.Size() >= segHeadLen && st.Size() < m.opts.SegmentBytes {
			f, err := os.OpenFile(sm.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			m.seg, m.segSize = f, st.Size()
			return nil
		}
	}
	return m.newSegmentLocked()
}

// newSegmentLocked seals the active segment (sync + close) and starts
// a fresh one based at nextSeq.
func (m *Manager) newSegmentLocked() error {
	if m.hRotate != nil {
		defer func(start time.Time) { m.hRotate.Observe(time.Since(start)) }(time.Now())
	}
	if m.seg != nil {
		if m.opts.Fsync != FsyncNone {
			if err := m.seg.Sync(); err != nil {
				m.seg.Close()
				return err
			}
			m.fsyncs++
		}
		if err := m.seg.Close(); err != nil {
			return err
		}
		m.seg = nil
	}
	path := filepath.Join(m.dir, segName(m.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	head := binary.LittleEndian.AppendUint32(nil, segMagic)
	head = append(head, segVersion)
	head = binary.LittleEndian.AppendUint64(head, m.nextSeq)
	if _, err := f.Write(head); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(m.dir); err != nil {
		f.Close()
		return err
	}
	m.seg, m.segSize = f, segHeadLen
	m.segs = append(m.segs, segMeta{base: m.nextSeq, path: path})
	return nil
}

// Ingest is the durable write path: encode the batch as a WAL record,
// append it (rotating and syncing per policy), and only then apply it
// to the store — the caller acknowledges only after Ingest returns
// nil. Append order is apply order, by construction.
func (m *Manager) Ingest(namespace, metric string, kind store.Kind, items []engine.Item, at time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.recovered {
		return ErrNotRecovered
	}
	if m.failed != nil {
		return fmt.Errorf("%w: %v", ErrFailed, m.failed)
	}
	if err := fail.Check("wal/append/before"); err != nil {
		return err
	}

	var err error
	m.frameBuf, err = wire.AppendFrame(m.frameBuf[:0], wire.Frame{
		Namespace: namespace, Metric: metric, Kind: byte(kind), Items: items})
	if err != nil {
		return err // unloggable batch (e.g. name too long for the frame): reject, do not apply
	}
	m.recBuf = AppendRecord(m.recBuf[:0], m.nextSeq, at.UnixNano(), m.frameBuf)

	if m.segSize+int64(len(m.recBuf)) > m.opts.SegmentBytes && m.segSize > segHeadLen {
		if err := m.newSegmentLocked(); err != nil {
			m.failed = err
			return fmt.Errorf("%w: %v", ErrFailed, err)
		}
	}
	if torn, err := fail.Triggered("wal/append/torn"); err != nil {
		return err
	} else if torn {
		m.seg.Write(m.recBuf[:len(m.recBuf)/2])
		m.seg.Sync()
		fail.Crash("wal/append/torn")
	}
	var stageStart time.Time
	if m.hAppend != nil {
		stageStart = time.Now()
	}
	if _, err := m.seg.Write(m.recBuf); err != nil {
		m.failed = err
		return fmt.Errorf("%w: %v", ErrFailed, err)
	}
	if m.hAppend != nil {
		m.hAppend.Observe(time.Since(stageStart))
	}
	m.segSize += int64(len(m.recBuf))
	m.appended++
	m.appendedB += int64(len(m.recBuf))
	if m.opts.Fsync == FsyncAlways {
		if err := m.syncLocked(); err != nil {
			m.failed = err
			return fmt.Errorf("%w: %v", ErrFailed, err)
		}
	} else {
		m.dirty = true
	}
	if err := fail.Check("wal/append/after"); err != nil {
		return err
	}

	m.nextSeq++
	if m.hApply != nil {
		stageStart = time.Now()
	}
	if err := m.app.AddBatchKindAt(namespace, metric, kind, items, at); err != nil {
		// The record is logged but the store rejected it (kind
		// mismatch). Replay re-rejects identically, so log and store
		// stay consistent; the client is NOT acknowledged.
		return err
	}
	if m.hApply != nil {
		m.hApply.Observe(time.Since(stageStart))
	}
	if err := fail.Check("wal/apply/after"); err != nil {
		return err
	}
	return nil
}

// syncLocked fsyncs the active segment, honoring the wal/fsync
// failpoint.
func (m *Manager) syncLocked() error {
	if err := fail.Check("wal/fsync"); err != nil {
		return err
	}
	var start time.Time
	if m.hFsync != nil {
		start = time.Now()
	}
	if err := m.seg.Sync(); err != nil {
		return err
	}
	if m.hFsync != nil {
		m.hFsync.Observe(time.Since(start))
	}
	m.fsyncs++
	m.dirty = false
	return nil
}

// tick is the FsyncInterval group-commit loop.
func (m *Manager) tick() {
	defer close(m.tickDone)
	t := time.NewTicker(m.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopTick:
			return
		case <-t.C:
			m.mu.Lock()
			if m.dirty && m.failed == nil && !m.closed {
				if err := m.syncLocked(); err != nil {
					m.failed = err
				}
			}
			m.mu.Unlock()
		}
	}
}

// Snapshot writes a new generation covering everything appended so
// far, then reclaims fully-covered segments and prunes generations
// beyond Options.Generations. It holds the ingest lock for the
// duration, so the generation is an exact sequence-consistent cut.
func (m *Manager) Snapshot() (SnapshotInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.recovered {
		return SnapshotInfo{}, ErrNotRecovered
	}
	if m.failed != nil {
		return SnapshotInfo{}, fmt.Errorf("%w: %v", ErrFailed, m.failed)
	}
	seq := m.nextSeq - 1
	info, err := m.writeGenerationLocked(seq)
	if err != nil {
		return SnapshotInfo{}, err
	}
	m.snapSeq = seq
	m.snapshots++
	m.pruneGenerationsLocked()
	m.reclaimLocked(seq)
	return info, nil
}

func (m *Manager) writeGenerationLocked(seq uint64) (SnapshotInfo, error) {
	if err := fail.Check("snap/before"); err != nil {
		return SnapshotInfo{}, err
	}
	final := filepath.Join(m.dir, snapName(seq))
	tmp := final + tmpExt
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return SnapshotInfo{}, err
	}
	cleanup := func() { f.Close(); os.Remove(tmp) }
	cw := &crcWriter{w: f}
	if err := m.app.Snapshot(cw); err != nil {
		cleanup()
		return SnapshotInfo{}, err
	}
	foot := footer(seq, cw.n, cw.crc)
	if torn, ferr := fail.Triggered("snap/footer/torn"); ferr != nil {
		cleanup()
		return SnapshotInfo{}, ferr
	} else if torn {
		// A torn generation is a FINAL-named file with a broken footer:
		// write the partial footer, rename into place, crash. Boot must
		// reject it and fall back to generation N-1.
		f.Write(foot[:len(foot)/2])
		f.Sync()
		f.Close()
		os.Rename(tmp, final)
		fail.Crash("snap/footer/torn")
	}
	if _, err := f.Write(foot); err != nil {
		cleanup()
		return SnapshotInfo{}, err
	}
	if err := fail.Check("snap/sync"); err != nil {
		cleanup()
		return SnapshotInfo{}, err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return SnapshotInfo{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return SnapshotInfo{}, err
	}
	if err := fail.Check("snap/rename/before"); err != nil {
		os.Remove(tmp)
		return SnapshotInfo{}, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return SnapshotInfo{}, err
	}
	if err := syncDir(m.dir); err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{Seq: seq, Path: final, Bytes: int64(cw.n) + footLen}, nil
}

// pruneGenerationsLocked deletes generations beyond the retention
// count, oldest first.
func (m *Manager) pruneGenerationsLocked() {
	gens, err := listGenerations(m.dir)
	if err != nil {
		return
	}
	for i := m.opts.Generations; i < len(gens); i++ {
		os.Remove(gens[i].path)
	}
}

// reclaimLocked deletes sealed segments every record of which is
// covered by the durable snapshot at seq. The active segment and any
// segment with newer records survive.
func (m *Manager) reclaimLocked(seq uint64) {
	for len(m.segs) > 1 {
		// Sealed segment i ends where segment i+1 begins.
		end := m.segs[1].base - 1
		if end > seq {
			return
		}
		if err := os.Remove(m.segs[0].path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return
		}
		m.reclaimed++
		m.segs = m.segs[1:]
	}
}

// SnapshotTo streams a plain store snapshot (no footer) to w under the
// ingest lock, giving callers a sequence-consistent byte-exact view —
// the crash harness compares these bytes against a reference store.
func (m *Manager) SnapshotTo(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.recovered {
		return ErrNotRecovered
	}
	return m.app.Snapshot(w)
}

// Stats returns the durability counters for /v1/stats.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Fsync:           m.opts.Fsync.String(),
		LastSeq:         m.nextSeq - 1,
		AppendedRecords: m.appended,
		AppendedBytes:   m.appendedB,
		Fsyncs:          m.fsyncs,
		Segments:        len(m.segs),
		SnapshotSeq:     m.snapSeq,
		Snapshots:       m.snapshots,
		Reclaimed:       m.reclaimed,
		Recovery:        m.recStats,
	}
	for _, sm := range m.segs {
		if st, err := os.Stat(sm.path); err == nil {
			s.SegmentBytes += st.Size()
		}
	}
	if m.failed != nil {
		s.Failed = m.failed.Error()
	}
	return s
}

// Close stops the fsync ticker and syncs and closes the active
// segment. The manager is unusable afterwards.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	stop := m.stopTick
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-m.tickDone
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seg == nil {
		return nil
	}
	var err error
	if m.failed == nil && m.opts.Fsync != FsyncNone {
		if serr := m.seg.Sync(); serr != nil {
			err = serr
		} else {
			m.fsyncs++
		}
	}
	if cerr := m.seg.Close(); err == nil {
		err = cerr
	}
	m.seg = nil
	return err
}

// ReadAll decodes every intact record in dir's segments in order — a
// verification helper for harnesses and tools, not a serving path. It
// stops reading a segment at the first invalid byte (mirroring
// recovery's quarantine/truncate boundary) and never mutates files.
func ReadAll(dir string) ([]Record, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segMeta
	for _, e := range ents {
		if base, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			segs = append(segs, segMeta{base: base, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	var recs []Record
	for _, sm := range segs {
		data, err := os.ReadFile(sm.path)
		if err != nil {
			return nil, err
		}
		if len(data) < segHeadLen || binary.LittleEndian.Uint32(data) != segMagic ||
			data[4] != segVersion || binary.LittleEndian.Uint64(data[5:]) != sm.base {
			continue
		}
		off := segHeadLen
		expect := sm.base
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil || rec.Seq != expect {
				break
			}
			recs = append(recs, rec)
			expect++
			off += n
		}
	}
	return recs, nil
}
