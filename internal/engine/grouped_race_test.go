package engine

// Race-detector hammer tests for the grouped/stratified sharded facades,
// mirroring the existing engine hammer tests: writers on Add/AddBatch,
// concurrent Collapse/Snapshot readers, then semantic checks on the
// final collapsed sketch (estimates near exact, budget respected,
// deterministic collapse).

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"ats/internal/codec"
)

func TestConcurrentGroupByIsRaceFreeAndAccurate(t *testing.T) {
	const (
		m, k    = 16, 64
		seed    = 41
		writers = 8
		perW    = 8000
		groups  = 40
	)
	// Deterministic labelled stream: group g owns keys g<<32|i with
	// 100*(g+1) distinct items, so exact counts are known.
	items := make([]Item, writers*perW)
	exact := make(map[uint64]map[uint64]struct{})
	for i := range items {
		g := uint64(i % groups)
		key := g<<32 | uint64(i/groups)%uint64(100*(g+1))
		items[i] = Item{Key: key, Group: g, Weight: 1, Value: 1}
		if exact[g] == nil {
			exact[g] = make(map[uint64]struct{})
		}
		exact[g][key] = struct{}{}
	}

	eng := NewShardedGroupBy(m, k, seed, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := items[w*perW : (w+1)*perW]
			half := len(chunk) / 2
			eng.AddBatch(chunk[:half])
			for _, it := range chunk[half:] {
				eng.Observe(it.Group, it.Key)
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for i := 0; i < 10; i++ {
				col := eng.Collapse()
				if tm := col.Tmax(); !(tm > 0) || tm > 1 {
					t.Errorf("mid-write Tmax %v", tm)
					return
				}
				for _, ge := range col.GroupEstimates(5) {
					if ge.Estimate < 0 {
						t.Errorf("mid-write negative estimate %+v", ge)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	snapWG.Wait()

	col := eng.Collapse()
	if col.Groups() != groups {
		t.Errorf("collapsed observed %d groups, want %d", col.Groups(), groups)
	}
	// Heavy groups (top half) must estimate within 35%.
	for g := uint64(groups / 2); g < groups; g++ {
		want := float64(len(exact[g]))
		got := col.Estimate(g)
		if rel := math.Abs(got-want) / want; rel > 0.35 {
			t.Errorf("group %d: estimate %.1f vs exact %.0f (rel %.3f)", g, got, want, rel)
		}
	}
	// Collapse is a pure function of the shard states: repeating it must
	// be bit-identical.
	b1, _ := col.MarshalBinary()
	b2, _ := eng.Collapse().MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Error("repeated collapse of quiescent shards is not deterministic")
	}
}

func TestConcurrentStratifiedIsRaceFreeAndAccurate(t *testing.T) {
	const (
		budget, k = 300, 64
		dims      = 2
		seed      = 43
		writers   = 8
		perW      = 6000
	)
	items := make([]Item, writers*perW)
	exact := 0.0
	for i := range items {
		v := 1 + float64(i%7)
		items[i] = Item{
			Key:    uint64(i)*0x9e3779b97f4a7c15 + 1,
			Value:  v,
			Strata: []uint32{uint32(i % 6), uint32(i % 4)},
		}
		exact += v
	}

	eng := NewShardedStratified(budget, k, dims, seed, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := items[w*perW : (w+1)*perW]
			half := len(chunk) / 2
			eng.AddBatch(chunk[:half])
			for _, it := range chunk[half:] {
				eng.Observe(it.Key, it.Strata, it.Value)
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for i := 0; i < 10; i++ {
				col := eng.Collapse()
				if col.Len() > budget {
					t.Errorf("mid-write collapsed sample %d over budget %d", col.Len(), budget)
					return
				}
				if sum, _ := col.SubsetSum(nil); sum < 0 {
					t.Errorf("mid-write negative sum %v", sum)
					return
				}
			}
		}()
	}
	wg.Wait()
	snapWG.Wait()

	col := eng.Collapse()
	if col.Len() > budget {
		t.Fatalf("collapsed sample %d over budget %d", col.Len(), budget)
	}
	if col.N() != int64(len(items)) {
		t.Errorf("collapsed N = %d, want %d", col.N(), len(items))
	}
	sum, _ := col.SubsetSum(nil)
	if rel := math.Abs(sum-exact) / exact; rel > 0.25 {
		t.Errorf("collapsed subset sum %.1f vs exact %.1f (rel %.3f)", sum, exact, rel)
	}
	// Every stratum of every dimension stays represented.
	for d, want := range []int{6, 4} {
		if got := len(col.StratumStats(d)); got != want {
			t.Errorf("dimension %d: %d strata represented, want %d", d, got, want)
		}
	}
	b1, _ := col.MarshalBinary()
	b2, _ := eng.Collapse().MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Error("repeated collapse of quiescent shards is not deterministic")
	}
}

// TestGroupedAdaptersThroughSamplerInterface drives the new adapters
// through the generic Sampler/SnapshotMarshaler contracts the engine and
// store rely on: cross-type merges rejected, codec round trips
// re-wrapped by WrapDecoded, HT estimation over AppendSample matching
// the sketch's own estimators.
func TestGroupedAdaptersThroughSamplerInterface(t *testing.T) {
	gb := NewShardedGroupBy(4, 16, 3, 2)
	st := NewShardedStratified(50, 16, 2, 3, 2)
	for i := 0; i < 5000; i++ {
		gb.AddBatch([]Item{{Key: uint64(i), Group: uint64(i % 5)}})
		st.AddBatch([]Item{{Key: uint64(i), Value: 1, Strata: []uint32{uint32(i % 3), 0}}})
	}
	gbs, err := gb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sts, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := gbs.Merge(sts); err != ErrIncompatible {
		t.Errorf("cross-type merge: %v, want ErrIncompatible", err)
	}
	for _, s := range []Sampler{gbs, sts} {
		sm := s.(SnapshotMarshaler)
		payload, err := sm.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		// Decode through the registry name, as the store's restore does.
		back, err := roundTripThroughCodec(sm.CodecName(), payload)
		if err != nil {
			t.Fatalf("%s: %v", sm.CodecName(), err)
		}
		s1 := s.Sample()
		s2 := back.Sample()
		if len(s1) != len(s2) {
			t.Fatalf("%s: decoded sample has %d items, want %d", sm.CodecName(), len(s2), len(s1))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("%s: decoded sample[%d] = %+v, want %+v", sm.CodecName(), i, s2[i], s1[i])
			}
		}
		if s.Threshold() != back.Threshold() {
			t.Fatalf("%s: decoded threshold %v, want %v", sm.CodecName(), back.Threshold(), s.Threshold())
		}
	}
}

// roundTripThroughCodec decodes a codec payload by registry name and
// re-wraps it into its engine adapter, the path the store's restore
// walks.
func roundTripThroughCodec(name string, payload []byte) (Sampler, error) {
	c, ok := codec.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("codec %q not registered", name)
	}
	v, err := c.Unmarshal(payload)
	if err != nil {
		return nil, err
	}
	return WrapDecoded(name, v)
}
