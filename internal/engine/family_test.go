package engine

import (
	"math"
	"sort"
	"sync"
	"testing"

	"ats/internal/codec"
	"ats/internal/decay"
	"ats/internal/stream"
	"ats/internal/topk"
	"ats/internal/varopt"
)

func TestShardedTopKConservesTotals(t *testing.T) {
	z := stream.NewZipf(2000, 1.4, 9)
	eng := NewShardedTopK(64, 10, 4)
	const n = 60000
	items := make([]Item, 512)
	fed := 0
	for fed < n {
		m := len(items)
		if m > n-fed {
			m = n - fed
		}
		for i := 0; i < m; i++ {
			items[i] = Item{Key: z.Next(), Weight: 1, Value: 1}
		}
		eng.AddBatch(items[:m])
		fed += m
	}
	sk := eng.Collapse()
	if got := sk.SubsetSum(nil); got != n {
		t.Errorf("collapsed counter total %d, want exactly %d (merge conserves totals)", got, n)
	}
	if sk.Len() > 64 {
		t.Errorf("collapsed sketch tracks %d > m items", sk.Len())
	}
	// The heavy head of a steep Zipf must surface in the top-k.
	wrong := 0
	for _, r := range eng.TopK(5) {
		if r.Key >= 10 {
			wrong++
		}
	}
	if wrong > 1 {
		t.Errorf("%d of top-5 outside the true head", wrong)
	}
}

func TestShardedVarOptFixedSize(t *testing.T) {
	rng := stream.NewRNG(11)
	eng := NewShardedVarOpt(50, 12, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			items := make([]Item, 250)
			for b := 0; b < 10; b++ {
				r := stream.NewRNG(uint64(g*100 + b))
				for i := range items {
					items[i] = Item{Key: uint64(g*10000 + b*250 + i), Weight: r.Open01() * 10, Value: 1}
				}
				eng.AddBatch(items)
			}
		}(g)
	}
	wg.Wait()
	_ = rng
	sk := eng.Collapse()
	if sk.Len() != 50 {
		t.Errorf("collapsed size %d, want exactly k=50", sk.Len())
	}
	if sk.N() != 10000 {
		t.Errorf("collapsed n = %d, want 10000", sk.N())
	}
	// Total-weight conservation survives the merge chain.
	est := sk.EstimateWeight()
	if est <= 0 {
		t.Fatalf("non-positive weight estimate %v", est)
	}
}

func TestShardedDecayedMatchesSequential(t *testing.T) {
	// Hash-coordinated priorities: the collapsed sharded sample equals
	// the sequential sample of the same arrivals, entry for entry.
	seq := decay.New(30, 0.2, 13)
	eng := NewShardedDecayed(30, 0.2, 13, 4)
	rng := stream.NewRNG(14)
	items := make([]Item, 5000)
	for i := range items {
		items[i] = Item{Key: uint64(i), Weight: rng.Open01() * 4, Value: 1, Time: float64(i) * 0.01}
	}
	for _, it := range items {
		seq.Add(it.Key, it.Weight, it.Value, it.Time)
	}
	eng.AddBatch(items)
	got := eng.Collapse()
	if got.LogThreshold() != seq.LogThreshold() {
		t.Errorf("collapsed threshold %v != sequential %v", got.LogThreshold(), seq.LogThreshold())
	}
	a, b := got.Sample(), seq.Sample()
	sortEntries := func(s []decay.Entry) {
		sort.Slice(s, func(i, j int) bool { return s[i].LogP < s[j].LogP })
	}
	sortEntries(a)
	sortEntries(b)
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sample[%d]: %+v != %+v", i, a[i], b[i])
		}
	}
}

func TestDecayAdapterClock(t *testing.T) {
	d := WrapDecayed(decay.New(8, 1, 1))
	now := 100.0
	d.SetClock(func() float64 { return now })
	d.Add(1, 1, 1) // the 3-arg Add has no Time: stamped by the clock
	d.AddBatch([]Item{{Key: 2, Weight: 1, Value: 1}, {Key: 3, Weight: 1, Value: 1, Time: 42}})
	for _, e := range d.Sketch().Sample() {
		switch e.Key {
		case 1:
			if e.Time != 100 {
				t.Errorf("key 1 stamped at %v, want the adapter clock (100)", e.Time)
			}
		case 2:
			if e.Time != 0 {
				t.Errorf("key 2 stamped at %v, want its verbatim Time (0)", e.Time)
			}
		case 3:
			if e.Time != 42 {
				t.Errorf("key 3 stamped at %v, want its verbatim Time (42)", e.Time)
			}
		}
	}
}

func TestFamilyAdaptersRejectForeignMerge(t *testing.T) {
	samplers := []Sampler{
		WrapTopK(topk.NewUnbiasedSpaceSaving(4, 1)),
		WrapVarOpt(varopt.New(4, 1)),
		WrapDecayed(decay.New(4, 1, 1)),
		WrapBottomK(nil),
	}
	for i, a := range samplers {
		for j, b := range samplers {
			if i == j {
				continue
			}
			if err := a.Merge(b); err == nil {
				t.Errorf("sampler %d merged foreign sampler %d", i, j)
			}
		}
	}
}

// TestFamilySnapshotMarshalerRoundTrip drives each new adapter through
// the same codec-envelope path the store's Snapshot/Restore uses.
func TestFamilySnapshotMarshalerRoundTrip(t *testing.T) {
	build := func() []Sampler {
		tk := WrapTopK(topk.NewUnbiasedSpaceSaving(8, 2))
		vk := WrapVarOpt(varopt.New(8, 3))
		yk := WrapDecayed(decay.New(8, 0.5, 4))
		for i := 0; i < 300; i++ {
			tk.Add(uint64(i%20), 1, 1)
			vk.Add(uint64(i), 1+float64(i%6), 1)
			yk.AddAt(uint64(i), 1, 1, float64(i)*0.1)
		}
		return []Sampler{tk, vk, yk}
	}
	for _, s := range build() {
		sm := s.(SnapshotMarshaler)
		payload, err := sm.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", sm.CodecName(), err)
		}
		env, err := codec.Envelope(sm.CodecName(), payload)
		if err != nil {
			t.Fatal(err)
		}
		name, v, err := codec.Unmarshal(env)
		if err != nil {
			t.Fatalf("%s: envelope decode: %v", sm.CodecName(), err)
		}
		restored, err := WrapDecoded(name, v)
		if err != nil {
			t.Fatalf("%s: WrapDecoded: %v", name, err)
		}
		if restored.Threshold() != s.Threshold() && !(math.IsInf(restored.Threshold(), 1) && math.IsInf(s.Threshold(), 1)) {
			t.Errorf("%s: threshold changed across restore: %v -> %v", name, s.Threshold(), restored.Threshold())
		}
		a, b := s.Sample(), restored.Sample()
		if len(a) != len(b) {
			t.Fatalf("%s: sample size changed: %d -> %d", name, len(a), len(b))
		}
	}
}
