package engine

// Concurrency tests: many goroutines hammering Add, AddBatch and Snapshot
// simultaneously. Run with the race detector:
//
//	go test -race ./internal/engine/...
//
// Beyond freedom from data races, the tests assert the paper-level
// property that makes sharding sound: the collapsed sketch equals the
// single-threaded sketch of the same stream, no matter how the stream was
// partitioned or interleaved across goroutines.

import (
	"math"
	"sync"
	"testing"

	"ats/internal/bottomk"
	"ats/internal/distinct"
)

func TestConcurrentBottomKMatchesSequential(t *testing.T) {
	const (
		k       = 128
		seed    = 21
		writers = 8
		perW    = 4000
	)
	items := zipfItems(writers*perW, seed)

	seq := bottomk.New(k, seed)
	for _, it := range items {
		seq.Add(it.Key, it.Weight, it.Value)
	}
	wantSum, _ := seq.SubsetSum(nil)

	eng := NewShardedBottomK(k, seed, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := items[w*perW : (w+1)*perW]
			// Alternate between the batched and single-item paths.
			half := len(chunk) / 2
			eng.AddBatch(chunk[:half])
			for _, it := range chunk[half:] {
				eng.Sharded.Add(it.Key, it.Weight, it.Value)
			}
		}(w)
	}
	// Concurrent snapshots while writers run: must be internally
	// consistent (valid threshold, sample within capacity).
	var snapWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for i := 0; i < 10; i++ {
				col := eng.Collapse()
				if got := len(col.Sample()); got > k {
					t.Errorf("mid-write snapshot sample size %d > k", got)
					return
				}
				if thr := col.Threshold(); thr <= 0 {
					t.Errorf("mid-write snapshot threshold %v", thr)
					return
				}
			}
		}()
	}
	wg.Wait()
	snapWG.Wait()

	col := eng.Collapse()
	if col.Threshold() != seq.Threshold() {
		t.Errorf("concurrent threshold %v != sequential %v", col.Threshold(), seq.Threshold())
	}
	gotSum, _ := eng.SubsetSum(nil)
	if math.Abs(gotSum-wantSum) > 1e-9*math.Abs(wantSum) {
		t.Errorf("concurrent SubsetSum %v != sequential %v", gotSum, wantSum)
	}
	if col.N() != seq.N() {
		t.Errorf("concurrent N %d != sequential %d", col.N(), seq.N())
	}
}

func TestConcurrentDistinctMatchesSequential(t *testing.T) {
	const (
		k       = 256
		seed    = 31
		writers = 8
		perW    = 5000
	)
	keys := make([]uint64, writers*perW)
	for i := range keys {
		keys[i] = uint64(i % 17000) // heavy duplication across goroutines
	}

	seq := distinct.NewSketch(k, seed)
	for _, key := range keys {
		seq.Add(key)
	}

	eng := NewShardedDistinct(k, seed, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := keys[w*perW : (w+1)*perW]
			half := len(chunk) / 2
			eng.AddKeys(chunk[:half])
			for _, key := range chunk[half:] {
				eng.AddKey(key)
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 20; i++ {
			if est := eng.Estimate(); est < 0 {
				t.Errorf("mid-write estimate %v", est)
				return
			}
		}
	}()
	wg.Wait()
	snapWG.Wait()

	if got, want := eng.Estimate(), seq.Estimate(); got != want {
		t.Errorf("concurrent estimate %v != sequential %v", got, want)
	}
}

func TestConcurrentWindowIsRaceFree(t *testing.T) {
	const (
		k       = 64
		delta   = 1.0
		writers = 4
		perW    = 2000
	)
	eng := NewShardedWindow(k, delta, 5, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				eng.Observe(uint64(w*perW+i), float64(i)/float64(perW)*3)
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 10; i++ {
			col := eng.Collapse()
			if items, thr := col.ImprovedSample(); thr <= 0 || len(items) > writers*k {
				t.Errorf("mid-write window snapshot: %d items, threshold %v", len(items), thr)
				return
			}
		}
	}()
	wg.Wait()
	snapWG.Wait()

	col := eng.Collapse()
	items, thr := col.ImprovedSample()
	if thr <= 0 || thr > 1 {
		t.Fatalf("final threshold %v", thr)
	}
	now := col.Now()
	for _, it := range items {
		if it.Time <= now-delta || it.Time > now {
			t.Fatalf("sampled item at %v outside window ending %v", it.Time, now)
		}
	}
}
