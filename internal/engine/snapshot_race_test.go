package engine

// Snapshot-consistency hammer: many goroutines Add/AddBatch while others
// Snapshot, Collapse and serialize the snapshots, across all three engine
// kinds. Run with the race detector (CI does). Beyond race freedom, every
// mid-write snapshot must be internally consistent — capacity respected,
// threshold valid, serializable through the codec registry, and the
// decoded copy semantically equal to the snapshot it came from.

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"ats/internal/bottomk"
	"ats/internal/codec"
)

func TestSnapshotHammerBottomK(t *testing.T) {
	const (
		k       = 96
		seed    = 77
		writers = 6
		perW    = 6000
		readers = 4
	)
	items := zipfItems(writers*perW, seed)
	eng := NewShardedBottomK(k, seed, 0)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := items[w*perW : (w+1)*perW]
			for len(chunk) > 0 {
				n := 64
				if n > len(chunk) {
					n = len(chunk)
				}
				eng.AddBatch(chunk[:n])
				chunk = chunk[n:]
			}
		}(w)
	}
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for !stop.Load() {
				snap, err := eng.Snapshot()
				if err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				sk := snap.(*BottomKSampler).Sketch()
				sample := sk.Sample()
				if len(sample) > k {
					t.Errorf("snapshot sample %d > k", len(sample))
					return
				}
				thr := sk.Threshold()
				if !(thr > 0) {
					t.Errorf("snapshot threshold %v", thr)
					return
				}
				for _, e := range sample {
					if e.Priority >= thr {
						t.Errorf("torn snapshot: retained priority %v >= threshold %v", e.Priority, thr)
						return
					}
				}
				// The snapshot must serialize and round-trip while
				// writers keep mutating the shards underneath.
				sm := snap.(SnapshotMarshaler)
				data, err := codec.Marshal(sm.CodecName(), sk)
				if err != nil {
					t.Errorf("marshal mid-write snapshot: %v", err)
					return
				}
				_, v, err := codec.Unmarshal(data)
				if err != nil {
					t.Errorf("unmarshal mid-write snapshot: %v", err)
					return
				}
				got := v.(*bottomk.Sketch)
				if got.Threshold() != thr || got.N() != sk.N() {
					t.Errorf("decoded snapshot differs: thr %v/%v n %d/%d",
						got.Threshold(), thr, got.N(), sk.N())
					return
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	rg.Wait()

	// After all writers joined, the collapse equals the sequential run.
	seq := bottomk.New(k, seed)
	for _, it := range items {
		seq.Add(it.Key, it.Weight, it.Value)
	}
	col := eng.Collapse()
	if col.Threshold() != seq.Threshold() || col.N() != seq.N() {
		t.Fatalf("final collapse diverged: thr %v/%v n %d/%d",
			col.Threshold(), seq.Threshold(), col.N(), seq.N())
	}
	gotSum, _ := col.SubsetSum(nil)
	wantSum, _ := seq.SubsetSum(nil)
	if math.Abs(gotSum-wantSum) > 1e-9*math.Abs(wantSum) {
		t.Fatalf("final estimate diverged: %v != %v", gotSum, wantSum)
	}
}

func TestSnapshotHammerDistinct(t *testing.T) {
	const (
		k       = 128
		seed    = 13
		writers = 4
		perW    = 8000
	)
	eng := NewShardedDistinct(k, seed, 0)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]uint64, 0, 128)
			for i := 0; i < perW; i++ {
				buf = append(buf, uint64((w*perW+i)%9000))
				if len(buf) == cap(buf) {
					eng.AddKeys(buf)
					buf = buf[:0]
				}
			}
			eng.AddKeys(buf)
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for !stop.Load() {
			col := eng.Collapse()
			if est := col.Estimate(); est < 0 {
				t.Errorf("mid-write estimate %v", est)
				return
			}
			if thr := col.Threshold(); !(thr > 0 && thr <= 1) {
				t.Errorf("mid-write threshold %v", thr)
				return
			}
			if data, err := codec.Encode(col); err != nil {
				t.Errorf("encode mid-write collapse: %v", err)
				return
			} else if _, _, err := codec.Unmarshal(data); err != nil {
				t.Errorf("decode mid-write collapse: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	rg.Wait()
}

func TestSnapshotHammerWindow(t *testing.T) {
	const (
		k       = 48
		delta   = 1.0
		writers = 4
		perW    = 4000
	)
	eng := NewShardedWindow(k, delta, 3, writers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				eng.Observe(uint64(w*perW+i), float64(i)*0.001)
			}
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for !stop.Load() {
			col := eng.Collapse()
			items, thr := col.ImprovedSample()
			if !(thr > 0 && thr <= 1) {
				t.Errorf("mid-write window threshold %v", thr)
				return
			}
			now := col.Now()
			for _, it := range items {
				if it.Time <= now-delta || it.Time > now {
					t.Errorf("torn window snapshot: item at %v, now %v", it.Time, now)
					return
				}
				if !(it.R < it.T) {
					t.Errorf("torn window snapshot: R=%v T=%v", it.R, it.T)
					return
				}
			}
			if data, err := codec.Encode(col); err != nil {
				t.Errorf("encode mid-write window: %v", err)
				return
			} else if _, _, err := codec.Unmarshal(data); err != nil {
				t.Errorf("decode mid-write window: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	rg.Wait()
}
