package engine

import (
	"errors"
	"fmt"
	"math"
	"time"

	"ats/internal/bottomk"
	"ats/internal/codec"
	"ats/internal/core"
	"ats/internal/decay"
	"ats/internal/distinct"
	"ats/internal/groupby"
	"ats/internal/stratified"
	"ats/internal/topk"
	"ats/internal/varopt"
	"ats/internal/window"
)

// ErrIncompatible reports an attempt to merge samplers of different
// concrete types.
var ErrIncompatible = errors.New("engine: cannot merge samplers of different types")

// Compile-time interface conformance of the adapters.
var (
	_ Sampler        = (*BottomKSampler)(nil)
	_ Sampler        = (*DistinctSampler)(nil)
	_ Sampler        = (*WindowSampler)(nil)
	_ Sampler        = (*TopKSampler)(nil)
	_ Sampler        = (*VarOptSampler)(nil)
	_ Sampler        = (*DecaySampler)(nil)
	_ Sampler        = (*GroupBySampler)(nil)
	_ Sampler        = (*StratifiedSampler)(nil)
	_ BatchAdder     = (*BottomKSampler)(nil)
	_ BatchAdder     = (*DistinctSampler)(nil)
	_ BatchAdder     = (*WindowSampler)(nil)
	_ BatchAdder     = (*TopKSampler)(nil)
	_ BatchAdder     = (*VarOptSampler)(nil)
	_ BatchAdder     = (*DecaySampler)(nil)
	_ BatchAdder     = (*GroupBySampler)(nil)
	_ BatchAdder     = (*StratifiedSampler)(nil)
	_ SampleAppender = (*BottomKSampler)(nil)
	_ SampleAppender = (*DistinctSampler)(nil)
	_ SampleAppender = (*WindowSampler)(nil)
	_ SampleAppender = (*TopKSampler)(nil)
	_ SampleAppender = (*VarOptSampler)(nil)
	_ SampleAppender = (*DecaySampler)(nil)
	_ SampleAppender = (*GroupBySampler)(nil)
	_ SampleAppender = (*StratifiedSampler)(nil)

	_ Settler  = (*BottomKSampler)(nil)
	_ Settler  = (*DistinctSampler)(nil)
	_ Resetter = (*BottomKSampler)(nil)
	_ Resetter = (*DistinctSampler)(nil)

	_ SnapshotUnmarshaler = (*BottomKSampler)(nil)
	_ SnapshotUnmarshaler = (*DistinctSampler)(nil)

	_ SnapshotMarshaler = (*BottomKSampler)(nil)
	_ SnapshotMarshaler = (*DistinctSampler)(nil)
	_ SnapshotMarshaler = (*WindowSampler)(nil)
	_ SnapshotMarshaler = (*TopKSampler)(nil)
	_ SnapshotMarshaler = (*VarOptSampler)(nil)
	_ SnapshotMarshaler = (*DecaySampler)(nil)
	_ SnapshotMarshaler = (*GroupBySampler)(nil)
	_ SnapshotMarshaler = (*StratifiedSampler)(nil)
)

// WrapDecoded wraps a sketch decoded by the codec registry back into its
// engine adapter, dispatching on the registered codec name. It is the
// inverse of the SnapshotMarshaler hooks and the entry point the store's
// Restore path uses.
func WrapDecoded(name string, v any) (Sampler, error) {
	switch name {
	case codec.NameBottomK:
		if sk, ok := v.(*bottomk.Sketch); ok {
			return WrapBottomK(sk), nil
		}
	case codec.NameDistinct:
		if sk, ok := v.(*distinct.Sketch); ok {
			return WrapDistinct(sk), nil
		}
	case codec.NameWindow:
		if sk, ok := v.(*window.Sampler); ok {
			return WrapWindow(sk), nil
		}
	case codec.NameTopK:
		if sk, ok := v.(*topk.UnbiasedSpaceSaving); ok {
			return WrapTopK(sk), nil
		}
	case codec.NameVarOpt:
		if sk, ok := v.(*varopt.Sketch); ok {
			return WrapVarOpt(sk), nil
		}
	case codec.NameDecay:
		if sk, ok := v.(*decay.Sampler); ok {
			return WrapDecayed(sk), nil
		}
	case codec.NameGroupBy:
		if sk, ok := v.(*groupby.Counter); ok {
			return WrapGroupBy(sk), nil
		}
	case codec.NameStratified:
		if sk, ok := v.(*stratified.Sampler); ok {
			return WrapStratified(sk), nil
		}
	default:
		return nil, fmt.Errorf("engine: no sampler adapter for codec %q", name)
	}
	return nil, fmt.Errorf("engine: codec %q decoded unexpected type %T", name, v)
}

// BottomKSampler adapts a bottom-k sketch to the Sampler interface.
type BottomKSampler struct {
	sk *bottomk.Sketch
	// scratch is the reused entry buffer behind AppendSample.
	scratch []bottomk.Entry
}

// WrapBottomK wraps an existing bottom-k sketch.
func WrapBottomK(sk *bottomk.Sketch) *BottomKSampler { return &BottomKSampler{sk: sk} }

// Sketch returns the underlying bottom-k sketch.
func (b *BottomKSampler) Sketch() *bottomk.Sketch { return b.sk }

// Add offers a weighted item.
func (b *BottomKSampler) Add(key uint64, weight, value float64) { b.sk.Add(key, weight, value) }

// AddBatch offers a batch of weighted items through the sketch's
// amortized O(1) ingest path with direct (devirtualized) calls.
func (b *BottomKSampler) AddBatch(items []Item) {
	sk := b.sk
	for _, it := range items {
		sk.Add(it.Key, it.Weight, it.Value)
	}
}

// Sample returns the retained entries with pseudo-inclusion probabilities
// min(1, w·T) under the current threshold.
func (b *BottomKSampler) Sample() []Sample {
	return b.AppendSample(nil)
}

// AppendSample appends the current sample to dst and returns the extended
// slice; with a reused dst it performs no allocation.
func (b *BottomKSampler) AppendSample(dst []Sample) []Sample {
	t := b.sk.Threshold()
	b.scratch = b.sk.AppendSample(b.scratch[:0])
	for _, e := range b.scratch {
		p := 1.0
		if !math.IsInf(t, 1) {
			p = core.InclusionProb(e.Weight, t)
		}
		dst = append(dst, Sample{Key: e.Key, Weight: e.Weight, Value: e.Value, Priority: e.Priority, P: p})
	}
	return dst
}

// Threshold returns the (k+1)-th smallest priority seen.
func (b *BottomKSampler) Threshold() float64 { return b.sk.Threshold() }

// CodecName names the registered codec serializing this sampler's sketch.
func (b *BottomKSampler) CodecName() string { return codec.NameBottomK }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (b *BottomKSampler) MarshalBinary() ([]byte, error) { return b.sk.MarshalBinary() }

// UnmarshalSnapshot overwrites the underlying sketch in place from a
// codec payload, reusing its keeper buffers (see SnapshotUnmarshaler).
func (b *BottomKSampler) UnmarshalSnapshot(payload []byte) error {
	return b.sk.UnmarshalBinaryReuse(payload)
}

// Settle compacts the sketch to its canonical settled layout (see
// Settler).
func (b *BottomKSampler) Settle() { b.sk.Settle() }

// Reset empties the sampler for reuse as a merge target (see Resetter).
func (b *BottomKSampler) Reset() { b.sk.Reset() }

// Merge folds another BottomKSampler into b.
func (b *BottomKSampler) Merge(other Sampler) error {
	o, ok := other.(*BottomKSampler)
	if !ok {
		return ErrIncompatible
	}
	return b.sk.Merge(o.sk)
}

// DistinctSampler adapts a KMV distinct-counting sketch to the Sampler
// interface. Weight and value are ignored by Add; Sample reports each
// retained hash as an item with Value 1 and P equal to the threshold, so
// SubsetCount-style HT estimation yields the cardinality estimate.
type DistinctSampler struct {
	sk *distinct.Sketch
	// scratch is the reused hash buffer behind AppendSample.
	scratch []float64
}

// WrapDistinct wraps an existing distinct sketch.
func WrapDistinct(sk *distinct.Sketch) *DistinctSampler { return &DistinctSampler{sk: sk} }

// Sketch returns the underlying distinct sketch.
func (d *DistinctSampler) Sketch() *distinct.Sketch { return d.sk }

// Add offers a key; weight and value are ignored.
func (d *DistinctSampler) Add(key uint64, _, _ float64) { d.sk.Add(key) }

// AddBatch offers a batch of keys (weights and values are ignored)
// through the sketch's map-free ingest path with direct calls.
func (d *DistinctSampler) AddBatch(items []Item) {
	sk := d.sk
	for _, it := range items {
		sk.Add(it.Key)
	}
}

// Sample returns the retained hashes as unit-valued samples with P equal to
// the sketch threshold.
func (d *DistinctSampler) Sample() []Sample {
	return d.AppendSample(nil)
}

// AppendSample appends the current sample to dst and returns the extended
// slice; with a reused dst it performs no allocation.
func (d *DistinctSampler) AppendSample(dst []Sample) []Sample {
	t := d.sk.Threshold()
	d.scratch = d.sk.AppendHashes(d.scratch[:0])
	for _, h := range d.scratch {
		dst = append(dst, Sample{Weight: 1, Value: 1, Priority: h, P: t})
	}
	return dst
}

// Threshold returns the (k+1)-th smallest distinct hash seen.
func (d *DistinctSampler) Threshold() float64 { return d.sk.Threshold() }

// CodecName names the registered codec serializing this sampler's sketch.
func (d *DistinctSampler) CodecName() string { return codec.NameDistinct }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (d *DistinctSampler) MarshalBinary() ([]byte, error) { return d.sk.MarshalBinary() }

// UnmarshalSnapshot overwrites the underlying sketch in place from a
// codec payload, reusing its keeper scratch (see SnapshotUnmarshaler).
func (d *DistinctSampler) UnmarshalSnapshot(payload []byte) error {
	return d.sk.UnmarshalBinaryReuse(payload)
}

// Settle compacts the sketch to its canonical layout (see Settler).
func (d *DistinctSampler) Settle() { d.sk.Settle() }

// Reset empties the sampler for reuse as a merge target (see Resetter).
func (d *DistinctSampler) Reset() { d.sk.Reset() }

// Merge folds another DistinctSampler into d.
func (d *DistinctSampler) Merge(other Sampler) error {
	o, ok := other.(*DistinctSampler)
	if !ok {
		return ErrIncompatible
	}
	return d.sk.MergeChecked(o.sk)
}

// WindowSampler adapts the sliding-window sampler to the Sampler
// interface. Add interprets the weight argument as the item's arrival
// time (the window sampler is unweighted); value is ignored. Sample
// returns the improved-threshold uniform sample of the current window.
type WindowSampler struct {
	sk *window.Sampler
	// scratch is the reused item buffer behind AppendSample.
	scratch []window.Item
}

// WrapWindow wraps an existing sliding-window sampler.
func WrapWindow(sk *window.Sampler) *WindowSampler { return &WindowSampler{sk: sk} }

// Sketch returns the underlying window sampler.
func (w *WindowSampler) Sketch() *window.Sampler { return w.sk }

// Add offers an arrival: weight carries the arrival time, value is
// ignored.
func (w *WindowSampler) Add(key uint64, weight, _ float64) { w.sk.Add(key, weight) }

// AddBatch offers a batch of arrivals (weight carries the arrival time)
// with direct calls.
func (w *WindowSampler) AddBatch(items []Item) {
	sk := w.sk
	for _, it := range items {
		sk.Add(it.Key, it.Weight)
	}
}

// Sample returns the improved-threshold sample of the current window, each
// item with P equal to the extraction threshold.
func (w *WindowSampler) Sample() []Sample {
	return w.AppendSample(nil)
}

// AppendSample appends the improved-threshold sample of the current
// window to dst, each item with P equal to the extraction threshold;
// with a reused dst it performs no allocation.
func (w *WindowSampler) AppendSample(dst []Sample) []Sample {
	items, t := w.sk.AppendImprovedSample(w.scratch[:0])
	w.scratch = items
	for _, it := range items {
		dst = append(dst, Sample{Key: it.Key, Weight: 1, Value: 1, Priority: it.R, P: t})
	}
	return dst
}

// Threshold returns the improved extraction threshold.
func (w *WindowSampler) Threshold() float64 { return w.sk.ImprovedThreshold() }

// CodecName names the registered codec serializing this sampler's sketch.
func (w *WindowSampler) CodecName() string { return codec.NameWindow }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (w *WindowSampler) MarshalBinary() ([]byte, error) { return w.sk.MarshalBinary() }

// Merge folds another WindowSampler into w.
func (w *WindowSampler) Merge(other Sampler) error {
	o, ok := other.(*WindowSampler)
	if !ok {
		return ErrIncompatible
	}
	return w.sk.Merge(o.sk)
}

// TopKSampler adapts the Unbiased Space Saving top-k/heavy-hitter sketch
// to the Sampler interface. Add counts one appearance of the key; weight
// and value are ignored (the sketch is a count sampler). Sample reports
// each tracked counter as an item whose Weight and Value are the counter
// value with P = 1 — counters are already unbiased estimates, so the
// generic Horvitz-Thompson subset sum over the sample yields the
// unbiased disaggregated count estimate directly.
type TopKSampler struct {
	sk *topk.UnbiasedSpaceSaving
}

// WrapTopK wraps an existing unbiased space-saving sketch.
func WrapTopK(sk *topk.UnbiasedSpaceSaving) *TopKSampler { return &TopKSampler{sk: sk} }

// Sketch returns the underlying unbiased space-saving sketch.
func (t *TopKSampler) Sketch() *topk.UnbiasedSpaceSaving { return t.sk }

// Add counts one appearance of key; weight and value are ignored.
func (t *TopKSampler) Add(key uint64, _, _ float64) { t.sk.Add(key) }

// AddBatch counts a batch of appearances with direct calls.
func (t *TopKSampler) AddBatch(items []Item) {
	sk := t.sk
	for _, it := range items {
		sk.Add(it.Key)
	}
}

// Sample returns the tracked counters as count-valued samples with P = 1.
func (t *TopKSampler) Sample() []Sample {
	return t.AppendSample(nil)
}

// AppendSample appends the tracked counters (in key order) to dst and
// returns the extended slice.
func (t *TopKSampler) AppendSample(dst []Sample) []Sample {
	for _, r := range t.sk.Counters() {
		c := float64(r.Estimate)
		dst = append(dst, Sample{Key: r.Key, Weight: c, Value: c, P: 1})
	}
	return dst
}

// Threshold returns the smallest tracked counter — the number of
// appearances an untracked item needs before it is likely to take over a
// label (0 while the table is below capacity).
func (t *TopKSampler) Threshold() float64 { return float64(t.sk.MinCount()) }

// CodecName names the registered codec serializing this sampler's sketch.
func (t *TopKSampler) CodecName() string { return codec.NameTopK }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (t *TopKSampler) MarshalBinary() ([]byte, error) { return t.sk.MarshalBinary() }

// Merge folds another TopKSampler into t.
func (t *TopKSampler) Merge(other Sampler) error {
	o, ok := other.(*TopKSampler)
	if !ok {
		return ErrIncompatible
	}
	return t.sk.Merge(o.sk)
}

// VarOptSampler adapts the VarOpt_k variance-optimal weighted sampler to
// the Sampler interface. Sample reports each retained entry with P =
// min(1, w/tau), so generic HT estimation over the sample matches the
// sketch's own SubsetSum.
type VarOptSampler struct {
	sk *varopt.Sketch
}

// WrapVarOpt wraps an existing VarOpt_k sketch.
func WrapVarOpt(sk *varopt.Sketch) *VarOptSampler { return &VarOptSampler{sk: sk} }

// Sketch returns the underlying VarOpt_k sketch.
func (v *VarOptSampler) Sketch() *varopt.Sketch { return v.sk }

// Add offers a weighted item.
func (v *VarOptSampler) Add(key uint64, weight, value float64) { v.sk.Add(key, weight, value) }

// AddBatch offers a batch of weighted items with direct calls.
func (v *VarOptSampler) AddBatch(items []Item) {
	sk := v.sk
	for _, it := range items {
		sk.Add(it.Key, it.Weight, it.Value)
	}
}

// Sample returns the retained entries with P = min(1, w/tau).
func (v *VarOptSampler) Sample() []Sample {
	return v.AppendSample(nil)
}

// AppendSample appends the retained entries to dst and returns the
// extended slice.
func (v *VarOptSampler) AppendSample(dst []Sample) []Sample {
	for _, e := range v.sk.Sample() {
		dst = append(dst, Sample{Key: e.Key, Weight: e.Weight, Value: e.Value, P: v.sk.InclusionProb(e)})
	}
	return dst
}

// Threshold returns tau, the weight below which items are subsampled.
func (v *VarOptSampler) Threshold() float64 { return v.sk.Tau() }

// CodecName names the registered codec serializing this sampler's sketch.
func (v *VarOptSampler) CodecName() string { return codec.NameVarOpt }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (v *VarOptSampler) MarshalBinary() ([]byte, error) { return v.sk.MarshalBinary() }

// Merge folds another VarOptSampler into v.
func (v *VarOptSampler) Merge(other Sampler) error {
	o, ok := other.(*VarOptSampler)
	if !ok {
		return ErrIncompatible
	}
	return v.sk.Merge(o.sk)
}

// DecaySampler adapts the exponentially time-decayed sampler to the
// Sampler interface. AddBatch reads each arrival instant from the batch
// item's Time field verbatim (the decay time axis is caller-owned and
// zero is a valid instant — the axis origin); only the three-argument
// Add, which has no way to carry a time, stamps arrivals from the
// adapter's clock (wall time by default, injectable). Sample reports
// each retained entry with its pseudo-inclusion probability under the
// current log-threshold, so generic HT estimation gives the UNdecayed
// subset sum; decayed aggregates at a query instant come from the
// underlying sketch's DecayedSum/DecayedCount.
type DecaySampler struct {
	sk *decay.Sampler
	// now is the fallback arrival clock in unix seconds.
	now func() float64
}

// WrapDecayed wraps an existing time-decayed sampler with a wall-clock
// fallback for unstamped arrivals.
func WrapDecayed(sk *decay.Sampler) *DecaySampler {
	return &DecaySampler{
		sk:  sk,
		now: func() float64 { return float64(time.Now().UnixNano()) / float64(time.Second) },
	}
}

// SetClock replaces the fallback arrival clock (unix seconds), for
// deterministic tests and stores with synthetic time.
func (d *DecaySampler) SetClock(now func() float64) { d.now = now }

// Sketch returns the underlying time-decayed sampler.
func (d *DecaySampler) Sketch() *decay.Sampler { return d.sk }

// Add offers a weighted item arriving now (the adapter clock).
func (d *DecaySampler) Add(key uint64, weight, value float64) {
	d.sk.Add(key, weight, value, d.now())
}

// AddAt offers a weighted item with an explicit arrival instant.
func (d *DecaySampler) AddAt(key uint64, weight, value, at float64) {
	d.sk.Add(key, weight, value, at)
}

// AddBatch offers a batch of weighted items, reading each item's arrival
// instant from its Time field verbatim.
func (d *DecaySampler) AddBatch(items []Item) {
	sk := d.sk
	for _, it := range items {
		sk.Add(it.Key, it.Weight, it.Value, it.Time)
	}
}

// Sample returns the retained entries with their pseudo-inclusion
// probabilities; Priority carries the adjusted log-priority.
func (d *DecaySampler) Sample() []Sample {
	return d.AppendSample(nil)
}

// AppendSample appends the retained entries to dst and returns the
// extended slice.
func (d *DecaySampler) AppendSample(dst []Sample) []Sample {
	for _, e := range d.sk.Sample() {
		dst = append(dst, Sample{Key: e.Key, Weight: e.Weight, Value: e.Value,
			Priority: e.LogP, P: d.sk.InclusionProb(e)})
	}
	return dst
}

// Threshold returns the adaptive threshold in adjusted log-priority
// space (+inf while the sampler is below capacity).
func (d *DecaySampler) Threshold() float64 { return d.sk.LogThreshold() }

// CodecName names the registered codec serializing this sampler's sketch.
func (d *DecaySampler) CodecName() string { return codec.NameDecay }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (d *DecaySampler) MarshalBinary() ([]byte, error) { return d.sk.MarshalBinary() }

// Merge folds another DecaySampler into d.
func (d *DecaySampler) Merge(other Sampler) error {
	o, ok := other.(*DecaySampler)
	if !ok {
		return ErrIncompatible
	}
	return d.sk.Merge(o.sk)
}

// GroupBySampler adapts the §3.6 grouped distinct counter to the Sampler
// interface. AddBatch reads each item's group from the batch item's
// Group field (zero is a valid group); the three-argument Add, which has
// no way to carry a label, counts the key under group 0. Weight and
// value are ignored (distinct counting). Sample reports every retained
// (group, hash) point as a unit-valued item whose Key is the GROUP
// label, so a Horvitz-Thompson subset count filtered by Key reproduces
// the per-group distinct estimate.
type GroupBySampler struct {
	sk *groupby.Counter
}

// WrapGroupBy wraps an existing grouped distinct counter.
func WrapGroupBy(sk *groupby.Counter) *GroupBySampler { return &GroupBySampler{sk: sk} }

// Sketch returns the underlying grouped distinct counter.
func (g *GroupBySampler) Sketch() *groupby.Counter { return g.sk }

// Add offers a key under group 0; weight and value are ignored.
func (g *GroupBySampler) Add(key uint64, _, _ float64) { g.sk.Add(0, key) }

// AddBatch offers a batch of labelled keys with direct calls.
func (g *GroupBySampler) AddBatch(items []Item) {
	sk := g.sk
	for _, it := range items {
		sk.Add(it.Group, it.Key)
	}
}

// Sample returns the retained (group, hash) points as unit-valued
// samples keyed by group.
func (g *GroupBySampler) Sample() []Sample {
	return g.AppendSample(nil)
}

// AppendSample appends the retained points to dst and returns the
// extended slice. Dedicated groups report P equal to their own
// thresholds, pooled points P equal to Tmax.
func (g *GroupBySampler) AppendSample(dst []Sample) []Sample {
	for _, p := range g.sk.Points() {
		dst = append(dst, Sample{Key: p.Group, Weight: 1, Value: 1, Priority: p.Hash, P: p.P})
	}
	return dst
}

// Threshold returns Tmax, the shared pool's sampling threshold.
func (g *GroupBySampler) Threshold() float64 { return g.sk.Tmax() }

// CodecName names the registered codec serializing this sampler's sketch.
func (g *GroupBySampler) CodecName() string { return codec.NameGroupBy }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (g *GroupBySampler) MarshalBinary() ([]byte, error) { return g.sk.MarshalBinary() }

// Merge folds another GroupBySampler into g.
func (g *GroupBySampler) Merge(other Sampler) error {
	o, ok := other.(*GroupBySampler)
	if !ok {
		return ErrIncompatible
	}
	return g.sk.Merge(o.sk)
}

// StratifiedSampler adapts the §3.7 budgeted multi-stratified sampler to
// the Sampler interface. AddBatch reads each item's per-dimension
// stratum labels from the batch item's Strata field (nil means stratum 0
// everywhere); the three-argument Add lands in stratum 0 of every
// dimension. Weight is ignored; Value is the aggregable quantity. Sample
// reports each retained item with its max-of-strata pseudo-inclusion
// probability, so generic HT estimation over the sample matches the
// sampler's own SubsetSum.
type StratifiedSampler struct {
	sk *stratified.Sampler
}

// WrapStratified wraps an existing multi-stratified sampler.
func WrapStratified(sk *stratified.Sampler) *StratifiedSampler { return &StratifiedSampler{sk: sk} }

// Sketch returns the underlying multi-stratified sampler.
func (s *StratifiedSampler) Sketch() *stratified.Sampler { return s.sk }

// Add offers a value-carrying item in stratum 0 of every dimension;
// weight is ignored.
func (s *StratifiedSampler) Add(key uint64, _, value float64) { s.sk.Add(key, nil, value) }

// AddBatch offers a batch of labelled items with direct calls.
func (s *StratifiedSampler) AddBatch(items []Item) {
	sk := s.sk
	for _, it := range items {
		sk.Add(it.Key, it.Strata, it.Value)
	}
}

// Sample returns the retained items with their pseudo-inclusion
// probabilities.
func (s *StratifiedSampler) Sample() []Sample {
	return s.AppendSample(nil)
}

// AppendSample appends the retained items (in key order) to dst and
// returns the extended slice.
func (s *StratifiedSampler) AppendSample(dst []Sample) []Sample {
	for _, r := range s.sk.Sample() {
		dst = append(dst, Sample{Key: r.Key, Weight: 1, Value: r.Value, Priority: r.Priority, P: r.P})
	}
	return dst
}

// Threshold returns the largest per-stratum threshold (+inf while every
// stratum retains all of its members).
func (s *StratifiedSampler) Threshold() float64 { return s.sk.MaxThreshold() }

// CodecName names the registered codec serializing this sampler's sketch.
func (s *StratifiedSampler) CodecName() string { return codec.NameStratified }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (s *StratifiedSampler) MarshalBinary() ([]byte, error) { return s.sk.MarshalBinary() }

// Merge folds another StratifiedSampler into s.
func (s *StratifiedSampler) Merge(other Sampler) error {
	o, ok := other.(*StratifiedSampler)
	if !ok {
		return ErrIncompatible
	}
	return s.sk.Merge(o.sk)
}
