package engine

import (
	"errors"
	"fmt"
	"math"

	"ats/internal/bottomk"
	"ats/internal/codec"
	"ats/internal/core"
	"ats/internal/distinct"
	"ats/internal/window"
)

// ErrIncompatible reports an attempt to merge samplers of different
// concrete types.
var ErrIncompatible = errors.New("engine: cannot merge samplers of different types")

// Compile-time interface conformance of the adapters.
var (
	_ Sampler        = (*BottomKSampler)(nil)
	_ Sampler        = (*DistinctSampler)(nil)
	_ Sampler        = (*WindowSampler)(nil)
	_ BatchAdder     = (*BottomKSampler)(nil)
	_ BatchAdder     = (*DistinctSampler)(nil)
	_ BatchAdder     = (*WindowSampler)(nil)
	_ SampleAppender = (*BottomKSampler)(nil)
	_ SampleAppender = (*DistinctSampler)(nil)
	_ SampleAppender = (*WindowSampler)(nil)

	_ SnapshotMarshaler = (*BottomKSampler)(nil)
	_ SnapshotMarshaler = (*DistinctSampler)(nil)
	_ SnapshotMarshaler = (*WindowSampler)(nil)
)

// WrapDecoded wraps a sketch decoded by the codec registry back into its
// engine adapter, dispatching on the registered codec name. It is the
// inverse of the SnapshotMarshaler hooks and the entry point the store's
// Restore path uses.
func WrapDecoded(name string, v any) (Sampler, error) {
	switch name {
	case codec.NameBottomK:
		if sk, ok := v.(*bottomk.Sketch); ok {
			return WrapBottomK(sk), nil
		}
	case codec.NameDistinct:
		if sk, ok := v.(*distinct.Sketch); ok {
			return WrapDistinct(sk), nil
		}
	case codec.NameWindow:
		if sk, ok := v.(*window.Sampler); ok {
			return WrapWindow(sk), nil
		}
	default:
		return nil, fmt.Errorf("engine: no sampler adapter for codec %q", name)
	}
	return nil, fmt.Errorf("engine: codec %q decoded unexpected type %T", name, v)
}

// BottomKSampler adapts a bottom-k sketch to the Sampler interface.
type BottomKSampler struct {
	sk *bottomk.Sketch
	// scratch is the reused entry buffer behind AppendSample.
	scratch []bottomk.Entry
}

// WrapBottomK wraps an existing bottom-k sketch.
func WrapBottomK(sk *bottomk.Sketch) *BottomKSampler { return &BottomKSampler{sk: sk} }

// Sketch returns the underlying bottom-k sketch.
func (b *BottomKSampler) Sketch() *bottomk.Sketch { return b.sk }

// Add offers a weighted item.
func (b *BottomKSampler) Add(key uint64, weight, value float64) { b.sk.Add(key, weight, value) }

// AddBatch offers a batch of weighted items through the sketch's
// amortized O(1) ingest path with direct (devirtualized) calls.
func (b *BottomKSampler) AddBatch(items []Item) {
	sk := b.sk
	for _, it := range items {
		sk.Add(it.Key, it.Weight, it.Value)
	}
}

// Sample returns the retained entries with pseudo-inclusion probabilities
// min(1, w·T) under the current threshold.
func (b *BottomKSampler) Sample() []Sample {
	return b.AppendSample(nil)
}

// AppendSample appends the current sample to dst and returns the extended
// slice; with a reused dst it performs no allocation.
func (b *BottomKSampler) AppendSample(dst []Sample) []Sample {
	t := b.sk.Threshold()
	b.scratch = b.sk.AppendSample(b.scratch[:0])
	for _, e := range b.scratch {
		p := 1.0
		if !math.IsInf(t, 1) {
			p = core.InclusionProb(e.Weight, t)
		}
		dst = append(dst, Sample{Key: e.Key, Weight: e.Weight, Value: e.Value, Priority: e.Priority, P: p})
	}
	return dst
}

// Threshold returns the (k+1)-th smallest priority seen.
func (b *BottomKSampler) Threshold() float64 { return b.sk.Threshold() }

// CodecName names the registered codec serializing this sampler's sketch.
func (b *BottomKSampler) CodecName() string { return codec.NameBottomK }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (b *BottomKSampler) MarshalBinary() ([]byte, error) { return b.sk.MarshalBinary() }

// Merge folds another BottomKSampler into b.
func (b *BottomKSampler) Merge(other Sampler) error {
	o, ok := other.(*BottomKSampler)
	if !ok {
		return ErrIncompatible
	}
	return b.sk.Merge(o.sk)
}

// DistinctSampler adapts a KMV distinct-counting sketch to the Sampler
// interface. Weight and value are ignored by Add; Sample reports each
// retained hash as an item with Value 1 and P equal to the threshold, so
// SubsetCount-style HT estimation yields the cardinality estimate.
type DistinctSampler struct {
	sk *distinct.Sketch
	// scratch is the reused hash buffer behind AppendSample.
	scratch []float64
}

// WrapDistinct wraps an existing distinct sketch.
func WrapDistinct(sk *distinct.Sketch) *DistinctSampler { return &DistinctSampler{sk: sk} }

// Sketch returns the underlying distinct sketch.
func (d *DistinctSampler) Sketch() *distinct.Sketch { return d.sk }

// Add offers a key; weight and value are ignored.
func (d *DistinctSampler) Add(key uint64, _, _ float64) { d.sk.Add(key) }

// AddBatch offers a batch of keys (weights and values are ignored)
// through the sketch's map-free ingest path with direct calls.
func (d *DistinctSampler) AddBatch(items []Item) {
	sk := d.sk
	for _, it := range items {
		sk.Add(it.Key)
	}
}

// Sample returns the retained hashes as unit-valued samples with P equal to
// the sketch threshold.
func (d *DistinctSampler) Sample() []Sample {
	return d.AppendSample(nil)
}

// AppendSample appends the current sample to dst and returns the extended
// slice; with a reused dst it performs no allocation.
func (d *DistinctSampler) AppendSample(dst []Sample) []Sample {
	t := d.sk.Threshold()
	d.scratch = d.sk.AppendHashes(d.scratch[:0])
	for _, h := range d.scratch {
		dst = append(dst, Sample{Weight: 1, Value: 1, Priority: h, P: t})
	}
	return dst
}

// Threshold returns the (k+1)-th smallest distinct hash seen.
func (d *DistinctSampler) Threshold() float64 { return d.sk.Threshold() }

// CodecName names the registered codec serializing this sampler's sketch.
func (d *DistinctSampler) CodecName() string { return codec.NameDistinct }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (d *DistinctSampler) MarshalBinary() ([]byte, error) { return d.sk.MarshalBinary() }

// Merge folds another DistinctSampler into d.
func (d *DistinctSampler) Merge(other Sampler) error {
	o, ok := other.(*DistinctSampler)
	if !ok {
		return ErrIncompatible
	}
	return d.sk.MergeChecked(o.sk)
}

// WindowSampler adapts the sliding-window sampler to the Sampler
// interface. Add interprets the weight argument as the item's arrival
// time (the window sampler is unweighted); value is ignored. Sample
// returns the improved-threshold uniform sample of the current window.
type WindowSampler struct {
	sk *window.Sampler
	// scratch is the reused item buffer behind AppendSample.
	scratch []window.Item
}

// WrapWindow wraps an existing sliding-window sampler.
func WrapWindow(sk *window.Sampler) *WindowSampler { return &WindowSampler{sk: sk} }

// Sketch returns the underlying window sampler.
func (w *WindowSampler) Sketch() *window.Sampler { return w.sk }

// Add offers an arrival: weight carries the arrival time, value is
// ignored.
func (w *WindowSampler) Add(key uint64, weight, _ float64) { w.sk.Add(key, weight) }

// AddBatch offers a batch of arrivals (weight carries the arrival time)
// with direct calls.
func (w *WindowSampler) AddBatch(items []Item) {
	sk := w.sk
	for _, it := range items {
		sk.Add(it.Key, it.Weight)
	}
}

// Sample returns the improved-threshold sample of the current window, each
// item with P equal to the extraction threshold.
func (w *WindowSampler) Sample() []Sample {
	return w.AppendSample(nil)
}

// AppendSample appends the improved-threshold sample of the current
// window to dst, each item with P equal to the extraction threshold;
// with a reused dst it performs no allocation.
func (w *WindowSampler) AppendSample(dst []Sample) []Sample {
	items, t := w.sk.AppendImprovedSample(w.scratch[:0])
	w.scratch = items
	for _, it := range items {
		dst = append(dst, Sample{Key: it.Key, Weight: 1, Value: 1, Priority: it.R, P: t})
	}
	return dst
}

// Threshold returns the improved extraction threshold.
func (w *WindowSampler) Threshold() float64 { return w.sk.ImprovedThreshold() }

// CodecName names the registered codec serializing this sampler's sketch.
func (w *WindowSampler) CodecName() string { return codec.NameWindow }

// MarshalBinary serializes the underlying sketch (codec payload form).
func (w *WindowSampler) MarshalBinary() ([]byte, error) { return w.sk.MarshalBinary() }

// Merge folds another WindowSampler into w.
func (w *WindowSampler) Merge(other Sampler) error {
	o, ok := other.(*WindowSampler)
	if !ok {
		return ErrIncompatible
	}
	return w.sk.Merge(o.sk)
}
