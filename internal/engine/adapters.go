package engine

import (
	"errors"
	"math"

	"ats/internal/bottomk"
	"ats/internal/core"
	"ats/internal/distinct"
	"ats/internal/window"
)

// ErrIncompatible reports an attempt to merge samplers of different
// concrete types.
var ErrIncompatible = errors.New("engine: cannot merge samplers of different types")

// Compile-time interface conformance of the adapters.
var (
	_ Sampler = (*BottomKSampler)(nil)
	_ Sampler = (*DistinctSampler)(nil)
	_ Sampler = (*WindowSampler)(nil)
)

// BottomKSampler adapts a bottom-k sketch to the Sampler interface.
type BottomKSampler struct {
	sk *bottomk.Sketch
}

// WrapBottomK wraps an existing bottom-k sketch.
func WrapBottomK(sk *bottomk.Sketch) *BottomKSampler { return &BottomKSampler{sk: sk} }

// Sketch returns the underlying bottom-k sketch.
func (b *BottomKSampler) Sketch() *bottomk.Sketch { return b.sk }

// Add offers a weighted item.
func (b *BottomKSampler) Add(key uint64, weight, value float64) { b.sk.Add(key, weight, value) }

// Sample returns the retained entries with pseudo-inclusion probabilities
// min(1, w·T) under the current threshold.
func (b *BottomKSampler) Sample() []Sample {
	t := b.sk.Threshold()
	entries := b.sk.Sample()
	out := make([]Sample, len(entries))
	for i, e := range entries {
		p := 1.0
		if !math.IsInf(t, 1) {
			p = core.InclusionProb(e.Weight, t)
		}
		out[i] = Sample{Key: e.Key, Weight: e.Weight, Value: e.Value, Priority: e.Priority, P: p}
	}
	return out
}

// Threshold returns the (k+1)-th smallest priority seen.
func (b *BottomKSampler) Threshold() float64 { return b.sk.Threshold() }

// Merge folds another BottomKSampler into b.
func (b *BottomKSampler) Merge(other Sampler) error {
	o, ok := other.(*BottomKSampler)
	if !ok {
		return ErrIncompatible
	}
	return b.sk.Merge(o.sk)
}

// DistinctSampler adapts a KMV distinct-counting sketch to the Sampler
// interface. Weight and value are ignored by Add; Sample reports each
// retained hash as an item with Value 1 and P equal to the threshold, so
// SubsetCount-style HT estimation yields the cardinality estimate.
type DistinctSampler struct {
	sk *distinct.Sketch
}

// WrapDistinct wraps an existing distinct sketch.
func WrapDistinct(sk *distinct.Sketch) *DistinctSampler { return &DistinctSampler{sk: sk} }

// Sketch returns the underlying distinct sketch.
func (d *DistinctSampler) Sketch() *distinct.Sketch { return d.sk }

// Add offers a key; weight and value are ignored.
func (d *DistinctSampler) Add(key uint64, _, _ float64) { d.sk.Add(key) }

// Sample returns the retained hashes as unit-valued samples with P equal to
// the sketch threshold.
func (d *DistinctSampler) Sample() []Sample {
	t := d.sk.Threshold()
	hs := d.sk.Hashes()
	out := make([]Sample, len(hs))
	for i, h := range hs {
		out[i] = Sample{Weight: 1, Value: 1, Priority: h, P: t}
	}
	return out
}

// Threshold returns the (k+1)-th smallest distinct hash seen.
func (d *DistinctSampler) Threshold() float64 { return d.sk.Threshold() }

// Merge folds another DistinctSampler into d.
func (d *DistinctSampler) Merge(other Sampler) error {
	o, ok := other.(*DistinctSampler)
	if !ok {
		return ErrIncompatible
	}
	return d.sk.MergeChecked(o.sk)
}

// WindowSampler adapts the sliding-window sampler to the Sampler
// interface. Add interprets the weight argument as the item's arrival
// time (the window sampler is unweighted); value is ignored. Sample
// returns the improved-threshold uniform sample of the current window.
type WindowSampler struct {
	sk *window.Sampler
}

// WrapWindow wraps an existing sliding-window sampler.
func WrapWindow(sk *window.Sampler) *WindowSampler { return &WindowSampler{sk: sk} }

// Sketch returns the underlying window sampler.
func (w *WindowSampler) Sketch() *window.Sampler { return w.sk }

// Add offers an arrival: weight carries the arrival time, value is
// ignored.
func (w *WindowSampler) Add(key uint64, weight, _ float64) { w.sk.Add(key, weight) }

// Sample returns the improved-threshold sample of the current window, each
// item with P equal to the extraction threshold.
func (w *WindowSampler) Sample() []Sample {
	items, t := w.sk.ImprovedSample()
	out := make([]Sample, len(items))
	for i, it := range items {
		out[i] = Sample{Key: it.Key, Weight: 1, Value: 1, Priority: it.R, P: t}
	}
	return out
}

// Threshold returns the improved extraction threshold.
func (w *WindowSampler) Threshold() float64 { return w.sk.ImprovedThreshold() }

// Merge folds another WindowSampler into w.
func (w *WindowSampler) Merge(other Sampler) error {
	o, ok := other.(*WindowSampler)
	if !ok {
		return ErrIncompatible
	}
	return w.sk.Merge(o.sk)
}
