package engine

// Item is one weighted stream record, the unit of the batched ingest path.
type Item struct {
	Key    uint64
	Weight float64
	Value  float64
	// Time is the arrival instant in seconds on the caller-owned decay
	// time axis, consumed by time-aware samplers (the decayed sampler);
	// zero is a valid instant (the axis origin). Time-oblivious samplers
	// ignore it.
	Time float64
	// Group is the grouping attribute label, consumed by grouped samplers
	// (the group-by distinct counter); zero is a valid group. Group-
	// oblivious samplers ignore it.
	Group uint64
	// Strata are the per-dimension stratum labels, consumed by stratified
	// samplers; nil means stratum 0 in every dimension. Stratum-oblivious
	// samplers ignore it.
	Strata []uint32
}

// Sample is one sampled item together with the pseudo-inclusion
// probability implied by the sampler's threshold, ready for
// Horvitz-Thompson estimation.
type Sample struct {
	Key      uint64
	Weight   float64
	Value    float64
	Priority float64
	// P is the pseudo-inclusion probability F(T) of the item under the
	// sampler's current threshold; it is in (0, 1].
	P float64
}

// Sampler is the unified contract the engine shards: a weighted sampler
// with an adaptive threshold and merge support. The concrete
// implementations in this package adapt the internal sketches; Merge must
// reject a Sampler of a different concrete type or incompatible
// configuration (k, seed, window length) with an error.
type Sampler interface {
	// Add offers one weighted item. Samplers that ignore a field (e.g.
	// distinct counting ignores weight and value) document it.
	Add(key uint64, weight, value float64)
	// Sample returns the current sample with inclusion probabilities.
	Sample() []Sample
	// Threshold returns the current adaptive threshold.
	Threshold() float64
	// Merge folds another compatible sampler into the receiver. The
	// argument's logical state is never modified (its internal
	// representation may settle).
	Merge(other Sampler) error
}

// BatchAdder is implemented by samplers with a dedicated bulk-ingest
// path: one devirtualized call per batch instead of one interface call
// per item, feeding the underlying sketch's amortized O(1) keeper
// directly. The sharded engine routes AddBatch through it when available.
type BatchAdder interface {
	AddBatch(items []Item)
}

// SampleAppender is implemented by samplers with a zero-allocation query
// path: the current sample is appended to a caller-reused buffer.
type SampleAppender interface {
	AppendSample(dst []Sample) []Sample
}

// SnapshotMarshaler is implemented by samplers whose state can be
// serialized through the universal codec registry (internal/codec):
// CodecName names the registered codec, MarshalBinary produces its
// payload. The store's whole-keyspace Snapshot walks collapsed bucket
// samplers through this interface, so persistence never depends on the
// concrete sketch type.
type SnapshotMarshaler interface {
	CodecName() string
	MarshalBinary() ([]byte, error)
}

// Settler is implemented by samplers whose internal entry order is
// lazily compacted and order-sensitive at query time (float accumulation
// in the estimators follows it). The store's query planner settles its
// merge target at every plan boundary so that a target rebuilt from a
// cached serialized prefix continues bit-identically to one that merged
// the buckets directly. Samplers whose state is fully canonical do not
// implement it.
type Settler interface {
	Settle()
}

// SnapshotUnmarshaler is implemented by samplers that can overwrite
// their state in place from a codec payload (the inverse of
// SnapshotMarshaler's MarshalBinary), reusing the receiver's existing
// buffers instead of allocating a fresh sketch. The decoded state must
// be bit-identical to a fresh decode of the same payload. The store's
// plan cache decodes a cached envelope on every warm query, so this is
// the hot-path counterpart of WrapDecoded; only samplers that also
// implement Resetter (their state carries no construction-time
// randomness a reused instance could lose) implement it. On error the
// receiver must be treated as undefined and discarded.
type SnapshotUnmarshaler interface {
	UnmarshalSnapshot(payload []byte) error
}

// Resetter is implemented by samplers that can be emptied for reuse as a
// collapse/merge target, keeping allocated buffers. Reset must leave the
// sampler behaviorally indistinguishable from a freshly constructed one;
// only samplers whose collapse targets carry no per-bucket randomness
// (so a reset target is valid for any bucket range) implement it. The
// store keeps one reset target per series to take allocations off the
// range-query path.
type Resetter interface {
	Reset()
}
