// Package engine provides a concurrent, sharded sampling engine over the
// library's mergeable sketches.
//
// The single-threaded sketches (bottom-k, distinct, sliding-window) are
// deliberately lock-free and cheap; the engine scales them to multi-core
// ingest by hash-partitioning keys across N shards, each shard owning an
// independent sketch behind its own mutex. A batched AddBatch path groups
// items by shard first and takes each shard lock once per batch, so lock
// traffic is amortized over hundreds of items. Snapshot (or the typed
// facades' Collapse) merges the shards into one sketch for estimation.
//
// Correctness rests on the paper's mergeability results: bottom-k and KMV
// sketches depend only on the multiset of (key, priority) pairs, and
// priorities are derived from a seeded hash of the key — not from the order
// of arrival — so the collapsed sketch is *identical* to the sketch of the
// sequential stream, bit for bit, regardless of how items were partitioned
// or interleaved. The per-shard thresholds are each substitutable, and the
// merged threshold is again the (k+1)-th smallest priority of the union,
// so every Horvitz-Thompson estimator stays unbiased (§2.5, §3.5 of Ting,
// SIGMOD 2022).
//
// Samplers whose priorities come from an RNG stream rather than a key hash
// (the sliding-window sampler) are sharded with forked deterministic RNG
// streams: results are reproducible for a fixed shard count, but a sharded
// run and a sequential run consume randomness differently, so their
// samples differ (both are valid adaptive threshold samples).
package engine

// Item is one weighted stream record, the unit of the batched ingest path.
type Item struct {
	Key    uint64
	Weight float64
	Value  float64
}

// Sample is one sampled item together with the pseudo-inclusion
// probability implied by the sampler's threshold, ready for
// Horvitz-Thompson estimation.
type Sample struct {
	Key      uint64
	Weight   float64
	Value    float64
	Priority float64
	// P is the pseudo-inclusion probability F(T) of the item under the
	// sampler's current threshold; it is in (0, 1].
	P float64
}

// Sampler is the unified contract the engine shards: a weighted sampler
// with an adaptive threshold and merge support. The concrete
// implementations in this package adapt the internal sketches; Merge must
// reject a Sampler of a different concrete type or incompatible
// configuration (k, seed, window length) with an error.
type Sampler interface {
	// Add offers one weighted item. Samplers that ignore a field (e.g.
	// distinct counting ignores weight and value) document it.
	Add(key uint64, weight, value float64)
	// Sample returns the current sample with inclusion probabilities.
	Sample() []Sample
	// Threshold returns the current adaptive threshold.
	Threshold() float64
	// Merge folds another compatible sampler into the receiver. The
	// argument's logical state is never modified (its internal
	// representation may settle).
	Merge(other Sampler) error
}

// BatchAdder is implemented by samplers with a dedicated bulk-ingest
// path: one devirtualized call per batch instead of one interface call
// per item, feeding the underlying sketch's amortized O(1) keeper
// directly. The sharded engine routes AddBatch through it when available.
type BatchAdder interface {
	AddBatch(items []Item)
}

// SampleAppender is implemented by samplers with a zero-allocation query
// path: the current sample is appended to a caller-reused buffer.
type SampleAppender interface {
	AppendSample(dst []Sample) []Sample
}

// SnapshotMarshaler is implemented by samplers whose state can be
// serialized through the universal codec registry (internal/codec):
// CodecName names the registered codec, MarshalBinary produces its
// payload. The store's whole-keyspace Snapshot walks collapsed bucket
// samplers through this interface, so persistence never depends on the
// concrete sketch type.
type SnapshotMarshaler interface {
	CodecName() string
	MarshalBinary() ([]byte, error)
}
