package engine

import (
	"math"
	"sort"
	"testing"

	"ats/internal/bottomk"
	"ats/internal/distinct"
	"ats/internal/stream"
)

// zipfItems generates a seeded Zipf-keyed weighted stream shared by the
// determinism tests.
func zipfItems(n int, seed uint64) []Item {
	z := stream.NewZipf(10000, 1.1, seed)
	rng := stream.NewRNG(seed ^ 0xABCD)
	items := make([]Item, n)
	for i := range items {
		w := 1 + 10*rng.Float64()
		items[i] = Item{Key: z.Next(), Weight: w, Value: w}
	}
	return items
}

func sortedEntries(es []bottomk.Entry) []bottomk.Entry {
	out := append([]bottomk.Entry(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TestShardedBottomKMatchesSequential: because priorities are hash-derived,
// the collapsed sharded sketch must equal the sequential sketch exactly —
// same threshold, same sample, same N — for any shard count.
func TestShardedBottomKMatchesSequential(t *testing.T) {
	const k, seed = 64, 7
	items := zipfItems(20000, seed)

	seq := bottomk.New(k, seed)
	for _, it := range items {
		seq.Add(it.Key, it.Weight, it.Value)
	}

	for _, shards := range []int{1, 2, 3, 8} {
		eng := NewShardedBottomK(k, seed, shards)
		// Mix the single-item and batched paths.
		eng.AddBatch(items[:len(items)/2])
		for _, it := range items[len(items)/2:] {
			eng.Sharded.Add(it.Key, it.Weight, it.Value)
		}
		col := eng.Collapse()
		if col.Threshold() != seq.Threshold() {
			t.Errorf("shards=%d: threshold %v != sequential %v", shards, col.Threshold(), seq.Threshold())
		}
		if col.N() != seq.N() {
			t.Errorf("shards=%d: N %d != sequential %d", shards, col.N(), seq.N())
		}
		a, b := sortedEntries(col.Sample()), sortedEntries(seq.Sample())
		if len(a) != len(b) {
			t.Fatalf("shards=%d: sample size %d != %d", shards, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shards=%d: sample[%d] = %+v != %+v", shards, i, a[i], b[i])
			}
		}
		gotSum, _ := eng.SubsetSum(nil)
		wantSum, _ := seq.SubsetSum(nil)
		if math.Abs(gotSum-wantSum) > 1e-9*math.Abs(wantSum) {
			t.Errorf("shards=%d: SubsetSum %v != %v", shards, gotSum, wantSum)
		}
	}
}

func TestShardedDistinctMatchesSequential(t *testing.T) {
	const k, seed = 128, 11
	z := stream.NewZipf(50000, 0.8, seed)
	keys := make([]uint64, 60000)
	for i := range keys {
		keys[i] = z.Next()
	}

	seq := distinct.NewSketch(k, seed)
	for _, key := range keys {
		seq.Add(key)
	}

	for _, shards := range []int{1, 4, 7} {
		eng := NewShardedDistinct(k, seed, shards)
		eng.AddKeys(keys[:30000])
		for _, key := range keys[30000:] {
			eng.AddKey(key)
		}
		col := eng.Collapse()
		if col.Threshold() != seq.Threshold() {
			t.Errorf("shards=%d: threshold %v != %v", shards, col.Threshold(), seq.Threshold())
		}
		if got, want := eng.Estimate(), seq.Estimate(); got != want {
			t.Errorf("shards=%d: estimate %v != %v", shards, got, want)
		}
		a, b := col.Hashes(), seq.Hashes()
		sort.Float64s(a)
		sort.Float64s(b)
		if len(a) != len(b) {
			t.Fatalf("shards=%d: %d hashes != %d", shards, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shards=%d: hash[%d] %v != %v", shards, i, a[i], b[i])
			}
		}
	}
}

// TestShardedWindowCollapse checks the sharded window sampler's collapsed
// sample: capacity respected, items within the window, and the HT count
// estimate |sample|/t close to the true window population on average.
func TestShardedWindowCollapse(t *testing.T) {
	const (
		k      = 32
		delta  = 1.0
		trials = 60
		perWin = 400
	)
	var relSum float64
	for trial := 0; trial < trials; trial++ {
		eng := NewShardedWindow(k, delta, uint64(trial+1), 4)
		// Arrivals over 3 windows at uniform spacing, round-robin across
		// producers (each producer sees non-decreasing times).
		n := 3 * perWin
		for i := 0; i < n; i++ {
			eng.Observe(uint64(i), float64(i)*3.0/float64(n))
		}
		col := eng.Collapse()
		items, thr := col.ImprovedSample()
		if len(items) > 4*k {
			t.Fatalf("trial %d: %d current items exceed total capacity", trial, len(items))
		}
		now := col.Now()
		for _, it := range items {
			if it.Time <= now-delta || it.Time > now {
				t.Fatalf("trial %d: sampled item at %v outside window (%v, %v]", trial, it.Time, now-delta, now)
			}
			if it.R >= thr {
				t.Fatalf("trial %d: sampled priority %v >= threshold %v", trial, it.R, thr)
			}
		}
		if thr <= 0 || thr > 1 {
			t.Fatalf("trial %d: threshold %v out of range", trial, thr)
		}
		est := float64(len(items)) / thr
		relSum += est / float64(perWin)
	}
	if mean := relSum / trials; math.Abs(mean-1) > 0.15 {
		t.Errorf("window HT count estimate biased: mean ratio %v", mean)
	}
}

func TestAddBatchEquivalentToAdd(t *testing.T) {
	const k, seed = 32, 3
	items := zipfItems(5000, seed)
	a := NewShardedBottomK(k, seed, 4)
	b := NewShardedBottomK(k, seed, 4)
	a.AddBatch(items)
	for _, it := range items {
		b.Sharded.Add(it.Key, it.Weight, it.Value)
	}
	if at, bt := a.Collapse().Threshold(), b.Collapse().Threshold(); at != bt {
		t.Errorf("AddBatch threshold %v != Add threshold %v", at, bt)
	}
}

func TestMergeIncompatibleTypes(t *testing.T) {
	bk := WrapBottomK(bottomk.New(4, 1))
	ds := WrapDistinct(distinct.NewSketch(4, 1))
	if err := bk.Merge(ds); err == nil {
		t.Error("bottom-k merged a distinct sampler")
	}
	if err := ds.Merge(bk); err == nil {
		t.Error("distinct merged a bottom-k sampler")
	}
	d2 := WrapDistinct(distinct.NewSketch(4, 2))
	if err := ds.Merge(d2); err == nil {
		t.Error("distinct merged a sketch with a different seed")
	}
}

func TestSamplerInterfaceSamples(t *testing.T) {
	bk := WrapBottomK(bottomk.New(8, 1))
	for i := 0; i < 100; i++ {
		bk.Add(uint64(i), 1+float64(i%5), 1)
	}
	for _, s := range bk.Sample() {
		if !(s.P > 0 && s.P <= 1) {
			t.Fatalf("bottom-k sample P = %v", s.P)
		}
		if s.Priority >= bk.Threshold() {
			t.Fatalf("sampled priority %v >= threshold %v", s.Priority, bk.Threshold())
		}
	}
	ds := WrapDistinct(distinct.NewSketch(8, 1))
	for i := 0; i < 100; i++ {
		ds.Add(uint64(i), 0, 0)
	}
	for _, s := range ds.Sample() {
		if s.P != ds.Threshold() {
			t.Fatalf("distinct sample P = %v, want threshold %v", s.P, ds.Threshold())
		}
	}
}

func TestSnapshotFactoryMismatch(t *testing.T) {
	// A factory whose collapse target is a different type must surface an
	// error from Snapshot rather than panic.
	f := func(i int) Sampler {
		if i < 0 {
			return WrapDistinct(distinct.NewSketch(4, 1))
		}
		return WrapBottomK(bottomk.New(4, 1))
	}
	e := NewSharded(2, f)
	if _, err := e.Snapshot(); err == nil {
		t.Error("Snapshot with mismatched collapse target must fail")
	}
}

func TestDefaultShardCount(t *testing.T) {
	e := NewShardedBottomK(8, 1, 0)
	if e.NumShards() < 1 {
		t.Errorf("default shard count %d", e.NumShards())
	}
}
