package engine

import (
	"runtime"
	"sync"

	"ats/internal/stream"
)

// shardSalt seeds the key-to-shard routing hash. It is a fixed constant,
// distinct from any sketch seed a caller would plausibly use, so routing is
// stable across processes. Any deterministic partition of keys is correct —
// merged sketches depend only on the multiset of (key, priority) pairs —
// the salt only affects load balance.
const shardSalt = 0x9e2b7ca6f4a3d815

// Factory builds the sampler owned by one shard. It is called with the
// shard index in [0, shards) at construction time and with -1 to build the
// collapse target of Snapshot. All samplers a factory produces must be
// mutually mergeable (same concrete type, same k/seed/configuration up to
// per-shard RNG streams).
type Factory func(shard int) Sampler

// Sharded is a concurrent sampling engine: N shards, each an independent
// Sampler behind its own mutex. Keys are hash-partitioned across shards so
// all occurrences of a key land on the same shard. The zero value is not
// usable; construct with NewSharded.
//
// Add and AddBatch may be called from any number of goroutines. Snapshot
// may run concurrently with writers: it locks one shard at a time, so it
// observes each shard at a (possibly different) consistent point — exactly
// the semantics of merging independently maintained distributed sketches.
type Sharded struct {
	shards  []*shard
	factory Factory
}

type shard struct {
	mu sync.Mutex
	s  Sampler
	// pad keeps neighbouring shard locks off one cache line under heavy
	// multi-core contention.
	_ [40]byte
}

func defaultShards() int { return runtime.GOMAXPROCS(0) }

// NewSharded returns an engine with the given shard count; shards <= 0
// defaults to GOMAXPROCS.
func NewSharded(shards int, factory Factory) *Sharded {
	if shards <= 0 {
		shards = defaultShards()
	}
	e := &Sharded{shards: make([]*shard, shards), factory: factory}
	for i := range e.shards {
		e.shards[i] = &shard{s: factory(i)}
	}
	return e
}

// NumShards returns the shard count.
func (e *Sharded) NumShards() int { return len(e.shards) }

func (e *Sharded) shardIndex(key uint64) int {
	return int(stream.Hash64(key, shardSalt) % uint64(len(e.shards)))
}

// Add offers one item, locking only the owning shard.
func (e *Sharded) Add(key uint64, weight, value float64) {
	sh := e.shards[e.shardIndex(key)]
	sh.mu.Lock()
	sh.s.Add(key, weight, value)
	sh.mu.Unlock()
}

// AddBatch offers a batch of items, grouping them by shard first so each
// shard lock is taken at most once per call. This is the high-throughput
// ingest path: per-item locking cost is amortized over the batch, and
// samplers implementing BatchAdder ingest the whole group with direct
// calls into their keeper-backed sketches instead of one interface call
// per item.
func (e *Sharded) AddBatch(items []Item) {
	n := len(e.shards)
	if n == 1 {
		sh := e.shards[0]
		sh.mu.Lock()
		addGroup(sh.s, items)
		sh.mu.Unlock()
		return
	}
	// Two passes: route every item once, then bucket into one backing
	// array using counting-sort offsets.
	counts := make([]int, n)
	idx := make([]int32, len(items))
	for j, it := range items {
		i := e.shardIndex(it.Key)
		idx[j] = int32(i)
		counts[i]++
	}
	offsets := make([]int, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + counts[i]
	}
	grouped := make([]Item, len(items))
	next := make([]int, n)
	copy(next, offsets[:n])
	for j, it := range items {
		i := idx[j]
		grouped[next[i]] = it
		next[i]++
	}
	for i := 0; i < n; i++ {
		if counts[i] == 0 {
			continue
		}
		sh := e.shards[i]
		sh.mu.Lock()
		addGroup(sh.s, grouped[offsets[i]:offsets[i+1]])
		sh.mu.Unlock()
	}
}

// addGroup feeds one shard's slice of a batch into its sampler, using the
// sampler's bulk path when it has one. Callers hold the shard lock.
func addGroup(s Sampler, items []Item) {
	if ba, ok := s.(BatchAdder); ok {
		ba.AddBatch(items)
		return
	}
	for _, it := range items {
		s.Add(it.Key, it.Weight, it.Value)
	}
}

// Snapshot merges every shard into a fresh sampler built by factory(-1)
// and returns it; the shards' logical state is unchanged (merging may
// settle a shard's internal representation, which is why even read-style
// access takes the shard lock). Writers may run concurrently: each shard
// is locked only while it is being merged.
func (e *Sharded) Snapshot() (Sampler, error) {
	out := e.factory(-1)
	for _, sh := range e.shards {
		sh.mu.Lock()
		err := out.Merge(sh.s)
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEachShard runs fn on every shard's sampler under that shard's lock,
// for instrumentation (per-shard thresholds, sizes). fn must not retain
// the sampler.
func (e *Sharded) ForEachShard(fn func(shard int, s Sampler)) {
	for i, sh := range e.shards {
		sh.mu.Lock()
		fn(i, sh.s)
		sh.mu.Unlock()
	}
}
