package engine

import (
	"ats/internal/bottomk"
	"ats/internal/distinct"
	"ats/internal/stream"
	"ats/internal/window"
)

// ShardedBottomK is a concurrent bottom-k sketch: a Sharded engine whose
// shards are coordinated bottom-k sketches sharing one seed. Because
// priorities are hash-derived, Collapse returns exactly the sketch a
// single-threaded run over the same stream would produce.
type ShardedBottomK struct {
	*Sharded
	k    int
	seed uint64
}

// NewShardedBottomK returns a sharded bottom-k engine with sample size k;
// shards <= 0 defaults to GOMAXPROCS.
func NewShardedBottomK(k int, seed uint64, shards int) *ShardedBottomK {
	factory := func(int) Sampler { return WrapBottomK(bottomk.New(k, seed)) }
	return &ShardedBottomK{Sharded: NewSharded(shards, factory), k: k, seed: seed}
}

// Collapse merges the shards into one bottom-k sketch (the shards are left
// untouched).
func (s *ShardedBottomK) Collapse() *bottomk.Sketch {
	snap, err := s.Snapshot()
	if err != nil {
		// All shards come from one factory; merge cannot fail.
		panic("engine: bottom-k snapshot failed: " + err.Error())
	}
	return snap.(*BottomKSampler).Sketch()
}

// Threshold returns the collapsed adaptive threshold.
func (s *ShardedBottomK) Threshold() float64 { return s.Collapse().Threshold() }

// Sample returns the collapsed sample.
func (s *ShardedBottomK) Sample() []bottomk.Entry { return s.Collapse().Sample() }

// SubsetSum returns the HT estimate of Σ value over items whose key
// satisfies pred (nil for the total), with its unbiased variance estimate,
// from the collapsed sketch.
func (s *ShardedBottomK) SubsetSum(pred func(bottomk.Entry) bool) (sum, varianceEstimate float64) {
	return s.Collapse().SubsetSum(pred)
}

// ShardedDistinct is a concurrent KMV distinct-counting sketch.
// Coordinated hashing makes Collapse exactly equal to the sequential
// sketch of the same key stream.
type ShardedDistinct struct {
	*Sharded
	k    int
	seed uint64
}

// NewShardedDistinct returns a sharded distinct-counting engine of sketch
// size k; shards <= 0 defaults to GOMAXPROCS.
func NewShardedDistinct(k int, seed uint64, shards int) *ShardedDistinct {
	factory := func(int) Sampler { return WrapDistinct(distinct.NewSketch(k, seed)) }
	return &ShardedDistinct{Sharded: NewSharded(shards, factory), k: k, seed: seed}
}

// AddKey offers a key (the weight/value-free form of Add).
func (s *ShardedDistinct) AddKey(key uint64) { s.Add(key, 1, 1) }

// AddKeys offers a batch of keys through the amortized-locking path.
func (s *ShardedDistinct) AddKeys(keys []uint64) {
	items := make([]Item, len(keys))
	for i, k := range keys {
		items[i] = Item{Key: k, Weight: 1, Value: 1}
	}
	s.AddBatch(items)
}

// Collapse merges the shards into one distinct sketch (the shards are left
// untouched).
func (s *ShardedDistinct) Collapse() *distinct.Sketch {
	snap, err := s.Snapshot()
	if err != nil {
		panic("engine: distinct snapshot failed: " + err.Error())
	}
	return snap.(*DistinctSampler).Sketch()
}

// Estimate returns the collapsed unbiased cardinality estimate.
func (s *ShardedDistinct) Estimate() float64 { return s.Collapse().Estimate() }

// Threshold returns the collapsed threshold.
func (s *ShardedDistinct) Threshold() float64 { return s.Collapse().Threshold() }

// ShardedWindow is a concurrent sliding-window sampler. Each shard owns an
// independent window sampler with a forked deterministic RNG seed, so a
// sharded run is reproducible for a fixed shard count but draws different
// priorities than a sequential run (both are valid uniform window
// samples). Collapse merges the shards under the window merge rule, which
// preserves 1-substitutability of the extraction threshold.
type ShardedWindow struct {
	*Sharded
}

// NewShardedWindow returns a sharded sliding-window engine with per-shard
// sample parameter k and window length delta; shards <= 0 defaults to
// GOMAXPROCS. Arrival times should be non-decreasing per producing
// goroutine; an arrival whose time already lies outside a shard's current
// window (a producer running behind the others) is archived or discarded,
// never admitted to the current sample.
func NewShardedWindow(k int, delta float64, seed uint64, shards int) *ShardedWindow {
	if shards <= 0 {
		shards = defaultShards()
	}
	seeds := stream.ForkSeeds(seed, shards+1)
	factory := func(i int) Sampler {
		if i < 0 {
			i = shards // collapse target gets the spare forked seed
		}
		return WrapWindow(window.New(k, delta, seeds[i]))
	}
	return &ShardedWindow{Sharded: NewSharded(shards, factory)}
}

// Observe offers an arrival at time t.
func (s *ShardedWindow) Observe(key uint64, t float64) { s.Add(key, t, 0) }

// Collapse merges the shards into one window sampler (the shards are left
// untouched).
func (s *ShardedWindow) Collapse() *window.Sampler {
	snap, err := s.Snapshot()
	if err != nil {
		panic("engine: window snapshot failed: " + err.Error())
	}
	return snap.(*WindowSampler).Sketch()
}
