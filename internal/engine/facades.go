package engine

import (
	"ats/internal/bottomk"
	"ats/internal/decay"
	"ats/internal/distinct"
	"ats/internal/groupby"
	"ats/internal/stratified"
	"ats/internal/stream"
	"ats/internal/topk"
	"ats/internal/varopt"
	"ats/internal/window"
)

// ShardedBottomK is a concurrent bottom-k sketch: a Sharded engine whose
// shards are coordinated bottom-k sketches sharing one seed. Because
// priorities are hash-derived, Collapse returns exactly the sketch a
// single-threaded run over the same stream would produce.
type ShardedBottomK struct {
	*Sharded
	k    int
	seed uint64
}

// NewShardedBottomK returns a sharded bottom-k engine with sample size k;
// shards <= 0 defaults to GOMAXPROCS.
func NewShardedBottomK(k int, seed uint64, shards int) *ShardedBottomK {
	factory := func(int) Sampler { return WrapBottomK(bottomk.New(k, seed)) }
	return &ShardedBottomK{Sharded: NewSharded(shards, factory), k: k, seed: seed}
}

// Collapse merges the shards into one bottom-k sketch (the shards are left
// untouched).
func (s *ShardedBottomK) Collapse() *bottomk.Sketch {
	snap, err := s.Snapshot()
	if err != nil {
		// All shards come from one factory; merge cannot fail.
		panic("engine: bottom-k snapshot failed: " + err.Error())
	}
	return snap.(*BottomKSampler).Sketch()
}

// Threshold returns the collapsed adaptive threshold.
func (s *ShardedBottomK) Threshold() float64 { return s.Collapse().Threshold() }

// Sample returns the collapsed sample.
func (s *ShardedBottomK) Sample() []bottomk.Entry { return s.Collapse().Sample() }

// SubsetSum returns the HT estimate of Σ value over items whose key
// satisfies pred (nil for the total), with its unbiased variance estimate,
// from the collapsed sketch.
func (s *ShardedBottomK) SubsetSum(pred func(bottomk.Entry) bool) (sum, varianceEstimate float64) {
	return s.Collapse().SubsetSum(pred)
}

// ShardedDistinct is a concurrent KMV distinct-counting sketch.
// Coordinated hashing makes Collapse exactly equal to the sequential
// sketch of the same key stream.
type ShardedDistinct struct {
	*Sharded
	k    int
	seed uint64
}

// NewShardedDistinct returns a sharded distinct-counting engine of sketch
// size k; shards <= 0 defaults to GOMAXPROCS.
func NewShardedDistinct(k int, seed uint64, shards int) *ShardedDistinct {
	factory := func(int) Sampler { return WrapDistinct(distinct.NewSketch(k, seed)) }
	return &ShardedDistinct{Sharded: NewSharded(shards, factory), k: k, seed: seed}
}

// AddKey offers a key (the weight/value-free form of Add).
func (s *ShardedDistinct) AddKey(key uint64) { s.Add(key, 1, 1) }

// AddKeys offers a batch of keys through the amortized-locking path.
func (s *ShardedDistinct) AddKeys(keys []uint64) {
	items := make([]Item, len(keys))
	for i, k := range keys {
		items[i] = Item{Key: k, Weight: 1, Value: 1}
	}
	s.AddBatch(items)
}

// Collapse merges the shards into one distinct sketch (the shards are left
// untouched).
func (s *ShardedDistinct) Collapse() *distinct.Sketch {
	snap, err := s.Snapshot()
	if err != nil {
		panic("engine: distinct snapshot failed: " + err.Error())
	}
	return snap.(*DistinctSampler).Sketch()
}

// Estimate returns the collapsed unbiased cardinality estimate.
func (s *ShardedDistinct) Estimate() float64 { return s.Collapse().Estimate() }

// Threshold returns the collapsed threshold.
func (s *ShardedDistinct) Threshold() float64 { return s.Collapse().Threshold() }

// ShardedWindow is a concurrent sliding-window sampler. Each shard owns an
// independent window sampler with a forked deterministic RNG seed, so a
// sharded run is reproducible for a fixed shard count but draws different
// priorities than a sequential run (both are valid uniform window
// samples). Collapse merges the shards under the window merge rule, which
// preserves 1-substitutability of the extraction threshold.
type ShardedWindow struct {
	*Sharded
}

// NewShardedWindow returns a sharded sliding-window engine with per-shard
// sample parameter k and window length delta; shards <= 0 defaults to
// GOMAXPROCS. Arrival times should be non-decreasing per producing
// goroutine; an arrival whose time already lies outside a shard's current
// window (a producer running behind the others) is archived or discarded,
// never admitted to the current sample.
func NewShardedWindow(k int, delta float64, seed uint64, shards int) *ShardedWindow {
	if shards <= 0 {
		shards = defaultShards()
	}
	seeds := stream.ForkSeeds(seed, shards+1)
	factory := func(i int) Sampler {
		if i < 0 {
			i = shards // collapse target gets the spare forked seed
		}
		return WrapWindow(window.New(k, delta, seeds[i]))
	}
	return &ShardedWindow{Sharded: NewSharded(shards, factory)}
}

// Observe offers an arrival at time t.
func (s *ShardedWindow) Observe(key uint64, t float64) { s.Add(key, t, 0) }

// Collapse merges the shards into one window sampler (the shards are left
// untouched).
func (s *ShardedWindow) Collapse() *window.Sampler {
	snap, err := s.Snapshot()
	if err != nil {
		panic("engine: window snapshot failed: " + err.Error())
	}
	return snap.(*WindowSampler).Sketch()
}

// ShardedTopK is a concurrent top-k/heavy-hitter sketch built on
// Unbiased Space Saving: each shard owns an independent m-counter table
// with a forked RNG stream, and Collapse merges them under the
// counter-conserving pairwise reduction, so disaggregated subset-sum
// estimates from the collapsed sketch stay unbiased. Because keys are
// hash-partitioned, each label's appearances all land on one shard and
// its counter there estimates the label's full stream count.
type ShardedTopK struct {
	*Sharded
}

// NewShardedTopK returns a sharded top-k engine with m counters per
// shard; shards <= 0 defaults to GOMAXPROCS.
func NewShardedTopK(m int, seed uint64, shards int) *ShardedTopK {
	if shards <= 0 {
		shards = defaultShards()
	}
	seeds := stream.ForkSeeds(seed, shards+1)
	factory := func(i int) Sampler {
		if i < 0 {
			i = shards // collapse target gets the spare forked seed
		}
		return WrapTopK(topk.NewUnbiasedSpaceSaving(m, seeds[i]))
	}
	return &ShardedTopK{Sharded: NewSharded(shards, factory)}
}

// Observe counts one appearance of key.
func (s *ShardedTopK) Observe(key uint64) { s.Add(key, 1, 1) }

// Collapse merges the shards into one unbiased space-saving sketch (the
// shards are left untouched).
func (s *ShardedTopK) Collapse() *topk.UnbiasedSpaceSaving {
	snap, err := s.Snapshot()
	if err != nil {
		panic("engine: top-k snapshot failed: " + err.Error())
	}
	return snap.(*TopKSampler).Sketch()
}

// TopK returns the k items with the largest collapsed count estimates.
func (s *ShardedTopK) TopK(k int) []topk.Result { return s.Collapse().TopK(k) }

// SubsetSum returns the collapsed unbiased estimate of total appearances
// of keys matching pred (nil for the stream length).
func (s *ShardedTopK) SubsetSum(pred func(key uint64) bool) int64 {
	return s.Collapse().SubsetSum(pred)
}

// ShardedVarOpt is a concurrent VarOpt_k weighted sampler. Each shard
// owns an independent sketch with a forked RNG stream; Collapse resamples
// the shards' adjusted-weight samples through one threshold (the classic
// VarOpt merge), preserving unbiased subset sums. Like the sharded
// window sampler, a sharded run is reproducible for a fixed shard count
// but draws different randomness than a sequential run.
type ShardedVarOpt struct {
	*Sharded
}

// NewShardedVarOpt returns a sharded VarOpt engine with per-shard (and
// collapsed) sample size k; shards <= 0 defaults to GOMAXPROCS.
func NewShardedVarOpt(k int, seed uint64, shards int) *ShardedVarOpt {
	if shards <= 0 {
		shards = defaultShards()
	}
	seeds := stream.ForkSeeds(seed, shards+1)
	factory := func(i int) Sampler {
		if i < 0 {
			i = shards
		}
		return WrapVarOpt(varopt.New(k, seeds[i]))
	}
	return &ShardedVarOpt{Sharded: NewSharded(shards, factory)}
}

// Collapse merges the shards into one VarOpt_k sketch (the shards are
// left untouched).
func (s *ShardedVarOpt) Collapse() *varopt.Sketch {
	snap, err := s.Snapshot()
	if err != nil {
		panic("engine: varopt snapshot failed: " + err.Error())
	}
	return snap.(*VarOptSampler).Sketch()
}

// SubsetSum returns the collapsed HT estimate of Σ value over entries
// matching pred (nil for all).
func (s *ShardedVarOpt) SubsetSum(pred func(varopt.Entry) bool) float64 {
	return s.Collapse().SubsetSum(pred)
}

// ShardedDecayed is a concurrent exponentially time-decayed sampler.
// Priorities are hash-derived from keys (coordinated across shards by the
// shared seed), so Collapse holds exactly the sample a sequential run
// over the same arrivals would hold — the same guarantee as sharded
// bottom-k.
type ShardedDecayed struct {
	*Sharded
}

// NewShardedDecayed returns a sharded time-decayed engine keeping k items
// per shard under decay rate lambda; shards <= 0 defaults to GOMAXPROCS.
func NewShardedDecayed(k int, lambda float64, seed uint64, shards int) *ShardedDecayed {
	factory := func(int) Sampler { return WrapDecayed(decay.New(k, lambda, seed)) }
	return &ShardedDecayed{Sharded: NewSharded(shards, factory)}
}

// ObserveAt offers an item with weight w and value x arriving at time t
// (seconds on the sampler's decay axis).
func (s *ShardedDecayed) ObserveAt(key uint64, w, x, t float64) {
	sh := s.shards[s.shardIndex(key)]
	sh.mu.Lock()
	sh.s.(*DecaySampler).AddAt(key, w, x, t)
	sh.mu.Unlock()
}

// Collapse merges the shards into one time-decayed sampler (the shards
// are left untouched).
func (s *ShardedDecayed) Collapse() *decay.Sampler {
	snap, err := s.Snapshot()
	if err != nil {
		panic("engine: decay snapshot failed: " + err.Error())
	}
	return snap.(*DecaySampler).Sketch()
}

// DecayedSum returns the collapsed HT estimate, at query time t, of the
// decayed sum Σ x_i·exp(-λ(t-t0_i)) over entries matching pred (nil for
// all).
func (s *ShardedDecayed) DecayedSum(t float64, pred func(decay.Entry) bool) float64 {
	return s.Collapse().DecayedSum(t, pred)
}

// DecayedCount returns the collapsed HT estimate of the decayed
// population size at query time t.
func (s *ShardedDecayed) DecayedCount(t float64) float64 {
	return s.Collapse().DecayedCount(t)
}

// ShardedGroupBy is a concurrent grouped distinct counter (§3.6).
// Priorities are hash-derived from item keys and coordinated across
// shards by the shared seed, so Collapse — the canonical-order groupby
// merge — is a deterministic function of the shard states. Items are
// hash-partitioned by KEY (not group), so one group's items spread
// across shards; the merge unions their coordinated samples back into
// one adaptive state.
type ShardedGroupBy struct {
	*Sharded
}

// NewShardedGroupBy returns a sharded grouped distinct counter with m
// dedicated sketches of size k per shard; shards <= 0 defaults to
// GOMAXPROCS.
func NewShardedGroupBy(m, k int, seed uint64, shards int) *ShardedGroupBy {
	factory := func(int) Sampler { return WrapGroupBy(groupby.New(m, k, seed)) }
	return &ShardedGroupBy{Sharded: NewSharded(shards, factory)}
}

// Observe offers an item belonging to the given group.
func (s *ShardedGroupBy) Observe(group, key uint64) {
	sh := s.shards[s.shardIndex(key)]
	sh.mu.Lock()
	sh.s.(*GroupBySampler).Sketch().Add(group, key)
	sh.mu.Unlock()
}

// Collapse merges the shards into one grouped distinct counter (the
// shards are left untouched).
func (s *ShardedGroupBy) Collapse() *groupby.Counter {
	snap, err := s.Snapshot()
	if err != nil {
		panic("engine: groupby snapshot failed: " + err.Error())
	}
	return snap.(*GroupBySampler).Sketch()
}

// Estimate returns the collapsed distinct-count estimate for a group.
func (s *ShardedGroupBy) Estimate(group uint64) float64 { return s.Collapse().Estimate(group) }

// GroupEstimates returns the collapsed per-group ranking (n > 0
// truncates it to the n largest estimates).
func (s *ShardedGroupBy) GroupEstimates(n int) []groupby.GroupEstimate {
	return s.Collapse().GroupEstimates(n)
}

// ShardedStratified is a concurrent budgeted multi-stratified sampler
// (§3.7). Priorities are hash-derived from item keys (coordinated by the
// shared seed), so Collapse — per-stratum bottom-k unions followed by
// re-filtering and budget enforcement, all in canonical order — is a
// deterministic function of the shard states.
type ShardedStratified struct {
	*Sharded
}

// NewShardedStratified returns a sharded multi-stratified engine over
// dims dimensions with per-shard (and collapsed) item budget and
// per-stratum bottom-k parameter k; shards <= 0 defaults to GOMAXPROCS.
func NewShardedStratified(budget, k, dims int, seed uint64, shards int) *ShardedStratified {
	factory := func(int) Sampler { return WrapStratified(stratified.NewSampler(budget, k, dims, seed)) }
	return &ShardedStratified{Sharded: NewSharded(shards, factory)}
}

// Observe offers an item with per-dimension stratum labels and an
// aggregable value.
func (s *ShardedStratified) Observe(key uint64, labels []uint32, value float64) {
	sh := s.shards[s.shardIndex(key)]
	sh.mu.Lock()
	sh.s.(*StratifiedSampler).Sketch().Add(key, labels, value)
	sh.mu.Unlock()
}

// Collapse merges the shards into one multi-stratified sampler (the
// shards are left untouched).
func (s *ShardedStratified) Collapse() *stratified.Sampler {
	snap, err := s.Snapshot()
	if err != nil {
		panic("engine: stratified snapshot failed: " + err.Error())
	}
	return snap.(*StratifiedSampler).Sketch()
}

// SubsetSum returns the collapsed HT estimate (with its unbiased
// variance estimate) of Σ value over items matching pred (nil for all).
func (s *ShardedStratified) SubsetSum(pred func(key uint64, labels []uint32) bool) (sum, varianceEstimate float64) {
	return s.Collapse().SubsetSum(pred)
}

// StratumStats returns the collapsed per-stratum HT estimates for one
// dimension.
func (s *ShardedStratified) StratumStats(dim int) []stratified.StratumStat {
	return s.Collapse().StratumStats(dim)
}
