// Package engine provides a concurrent, sharded sampling engine over the
// library's mergeable sketches, and the unified Sampler contract that
// lets the store and serving layers treat the whole sketch family — six
// kinds — through one interface.
//
// # What part of the paper this implements
//
// The engine operationalizes the merge rules of Ting, "Adaptive
// Threshold Sampling" (SIGMOD 2022), §2.5 and §3.5: a substitutable
// threshold sampler can be split across machines (or shards) and the
// per-part samples merged without breaking the Horvitz-Thompson
// estimators. Adapters wrap each sketch behind Sampler
// (Add/Sample/Threshold/Merge):
//
//   - BottomKSampler — weighted bottom-k / priority sampling (§2)
//   - DistinctSampler — KMV distinct counting (§3.4–3.5)
//   - WindowSampler — sliding-window uniform sampling (§3.2)
//   - TopKSampler — unbiased space-saving heavy hitters ([30], the
//     sketch §3.3's adaptive top-k sampler is a variation of)
//   - VarOptSampler — VarOpt_k weighted sampling (§1.1's strong baseline)
//   - DecaySampler — exponentially time-decayed sampling (§2.9)
//
// # Sharding
//
// The single-threaded sketches are deliberately lock-free and cheap; the
// engine scales them to multi-core ingest by hash-partitioning keys
// across N shards, each shard owning an independent sketch behind its
// own mutex. A batched AddBatch path groups items by shard first and
// takes each shard lock once per batch, so lock traffic is amortized
// over hundreds of items. Snapshot (or the typed facades' Collapse)
// merges the shards into one sketch for estimation.
//
// Sketches whose priorities are hash-derived from keys (bottom-k, KMV,
// decayed) depend only on the multiset of (key, priority) pairs, so the
// collapsed sketch is *identical* to the sketch of the sequential
// stream, bit for bit, regardless of how items were partitioned or
// interleaved. Samplers that draw from RNG streams instead (window,
// varopt, top-k takeovers) are sharded with forked deterministic
// streams: reproducible for a fixed shard count, but a sharded run and a
// sequential run consume randomness differently, so their (equally
// valid) samples differ.
//
// # Concurrency and ownership contract
//
// A Sharded engine owns its shard sketches exclusively; callers must
// never retain or mutate a sketch reached through ForEachShard. Add,
// AddBatch and Snapshot are safe from any number of goroutines. The
// single-sketch adapters themselves are NOT safe for concurrent use —
// they are exactly as thread-unsafe as the sketches they wrap, and the
// per-shard mutex is what serializes access. Merge never modifies its
// argument's logical state, but it may settle internal representation,
// which is why even read-style access takes the shard lock. Snapshot
// locks one shard at a time, so it observes each shard at a possibly
// different consistent point — the semantics of merging independently
// maintained distributed sketches.
package engine
