package history

import (
	"math"
	"testing"
	"testing/quick"

	"ats/internal/bottomk"
	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k <= 0 must panic")
		}
	}()
	New(0, 1)
}

// TestMatchesFreshSketchAtEveryPrefix is the defining exactness property:
// the reconstructed state at time t equals the state of a fresh bottom-k
// sketch run over the first t items.
func TestMatchesFreshSketchAtEveryPrefix(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		k := 5
		n := 80
		h := New(k, seed)
		type item struct {
			pr float64
			w  float64
			v  float64
		}
		items := make([]item, n)
		for i := range items {
			items[i] = item{pr: rng.Open01(), w: 1, v: float64(i)}
			h.AddWithPriority(Entry{Key: uint64(i), Weight: 1, Value: items[i].v, Priority: items[i].pr})
		}
		for _, tt := range []int{3, 10, 40, 80} {
			fresh := bottomk.New(k, seed+999)
			for i := 0; i < tt; i++ {
				fresh.AddWithPriority(bottomk.Entry{
					Key: uint64(i), Weight: 1, Value: items[i].v, Priority: items[i].pr,
				})
			}
			if h.ThresholdAt(tt) != fresh.Threshold() {
				return false
			}
			rec := h.SampleAt(tt)
			want := fresh.Sample()
			if len(rec) != len(want) {
				return false
			}
			keys := make(map[uint64]bool, len(want))
			for _, e := range want {
				keys[e.Key] = true
			}
			for _, e := range rec {
				if !keys[e.Key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPrefixSumsUnbiased is the Theorem 7 validation: the pseudo-HT prefix
// sums are unbiased at every query point, even though the rule is only
// 1-substitutable.
func TestPrefixSumsUnbiased(t *testing.T) {
	n := 400
	items := stream.ParetoWeights(n, 1.5, 3)
	queryPoints := []int{100, 250, 400}
	truths := make([]float64, len(queryPoints))
	for qi, q := range queryPoints {
		for _, it := range items[:q] {
			truths[qi] += it.Value
		}
	}
	ests := make([]estimator.Running, len(queryPoints))
	for trial := 0; trial < 3000; trial++ {
		h := New(30, uint64(trial)+100)
		for _, it := range items {
			h.Add(it.Key, it.Weight, it.Value)
		}
		for qi, q := range queryPoints {
			ests[qi].Add(h.SubsetSumAt(q, nil))
		}
	}
	for qi, q := range queryPoints {
		if z := (ests[qi].Mean() - truths[qi]) / ests[qi].SE(); math.Abs(z) > 4.5 {
			t.Errorf("prefix [0,%d] biased: mean %v truth %v z %v",
				q, ests[qi].Mean(), truths[qi], z)
		}
	}
}

func TestStorageGrowsLogarithmically(t *testing.T) {
	k := 20
	h := New(k, 7)
	rng := stream.NewRNG(8)
	n := 100000
	for i := 0; i < n; i++ {
		h.AddWithPriority(Entry{Key: uint64(i), Weight: 1, Value: 1, Priority: rng.Open01()})
	}
	// Expected storage ≈ (k+1) * ln(n/(k+1)) + (k+1) ≈ 210 here; allow 3x.
	expect := float64(k+1) * (math.Log(float64(n)/float64(k+1)) + 1)
	if got := h.StoredItems(); float64(got) > 3*expect {
		t.Errorf("stored %d items, expected ≈ %.0f (Θ(k log n))", got, expect)
	}
	if h.N() != n {
		t.Errorf("N = %d", h.N())
	}
}

func TestExactPrefixWhileSmall(t *testing.T) {
	h := New(50, 9)
	want := 0.0
	for i := 0; i < 30; i++ {
		v := float64(i + 1)
		h.Add(uint64(i), 1, v)
		want += v
		if got := h.SubsetSumAt(i+1, nil); got != want {
			t.Fatalf("prefix %d: got %v, want exact %v", i+1, got, want)
		}
	}
}

func TestSubsetPredicate(t *testing.T) {
	items := stream.ParetoWeights(300, 1.3, 10)
	pred := func(e Entry) bool { return e.Key%2 == 0 }
	truth := 0.0
	for _, it := range items {
		if it.Key%2 == 0 {
			truth += it.Value
		}
	}
	var est estimator.Running
	for trial := 0; trial < 2000; trial++ {
		h := New(40, uint64(trial)+500)
		for _, it := range items {
			h.Add(it.Key, it.Weight, it.Value)
		}
		est.Add(h.SubsetSumAt(300, pred))
	}
	if z := (est.Mean() - truth) / est.SE(); math.Abs(z) > 4.5 {
		t.Errorf("subset biased: mean %v truth %v z %v", est.Mean(), truth, z)
	}
}

func TestZeroWeightAdvancesPosition(t *testing.T) {
	h := New(5, 11)
	h.Add(1, 0, 100)
	h.Add(2, 1, 1)
	if h.N() != 2 {
		t.Errorf("N = %d, want 2", h.N())
	}
	if got := h.SubsetSumAt(2, nil); got != 1 {
		t.Errorf("sum = %v, want 1 (zero-weight item unsampleable)", got)
	}
}

func TestSampleAtOrderedByArrival(t *testing.T) {
	h := New(10, 12)
	rng := stream.NewRNG(13)
	for i := 0; i < 200; i++ {
		h.AddWithPriority(Entry{Key: uint64(i), Weight: 1, Value: 1, Priority: rng.Open01()})
	}
	sample := h.SampleAt(200)
	for i := 1; i < len(sample); i++ {
		if sample[i-1].Arrival >= sample[i].Arrival {
			t.Fatal("SampleAt must be sorted by arrival")
		}
	}
}
