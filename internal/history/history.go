package history

import (
	"math"
	"sort"

	"ats/internal/core"
	"ats/internal/estimator"
	"ats/internal/stream"
)

// Entry is one archived item.
type Entry struct {
	Key    uint64
	Weight float64
	Value  float64
	// Priority is the item's realized priority R = U/w.
	Priority float64
	// Arrival is the 1-based stream position of the item.
	Arrival int
}

// Sampler archives every item that ever entered the bottom-k sketch.
type Sampler struct {
	k    int
	seed uint64
	// live is the current bottom-k+1 (max-heap on priority).
	live []Entry
	// archive holds items evicted from the live sketch; together with the
	// live items it contains every item that was ever in the sketch.
	archive []Entry
	n       int
}

// New returns an empty history sampler with sketch size k.
func New(k int, seed uint64) *Sampler {
	if k <= 0 {
		panic("history: k must be positive")
	}
	return &Sampler{k: k, seed: seed}
}

// K returns the sketch size parameter.
func (s *Sampler) K() int { return s.k }

// N returns the number of items processed.
func (s *Sampler) N() int { return s.n }

// StoredItems returns the total number of archived plus live items — the
// sketch's space usage (Θ(k log(n/k)) in expectation).
func (s *Sampler) StoredItems() int { return len(s.live) + len(s.archive) }

// Add processes the next stream item.
func (s *Sampler) Add(key uint64, w, x float64) {
	if w <= 0 {
		s.n++ // position advances; the item can never be sampled
		return
	}
	u := stream.HashU01(key, s.seed)
	s.AddWithPriority(Entry{Key: key, Weight: w, Value: x, Priority: u / w})
}

// AddWithPriority processes an item with an explicit priority.
func (s *Sampler) AddWithPriority(e Entry) {
	s.n++
	e.Arrival = s.n
	if len(s.live) == s.k+1 && e.Priority >= s.live[0].Priority {
		return // never enters the sketch
	}
	s.live = append(s.live, e)
	siftUp(s.live, len(s.live)-1)
	if len(s.live) > s.k+1 {
		// The evicted item WAS in the sketch (it was among the k+1
		// smallest when it arrived), so it goes to the archive.
		s.archive = append(s.archive, popRoot(&s.live))
	}
}

// ThresholdAt returns the bottom-k threshold for the prefix [0, t]: the
// (k+1)-th smallest priority among the first t items (+inf when the prefix
// has at most k items). It is computable from the stored items alone:
// any unstored item's priority exceeded the threshold at its arrival,
// which is an upper bound for every later prefix threshold.
func (s *Sampler) ThresholdAt(t int) float64 {
	prs := make([]float64, 0, s.k+1)
	collect := func(items []Entry) {
		for _, e := range items {
			if e.Arrival <= t {
				prs = append(prs, e.Priority)
			}
		}
	}
	collect(s.live)
	collect(s.archive)
	if len(prs) <= s.k {
		return math.Inf(1)
	}
	return core.KthSmallest(prs, s.k+1)
}

// SampleAt reconstructs the bottom-k sample of the prefix [0, t]: exactly
// the state a fresh bottom-k sketch would have after the first t items.
func (s *Sampler) SampleAt(t int) []Entry {
	th := s.ThresholdAt(t)
	var out []Entry
	take := func(items []Entry) {
		for _, e := range items {
			if e.Arrival <= t && e.Priority < th {
				out = append(out, e)
			}
		}
	}
	take(s.live)
	take(s.archive)
	sort.Slice(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out
}

// SubsetSumAt returns the unbiased pseudo-HT estimate (Theorem 7) of
// Σ value over the first t stream items matching pred (nil for all).
func (s *Sampler) SubsetSumAt(t int, pred func(Entry) bool) float64 {
	th := s.ThresholdAt(t)
	if math.IsInf(th, 1) {
		sum := 0.0
		for _, e := range s.SampleAt(t) {
			if pred == nil || pred(e) {
				sum += e.Value
			}
		}
		return sum
	}
	sample := make([]estimator.Sampled, 0, s.k)
	for _, e := range s.SampleAt(t) {
		if pred != nil && !pred(e) {
			continue
		}
		sample = append(sample, estimator.Sampled{
			Value: e.Value,
			P:     core.InclusionProb(e.Weight, th),
		})
	}
	return estimator.SubsetSum(sample)
}

// --- max-heap on Priority ---

func siftUp(h []Entry, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].Priority >= h[i].Priority {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func popRoot(h *[]Entry) Entry {
	old := *h
	root := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	n := len(*h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && (*h)[l].Priority > (*h)[largest].Priority {
			largest = l
		}
		if r < n && (*h)[r].Priority > (*h)[largest].Priority {
			largest = r
		}
		if largest == i {
			return root
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}
