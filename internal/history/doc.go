// Package history implements the §2.7 motivating example of Ting,
// "Adaptive Threshold Sampling" (SIGMOD 2022): a bottom-k sketch that
// stores every item that was EVER in the sketch, which makes it possible
// to reconstruct the bottom-k sample — and compute unbiased aggregates —
// over the prefix window [0, t] for ANY stream position t, after the
// fact.
//
// # What part of the paper this implements
//
// The per-item thresholding rule ("the (k+1)-th smallest priority among
// the items that arrived before you") is sequential: it depends only on
// earlier priorities, so by Theorem 7 the pseudo-HT estimator of a sum
// is unbiased even though the rule is only 1-substitutable. The paper
// shows it is NOT 2-substitutable, so variance estimates may not be
// reused; the package tests demonstrate both facts. The store's
// time-bucketed range queries are cross-validated against this package:
// a merged bucket range and a SampleAt prefix reconstruction must agree.
//
// # Concurrency and ownership contract
//
// A Sampler is single-owner state and not safe for concurrent use; wrap
// it behind external synchronization to share it. Add appends to the
// archive; SampleAt/SubsetSumAt reconstruct past samples from the
// archive without mutating it, so they may run concurrently with each
// other (but not with Add). Entries returned by queries are copies owned
// by the caller. Memory grows with every archived item — O(k log n) in
// expectation — which is the price of answering every prefix window;
// the time-bucketed store is the bounded-memory alternative.
package history
