package history

// Edge-case coverage beyond the basic tests: empty and tiny prefixes,
// threshold monotonicity, exact prefix-reconstruction against fresh
// bottom-k runs, degenerate weights, and out-of-range query positions.

import (
	"math"
	"sort"
	"testing"

	"ats/internal/bottomk"
	"ats/internal/stream"
)

func TestEmptyAndTinyPrefixes(t *testing.T) {
	s := New(4, 9)
	if got := s.ThresholdAt(0); !math.IsInf(got, 1) {
		t.Fatalf("empty prefix threshold %v, want +inf", got)
	}
	if got := s.SampleAt(0); len(got) != 0 {
		t.Fatalf("empty prefix sample %v", got)
	}
	if got := s.SubsetSumAt(0, nil); got != 0 {
		t.Fatalf("empty prefix sum %v", got)
	}

	s.Add(1, 2, 10)
	// One item, below k: the "sample" is exact and the threshold open.
	if got := s.ThresholdAt(1); !math.IsInf(got, 1) {
		t.Fatalf("below-k threshold %v", got)
	}
	if got := s.SubsetSumAt(1, nil); got != 10 {
		t.Fatalf("below-k sum %v, want exact 10", got)
	}
}

func TestQueryPositionsBeyondStream(t *testing.T) {
	s := New(3, 4)
	for i := 0; i < 50; i++ {
		s.Add(uint64(i), 1, 1)
	}
	// Positions past the end behave like the full stream.
	if got, want := s.ThresholdAt(1000), s.ThresholdAt(50); got != want {
		t.Fatalf("past-end threshold %v != full %v", got, want)
	}
	if got, want := len(s.SampleAt(1000)), len(s.SampleAt(50)); got != want {
		t.Fatalf("past-end sample %d != full %d", got, want)
	}
}

func TestThresholdMonotoneNonIncreasing(t *testing.T) {
	s := New(8, 77)
	rng := stream.NewRNG(3)
	for i := 0; i < 3000; i++ {
		s.Add(uint64(i), 0.5+rng.Float64()*5, 1)
	}
	prev := math.Inf(1)
	for pos := 1; pos <= 3000; pos += 13 {
		cur := s.ThresholdAt(pos)
		if cur > prev {
			t.Fatalf("threshold increased from %v to %v at position %d", prev, cur, pos)
		}
		prev = cur
	}
}

// TestPrefixReconstructionMatchesFreshSketch is the core §2.7 property:
// for EVERY prefix length t, SampleAt(t) equals the state a fresh
// bottom-k sketch has after ingesting the first t items.
func TestPrefixReconstructionMatchesFreshSketch(t *testing.T) {
	const (
		k    = 6
		seed = 5
		n    = 800
	)
	rng := stream.NewRNG(11)
	type item struct {
		key uint64
		w   float64
	}
	items := make([]item, n)
	for i := range items {
		items[i] = item{key: uint64(i) * 2654435761, w: 0.25 + 4*rng.Float64()}
	}

	hist := New(k, seed)
	fresh := bottomk.New(k, seed)
	for pos, it := range items {
		hist.Add(it.key, it.w, 1)
		fresh.Add(it.key, it.w, 1)
		if pos%37 != 0 && pos != n-1 {
			continue
		}
		if got, want := hist.ThresholdAt(pos+1), fresh.Threshold(); got != want {
			t.Fatalf("pos %d: threshold %v != fresh %v", pos+1, got, want)
		}
		got := hist.SampleAt(pos + 1)
		want := fresh.Sample()
		if len(got) != len(want) {
			t.Fatalf("pos %d: sample %d items != fresh %d", pos+1, len(got), len(want))
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Priority < want[j].Priority })
		sort.Slice(got, func(i, j int) bool { return got[i].Priority < got[j].Priority })
		for i := range got {
			if got[i].Key != want[i].Key || got[i].Priority != want[i].Priority {
				t.Fatalf("pos %d: sample[%d] (%d, %v) != fresh (%d, %v)",
					pos+1, i, got[i].Key, got[i].Priority, want[i].Key, want[i].Priority)
			}
		}
	}
}

func TestNonPositiveWeightsAdvancePositionOnly(t *testing.T) {
	s := New(4, 2)
	s.Add(1, 0, 100)
	s.Add(2, -3, 100)
	if s.N() != 2 {
		t.Fatalf("N %d, want 2 (positions advance)", s.N())
	}
	if s.StoredItems() != 0 {
		t.Fatalf("stored %d, want 0 (unsampleable items)", s.StoredItems())
	}
	s.Add(3, 1, 7)
	if got := s.SubsetSumAt(3, nil); got != 7 {
		t.Fatalf("sum %v, want 7", got)
	}
}

func TestSubsetSumPredicateFiltering(t *testing.T) {
	const n = 5000
	s := New(64, 6)
	exactEven := 0.0
	for i := 0; i < n; i++ {
		v := float64(i % 10)
		s.Add(uint64(i), 1, v)
		if i%2 == 0 {
			exactEven += v
		}
	}
	est := s.SubsetSumAt(n, func(e Entry) bool { return e.Key%2 == 0 })
	if rel := est/exactEven - 1; rel > 0.5 || rel < -0.5 {
		t.Fatalf("even-key estimate %v implausible vs exact %v", est, exactEven)
	}
}

func TestArchiveGrowthIsLogarithmic(t *testing.T) {
	const (
		k = 16
		n = 100_000
	)
	s := New(k, 12)
	for i := 0; i < n; i++ {
		s.Add(uint64(i)*0x9e3779b97f4a7c15, 1, 1)
	}
	// Expected storage is Θ(k log(n/k)); allow a generous constant.
	bound := 6 * k * int(math.Log(float64(n)/float64(k))+1)
	if s.StoredItems() > bound {
		t.Fatalf("archive holds %d items, want O(k log(n/k)) ~ %d", s.StoredItems(), bound)
	}
}
