package experiments

import (
	"ats/internal/stream"
	"ats/internal/topk"
)

// Fig3Config parameterizes the top-k comparison of Figure 3.
type Fig3Config struct {
	K         int       // query size (paper: 10)
	Betas     []float64 // Pitman-Yor beta grid (paper: 0.25..1.0)
	StreamLen int       // points per stream
	Trials    int       // independent streams per beta
	FreqTable int       // FrequentItems allocated table size
	Seed      uint64
}

// DefaultFig3Config mirrors Figure 3: k = 10, beta sweeping [0.25, 1).
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		K:         10,
		Betas:     []float64{0.25, 0.40, 0.55, 0.70, 0.85, 0.95},
		StreamLen: 30000,
		Trials:    12,
		FreqTable: 128,
		Seed:      101,
	}
}

// Fig3Point is the per-beta aggregate.
type Fig3Point struct {
	Beta float64
	// Mean number of items among the returned top-k that are not in the
	// true top-k (left panel of Figure 3). SpaceSaving and USS (Unbiased
	// Space Saving, [30]) are additional baselines beyond the paper's
	// figure, run at the same effective capacity as FreqItems.
	SamplerErrors float64
	FreqErrors    float64
	SSErrors      float64
	USSErrors     float64
	// Mean sketch sizes in items (right panel; FreqItems reports 0.75 ×
	// its table size, per the paper).
	SamplerSize float64
	FreqSize    float64
}

// Fig3Result is the full sweep.
type Fig3Result struct {
	Cfg    Fig3Config
	Points []Fig3Point
}

// Fig3 compares the adaptive top-k sampler against the FrequentItems
// sketch on Pitman-Yor(1, beta) streams across beta.
func Fig3(cfg Fig3Config) Fig3Result {
	res := Fig3Result{Cfg: cfg}
	for bi, beta := range cfg.Betas {
		var p Fig3Point
		p.Beta = beta
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + uint64(bi*1000+trial)
			py := stream.NewPitmanYor(beta, seed)
			sampler := topk.New(cfg.K, seed+500000)
			freq := topk.NewFrequentItems(cfg.FreqTable)
			ss := topk.NewSpaceSaving(cfg.FreqTable * 3 / 4)
			uss := topk.NewUnbiasedSpaceSaving(cfg.FreqTable*3/4, seed+600000)
			for i := 0; i < cfg.StreamLen; i++ {
				x := py.Next()
				sampler.Add(x)
				freq.Add(x)
				ss.Add(x)
				uss.Add(x)
			}
			truth := make(map[uint64]struct{}, cfg.K)
			for _, id := range py.TopK(cfg.K) {
				truth[id] = struct{}{}
			}
			p.SamplerErrors += float64(countErrors(samplerKeys(sampler), truth))
			p.FreqErrors += float64(countErrors(freqKeys(freq, cfg.K), truth))
			p.SSErrors += float64(countErrors(resultKeys(ss.TopK(cfg.K)), truth))
			p.USSErrors += float64(countErrors(resultKeys(uss.TopK(cfg.K)), truth))
			p.SamplerSize += float64(sampler.Len())
			p.FreqSize += float64(freq.EffectiveCapacity())
		}
		ft := float64(cfg.Trials)
		p.SamplerErrors /= ft
		p.FreqErrors /= ft
		p.SSErrors /= ft
		p.USSErrors /= ft
		p.SamplerSize /= ft
		p.FreqSize /= ft
		res.Points = append(res.Points, p)
	}
	return res
}

func samplerKeys(s *topk.Sampler) []uint64 {
	top := s.TopK()
	out := make([]uint64, len(top))
	for i, e := range top {
		out[i] = e.Key
	}
	return out
}

func freqKeys(f *topk.FrequentItems, k int) []uint64 {
	top := f.TopK(k)
	out := make([]uint64, len(top))
	for i, r := range top {
		out[i] = r.Key
	}
	return out
}

func resultKeys(rs []topk.Result) []uint64 {
	out := make([]uint64, len(rs))
	for i, r := range rs {
		out[i] = r.Key
	}
	return out
}

func countErrors(returned []uint64, truth map[uint64]struct{}) int {
	errs := len(truth) - len(returned) // missing slots count as errors
	if errs < 0 {
		errs = 0
	}
	for _, k := range returned {
		if _, ok := truth[k]; !ok {
			errs++
		}
	}
	return errs
}

// Format renders the sweep as a table.
func (r Fig3Result) Format() string {
	t := &Table{
		Title:   "Figure 3 — top-k: adaptive sampler vs FrequentItems (Pitman-Yor streams)",
		Columns: []string{"beta", "err(TopKSampler)", "err(FreqItems)", "err(SpaceSaving)", "err(USS)", "size(TopKSampler)", "size(FreqItems)"},
	}
	for _, p := range r.Points {
		t.AddRow(f2(p.Beta), f2(p.SamplerErrors), f2(p.FreqErrors), f2(p.SSErrors), f2(p.USSErrors), f2(p.SamplerSize), f2(p.FreqSize))
	}
	t.AddNote("k=%d, stream=%d points, %d trials per beta; FreqItems size = 0.75 x table per the paper",
		r.Cfg.K, r.Cfg.StreamLen, r.Cfg.Trials)
	t.AddNote("paper shape: FreqItems errors grow sharply as beta -> 1 while the sampler stays accurate by growing its size")
	return t.Format()
}
