// Package experiments contains one driver per table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// driver returns a structured result with a human-readable Format method;
// cmd/atsbench prints them and the root bench suite times them.
//
// Absolute numbers depend on our synthetic substrates (documented
// substitutions in DESIGN.md §3); the drivers are written so the
// qualitative shapes reported in the paper — who wins, by what factor,
// where crossovers happen — are reproduced.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple column-formatted result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func f5(x float64) string { return fmt.Sprintf("%.5f", x) }
func d(x int) string      { return fmt.Sprintf("%d", x) }
func pct(x float64) string {
	return fmt.Sprintf("%.2f%%", 100*x)
}
