package experiments

import (
	"ats/internal/bottomk"
	"ats/internal/budget"
	"ats/internal/stream"
)

// BudgetConfig parameterizes the §3.1 variable item-size experiment.
type BudgetConfig struct {
	Budget int // memory budget in characters
	Items  int // stream length
	Trials int
	Seed   uint64
}

// DefaultBudgetConfig uses the Kaggle-survey-like size distribution
// (max 5113, mean ≈ 1265 characters) with a 100 kB budget.
func DefaultBudgetConfig() BudgetConfig {
	return BudgetConfig{Budget: 100_000, Items: 20000, Trials: 10, Seed: 33}
}

// BudgetResult summarizes the comparison between the conservative
// bottom-(B/Lmax) sample and the adaptive budget sample.
type BudgetResult struct {
	Cfg BudgetConfig
	// MeanSizeObserved is the empirical mean item size (target ≈ 1265).
	MeanSizeObserved float64
	MaxSizeObserved  int
	// BottomKK is the conservative k = B / Lmax.
	BottomKK int
	// BottomKItems and AdaptiveItems are the mean sample sizes (in items).
	BottomKItems  float64
	AdaptiveItems float64
	// AdaptiveBytes is the mean budget utilization of the adaptive sample.
	AdaptiveBytes float64
	// Ratio is adaptive / bottom-k items (paper: ≈ 4x).
	Ratio float64
	// HTRelErr is the mean relative error of the adaptive sample's HT
	// estimate of the total character count (a sanity estimate).
	HTRelErr float64
}

// Budget runs the §3.1 experiment: guarantee a B-byte sample from a stream
// of variable-size survey rows; compare the utilization of the
// conservative bottom-k (k = B/Lmax) against the adaptive threshold
// sampler that fills the budget.
func Budget(cfg BudgetConfig) BudgetResult {
	res := BudgetResult{Cfg: cfg}
	kConservative := cfg.Budget / stream.SurveyMaxSize
	if kConservative < 1 {
		kConservative = 1
	}
	res.BottomKK = kConservative

	var totalSize float64
	var count int
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + uint64(trial)
		sizes := stream.NewSurveySizes(seed)
		bk := bottomk.New(kConservative, seed+99)
		ad := budget.New(cfg.Budget, seed+99)
		var trueTotal float64
		for i := 0; i < cfg.Items; i++ {
			sz := sizes.Next()
			totalSize += float64(sz)
			count++
			if sz > res.MaxSizeObserved {
				res.MaxSizeObserved = sz
			}
			trueTotal += float64(sz)
			key := uint64(trial)<<32 | uint64(i)
			// Unweighted sampling: every row weight 1; the value being
			// estimated is the row size.
			bk.Add(key, 1, float64(sz))
			ad.Add(key, 1, float64(sz), sz)
		}
		res.BottomKItems += float64(len(bk.Sample()))
		res.AdaptiveItems += float64(ad.Len())
		res.AdaptiveBytes += float64(ad.UsedBytes())
		est, _ := ad.SubsetSum(nil)
		rel := (est - trueTotal) / trueTotal
		if rel < 0 {
			rel = -rel
		}
		res.HTRelErr += rel
	}
	ft := float64(cfg.Trials)
	res.BottomKItems /= ft
	res.AdaptiveItems /= ft
	res.AdaptiveBytes /= ft
	res.HTRelErr /= ft
	res.MeanSizeObserved = totalSize / float64(count)
	if res.BottomKItems > 0 {
		res.Ratio = res.AdaptiveItems / res.BottomKItems
	}
	return res
}

// Format renders the result.
func (r BudgetResult) Format() string {
	t := &Table{
		Title:   "§3.1 — variable item sizes: bottom-(B/Lmax) vs adaptive budget sample",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("budget B (chars)", d(r.Cfg.Budget))
	t.AddRow("observed mean item size", f2(r.MeanSizeObserved))
	t.AddRow("observed max item size", d(r.MaxSizeObserved))
	t.AddRow("conservative k = B/Lmax", d(r.BottomKK))
	t.AddRow("bottom-k sample (items)", f2(r.BottomKItems))
	t.AddRow("adaptive sample (items)", f2(r.AdaptiveItems))
	t.AddRow("adaptive budget use (chars)", f2(r.AdaptiveBytes))
	t.AddRow("adaptive / bottom-k ratio", f2(r.Ratio))
	t.AddRow("adaptive HT total rel. err", pct(r.HTRelErr))
	t.AddNote("paper: with max 5113 and mean 1265 chars the bottom-k sample is expected to be ~1/4 the adaptive sample")
	return t.Format()
}
