package experiments

import (
	"math"

	"ats/internal/distinct"
	"ats/internal/estimator"
)

// DominatedConfig parameterizes the §3.5 dominated-merge example: one
// large set plus many small sets.
type DominatedConfig struct {
	LargeSize int // |A0|
	SmallSets int
	SmallSize int
	K         int
	Trials    int
	Seed      uint64
}

// DefaultDominatedConfig scales the paper's example (|A0| = 10^6 and 10^6
// sets of 100) down so the small-set mass dominates the large set by the
// same two orders of magnitude.
func DefaultDominatedConfig() DominatedConfig {
	return DominatedConfig{LargeSize: 2000, SmallSets: 2000, SmallSize: 100, K: 100, Trials: 40, Seed: 555}
}

// DominatedResult summarizes the comparison.
type DominatedResult struct {
	Cfg       DominatedConfig
	TrueUnion float64
	ThetaErr  float64 // relative SD of the Theta union estimate
	LCSErr    float64 // relative SD of the adaptive/LCS union estimate
	Ratio     float64 // ThetaErr / LCSErr
	Predicted float64 // sqrt(total / |A0|): the structural advantage
}

// MergeDominated runs the dominated-merge experiment: with the
// min-threshold (Theta) rule every small set is resampled at the large
// set's coarse threshold, so the error scales with the TOTAL cardinality;
// with the adaptive/LCS rule only the large sketch contributes error.
func MergeDominated(cfg DominatedConfig) DominatedResult {
	res := DominatedResult{Cfg: cfg}
	total := cfg.LargeSize + cfg.SmallSets*cfg.SmallSize
	res.TrueUnion = float64(total)
	var thetaEsts, lcsEsts []float64
	for trial := 0; trial < cfg.Trials; trial++ {
		salt := cfg.Seed + uint64(trial)*1_000_003
		sketches := make([]*distinct.Sketch, 0, cfg.SmallSets+1)
		big := distinct.NewSketch(cfg.K, cfg.Seed)
		for i := 0; i < cfg.LargeSize; i++ {
			big.Add(salt<<20 + uint64(i))
		}
		sketches = append(sketches, big)
		next := salt<<20 + uint64(cfg.LargeSize)
		for s := 0; s < cfg.SmallSets; s++ {
			sk := distinct.NewSketch(cfg.K, cfg.Seed)
			for i := 0; i < cfg.SmallSize; i++ {
				sk.Add(next)
				next++
			}
			sketches = append(sketches, sk)
		}
		thetaEsts = append(thetaEsts, distinct.UnionEstimateTheta(sketches...))
		lcsEsts = append(lcsEsts, distinct.UnionEstimateLCS(sketches...))
	}
	res.ThetaErr = estimator.RelativeSD(thetaEsts, res.TrueUnion)
	res.LCSErr = estimator.RelativeSD(lcsEsts, res.TrueUnion)
	if res.LCSErr > 0 {
		res.Ratio = res.ThetaErr / res.LCSErr
	}
	res.Predicted = math.Sqrt(res.TrueUnion / float64(cfg.LargeSize))
	return res
}

// Format renders the result.
func (r DominatedResult) Format() string {
	t := &Table{
		Title:   "§3.5 — dominated merge: one large set + many small sets",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("|A0| (large set)", d(r.Cfg.LargeSize))
	t.AddRow("small sets x size", d(r.Cfg.SmallSets)+" x "+d(r.Cfg.SmallSize))
	t.AddRow("true union", f2(r.TrueUnion))
	t.AddRow("Theta union rel. err", pct(r.ThetaErr))
	t.AddRow("Adaptive/LCS union rel. err", pct(r.LCSErr))
	t.AddRow("error ratio Theta/LCS", f2(r.Ratio))
	t.AddRow("predicted ratio sqrt(N/|A0|)", f2(r.Predicted))
	t.AddNote("paper: only the large sketch contributes error under the adaptive merge; the Theta rule's error scales with the total cardinality")
	return t.Format()
}
