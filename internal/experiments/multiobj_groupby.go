package experiments

import (
	"math"
	"sort"

	"ats/internal/estimator"
	"ats/internal/groupby"
	"ats/internal/multiobj"
	"ats/internal/stream"
)

// MultiObjConfig parameterizes the multi-objective sampling experiment
// (§3.8): sketch footprint as a function of objective correlation.
type MultiObjConfig struct {
	N          int
	K          int
	Objectives int
	// Correlations: 0 = independent weights, 1 = exact scalar multiples.
	Correlations []float64
	Seed         uint64
}

// DefaultMultiObjConfig sweeps correlation with 3 objectives.
func DefaultMultiObjConfig() MultiObjConfig {
	return MultiObjConfig{
		N: 50000, K: 200, Objectives: 3,
		Correlations: []float64{0, 0.5, 0.9, 1.0},
		Seed:         313,
	}
}

// MultiObjPoint is the per-correlation aggregate.
type MultiObjPoint struct {
	Correlation float64
	// CombinedSize is the number of distinct items across the objective
	// samples; Worst is c × k, Best is ~k.
	CombinedSize int
	// FracOfWorst = CombinedSize / (c*k).
	FracOfWorst float64
}

// MultiObjResult is the sweep result.
type MultiObjResult struct {
	Cfg    MultiObjConfig
	Points []MultiObjPoint
}

// MultiObj runs the §3.8 experiment: per-objective bottom-k samples over
// shared uniforms overlap more as the objective weights correlate, so the
// combined sketch shrinks from c×k towards k.
func MultiObj(cfg MultiObjConfig) MultiObjResult {
	res := MultiObjResult{Cfg: cfg}
	rng := stream.NewRNG(cfg.Seed)
	base := make([]float64, cfg.N)
	for i := range base {
		base[i] = math.Exp(rng.NormFloat64()) // log-normal base weight
	}
	for _, rho := range cfg.Correlations {
		sk := multiobj.New(cfg.K, cfg.Objectives, cfg.Seed+7)
		for i := 0; i < cfg.N; i++ {
			ws := make([]float64, cfg.Objectives)
			vs := make([]float64, cfg.Objectives)
			for j := range ws {
				// Mix the shared log-weight with an independent one: at
				// rho=1 all objectives are scalar multiples of each other;
				// at rho=0 they are independent.
				indep := math.Exp(rng.NormFloat64())
				ws[j] = math.Pow(base[i], rho) * math.Pow(indep, 1-rho) * float64(j+1)
				vs[j] = ws[j]
			}
			sk.Add(multiobj.Item{Key: uint64(i), Weights: ws, Values: vs})
		}
		size := sk.CombinedSize()
		res.Points = append(res.Points, MultiObjPoint{
			Correlation:  rho,
			CombinedSize: size,
			FracOfWorst:  float64(size) / float64(cfg.Objectives*cfg.K),
		})
	}
	return res
}

// Format renders the sweep.
func (r MultiObjResult) Format() string {
	t := &Table{
		Title:   "§3.8 — multi-objective samples: footprint vs objective correlation",
		Columns: []string{"correlation", "combined size", "fraction of c*k"},
	}
	for _, p := range r.Points {
		t.AddRow(f2(p.Correlation), d(p.CombinedSize), pct(p.FracOfWorst))
	}
	t.AddNote("c=%d objectives, k=%d: identical (scalar-multiple) weights collapse the union to ~k items — 1/c of the worst-case budget",
		r.Cfg.Objectives, r.Cfg.K)
	return t.Format()
}

// GroupByConfig parameterizes the group-by distinct counting experiment
// (§3.6).
type GroupByConfig struct {
	Groups    int
	Items     int
	M         int // dedicated sketches
	K         int // sketch size
	ZipfS     float64
	Seed      uint64
	TopReport int // report accuracy for this many heavy groups
}

// DefaultGroupByConfig uses 5000 groups with Zipf-distributed sizes.
func DefaultGroupByConfig() GroupByConfig {
	return GroupByConfig{Groups: 5000, Items: 300000, M: 50, K: 64, ZipfS: 1.1, Seed: 606, TopReport: 10}
}

// GroupByResult reports footprint and heavy-group accuracy.
type GroupByResult struct {
	Cfg GroupByConfig
	// MemoryItems is the total retained items; BaselineItems what
	// one-bottom-k-per-group would retain.
	MemoryItems   int
	BaselineItems int
	// HeavyRelErr is the mean relative error of the estimates for the
	// TopReport largest groups.
	HeavyRelErr float64
	// PromotedGroups is how many groups ended with dedicated sketches.
	PromotedGroups int
}

// GroupBy runs the §3.6 experiment: m dedicated sketches plus a shared
// pool bound the memory while keeping heavy-group estimates accurate.
func GroupBy(cfg GroupByConfig) GroupByResult {
	res := GroupByResult{Cfg: cfg}
	zipf := stream.NewZipf(cfg.Groups, cfg.ZipfS, cfg.Seed)
	rng := stream.NewRNG(cfg.Seed + 1)
	counter := groupby.New(cfg.M, cfg.K, cfg.Seed+2)
	truth := make(map[uint64]map[uint64]struct{})
	for i := 0; i < cfg.Items; i++ {
		g := zipf.Next()
		// Distinct keys per group scale with group frequency; draw keys
		// from a group-sized universe so duplicates occur.
		key := g<<32 | uint64(rng.Intn(1+i/(int(g)+1)+1))
		counter.Add(g, key)
		set, ok := truth[g]
		if !ok {
			set = make(map[uint64]struct{})
			truth[g] = set
		}
		set[key] = struct{}{}
	}
	res.MemoryItems = counter.MemoryItems()
	res.PromotedGroups = len(counter.DedicatedGroups())
	// Baseline: a bottom-k sketch per group retains min(k+1, group size).
	for _, set := range truth {
		n := len(set)
		if n > cfg.K+1 {
			n = cfg.K + 1
		}
		res.BaselineItems += n
	}
	// Accuracy on the heaviest groups by true distinct count.
	type gc struct {
		g uint64
		n int
	}
	var heavy []gc
	for g, set := range truth {
		heavy = append(heavy, gc{g, len(set)})
	}
	sort.Slice(heavy, func(i, j int) bool { return heavy[i].n > heavy[j].n })
	if len(heavy) > cfg.TopReport {
		heavy = heavy[:cfg.TopReport]
	}
	var rel estimator.Running
	for _, h := range heavy {
		est := counter.Estimate(h.g)
		e := math.Abs(est-float64(h.n)) / float64(h.n)
		rel.Add(e)
	}
	res.HeavyRelErr = rel.Mean()
	return res
}

// Format renders the result.
func (r GroupByResult) Format() string {
	t := &Table{
		Title:   "§3.6 — group-by distinct counting with a shared pool",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("groups / items", d(r.Cfg.Groups)+" / "+d(r.Cfg.Items))
	t.AddRow("dedicated sketches m / k", d(r.Cfg.M)+" / "+d(r.Cfg.K))
	t.AddRow("memory (items)", d(r.MemoryItems))
	t.AddRow("per-group-sketch baseline (items)", d(r.BaselineItems))
	t.AddRow("memory saving", f2(float64(r.BaselineItems)/float64(max(1, r.MemoryItems)))+"x")
	t.AddRow("promoted groups", d(r.PromotedGroups))
	t.AddRow("heavy-group mean rel. err", pct(r.HeavyRelErr))
	t.AddNote("the pool threshold Tmax adapts to the top-m groups; small groups pay error relative to heavy-group sizes")
	return t.Format()
}
