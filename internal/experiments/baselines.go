package experiments

import (
	"math"

	"ats/internal/bottomk"
	"ats/internal/estimator"
	"ats/internal/stream"
	"ats/internal/varopt"
)

// BaselinesConfig parameterizes the fixed-size sampler comparison: the
// adaptive-threshold priority sample (this paper's canonical sampler)
// against VarOpt_k (the variance-optimal scheme of Cohen et al., cited in
// §1.1) and independent Poisson sampling at matched expected size.
type BaselinesConfig struct {
	N      int
	Alpha  float64
	K      int
	Trials int
	Seed   uint64
}

// DefaultBaselinesConfig compares at k = 100 on a heavy-tailed population.
func DefaultBaselinesConfig() BaselinesConfig {
	return BaselinesConfig{N: 5000, Alpha: 1.5, K: 100, Trials: 2000, Seed: 2121}
}

// BaselinesResult reports, for the subset-sum task (a fixed half of the
// keys), the Monte-Carlo relative error of each scheme.
type BaselinesResult struct {
	Cfg   BaselinesConfig
	Truth float64
	// Relative SD of the subset-sum estimate per scheme.
	Priority, VarOpt, Poisson float64
	// PriorityBound is the paper-cited guarantee SD <= S/sqrt(k-1)
	// relative to the subset sum (loose: it bounds the total's error).
	PriorityBound float64
}

// Baselines runs the comparison. The subset predicate keeps half of the
// keys so none of the schemes degenerates to an exact answer.
func Baselines(cfg BaselinesConfig) BaselinesResult {
	res := BaselinesResult{Cfg: cfg}
	items := stream.ParetoWeights(cfg.N, cfg.Alpha, cfg.Seed)
	var total float64
	for _, it := range items {
		total += it.Value
		if it.Key%2 == 0 {
			res.Truth += it.Value
		}
	}
	predB := func(e bottomk.Entry) bool { return e.Key%2 == 0 }
	predV := func(e varopt.Entry) bool { return e.Key%2 == 0 }

	var pri, vo, poi []float64
	rng := stream.NewRNG(cfg.Seed + 1)
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + 10 + uint64(trial)

		skP := bottomk.New(cfg.K, seed)
		skV := varopt.New(cfg.K, seed)
		for _, it := range items {
			skP.Add(it.Key, it.Weight, it.Value)
			skV.Add(it.Key, it.Weight, it.Value)
		}
		s, _ := skP.SubsetSum(predB)
		pri = append(pri, s)
		vo = append(vo, skV.SubsetSum(predV))

		// Poisson: independent inclusion with probabilities min(1, w*t),
		// t calibrated so the expected sample size is k.
		t := poissonThreshold(items, cfg.K)
		est := 0.0
		for _, it := range items {
			p := it.Weight * t
			if p > 1 {
				p = 1
			}
			if rng.Float64() < p && it.Key%2 == 0 {
				est += it.Value / p
			}
		}
		poi = append(poi, est)
	}
	res.Priority = estimator.RelativeSD(pri, res.Truth)
	res.VarOpt = estimator.RelativeSD(vo, res.Truth)
	res.Poisson = estimator.RelativeSD(poi, res.Truth)
	res.PriorityBound = total / (math.Sqrt(float64(cfg.K-1)) * res.Truth)
	return res
}

// poissonThreshold finds t with Σ min(1, w_i t) = k by bisection.
func poissonThreshold(items []stream.WeightedItem, k int) float64 {
	lo, hi := 0.0, 1.0
	size := func(t float64) float64 {
		s := 0.0
		for _, it := range items {
			p := it.Weight * t
			if p > 1 {
				p = 1
			}
			s += p
		}
		return s
	}
	for size(hi) < float64(k) {
		hi *= 2
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if size(mid) < float64(k) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Format renders the comparison.
func (r BaselinesResult) Format() string {
	t := &Table{
		Title:   "baselines — subset-sum error at fixed k: priority vs VarOpt vs Poisson",
		Columns: []string{"scheme", "relative SD"},
	}
	t.AddRow("priority sampling (adaptive threshold)", pct(r.Priority))
	t.AddRow("VarOpt_k (variance-optimal)", pct(r.VarOpt))
	t.AddRow("Poisson (independent, E[size]=k)", pct(r.Poisson))
	t.AddRow("priority-sampling bound S/sqrt(k-1)", pct(r.PriorityBound))
	t.AddNote("n=%d k=%d trials=%d; priority sampling should track VarOpt closely and respect its bound (Szegedy 2006)",
		r.Cfg.N, r.Cfg.K, r.Cfg.Trials)
	return t.Format()
}
