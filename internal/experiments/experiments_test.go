package experiments

import (
	"strings"
	"testing"
)

func TestTableFormat(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("n=%d", 5)
	out := tab.Format()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "long-column") {
		t.Error("missing column")
	}
	if !strings.Contains(out, "note: n=5") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if f2(1.234) != "1.23" || f3(1.2345) != "1.234" || f4(1.23456) != "1.2346" {
		t.Error("float formatters wrong")
	}
	if f5(0.123456) != "0.12346" {
		t.Error("f5 wrong")
	}
	if d(42) != "42" {
		t.Error("d wrong")
	}
	if pct(0.1234) != "12.34%" {
		t.Error("pct wrong")
	}
}

// The experiment drivers are exercised end-to-end with scaled-down configs
// so `go test` stays fast while still executing every code path that
// cmd/atsbench uses.

func TestFig1Small(t *testing.T) {
	cfg := Fig1Config{K: 20, Delta: 0.5, Rate: 300, Start: -0.5, End: 2, Every: 0.1, Seed: 1}
	res := Fig1(cfg)
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	sum := res.Summarize(1, 2)
	if sum.MeanImpSize <= sum.MeanGLSize {
		t.Errorf("improved (%v) must beat G&L (%v)", sum.MeanImpSize, sum.MeanGLSize)
	}
	if out := res.FormatFig1(); !strings.Contains(out, "Figure 1") {
		t.Error("format missing header")
	}
}

func TestFig2Small(t *testing.T) {
	cfg := Fig2Config{
		K: 20, Delta: 0.5,
		BaseRate: 200, SpikeRate: 1500, SpikeStart: 0, SpikeEnd: 0.25,
		Start: -2, End: 2, Every: 0.1, Seed: 2,
	}
	res := Fig2(cfg)
	pre := res.Summarize(cfg.SpikeStart-0.5, cfg.SpikeStart)
	if pre.SizeRatio <= 1.2 {
		t.Errorf("pre-spike ratio %v, want > 1.2", pre.SizeRatio)
	}
	if out := res.FormatFig2(cfg); !strings.Contains(out, "recover") {
		t.Error("format missing recovery note")
	}
}

func TestFig3Small(t *testing.T) {
	cfg := Fig3Config{
		K: 5, Betas: []float64{0.3, 0.9}, StreamLen: 4000, Trials: 3,
		FreqTable: 64, Seed: 3,
	}
	res := Fig3(cfg)
	if len(res.Points) != 2 {
		t.Fatal("wrong point count")
	}
	// Heavier tail => larger adaptive sketch.
	if res.Points[1].SamplerSize <= res.Points[0].SamplerSize {
		t.Errorf("sampler size should grow with beta: %v vs %v",
			res.Points[0].SamplerSize, res.Points[1].SamplerSize)
	}
	if res.Points[0].FreqSize != 48 {
		t.Errorf("FreqItems size = %v, want 0.75*64", res.Points[0].FreqSize)
	}
	if out := res.Format(); !strings.Contains(out, "beta") {
		t.Error("format missing beta column")
	}
}

func TestFig4Small(t *testing.T) {
	cfg := Fig4Config{
		SizeA: 3000, SizeB: 6000, K: 64,
		Jaccards: []float64{0, 0.3},
		Trials:   40, Seed: 4,
	}
	res := Fig4(cfg)
	if len(res.Points) != 2 {
		t.Fatal("wrong point count")
	}
	for _, p := range res.Points {
		if p.LCS <= 0 || p.Theta <= 0 || p.BottomK <= 0 {
			t.Errorf("zero error at jaccard %v", p.Jaccard)
		}
		if p.LCS > p.BottomK*1.1 {
			t.Errorf("LCS (%v) should not exceed bottom-k (%v)", p.LCS, p.BottomK)
		}
	}
	if out := res.Format(); !strings.Contains(out, "jaccard") {
		t.Error("format missing jaccard column")
	}
}

func TestBudgetSmall(t *testing.T) {
	cfg := BudgetConfig{Budget: 50000, Items: 3000, Trials: 3, Seed: 5}
	res := Budget(cfg)
	if res.Ratio < 2.5 || res.Ratio > 6 {
		t.Errorf("budget ratio %v, want near the paper's ~4x", res.Ratio)
	}
	if res.MaxSizeObserved > 5113 {
		t.Errorf("max size %d exceeds the survey cap", res.MaxSizeObserved)
	}
	if out := res.Format(); !strings.Contains(out, "adaptive / bottom-k ratio") {
		t.Error("format missing ratio row")
	}
}

func TestMergeDominatedSmall(t *testing.T) {
	cfg := DominatedConfig{LargeSize: 500, SmallSets: 300, SmallSize: 50, K: 64, Trials: 15, Seed: 6}
	res := MergeDominated(cfg)
	if res.Ratio < 2 {
		t.Errorf("Theta/LCS error ratio %v, want the adaptive merge clearly ahead", res.Ratio)
	}
	if out := res.Format(); !strings.Contains(out, "Theta union rel. err") {
		t.Error("format missing rows")
	}
}

func TestUnbiasedSmall(t *testing.T) {
	cfg := UnbiasedConfig{N: 400, K: 50, Alpha: 1.5, Trials: 400, Seed: 7}
	res := Unbiased(cfg)
	if zAbs(res.ZScore) > 4.5 {
		t.Errorf("bias z = %v", res.ZScore)
	}
	if res.VarRatio < 0.7 || res.VarRatio > 1.3 {
		t.Errorf("variance ratio %v, want ≈ 1", res.VarRatio)
	}
}

func TestStratifiedSmall(t *testing.T) {
	cfg := StratifiedConfig{N: 800, Countries: 6, Ages: 4, Budget: 120, Trials: 40, Seed: 8}
	res := Stratified(cfg)
	if res.MeanSampleSize > float64(cfg.Budget) {
		t.Errorf("mean sample %v exceeds budget", res.MeanSampleSize)
	}
	if res.MinCountrySamples < 1 || res.MinAgeSamples < 1 {
		t.Error("some stratum uncovered")
	}
	if zAbs(res.ZScore) > 4.5 {
		t.Errorf("bias z = %v", res.ZScore)
	}
}

func TestVarSizeSmall(t *testing.T) {
	cfg := VarSizeConfig{N: 3000, Alpha: 1.5, Deltas: []float64{800, 2000}, Trials: 40, Seed: 9}
	res := VarSize(cfg)
	if len(res.Points) != 2 {
		t.Fatal("wrong point count")
	}
	if res.Points[0].MeanSize <= res.Points[1].MeanSize {
		t.Error("tighter delta must use more samples")
	}
	for _, p := range res.Points {
		if p.AchievedSD < 0.4*p.Delta || p.AchievedSD > 2.5*p.Delta {
			t.Errorf("achieved SD %v for target %v", p.AchievedSD, p.Delta)
		}
	}
}

func TestAQPSmall(t *testing.T) {
	cfg := AQPConfig{Rows: 8000, Alpha: 1.5, TargetSEs: []float64{0.02, 0.05}, Trials: 10, Seed: 10}
	res := AQP(cfg)
	if res.Points[0].MeanRowsRead <= res.Points[1].MeanRowsRead {
		t.Error("tighter SE must read more rows")
	}
}

func TestMultiObjSmall(t *testing.T) {
	cfg := MultiObjConfig{N: 4000, K: 50, Objectives: 3, Correlations: []float64{0, 1}, Seed: 11}
	res := MultiObj(cfg)
	if res.Points[1].CombinedSize >= res.Points[0].CombinedSize {
		t.Errorf("correlated objectives must shrink the sketch: %v vs %v",
			res.Points[1].CombinedSize, res.Points[0].CombinedSize)
	}
	if res.Points[1].CombinedSize > cfg.K+2 {
		t.Errorf("scalar multiples should collapse to ≈ k, got %d", res.Points[1].CombinedSize)
	}
}

func TestGroupBySmall(t *testing.T) {
	cfg := GroupByConfig{Groups: 400, Items: 20000, M: 16, K: 32, ZipfS: 1.1, Seed: 12, TopReport: 5}
	res := GroupBy(cfg)
	if res.MemoryItems >= res.BaselineItems {
		t.Errorf("pool scheme memory %d not below baseline %d", res.MemoryItems, res.BaselineItems)
	}
	if res.HeavyRelErr > 0.5 {
		t.Errorf("heavy-group error %v too large", res.HeavyRelErr)
	}
	if res.PromotedGroups != cfg.M {
		t.Errorf("promoted %d, want %d", res.PromotedGroups, cfg.M)
	}
}

func zAbs(z float64) float64 {
	if z < 0 {
		return -z
	}
	return z
}

func TestAsymptoticSmall(t *testing.T) {
	cfg := AsymptoticConfig{Sizes: []int{500, 5000}, Trials: 25, Seed: 13}
	res := Asymptotic(cfg)
	if len(res.Points) != 2 {
		t.Fatal("wrong point count")
	}
	if res.Points[1].MedianRMSE >= res.Points[0].MedianRMSE {
		t.Errorf("median RMSE did not shrink: %v -> %v",
			res.Points[0].MedianRMSE, res.Points[1].MedianRMSE)
	}
	if res.Points[1].MeanRMSE >= res.Points[0].MeanRMSE {
		t.Errorf("mean RMSE did not shrink: %v -> %v",
			res.Points[0].MeanRMSE, res.Points[1].MeanRMSE)
	}
	if res.SDRatio < 0.7 || res.SDRatio > 1.4 {
		t.Errorf("priority-equivalence SD ratio %v, want ≈ 1", res.SDRatio)
	}
}

func TestBaselinesSmall(t *testing.T) {
	cfg := BaselinesConfig{N: 1500, Alpha: 1.5, K: 60, Trials: 400, Seed: 14}
	res := Baselines(cfg)
	// VarOpt is optimal; priority sampling must be within ~2x of it and
	// under the Szegedy bound.
	if res.Priority > 2.2*res.VarOpt {
		t.Errorf("priority SD %v too far above VarOpt %v", res.Priority, res.VarOpt)
	}
	if res.Priority > res.PriorityBound {
		t.Errorf("priority SD %v exceeds its bound %v", res.Priority, res.PriorityBound)
	}
	if res.VarOpt <= 0 || res.Poisson <= 0 {
		t.Error("degenerate errors")
	}
}

func TestAblationSmall(t *testing.T) {
	cfg := AblationConfig{
		Seed:       15,
		TopKStream: 5000, TopKTrials: 2,
		VarSizeN: 2000, VarSizeDelta: 1000, VarSizeTrials: 10,
		AQPRows: 5000, AQPTrials: 3,
	}
	res := Ablation(cfg)
	for name, tab := range map[string]*Table{"topk": res.TopK, "varsize": res.VarSize, "aqp": res.AQP} {
		if tab == nil || len(tab.Rows) < 3 {
			t.Errorf("%s ablation table incomplete", name)
		}
	}
	out := res.Format()
	if !strings.Contains(out, "ablation") {
		t.Error("format missing headers")
	}
}
