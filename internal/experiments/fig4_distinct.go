package experiments

import (
	"ats/internal/distinct"
	"ats/internal/estimator"
	"ats/internal/stream"
)

// Fig4Config parameterizes the distinct-counting union experiment.
type Fig4Config struct {
	SizeA, SizeB int       // paper: 1e6 and 2e6 (we scale; error depends on k, not N)
	K            int       // sketch size (paper: 100)
	Jaccards     []float64 // similarity grid (paper: 0 .. ~1/3)
	Trials       int
	Seed         uint64
}

// DefaultFig4Config scales the paper's |A|=10^6, |B|=2x10^6 down to 2x10^4
// and 4x10^4: for N >> k the relative error of all three union rules
// depends on k and the Jaccard similarity only, so the curves' shape is
// preserved (documented in DESIGN.md §3).
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		SizeA: 20000, SizeB: 40000, K: 100,
		Jaccards: []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.333},
		Trials:   300,
		Seed:     2024,
	}
}

// Fig4Point is the per-Jaccard aggregate.
type Fig4Point struct {
	Jaccard float64
	// Relative standard deviation SD(N̂ − N)/N for each union rule.
	LCS, BottomK, Theta float64
}

// Fig4Result is the full sweep.
type Fig4Result struct {
	Cfg    Fig4Config
	Points []Fig4Point
}

// Fig4 measures the relative error of the three union-cardinality rules —
// adaptive threshold / LCS, basic bottom-k, and Theta — as the Jaccard
// similarity of the two sets varies.
func Fig4(cfg Fig4Config) Fig4Result {
	res := Fig4Result{Cfg: cfg}
	for ji, j := range cfg.Jaccards {
		overlap := stream.OverlapForJaccard(cfg.SizeA, cfg.SizeB, j)
		var lcs, bk, th []float64
		var truth float64
		for trial := 0; trial < cfg.Trials; trial++ {
			salt := cfg.Seed + uint64(ji*100000+trial)
			pair := stream.NewSetPair(cfg.SizeA, cfg.SizeB, overlap, salt)
			truth = float64(pair.UnionSize())
			ska := distinct.NewSketch(cfg.K, cfg.Seed)
			for _, k := range pair.A {
				ska.Add(k)
			}
			skb := distinct.NewSketch(cfg.K, cfg.Seed)
			for _, k := range pair.B {
				skb.Add(k)
			}
			lcs = append(lcs, distinct.UnionEstimateLCS(ska, skb))
			bk = append(bk, distinct.UnionEstimateBottomK(ska, skb))
			th = append(th, distinct.UnionEstimateTheta(ska, skb))
		}
		res.Points = append(res.Points, Fig4Point{
			Jaccard: float64(overlap) / truth,
			LCS:     estimator.RelativeSD(lcs, truth),
			BottomK: estimator.RelativeSD(bk, truth),
			Theta:   estimator.RelativeSD(th, truth),
		})
	}
	return res
}

// Format renders the sweep as a table (values in percent, as in Figure 4).
func (r Fig4Result) Format() string {
	t := &Table{
		Title:   "Figure 4 — distinct counting union: relative error vs Jaccard similarity",
		Columns: []string{"jaccard", "AdaptiveThreshold(LCS)", "Bottom-k", "Theta"},
	}
	for _, p := range r.Points {
		t.AddRow(f3(p.Jaccard), pct(p.LCS), pct(p.BottomK), pct(p.Theta))
	}
	t.AddNote("|A|=%d |B|=%d k=%d, %d trials (paper uses |A|=1e6 |B|=2e6; error depends on k, so shape is preserved)",
		r.Cfg.SizeA, r.Cfg.SizeB, r.Cfg.K, r.Cfg.Trials)
	t.AddNote("paper shape: LCS below bottom-k and Theta across the Jaccard range (everywhere except A contained in B)")
	return t.Format()
}
