package experiments

import (
	"ats/internal/stream"
	"ats/internal/window"
)

// WindowPoint is one evaluation of the sliding-window sampler state.
type WindowPoint struct {
	Time         float64
	GLThreshold  float64
	ImpThreshold float64
	GLSize       int
	ImpSize      int
	Stored       int
	Rate         float64
}

// WindowResult holds the time series behind Figures 1 and 2.
type WindowResult struct {
	K      int
	Delta  float64
	Points []WindowPoint
	// InitialThresholds records (arrival time, exclusion boundary) for a
	// subsample of arrivals — the top line of Figure 1.
	InitialThresholds [][2]float64
}

// Fig1Config parameterizes the steady-rate threshold-evolution experiment.
type Fig1Config struct {
	K     int     // window sample parameter (paper example: 100)
	Delta float64 // window length in seconds
	Rate  float64 // arrivals per second (paper example: 1000)
	Start float64 // simulation start time
	End   float64 // simulation end time
	Every float64 // evaluation interval
	Seed  uint64
}

// DefaultFig1Config matches the §3.2 running example: 1000 items/s,
// 100-second-equivalent window scaled to Δ=1s, budget k=100, so the ideal
// marginal inclusion probability is k/(rate·Δ) = 0.1.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{K: 100, Delta: 1, Rate: 1000, Start: -1, End: 5, Every: 0.05, Seed: 7}
}

// Fig1 runs the steady-arrival-rate experiment of Figure 1: the per-item
// initial thresholds hover near the true marginal probability
// k/(rate·Δ) while the G&L extraction threshold sits near half of it.
func Fig1(cfg Fig1Config) WindowResult {
	return runWindow(cfg.K, cfg.Delta, stream.ConstantRate(cfg.Rate),
		cfg.Start, cfg.End, cfg.Every, cfg.Seed)
}

// Fig2Config parameterizes the rate-spike recovery experiment.
type Fig2Config struct {
	K          int
	Delta      float64
	BaseRate   float64
	SpikeRate  float64
	SpikeStart float64
	SpikeEnd   float64
	Start      float64
	End        float64
	Every      float64
	Seed       uint64
}

// DefaultFig2Config matches the shape of Figure 2: a steady base rate with
// a burst to several thousand items/s just after t = 0.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		K: 100, Delta: 1,
		BaseRate: 500, SpikeRate: 4000, SpikeStart: 0, SpikeEnd: 0.5,
		Start: -3, End: 4, Every: 0.05, Seed: 11,
	}
}

// Fig2 runs the spike experiment of Figure 2: the improved threshold
// yields roughly twice the usable sample at steady state and recovers from
// the arrival-rate spike faster than the G&L threshold.
func Fig2(cfg Fig2Config) WindowResult {
	rate := stream.SpikeRate(cfg.BaseRate, cfg.SpikeRate, cfg.SpikeStart, cfg.SpikeEnd)
	return runWindow(cfg.K, cfg.Delta, rate, cfg.Start, cfg.End, cfg.Every, cfg.Seed)
}

func runWindow(k int, delta float64, rate stream.RateFunc, start, end, every float64, seed uint64) WindowResult {
	s := window.New(k, delta, seed)
	arr := stream.NewArrivals(rate, start, seed+1)
	res := WindowResult{K: k, Delta: delta}
	nextEval := start + delta // let the first window fill before evaluating
	n := 0
	for {
		a := arr.Next()
		if a.Time > end {
			break
		}
		for nextEval <= a.Time {
			s.Advance(nextEval)
			res.Points = append(res.Points, evalWindow(s, nextEval, rate))
			nextEval += every
		}
		boundary := s.Add(a.Key, a.Time)
		n++
		if n%25 == 0 {
			res.InitialThresholds = append(res.InitialThresholds, [2]float64{a.Time, boundary})
		}
	}
	for nextEval <= end {
		s.Advance(nextEval)
		res.Points = append(res.Points, evalWindow(s, nextEval, rate))
		nextEval += every
	}
	return res
}

func evalWindow(s *window.Sampler, t float64, rate stream.RateFunc) WindowPoint {
	gl, glT := s.GLSample()
	imp, impT := s.ImprovedSample()
	return WindowPoint{
		Time:         t,
		GLThreshold:  glT,
		ImpThreshold: impT,
		GLSize:       len(gl),
		ImpSize:      len(imp),
		Stored:       s.StoredItems(),
		Rate:         rate(t),
	}
}

// Summary aggregates a WindowResult over the steady region [from, to].
type WindowSummary struct {
	MeanGLThreshold  float64
	MeanImpThreshold float64
	MeanGLSize       float64
	MeanImpSize      float64
	SizeRatio        float64 // improved / G&L
}

// Summarize averages the series over [from, to].
func (r WindowResult) Summarize(from, to float64) WindowSummary {
	var s WindowSummary
	n := 0
	for _, p := range r.Points {
		if p.Time < from || p.Time > to {
			continue
		}
		n++
		s.MeanGLThreshold += p.GLThreshold
		s.MeanImpThreshold += p.ImpThreshold
		s.MeanGLSize += float64(p.GLSize)
		s.MeanImpSize += float64(p.ImpSize)
	}
	if n == 0 {
		return s
	}
	fn := float64(n)
	s.MeanGLThreshold /= fn
	s.MeanImpThreshold /= fn
	s.MeanGLSize /= fn
	s.MeanImpSize /= fn
	if s.MeanGLSize > 0 {
		s.SizeRatio = s.MeanImpSize / s.MeanGLSize
	}
	return s
}

// RecoveryTime returns the first time >= after at which the given scheme's
// sample size is back above frac × its pre-spike mean (computed over
// [calibFrom, calibTo]); -1 if it never recovers within the series. Used to
// quantify the Figure 2 claim that the improved threshold recovers faster.
func (r WindowResult) RecoveryTime(improved bool, after, calibFrom, calibTo, frac float64) float64 {
	base := 0.0
	n := 0
	for _, p := range r.Points {
		if p.Time >= calibFrom && p.Time <= calibTo {
			if improved {
				base += float64(p.ImpSize)
			} else {
				base += float64(p.GLSize)
			}
			n++
		}
	}
	if n == 0 {
		return -1
	}
	base /= float64(n)
	sizeAt := func(p WindowPoint) float64 {
		if improved {
			return float64(p.ImpSize)
		}
		return float64(p.GLSize)
	}
	// The sample-size trough lags the spike (it happens when the
	// spike-clamped thresholds dominate the window), so locate the minimum
	// after the spike first and measure recovery from there.
	minT, minV := after, 1e18
	for _, p := range r.Points {
		if p.Time < after {
			continue
		}
		if v := sizeAt(p); v < minV {
			minV, minT = v, p.Time
		}
	}
	for _, p := range r.Points {
		if p.Time < minT {
			continue
		}
		if sizeAt(p) >= frac*base {
			return p.Time
		}
	}
	return -1
}

// FormatFig1 renders the Figure 1 series as a table.
func (r WindowResult) FormatFig1() string {
	t := &Table{
		Title:   "Figure 1 — sliding-window thresholds over time (steady arrivals)",
		Columns: []string{"time", "T_item(init)", "T_GL", "T_improved", "|S_GL|", "|S_imp|"},
	}
	// Interleave: report at ~0.25s granularity for readability.
	last := -1e18
	ii := 0
	for _, p := range r.Points {
		if p.Time-last < 0.25 {
			continue
		}
		last = p.Time
		// nearest recorded initial threshold
		init := ""
		for ii < len(r.InitialThresholds) && r.InitialThresholds[ii][0] < p.Time {
			ii++
		}
		if ii > 0 {
			init = f4(r.InitialThresholds[ii-1][1])
		}
		t.AddRow(f2(p.Time), init, f4(p.GLThreshold), f4(p.ImpThreshold), d(p.GLSize), d(p.ImpSize))
	}
	sum := r.Summarize(r.Points[0].Time+r.Delta, r.Points[len(r.Points)-1].Time)
	t.AddNote("steady means: T_GL=%.4f T_imp=%.4f |S_GL|=%.1f |S_imp|=%.1f (ratio %.2fx)",
		sum.MeanGLThreshold, sum.MeanImpThreshold, sum.MeanGLSize, sum.MeanImpSize, sum.SizeRatio)
	return t.Format()
}

// FormatFig2 renders the Figure 2 series as a table.
func (r WindowResult) FormatFig2(cfg Fig2Config) string {
	t := &Table{
		Title:   "Figure 2 — spike recovery (threshold, sample size, arrival rate)",
		Columns: []string{"time", "rate", "T_GL", "T_improved", "|S_GL|", "|S_imp|"},
	}
	last := -1e18
	for _, p := range r.Points {
		if p.Time-last < 0.2 {
			continue
		}
		last = p.Time
		t.AddRow(f2(p.Time), f2(p.Rate), f4(p.GLThreshold), f4(p.ImpThreshold), d(p.GLSize), d(p.ImpSize))
	}
	pre := r.Summarize(cfg.SpikeStart-1, cfg.SpikeStart)
	t.AddNote("pre-spike size ratio improved/G&L = %.2fx", pre.SizeRatio)
	recGL := r.RecoveryTime(false, cfg.SpikeEnd, cfg.SpikeStart-1, cfg.SpikeStart, 0.9)
	recImp := r.RecoveryTime(true, cfg.SpikeEnd, cfg.SpikeStart-1, cfg.SpikeStart, 0.9)
	t.AddNote("time to recover 90%% of pre-spike sample: G&L=%.2fs improved=%.2fs", recGL, recImp)
	return t.Format()
}
