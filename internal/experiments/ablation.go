package experiments

import (
	"math"
	"strings"
	"time"

	"ats/internal/aqp"
	"ats/internal/estimator"
	"ats/internal/stream"
	"ats/internal/topk"
	"ats/internal/varsize"
)

// AblationConfig parameterizes the design-choice ablations called out in
// DESIGN.md: the top-k threshold-recompute pacing, the variance-sized
// sampler's oversampling factor, and the AQP checkpoint growth fraction.
type AblationConfig struct {
	Seed uint64
	// TopK
	TopKStream int
	TopKTrials int
	// VarSize
	VarSizeN      int
	VarSizeDelta  float64
	VarSizeTrials int
	// AQP
	AQPRows   int
	AQPTrials int
}

// DefaultAblationConfig uses moderate sizes so the full sweep runs in
// seconds.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{
		Seed:       3131,
		TopKStream: 30000, TopKTrials: 10,
		VarSizeN: 10000, VarSizeDelta: 2000, VarSizeTrials: 100,
		AQPRows: 50000, AQPTrials: 20,
	}
}

// AblationResult carries the three rendered sub-tables.
type AblationResult struct {
	TopK    *Table
	VarSize *Table
	AQP     *Table
}

// Ablation runs all three sweeps.
func Ablation(cfg AblationConfig) AblationResult {
	return AblationResult{
		TopK:    ablateTopK(cfg),
		VarSize: ablateVarSize(cfg),
		AQP:     ablateAQP(cfg),
	}
}

// ablateTopK sweeps the threshold-recompute interval (in units of k).
func ablateTopK(cfg AblationConfig) *Table {
	t := &Table{
		Title:   "ablation — top-k threshold recompute interval (units of k)",
		Columns: []string{"interval", "mean errors", "mean size", "ns/item"},
	}
	k := 10
	for _, mult := range []int{1, 4, 16, 64} {
		var errs, size float64
		var elapsed time.Duration
		for trial := 0; trial < cfg.TopKTrials; trial++ {
			seed := cfg.Seed + uint64(trial)
			py := stream.NewPitmanYor(0.9, seed)
			keys := make([]uint64, cfg.TopKStream)
			for i := range keys {
				keys[i] = py.Next()
			}
			s := topk.New(k, seed+77)
			s.SetUpdateInterval(mult * k)
			start := time.Now()
			for _, key := range keys {
				s.Add(key)
			}
			elapsed += time.Since(start)
			truth := make(map[uint64]struct{}, k)
			for _, id := range py.TopK(k) {
				truth[id] = struct{}{}
			}
			wrong := 0
			for _, e := range s.TopK() {
				if _, ok := truth[e.Key]; !ok {
					wrong++
				}
			}
			errs += float64(wrong)
			size += float64(s.Len())
		}
		ft := float64(cfg.TopKTrials)
		perItem := float64(elapsed.Nanoseconds()) / float64(cfg.TopKTrials*cfg.TopKStream)
		t.AddRow(d(mult)+"k", f2(errs/ft), f2(size/ft), f2(perItem))
	}
	t.AddNote("rare recomputation lets the sketch balloon; the default 4k trades a small size increase for ~O(1) amortized maintenance")
	return t
}

// ablateVarSize sweeps the oversampling factor.
func ablateVarSize(cfg AblationConfig) *Table {
	t := &Table{
		Title:   "ablation — variance-sized sampler oversampling factor",
		Columns: []string{"overshoot", "achieved SD / target", "retained items", "stop sample"},
	}
	items := stream.ParetoWeights(cfg.VarSizeN, 1.5, cfg.Seed+1)
	truth := 0.0
	for _, it := range items {
		truth += it.Value
	}
	for _, overshoot := range []float64{1, 1.5, 2, 4} {
		var est, retained, used estimator.Running
		for trial := 0; trial < cfg.VarSizeTrials; trial++ {
			s := varsize.New(cfg.VarSizeDelta, overshoot, cfg.Seed+100+uint64(trial))
			s.SetHorizon(cfg.VarSizeN)
			for _, it := range items {
				s.Add(it.Key, it.Weight, it.Value)
			}
			r := s.Estimate()
			est.Add(r.Sum)
			retained.Add(float64(s.Len()))
			used.Add(float64(r.SampleSize))
		}
		sd := math.Sqrt(est.Variance() + (est.Mean()-truth)*(est.Mean()-truth))
		t.AddRow(f2(overshoot), f2(sd/cfg.VarSizeDelta), f2(retained.Mean()), f2(used.Mean()))
	}
	t.AddNote("overshoot=1 keeps no safety margin: the stopping sample can be clipped by retention, inflating the error; larger factors trade memory for fidelity")
	return t
}

// ablateAQP sweeps the checkpoint growth fraction.
func ablateAQP(cfg AblationConfig) *Table {
	t := &Table{
		Title:   "ablation — AQP checkpoint growth fraction",
		Columns: []string{"step", "mean rows read", "overshoot vs exact", "ms/query"},
	}
	pop := stream.ParetoWeights(cfg.AQPRows, 1.5, cfg.Seed+2)
	keys := make([]uint64, len(pop))
	weights := make([]float64, len(pop))
	values := make([]float64, len(pop))
	truth := 0.0
	for i, it := range pop {
		keys[i] = it.Key
		weights[i] = it.Weight
		values[i] = it.Value
		truth += it.Value
	}
	target := 0.01 * truth

	// Exact baseline (step 0): evaluated once per trial seed.
	exactRows := make([]float64, cfg.AQPTrials)
	for trial := 0; trial < cfg.AQPTrials; trial++ {
		table := aqp.NewTable(keys, weights, values, cfg.Seed+10+uint64(trial))
		exactRows[trial] = float64(table.QueryStep(nil, target, 50, 0).RowsRead)
	}

	for _, step := range []float64{0, 0.01, 0.05, 0.20} {
		var rows estimator.Running
		overshoot := 0.0
		var elapsed time.Duration
		for trial := 0; trial < cfg.AQPTrials; trial++ {
			table := aqp.NewTable(keys, weights, values, cfg.Seed+10+uint64(trial))
			start := time.Now()
			q := table.QueryStep(nil, target, 50, step)
			elapsed += time.Since(start)
			rows.Add(float64(q.RowsRead))
			overshoot += float64(q.RowsRead) / exactRows[trial]
		}
		msPerQuery := float64(elapsed.Milliseconds()) / float64(cfg.AQPTrials)
		t.AddRow(pct(step), f2(rows.Mean()), f3(overshoot/float64(cfg.AQPTrials)), f2(msPerQuery))
	}
	t.AddNote("larger steps read slightly more rows but cut the quadratic re-evaluation cost; 5%% is the library default")
	return t
}

// Format renders all three tables.
func (r AblationResult) Format() string {
	var b strings.Builder
	b.WriteString(r.TopK.Format())
	b.WriteString("\n")
	b.WriteString(r.VarSize.Format())
	b.WriteString("\n")
	b.WriteString(r.AQP.Format())
	return b.String()
}
