package experiments

import (
	"math"
	"sort"

	"ats/internal/bottomk"
	"ats/internal/core"
	"ats/internal/estimator"
	"ats/internal/mest"
	"ats/internal/stream"
)

// AsymptoticConfig parameterizes the §4-6 validation experiment: empirical
// consistency of M-estimators under adaptive thresholds (Theorem 10) and
// the asymptotic equivalence of priority distributions in the sublinear
// regime (Theorem 12).
type AsymptoticConfig struct {
	Sizes  []int // population sizes for the consistency sweep
	Trials int
	Seed   uint64
}

// DefaultAsymptoticConfig sweeps two decades of population size.
func DefaultAsymptoticConfig() AsymptoticConfig {
	return AsymptoticConfig{
		Sizes:  []int{1000, 10000, 100000},
		Trials: 60,
		Seed:   1717,
	}
}

// AsymptoticPoint is the per-size aggregate of the consistency sweep.
type AsymptoticPoint struct {
	N int
	K int
	// MedianRMSE is the relative RMSE of the HT-weighted median
	// (an M-estimator) under the bottom-k adaptive threshold.
	MedianRMSE float64
	// MeanRMSE is the same for the HT-weighted mean.
	MeanRMSE float64
}

// AsymptoticResult holds both halves of the experiment.
type AsymptoticResult struct {
	Cfg    AsymptoticConfig
	Points []AsymptoticPoint
	// Theorem 12 check: SD of the subset-sum estimator under
	// Uniform(0,1/w) priorities vs Exponential(w) priorities with a
	// sublinear sample (k = sqrt(n)); the ratio should be ≈ 1.
	UniformSD, ExponentialSD, SDRatio float64
}

// Asymptotic runs the validation.
func Asymptotic(cfg AsymptoticConfig) AsymptoticResult {
	res := AsymptoticResult{Cfg: cfg}
	rng := stream.NewRNG(cfg.Seed)

	// --- Theorem 10: consistency of M-estimators under bottom-k ---
	for gi, n := range cfg.Sizes {
		xs := make([]float64, n)
		ws := make([]float64, n)
		var total float64
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 10
			ws[i] = 0.5 + xs[i]/10
			total += xs[i]
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		trueMedian := sorted[n/2]
		trueMean := total / float64(n)

		k := n / 10
		var med, mean estimator.Running
		for trial := 0; trial < cfg.Trials; trial++ {
			sk := bottomk.New(k, cfg.Seed+uint64(gi*10000+trial)+1)
			for i := 0; i < n; i++ {
				sk.Add(uint64(i), ws[i], xs[i])
			}
			th := sk.Threshold()
			pts := make([]mest.Point, 0, k)
			for _, e := range sk.Sample() {
				pts = append(pts, mest.Point{X: e.Value, P: core.InclusionProb(e.Weight, th)})
			}
			dm := mest.Quantile(pts, 0.5) - trueMedian
			med.Add(dm * dm)
			dμ := mest.Mean(pts) - trueMean
			mean.Add(dμ * dμ)
		}
		res.Points = append(res.Points, AsymptoticPoint{
			N:          n,
			K:          k,
			MedianRMSE: math.Sqrt(med.Mean()) / trueMedian,
			MeanRMSE:   math.Sqrt(mean.Mean()) / trueMean,
		})
	}

	// --- Theorem 12: priority-distribution equivalence, sublinear k ---
	n := cfg.Sizes[len(cfg.Sizes)-1]
	items := stream.ParetoWeights(n, 1.5, cfg.Seed+5)
	truth := 0.0
	for _, it := range items {
		truth += it.Value
	}
	k := int(math.Sqrt(float64(n)))
	var uni, exp []float64
	prng := stream.NewRNG(cfg.Seed + 6)
	for trial := 0; trial < cfg.Trials*2; trial++ {
		skU := bottomk.New(k, 1)
		skE := bottomk.New(k, 1)
		for _, it := range items {
			u := prng.Open01()
			// Same shared uniform, two priority families.
			skU.AddWithPriority(bottomk.Entry{
				Key: it.Key, Weight: it.Weight, Value: it.Value,
				Priority: core.InverseWeight{W: it.Weight}.Quantile(u),
			})
			skE.AddWithPriority(bottomk.Entry{
				Key: it.Key, Weight: it.Weight, Value: it.Value,
				Priority: core.Exponential{Rate: it.Weight}.Quantile(u),
			})
		}
		uni = append(uni, htSumWithCDF(skU, func(w, t float64) float64 {
			return core.InverseWeight{W: w}.CDF(t)
		}))
		exp = append(exp, htSumWithCDF(skE, func(w, t float64) float64 {
			return core.Exponential{Rate: w}.CDF(t)
		}))
	}
	res.UniformSD = estimator.RelativeSD(uni, truth)
	res.ExponentialSD = estimator.RelativeSD(exp, truth)
	if res.ExponentialSD > 0 {
		res.SDRatio = res.UniformSD / res.ExponentialSD
	}
	return res
}

// htSumWithCDF computes the HT total from a bottom-k sketch whose
// priorities came from an arbitrary distribution family, using the
// family's CDF for the pseudo-inclusion probabilities.
func htSumWithCDF(sk *bottomk.Sketch, cdf func(w, t float64) float64) float64 {
	th := sk.Threshold()
	sum := 0.0
	for _, e := range sk.Sample() {
		p := cdf(e.Weight, th)
		if math.IsInf(th, 1) {
			sum += e.Value
		} else if p > 0 {
			sum += e.Value / p
		}
	}
	return sum
}

// Format renders the result.
func (r AsymptoticResult) Format() string {
	t := &Table{
		Title:   "§4-6 — asymptotics: M-estimator consistency and priority equivalence",
		Columns: []string{"n", "k", "median rel. RMSE", "mean rel. RMSE"},
	}
	for _, p := range r.Points {
		t.AddRow(d(p.N), d(p.K), pct(p.MedianRMSE), pct(p.MeanRMSE))
	}
	t.AddNote("Theorem 10: both M-estimators' errors shrink as n grows (consistency under the adaptive bottom-k threshold)")
	t.AddNote("Theorem 12 (sublinear k=sqrt(n)): subset-sum rel. SD %s with Uniform(0,1/w) priorities vs %s with Exponential(w) priorities (ratio %.3f ≈ 1)",
		pct(r.UniformSD), pct(r.ExponentialSD), r.SDRatio)
	return t.Format()
}
