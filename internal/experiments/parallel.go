package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"ats/internal/bottomk"
	"ats/internal/engine"
	"ats/internal/stream"
)

// ParallelConfig parameterizes the sharded-engine throughput experiment:
// one seeded Zipf stream pushed through the single-threaded bottom-k
// sketch and through the sharded engine at increasing producer counts.
type ParallelConfig struct {
	K          int
	StreamLen  int
	ZipfN      int     // distinct keys
	ZipfS      float64 // Zipf exponent
	Goroutines []int
	Shards     int // engine shard count; 0 = GOMAXPROCS
	Batch      int // AddBatch size per lock acquisition
	Seed       uint64
}

// DefaultParallelConfig exercises 1–16 producers over a 2M-item stream.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{
		K:          256,
		StreamLen:  2_000_000,
		ZipfN:      100_000,
		ZipfS:      1.1,
		Goroutines: []int{1, 2, 4, 8, 16},
		Shards:     0,
		Batch:      512,
		Seed:       71,
	}
}

// ParallelPoint is the measurement for one producer count.
type ParallelPoint struct {
	Goroutines  int
	ItemsPerSec float64
	// Speedup is ItemsPerSec relative to the single-threaded sketch.
	Speedup float64
}

// ParallelResult summarizes the throughput sweep.
type ParallelResult struct {
	Cfg ParallelConfig
	// Shards is the resolved engine shard count.
	Shards int
	// MaxProcs is GOMAXPROCS at run time (speedup is hardware-bound by it).
	MaxProcs int
	// BaselineItemsPerSec is the single-threaded, lock-free sketch.
	BaselineItemsPerSec float64
	// MutexItemsPerSec is the naive concurrent baseline: one sketch behind
	// one mutex, hammered by max(Goroutines) producers.
	MutexItemsPerSec float64
	Points           []ParallelPoint
	// EstimatesMatch records that the collapsed sharded estimate equals
	// the sequential estimate on the same stream (they must: priorities
	// are hash-derived, so the merged sketch is identical).
	EstimatesMatch bool
}

// Parallel measures single-threaded vs sharded ingest throughput on a
// seeded Zipf stream and verifies that sharding leaves the estimate
// untouched.
func Parallel(cfg ParallelConfig) ParallelResult {
	res := ParallelResult{Cfg: cfg, MaxProcs: runtime.GOMAXPROCS(0)}

	items := make([]engine.Item, cfg.StreamLen)
	z := stream.NewZipf(cfg.ZipfN, cfg.ZipfS, cfg.Seed)
	rng := stream.NewRNG(cfg.Seed ^ 0xD1CE)
	for i := range items {
		w := 1 + 9*rng.Float64()
		items[i] = engine.Item{Key: z.Next(), Weight: w, Value: w}
	}

	// Single-threaded, lock-free baseline.
	seq := bottomk.New(cfg.K, cfg.Seed)
	start := time.Now()
	for _, it := range items {
		seq.Add(it.Key, it.Weight, it.Value)
	}
	res.BaselineItemsPerSec = rate(len(items), time.Since(start))
	seqSum, _ := seq.SubsetSum(nil)

	maxG := 1
	for _, g := range cfg.Goroutines {
		if g > maxG {
			maxG = g
		}
	}

	// Naive concurrent baseline: one sketch, one global mutex.
	var mu sync.Mutex
	global := bottomk.New(cfg.K, cfg.Seed)
	start = time.Now()
	runProducers(items, maxG, func(chunk []engine.Item) {
		for _, it := range chunk {
			mu.Lock()
			global.Add(it.Key, it.Weight, it.Value)
			mu.Unlock()
		}
	})
	res.MutexItemsPerSec = rate(len(items), time.Since(start))

	res.EstimatesMatch = true
	for _, g := range cfg.Goroutines {
		eng := engine.NewShardedBottomK(cfg.K, cfg.Seed, cfg.Shards)
		if res.Shards == 0 {
			res.Shards = eng.NumShards()
		}
		start = time.Now()
		runProducers(items, g, func(chunk []engine.Item) {
			for len(chunk) > 0 {
				n := cfg.Batch
				if n > len(chunk) {
					n = len(chunk)
				}
				eng.AddBatch(chunk[:n])
				chunk = chunk[n:]
			}
		})
		elapsed := time.Since(start)
		p := ParallelPoint{Goroutines: g, ItemsPerSec: rate(len(items), elapsed)}
		p.Speedup = p.ItemsPerSec / res.BaselineItemsPerSec
		res.Points = append(res.Points, p)

		col := eng.Collapse()
		shSum, _ := col.SubsetSum(nil)
		if math.Abs(shSum-seqSum) > 1e-9*math.Abs(seqSum) ||
			col.Threshold() != seq.Threshold() {
			res.EstimatesMatch = false
		}
	}
	return res
}

// runProducers splits items into g contiguous chunks and feeds each to fn
// on its own goroutine.
func runProducers(items []engine.Item, g int, fn func(chunk []engine.Item)) {
	var wg sync.WaitGroup
	per := (len(items) + g - 1) / g
	for w := 0; w < g; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(items) {
			hi = len(items)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(chunk []engine.Item) {
			defer wg.Done()
			fn(chunk)
		}(items[lo:hi])
	}
	wg.Wait()
}

func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// Format renders the result.
func (r ParallelResult) Format() string {
	t := &Table{
		Title: "sharded engine — parallel ingest throughput (seeded Zipf stream)",
		Columns: []string{
			"producers", "items/s", "speedup vs 1-thread",
		},
	}
	t.AddRow("1 (lock-free sketch)", fmt.Sprintf("%.3g", r.BaselineItemsPerSec), "1.00")
	t.AddRow(fmt.Sprintf("%d (global mutex)", maxGoroutines(r.Cfg.Goroutines)),
		fmt.Sprintf("%.3g", r.MutexItemsPerSec),
		f2(r.MutexItemsPerSec/r.BaselineItemsPerSec))
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d (sharded)", p.Goroutines),
			fmt.Sprintf("%.3g", p.ItemsPerSec), f2(p.Speedup))
	}
	t.AddNote(fmt.Sprintf("k=%d stream=%d shards=%d batch=%d GOMAXPROCS=%d",
		r.Cfg.K, r.Cfg.StreamLen, r.Shards, r.Cfg.Batch, r.MaxProcs))
	if r.EstimatesMatch {
		t.AddNote("collapsed sharded estimates are identical to the sequential sketch (hash-derived priorities)")
	} else {
		t.AddNote("WARNING: sharded estimate diverged from the sequential sketch")
	}
	t.AddNote("speedup is bounded by GOMAXPROCS; expect ≈ linear scaling up to the core count")
	return t.Format()
}

func maxGoroutines(gs []int) int {
	m := 1
	for _, g := range gs {
		if g > m {
			m = g
		}
	}
	return m
}
