package experiments

import (
	"ats/internal/estimator"
	"ats/internal/stratified"
	"ats/internal/stream"
)

// StratifiedConfig parameterizes the multi-stratified sampling experiment
// (§3.7): one sample stratified simultaneously by "country" and "age"
// under an exact item budget.
type StratifiedConfig struct {
	N         int // population size
	Countries int
	Ages      int
	Budget    int
	Trials    int
	Seed      uint64
}

// DefaultStratifiedConfig uses 20 countries x 8 age buckets with a skewed
// country distribution.
func DefaultStratifiedConfig() StratifiedConfig {
	return StratifiedConfig{N: 5000, Countries: 20, Ages: 8, Budget: 400, Trials: 200, Seed: 404}
}

// StratifiedResult reports coverage and estimation quality.
type StratifiedResult struct {
	Cfg StratifiedConfig
	// MeanSampleSize should be ≤ and close to the budget.
	MeanSampleSize float64
	// MinCountrySamples / MinAgeSamples are the smallest per-stratum
	// sample counts observed (stratification guarantees every stratum is
	// represented).
	MinCountrySamples int
	MinAgeSamples     int
	// Truth, MeanEstimate, ZScore: HT subset-sum validation for the
	// smallest country's total value.
	Truth        float64
	MeanEstimate float64
	ZScore       float64
}

// Stratified runs the §3.7 experiment.
func Stratified(cfg StratifiedConfig) StratifiedResult {
	res := StratifiedResult{Cfg: cfg, MinCountrySamples: 1 << 30, MinAgeSamples: 1 << 30}
	rng := stream.NewRNG(cfg.Seed)
	// Skewed country assignment via Zipf; ages uniform. Values depend on
	// both strata so subset sums are non-trivial.
	zipf := stream.NewZipf(cfg.Countries, 1.2, cfg.Seed+1)
	items := make([]stratified.Item, cfg.N)
	for i := range items {
		c := int(zipf.Next())
		a := rng.Intn(cfg.Ages)
		items[i] = stratified.Item{
			Key:    uint64(i),
			Strata: []int{c, a},
			Value:  1 + float64(c)*0.5 + float64(a)*0.25 + rng.Float64(),
		}
	}
	// Find the rarest country and its true total.
	counts := make([]int, cfg.Countries)
	for _, it := range items {
		counts[it.Strata[0]]++
	}
	rarest := 0
	for c := range counts {
		if counts[c] > 0 && counts[c] < counts[rarest] {
			rarest = c
		}
	}
	for _, it := range items {
		if it.Strata[0] == rarest {
			res.Truth += it.Value
		}
	}
	pred := func(it stratified.Item) bool { return it.Strata[0] == rarest }

	var est estimator.Running
	for trial := 0; trial < cfg.Trials; trial++ {
		des := stratified.Fit(items, 2, cfg.Budget, cfg.Seed+100+uint64(trial))
		res.MeanSampleSize += float64(len(des.Sample))
		cc := des.StratumCounts(0)
		for c := 0; c < cfg.Countries; c++ {
			if counts[c] > 0 && cc[c] < res.MinCountrySamples {
				res.MinCountrySamples = cc[c]
			}
		}
		ac := des.StratumCounts(1)
		for a := 0; a < cfg.Ages; a++ {
			if ac[a] < res.MinAgeSamples {
				res.MinAgeSamples = ac[a]
			}
		}
		s, _ := des.SubsetSum(pred)
		est.Add(s)
	}
	res.MeanSampleSize /= float64(cfg.Trials)
	res.MeanEstimate = est.Mean()
	if se := est.SE(); se > 0 {
		res.ZScore = (est.Mean() - res.Truth) / se
	}
	return res
}

// Format renders the result.
func (r StratifiedResult) Format() string {
	t := &Table{
		Title:   "§3.7 — multi-stratified sampling under an item budget",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("population", d(r.Cfg.N))
	t.AddRow("strata (countries x ages)", d(r.Cfg.Countries)+" x "+d(r.Cfg.Ages))
	t.AddRow("budget", d(r.Cfg.Budget))
	t.AddRow("mean sample size", f2(r.MeanSampleSize))
	t.AddRow("min samples in any country", d(r.MinCountrySamples))
	t.AddRow("min samples in any age", d(r.MinAgeSamples))
	t.AddRow("rarest-country true total", f2(r.Truth))
	t.AddRow("mean HT estimate", f2(r.MeanEstimate))
	t.AddRow("bias z-score", f2(r.ZScore))
	t.AddNote("max of per-stratum bottom-k thresholds; thresholds decremented greedily until the budget holds (Theorem 9 + Theorem 6)")
	return t.Format()
}
