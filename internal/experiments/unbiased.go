package experiments

import (
	"ats/internal/bottomk"
	"ats/internal/estimator"
	"ats/internal/stream"
)

// UnbiasedConfig parameterizes the framework-validation experiment (E7):
// Monte-Carlo verification that HT subset sums and their variance
// estimates are unbiased under the bottom-k adaptive threshold (§2.5.1,
// §2.6.1).
type UnbiasedConfig struct {
	N      int // population size
	K      int // sample size
	Alpha  float64
	Trials int
	Seed   uint64
}

// DefaultUnbiasedConfig uses a skewed Pareto(1.5) population.
func DefaultUnbiasedConfig() UnbiasedConfig {
	return UnbiasedConfig{N: 2000, K: 100, Alpha: 1.5, Trials: 2000, Seed: 77}
}

// UnbiasedResult reports bias diagnostics.
type UnbiasedResult struct {
	Cfg UnbiasedConfig
	// Truth is the population subset sum (first half of the keys).
	Truth float64
	// MeanEstimate is the Monte-Carlo mean of the HT estimates.
	MeanEstimate float64
	// ZScore is (mean - truth) / SE(mean): |Z| < ~4 is consistent with
	// unbiasedness at these trial counts.
	ZScore float64
	// EmpiricalVar is the Monte-Carlo variance of the estimates;
	// MeanVarEstimate the mean of the per-sample unbiased variance
	// estimates. Their ratio should be ≈ 1.
	EmpiricalVar    float64
	MeanVarEstimate float64
	VarRatio        float64
}

// Unbiased runs the Monte-Carlo validation.
func Unbiased(cfg UnbiasedConfig) UnbiasedResult {
	res := UnbiasedResult{Cfg: cfg}
	pop := stream.ParetoWeights(cfg.N, cfg.Alpha, cfg.Seed)
	pred := func(e bottomk.Entry) bool { return e.Key < uint64(cfg.N/2) }
	for _, it := range pop {
		if it.Key < uint64(cfg.N/2) {
			res.Truth += it.Value
		}
	}
	var est, varEst estimator.Running
	for trial := 0; trial < cfg.Trials; trial++ {
		// A fresh hash seed per trial re-randomizes all priorities.
		sk := bottomk.New(cfg.K, cfg.Seed+1+uint64(trial))
		for _, it := range pop {
			sk.Add(it.Key, it.Weight, it.Value)
		}
		s, v := sk.SubsetSum(pred)
		est.Add(s)
		varEst.Add(v)
	}
	res.MeanEstimate = est.Mean()
	if se := est.SE(); se > 0 {
		res.ZScore = (est.Mean() - res.Truth) / se
	}
	res.EmpiricalVar = est.Variance()
	res.MeanVarEstimate = varEst.Mean()
	if res.EmpiricalVar > 0 {
		res.VarRatio = res.MeanVarEstimate / res.EmpiricalVar
	}
	return res
}

// Format renders the result.
func (r UnbiasedResult) Format() string {
	t := &Table{
		Title:   "§2.5.1/§2.6.1 — HT unbiasedness under the bottom-k adaptive threshold",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("population / k / trials", d(r.Cfg.N)+" / "+d(r.Cfg.K)+" / "+d(r.Cfg.Trials))
	t.AddRow("true subset sum", f2(r.Truth))
	t.AddRow("mean HT estimate", f2(r.MeanEstimate))
	t.AddRow("bias z-score", f2(r.ZScore))
	t.AddRow("empirical variance", f2(r.EmpiricalVar))
	t.AddRow("mean variance estimate", f2(r.MeanVarEstimate))
	t.AddRow("variance ratio (≈1)", f3(r.VarRatio))
	t.AddNote("substitutability lets the fixed-threshold HT estimator and its variance estimate be reused verbatim")
	return t.Format()
}
