package experiments

import (
	"math"

	"ats/internal/aqp"
	"ats/internal/estimator"
	"ats/internal/stream"
	"ats/internal/varsize"
)

// VarSizeConfig parameterizes the variance-sized sampling experiment
// (§3.9): absolute-error targets instead of fixed sample sizes.
type VarSizeConfig struct {
	N      int
	Alpha  float64
	Deltas []float64 // absolute standard-error targets
	Trials int
	Seed   uint64
}

// DefaultVarSizeConfig sweeps delta over roughly 2%..17% of the true total
// (priority sampling needs k ≈ (S/δ)² items for absolute error δ, so much
// tighter targets would retain the whole population).
func DefaultVarSizeConfig() VarSizeConfig {
	return VarSizeConfig{
		N: 20000, Alpha: 1.5,
		Deltas: []float64{1200, 2500, 5000, 10000},
		Trials: 200,
		Seed:   808,
	}
}

// VarSizePoint is the per-delta aggregate.
type VarSizePoint struct {
	Delta float64
	// AchievedSD is the Monte-Carlo SD of the estimates around the truth;
	// the stopping rule targets AchievedSD ≈ Delta.
	AchievedSD float64
	// MeanSize is the mean sample size used by the estimate.
	MeanSize float64
	// ZScore is the bias diagnostic.
	ZScore float64
}

// VarSizeResult is the sweep result.
type VarSizeResult struct {
	Cfg    VarSizeConfig
	Truth  float64
	Points []VarSizePoint
}

// VarSize runs the §3.9 experiment: the sampler should use fewer items for
// looser targets while keeping the realized error near each target.
func VarSize(cfg VarSizeConfig) VarSizeResult {
	res := VarSizeResult{Cfg: cfg}
	pop := stream.ParetoWeights(cfg.N, cfg.Alpha, cfg.Seed)
	for _, it := range pop {
		res.Truth += it.Value
	}
	for _, delta := range cfg.Deltas {
		var est, size estimator.Running
		for trial := 0; trial < cfg.Trials; trial++ {
			s := varsize.New(delta, 2, cfg.Seed+1000+uint64(trial))
			s.SetHorizon(cfg.N)
			for _, it := range pop {
				s.Add(it.Key, it.Weight, it.Value)
			}
			r := s.Estimate()
			est.Add(r.Sum)
			size.Add(float64(r.SampleSize))
		}
		p := VarSizePoint{Delta: delta, MeanSize: size.Mean()}
		// SD around the truth (includes bias, which should be negligible).
		sumSq := est.Variance() + (est.Mean()-res.Truth)*(est.Mean()-res.Truth)
		p.AchievedSD = math.Sqrt(sumSq)
		if se := est.SE(); se > 0 {
			p.ZScore = (est.Mean() - res.Truth) / se
		}
		res.Points = append(res.Points, p)
	}
	return res
}

// Format renders the sweep.
func (r VarSizeResult) Format() string {
	t := &Table{
		Title:   "§3.9 — variance-sized samples: achieved error vs target",
		Columns: []string{"target delta", "achieved SD", "mean sample size", "bias z"},
	}
	for _, p := range r.Points {
		t.AddRow(f2(p.Delta), f2(p.AchievedSD), f2(p.MeanSize), f2(p.ZScore))
	}
	t.AddNote("population %d, true total %.1f; the stopping rule V̂(T) = delta² is a stopping time on the sorted priorities (Theorem 8)",
		r.Cfg.N, r.Truth)
	return t.Format()
}

// AQPConfig parameterizes the early-stopping AQP experiment (§3.10).
type AQPConfig struct {
	Rows      int
	Alpha     float64
	TargetSEs []float64 // relative to the true total
	Trials    int
	Seed      uint64
}

// DefaultAQPConfig sweeps target standard errors from 0.5% to 5% of the
// true total.
func DefaultAQPConfig() AQPConfig {
	return AQPConfig{
		Rows: 100000, Alpha: 1.5,
		TargetSEs: []float64{0.005, 0.01, 0.02, 0.05},
		Trials:    50,
		Seed:      909,
	}
}

// AQPPoint is the per-target aggregate.
type AQPPoint struct {
	TargetRelSE   float64
	MeanRowsRead  float64
	FracRead      float64
	AchievedRelSD float64
}

// AQPResult is the sweep result.
type AQPResult struct {
	Cfg    AQPConfig
	Truth  float64
	Points []AQPPoint
}

// AQP runs the §3.10 experiment: queries against a priority-ordered layout
// stop after reading a prefix whose estimated standard error meets the
// user's target; tighter targets read more rows.
func AQP(cfg AQPConfig) AQPResult {
	res := AQPResult{Cfg: cfg}
	pop := stream.ParetoWeights(cfg.Rows, cfg.Alpha, cfg.Seed)
	keys := make([]uint64, len(pop))
	weights := make([]float64, len(pop))
	values := make([]float64, len(pop))
	for i, it := range pop {
		keys[i] = it.Key
		weights[i] = it.Weight
		values[i] = it.Value
		res.Truth += it.Value
	}
	for _, rel := range cfg.TargetSEs {
		target := rel * res.Truth
		var rows, ests estimator.Running
		for trial := 0; trial < cfg.Trials; trial++ {
			table := aqp.NewTable(keys, weights, values, cfg.Seed+10+uint64(trial))
			q := table.Query(nil, target, 50)
			rows.Add(float64(q.RowsRead))
			ests.Add(q.Sum)
		}
		sumSq := ests.Variance() + (ests.Mean()-res.Truth)*(ests.Mean()-res.Truth)
		res.Points = append(res.Points, AQPPoint{
			TargetRelSE:   rel,
			MeanRowsRead:  rows.Mean(),
			FracRead:      rows.Mean() / float64(cfg.Rows),
			AchievedRelSD: math.Sqrt(sumSq) / res.Truth,
		})
	}
	return res
}

// Format renders the sweep.
func (r AQPResult) Format() string {
	t := &Table{
		Title:   "§3.10 — AQP early stopping on a priority-ordered layout",
		Columns: []string{"target rel. SE", "mean rows read", "fraction of table", "achieved rel. SD"},
	}
	for _, p := range r.Points {
		t.AddRow(pct(p.TargetRelSE), f2(p.MeanRowsRead), pct(p.FracRead), pct(p.AchievedRelSD))
	}
	t.AddNote("table of %d rows; tighter targets read longer prefixes; achieved error tracks the target", r.Cfg.Rows)
	return t.Format()
}
