package obs

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"strings"
	"sync/atomic"
)

// NewLogger builds the daemon's structured logger. format selects the
// handler: "text" (the default; key=value lines that keep boot output
// human-readable) or "json" (one JSON object per line for log
// shippers). level is a slog level name ("debug", "info", "warn",
// "error"); empty means info.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// reqBase decorrelates request IDs across process restarts so two IDs
// from different daemon lifetimes never collide in aggregated logs.
var reqBase = rand.Uint32()

var reqCounter atomic.Uint64

// NextRequestID returns a process-unique request ID: a per-process
// random prefix plus a sequence number.
func NextRequestID() string {
	return fmt.Sprintf("%08x-%06d", reqBase, reqCounter.Add(1))
}
