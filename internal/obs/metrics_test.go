package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ats_test_total", "help", L("x", "1"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("ats_test_total", "help", L("x", "1")); again != c {
		t.Fatal("same name+labels did not return the same counter")
	}
	if other := r.Counter("ats_test_total", "help", L("x", "2")); other == c {
		t.Fatal("different labels returned the same counter")
	}
	g := r.Gauge("ats_test_gauge", "help")
	g.Set(7)
	g.Dec()
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{1 << 39, 39},              // last finite bound
		{1<<39 + 1, 39},            // clamps
		{1 << 60, histBuckets - 1}, // way past the range: clamps
		{-5, 0},                    // negative durations clamp to zero
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(time.Duration(c.ns))
		s := h.Snapshot()
		got := -1
		for i, n := range s.Counts {
			if n > 0 {
				got = i
				break
			}
		}
		if got != c.want {
			t.Errorf("Observe(%dns) landed in bucket %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramQuantileAndSummary(t *testing.T) {
	var h Histogram
	// 99 fast observations (1µs) and one slow (1ms).
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// 1µs = 1024ns bucket bound is 2^10; p50 must report that bound.
	if q := s.Quantile(0.50); q != 1<<10 {
		t.Errorf("p50 = %dns, want %d", q, 1<<10)
	}
	// p100 covers the slow observation: 1ms rounds up to 2^20 ns.
	if q := s.Quantile(1); q != 1<<20 {
		t.Errorf("p100 = %dns, want %d", q, 1<<20)
	}
	sum := h.Summary()
	if sum.Count != 100 || sum.P50Ms <= 0 || sum.MaxMs < sum.P50Ms {
		t.Errorf("summary = %+v", sum)
	}
	var empty Histogram
	if s := empty.Summary(); s.Count != 0 || s.P99Ms != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ats_reqs_total", "requests", L("endpoint", "/v1/add"), L("code", "2xx")).Add(3)
	r.Gauge("ats_inflight", "in flight").Set(2)
	r.GaugeFunc("ats_keys", "live keys", func() int64 { return 17 })
	h := r.Histogram("ats_lat_seconds", "latency", L("endpoint", "/v1/add"))
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	vh := r.ValueHistogram("ats_merge_buckets", "fan-in")
	vh.ObserveValue(8)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`ats_reqs_total{code="2xx",endpoint="/v1/add"} 3`,
		"ats_inflight 2",
		"ats_keys 17",
		"# TYPE ats_lat_seconds histogram",
		`ats_lat_seconds_bucket{endpoint="/v1/add",le="+Inf"} 2`,
		"ats_lat_seconds_count{endpoint=\"/v1/add\"} 2",
		`ats_merge_buckets_bucket{le="8"} 1`,
		"ats_merge_buckets_sum 8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// The parser must reassemble what the writer rendered.
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	buckets, sum, count, found := HistogramFromSamples(samples, "ats_lat_seconds",
		map[string]string{"endpoint": "/v1/add"})
	if !found || count != 2 {
		t.Fatalf("histogram not reassembled: found=%v count=%d", found, count)
	}
	if sum <= 0 {
		t.Fatalf("sum = %g", sum)
	}
	// p50 covers the 100µs observation: upper bound 2^17 ns in seconds.
	p50 := QuantileFromBuckets(buckets, 0.50)
	if want := float64(int64(1)<<17) / 1e9; p50 != want {
		t.Errorf("scraped p50 = %g, want %g", p50, want)
	}
	// p100 covers 3ms -> 2^22 ns.
	if q, want := QuantileFromBuckets(buckets, 1), float64(int64(1)<<22)/1e9; q != want {
		t.Errorf("scraped p100 = %g, want %g", q, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("ats_esc_total", "", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\n"`) {
		t.Fatalf("bad escaping:\n%s", b.String())
	}
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := samples[0].Labels["path"]; got != `a"b\c`+"\n" {
		t.Fatalf("parsed label = %q", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ats_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge name conflict")
		}
	}()
	r.Gauge("ats_conflict", "")
}

func TestFindHistogram(t *testing.T) {
	r := NewRegistry()
	if r.FindHistogram("nope") != nil {
		t.Fatal("found a histogram that was never created")
	}
	h := r.Histogram("ats_h_seconds", "", L("stage", "apply"))
	if got := r.FindHistogram("ats_h_seconds", L("stage", "apply")); got != h {
		t.Fatal("FindHistogram did not return the created histogram")
	}
	if r.FindHistogram("ats_h_seconds", L("stage", "other")) != nil {
		t.Fatal("found a label set that was never created")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ats_conc_seconds", "")
	c := r.Counter("ats_conc_total", "")
	var wg sync.WaitGroup
	const workers, per = 8, 10_000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				c.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestNextRequestID(t *testing.T) {
	a, b := NextRequestID(), NextRequestID()
	if a == b || a == "" {
		t.Fatalf("ids not unique: %q %q", a, b)
	}
}

func TestNewLogger(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "text", "")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("boot", "addr", ":8321")
	if !strings.Contains(b.String(), "msg=boot") || !strings.Contains(b.String(), "addr=:8321") {
		t.Fatalf("text log = %q", b.String())
	}
	b.Reset()
	lg, err = NewLogger(&b, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "k", 1)
	out := b.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, `"msg":"kept"`) {
		t.Fatalf("json log = %q", out)
	}
	if _, err := NewLogger(&b, "xml", ""); err == nil {
		t.Fatal("no error for unknown format")
	}
	if _, err := NewLogger(&b, "text", "loud"); err == nil {
		t.Fatal("no error for unknown level")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
	if h.Count() == 0 {
		b.Fatal("no observations")
	}
}
