package obs

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, rendered as name{key="value"}.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative adds corrupt rate queries).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic point-in-time value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of finite histogram buckets: bucket k holds
// observations in (2^(k-1), 2^k] nanoseconds (or raw units for value
// histograms), so the finite range tops out at 2^39 ns ≈ 9.2 minutes.
// Observations beyond it clamp into the last bucket — the +Inf bucket
// required by the exposition format is rendered with the same
// cumulative count, and quantile estimates stay finite.
const histBuckets = 40

// Histogram is a fixed-bucket power-of-two histogram with a lock-free
// Observe: one bit-length plus two atomic adds, zero allocations. All
// histograms share the same bucket boundaries so they merge exactly
// across endpoints, stages and nodes.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64 // nanoseconds (durations) or raw units (values)
}

// bucketIdx maps a non-negative observation to its bucket: the smallest
// k with v <= 2^k.
func bucketIdx(v int64) int {
	idx := 0
	if v > 1 {
		idx = bits.Len64(uint64(v - 1))
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one duration. Safe for concurrent use; never
// allocates.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.sum.Add(ns)
	h.counts[bucketIdx(ns)].Add(1)
}

// ObserveValue records one raw (unitless) observation, e.g. a merge
// fan-in width. Negative values clamp to zero.
func (h *Histogram) ObserveValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.sum.Add(v)
	h.counts[bucketIdx(v)].Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	Count  uint64
	Sum    int64 // nanoseconds or raw units, matching the histogram
}

// Snapshot copies the histogram's counters. Concurrent observations may
// tear between buckets by a few counts; quantile estimates do not care.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.Snapshot().Count }

// Quantile returns the upper bucket bound at or below which a fraction
// q of the observations fall — exact to within the factor-of-two bucket
// resolution. An empty histogram returns 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return int64(1) << i
		}
	}
	return int64(1) << (histBuckets - 1)
}

// Summary is the JSON digest of a duration histogram surfaced in
// /v1/stats and the bench report: counts plus millisecond quantile
// bounds (upper bucket bounds, resolution one power of two).
type Summary struct {
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// Summary digests a duration histogram. All quantiles are upper bucket
// bounds; MaxMs is the upper bound of the highest occupied bucket.
func (h *Histogram) Summary() Summary {
	s := h.Snapshot()
	out := Summary{Count: s.Count, TotalMs: float64(s.Sum) / 1e6}
	if s.Count == 0 {
		return out
	}
	out.P50Ms = float64(s.Quantile(0.50)) / 1e6
	out.P99Ms = float64(s.Quantile(0.99)) / 1e6
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			out.MaxMs = float64(int64(1)<<i) / 1e6
			break
		}
	}
	return out
}

// metricKind discriminates what one registry family holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram      // durations, rendered in seconds
	kindValueHistogram // raw units
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	}
	return "histogram"
}

// series is one (family, label set) time series.
type series struct {
	labels string // rendered `key="value",...` (no braces), sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64
}

// family groups the series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     map[string]*series
}

// Registry is a set of named metrics rendered together as one
// Prometheus text exposition page. Creating a metric that already
// exists (same name and label set) returns the existing instance, so
// independent subsystems can contribute to shared families. Metric
// creation takes a lock; the returned metrics are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// get returns the series for (name, labels), creating family and series
// as needed. Panics on invalid names or a kind conflict — both are
// boot-time programmer errors, not runtime conditions.
func (r *Registry) get(name, help string, kind metricKind, labels []Label) *series {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind.promType(), kind.promType()))
	}
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram, kindValueHistogram:
			s.h = &Histogram{}
		}
		f.series[ls] = s
	}
	return s
}

// Counter returns the counter named name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.get(name, help, kindCounter, labels).c
}

// Gauge returns the gauge named name with the given labels, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.get(name, help, kindGauge, labels).g
}

// Histogram returns the duration histogram named name with the given
// labels (rendered in seconds), creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.get(name, help, kindHistogram, labels).h
}

// ValueHistogram returns the unitless histogram named name with the
// given labels (rendered in raw units), creating it on first use.
func (r *Registry) ValueHistogram(name, help string, labels ...Label) *Histogram {
	return r.get(name, help, kindValueHistogram, labels).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for mirroring counters another subsystem already maintains.
// Registering the same series again replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.get(name, help, kindCounterFunc, labels).fn = fn
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.get(name, help, kindGaugeFunc, labels).fn = fn
}

// FindHistogram returns the histogram series previously created under
// (name, labels), or nil — for read paths (stats summaries) that must
// not create empty series as a side effect.
func (r *Registry) FindHistogram(name string, labels ...Label) *Histogram {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if s := f.series[ls]; s != nil {
			return s.h
		}
	}
	return nil
}

// WritePrometheus renders every metric in text exposition format
// (families sorted by name, series by label set).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		// Snapshot the family's series under the lock; values are read
		// outside it (funcs may take subsystem locks of their own).
		r.mu.Lock()
		sers := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			sers = append(sers, s)
		}
		r.mu.Unlock()
		sort.Slice(sers, func(i, j int) bool { return sers[i].labels < sers[j].labels })

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range sers {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, s.labels, "", strconv.FormatInt(s.c.Value(), 10))
			case kindGauge:
				writeSample(&b, f.name, s.labels, "", strconv.FormatInt(s.g.Value(), 10))
			case kindCounterFunc, kindGaugeFunc:
				v := int64(0)
				if s.fn != nil {
					v = s.fn()
				}
				writeSample(&b, f.name, s.labels, "", strconv.FormatInt(v, 10))
			case kindHistogram, kindValueHistogram:
				writeHistogram(&b, f.name, s.labels, s.h, f.kind == kindHistogram)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// writeSample emits one `name{labels,extra} value` line.
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// bucketLe renders the upper bound of finite bucket i: seconds for
// duration histograms, raw units otherwise.
func bucketLe(i int, isTime bool) string {
	bound := float64(int64(1) << i)
	if isTime {
		bound /= 1e9
	}
	return formatFloat(bound)
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram, isTime bool) {
	s := h.Snapshot()
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += s.Counts[i]
		writeSample(b, name+"_bucket", labels, `le="`+bucketLe(i, isTime)+`"`, strconv.FormatUint(cum, 10))
	}
	writeSample(b, name+"_bucket", labels, `le="+Inf"`, strconv.FormatUint(s.Count, 10))
	sum := float64(s.Sum)
	if isTime {
		sum /= 1e9
	}
	writeSample(b, name+"_sum", labels, "", formatFloat(sum))
	writeSample(b, name+"_count", labels, "", strconv.FormatUint(s.Count, 10))
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels canonicalizes a label set: sorted by key, values
// escaped, joined as `k1="v1",k2="v2"`.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Key) || l.Key == "le" {
			panic("obs: invalid label key " + strconv.Quote(l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
