// Package obs is the dependency-free observability layer shared by the
// serving daemon's subsystems: a metrics registry of atomic counters,
// gauges and fixed-bucket latency histograms rendered in Prometheus
// text exposition format, plus a minimal structured logger (log/slog)
// with per-request IDs.
//
// Design constraints, in order:
//
//   - Hot-path cost. Histogram.Observe is the primitive every ingest
//     batch and every query pays, so it is lock-free — two atomic adds
//     and a bit-length — O(ns) with zero allocations (benchmarked and
//     gated by the perf harness). Counters and gauges are single
//     atomics.
//   - No dependencies. The registry renders the Prometheus text format
//     itself (exposition is just text), so the server imports no
//     client library.
//   - Buckets that survive merging. Histogram buckets are fixed powers
//     of two in nanoseconds (le 2^k ns for k in [0, 39], then +Inf):
//     every histogram in the process shares the same bucket boundaries,
//     so scrape-side aggregation across endpoints, stages and future
//     cluster nodes never has to align differing schemes. The price is
//     resolution — quantiles are exact only to within a factor of two —
//     which is the right trade for a gate that must run on the ingest
//     hot path.
//
// The registry is the rendezvous point between subsystems: creating a
// metric that already exists (same name and labels) returns the
// existing instance, so the WAL manager and the HTTP server can both
// write to the ats_ingest_stage_seconds family without knowing about
// each other.
//
// ParseText is the inverse of WritePrometheus for the subset this
// package emits; cmd/atsload uses it to scrape a live daemon and
// cross-validate client-observed latency quantiles against the
// server-side histograms.
package obs
