package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set
// and the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses Prometheus text exposition format — the inverse of
// Registry.WritePrometheus for the subset this package emits (no
// timestamps, no exemplars). Comment and blank lines are skipped.
// cmd/atsload uses it to scrape a live daemon.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block starting at in[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label set in %q", in)
		}
		key := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(in[i])
				}
				i++
				continue
			}
			b.WriteByte(c)
			i++
		}
		out[key] = b.String()
	}
}

// MatchLabels reports whether the sample carries every key=value pair
// in want (extra labels on the sample are allowed).
func (s Sample) MatchLabels(want map[string]string) bool {
	for k, v := range want {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// HistogramFromSamples reassembles one histogram series from parsed
// samples: the cumulative bucket counts (sorted by le ascending, +Inf
// last), the sum and the count of the series of the given family name
// whose labels match want. Found reports whether any bucket line
// matched.
func HistogramFromSamples(samples []Sample, name string, want map[string]string) (buckets []BucketCount, sum float64, count uint64, found bool) {
	for _, s := range samples {
		switch s.Name {
		case name + "_bucket":
			if !s.MatchLabels(want) {
				continue
			}
			le, err := parseLe(s.Labels["le"])
			if err != nil {
				continue
			}
			buckets = append(buckets, BucketCount{Le: le, Cumulative: uint64(s.Value)})
			found = true
		case name + "_sum":
			if s.MatchLabels(want) {
				sum = s.Value
			}
		case name + "_count":
			if s.MatchLabels(want) {
				count = uint64(s.Value)
			}
		}
	}
	sortBuckets(buckets)
	return buckets, sum, count, found
}

// BucketCount is one cumulative histogram bucket: observations <= Le.
type BucketCount struct {
	Le         float64 // upper bound; +Inf for the last bucket
	Cumulative uint64
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func sortBuckets(b []BucketCount) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j].Le < b[j-1].Le; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}

// QuantileFromBuckets estimates quantile q from cumulative buckets: the
// upper bound of the first bucket whose cumulative count reaches rank
// q*total. The +Inf bucket defers to the highest finite bound.
func QuantileFromBuckets(buckets []BucketCount, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].Cumulative
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var lastFinite float64
	for _, b := range buckets {
		if !math.IsInf(b.Le, 1) {
			lastFinite = b.Le
		}
		if b.Cumulative >= rank {
			if math.IsInf(b.Le, 1) {
				return lastFinite
			}
			return b.Le
		}
	}
	return lastFinite
}
