// Package wire is the binary ingest protocol of the serving layer: a
// compact, canonical batch-frame encoding that carries the same logical
// payload as the JSON /v1/add body at a fraction of the decode cost.
//
// One frame is one ingest batch — a (namespace, metric, kind) header
// followed by varint-framed item records — and an ingest body is one or
// more frames concatenated. The layout (all multi-byte integers
// little-endian, varints are unsigned LEB128):
//
//	magic     uint32  "ATSB"
//	version   uint8   1
//	kind      uint8   sketch kind wire value, or 0xFF for "store default"
//	nsLen     uint8   (1..255)
//	metricLen uint8   (1..255)
//	namespace nsLen bytes
//	metric    metricLen bytes
//	count     uvarint item record count
//	items     count records, each:
//	  flags   uint8   bit 0 weight present (absent = 1)
//	                  bit 1 value present  (absent = 0)
//	                  bit 2 time present   (absent = 0)
//	                  bit 3 group present  (absent = 0)
//	                  bit 4 strata present (absent = none)
//	                  bits 5..7 reserved, must be zero
//	  key     uvarint
//	  weight  float64 bits, if flag 0
//	  value   float64 bits, if flag 1
//	  time    float64 bits, if flag 2
//	  group   uvarint, if flag 3
//	  strata  uvarint dimension count then one uvarint label (< 2^32)
//	          per dimension, if flag 4
//
// The encoding is canonical: there is exactly one accepted byte string
// per logical frame. Decoders reject non-minimal varints, reserved flag
// bits, and fields spelling out their own default (weight bits of 1.0,
// value/time bits of +0.0, group 0, empty strata) — so decode followed
// by re-encode reproduces the input byte for byte, the property the
// fuzz target enforces. Decode-bomb discipline follows internal/codec:
// every allocation is sized from counts validated against the bytes
// actually present, never from an attacker-controlled header alone.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ats/internal/engine"
)

const (
	// Magic opens every frame ("ATSB" little-endian).
	Magic = 0x42535441
	// Version is the frame layout version this package writes.
	Version = 1
	// KindDefault is the header kind byte meaning "the store's default
	// sketch kind" (the binary analogue of an absent JSON "kind" field).
	KindDefault = 0xFF
	// MaxNameLen caps namespace and metric lengths (uint8-framed).
	MaxNameLen = 255
)

// Item flag bits.
const (
	flagWeight = 1 << iota
	flagValue
	flagTime
	flagGroup
	flagStrata

	flagReserved = 0xFF &^ (flagWeight | flagValue | flagTime | flagGroup | flagStrata)
)

// minItemBytes is the smallest possible item record: a flags byte plus a
// one-byte key varint. Item-count headers are validated against it.
const minItemBytes = 2

// maxStrataDims caps per-item stratification dimensions; real stores run
// a handful, and the bound keeps a crafted record from framing the rest
// of the body as one giant label list.
const maxStrataDims = 64

var (
	// ErrCorrupt reports a malformed, truncated, or non-canonical frame.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrVersion reports an unsupported frame version.
	ErrVersion = errors.New("wire: unsupported frame version")
)

// Frame is one decoded ingest batch. Kind is the raw header byte: a
// store kind wire value or KindDefault — interpretation (and rejection
// of unknown kinds) belongs to the serving layer, exactly as JSON kind
// strings are parsed there.
type Frame struct {
	Namespace string
	Metric    string
	Kind      byte
	Items     []engine.Item
}

// AppendFrame appends the canonical encoding of f to dst and returns
// the extended slice. Weight 1, value 0, time 0, group 0 and empty
// strata are elided per the flag scheme; every other bit pattern
// (including NaNs and -0.0) round-trips exactly.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if f.Namespace == "" || len(f.Namespace) > MaxNameLen {
		return nil, fmt.Errorf("wire: namespace length %d outside [1,%d]", len(f.Namespace), MaxNameLen)
	}
	if f.Metric == "" || len(f.Metric) > MaxNameLen {
		return nil, fmt.Errorf("wire: metric length %d outside [1,%d]", len(f.Metric), MaxNameLen)
	}
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = append(dst, Version, f.Kind, uint8(len(f.Namespace)), uint8(len(f.Metric)))
	dst = append(dst, f.Namespace...)
	dst = append(dst, f.Metric...)
	dst = binary.AppendUvarint(dst, uint64(len(f.Items)))
	for i := range f.Items {
		it := &f.Items[i]
		if len(it.Strata) > maxStrataDims {
			return nil, fmt.Errorf("wire: item %d has %d strata dimensions (max %d)", i, len(it.Strata), maxStrataDims)
		}
		flags := byte(0)
		if math.Float64bits(it.Weight) != math.Float64bits(1) {
			flags |= flagWeight
		}
		if math.Float64bits(it.Value) != 0 {
			flags |= flagValue
		}
		if math.Float64bits(it.Time) != 0 {
			flags |= flagTime
		}
		if it.Group != 0 {
			flags |= flagGroup
		}
		if len(it.Strata) != 0 {
			flags |= flagStrata
		}
		dst = append(dst, flags)
		dst = binary.AppendUvarint(dst, it.Key)
		if flags&flagWeight != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(it.Weight))
		}
		if flags&flagValue != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(it.Value))
		}
		if flags&flagTime != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(it.Time))
		}
		if flags&flagGroup != 0 {
			dst = binary.AppendUvarint(dst, it.Group)
		}
		if flags&flagStrata != 0 {
			dst = binary.AppendUvarint(dst, uint64(len(it.Strata)))
			for _, s := range it.Strata {
				dst = binary.AppendUvarint(dst, uint64(s))
			}
		}
	}
	return dst, nil
}

// uvarint decodes a canonical (minimal-length) unsigned varint from the
// front of data.
func uvarint(data []byte) (v uint64, n int, err error) {
	v, n = binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: truncated or oversized varint", ErrCorrupt)
	}
	// Reject non-minimal spellings (e.g. 0x80 0x00 for 0): canonical
	// encodings have no redundant continuation bytes.
	if n > 1 && data[n-1] == 0 {
		return 0, 0, fmt.Errorf("%w: non-minimal varint", ErrCorrupt)
	}
	return v, n, nil
}

// DecodeFrame decodes the frame at the front of data and returns the
// remaining bytes, for iterating a concatenated frame stream. Only
// canonical encodings are accepted; the error is ErrCorrupt-wrapped for
// anything malformed and ErrVersion-wrapped for an unknown version.
func DecodeFrame(data []byte) (Frame, []byte, error) {
	var f Frame
	if len(data) < 8 {
		return f, nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != Magic {
		return f, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != Version {
		return f, nil, fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	f.Kind = data[5]
	nsLen, metricLen := int(data[6]), int(data[7])
	if nsLen == 0 || metricLen == 0 {
		return f, nil, fmt.Errorf("%w: empty namespace or metric", ErrCorrupt)
	}
	rest := data[8:]
	if len(rest) < nsLen+metricLen {
		return f, nil, fmt.Errorf("%w: truncated names", ErrCorrupt)
	}
	f.Namespace = string(rest[:nsLen])
	f.Metric = string(rest[nsLen : nsLen+metricLen])
	rest = rest[nsLen+metricLen:]

	count, n, err := uvarint(rest)
	if err != nil {
		return f, nil, fmt.Errorf("item count: %w", err)
	}
	rest = rest[n:]
	// Decode-bomb guard: the claimed count must be coverable by the bytes
	// actually present, so the allocation below is bounded by the input
	// size regardless of what the header says.
	if count > uint64(len(rest)/minItemBytes) {
		return f, nil, fmt.Errorf("%w: %d items claimed, %d bytes remain", ErrCorrupt, count, len(rest))
	}
	if count > 0 {
		f.Items = make([]engine.Item, count)
	}
	for i := range f.Items {
		it := &f.Items[i]
		if len(rest) == 0 {
			return f, nil, fmt.Errorf("%w: truncated item %d", ErrCorrupt, i)
		}
		flags := rest[0]
		if flags&flagReserved != 0 {
			return f, nil, fmt.Errorf("%w: item %d sets reserved flag bits %#x", ErrCorrupt, i, flags&flagReserved)
		}
		rest = rest[1:]
		if it.Key, n, err = uvarint(rest); err != nil {
			return f, nil, fmt.Errorf("item %d key: %w", i, err)
		}
		rest = rest[n:]
		it.Weight = 1
		if flags&flagWeight != 0 {
			bits, ok := takeU64(&rest)
			if !ok {
				return f, nil, fmt.Errorf("%w: truncated weight of item %d", ErrCorrupt, i)
			}
			if bits == math.Float64bits(1) {
				return f, nil, fmt.Errorf("%w: item %d spells out default weight", ErrCorrupt, i)
			}
			it.Weight = math.Float64frombits(bits)
		}
		if flags&flagValue != 0 {
			bits, ok := takeU64(&rest)
			if !ok {
				return f, nil, fmt.Errorf("%w: truncated value of item %d", ErrCorrupt, i)
			}
			if bits == 0 {
				return f, nil, fmt.Errorf("%w: item %d spells out default value", ErrCorrupt, i)
			}
			it.Value = math.Float64frombits(bits)
		}
		if flags&flagTime != 0 {
			bits, ok := takeU64(&rest)
			if !ok {
				return f, nil, fmt.Errorf("%w: truncated time of item %d", ErrCorrupt, i)
			}
			if bits == 0 {
				return f, nil, fmt.Errorf("%w: item %d spells out default time", ErrCorrupt, i)
			}
			it.Time = math.Float64frombits(bits)
		}
		if flags&flagGroup != 0 {
			if it.Group, n, err = uvarint(rest); err != nil {
				return f, nil, fmt.Errorf("item %d group: %w", i, err)
			}
			if it.Group == 0 {
				return f, nil, fmt.Errorf("%w: item %d spells out default group", ErrCorrupt, i)
			}
			rest = rest[n:]
		}
		if flags&flagStrata != 0 {
			dims, n, err := uvarint(rest)
			if err != nil {
				return f, nil, fmt.Errorf("item %d strata count: %w", i, err)
			}
			rest = rest[n:]
			if dims == 0 {
				return f, nil, fmt.Errorf("%w: item %d spells out empty strata", ErrCorrupt, i)
			}
			if dims > maxStrataDims {
				return f, nil, fmt.Errorf("%w: item %d claims %d strata dimensions (max %d)", ErrCorrupt, i, dims, maxStrataDims)
			}
			if dims > uint64(len(rest)) { // every label is at least one byte
				return f, nil, fmt.Errorf("%w: truncated strata of item %d", ErrCorrupt, i)
			}
			it.Strata = make([]uint32, dims)
			for d := range it.Strata {
				label, n, err := uvarint(rest)
				if err != nil {
					return f, nil, fmt.Errorf("item %d stratum %d: %w", i, d, err)
				}
				if label > math.MaxUint32 {
					return f, nil, fmt.Errorf("%w: item %d stratum %d label %d overflows uint32", ErrCorrupt, i, d, label)
				}
				it.Strata[d] = uint32(label)
				rest = rest[n:]
			}
		}
	}
	return f, rest, nil
}

// takeU64 consumes 8 little-endian bytes from *rest.
func takeU64(rest *[]byte) (uint64, bool) {
	if len(*rest) < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(*rest)
	*rest = (*rest)[8:]
	return v, true
}

// DecodeFrames decodes a whole body of concatenated frames, rejecting
// trailing garbage and empty bodies.
func DecodeFrames(data []byte) ([]Frame, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty body", ErrCorrupt)
	}
	var frames []Frame
	for len(data) > 0 {
		f, rest, err := DecodeFrame(data)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", len(frames), err)
		}
		frames = append(frames, f)
		data = rest
	}
	return frames, nil
}
