package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"ats/internal/engine"
)

func mustAppend(t *testing.T, dst []byte, f Frame) []byte {
	t.Helper()
	out, err := AppendFrame(dst, f)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	frames := []Frame{
		{Namespace: "acme", Metric: "bytes", Kind: KindDefault, Items: []engine.Item{
			{Key: 1, Weight: 3.5, Value: 3.5},
			{Key: 2, Weight: 1, Value: 1},
			{Key: 1 << 63, Weight: 0.25, Value: -2, Time: 17.5},
		}},
		{Namespace: "acme", Metric: "grouped", Kind: 6, Items: []engine.Item{
			{Key: 9, Weight: 1, Group: 44},
			{Key: 10, Weight: 1, Group: 7, Strata: []uint32{3, math.MaxUint32}},
		}},
		{Namespace: "n", Metric: "m", Kind: 0}, // empty batch
		{Namespace: "edge", Metric: "floats", Kind: 4, Items: []engine.Item{
			{Key: 0, Weight: math.Inf(1), Value: math.Copysign(0, -1)}, // -0.0 value is not the default
			{Key: 7, Weight: math.NaN(), Value: 1e-308},
		}},
	}
	var body []byte
	for _, f := range frames {
		body = mustAppend(t, body, f)
	}
	got, err := DecodeFrames(body)
	if err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	// Re-encoding must reproduce the body byte for byte (canonical form).
	var again []byte
	for _, f := range got {
		again = mustAppend(t, again, f)
	}
	if !bytes.Equal(body, again) {
		t.Fatal("re-encode differs from the original encoding")
	}
	// Field-level checks, including bit-exact float round-trips.
	if got[0].Namespace != "acme" || got[0].Metric != "bytes" || got[0].Kind != KindDefault {
		t.Fatalf("frame 0 header: %+v", got[0])
	}
	if got[0].Items[1].Weight != 1 {
		t.Fatalf("elided weight must decode to 1, got %v", got[0].Items[1].Weight)
	}
	if w := got[3].Items[1].Weight; !math.IsNaN(w) {
		t.Fatalf("NaN weight lost: %v", w)
	}
	if v := got[3].Items[0].Value; math.Float64bits(v) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("-0.0 value lost: %v", v)
	}
	if s := got[1].Items[1].Strata; len(s) != 2 || s[1] != math.MaxUint32 {
		t.Fatalf("strata round-trip: %v", s)
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{Namespace: "", Metric: "m"}); err == nil {
		t.Error("empty namespace must be rejected")
	}
	if _, err := AppendFrame(nil, Frame{Namespace: string(make([]byte, 256)), Metric: "m"}); err == nil {
		t.Error("over-long namespace must be rejected")
	}
	if _, err := AppendFrame(nil, Frame{Namespace: "n", Metric: "m",
		Items: []engine.Item{{Strata: make([]uint32, maxStrataDims+1)}}}); err == nil {
		t.Error("over-dimensional strata must be rejected")
	}
}

func TestDecodeRejects(t *testing.T) {
	base := mustAppend(t, nil, Frame{Namespace: "acme", Metric: "bytes", Kind: KindDefault,
		Items: []engine.Item{{Key: 5, Weight: 2, Value: 2}}})

	corrupt := func(name string, mutate func([]byte) []byte, wantErr error) {
		t.Helper()
		data := mutate(append([]byte(nil), base...))
		if _, _, err := DecodeFrame(data); err == nil {
			t.Errorf("%s: decode accepted a corrupt frame", name)
		} else if wantErr != nil && !errors.Is(err, wantErr) {
			t.Errorf("%s: got %v, want %v", name, err, wantErr)
		}
	}
	corrupt("empty", func(b []byte) []byte { return nil }, ErrCorrupt)
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrCorrupt)
	corrupt("bad version", func(b []byte) []byte { b[4] = 99; return b }, ErrVersion)
	corrupt("zero ns len", func(b []byte) []byte { b[6] = 0; return b }, ErrCorrupt)
	corrupt("truncated items", func(b []byte) []byte { return b[:len(b)-4] }, ErrCorrupt)
	corrupt("reserved flags", func(b []byte) []byte {
		// flags byte of item 0 sits right after the count varint.
		b[8+len("acme")+len("bytes")+1] |= 0x80
		return b
	}, ErrCorrupt)

	// Claimed item count far beyond the bytes present must be rejected
	// before allocating (decode-bomb guard).
	head := binary.LittleEndian.AppendUint32(nil, Magic)
	head = append(head, Version, KindDefault, 1, 1, 'n', 'm')
	bomb := binary.AppendUvarint(head, 1<<40)
	if _, _, err := DecodeFrame(bomb); !errors.Is(err, ErrCorrupt) {
		t.Errorf("decode bomb: got %v, want ErrCorrupt", err)
	}

	// Non-canonical spellings of defaults must be rejected: weight 1.
	withW := append([]byte(nil), head...)
	withW = binary.AppendUvarint(withW, 1)
	withW = append(withW, flagWeight, 0x05)
	withW = binary.LittleEndian.AppendUint64(withW, math.Float64bits(1))
	if _, _, err := DecodeFrame(withW); !errors.Is(err, ErrCorrupt) {
		t.Errorf("explicit default weight: got %v, want ErrCorrupt", err)
	}

	// Non-minimal varint key.
	nonMin := append([]byte(nil), head...)
	nonMin = binary.AppendUvarint(nonMin, 1)
	nonMin = append(nonMin, 0 /* flags */, 0x85, 0x00 /* key 5, two bytes */)
	if _, _, err := DecodeFrame(nonMin); !errors.Is(err, ErrCorrupt) {
		t.Errorf("non-minimal varint: got %v, want ErrCorrupt", err)
	}

	// Trailing garbage after the last frame fails the body decoder.
	if _, err := DecodeFrames(append(append([]byte(nil), base...), 0xAA)); err == nil {
		t.Error("trailing garbage must be rejected")
	}
	if _, err := DecodeFrames(nil); err == nil {
		t.Error("empty body must be rejected")
	}
}

// TestCompactness pins the protocol's reason to exist: the binary frame
// must be much smaller than the equivalent JSON body.
func TestCompactness(t *testing.T) {
	items := make([]engine.Item, 1000)
	for i := range items {
		items[i] = engine.Item{Key: uint64(i) * 2654435761, Weight: 1.5, Value: 1.5}
	}
	body := mustAppend(t, nil, Frame{Namespace: "acme", Metric: "bytes", Kind: KindDefault, Items: items})
	perItem := float64(len(body)) / float64(len(items))
	if perItem > 24 {
		t.Fatalf("binary frame costs %.1f bytes/item, want <= 24", perItem)
	}
}
