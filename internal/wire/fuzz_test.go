package wire

import (
	"bytes"
	"math"
	"testing"

	"ats/internal/engine"
)

// FuzzBatchFrameDecode feeds arbitrary bytes to the frame decoder.
// Inputs that decode must re-encode to the identical bytes (the
// canonical-form contract); inputs that do not must fail cleanly
// without panicking or over-allocating. Crash inputs found during
// development land in testdata/fuzz as regression seeds.
func FuzzBatchFrameDecode(f *testing.F) {
	seedFrames := [][]engine.Item{
		nil,
		{{Key: 1, Weight: 3.5, Value: 3.5}},
		{{Key: 2, Weight: 1, Value: 1}, {Key: 1 << 62, Weight: 0.25, Time: 9.75}},
		{{Key: 9, Weight: 1, Group: 44}, {Key: 10, Weight: 1, Strata: []uint32{3, 1, 7}}},
		{{Key: 0, Weight: math.Inf(1), Value: math.Copysign(0, -1)}},
	}
	for i, items := range seedFrames {
		data, err := AppendFrame(nil, Frame{
			Namespace: "acme", Metric: "bytes", Kind: byte(i % 9), Items: items})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(append(append([]byte(nil), data...), data...)) // two frames
	}
	f.Add([]byte{})
	f.Add([]byte("ATSBgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, rest, err := DecodeFrame(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		again, err := AppendFrame(nil, frame)
		if err != nil {
			t.Fatalf("decoded frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(consumed, again) {
			t.Fatalf("decode/re-encode not canonical:\n in  %x\n out %x", consumed, again)
		}
		// The whole-body decoder must agree with the single-frame one on
		// a body that is exactly one frame.
		if len(rest) == 0 {
			frames, err := DecodeFrames(data)
			if err != nil || len(frames) != 1 {
				t.Fatalf("DecodeFrames disagrees with DecodeFrame: %v (%d frames)", err, len(frames))
			}
		}
	})
}
