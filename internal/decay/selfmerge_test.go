package decay

import (
	"bytes"
	"testing"
)

// TestSelfMergeRejectedAndHarmless is the self-merge guard regression
// for the time-decayed Merge: merging a sampler into itself must fail
// with an error AND leave the sampler byte-identical — a partial
// self-merge would duplicate retained entries under the union rule.
func TestSelfMergeRejectedAndHarmless(t *testing.T) {
	s := New(24, 0.5, 7)
	for i := 0; i < 3000; i++ {
		s.Add(uint64(i), 1+float64(i%5), 1, float64(i)*0.01)
	}
	before, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wantCount := s.DecayedCount(30)
	if err := s.Merge(s); err == nil {
		t.Fatal("self-merge must be rejected")
	}
	after, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("rejected self-merge mutated the sampler")
	}
	if got := s.DecayedCount(30); got != wantCount {
		t.Fatalf("decayed count %v after rejected self-merge, want %v", got, wantCount)
	}
}
