package decay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ats/internal/stream"
)

// Serialization format (little-endian):
//
//	magic   uint32  "ATSy"
//	version uint8   1
//	k       uint32
//	lambda  float64
//	seed    uint64
//	n       uint64
//	count   uint32  retained entries (<= k+1)
//	entries count × (key uint64, weight float64, value float64, time float64)
//
// LogP is derived state — ln(U/w) - λ·t0 with U = HashU01(key, seed) —
// and is recomputed on decode with exactly the expression Add uses, so a
// round trip is bit-identical. Entries are written in heap-array order
// and rebuilt by in-order inserts, which reproduces the array exactly:
// marshal ∘ unmarshal is the identity on bytes.

const (
	codecMagic   = 0x41545379 // "ATSy" ("ATSd" is the distinct sketch's)
	codecVersion = 1

	codecHeader    = 4 + 1 + 4 + 8 + 8 + 8 + 4
	codecEntrySize = 32
)

var (
	// ErrCorrupt reports malformed or truncated serialized data.
	ErrCorrupt = errors.New("decay: corrupt serialized sampler")
	// ErrVersion reports an unsupported serialization version.
	ErrVersion = errors.New("decay: unsupported serialization version")
)

// MarshalBinary serializes the sampler.
func (s *Sampler) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, codecHeader+len(s.heap)*codecEntrySize)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.k))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.lambda))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.heap)))
	for _, e := range s.heap {
		buf = binary.LittleEndian.AppendUint64(buf, e.Key)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Weight))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Value))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Time))
	}
	return buf, nil
}

// UnmarshalBinary restores a sampler serialized by MarshalBinary,
// overwriting the receiver.
func (s *Sampler) UnmarshalBinary(data []byte) error {
	if len(data) < codecHeader {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != codecMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != codecVersion {
		return fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	k := int(binary.LittleEndian.Uint32(data[5:]))
	if k <= 0 {
		return fmt.Errorf("%w: non-positive k", ErrCorrupt)
	}
	lambda := math.Float64frombits(binary.LittleEndian.Uint64(data[9:]))
	if !(lambda > 0) || math.IsInf(lambda, 1) {
		return fmt.Errorf("%w: invalid lambda %v", ErrCorrupt, lambda)
	}
	seed := binary.LittleEndian.Uint64(data[17:])
	n := int64(binary.LittleEndian.Uint64(data[25:]))
	if n < 0 {
		return fmt.Errorf("%w: negative n", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(data[33:]))
	if count > k+1 {
		return fmt.Errorf("%w: %d entries for k=%d", ErrCorrupt, count, k)
	}
	// Length is validated against the declared count BEFORE any
	// count-sized allocation (decode-bomb guard).
	if len(data) != codecHeader+count*codecEntrySize {
		return fmt.Errorf("%w: body is %d bytes, want %d entries", ErrCorrupt, len(data)-codecHeader, count)
	}
	restored := New(k, lambda, seed)
	off := codecHeader
	for i := 0; i < count; i++ {
		e := Entry{
			Key:    binary.LittleEndian.Uint64(data[off:]),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:])),
			Value:  math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:])),
			Time:   math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:])),
		}
		off += codecEntrySize
		if !(e.Weight > 0) || math.IsInf(e.Weight, 1) {
			return fmt.Errorf("%w: entry %d has invalid weight %v", ErrCorrupt, i, e.Weight)
		}
		if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
			return fmt.Errorf("%w: entry %d has invalid time %v", ErrCorrupt, i, e.Time)
		}
		u := stream.HashU01(e.Key, seed)
		e.LogP = math.Log(u) - math.Log(e.Weight) - lambda*e.Time
		restored.add(e)
	}
	restored.n = int(n)
	*s = *restored
	return nil
}
