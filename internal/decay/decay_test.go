package decay

import (
	"math"
	"testing"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct {
		k      int
		lambda float64
	}{{0, 1}, {5, 0}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %v) must panic", c.k, c.lambda)
				}
			}()
			New(c.k, c.lambda, 1)
		}()
	}
}

func TestExactBelowK(t *testing.T) {
	s := New(50, 1, 1)
	for i := 0; i < 20; i++ {
		s.Add(uint64(i), 1, 1, float64(i)*0.1)
	}
	// Below capacity every inclusion probability is 1 and the decayed sum
	// is exact.
	tq := 2.0
	want := 0.0
	for i := 0; i < 20; i++ {
		want += math.Exp(-(tq - float64(i)*0.1))
	}
	if got := s.DecayedSum(tq, nil); math.Abs(got-want) > 1e-9 {
		t.Errorf("decayed sum = %v, want exact %v", got, want)
	}
	if got := s.DecayedCount(tq); math.Abs(got-want) > 1e-9 {
		t.Errorf("decayed count = %v, want %v", got, want)
	}
}

func TestRecencyBias(t *testing.T) {
	// With strong decay, the sample should be dominated by recent items.
	s := New(50, 2, 2)
	for i := 0; i < 10000; i++ {
		s.Add(uint64(i), 1, 1, float64(i)*0.01) // times 0 .. 100
	}
	recent := 0
	for _, e := range s.Sample() {
		if e.Time > 95 {
			recent++
		}
	}
	if recent < 35 {
		t.Errorf("only %d of 50 sampled items from the most recent 5%% of time", recent)
	}
}

// TestDecayedSumUnbiased: Monte-Carlo unbiasedness of the decayed-sum
// estimator under the dual adaptive threshold.
func TestDecayedSumUnbiased(t *testing.T) {
	n := 2000
	lambda := 0.05
	rng := stream.NewRNG(3)
	type item struct {
		w, x, t0 float64
	}
	items := make([]item, n)
	tq := 10.0
	truth := 0.0
	for i := range items {
		items[i] = item{
			w:  0.5 + rng.Float64()*2,
			x:  1 + rng.Float64(),
			t0: rng.Float64() * 10,
		}
		truth += items[i].x * math.Exp(-lambda*(tq-items[i].t0))
	}
	var est estimator.Running
	for trial := 0; trial < 3000; trial++ {
		s := New(100, lambda, uint64(trial)+10)
		for i, it := range items {
			s.Add(uint64(i), it.w, it.x, it.t0)
		}
		est.Add(s.DecayedSum(tq, nil))
	}
	if z := (est.Mean() - truth) / est.SE(); math.Abs(z) > 4.5 {
		t.Errorf("decayed sum biased: mean %v truth %v z %v", est.Mean(), truth, z)
	}
}

func TestNumericalStabilityAtLargeTimes(t *testing.T) {
	// λ·t ~ 7000: naive exp(λ·t) overflows float64; log-space must not.
	s := New(10, 1, 4)
	for i := 0; i < 1000; i++ {
		s.Add(uint64(i), 1, 1, 7000+float64(i)*0.01)
	}
	tq := 7010.01
	got := s.DecayedCount(tq)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("decayed count = %v; log-space arithmetic failed", got)
	}
	// The decayed population is Σ exp(-(tq-t0)) over the last few time
	// units ≈ 100·∫exp(-a)da ≈ 100 (1000 items over 10 time units).
	if got < 20 || got > 500 {
		t.Errorf("decayed count = %v, want O(100)", got)
	}
	for _, e := range s.Sample() {
		p := s.InclusionProb(e)
		if p <= 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("inclusion prob %v out of (0,1]", p)
		}
	}
}

func TestInvalidWeightIgnored(t *testing.T) {
	s := New(5, 1, 5)
	s.Add(1, 0, 1, 0)
	s.Add(2, -1, 1, 0)
	if len(s.Sample()) != 0 {
		t.Error("non-positive weights must be ignored")
	}
}

func TestOrderInsensitive(t *testing.T) {
	// Bottom-k on fixed adjusted priorities: processing order must not
	// matter.
	mk := func(order []int) *Sampler {
		s := New(8, 0.5, 6)
		for _, i := range order {
			s.Add(uint64(i), 1+float64(i%3), 1, float64(i)*0.2)
		}
		return s
	}
	fwd := make([]int, 100)
	rev := make([]int, 100)
	for i := range fwd {
		fwd[i] = i
		rev[i] = 99 - i
	}
	a, b := mk(fwd), mk(rev)
	if a.LogThreshold() != b.LogThreshold() {
		t.Fatal("threshold depends on processing order")
	}
	if got, want := a.DecayedSum(20, nil), b.DecayedSum(20, nil); math.Abs(got-want) > 1e-12 {
		t.Fatalf("decayed sums differ: %v vs %v", got, want)
	}
}
