// Package decay implements exponentially time-decayed priority sampling
// via the priority-threshold duality of §2.9 (after Cormode, Korn &
// Tirthapura's time-decayed aggregates): an item arriving at time t0 with
// weight w has decayed weight w·exp(-λ(t-t0)), but instead of rewriting
// stored priorities as time passes, each item keeps the FIXED adjusted
// log-priority
//
//	logP = ln(U/w) - λ·t0,
//
// and the sample is simply the bottom-k by logP. Inclusion at query time t
// is equivalent to U/w(t) < T(t) for the dual threshold, so the
// Horvitz-Thompson weights use the decayed weight — recent items are
// favored automatically and nothing stored ever changes.
//
// All arithmetic is in log space so the scheme is stable for arbitrarily
// large λ·t.
package decay

import (
	"errors"
	"fmt"
	"math"

	"ats/internal/stream"
)

// Entry is one retained item.
type Entry struct {
	Key    uint64
	Weight float64
	Value  float64
	// Time is the arrival time t0.
	Time float64
	// LogP is the fixed adjusted log-priority ln(U/w) - λ·t0.
	LogP float64
}

// Sampler maintains a bottom-k sample under exponential time decay.
type Sampler struct {
	k      int
	lambda float64
	seed   uint64
	// heap is a max-heap on LogP holding the k+1 smallest adjusted
	// log-priorities.
	heap []Entry
	n    int
}

// New returns a time-decayed sampler keeping k items with decay rate
// lambda (> 0) per unit time.
func New(k int, lambda float64, seed uint64) *Sampler {
	if k <= 0 {
		panic("decay: k must be positive")
	}
	if lambda <= 0 {
		panic("decay: lambda must be positive")
	}
	return &Sampler{k: k, lambda: lambda, seed: seed}
}

// K returns the sample-size parameter.
func (s *Sampler) K() int { return s.k }

// N returns the number of items offered.
func (s *Sampler) N() int { return s.n }

// Lambda returns the decay rate.
func (s *Sampler) Lambda() float64 { return s.lambda }

// Seed returns the coordination seed. Samplers sharing a seed (and k and
// lambda) assign every (key, weight, time) arrival the same adjusted
// log-priority, which is what makes them mergeable.
func (s *Sampler) Seed() uint64 { return s.seed }

// Merge folds another time-decayed sampler into s. Because adjusted
// log-priorities are derived from a seeded hash of the key — never from
// arrival order or sampler-local randomness — the merged sample (the k+1
// smallest LogP of the union) is identical to the sample a single
// sampler would hold after seeing both streams, so every decayed HT
// estimator stays unbiased. The two samplers must share k, lambda and
// seed, and must have seen disjoint streams (shared arrivals would be
// double-counted, exactly as in any bottom-k merge). The argument is not
// modified.
func (s *Sampler) Merge(o *Sampler) error {
	if o == s {
		return errors.New("decay: cannot merge a sampler into itself")
	}
	if o.k != s.k || o.lambda != s.lambda || o.seed != s.seed {
		return fmt.Errorf("decay: cannot merge samplers with different configuration (k=%d/%d, lambda=%v/%v, seed=%d/%d)",
			s.k, o.k, s.lambda, o.lambda, s.seed, o.seed)
	}
	total := s.n + o.n
	for _, e := range o.heap {
		s.add(e)
	}
	s.n = total
	return nil
}

// Add offers an item with weight w > 0 and value x arriving at time t0.
// Arrival times may be in any order (the structure is order-insensitive,
// like any bottom-k sketch), though typically they are non-decreasing.
func (s *Sampler) Add(key uint64, w, x, t0 float64) {
	if w <= 0 {
		return
	}
	u := stream.HashU01(key, s.seed)
	logP := math.Log(u) - math.Log(w) - s.lambda*t0
	s.add(Entry{Key: key, Weight: w, Value: x, Time: t0, LogP: logP})
}

func (s *Sampler) add(e Entry) {
	s.n++
	if len(s.heap) == s.k+1 && e.LogP >= s.heap[0].LogP {
		return
	}
	s.heap = append(s.heap, e)
	siftUp(s.heap, len(s.heap)-1)
	if len(s.heap) > s.k+1 {
		popRoot(&s.heap)
	}
}

// LogThreshold returns the adaptive threshold in adjusted log-priority
// space: the (k+1)-th smallest LogP seen (+inf while fewer than k+1 items).
func (s *Sampler) LogThreshold() float64 {
	if len(s.heap) < s.k+1 {
		return math.Inf(1)
	}
	return s.heap[0].LogP
}

// Sample returns the retained entries with LogP strictly below the
// threshold.
func (s *Sampler) Sample() []Entry {
	th := s.LogThreshold()
	out := make([]Entry, 0, s.k)
	for _, e := range s.heap {
		if e.LogP < th {
			out = append(out, e)
		}
	}
	return out
}

// SampleSize returns len(Sample()) without materializing the sample.
func (s *Sampler) SampleSize() int {
	th := s.LogThreshold()
	n := 0
	for _, e := range s.heap {
		if e.LogP < th {
			n++
		}
	}
	return n
}

// InclusionProb returns the pseudo-inclusion probability of a retained
// entry: P(logP < logThreshold) = min(1, w·exp(λ·t0 + logThreshold)),
// which equals min(1, w(t)·T(t)) under the duality for any query time t.
func (s *Sampler) InclusionProb(e Entry) float64 {
	th := s.LogThreshold()
	if math.IsInf(th, 1) {
		return 1
	}
	logp := math.Log(e.Weight) + s.lambda*e.Time + th
	if logp >= 0 {
		return 1
	}
	return math.Exp(logp)
}

// DecayedSum returns the HT estimate, at query time t, of the decayed sum
//
//	Σ_i x_i · exp(-λ·(t - t0_i))
//
// over ALL items offered so far (matching pred when non-nil). The decayed
// value of each sampled item is divided by its pseudo-inclusion
// probability.
func (s *Sampler) DecayedSum(t float64, pred func(Entry) bool) float64 {
	th := s.LogThreshold()
	sum := 0.0
	for _, e := range s.heap {
		if e.LogP >= th {
			continue
		}
		if pred != nil && !pred(e) {
			continue
		}
		decayed := e.Value * math.Exp(-s.lambda*(t-e.Time))
		p := s.InclusionProb(e)
		if p > 0 {
			sum += decayed / p
		}
	}
	return sum
}

// DecayedCount returns the HT estimate of Σ exp(-λ(t-t0_i)) — the decayed
// population size.
func (s *Sampler) DecayedCount(t float64) float64 {
	th := s.LogThreshold()
	sum := 0.0
	for _, e := range s.heap {
		if e.LogP >= th {
			continue
		}
		decayed := math.Exp(-s.lambda * (t - e.Time))
		p := s.InclusionProb(e)
		if p > 0 {
			sum += decayed / p
		}
	}
	return sum
}

// --- max-heap on LogP ---

func siftUp(h []Entry, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].LogP >= h[i].LogP {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func popRoot(h *[]Entry) Entry {
	old := *h
	root := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	n := len(*h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && (*h)[l].LogP > (*h)[largest].LogP {
			largest = l
		}
		if r < n && (*h)[r].LogP > (*h)[largest].LogP {
			largest = r
		}
		if largest == i {
			return root
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}
