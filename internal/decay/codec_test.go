package decay

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"ats/internal/stream"
)

func TestMergeMatchesSequential(t *testing.T) {
	// Hash-derived priorities make the merge exact: a merged pair over a
	// split stream holds the identical sample (and thresholds and
	// estimates) of a single sampler over the whole stream.
	rng := stream.NewRNG(3)
	type arrival struct {
		key  uint64
		w, t float64
	}
	arrivals := make([]arrival, 5000)
	for i := range arrivals {
		arrivals[i] = arrival{uint64(i), rng.Open01() * 5, float64(i) * 0.01}
	}
	seq := New(40, 0.5, 7)
	a := New(40, 0.5, 7)
	b := New(40, 0.5, 7)
	for i, ar := range arrivals {
		seq.Add(ar.key, ar.w, 1, ar.t)
		if i%2 == 0 {
			a.Add(ar.key, ar.w, 1, ar.t)
		} else {
			b.Add(ar.key, ar.w, 1, ar.t)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != seq.N() {
		t.Errorf("merged n = %d, want %d", a.N(), seq.N())
	}
	if a.LogThreshold() != seq.LogThreshold() {
		t.Errorf("merged threshold %v != sequential %v", a.LogThreshold(), seq.LogThreshold())
	}
	// The retained sets are identical entry for entry; the estimates may
	// differ in the last ulp because the heaps hold them in different
	// array orders and float summation is order-sensitive.
	ms, ss := sortedSample(a), sortedSample(seq)
	if len(ms) != len(ss) {
		t.Fatalf("merged sample size %d != sequential %d", len(ms), len(ss))
	}
	for i := range ms {
		if ms[i] != ss[i] {
			t.Errorf("sample[%d]: merged %+v != sequential %+v", i, ms[i], ss[i])
		}
	}
	tq := 60.0
	if m, s := a.DecayedSum(tq, nil), seq.DecayedSum(tq, nil); math.Abs(m-s) > 1e-12*math.Abs(s) {
		t.Errorf("merged decayed sum %v != sequential %v", m, s)
	}
	if m, s := a.DecayedCount(tq), seq.DecayedCount(tq); math.Abs(m-s) > 1e-12*math.Abs(s) {
		t.Errorf("merged decayed count %v != sequential %v", m, s)
	}
}

func sortedSample(s *Sampler) []Entry {
	out := s.Sample()
	sort.Slice(out, func(i, j int) bool {
		if out[i].LogP != out[j].LogP {
			return out[i].LogP < out[j].LogP
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func TestMergeErrors(t *testing.T) {
	a := New(8, 1, 1)
	if err := a.Merge(a); err == nil {
		t.Error("self-merge must fail")
	}
	for _, o := range []*Sampler{New(16, 1, 1), New(8, 2, 1), New(8, 1, 2)} {
		if err := a.Merge(o); err == nil {
			t.Errorf("config mismatch (k=%d lambda=%v seed=%d) must fail", o.K(), o.Lambda(), o.Seed())
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := stream.NewRNG(8)
	orig := New(30, 0.25, 12)
	for i := 0; i < 4000; i++ {
		orig.Add(uint64(i), rng.Open01()*4, rng.Float64(), float64(i)*0.02)
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sampler
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.K() != orig.K() || got.N() != orig.N() || got.Lambda() != orig.Lambda() || got.Seed() != orig.Seed() {
		t.Fatal("identity changed across round trip")
	}
	if got.LogThreshold() != orig.LogThreshold() {
		t.Errorf("threshold changed: %v -> %v", orig.LogThreshold(), got.LogThreshold())
	}
	tq := 100.0
	if a, b := orig.DecayedSum(tq, nil), got.DecayedSum(tq, nil); a != b {
		t.Errorf("decayed sum changed: %v -> %v", a, b)
	}
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("marshal ∘ unmarshal is not the identity on bytes")
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	orig := New(8, 1, 1)
	for i := 0; i < 100; i++ {
		orig.Add(uint64(i), 1, 1, float64(i))
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": data[:len(data)-1],
		"bad magic": append([]byte("XXXX"), data[4:]...),
	}
	badVersion := append([]byte(nil), data...)
	badVersion[4] = 9
	cases["bad version"] = badVersion
	hugeCount := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(hugeCount[33:], 1<<29)
	cases["count > k+1"] = hugeCount
	badLambda := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(badLambda[9:], math.Float64bits(-1))
	cases["negative lambda"] = badLambda
	badWeight := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(badWeight[codecHeader+8:], math.Float64bits(math.NaN()))
	cases["NaN weight"] = badWeight
	for name, c := range cases {
		var s Sampler
		if err := s.UnmarshalBinary(c); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

// FuzzCodecRoundTrip feeds arbitrary bytes to UnmarshalBinary: inputs
// that decode must survive a bit-stable re-marshal; inputs that do not
// decode must fail cleanly without panicking or over-allocating.
func FuzzCodecRoundTrip(f *testing.F) {
	seed := func(k int, lambda float64, seed uint64, n int) []byte {
		rng := stream.NewRNG(seed)
		s := New(k, lambda, seed)
		for i := 0; i < n; i++ {
			s.Add(uint64(i), rng.Open01()*3, 1, float64(i)*0.1)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seed(4, 1, 1, 0))
	f.Add(seed(4, 0.5, 1, 3))
	f.Add(seed(8, 2, 42, 500))
	f.Add(seed(64, 0.01, 7, 5000))
	f.Add([]byte{})
	f.Add([]byte("ATSygarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sampler
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		if s.k <= 0 || len(s.heap) > s.k+1 {
			t.Fatalf("decoded invalid sampler: k=%d retained=%d", s.k, len(s.heap))
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var s2 Sampler
		if err := s2.UnmarshalBinary(out); err != nil {
			t.Fatalf("round trip rejected its own output: %v", err)
		}
		out2, err := s2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("round trip is not bit-stable")
		}
	})
}
