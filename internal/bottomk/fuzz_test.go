package bottomk

import (
	"math"
	"sort"
	"testing"
)

// sameBits reports float equality by bit pattern, so NaNs compare equal
// to themselves.
func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// fuzzSeedSketch marshals a sketch populated with n items, for the seed
// corpus.
func fuzzSeedSketch(t testing.TB, k int, seed uint64, n int) []byte {
	sk := New(k, seed)
	for i := 0; i < n; i++ {
		sk.Add(uint64(i)*2654435761, 1+float64(i%7), float64(i))
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func sampleFingerprint(s *Sketch) []Entry {
	out := s.Sample()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// FuzzCodecRoundTrip feeds arbitrary bytes to UnmarshalBinary. Inputs that
// decode must survive a marshal/unmarshal round trip with identical
// semantics (k, seed, N, threshold, sample); inputs that do not decode
// must fail cleanly without panicking.
func FuzzCodecRoundTrip(f *testing.F) {
	// Seed corpus: empty, below-k, exactly full, and large sketches, plus
	// a merged pair, the empty input, and a truncated valid prefix.
	f.Add(fuzzSeedSketch(f, 4, 1, 0))
	f.Add(fuzzSeedSketch(f, 4, 1, 3))
	f.Add(fuzzSeedSketch(f, 4, 42, 5))
	f.Add(fuzzSeedSketch(f, 64, 7, 1000))
	merged := New(8, 9)
	other := New(8, 9)
	for i := 0; i < 100; i++ {
		merged.Add(uint64(i), 1, 1)
		other.Add(uint64(i+50), 2, 1)
	}
	if err := merged.Merge(other); err != nil {
		f.Fatal(err)
	}
	if data, err := merged.MarshalBinary(); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("ATSbgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sketch
		if err := s.UnmarshalBinary(data); err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		// Decoded state must respect the structural invariants.
		if s.k <= 0 || s.kp.Len() > s.k+1 {
			t.Fatalf("decoded invalid sketch: k=%d retained=%d", s.k, s.kp.Len())
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var s2 Sketch
		if err := s2.UnmarshalBinary(out); err != nil {
			t.Fatalf("round trip rejected its own output: %v", err)
		}
		if s2.k != s.k || s2.seed != s.seed || s2.n != s.n {
			t.Fatalf("round trip changed identity: (%d,%d,%d) -> (%d,%d,%d)",
				s.k, s.seed, s.n, s2.k, s2.seed, s2.n)
		}
		t1, t2 := s.Threshold(), s2.Threshold()
		if t1 != t2 && !(math.IsInf(t1, 1) && math.IsInf(t2, 1)) {
			t.Fatalf("round trip changed threshold: %v -> %v", t1, t2)
		}
		a, b := sampleFingerprint(&s), sampleFingerprint(&s2)
		if len(a) != len(b) {
			t.Fatalf("round trip changed sample size: %d -> %d", len(a), len(b))
		}
		// Compare by bit pattern: the codec legitimately round-trips NaN
		// values, and NaN != NaN would flag identical entries as changed.
		for i := range a {
			if a[i].Key != b[i].Key || !sameBits(a[i].Weight, b[i].Weight) ||
				!sameBits(a[i].Value, b[i].Value) || !sameBits(a[i].Priority, b[i].Priority) {
				t.Fatalf("round trip changed sample[%d]: %+v -> %+v", i, a[i], b[i])
			}
		}
		// Estimates must agree as well (exercises the heap invariant).
		sum1, var1 := s.SubsetSum(nil)
		sum2, var2 := s2.SubsetSum(nil)
		if !sameBits(sum1, sum2) || !sameBits(var1, var2) {
			t.Fatalf("round trip changed estimate: (%v,%v) -> (%v,%v)", sum1, var1, sum2, var2)
		}
	})
}
