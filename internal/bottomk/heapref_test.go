package bottomk

// This file preserves the pre-keeper heap implementation as a test-only
// reference: the keeper-backed Sketch must produce bit-identical samples
// and thresholds on any stream, and the heap baseline benchmarks keep the
// before/after ingest numbers comparable via benchstat.

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ats/internal/estimator"
	"ats/internal/stream"
)

// scratchAlias bundles a reusable estimator scratch with result sinks so
// alloc-measuring loops don't let the compiler elide the work.
type scratchAlias struct {
	sc          estimator.Scratch
	sum, varEst float64
}

// heapSketch is the original max-heap bottom-k implementation.
type heapSketch struct {
	k    int
	seed uint64
	heap []Entry
	n    int
}

func newHeapSketch(k int, seed uint64) *heapSketch {
	return &heapSketch{k: k, seed: seed, heap: make([]Entry, 0, k+2)}
}

func (s *heapSketch) Add(key uint64, weight, value float64) {
	if weight <= 0 {
		return
	}
	u := hashU01(key, s.seed)
	s.AddWithPriority(Entry{Key: key, Weight: weight, Value: value, Priority: u / weight})
}

func (s *heapSketch) AddWithPriority(e Entry) {
	s.n++
	if len(s.heap) == s.k+1 && e.Priority >= s.heap[0].Priority {
		return
	}
	s.heap = append(s.heap, e)
	refSiftUp(s.heap, len(s.heap)-1)
	if len(s.heap) > s.k+1 {
		refPopRoot(&s.heap)
	}
}

func (s *heapSketch) Threshold() float64 {
	if len(s.heap) < s.k+1 {
		return math.Inf(1)
	}
	return s.heap[0].Priority
}

func (s *heapSketch) Sample() []Entry {
	t := s.Threshold()
	out := make([]Entry, 0, sampleCap(s.k, len(s.heap)))
	for _, e := range s.heap {
		if e.Priority < t {
			out = append(out, e)
		}
	}
	return out
}

func refSiftUp(h []Entry, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Priority >= h[i].Priority {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func refPopRoot(h *[]Entry) {
	old := *h
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && old[l].Priority > old[largest].Priority {
			largest = l
		}
		if r < n && old[r].Priority > old[largest].Priority {
			largest = r
		}
		if largest == i {
			return
		}
		old[i], old[largest] = old[largest], old[i]
		i = largest
	}
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Priority != es[j].Priority {
			return es[i].Priority < es[j].Priority
		}
		return es[i].Key < es[j].Key
	})
}

// TestKeeperMatchesHeapImplementation is the migration equivalence
// regression: on seeded random streams the keeper-backed sketch produces
// bit-identical thresholds and samples to the original heap sketch, for
// assorted k (including k=1) and stream lengths (including streams shorter
// than k), with and without interleaved queries.
func TestKeeperMatchesHeapImplementation(t *testing.T) {
	for _, k := range []int{1, 2, 13, 256} {
		for _, n := range []int{0, 1, k / 2, k, k + 1, 5*k + 3} {
			for trial := 0; trial < 5; trial++ {
				rng := stream.NewRNG(uint64(k*100000+n*97+trial) + 1)
				kpSk := New(k, 7)
				hpSk := newHeapSketch(k, 7)
				for i := 0; i < n; i++ {
					key := rng.Uint64()
					w := rng.Open01() * 5
					kpSk.Add(key, w, 1)
					hpSk.Add(key, w, 1)
					if trial%2 == 1 && i%17 == 0 {
						_ = kpSk.Threshold() // interleaved settles must not change the outcome
					}
				}
				if kt, ht := kpSk.Threshold(), hpSk.Threshold(); kt != ht &&
					!(math.IsInf(kt, 1) && math.IsInf(ht, 1)) {
					t.Fatalf("k=%d n=%d: keeper threshold %v != heap threshold %v", k, n, kt, ht)
				}
				ks, hs := kpSk.Sample(), hpSk.Sample()
				sortEntries(ks)
				sortEntries(hs)
				if len(ks) != len(hs) {
					t.Fatalf("k=%d n=%d: sample sizes %d != %d", k, n, len(ks), len(hs))
				}
				for i := range ks {
					if ks[i] != hs[i] {
						t.Fatalf("k=%d n=%d: sample[%d] %+v != %+v", k, n, i, ks[i], hs[i])
					}
				}
				if kpSk.N() != hpSk.n {
					t.Fatalf("k=%d n=%d: N %d != %d", k, n, kpSk.N(), hpSk.n)
				}
			}
		}
	}
}

// TestKeeperMatchesHeapWithDuplicatePriorities drives explicit priority
// ties across the threshold boundary: thresholds and strict-below samples
// must still agree (the identity of the entry parked AT the threshold may
// differ, which no query observes).
func TestKeeperMatchesHeapWithDuplicatePriorities(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		k := 1 + rng.Intn(6)
		kpSk := New(k, 1)
		hpSk := newHeapSketch(k, 1)
		for i := 0; i < 80; i++ {
			// Priorities drawn from a tiny grid: ties everywhere.
			e := Entry{Key: uint64(i), Weight: 1, Value: 1,
				Priority: float64(1+rng.Intn(8)) / 8}
			kpSk.AddWithPriority(e)
			hpSk.AddWithPriority(e)
		}
		if kpSk.Threshold() != hpSk.Threshold() {
			return false
		}
		ks, hs := kpSk.Sample(), hpSk.Sample()
		kp, hp := make([]float64, len(ks)), make([]float64, len(hs))
		for i, e := range ks {
			kp[i] = e.Priority
		}
		for i, e := range hs {
			hp[i] = e.Priority
		}
		sort.Float64s(kp)
		sort.Float64s(hp)
		if len(kp) != len(hp) {
			return false
		}
		for i := range kp {
			if kp[i] != hp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeSelfIsRejected(t *testing.T) {
	s := New(4, 1)
	for i := 0; i < 20; i++ {
		s.Add(uint64(i), 1, 1)
	}
	before := s.Sample()
	sortEntries(before)
	if err := s.Merge(s); err == nil {
		t.Fatal("self-merge must be rejected")
	}
	after := s.Sample()
	sortEntries(after)
	if len(after) != len(before) {
		t.Fatalf("self-merge corrupted the sketch: %d -> %d entries", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("self-merge corrupted sample[%d]: %+v -> %+v", i, before[i], after[i])
		}
	}
}

// TestSteadyStateZeroAllocs pins the tentpole property: ingest plus
// zero-alloc queries allocate nothing once the sketch is warm.
func TestSteadyStateZeroAllocs(t *testing.T) {
	sk := New(64, 3)
	for i := 0; i < 10000; i++ {
		sk.Add(uint64(i), 1+float64(i%13), 1)
	}
	key := uint64(10000)
	if allocs := testing.AllocsPerRun(1000, func() {
		key++
		sk.Add(key, 1, 1)
	}); allocs != 0 {
		t.Errorf("Add allocates %v per op in steady state, want 0", allocs)
	}
	buf := make([]Entry, 0, sk.K())
	if allocs := testing.AllocsPerRun(100, func() {
		buf = sk.AppendSample(buf[:0])
	}); allocs != 0 {
		t.Errorf("AppendSample allocates %v per op, want 0", allocs)
	}
	var sc scratchAlias
	if allocs := testing.AllocsPerRun(100, func() {
		sc.sum, sc.varEst = sk.SubsetSumInto(nil, &sc.sc)
	}); allocs != 0 {
		t.Errorf("SubsetSumInto allocates %v per op, want 0", allocs)
	}
	if sc.sum <= 0 {
		t.Error("SubsetSumInto returned a non-positive total")
	}
}

// --- benchmarks: keeper vs the preserved heap baseline ---

func benchEntries(n int) []Entry {
	rng := stream.NewRNG(42)
	out := make([]Entry, n)
	for i := range out {
		w := 1 + 9*rng.Float64()
		out[i] = Entry{Key: rng.Uint64(), Weight: w, Value: w, Priority: rng.Open01() / w}
	}
	return out
}

// BenchmarkAdd measures keeper-backed ingest. shape=uniform is the steady
// state (almost every item rejected at the threshold); shape=descending is
// the accept-heavy worst case that the amortized O(1) design targets
// (every item beats the threshold, which cost an O(log k) sift per item in
// the heap implementation).
func BenchmarkAdd(b *testing.B) {
	entries := benchEntries(1 << 16)
	b.Run("shape=uniform", func(b *testing.B) {
		sk := New(256, 42)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := entries[i&(1<<16-1)]
			sk.AddWithPriority(e)
		}
	})
	b.Run("shape=descending", func(b *testing.B) {
		sk := New(256, 42)
		b.ReportAllocs()
		p := 1e18
		for i := 0; i < b.N; i++ {
			e := entries[i&(1<<16-1)]
			p *= 0.999999
			e.Priority = p
			sk.AddWithPriority(e)
		}
	})
}

// BenchmarkAddHeapBaseline is the identical workload on the pre-keeper
// heap implementation (compare with BenchmarkAdd via benchstat).
func BenchmarkAddHeapBaseline(b *testing.B) {
	entries := benchEntries(1 << 16)
	b.Run("shape=uniform", func(b *testing.B) {
		sk := newHeapSketch(256, 42)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := entries[i&(1<<16-1)]
			sk.AddWithPriority(e)
		}
	})
	b.Run("shape=descending", func(b *testing.B) {
		sk := newHeapSketch(256, 42)
		b.ReportAllocs()
		p := 1e18
		for i := 0; i < b.N; i++ {
			e := entries[i&(1<<16-1)]
			p *= 0.999999
			e.Priority = p
			sk.AddWithPriority(e)
		}
	})
}

func BenchmarkAppendSample(b *testing.B) {
	sk := New(256, 42)
	for _, e := range benchEntries(1 << 16) {
		sk.AddWithPriority(e)
	}
	buf := make([]Entry, 0, sk.K())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sk.AppendSample(buf[:0])
	}
	if len(buf) == 0 {
		b.Fatal("empty sample")
	}
}

func BenchmarkSubsetSumInto(b *testing.B) {
	sk := New(256, 42)
	for _, e := range benchEntries(1 << 16) {
		sk.AddWithPriority(e)
	}
	var sc scratchAlias
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.sum, sc.varEst = sk.SubsetSumInto(nil, &sc.sc)
	}
	if sc.sum <= 0 {
		b.Fatal("bad estimate")
	}
}
