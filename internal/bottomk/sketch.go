// Package bottomk implements bottom-k sketches and priority sampling
// (Duffield, Lund & Thorup): a fixed-size-k weighted sample without
// replacement obtained by keeping the k items with the smallest priorities
// R_i = U_i / w_i. The threshold — the (k+1)-th smallest priority seen — is
// the canonical substitutable adaptive threshold (§2.5.1 of the paper), so
// plain Horvitz-Thompson estimators apply unchanged.
package bottomk

import (
	"errors"
	"math"

	"ats/internal/core"
	"ats/internal/estimator"
	"ats/internal/keeper"
)

// Entry is one retained item of a bottom-k sketch.
type Entry struct {
	Key      uint64
	Weight   float64
	Value    float64
	Priority float64
}

// Sketch is a bottom-k sketch over a weighted stream. Ingest is amortized
// O(1) per item: the k+1 smallest-priority entries are maintained by a
// scratch-buffer keeper (see internal/keeper) instead of a heap, so an
// accepted item costs one append and a rejected one a single comparison.
// Query methods settle the keeper first; they may mutate the internal
// representation but never the logical state, so a Sketch shared across
// goroutines needs external synchronization for queries as well as Adds.
// The zero value is not usable; construct with New.
type Sketch struct {
	k    int
	seed uint64
	kp   keeper.Keeper[Entry]
	n    int // stream length observed
}

// New returns an empty bottom-k sketch. Priorities are derived from a
// seeded hash of the item key divided by the weight, so sketches sharing a
// seed are coordinated (mergeable). k must be positive.
func New(k int, seed uint64) *Sketch {
	if k <= 0 {
		panic("bottomk: k must be positive")
	}
	return &Sketch{k: k, seed: seed, kp: keeper.Make[Entry](k)}
}

// K returns the configured sample size.
func (s *Sketch) K() int { return s.k }

// N returns the number of stream items offered so far.
func (s *Sketch) N() int { return s.n }

// Add offers an item with the given weight (> 0) and value. Every
// occurrence of the same key receives the same priority, so Add is
// idempotent with respect to duplicates for distinct-style use; for
// aggregate values, pre-aggregate per key before adding.
func (s *Sketch) Add(key uint64, weight, value float64) {
	if weight <= 0 {
		return
	}
	u := hashU01(key, s.seed)
	s.AddWithPriority(Entry{Key: key, Weight: weight, Value: value, Priority: u / weight})
}

// AddWithPriority offers an item with an explicitly supplied priority. This
// is the entry point for callers managing their own randomness (e.g. tests
// or the stratified sampler).
func (s *Sketch) AddWithPriority(e Entry) {
	s.n++
	s.kp.Add(e.Priority, e)
}

// Threshold returns the adaptive threshold: the (k+1)-th smallest priority
// observed, or +inf while fewer than k+1 items have been seen. Items with
// priority strictly below the threshold form the sample.
func (s *Sketch) Threshold() float64 {
	return s.kp.Threshold()
}

// Sample returns the current sample: the (at most k) retained entries with
// priority strictly below the threshold. The returned slice is freshly
// allocated and unordered; use AppendSample to reuse a buffer instead.
func (s *Sketch) Sample() []Entry {
	return s.AppendSample(make([]Entry, 0, sampleCap(s.k, s.kp.Len())))
}

// AppendSample appends the current sample to dst and returns the extended
// slice. With a reused dst (e.g. dst[:0] of the previous call) it performs
// no allocation once dst has grown to the sample size.
func (s *Sketch) AppendSample(dst []Entry) []Entry {
	t := s.kp.Threshold()
	for _, e := range s.kp.Items() {
		if e.Priority < t {
			dst = append(dst, e)
		}
	}
	return dst
}

// SampleSize settles and returns the number of entries in the current
// sample (the retained entries strictly below the threshold), without
// materializing it.
func (s *Sketch) SampleSize() int {
	t := s.kp.Threshold()
	n := 0
	for _, p := range s.kp.Priorities() {
		if p < t {
			n++
		}
	}
	return n
}

// Settle compacts the keeper to its canonical settled layout (at most
// k+1 entries, the threshold entry at index k). The store's query
// planner settles at every plan boundary so that a sketch rebuilt from
// its serialized form continues bit-identically to the original: float
// accumulation in SubsetSum follows the keeper's internal entry order,
// which only round-trips through the codec from a settled state.
func (s *Sketch) Settle() { s.kp.Settle() }

// Reset empties the sketch for reuse as a merge target, keeping the
// keeper's allocated buffers. A reset sketch behaves exactly like a
// fresh New(k, seed) sketch.
func (s *Sketch) Reset() {
	s.kp.Reset()
	s.n = 0
}

// InclusionProb returns the pseudo-inclusion probability min(1, w*T) of a
// sampled entry under the current threshold.
func (s *Sketch) InclusionProb(e Entry) float64 {
	return core.InclusionProb(e.Weight, s.Threshold())
}

// SubsetSum returns the Horvitz-Thompson estimate of Σ value over all
// stream items whose key satisfies pred (pass nil for the total), together
// with the unbiased variance estimate of §2.6.1.
func (s *Sketch) SubsetSum(pred func(Entry) bool) (sum, varianceEstimate float64) {
	var sc estimator.Scratch
	return s.SubsetSumInto(pred, &sc)
}

// SubsetSumInto is SubsetSum with a caller-supplied reusable scratch
// buffer: steady-state estimation performs no allocation.
func (s *Sketch) SubsetSumInto(pred func(Entry) bool, sc *estimator.Scratch) (sum, varianceEstimate float64) {
	t := s.kp.Threshold()
	if math.IsInf(t, 1) {
		// Fewer than k+1 items seen: the "sample" is exact.
		for _, e := range s.kp.Items() {
			if pred == nil || pred(e) {
				sum += e.Value
			}
		}
		return sum, 0
	}
	sc.Reset()
	for _, e := range s.kp.Items() {
		if e.Priority >= t {
			continue
		}
		if pred != nil && !pred(e) {
			continue
		}
		sc.Append(estimator.Sampled{
			Value: e.Value,
			P:     core.InclusionProb(e.Weight, t),
		})
	}
	return sc.SubsetSum()
}

// Merge combines another coordinated sketch (same seed, same k) into s.
// The merged sketch is identical to the sketch of the concatenated streams
// because bottom-k only depends on the multiset of (key, priority) pairs.
// Merging a sketch into itself is rejected: it would iterate the retained
// entries while inserting into the same backing buffer.
func (s *Sketch) Merge(o *Sketch) error {
	if o == s {
		return errors.New("bottomk: cannot merge a sketch into itself")
	}
	if o.k != s.k {
		return errors.New("bottomk: cannot merge sketches with different k")
	}
	if o.seed != s.seed {
		return errors.New("bottomk: cannot merge sketches with different seeds")
	}
	for _, e := range o.kp.Items() {
		s.kp.Add(e.Priority, e)
	}
	s.n += o.n
	return nil
}

// sampleCap bounds result-slice pre-allocation by the number of stored
// entries: k may legitimately dwarf the stream (or come from decoded
// data), and allocating k capacity for a near-empty sketch is wasteful at
// best and an allocation bomb at worst.
func sampleCap(k, stored int) int {
	if stored < k {
		return stored
	}
	return k
}
