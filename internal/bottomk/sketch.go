// Package bottomk implements bottom-k sketches and priority sampling
// (Duffield, Lund & Thorup): a fixed-size-k weighted sample without
// replacement obtained by keeping the k items with the smallest priorities
// R_i = U_i / w_i. The threshold — the (k+1)-th smallest priority seen — is
// the canonical substitutable adaptive threshold (§2.5.1 of the paper), so
// plain Horvitz-Thompson estimators apply unchanged.
package bottomk

import (
	"errors"
	"math"

	"ats/internal/core"
	"ats/internal/estimator"
)

// Entry is one retained item of a bottom-k sketch.
type Entry struct {
	Key      uint64
	Weight   float64
	Value    float64
	Priority float64
}

// Sketch is a bottom-k sketch over a weighted stream. The zero value is not
// usable; construct with New.
type Sketch struct {
	k    int
	seed uint64
	// heap holds up to k+1 entries ordered as a max-heap on Priority; when
	// full, the root is the (k+1)-th smallest priority seen so far, i.e.
	// the threshold, and the remaining k entries are the sample.
	heap []Entry
	n    int // stream length observed
}

// New returns an empty bottom-k sketch. Priorities are derived from a
// seeded hash of the item key divided by the weight, so sketches sharing a
// seed are coordinated (mergeable). k must be positive.
func New(k int, seed uint64) *Sketch {
	if k <= 0 {
		panic("bottomk: k must be positive")
	}
	return &Sketch{k: k, seed: seed, heap: make([]Entry, 0, k+2)}
}

// K returns the configured sample size.
func (s *Sketch) K() int { return s.k }

// N returns the number of stream items offered so far.
func (s *Sketch) N() int { return s.n }

// Add offers an item with the given weight (> 0) and value. Every
// occurrence of the same key receives the same priority, so Add is
// idempotent with respect to duplicates for distinct-style use; for
// aggregate values, pre-aggregate per key before adding.
func (s *Sketch) Add(key uint64, weight, value float64) {
	if weight <= 0 {
		return
	}
	u := hashU01(key, s.seed)
	s.AddWithPriority(Entry{Key: key, Weight: weight, Value: value, Priority: u / weight})
}

// AddWithPriority offers an item with an explicitly supplied priority. This
// is the entry point for callers managing their own randomness (e.g. tests
// or the stratified sampler).
func (s *Sketch) AddWithPriority(e Entry) {
	s.n++
	if len(s.heap) == s.k+1 && e.Priority >= s.heap[0].Priority {
		return // beyond the current threshold; can never enter the sample
	}
	s.heap = append(s.heap, e)
	siftUp(s.heap, len(s.heap)-1)
	if len(s.heap) > s.k+1 {
		popRoot(&s.heap)
	}
}

// Threshold returns the adaptive threshold: the (k+1)-th smallest priority
// observed, or +inf while fewer than k+1 items have been seen. Items with
// priority strictly below the threshold form the sample.
func (s *Sketch) Threshold() float64 {
	if len(s.heap) < s.k+1 {
		return math.Inf(1)
	}
	return s.heap[0].Priority
}

// Sample returns the current sample: the (at most k) retained entries with
// priority strictly below the threshold. The returned slice is freshly
// allocated and unordered.
func (s *Sketch) Sample() []Entry {
	t := s.Threshold()
	out := make([]Entry, 0, sampleCap(s.k, len(s.heap)))
	for _, e := range s.heap {
		if e.Priority < t {
			out = append(out, e)
		}
	}
	return out
}

// InclusionProb returns the pseudo-inclusion probability min(1, w*T) of a
// sampled entry under the current threshold.
func (s *Sketch) InclusionProb(e Entry) float64 {
	return core.InclusionProb(e.Weight, s.Threshold())
}

// SubsetSum returns the Horvitz-Thompson estimate of Σ value over all
// stream items whose key satisfies pred (pass nil for the total), together
// with the unbiased variance estimate of §2.6.1.
func (s *Sketch) SubsetSum(pred func(Entry) bool) (sum, varianceEstimate float64) {
	t := s.Threshold()
	if math.IsInf(t, 1) {
		// Fewer than k+1 items seen: the "sample" is exact.
		for _, e := range s.heap {
			if pred == nil || pred(e) {
				sum += e.Value
			}
		}
		return sum, 0
	}
	sampled := make([]estimator.Sampled, 0, sampleCap(s.k, len(s.heap)))
	for _, e := range s.heap {
		if e.Priority >= t {
			continue
		}
		if pred != nil && !pred(e) {
			continue
		}
		sampled = append(sampled, estimator.Sampled{
			Value: e.Value,
			P:     core.InclusionProb(e.Weight, t),
		})
	}
	return estimator.SubsetSum(sampled), estimator.HTVarianceEstimate(sampled)
}

// Merge combines another coordinated sketch (same seed, same k) into s.
// The merged sketch is identical to the sketch of the concatenated streams
// because bottom-k only depends on the multiset of (key, priority) pairs.
func (s *Sketch) Merge(o *Sketch) error {
	if o.k != s.k {
		return errors.New("bottomk: cannot merge sketches with different k")
	}
	if o.seed != s.seed {
		return errors.New("bottomk: cannot merge sketches with different seeds")
	}
	for _, e := range o.heap {
		s.AddWithPriority(e)
	}
	s.n += o.n - len(o.heap) // AddWithPriority already counted the entries
	return nil
}

// sampleCap bounds result-slice pre-allocation by the number of stored
// entries: k may legitimately dwarf the stream (or come from decoded
// data), and allocating k capacity for a near-empty sketch is wasteful at
// best and an allocation bomb at worst.
func sampleCap(k, stored int) int {
	if stored < k {
		return stored
	}
	return k
}

// --- max-heap on Priority ---

func siftUp(h []Entry, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Priority >= h[i].Priority {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func popRoot(h *[]Entry) Entry {
	old := *h
	root := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	siftDown(*h, 0)
	return root
}

func siftDown(h []Entry, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l].Priority > h[largest].Priority {
			largest = l
		}
		if r < n && h[r].Priority > h[largest].Priority {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
