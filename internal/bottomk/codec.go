package bottomk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Serialization format (little-endian):
//
//	magic   uint32  "ATSb"
//	version uint8   1
//	k       uint32
//	seed    uint64
//	n       uint64
//	count   uint32  number of retained entries
//	entries count × (key uint64, weight float64, value float64, priority float64)
//
// The format captures the sketch's full state: unmarshaling yields a sketch
// indistinguishable from the original (same samples, thresholds, merges).

const (
	codecMagic   = 0x41545362 // "ATSb"
	codecVersion = 1
)

var (
	// ErrCorrupt reports malformed or truncated serialized data.
	ErrCorrupt = errors.New("bottomk: corrupt serialized sketch")
	// ErrVersion reports an unsupported serialization version.
	ErrVersion = errors.New("bottomk: unsupported serialization version")
)

// MarshalBinary serializes the sketch. It settles the keeper first, so
// the entry count is always at most k+1.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	entries := s.kp.Items()
	buf := make([]byte, 0, 4+1+4+8+8+4+len(entries)*32)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.k))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint64(buf, e.Key)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Weight))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Value))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Priority))
	}
	return buf, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary,
// overwriting the receiver.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	const header = 4 + 1 + 4 + 8 + 8 + 4
	if len(data) < header {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != codecMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != codecVersion {
		return fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	k := int(binary.LittleEndian.Uint32(data[5:]))
	if k <= 0 {
		return fmt.Errorf("%w: non-positive k", ErrCorrupt)
	}
	seed := binary.LittleEndian.Uint64(data[9:])
	n := binary.LittleEndian.Uint64(data[17:])
	count := int(binary.LittleEndian.Uint32(data[25:]))
	if count < 0 || count > k+1 {
		return fmt.Errorf("%w: %d entries for k=%d", ErrCorrupt, count, k)
	}
	if len(data) != header+count*32 {
		return fmt.Errorf("%w: body is %d bytes, want %d", ErrCorrupt, len(data)-header, count*32)
	}
	off := header
	// Rebuild by adopting exact-size buffers: count is already validated
	// against both k and the bytes actually present, so this allocates at
	// most what the body holds — a crafted header claiming k in the
	// billions with a tiny body cannot force a huge allocation. Adopting
	// is equivalent to re-adding every entry (at most k+1 entries fit, so
	// a sequential rebuild never compacts) while skipping per-entry calls
	// and growth reallocations — the store's plan cache decodes on every
	// warm query, so this is a hot path.
	restored := New(k, seed)
	pri := make([]float64, count)
	entries := make([]Entry, count)
	for i := 0; i < count; i++ {
		e := Entry{
			Key:      binary.LittleEndian.Uint64(data[off:]),
			Weight:   math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:])),
			Value:    math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:])),
			Priority: math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:])),
		}
		if !(e.Priority >= 0) || math.IsNaN(e.Weight) {
			return fmt.Errorf("%w: invalid entry %d", ErrCorrupt, i)
		}
		off += 32
		pri[i], entries[i] = e.Priority, e
	}
	restored.kp.Adopt(pri, entries)
	restored.n = int(n)
	// MarshalBinary serialized a settled keeper (threshold entry at index
	// k); adopt that layout verbatim so the restored sketch is
	// bit-identical to the serialized one — a fresh Settle would re-scan
	// for the maximum and could reorder entries tied at the threshold.
	restored.kp.AdoptSettled()
	*s = *restored
	return nil
}

// UnmarshalBinaryReuse is UnmarshalBinary refilling the receiver's
// existing keeper buffers instead of allocating fresh ones, for decode
// paths that run per query (the store's cached-plan decode). The decoded
// state is bit-identical to UnmarshalBinary's — the keeper's compaction
// behavior is capacity-independent — and when the receiver's k matches
// the serialized k the call performs no allocation. On a k mismatch it
// falls back to UnmarshalBinary; on corrupt input the receiver is left
// reset and must be discarded.
func (s *Sketch) UnmarshalBinaryReuse(data []byte) error {
	const header = 4 + 1 + 4 + 8 + 8 + 4
	if len(data) < header {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != codecMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != codecVersion {
		return fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	k := int(binary.LittleEndian.Uint32(data[5:]))
	if k != s.k {
		return s.UnmarshalBinary(data)
	}
	seed := binary.LittleEndian.Uint64(data[9:])
	n := binary.LittleEndian.Uint64(data[17:])
	count := int(binary.LittleEndian.Uint32(data[25:]))
	if count < 0 || count > k+1 {
		return fmt.Errorf("%w: %d entries for k=%d", ErrCorrupt, count, k)
	}
	if len(data) != header+count*32 {
		return fmt.Errorf("%w: body is %d bytes, want %d", ErrCorrupt, len(data)-header, count*32)
	}
	pri, entries := s.kp.Buffers()
	off := header
	for i := 0; i < count; i++ {
		e := Entry{
			Key:      binary.LittleEndian.Uint64(data[off:]),
			Weight:   math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:])),
			Value:    math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:])),
			Priority: math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:])),
		}
		if !(e.Priority >= 0) || math.IsNaN(e.Weight) {
			// Buffers already emptied the keeper; finish the reset so a
			// discarded receiver holds no partial state.
			s.kp.Reset()
			s.n = 0
			return fmt.Errorf("%w: invalid entry %d", ErrCorrupt, i)
		}
		off += 32
		pri = append(pri, e.Priority)
		entries = append(entries, e)
	}
	s.kp.Adopt(pri, entries)
	s.kp.AdoptSettled()
	s.seed = seed
	s.n = int(n)
	return nil
}
