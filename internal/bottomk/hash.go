package bottomk

import "ats/internal/stream"

// hashU01 assigns the shared uniform for a key. Centralizing it here keeps
// every sketch in the repository coordinated on the same (key, seed) hash.
func hashU01(key, seed uint64) float64 { return stream.HashU01(key, seed) }
