package bottomk

import (
	"errors"
	"testing"
	"testing/quick"

	"ats/internal/stream"
)

func TestCodecRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := stream.NewRNG(seed)
		orig := New(16, seed)
		m := int(n % 500)
		for i := 0; i < m; i++ {
			orig.Add(rng.Uint64(), rng.Open01()*5, rng.Float64()*10)
		}
		data, err := orig.MarshalBinary()
		if err != nil {
			return false
		}
		var got Sketch
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		if got.K() != orig.K() || got.N() != orig.N() || got.Threshold() != orig.Threshold() {
			return false
		}
		sa, sb := orig.Sample(), got.Sample()
		if len(sa) != len(sb) {
			return false
		}
		keys := make(map[uint64]float64, len(sa))
		for _, e := range sa {
			keys[e.Key] = e.Priority
		}
		for _, e := range sb {
			if keys[e.Key] != e.Priority {
				return false
			}
		}
		// The restored sketch must keep working (same behavior on new
		// items).
		k1 := rng.Uint64()
		orig.Add(k1, 1, 1)
		got.Add(k1, 1, 1)
		return got.Threshold() == orig.Threshold()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	orig := New(8, 1)
	for i := 0; i < 100; i++ {
		orig.Add(uint64(i), 1, 1)
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var s Sketch
	if err := s.UnmarshalBinary(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil input: %v, want ErrCorrupt", err)
	}
	if err := s.UnmarshalBinary(data[:10]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: %v, want ErrCorrupt", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if err := s.UnmarshalBinary(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v, want ErrCorrupt", err)
	}
	bad = append([]byte(nil), data...)
	bad[4] = 99
	if err := s.UnmarshalBinary(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v, want ErrVersion", err)
	}
	bad = append([]byte(nil), data...)
	bad = bad[:len(bad)-8] // truncate the body
	if err := s.UnmarshalBinary(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short body: %v, want ErrCorrupt", err)
	}
}

func TestCodecMergeAfterRestore(t *testing.T) {
	a := New(8, 7)
	b := New(8, 7)
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			a.Add(uint64(i), 1, 1)
		} else {
			b.Add(uint64(i), 1, 1)
		}
	}
	data, _ := a.MarshalBinary()
	var a2 Sketch
	if err := a2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := a2.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a2.Threshold() != a.Threshold() {
		t.Error("merge after restore diverged")
	}
}
