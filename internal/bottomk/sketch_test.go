package bottomk

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k <= 0")
		}
	}()
	New(0, 1)
}

func TestThresholdIsKPlusOneSmallest(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		k := 5
		sk := New(k, seed)
		n := 40
		prs := make([]float64, n)
		for i := range prs {
			prs[i] = rng.Open01()
			sk.AddWithPriority(Entry{Key: uint64(i), Weight: 1, Value: 1, Priority: prs[i]})
		}
		sorted := append([]float64(nil), prs...)
		sort.Float64s(sorted)
		if sk.Threshold() != sorted[k] {
			return false
		}
		// Sample = items strictly below the threshold.
		sample := sk.Sample()
		if len(sample) != k {
			return false
		}
		for _, e := range sample {
			if e.Priority >= sk.Threshold() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestThresholdInfWhileSmall(t *testing.T) {
	sk := New(10, 3)
	for i := 0; i < 10; i++ {
		sk.Add(uint64(i), 1, 1)
		if !math.IsInf(sk.Threshold(), 1) {
			t.Fatalf("threshold must be +inf with %d <= k items", i+1)
		}
	}
	sk.Add(11, 1, 1)
	if math.IsInf(sk.Threshold(), 1) {
		t.Fatal("threshold must be finite with k+1 items")
	}
}

func TestExactSumWhileSmall(t *testing.T) {
	sk := New(100, 4)
	want := 0.0
	for i := 0; i < 50; i++ {
		v := float64(i)
		sk.Add(uint64(i), 1, v)
		want += v
	}
	got, varEst := sk.SubsetSum(nil)
	if got != want {
		t.Errorf("SubsetSum = %v, want exact %v", got, want)
	}
	if varEst != 0 {
		t.Errorf("variance of an exact sum must be 0, got %v", varEst)
	}
}

func TestZeroWeightIgnored(t *testing.T) {
	sk := New(5, 9)
	sk.Add(1, 0, 100)
	sk.Add(2, -1, 100)
	if len(sk.Sample()) != 0 {
		t.Error("non-positive weights must be ignored")
	}
}

func TestDuplicateKeysGetSamePriority(t *testing.T) {
	sk := New(5, 12)
	sk.Add(42, 2, 1)
	s1 := sk.Sample()
	sk.Add(42, 2, 1)
	s2 := sk.Sample()
	if len(s1) != 1 || len(s2) != 2 {
		t.Fatalf("unexpected sample sizes %d, %d", len(s1), len(s2))
	}
	if s2[0].Priority != s2[1].Priority {
		t.Error("the same key must always hash to the same priority")
	}
}

// TestSubsetSumUnbiased is the §2.5.1 validation: the plain HT estimator
// with the adaptive bottom-k threshold is unbiased, and (§2.6.1) its
// variance estimate is unbiased too.
func TestSubsetSumUnbiased(t *testing.T) {
	items := stream.ParetoWeights(300, 1.5, 99)
	truth := 0.0
	for _, it := range items {
		if it.Key%3 == 0 {
			truth += it.Value
		}
	}
	pred := func(e Entry) bool { return e.Key%3 == 0 }
	trials := 4000
	var est, varEst estimator.Running
	for trial := 0; trial < trials; trial++ {
		sk := New(40, uint64(trial)+1000)
		for _, it := range items {
			sk.Add(it.Key, it.Weight, it.Value)
		}
		s, v := sk.SubsetSum(pred)
		est.Add(s)
		varEst.Add(v)
	}
	if z := (est.Mean() - truth) / est.SE(); math.Abs(z) > 4.5 {
		t.Errorf("biased subset sum: mean %v truth %v z=%v", est.Mean(), truth, z)
	}
	if ratio := varEst.Mean() / est.Variance(); ratio < 0.85 || ratio > 1.15 {
		t.Errorf("variance estimate ratio %v, want ≈ 1", ratio)
	}
}

func TestMergeEqualsConcatenation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		k := 8
		a := New(k, 7)
		b := New(k, 7)
		whole := New(k, 7)
		n := 60
		for i := 0; i < n; i++ {
			key := rng.Uint64()
			w := rng.Open01() * 3
			if i%2 == 0 {
				a.Add(key, w, 1)
			} else {
				b.Add(key, w, 1)
			}
			whole.Add(key, w, 1)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		if a.Threshold() != whole.Threshold() {
			return false
		}
		sa, sw := a.Sample(), whole.Sample()
		if len(sa) != len(sw) {
			return false
		}
		keys := make(map[uint64]bool)
		for _, e := range sa {
			keys[e.Key] = true
		}
		for _, e := range sw {
			if !keys[e.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeRejectsIncompatible(t *testing.T) {
	a := New(5, 1)
	if err := a.Merge(New(6, 1)); err == nil {
		t.Error("merging different k must fail")
	}
	if err := a.Merge(New(5, 2)); err == nil {
		t.Error("merging different seeds must fail")
	}
}

func TestMergeCountsN(t *testing.T) {
	a := New(3, 1)
	b := New(3, 1)
	for i := 0; i < 10; i++ {
		a.Add(uint64(i), 1, 1)
		b.Add(uint64(100+i), 1, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 20 {
		t.Errorf("merged N = %d, want 20", a.N())
	}
}

func TestInclusionProbOfEntry(t *testing.T) {
	sk := New(2, 5)
	for i := 0; i < 10; i++ {
		sk.Add(uint64(i), 1, 1)
	}
	th := sk.Threshold()
	for _, e := range sk.Sample() {
		want := th // weight 1, th < 1
		if th > 1 {
			want = 1
		}
		if got := sk.InclusionProb(e); got != want {
			t.Errorf("InclusionProb = %v, want %v", got, want)
		}
	}
}

func TestHighWeightItemsAlwaysIncluded(t *testing.T) {
	// An item with enormous weight has priority ≈ 0 and should essentially
	// always be in the sample with inclusion probability ≈ 1.
	sk := New(10, 21)
	sk.Add(999, 1e9, 5)
	for i := 0; i < 1000; i++ {
		sk.Add(uint64(i), 1, 1)
	}
	found := false
	for _, e := range sk.Sample() {
		if e.Key == 999 {
			found = true
			if p := sk.InclusionProb(e); p != 1 {
				t.Errorf("giant weight inclusion prob = %v, want 1", p)
			}
		}
	}
	if !found {
		t.Error("giant-weight item missing from the sample")
	}
}

// TestPPSProperty checks probability-proportional-to-size behavior: an
// item with twice the weight is included roughly twice as often (while
// inclusion probabilities are small).
func TestPPSProperty(t *testing.T) {
	n := 400
	trials := 3000
	hits := map[uint64]int{1: 0, 2: 0}
	for trial := 0; trial < trials; trial++ {
		sk := New(20, uint64(trial)*7+1)
		sk.Add(1, 1.0, 1) // weight 1
		sk.Add(2, 2.0, 1) // weight 2
		for i := 10; i < n; i++ {
			sk.Add(uint64(i), 1, 1)
		}
		for _, e := range sk.Sample() {
			if e.Key == 1 || e.Key == 2 {
				hits[e.Key]++
			}
		}
	}
	r1 := float64(hits[1]) / float64(trials)
	r2 := float64(hits[2]) / float64(trials)
	if r1 <= 0 {
		t.Fatal("weight-1 item never sampled")
	}
	ratio := r2 / r1
	if ratio < 1.6 || ratio > 2.5 {
		t.Errorf("PPS inclusion ratio = %v, want ≈ 2 (r1=%v r2=%v)", ratio, r1, r2)
	}
}
