package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"ats/internal/bottomk"
	"ats/internal/decay"
	"ats/internal/distinct"
	"ats/internal/topk"
	"ats/internal/varopt"
	"ats/internal/window"
)

func testSketches(t testing.TB) map[string]any {
	t.Helper()
	bk := bottomk.New(16, 3)
	dk := distinct.NewSketch(32, 4)
	wk := window.New(8, 1.0, 5)
	tk := topk.NewUnbiasedSpaceSaving(12, 6)
	vk := varopt.New(16, 7)
	yk := decay.New(16, 0.5, 8)
	for i := 0; i < 500; i++ {
		bk.Add(uint64(i), 1+float64(i%5), float64(i))
		dk.Add(uint64(i % 120))
		wk.Add(uint64(i), float64(i)*0.01)
		tk.Add(uint64(i % 40))
		vk.Add(uint64(i), 1+float64(i%9), 1)
		yk.Add(uint64(i), 1+float64(i%3), 1, float64(i)*0.01)
	}
	return map[string]any{
		NameBottomK: bk, NameDistinct: dk, NameWindow: wk,
		NameTopK: tk, NameVarOpt: vk, NameDecay: yk,
	}
}

func TestEnvelopeRoundTripAllBuiltins(t *testing.T) {
	for name, sk := range testSketches(t) {
		data, err := Marshal(name, sk)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		gotName, v, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if gotName != name {
			t.Fatalf("envelope name %q != %q", gotName, name)
		}
		// The decoded value must re-encode to the identical envelope.
		again, err := Marshal(name, v)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("%s: envelope not stable under round trip", name)
		}
	}
}

func TestEncodeInfersCodec(t *testing.T) {
	for want, sk := range testSketches(t) {
		data, err := Encode(sk)
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		got, _, err := Unmarshal(data)
		if err != nil || got != want {
			t.Fatalf("inferred %q (err %v), want %q", got, err, want)
		}
	}
	if _, err := Encode(42); err == nil {
		t.Fatal("Encode accepted an unowned type")
	}
}

func TestStreamedEnvelopes(t *testing.T) {
	sketches := testSketches(t)
	var buf bytes.Buffer
	order := []string{NameWindow, NameBottomK, NameDistinct, NameBottomK}
	for _, name := range order {
		if err := Write(&buf, name, sketches[name]); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range order {
		name, v, err := Read(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if name != want || v == nil {
			t.Fatalf("record %d: got %q, want %q", i, name, want)
		}
	}
	if _, _, err := Read(r); err != io.EOF {
		t.Fatalf("want clean io.EOF after last record, got %v", err)
	}
}

func TestUnmarshalNextIteratesConcatenation(t *testing.T) {
	sketches := testSketches(t)
	a, _ := Marshal(NameDistinct, sketches[NameDistinct])
	b, _ := Marshal(NameWindow, sketches[NameWindow])
	data := append(append([]byte(nil), a...), b...)

	name, _, rest, err := UnmarshalNext(data)
	if err != nil || name != NameDistinct {
		t.Fatalf("first record: %q, %v", name, err)
	}
	name, _, rest, err = UnmarshalNext(rest)
	if err != nil || name != NameWindow || len(rest) != 0 {
		t.Fatalf("second record: %q, rest=%d, %v", name, len(rest), err)
	}
	// Unmarshal (exact-fit variant) must reject the concatenation.
	if _, _, err := Unmarshal(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Unmarshal accepted trailing bytes: %v", err)
	}
}

func TestRejectsUnknownAndCorrupt(t *testing.T) {
	valid, err := Marshal(NameBottomK, testSketches(t)[NameBottomK])
	if err != nil {
		t.Fatal(err)
	}
	unknown := append([]byte(nil), valid...)
	unknown[6] = 'X' // first name byte
	if _, _, err := Unmarshal(unknown); !errors.Is(err, ErrUnknown) {
		t.Fatalf("want ErrUnknown, got %v", err)
	}
	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xff
	if _, _, err := Unmarshal(badMagic); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 99
	if _, _, err := Unmarshal(badVersion); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
	if _, _, err := Unmarshal(valid[:len(valid)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on truncation, got %v", err)
	}
}

// TestReadBoundsPayloadAllocation crafts a header claiming a payload just
// above MaxPayload backed by no bytes: Read must reject it from the
// header alone instead of allocating the claimed size.
func TestReadBoundsPayloadAllocation(t *testing.T) {
	var buf bytes.Buffer
	head := binary.LittleEndian.AppendUint32(nil, envMagic)
	head = append(head, envVersion, 1, 'x')
	head = binary.LittleEndian.AppendUint32(head, MaxPayload+1)
	buf.Write(head)
	if _, _, err := Read(&buf); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	if _, _, err := Unmarshal(head); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Unmarshal: want ErrTooLarge, got %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, c Codec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(c)
	}
	ok := Codec{
		Name:      "t",
		Marshal:   func(any) ([]byte, error) { return nil, nil },
		Unmarshal: func([]byte) (any, error) { return nil, nil },
		Owns:      func(any) bool { return false },
	}
	bad := ok
	bad.Name = ""
	mustPanic("empty name", bad)
	bad = ok
	bad.Marshal = nil
	mustPanic("nil marshal", bad)
	dup := ok
	dup.Name = NameBottomK
	mustPanic("duplicate", dup)
}
