// Package codec is the universal serialization registry of the library:
// a versioned, self-describing binary envelope that wraps the per-sketch
// binary codecs — bottom-k, distinct, sliding-window, top-k (unbiased
// space-saving), varopt and time-decayed — behind one decode entry
// point.
//
// # Role in the system
//
// Sketches here summarize streams that cannot be replayed, so their
// serialized form IS the durable state of the serving layer (the store's
// Snapshot/Restore, the atsd daemon's restart path). Every codec
// captures a sketch's full state — including RNG positions where the
// sketch draws randomness — so a restored sketch is indistinguishable
// from the original: same samples, same thresholds, same future
// behavior under identical input, which is what makes snapshot/restart
// cycles bit-identical end to end.
//
// # Envelope format
//
// Each concrete codec serializes one sketch type and is registered under
// a short stable name. The envelope layout (little-endian) is
//
//	magic      uint32  "ATSE"
//	version    uint8   1
//	nameLen    uint8
//	name       nameLen bytes (ASCII)
//	payloadLen uint32  (capped by MaxPayload — decode-bomb guard)
//	payload    payloadLen bytes (the concrete codec's own format)
//
// so a reader can dispatch on the embedded name without out-of-band
// schema knowledge — the property the store's whole-keyspace
// Snapshot/Restore relies on: a snapshot stream is a plain concatenation
// of envelopes plus store-level framing, and new sketch types become
// restorable by registering a codec, with no store changes.
//
// Per-type format versioning lives inside the payload (each sketch codec
// carries its own magic and version); the envelope version covers only
// the framing. docs/ARCHITECTURE.md specifies every payload format.
//
// # Concurrency and ownership contract
//
// The registry is written once at init time (Register panics on
// duplicates) and read-only afterwards; all lookup and encode/decode
// entry points are safe for concurrent use. Codecs never retain the
// values they marshal, and Unmarshal returns a freshly allocated sketch
// owned by the caller. Marshal must not mutate the sketch's logical
// state, but may settle its internal representation (e.g. compacting a
// keeper buffer), so callers sharing a sketch across goroutines must
// serialize Marshal with writes exactly like any query.
package codec
