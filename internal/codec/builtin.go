package codec

import (
	"fmt"

	"ats/internal/bottomk"
	"ats/internal/decay"
	"ats/internal/distinct"
	"ats/internal/groupby"
	"ats/internal/stratified"
	"ats/internal/topk"
	"ats/internal/varopt"
	"ats/internal/window"
)

// Stable registry names of the built-in sketch codecs. They are embedded
// in serialized envelopes (and therefore in snapshot files on disk), so
// they must never be renamed.
const (
	NameBottomK  = "bottomk"
	NameDistinct = "distinct"
	NameWindow   = "window"
	// NameTopK serializes the unbiased space-saving top-k sketch.
	NameTopK = "topk"
	// NameVarOpt serializes the VarOpt_k weighted sampler.
	NameVarOpt = "varopt"
	// NameDecay serializes the exponentially time-decayed sampler.
	NameDecay = "decay"
	// NameGroupBy serializes the grouped distinct-count counter.
	NameGroupBy = "groupby"
	// NameStratified serializes the budgeted multi-stratified sampler.
	NameStratified = "stratified"
)

func init() {
	Register(Codec{
		Name: NameBottomK,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*bottomk.Sketch)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameBottomK, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk bottomk.Sketch
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*bottomk.Sketch); return ok },
	})
	Register(Codec{
		Name: NameDistinct,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*distinct.Sketch)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameDistinct, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk distinct.Sketch
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*distinct.Sketch); return ok },
	})
	Register(Codec{
		Name: NameWindow,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*window.Sampler)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameWindow, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk window.Sampler
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*window.Sampler); return ok },
	})
	Register(Codec{
		Name: NameTopK,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*topk.UnbiasedSpaceSaving)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameTopK, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk topk.UnbiasedSpaceSaving
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*topk.UnbiasedSpaceSaving); return ok },
	})
	Register(Codec{
		Name: NameVarOpt,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*varopt.Sketch)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameVarOpt, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk varopt.Sketch
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*varopt.Sketch); return ok },
	})
	Register(Codec{
		Name: NameDecay,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*decay.Sampler)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameDecay, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk decay.Sampler
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*decay.Sampler); return ok },
	})
	Register(Codec{
		Name: NameGroupBy,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*groupby.Counter)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameGroupBy, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk groupby.Counter
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*groupby.Counter); return ok },
	})
	Register(Codec{
		Name: NameStratified,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*stratified.Sampler)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameStratified, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk stratified.Sampler
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*stratified.Sampler); return ok },
	})
}
