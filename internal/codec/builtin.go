package codec

import (
	"fmt"

	"ats/internal/bottomk"
	"ats/internal/distinct"
	"ats/internal/window"
)

// Stable registry names of the built-in sketch codecs. They are embedded
// in serialized envelopes (and therefore in snapshot files on disk), so
// they must never be renamed.
const (
	NameBottomK  = "bottomk"
	NameDistinct = "distinct"
	NameWindow   = "window"
)

func init() {
	Register(Codec{
		Name: NameBottomK,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*bottomk.Sketch)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameBottomK, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk bottomk.Sketch
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*bottomk.Sketch); return ok },
	})
	Register(Codec{
		Name: NameDistinct,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*distinct.Sketch)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameDistinct, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk distinct.Sketch
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*distinct.Sketch); return ok },
	})
	Register(Codec{
		Name: NameWindow,
		Marshal: func(v any) ([]byte, error) {
			sk, ok := v.(*window.Sampler)
			if !ok {
				return nil, fmt.Errorf("codec: %s cannot marshal %T", NameWindow, v)
			}
			return sk.MarshalBinary()
		},
		Unmarshal: func(payload []byte) (any, error) {
			var sk window.Sampler
			if err := sk.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &sk, nil
		},
		Owns: func(v any) bool { _, ok := v.(*window.Sampler); return ok },
	})
}
