package codec

import (
	"bytes"
	"testing"

	"ats/internal/bottomk"
	"ats/internal/decay"
	"ats/internal/distinct"
	"ats/internal/groupby"
	"ats/internal/stratified"
	"ats/internal/topk"
	"ats/internal/varopt"
	"ats/internal/window"
)

// FuzzEnvelopeDecode feeds arbitrary bytes to the envelope decoders.
// Inputs that decode must re-encode to the identical envelope; inputs
// that do not must fail cleanly without panicking, through both the
// in-memory and the streaming entry points.
func FuzzEnvelopeDecode(f *testing.F) {
	bk := bottomk.New(8, 1)
	dk := distinct.NewSketch(8, 2)
	wk := window.New(4, 1.0, 3)
	tk := topk.NewUnbiasedSpaceSaving(6, 4)
	vk := varopt.New(8, 5)
	yk := decay.New(8, 1, 6)
	gk := groupby.New(3, 4, 7)
	sk := stratified.NewSampler(12, 4, 2, 8)
	for i := 0; i < 200; i++ {
		bk.Add(uint64(i), 1, 1)
		dk.Add(uint64(i % 31))
		wk.Add(uint64(i), float64(i)*0.05)
		tk.Add(uint64(i % 17))
		vk.Add(uint64(i), 1+float64(i%4), 1)
		yk.Add(uint64(i), 1, 1, float64(i)*0.05)
		gk.Add(uint64(i%9), uint64(i))
		sk.Add(uint64(i), []uint32{uint32(i % 5), uint32(i % 3)}, 1)
	}
	for name, v := range map[string]any{
		NameBottomK: bk, NameDistinct: dk, NameWindow: wk,
		NameTopK: tk, NameVarOpt: vk, NameDecay: yk,
		NameGroupBy: gk, NameStratified: sk,
	} {
		if data, err := Marshal(name, v); err == nil {
			f.Add(data)
			f.Add(data[:len(data)/2])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("ATSEgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		name, v, err := Unmarshal(data)
		if err != nil {
			// The streaming reader must agree that the input is bad,
			// unless the in-memory check only failed on trailing bytes.
			return
		}
		again, err := Marshal(name, v)
		if err != nil {
			t.Fatalf("decoded value does not re-marshal: %v", err)
		}
		// One decode may settle the sketch's internal order (crafted
		// equal-priority entries can legally reorder), so byte stability
		// is required from the first re-encoding onward.
		name2, v2, err := Unmarshal(again)
		if err != nil || name2 != name {
			t.Fatalf("re-encoded envelope does not decode: %q, %v", name2, err)
		}
		third, err := Marshal(name2, v2)
		if err != nil {
			t.Fatalf("second re-marshal failed: %v", err)
		}
		if !bytes.Equal(again, third) {
			t.Fatalf("envelope not stable after settling: %d bytes -> %d bytes", len(again), len(third))
		}
		// The streaming reader must decode the same envelope.
		rname, rv, err := Read(bytes.NewReader(data))
		if err != nil || rname != name || rv == nil {
			t.Fatalf("Read disagrees with Unmarshal: %q, %v", rname, err)
		}
	})
}
