package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

const (
	envMagic   = 0x41545345 // "ATSE"
	envVersion = 1

	// MaxPayload caps a single envelope payload (decode-bomb guard): a
	// crafted header cannot make Read allocate more than this.
	MaxPayload = 1 << 28 // 256 MiB

	// MaxName caps codec names (they must fit the uint8 length field).
	MaxName = 255
)

var (
	// ErrCorrupt reports a malformed or truncated envelope.
	ErrCorrupt = errors.New("codec: corrupt envelope")
	// ErrVersion reports an unsupported envelope version.
	ErrVersion = errors.New("codec: unsupported envelope version")
	// ErrUnknown reports an envelope naming a codec that is not registered.
	ErrUnknown = errors.New("codec: unknown codec name")
	// ErrTooLarge reports a payload exceeding MaxPayload.
	ErrTooLarge = errors.New("codec: payload exceeds MaxPayload")
)

// Codec serializes one concrete sketch type.
type Codec struct {
	// Name is the stable registry key embedded in every envelope.
	Name string
	// Marshal serializes a value this codec owns. It must reject values
	// of any other type with an error.
	Marshal func(v any) ([]byte, error)
	// Unmarshal decodes a payload produced by Marshal.
	Unmarshal func(payload []byte) (any, error)
	// Owns reports whether v is a value this codec serializes; it drives
	// the name-free Encode convenience.
	Owns func(v any) bool
}

var (
	regMu    sync.RWMutex
	registry = map[string]Codec{}
)

// Register adds a codec to the registry. It panics on an empty or
// over-long name, a missing function, or a duplicate registration —
// registration is programmer intent at init time, not runtime input.
func Register(c Codec) {
	if c.Name == "" || len(c.Name) > MaxName {
		panic("codec: invalid codec name")
	}
	if c.Marshal == nil || c.Unmarshal == nil || c.Owns == nil {
		panic("codec: codec " + c.Name + " missing functions")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[c.Name]; dup {
		panic("codec: duplicate registration of " + c.Name)
	}
	registry[c.Name] = c
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[name]
	return c, ok
}

// Names returns the registered codec names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NameFor returns the name of the codec owning v.
func NameFor(v any) (string, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for name, c := range registry {
		if c.Owns(v) {
			return name, true
		}
	}
	return "", false
}

// Marshal wraps v in a self-describing envelope under the named codec.
func Marshal(name string, v any) ([]byte, error) {
	c, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	payload, err := c.Marshal(v)
	if err != nil {
		return nil, err
	}
	return Envelope(name, payload)
}

// Envelope frames an already-marshaled payload in the self-describing
// envelope, for callers that obtained the payload through an interface
// (e.g. the engine's SnapshotMarshaler hook) rather than the registry.
func Envelope(name string, payload []byte) ([]byte, error) {
	if name == "" || len(name) > MaxName {
		return nil, fmt.Errorf("codec: invalid codec name %q", name)
	}
	if len(payload) > MaxPayload {
		return nil, ErrTooLarge
	}
	buf := make([]byte, 0, 4+1+1+len(name)+4+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, envMagic)
	buf = append(buf, envVersion, uint8(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return buf, nil
}

// Payload returns the payload of the single envelope occupying exactly
// data, verifying that the embedded codec name equals name. Unlike
// Unmarshal it performs no registry lookup and no decoding — and no
// allocation: the returned slice aliases data. It exists for hot paths
// (the store's cached-plan decode) that already hold a typed target and
// only need the framing stripped.
func Payload(data []byte, name string) ([]byte, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != envMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != envVersion {
		return nil, fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	nameLen := int(data[5])
	if nameLen == 0 {
		return nil, fmt.Errorf("%w: empty codec name", ErrCorrupt)
	}
	if len(data) < 6+nameLen+4 {
		return nil, fmt.Errorf("%w: truncated name", ErrCorrupt)
	}
	// The byte-slice-to-string conversion in a pure comparison does not
	// allocate.
	if string(data[6:6+nameLen]) != name {
		return nil, fmt.Errorf("codec: envelope names codec %q, want %q", data[6:6+nameLen], name)
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[6+nameLen:]))
	if payloadLen > MaxPayload {
		return nil, ErrTooLarge
	}
	body := data[6+nameLen+4:]
	if len(body) != payloadLen {
		return nil, fmt.Errorf("%w: payload is %d bytes, want %d", ErrCorrupt, len(body), payloadLen)
	}
	return body, nil
}

// Encode is Marshal with the codec inferred from the value's type.
func Encode(v any) ([]byte, error) {
	name, ok := NameFor(v)
	if !ok {
		return nil, fmt.Errorf("codec: no registered codec owns %T", v)
	}
	return Marshal(name, v)
}

// Unmarshal decodes one envelope occupying exactly data, dispatching on
// the embedded codec name, and returns the name with the decoded value.
func Unmarshal(data []byte) (string, any, error) {
	name, payload, rest, err := split(data)
	if err != nil {
		return "", nil, err
	}
	if len(rest) != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return decode(name, payload)
}

// UnmarshalNext decodes the envelope at the front of data and returns the
// remaining bytes, for iterating a concatenated envelope stream.
func UnmarshalNext(data []byte) (name string, v any, rest []byte, err error) {
	name, payload, rest, err := split(data)
	if err != nil {
		return "", nil, nil, err
	}
	name, v, err = decode(name, payload)
	return name, v, rest, err
}

// split parses the envelope framing at the front of data without touching
// any registry state.
func split(data []byte) (name string, payload, rest []byte, err error) {
	if len(data) < 6 {
		return "", nil, nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != envMagic {
		return "", nil, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != envVersion {
		return "", nil, nil, fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	nameLen := int(data[5])
	if nameLen == 0 {
		return "", nil, nil, fmt.Errorf("%w: empty codec name", ErrCorrupt)
	}
	if len(data) < 6+nameLen+4 {
		return "", nil, nil, fmt.Errorf("%w: truncated name", ErrCorrupt)
	}
	name = string(data[6 : 6+nameLen])
	payloadLen := int(binary.LittleEndian.Uint32(data[6+nameLen:]))
	if payloadLen > MaxPayload {
		return "", nil, nil, ErrTooLarge
	}
	body := data[6+nameLen+4:]
	if len(body) < payloadLen {
		return "", nil, nil, fmt.Errorf("%w: payload is %d bytes, want %d", ErrCorrupt, len(body), payloadLen)
	}
	return name, body[:payloadLen], body[payloadLen:], nil
}

func decode(name string, payload []byte) (string, any, error) {
	c, ok := Lookup(name)
	if !ok {
		return "", nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	v, err := c.Unmarshal(payload)
	if err != nil {
		return "", nil, err
	}
	return name, v, nil
}

// Write streams one envelope for v (under the named codec) to w.
func Write(w io.Writer, name string, v any) error {
	data, err := Marshal(name, v)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Read consumes exactly one envelope from r and decodes it. The payload
// allocation is bounded by MaxPayload regardless of the header's claim.
// io.EOF is returned untouched when r is exhausted before the first
// header byte, so callers can iterate a stream of envelopes.
func Read(r io.Reader) (string, any, error) {
	var head [6]byte
	if _, err := io.ReadFull(r, head[:1]); err != nil {
		return "", nil, err // clean EOF between envelopes
	}
	if _, err := io.ReadFull(r, head[1:]); err != nil {
		return "", nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(head[:]) != envMagic {
		return "", nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if head[4] != envVersion {
		return "", nil, fmt.Errorf("%w: got %d", ErrVersion, head[4])
	}
	nameLen := int(head[5])
	if nameLen == 0 {
		return "", nil, fmt.Errorf("%w: empty codec name", ErrCorrupt)
	}
	nameBuf := make([]byte, nameLen+4)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return "", nil, fmt.Errorf("%w: truncated name: %v", ErrCorrupt, err)
	}
	name := string(nameBuf[:nameLen])
	payloadLen := int(binary.LittleEndian.Uint32(nameBuf[nameLen:]))
	if payloadLen > MaxPayload {
		return "", nil, ErrTooLarge
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, err)
	}
	return decode(name, payload)
}
