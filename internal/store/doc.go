// Package store is the multi-tenant, time-bucketed sketch store: the
// serving-layer subsystem between the concurrent engine and the atsd
// daemon.
//
// # What part of the paper this implements
//
// The store is the "many estimators, one framework" serving surface of
// Ting, "Adaptive Threshold Sampling" (SIGMOD 2022): every series is an
// adaptive threshold sampler, and every range query is answered by the
// paper's merge rules (§2.5, §3.5). A Store owns many named sketches,
// keyed by (namespace, metric), and each key carries its own sketch
// kind — bottom-k subset sums, KMV distinct counts (§3.4–3.5),
// sliding-window samples (§3.2), unbiased space-saving top-k ([30] /
// §3.3), VarOpt_k weighted samples (§1.1), or exponentially time-decayed
// samples (§2.9) — fixed at first write or defaulted from the config.
// Ingest under a different kind is rejected with ErrKindMismatch.
//
// # Time bucketing
//
// Each key maintains a ring of time buckets of configurable width:
// ingest is routed into the current bucket's sharded engine sampler, and
// when the clock crosses a bucket boundary the outgoing bucket is lazily
// sealed — collapsed to a single sketch — and appended to the ring, with
// buckets older than the retention horizon dropped. Range queries
// collapse the covered buckets with the sketches' Merge, which the
// paper's substitutability theory makes exact for the hash-priority
// kinds: the merge of N bucket sketches depends only on the union's
// (key, priority) multiset, so estimates match a single sketch of the
// whole range's stream and every Horvitz-Thompson estimator stays
// unbiased. No raw data is retained anywhere — a bucket costs O(k), not
// O(items).
//
// Capacity is bounded per store: when MaxKeys is set, creating a key
// beyond the bound evicts the least-recently-used key. Stats exposes
// expvar-style monotonic counters (adds, rotations, evictions, queries)
// plus keys/buckets gauges.
//
// Snapshot/Restore persist the entire keyspace through the universal
// codec registry (internal/codec): each bucket is one self-describing
// envelope carrying the codec name of its series' kind, so a snapshot
// stream decodes without out-of-band schema knowledge, mixed-kind
// keyspaces round-trip bit-identically, and new sketch kinds become
// restorable by registering a codec. docs/ARCHITECTURE.md specifies the
// exact framing.
//
// # Concurrency and ownership contract
//
// All Store methods are safe for concurrent use. Locking is two-level:
// a store-wide RWMutex guards only the key table, and a per-series
// mutex serializes that series' bucket ring. Queries hold the series
// lock for the whole merge (merging settles sketch internals, so even
// read-style access is exclusive per key); distinct keys never contend.
// The store owns every sketch it creates — samplers returned by
// QuerySample are freshly collapsed copies, and ingest batches are
// owned by the store for the duration of the call (Window and Decay
// series overwrite the items' Weight/Time fields in place).
package store
