package store

// Query planning: memoized merged-prefix plans.
//
// Every range query used to re-collapse the same sealed buckets from
// scratch. The sketches are mergeable by construction, so the expensive
// part of a repeated query — the merged prefix of sealed buckets — is a
// materialized view that only one update can grow (bucket rotation
// appends a sealed bucket after the prefix) and only two can destroy
// (retention pruning drops buckets from the front, key eviction drops
// the series). The plan cache memoizes that prefix per (key, first
// sealed bucket) as one encoded canonical snapshot: the codecs give
// exact bytes, so a warm query decodes the prefix and merges only the
// live bucket's snapshot instead of re-merging N sealed sketches.
//
// Keying and validity. A plan is keyed by (series key, lo) where lo is
// the index of the first sealed bucket it covers, and records (hi,
// count): the last covered index and the number of buckets folded in.
// Within one series, sealed buckets are only ever appended after the
// tail (indices strictly increase) and pruned from the front, so the
// first `count` sealed buckets starting at lo are immutable while they
// exist: a lookup whose current overlap starts at lo and whose
// count-th bucket ends at hi is guaranteed to name exactly the buckets
// the plan folded. Staleness is therefore impossible by construction
// for live series; the cases that could resurrect a (key, lo) pair
// with different contents — key eviction followed by re-creation, and
// whole-store restore — invalidate eagerly (invalidateKey /
// invalidateAll), and retention pruning invalidates the plans whose lo
// fell behind the horizon (invalidateBelow).
//
// Rotation alone invalidates nothing: the cached prefix stays a valid
// prefix of the grown range, and the next query extends it — decode,
// merge the new sealed suffix, re-encode — instead of rebuilding.
//
// The cache is bounded by a byte budget with LRU eviction and is safe
// for concurrent use; entries hold immutable encoded bytes, so a
// decode can proceed after its entry is evicted.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"ats/internal/codec"
	"ats/internal/engine"
)

// defaultPlanCacheBytes is the plan-cache budget when the config leaves
// PlanCacheBytes zero.
const defaultPlanCacheBytes = 16 << 20

// planEntryOverhead approximates the per-entry bookkeeping (map slot,
// LRU element, struct) charged against the byte budget alongside the
// encoded snapshot, so a flood of tiny plans cannot grow the cache
// unboundedly.
const planEntryOverhead = 160

// planKey identifies one cached merged prefix: the series key plus the
// index of the first sealed bucket the plan covers. Queries with
// different range starts over the same series cache independently.
type planKey struct {
	key Key
	lo  int64
}

// planEntry is one cached plan. env is the codec envelope of the merged
// prefix and is immutable once stored.
type planEntry struct {
	pk    planKey
	hi    int64
	count int
	env   []byte
	elem  *list.Element
}

func (e *planEntry) size() int64 { return int64(len(e.env)) + planEntryOverhead }

// planCache is the store-wide plan cache. All structural state is
// guarded by mu; the counters are atomics so Stats and the metrics
// registry read them without the lock.
type planCache struct {
	max int64

	mu      sync.Mutex
	entries map[planKey]*planEntry
	lru     *list.List // front = most recently used; values are *planEntry
	bytes   int64

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
}

// newPlanCache returns the cache for the given budget: nil (disabled)
// for a negative budget, the default budget for zero.
func newPlanCache(budget int64) *planCache {
	if budget < 0 {
		return nil
	}
	if budget == 0 {
		budget = defaultPlanCacheBytes
	}
	return &planCache{
		max:     budget,
		entries: make(map[planKey]*planEntry),
		lru:     list.New(),
	}
}

// lookup returns the cached plan for pk, bumping its LRU position. The
// returned env must be treated as read-only.
func (pc *planCache) lookup(pk planKey) (env []byte, hi int64, count int, ok bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e := pc.entries[pk]
	if e == nil {
		return nil, 0, 0, false
	}
	pc.lru.MoveToFront(e.elem)
	return e.env, e.hi, e.count, true
}

// store inserts or replaces the plan for pk and evicts least-recently
// used plans until the cache fits the budget again. A plan larger than
// the whole budget is not cached.
func (pc *planCache) store(pk planKey, hi int64, count int, env []byte) {
	e := &planEntry{pk: pk, hi: hi, count: count, env: env}
	if e.size() > pc.max {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if old := pc.entries[pk]; old != nil {
		pc.bytes -= old.size()
		pc.lru.Remove(old.elem)
	}
	e.elem = pc.lru.PushFront(e)
	pc.entries[pk] = e
	pc.bytes += e.size()
	for pc.bytes > pc.max {
		victim := pc.lru.Back().Value.(*planEntry)
		pc.removeLocked(victim)
		pc.evictions.Add(1)
	}
}

// drop removes the plan for pk (a decode failure makes the entry
// useless), counting it as an invalidation.
func (pc *planCache) drop(pk planKey) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e := pc.entries[pk]; e != nil {
		pc.removeLocked(e)
		pc.invalidations.Add(1)
	}
}

// invalidateKey removes every plan of one series key (series eviction:
// a later series under the same key could regrow the same bucket
// indices with different contents).
func (pc *planCache) invalidateKey(key Key) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for pk, e := range pc.entries {
		if pk.key == key {
			pc.removeLocked(e)
			pc.invalidations.Add(1)
		}
	}
}

// invalidateBelow removes the plans of key whose first covered bucket
// fell behind the retention horizon. Plans with lo >= cut still cover
// exactly their original buckets and stay valid.
func (pc *planCache) invalidateBelow(key Key, cut int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for pk, e := range pc.entries {
		if pk.key == key && pk.lo < cut {
			pc.removeLocked(e)
			pc.invalidations.Add(1)
		}
	}
}

// invalidateAll empties the cache (whole-store restore).
func (pc *planCache) invalidateAll() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n := len(pc.entries)
	pc.entries = make(map[planKey]*planEntry)
	pc.lru.Init()
	pc.bytes = 0
	pc.invalidations.Add(int64(n))
}

func (pc *planCache) removeLocked(e *planEntry) {
	delete(pc.entries, e.pk)
	pc.lru.Remove(e.elem)
	pc.bytes -= e.size()
}

// usage returns the current byte footprint and entry count.
func (pc *planCache) usage() (bytes int64, entries int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.bytes, len(pc.entries)
}

// encodePlan serializes a merged prefix as one self-describing codec
// envelope, the exact bytes a snapshot of the same sampler would carry.
func encodePlan(out engine.Sampler) ([]byte, error) {
	sm, ok := out.(engine.SnapshotMarshaler)
	if !ok {
		return nil, engine.ErrIncompatible
	}
	payload, err := sm.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return codec.Envelope(sm.CodecName(), payload)
}

// decodePlan rebuilds a merged prefix from its envelope, cross-checking
// the codec name against the series kind.
func decodePlan(env []byte, kind Kind) (engine.Sampler, error) {
	name, v, err := codec.Unmarshal(env)
	if err != nil {
		return nil, err
	}
	if name != kindCodecName(kind) {
		return nil, ErrSnapshotConfig
	}
	return engine.WrapDecoded(name, v)
}

// decodePlanInto is decodePlan preferring an in-place decode into the
// series' parked scratch sampler: when the scratch supports
// SnapshotUnmarshaler, the envelope payload overwrites it with no
// sketch, adapter, or name-string allocation — the warm-path analogue
// of the cold path's Resetter checkout. Falls back to decodePlan when
// no suitable scratch is parked. Must be called with s.mu held.
func (st *Store) decodePlanInto(s *series, env []byte) (engine.Sampler, error) {
	if su, ok := s.scratch.(engine.SnapshotUnmarshaler); ok {
		payload, err := codec.Payload(env, kindCodecName(s.kind))
		if err != nil {
			return nil, err
		}
		if err := su.UnmarshalSnapshot(payload); err != nil {
			// A failed in-place decode leaves the target undefined; it
			// must not be parked again.
			s.scratch = nil
			return nil, err
		}
		out := s.scratch
		s.scratch = nil
		return out, nil
	}
	return decodePlan(env, s.kind)
}
