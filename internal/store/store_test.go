package store

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"ats/internal/bottomk"
	"ats/internal/distinct"
	"ats/internal/engine"
	"ats/internal/stream"
)

var epoch = time.Unix(1_700_000_000, 0)

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}

func zipfItems(n int, seed uint64) []engine.Item {
	z := stream.NewZipf(50_000, 1.1, seed)
	rng := stream.NewRNG(seed + 1)
	items := make([]engine.Item, n)
	for i := range items {
		w := 1 + 9*rng.Float64()
		items[i] = engine.Item{Key: z.Next(), Weight: w, Value: w}
	}
	return items
}

// TestRangeQueryEqualsSingleSketch is the acceptance-criteria test: a
// range query over N buckets is answered purely by sketch merges, and —
// because bottom-k depends only on the multiset of (key, priority) pairs
// — the collapsed result is identical to one sketch fed the whole
// stream.
func TestRangeQueryEqualsSingleSketch(t *testing.T) {
	const (
		buckets = 8
		perB    = 5000
		k       = 256
		seed    = 42
	)
	st := New(Config{Kind: BottomK, K: k, Seed: seed, BucketWidth: time.Minute, Retention: 100})
	items := zipfItems(buckets*perB, seed)

	ref := bottomk.New(k, seed)
	for b := 0; b < buckets; b++ {
		at := epoch.Add(time.Duration(b) * time.Minute)
		chunk := items[b*perB : (b+1)*perB]
		st.AddBatchAt("tenant", "bytes", chunk, at)
		for _, it := range chunk {
			ref.Add(it.Key, it.Weight, it.Value)
		}
	}

	res, err := st.Query("tenant", "bytes", epoch, epoch.Add(buckets*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets != buckets {
		t.Fatalf("merged %d buckets, want %d", res.Buckets, buckets)
	}
	// The collapsed sketch holds the identical (key, priority) multiset;
	// only float accumulation order differs, so estimates agree to
	// last-bits relative precision.
	wantSum, wantVar := ref.SubsetSum(nil)
	if relDiff(res.Sum, wantSum) > 1e-12 || relDiff(res.VarianceEstimate, wantVar) > 1e-12 {
		t.Fatalf("collapsed estimate (%v, %v) != single-sketch (%v, %v)",
			res.Sum, res.VarianceEstimate, wantSum, wantVar)
	}
	if res.Threshold != ref.Threshold() {
		t.Fatalf("collapsed threshold %v != %v", res.Threshold, ref.Threshold())
	}
	if res.SampleSize != len(ref.Sample()) {
		t.Fatalf("collapsed sample size %d != %d", res.SampleSize, len(ref.Sample()))
	}
}

// TestRangeQueryCoversOnlyRequestedBuckets puts disjoint sub-streams in
// separate buckets and checks sub-range queries see exactly their share.
func TestRangeQueryCoversOnlyRequestedBuckets(t *testing.T) {
	// k comfortably exceeds the 500-item stream, so sums are exact.
	st := New(Config{Kind: BottomK, K: 1024, Seed: 7, BucketWidth: time.Minute, Retention: 100})
	// Bucket b holds 100 items of weight 1, value 1.
	for b := 0; b < 5; b++ {
		items := make([]engine.Item, 100)
		for i := range items {
			items[i] = engine.Item{Key: uint64(b*1000 + i), Weight: 1, Value: 1}
		}
		st.AddBatchAt("ns", "m", items, epoch.Add(time.Duration(b)*time.Minute))
	}
	for _, tc := range []struct {
		fromB, toB int
		want       float64
	}{
		{0, 0, 100}, {1, 2, 200}, {0, 4, 500}, {3, 4, 200},
	} {
		from := epoch.Add(time.Duration(tc.fromB) * time.Minute)
		to := epoch.Add(time.Duration(tc.toB) * time.Minute)
		res, err := st.Query("ns", "m", from, to)
		if err != nil {
			t.Fatal(err)
		}
		if res.Buckets != tc.toB-tc.fromB+1 {
			t.Errorf("[%d,%d]: merged %d buckets", tc.fromB, tc.toB, res.Buckets)
		}
		if res.Sum != tc.want {
			t.Errorf("[%d,%d]: sum %v, want %v (k exceeds stream: exact)", tc.fromB, tc.toB, res.Sum, tc.want)
		}
	}
	// A range before all data merges zero buckets and sums to zero.
	res, err := st.Query("ns", "m", epoch.Add(-time.Hour), epoch.Add(-30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets != 0 || res.Sum != 0 {
		t.Errorf("empty range: %+v", res)
	}
}

func TestRetentionDropsOldBuckets(t *testing.T) {
	const retention = 3
	st := New(Config{Kind: BottomK, K: 32, Seed: 1, BucketWidth: time.Minute, Retention: retention})
	for b := 0; b < 10; b++ {
		st.AddBatchAt("ns", "m", []engine.Item{{Key: uint64(b), Weight: 1, Value: 1}},
			epoch.Add(time.Duration(b)*time.Minute))
	}
	stats := st.Stats()
	if want := retention + 1; stats.Buckets > want {
		t.Fatalf("holding %d buckets, retention caps at %d", stats.Buckets, want)
	}
	if stats.Rotations != 9 {
		t.Fatalf("rotations %d, want 9", stats.Rotations)
	}
	// The first bucket is beyond the horizon.
	res, err := st.Query("ns", "m", epoch, epoch.Add(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets != 0 {
		t.Fatalf("expired bucket still served: %+v", res)
	}
	// The last retention+1 buckets are all present.
	res, err = st.Query("ns", "m", epoch, epoch.Add(10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets != retention+1 {
		t.Fatalf("recent window merged %d buckets, want %d", res.Buckets, retention+1)
	}
}

func TestLRUEviction(t *testing.T) {
	st := New(Config{Kind: BottomK, K: 16, Seed: 1, MaxKeys: 3})
	for i := 0; i < 3; i++ {
		st.AddBatchAt("ns", fmt.Sprintf("m%d", i), []engine.Item{{Key: 1, Weight: 1, Value: 1}},
			epoch.Add(time.Duration(i)*time.Second))
	}
	// Touch m0 so m1 becomes the LRU victim.
	st.AddBatchAt("ns", "m0", []engine.Item{{Key: 2, Weight: 1, Value: 1}}, epoch.Add(10*time.Second))
	st.AddBatchAt("ns", "m3", []engine.Item{{Key: 1, Weight: 1, Value: 1}}, epoch.Add(11*time.Second))

	keys := st.Keys()
	if len(keys) != 3 {
		t.Fatalf("keys %v", keys)
	}
	for _, k := range keys {
		if k.Metric == "m1" {
			t.Fatalf("LRU key m1 survived: %v", keys)
		}
	}
	if got := st.Stats().Evictions; got != 1 {
		t.Fatalf("evictions %d, want 1", got)
	}
	if _, err := st.Query("ns", "m1", epoch, epoch.Add(time.Hour)); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("evicted key still queryable: %v", err)
	}
}

func TestDistinctKindAcrossBuckets(t *testing.T) {
	const k = 512
	st := New(Config{Kind: Distinct, K: k, Seed: 5, BucketWidth: time.Minute, Retention: 100})
	ref := distinct.NewSketch(k, 5)
	// 3 buckets with overlapping key ranges [b*5000, b*5000+15000):
	// true union cardinality 25_000.
	for b := 0; b < 3; b++ {
		items := make([]engine.Item, 15_000)
		for i := range items {
			key := uint64(b*5000 + i)
			items[i] = engine.Item{Key: key, Weight: 1, Value: 1}
			ref.Add(key)
		}
		st.AddBatchAt("ns", "users", items, epoch.Add(time.Duration(b)*time.Minute))
	}
	res, err := st.Query("ns", "users", epoch, epoch.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctEstimate != ref.Estimate() {
		t.Fatalf("store estimate %v != sequential sketch %v", res.DistinctEstimate, ref.Estimate())
	}
	if rel := res.DistinctEstimate/25_000 - 1; rel > 0.15 || rel < -0.15 {
		t.Fatalf("distinct estimate %v far from 25000", res.DistinctEstimate)
	}
}

func TestWindowKindServesRecentSample(t *testing.T) {
	st := New(Config{Kind: Window, K: 64, Seed: 9, BucketWidth: time.Minute, Retention: 10, WindowDelta: 120})
	for b := 0; b < 4; b++ {
		items := make([]engine.Item, 500)
		for i := range items {
			items[i] = engine.Item{Key: uint64(b*500 + i), Value: 1}
		}
		st.AddBatchAt("ns", "events", items, epoch.Add(time.Duration(b)*time.Minute))
	}
	res, err := st.Query("ns", "events", epoch.Add(3*time.Minute), epoch.Add(4*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize == 0 || !(res.Threshold > 0 && res.Threshold <= 1) {
		t.Fatalf("window query: %+v", res)
	}
	if res.CountEstimate <= 0 {
		t.Fatalf("count estimate %v", res.CountEstimate)
	}
}

// TestWindowBucketsDrawDecorrelatedPriorities: consecutive buckets must
// not restart the same RNG streams — the first draw of bucket N+1 would
// equal the first draw of bucket N, correlating priorities inside one
// merged range sample.
func TestWindowBucketsDrawDecorrelatedPriorities(t *testing.T) {
	st := New(Config{Kind: Window, K: 8, Seed: 3, BucketWidth: time.Minute, Retention: 10, WindowDelta: 600})
	st.AddBatchAt("ns", "m", []engine.Item{{Key: 1, Value: 1}}, epoch)
	st.AddBatchAt("ns", "m", []engine.Item{{Key: 2, Value: 1}}, epoch.Add(time.Minute))
	sample, err := st.QuerySample("ns", "m", epoch, epoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 2 {
		t.Fatalf("sample %v", sample)
	}
	if sample[0].Priority == sample[1].Priority {
		t.Fatalf("buckets share an RNG stream: both items drew priority %v", sample[0].Priority)
	}
}

func TestSnapshotRestoreBitIdentical(t *testing.T) {
	for _, kind := range []Kind{BottomK, Distinct, Window} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{Kind: kind, K: 128, Seed: 11, BucketWidth: time.Minute, Retention: 50, WindowDelta: 600}
			st := New(cfg)
			items := zipfItems(20_000, 77)
			for b := 0; b < 5; b++ {
				at := epoch.Add(time.Duration(b) * time.Minute)
				st.AddBatchAt("acme", "bytes", items[b*3000:(b+1)*3000], at)
				st.AddBatchAt("umbrella", "reqs", items[15000+b*1000:15000+(b+1)*1000], at)
			}
			from, to := epoch, epoch.Add(time.Hour)
			want := map[string]Result{}
			for _, key := range st.Keys() {
				res, err := st.Query(key.Namespace, key.Metric, from, to)
				if err != nil {
					t.Fatal(err)
				}
				want[key.Namespace+"/"+key.Metric] = res
			}

			var buf bytes.Buffer
			if err := st.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			st2 := New(cfg)
			if err := st2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			if got, wantKeys := fmt.Sprint(st2.Keys()), fmt.Sprint(st.Keys()); got != wantKeys {
				t.Fatalf("keys %v != %v", got, wantKeys)
			}
			for _, key := range st2.Keys() {
				res, err := st2.Query(key.Namespace, key.Metric, from, to)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, want[key.Namespace+"/"+key.Metric]) {
					t.Fatalf("%s/%s: restored query %+v != original %+v",
						key.Namespace, key.Metric, res, want[key.Namespace+"/"+key.Metric])
				}
			}
			// Ingest continues seamlessly after a restore.
			st2.AddBatchAt("acme", "bytes", items[:100], epoch.Add(2*time.Hour))
			res, err := st2.Query("acme", "bytes", epoch, epoch.Add(3*time.Hour))
			if err != nil || res.Buckets == 0 {
				t.Fatalf("post-restore ingest: %+v, %v", res, err)
			}
		})
	}
}

func TestRestoreRejectsMismatchAndNonEmpty(t *testing.T) {
	cfg := Config{Kind: BottomK, K: 64, Seed: 3, BucketWidth: time.Minute}
	st := New(cfg)
	st.AddBatchAt("ns", "m", zipfItems(100, 1), epoch)
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	nonEmpty := New(cfg)
	nonEmpty.AddBatchAt("x", "y", zipfItems(10, 2), epoch)
	if err := nonEmpty.Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("want ErrNotEmpty, got %v", err)
	}
	for name, bad := range map[string]Config{
		"kind":  {Kind: Distinct, K: 64, Seed: 3, BucketWidth: time.Minute},
		"k":     {Kind: BottomK, K: 65, Seed: 3, BucketWidth: time.Minute},
		"seed":  {Kind: BottomK, K: 64, Seed: 4, BucketWidth: time.Minute},
		"width": {Kind: BottomK, K: 64, Seed: 3, BucketWidth: time.Hour},
	} {
		if err := New(bad).Restore(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrSnapshotConfig) {
			t.Fatalf("%s mismatch accepted: %v", name, err)
		}
	}
	if err := New(cfg).Restore(bytes.NewReader(buf.Bytes()[:20])); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatal("truncated snapshot accepted")
	}

	// Window stores must also reject a delta mismatch at restore time —
	// it would otherwise surface as merge failures on every range query.
	wcfg := Config{Kind: Window, K: 16, Seed: 3, BucketWidth: time.Minute, WindowDelta: 30}
	wst := New(wcfg)
	wst.AddBatchAt("ns", "m", []engine.Item{{Key: 1, Value: 1}}, epoch)
	var wbuf bytes.Buffer
	if err := wst.Snapshot(&wbuf); err != nil {
		t.Fatal(err)
	}
	other := wcfg
	other.WindowDelta = 60
	if err := New(other).Restore(bytes.NewReader(wbuf.Bytes())); !errors.Is(err, ErrSnapshotConfig) {
		t.Fatalf("window delta mismatch accepted: %v", err)
	}
	if err := New(wcfg).Restore(bytes.NewReader(wbuf.Bytes())); err != nil {
		t.Fatalf("matching window config rejected: %v", err)
	}
}

// TestConcurrentStoreIsRaceClean hammers adds, queries, stats and
// snapshots across many keys; run with the race detector.
func TestConcurrentStoreIsRaceClean(t *testing.T) {
	st := New(Config{Kind: BottomK, K: 64, Seed: 21, BucketWidth: 100 * time.Millisecond, MaxKeys: 16})
	items := zipfItems(8000, 3)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				ns := fmt.Sprintf("ns%d", (w+i)%8)
				at := epoch.Add(time.Duration(i) * 40 * time.Millisecond)
				st.AddBatchAt(ns, "m", items[i*200:(i+1)*200], at)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			for _, key := range st.Keys() {
				_, _ = st.Query(key.Namespace, key.Metric, epoch, epoch.Add(time.Hour))
			}
			_ = st.Stats()
			var buf bytes.Buffer
			if err := st.Snapshot(&buf); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if st.Stats().Adds != 4*40*200 {
		t.Fatalf("adds %d", st.Stats().Adds)
	}
}
