package store

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"ats/internal/engine"
	"ats/internal/stream"
)

// TestStoreServesGroupedQueries drives a groupby series across several
// buckets with known per-group distinct counts and checks the ranked
// grouped answers, the topn bound, and the dim validation.
func TestStoreServesGroupedQueries(t *testing.T) {
	now := epoch
	st := New(Config{
		K: 128, GroupM: 8, Seed: 11, BucketWidth: time.Minute, Retention: 30, Shards: 2,
		Now: func() time.Time { return now },
	})
	// Group g contributes 200*(g+1) distinct keys, spread over 4 buckets.
	const groups = 6
	exact := make(map[uint64]int)
	for b := 0; b < 4; b++ {
		var items []engine.Item
		for g := uint64(0); g < groups; g++ {
			n := 200 * (int(g) + 1)
			for i := b; i < n; i += 4 {
				items = append(items, engine.Item{Key: g<<32 | uint64(i), Group: g})
			}
			exact[g] = n
		}
		if err := st.AddBatchKindAt("ns", "per-country", GroupBy, items, now); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Minute)
	}

	res, err := st.Query("ns", "per-country", epoch, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "groupby" || res.GroupCount != groups {
		t.Fatalf("result kind %q group count %d, want groupby/%d", res.Kind, res.GroupCount, groups)
	}
	if len(res.Groups) != groups {
		t.Fatalf("ranking has %d entries, want %d", len(res.Groups), groups)
	}
	// Ranked descending, and every estimate within 30% of exact (merged
	// across 4 buckets).
	for i, gr := range res.Groups {
		if i > 0 && gr.DistinctEstimate > res.Groups[i-1].DistinctEstimate {
			t.Errorf("ranking not descending at %d", i)
		}
		want := float64(exact[gr.Group])
		if rel := relDiff(gr.DistinctEstimate, want); rel > 0.30 {
			t.Errorf("group %d: estimate %.1f vs exact %.0f (rel %.3f)",
				gr.Group, gr.DistinctEstimate, want, rel)
		}
	}
	// topn bounds the ranking.
	res, err = st.QueryTopN("ns", "per-country", epoch, now, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("topn=2 ranking has %d entries", len(res.Groups))
	}
	// Grouped dimensions are a stratified concept: dim != 0 is rejected.
	if _, err := st.QueryGrouped("ns", "per-country", epoch, now, 0, 1); !errors.Is(err, ErrBadDim) {
		t.Fatalf("dim=1 on a groupby series: %v, want ErrBadDim", err)
	}
}

// TestStoreServesStratifiedQueries drives a stratified series across
// buckets and checks overall and per-dimension answers against exact
// sums.
func TestStoreServesStratifiedQueries(t *testing.T) {
	now := epoch
	st := New(Config{
		K: 256, StratumK: 64, StratifiedDims: 2, Seed: 13,
		BucketWidth: time.Minute, Retention: 30, Shards: 2,
		Now: func() time.Time { return now },
	})
	rng := stream.NewRNG(17)
	exactTotal := 0.0
	exactByDim := [2]map[uint32]float64{{}, {}}
	for b := 0; b < 4; b++ {
		items := make([]engine.Item, 3000)
		for i := range items {
			labels := []uint32{uint32(rng.Intn(6)), uint32(rng.Intn(4))}
			v := 1 + 9*rng.Float64()
			// Odd-multiplier bijection keeps keys distinct across buckets:
			// the sampler deduplicates by key, so colliding keys would
			// make the exact total the wrong ground truth.
			items[i] = engine.Item{
				Key:    uint64(b*3000+i)*2862933555777941757 + 1,
				Value:  v,
				Strata: labels,
			}
			exactTotal += v
			exactByDim[0][labels[0]] += v
			exactByDim[1][labels[1]] += v
		}
		if err := st.AddBatchKindAt("ns", "by-country-age", Stratified, items, now); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Minute)
	}

	for dim := 0; dim < 2; dim++ {
		res, err := st.QueryGrouped("ns", "by-country-age", epoch, now, 0, dim)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != "stratified" || res.StratumDim == nil || *res.StratumDim != dim {
			t.Fatalf("result kind %q dim %v", res.Kind, res.StratumDim)
		}
		if rel := relDiff(res.Sum, exactTotal); rel > 0.15 {
			t.Errorf("total %.1f vs exact %.1f (rel %.3f)", res.Sum, exactTotal, rel)
		}
		if len(res.Strata) != len(exactByDim[dim]) {
			t.Fatalf("dim %d: %d strata, want %d", dim, len(res.Strata), len(exactByDim[dim]))
		}
		for _, sr := range res.Strata {
			want := exactByDim[dim][sr.Label]
			if rel := relDiff(sr.SumEstimate, want); rel > 0.45 {
				t.Errorf("dim %d stratum %d: %.1f vs exact %.1f (rel %.3f)",
					dim, sr.Label, sr.SumEstimate, want, rel)
			}
			if sr.Sampled <= 0 {
				t.Errorf("dim %d stratum %d: empty", dim, sr.Label)
			}
		}
	}
	if _, err := st.QueryGrouped("ns", "by-country-age", epoch, now, 0, 2); !errors.Is(err, ErrBadDim) {
		t.Fatalf("dim=2 on a 2-dim series: %v, want ErrBadDim", err)
	}
	if _, err := st.QueryGrouped("ns", "by-country-age", epoch, now, 0, -1); !errors.Is(err, ErrBadDim) {
		t.Fatalf("dim=-1: %v, want ErrBadDim", err)
	}
}

// TestMixedKindStoreConcurrentHammer hammers one store with concurrent
// kind-labelled ingest across every sketch kind, range queries, grouped
// queries and whole-keyspace snapshots while the synthetic clock rotates
// buckets — the serving daemon's steady state, run under -race.
func TestMixedKindStoreConcurrentHammer(t *testing.T) {
	var mu sync.Mutex
	now := epoch
	tick := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Second)
		return now
	}
	st := New(Config{
		K: 64, GroupM: 4, StratumK: 16, StratifiedDims: 2, Seed: 23,
		BucketWidth: 250 * time.Millisecond, Retention: 20, Shards: 2,
		Now: func() time.Time { mu.Lock(); defer mu.Unlock(); return now },
	})

	kinds := Kinds()
	const writers = 8
	const rounds = 60
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stream.NewRNG(uint64(100 + w))
			for r := 0; r < rounds; r++ {
				kind := kinds[(w+r)%len(kinds)]
				items := make([]engine.Item, 50)
				for i := range items {
					key := rng.Uint64() % 5000
					items[i] = engine.Item{
						Key: key, Weight: 1 + rng.Float64(), Value: 1,
						Group:  key % 5,
						Strata: []uint32{uint32(key % 4), uint32(key % 3)},
					}
				}
				if err := st.AddBatchKindAt("hammer", "m-"+kind.String(), kind, items, tick()); err != nil {
					t.Errorf("ingest %s: %v", kind, err)
					return
				}
			}
		}(w)
	}
	var qg sync.WaitGroup
	for q := 0; q < 3; q++ {
		qg.Add(1)
		go func(q int) {
			defer qg.Done()
			for r := 0; r < 30; r++ {
				for _, kind := range kinds {
					res, err := st.Query("hammer", "m-"+kind.String(), epoch, tick())
					if err != nil && !errors.Is(err, ErrUnknownKey) {
						t.Errorf("query %s: %v", kind, err)
						return
					}
					if err == nil && res.Kind != kind.String() {
						t.Errorf("query %s answered kind %q", kind, res.Kind)
						return
					}
				}
				var buf bytes.Buffer
				if err := st.Snapshot(&buf); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}(q)
	}
	wg.Wait()
	qg.Wait()

	// Quiescent end state: snapshot → restore → re-query must agree for
	// every kind, and the snapshot bytes must be stable.
	var snap1 bytes.Buffer
	if err := st.Snapshot(&snap1); err != nil {
		t.Fatal(err)
	}
	st2 := New(st.Config())
	if err := st2.Restore(bytes.NewReader(snap1.Bytes())); err != nil {
		t.Fatal(err)
	}
	var snap2 bytes.Buffer
	if err := st2.Snapshot(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
		t.Fatal("hammered keyspace does not round-trip bit-identically")
	}
	end := st.cfg.Now()
	for _, kind := range kinds {
		r1, err1 := st.Query("hammer", "m-"+kind.String(), epoch, end)
		r2, err2 := st2.Query("hammer", "m-"+kind.String(), epoch, end)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: post-restore queries errored: %v / %v", kind, err1, err2)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: restored query %+v != original %+v", kind, r2, r1)
		}
	}
}
