package store

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ats/internal/bottomk"
	"ats/internal/decay"
	"ats/internal/distinct"
	"ats/internal/engine"
	"ats/internal/estimator"
	"ats/internal/groupby"
	"ats/internal/stratified"
	"ats/internal/stream"
	"ats/internal/topk"
	"ats/internal/varopt"
	"ats/internal/window"
)

// Kind selects the sketch type of one series. Every key carries its own
// kind, fixed at first write (by the kind-aware ingest paths) or
// defaulted from the store config; later ingest under a different kind
// is rejected with ErrKindMismatch.
type Kind uint8

const (
	// BottomK maintains weighted bottom-k sketches: range queries answer
	// subset sums with unbiased variance estimates.
	BottomK Kind = iota
	// Distinct maintains KMV sketches: range queries answer distinct
	// counts.
	Distinct
	// Window maintains sliding-window samplers: range queries answer
	// uniform samples of recent arrivals. Arrival times are stamped by
	// the store clock.
	Window
	// TopK maintains unbiased space-saving sketches: range queries
	// answer heavy-hitter rankings and unbiased disaggregated counts.
	TopK
	// VarOpt maintains VarOpt_k variance-optimal weighted samplers:
	// range queries answer weighted subset sums.
	VarOpt
	// Decay maintains exponentially time-decayed samplers: range queries
	// answer decayed sums and counts evaluated at the query range's end.
	// Arrival times are stamped by the store clock.
	Decay
	// GroupBy maintains grouped distinct counters (§3.6): range queries
	// answer per-group distinct-count estimates grouped by the ingest
	// items' Group label.
	GroupBy
	// Stratified maintains budgeted multi-stratified samplers (§3.7):
	// range queries answer overall and per-stratum subset sums over the
	// ingest items' Strata labels.
	Stratified
)

// String returns the wire/flag name of the kind.
func (k Kind) String() string {
	switch k {
	case BottomK:
		return "bottomk"
	case Distinct:
		return "distinct"
	case Window:
		return "window"
	case TopK:
		return "topk"
	case VarOpt:
		return "varopt"
	case Decay:
		return "decay"
	case GroupBy:
		return "groupby"
	case Stratified:
		return "stratified"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "bottomk":
		return BottomK, nil
	case "distinct":
		return Distinct, nil
	case "window":
		return Window, nil
	case "topk":
		return TopK, nil
	case "varopt":
		return VarOpt, nil
	case "decay":
		return Decay, nil
	case "groupby":
		return GroupBy, nil
	case "stratified":
		return Stratified, nil
	}
	return 0, fmt.Errorf("store: unknown sketch kind %q", s)
}

// Kinds lists every sketch kind a store can serve, in wire order.
func Kinds() []Kind {
	return []Kind{BottomK, Distinct, Window, TopK, VarOpt, Decay, GroupBy, Stratified}
}

// Valid reports whether k is a kind this store version serves; binary
// ingest headers carry raw kind bytes that must be checked before use.
func (k Kind) Valid() bool { return k <= Stratified }

// Key identifies one sketch series: a tenant namespace and a metric name.
type Key struct {
	Namespace string `json:"namespace"`
	Metric    string `json:"metric"`
}

// Config parameterizes a Store. The zero value is not usable; Kind, K and
// BucketWidth selection happen through New's defaulting.
type Config struct {
	// Kind is the DEFAULT sketch type of new keys created by the
	// kind-less ingest paths (default BottomK). Each key carries its own
	// kind; the kind-aware ingest paths may create keys of any kind in
	// the same store.
	Kind Kind
	// K is the per-bucket sketch size (default 1024).
	K int
	// Seed coordinates the sketches: all buckets of all keys share it, so
	// any subset of buckets is mergeable (default 1).
	Seed uint64
	// BucketWidth is the time width of one bucket (default 1 minute).
	BucketWidth time.Duration
	// Retention is how many sealed buckets of history each key keeps
	// beyond the current bucket (default 60).
	Retention int
	// Shards is the shard count of each current bucket's concurrent
	// engine (default 1; raise it for write-hot keys). Sealed buckets are
	// always collapsed to a single sketch.
	Shards int
	// MaxKeys bounds the number of live keys; 0 means unbounded. At the
	// bound, creating a new key evicts the least-recently-used one.
	MaxKeys int
	// WindowDelta is the sliding-window length in seconds for Window
	// series (default BucketWidth in seconds).
	WindowDelta float64
	// DecayLambda is the decay rate per second for Decay series
	// (default ln 2 / BucketWidth in seconds — a half-life of one
	// bucket).
	DecayLambda float64
	// GroupM is the number of dedicated per-group sketches of GroupBy
	// series; each dedicated sketch has size K (default 64).
	GroupM int
	// StratumK is the per-stratum bottom-k parameter of Stratified
	// series, whose total item budget is K (default 64).
	StratumK int
	// StratifiedDims is the number of stratification dimensions of
	// Stratified series (default 2).
	StratifiedDims int
	// PlanCacheBytes is the byte budget of the query-plan cache, which
	// memoizes merged sealed-bucket prefixes so repeated range queries
	// decode one cached snapshot instead of re-merging every sealed
	// bucket. Zero means the 16 MiB default; a negative value disables
	// the cache.
	PlanCacheBytes int64
	// Now is the store clock (default time.Now). Tests and benchmarks
	// inject synthetic clocks to drive rotation deterministically.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BucketWidth <= 0 {
		c.BucketWidth = time.Minute
	}
	if c.Retention <= 0 {
		c.Retention = 60
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.WindowDelta <= 0 {
		c.WindowDelta = c.BucketWidth.Seconds()
	}
	if c.DecayLambda <= 0 {
		c.DecayLambda = math.Ln2 / c.BucketWidth.Seconds()
	}
	if c.GroupM <= 0 {
		c.GroupM = 64
	}
	if c.StratumK <= 0 {
		c.StratumK = 64
	}
	if c.StratifiedDims <= 0 {
		c.StratifiedDims = 2
	}
	if c.PlanCacheBytes == 0 {
		c.PlanCacheBytes = defaultPlanCacheBytes
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a point-in-time snapshot of the store's expvar-style counters.
type Stats struct {
	Keys      int   `json:"keys"`
	Buckets   int   `json:"buckets"`
	Adds      int64 `json:"adds"`
	Rotations int64 `json:"rotations"`
	Evictions int64 `json:"evictions"`
	Queries   int64 `json:"queries"`
	Snapshots int64 `json:"snapshots"`
	Restores  int64 `json:"restores"`
	// Plan-cache counters: queries answered from a cached merged-prefix
	// plan (hits, including extensions of a shorter cached prefix),
	// queries that had to rebuild (misses), plans dropped because their
	// buckets changed identity (invalidations), plans dropped by the LRU
	// byte budget (evictions), and the cache's current footprint.
	PlanHits          int64 `json:"plan_hits"`
	PlanMisses        int64 `json:"plan_misses"`
	PlanInvalidations int64 `json:"plan_invalidations"`
	PlanEvictions     int64 `json:"plan_evictions"`
	PlanCacheBytes    int64 `json:"plan_cache_bytes"`
	PlanCacheEntries  int   `json:"plan_cache_entries"`
}

// Store is a concurrent, multi-tenant, time-bucketed sketch store. All
// methods are safe for concurrent use.
type Store struct {
	cfg Config

	mu     sync.RWMutex
	series map[Key]*series

	// plans memoizes merged sealed-bucket prefixes per (key, range
	// start); nil when the cache is disabled. See plan.go.
	plans *planCache

	// clock is monotonic across the store: lastNano prevents a stalled
	// producer from seeing time move backwards across buckets.
	adds      atomic.Int64
	rotations atomic.Int64
	evictions atomic.Int64
	queries   atomic.Int64
	snapshots atomic.Int64
	restores  atomic.Int64

	// onApply, when set, observes every applied ingest batch (the
	// serving layer's admission gate reconciles accepted work against
	// what actually landed through it).
	onApply atomic.Pointer[func(items int)]

	// obs, when set via Instrument, receives rotation and query timings.
	// The per-item ingest loop never touches it.
	obs atomic.Pointer[observer]
}

// OnApply registers fn to be called with the item count of every batch
// the store applies, after the batch has landed in its bucket. One hook
// is supported; registering again replaces it. The hook runs on the
// ingest path under the series lock, so it must be cheap and must not
// call back into the store.
func (st *Store) OnApply(fn func(items int)) {
	if fn == nil {
		st.onApply.Store(nil)
		return
	}
	st.onApply.Store(&fn)
}

// series is the per-key state: the current bucket's concurrent engine
// plus the ring of sealed (collapsed) buckets in ascending bucket order.
type series struct {
	// kind is fixed at series creation and never changes.
	kind Kind
	mu   sync.Mutex
	// cur is the engine of the current bucket (nil before the first add
	// after a restore).
	cur    *engine.Sharded
	curIdx int64
	// sealed holds collapsed historical buckets, ascending by index.
	sealed []bucket
	// scratch is the series' parked collapse target, checked out by
	// range queries (under mu) and returned via the collapsed release
	// hook, so repeated queries reuse one allocation instead of building
	// a fresh target each time. Only kinds whose targets implement
	// engine.Resetter park here.
	scratch engine.Sampler
	// touched is the LRU clock: unix nanos of the last add or query.
	touched atomic.Int64
}

// bucket is one sealed time bucket: a collapsed sampler covering
// [idx*width, (idx+1)*width).
type bucket struct {
	idx int64
	s   engine.Sampler
}

// New returns an empty store with cfg's zero fields defaulted.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		cfg:    cfg,
		series: make(map[Key]*series),
		plans:  newPlanCache(cfg.PlanCacheBytes),
	}
}

// Config returns the store's effective (defaulted) configuration.
func (st *Store) Config() Config { return st.cfg }

// factoryFor returns the engine factory for a bucket of the given kind
// at index idx. Shard index -1 builds collapse/merge targets. Bottom-k,
// distinct and decayed sketches hash priorities from keys and ignore
// idx; window samplers, varopt samplers and unbiased space-saving
// sketches draw from RNG streams, so every (bucket, shard) pair gets its
// own decorrelated stream — re-using one stream across buckets would
// correlate randomness within a range collapse that spans a rotation and
// bias the estimates. (For varopt and top-k the collapse target DOES
// consume randomness while merging; it uses bucket 0's spare seed, so
// repeated collapses of the same restored buckets stay bit-identical.)
func (st *Store) factoryFor(kind Kind, idx int64) engine.Factory {
	switch kind {
	case Distinct:
		return func(int) engine.Sampler {
			return engine.WrapDistinct(distinct.NewSketch(st.cfg.K, st.cfg.Seed))
		}
	case Window:
		seeds := stream.ForkSeeds(stream.Hash64(uint64(idx), st.cfg.Seed), st.cfg.Shards+1)
		return func(shard int) engine.Sampler {
			i := shard
			if i < 0 {
				// Collapse targets never draw priorities (they only
				// merge), so the spare seed is shared across buckets.
				i = st.cfg.Shards
			}
			return engine.WrapWindow(window.New(st.cfg.K, st.cfg.WindowDelta, seeds[i]))
		}
	case TopK:
		seeds := stream.ForkSeeds(stream.Hash64(uint64(idx), st.cfg.Seed^0x746f706b), st.cfg.Shards+1)
		return func(shard int) engine.Sampler {
			i := shard
			if i < 0 {
				i = st.cfg.Shards
			}
			return engine.WrapTopK(topk.NewUnbiasedSpaceSaving(st.cfg.K, seeds[i]))
		}
	case VarOpt:
		seeds := stream.ForkSeeds(stream.Hash64(uint64(idx), st.cfg.Seed^0x7661726f), st.cfg.Shards+1)
		return func(shard int) engine.Sampler {
			i := shard
			if i < 0 {
				i = st.cfg.Shards
			}
			return engine.WrapVarOpt(varopt.New(st.cfg.K, seeds[i]))
		}
	case Decay:
		return func(int) engine.Sampler {
			return engine.WrapDecayed(decay.New(st.cfg.K, st.cfg.DecayLambda, st.cfg.Seed))
		}
	case GroupBy:
		return func(int) engine.Sampler {
			return engine.WrapGroupBy(groupby.New(st.cfg.GroupM, st.cfg.K, st.cfg.Seed))
		}
	case Stratified:
		return func(int) engine.Sampler {
			return engine.WrapStratified(stratified.NewSampler(
				st.cfg.K, st.cfg.StratumK, st.cfg.StratifiedDims, st.cfg.Seed))
		}
	default:
		return func(int) engine.Sampler {
			return engine.WrapBottomK(bottomk.New(st.cfg.K, st.cfg.Seed))
		}
	}
}

// bucketIndex maps a wall-clock instant to its bucket index.
func (st *Store) bucketIndex(t time.Time) int64 {
	return t.UnixNano() / int64(st.cfg.BucketWidth)
}

// getOrCreate returns the series for key, creating it with the given
// kind (and evicting the LRU key if the store is at capacity) on first
// use. An existing series of a different kind is a kind mismatch.
func (st *Store) getOrCreate(key Key, kind Kind) (*series, error) {
	st.mu.RLock()
	s := st.series[key]
	st.mu.RUnlock()
	if s == nil {
		st.mu.Lock()
		if s = st.series[key]; s == nil {
			if st.cfg.MaxKeys > 0 && len(st.series) >= st.cfg.MaxKeys {
				st.evictLRULocked()
			}
			s = &series{kind: kind, curIdx: -1 << 62}
			// Stamp the LRU clock before the series becomes visible: a
			// zero touched value would make the brand-new key the
			// eviction victim of a concurrent create, orphaning the
			// caller's in-flight batch.
			s.touched.Store(st.cfg.Now().UnixNano())
			st.series[key] = s
		}
		st.mu.Unlock()
	}
	if s.kind != kind {
		return nil, fmt.Errorf("%w: %s/%s is %s, ingest wants %s",
			ErrKindMismatch, key.Namespace, key.Metric, s.kind, kind)
	}
	return s, nil
}

// evictLRULocked drops the least-recently-touched series. Caller holds
// the store write lock.
func (st *Store) evictLRULocked() {
	var victim Key
	oldest := int64(1<<63 - 1)
	for k, s := range st.series {
		if t := s.touched.Load(); t < oldest {
			oldest = t
			victim = k
		}
	}
	delete(st.series, victim)
	st.evictions.Add(1)
	if st.plans != nil {
		// A later series under the victim's key could regrow the same
		// bucket indices with different contents; its plans must not
		// outlive it.
		st.plans.invalidateKey(victim)
	}
}

// Add offers one item to (namespace, metric) at the store clock, under
// the store's default kind.
func (st *Store) Add(namespace, metric string, key uint64, weight, value float64) error {
	return st.AddBatchAt(namespace, metric, []engine.Item{{Key: key, Weight: weight, Value: value}}, st.cfg.Now())
}

// AddBatch offers a batch of items to (namespace, metric) at the store
// clock under the store's default kind, amortizing locks and rotation
// checks over the batch.
func (st *Store) AddBatch(namespace, metric string, items []engine.Item) error {
	return st.AddBatchAt(namespace, metric, items, st.cfg.Now())
}

// AddBatchAt is AddBatch with an explicit ingest instant, the
// deterministic entry point for tests and benchmarks.
func (st *Store) AddBatchAt(namespace, metric string, items []engine.Item, at time.Time) error {
	return st.AddBatchKindAt(namespace, metric, st.cfg.Kind, items, at)
}

// AddBatchKind offers a batch of items to (namespace, metric) at the
// store clock, creating the key with the given sketch kind on first
// write. Ingest into an existing key of a different kind returns
// ErrKindMismatch without touching the series.
func (st *Store) AddBatchKind(namespace, metric string, kind Kind, items []engine.Item) error {
	return st.AddBatchKindAt(namespace, metric, kind, items, st.cfg.Now())
}

// AddBatchKindAt is AddBatchKind with an explicit ingest instant. For
// Window series the items' Weight field is overwritten with the arrival
// time in unix seconds (the window sampler's time axis); for Decay
// series the Time field is stamped the same way (the decay axis);
// callers of the other kinds own every field.
func (st *Store) AddBatchKindAt(namespace, metric string, kind Kind, items []engine.Item, at time.Time) error {
	if len(items) == 0 {
		return nil
	}
	key := Key{Namespace: namespace, Metric: metric}
	s, err := st.getOrCreate(key, kind)
	if err != nil {
		return err
	}
	s.touched.Store(at.UnixNano())

	switch s.kind {
	case Window:
		secs := float64(at.UnixNano()) / float64(time.Second)
		for i := range items {
			items[i].Weight = secs
		}
	case Decay:
		secs := float64(at.UnixNano()) / float64(time.Second)
		for i := range items {
			items[i].Time = secs
		}
	}

	idx := st.bucketIndex(at)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil || idx > s.curIdx {
		st.rotateLocked(key, s, idx)
	}
	// A batch carrying an instant at or before the current bucket (clock
	// skew between producers) still lands in the current bucket: bucket
	// boundaries are approximate by design, and merging keeps estimates
	// unbiased regardless of which bucket an item landed in.
	s.cur.AddBatch(items)
	st.adds.Add(int64(len(items)))
	if fn := st.onApply.Load(); fn != nil {
		(*fn)(len(items))
	}
	return nil
}

// rotateLocked seals the current bucket (if any) and starts a fresh one
// at idx, pruning sealed buckets beyond the retention horizon. Caller
// holds the series lock. Sealing alone never invalidates cached plans —
// the new bucket lands after every cached prefix — but pruning drops
// the plans whose first bucket fell behind the horizon.
func (st *Store) rotateLocked(key Key, s *series, idx int64) {
	if s.cur != nil {
		ob := st.obs.Load()
		var start time.Time
		if ob != nil {
			start = time.Now()
		}
		collapsed, err := s.cur.Snapshot()
		if err != nil {
			// All buckets share one factory; merge cannot fail.
			panic("store: bucket collapse failed: " + err.Error())
		}
		s.sealed = append(s.sealed, bucket{idx: s.curIdx, s: collapsed})
		st.rotations.Add(1)
		if ob != nil {
			ob.rotation.Observe(time.Since(start))
		}
	}
	cut := idx - int64(st.cfg.Retention)
	drop := 0
	for drop < len(s.sealed) && s.sealed[drop].idx < cut {
		drop++
	}
	if drop > 0 {
		s.sealed = append(s.sealed[:0], s.sealed[drop:]...)
		if st.plans != nil {
			st.plans.invalidateBelow(key, cut)
		}
	}
	s.cur = engine.NewSharded(st.cfg.Shards, st.factoryFor(s.kind, idx))
	s.curIdx = idx
}

// TopKItem is one ranked entry of a top-k query result.
type TopKItem struct {
	Key uint64 `json:"key"`
	// Estimate is the unbiased estimate of the key's total appearances
	// in the queried range.
	Estimate float64 `json:"estimate"`
}

// GroupResult is one ranked entry of a grouped distinct-count query.
type GroupResult struct {
	Group uint64 `json:"group"`
	// DistinctEstimate is the estimated number of distinct keys the
	// group contributed over the queried range.
	DistinctEstimate float64 `json:"distinct_estimate"`
	// Dedicated reports whether the merged counter tracks the group with
	// a dedicated sketch (heavy group) or estimates it from the shared
	// pool.
	Dedicated bool `json:"dedicated,omitempty"`
}

// StratumResult is the per-stratum slice of a stratified query along one
// dimension.
type StratumResult struct {
	Label uint32 `json:"label"`
	// Sampled is the number of retained sample items in the stratum.
	Sampled int `json:"sampled"`
	// SumEstimate is the HT estimate of Σ value over the stratum, with
	// VarianceEstimate its unbiased variance estimate.
	SumEstimate      float64 `json:"sum_estimate"`
	CountEstimate    float64 `json:"count_estimate"`
	VarianceEstimate float64 `json:"variance_estimate"`
}

// Result is the answer to a range query, with the estimator fields of
// the series' kind populated.
type Result struct {
	Kind    string `json:"kind"`
	Buckets int    `json:"buckets"`
	// Sum and VarianceEstimate answer subset-sum queries (BottomK). Sum
	// is reused by TopK (the exact total count — USS conserves totals)
	// and by VarOpt (the weighted subset-sum HT estimate of Σ value).
	Sum              float64 `json:"sum,omitempty"`
	VarianceEstimate float64 `json:"variance_estimate,omitempty"`
	// DistinctEstimate answers cardinality queries (Distinct).
	DistinctEstimate float64 `json:"distinct_estimate,omitempty"`
	// CountEstimate is the HT estimate of the arrival count in the
	// merged window sample (Window).
	CountEstimate float64 `json:"count_estimate,omitempty"`
	// TopK ranks the heaviest keys with unbiased count estimates (TopK).
	TopK []TopKItem `json:"topk,omitempty"`
	// WeightSum is the unbiased estimate of the total weight offered
	// (VarOpt; the subset-sum-weighted response).
	WeightSum float64 `json:"weight_sum,omitempty"`
	// DecayedSum and DecayedCount are the exponentially time-decayed
	// value sum and population size, evaluated at AsOfUnix (Decay).
	DecayedSum   float64 `json:"decayed_sum,omitempty"`
	DecayedCount float64 `json:"decayed_count,omitempty"`
	AsOfUnix     int64   `json:"as_of_unix,omitempty"`
	// Groups ranks per-group distinct-count estimates and GroupCount is
	// the number of distinct groups observed (GroupBy).
	Groups     []GroupResult `json:"groups,omitempty"`
	GroupCount int           `json:"group_count,omitempty"`
	// Strata are the per-stratum estimates along dimension StratumDim;
	// Sum/VarianceEstimate carry the overall subset sum (Stratified).
	// StratumDim is a pointer so dimension 0 — the default — is still
	// emitted on the wire, while non-stratified results omit the field.
	Strata     []StratumResult `json:"strata,omitempty"`
	StratumDim *int            `json:"stratum_dim,omitempty"`
	// SampleSize and Threshold describe the merged sample. A bottom-k
	// (or decayed) sketch below capacity has an infinite threshold
	// (every item is retained and the estimate is exact); that state is
	// reported as Exact=true with Threshold 0 so the result stays
	// JSON-encodable. For TopK the threshold is the smallest tracked
	// counter; for VarOpt it is tau; for Decay it is the log-space
	// threshold.
	SampleSize int     `json:"sample_size"`
	Threshold  float64 `json:"threshold"`
	Exact      bool    `json:"exact,omitempty"`
	// Planned reports that the sealed prefix of this query was answered
	// from the plan cache (decoded, possibly extended) instead of
	// re-merging every sealed bucket. Planned and unplanned responses
	// are bit-identical apart from this marker.
	Planned bool `json:"planned,omitempty"`
}

// ErrUnknownKey reports a query for a key the store does not hold.
var ErrUnknownKey = errors.New("store: unknown key")

// ErrKindMismatch reports ingest into an existing key under a different
// sketch kind than the one the key was created with.
var ErrKindMismatch = errors.New("store: sketch kind mismatch")

// collapsed is the outcome of collapsing a query range: the merged
// sampler with the series kind and the number of buckets folded in,
// whether the sealed prefix came from a cached plan, and a release hook
// the caller must invoke once its estimators are done with out (it may
// park the sampler on the series for reuse). release is never nil.
type collapsed struct {
	out     engine.Sampler
	kind    Kind
	merged  int
	planned bool
	release func()
}

func noRelease() {}

// collapseRange merges every bucket overlapping [from, to] into one
// sampler, in ascending bucket order (current bucket last). The series
// lock is held for the duration: sealed sketches settle their internal
// representation during merges, so even read-style access must be
// exclusive per key.
//
// When the plan cache is enabled and the range covers at least two
// sealed buckets, the sealed prefix is memoized under (key, first
// sealed index): a repeated query decodes the cached canonical snapshot
// — exact bytes, including RNG state for the kinds whose targets draw
// randomness while merging — and merges only the buckets the plan does
// not cover (none, when the range is unchanged) plus the live bucket's
// snapshot. dim, when nonzero, is validated against the series before
// any merging so a bad dimension never pays for a collapse.
func (st *Store) collapseRange(key Key, from, to time.Time, dim int) (collapsed, error) {
	st.mu.RLock()
	s := st.series[key]
	st.mu.RUnlock()
	if s == nil {
		return collapsed{}, fmt.Errorf("%w: %s/%s", ErrUnknownKey, key.Namespace, key.Metric)
	}
	if dim != 0 {
		if s.kind != Stratified {
			return collapsed{}, fmt.Errorf("%w: %s series have no dimension %d", ErrBadDim, s.kind, dim)
		}
		if dim < 0 || dim >= st.cfg.StratifiedDims {
			return collapsed{}, fmt.Errorf("%w: dimension %d outside [0,%d)", ErrBadDim, dim, st.cfg.StratifiedDims)
		}
	}
	s.touched.Store(st.cfg.Now().UnixNano())
	fromIdx := st.bucketIndex(from)
	toIdx := st.bucketIndex(to)
	if to.Before(from) {
		return collapsed{}, fmt.Errorf("store: query range ends (%v) before it starts (%v)", to, from)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// The sealed buckets overlapping the range form one contiguous run
	// (sealed is ascending by index).
	lo := 0
	for lo < len(s.sealed) && s.sealed[lo].idx < fromIdx {
		lo++
	}
	hi := lo
	for hi < len(s.sealed) && s.sealed[hi].idx <= toIdx {
		hi++
	}
	overlap := s.sealed[lo:hi]

	c := collapsed{kind: s.kind, release: noRelease}
	start := 0 // overlap position the sealed merge loop continues from

	// Warm path: reuse the cached merged prefix for this (key, range
	// start), whole or extended with the buckets sealed since it was
	// built.
	var pk planKey
	plannable := st.plans != nil && len(overlap) >= 2
	if plannable {
		pk = planKey{key: key, lo: overlap[0].idx}
		if env, phi, pcount, ok := st.plans.lookup(pk); ok && pcount <= len(overlap) && overlap[pcount-1].idx == phi {
			dec, err := st.decodePlanInto(s, env)
			if err != nil {
				// An undecodable plan is useless; drop it, rebuild cold.
				st.plans.drop(pk)
			} else {
				c.out = dec
				c.planned = true
				c.merged = pcount
				start = pcount
			}
		}
		if c.planned {
			st.plans.hits.Add(1)
		} else {
			st.plans.misses.Add(1)
		}
	}

	if c.out == nil {
		// Cold path: check out the series' parked collapse target when
		// the kind supports reset-for-reuse, else build a fresh one.
		if r, ok := s.scratch.(engine.Resetter); ok {
			c.out = s.scratch
			s.scratch = nil
			r.Reset()
		} else {
			c.out = st.factoryFor(s.kind, 0)(-1)
		}
	}

	// Merge the remaining sealed buckets, settling the target at every
	// plan boundary: a target decoded from a cached prefix must continue
	// bit-identically to one that merged every bucket directly, so every
	// path compacts at the same points.
	settler, _ := c.out.(engine.Settler)
	for _, b := range overlap[start:] {
		if err := c.out.Merge(b.s); err != nil {
			return collapsed{}, fmt.Errorf("store: merging bucket %d: %w", b.idx, err)
		}
		if settler != nil {
			settler.Settle()
		}
		c.merged++
	}

	// Memoize the merged sealed prefix before the live bucket folds in.
	if plannable && start < len(overlap) {
		if env, err := encodePlan(c.out); err == nil {
			st.plans.store(pk, overlap[len(overlap)-1].idx, len(overlap), env)
		}
	}

	if s.cur != nil && s.curIdx >= fromIdx && s.curIdx <= toIdx {
		snap, err := s.cur.Snapshot()
		if err != nil {
			return collapsed{}, fmt.Errorf("store: collapsing current bucket: %w", err)
		}
		if err := c.out.Merge(snap); err != nil {
			return collapsed{}, fmt.Errorf("store: merging current bucket: %w", err)
		}
		c.merged++
	}

	if _, ok := c.out.(engine.Resetter); ok {
		out := c.out
		c.release = func() {
			s.mu.Lock()
			if s.scratch == nil {
				s.scratch = out
			}
			s.mu.Unlock()
		}
	}
	return c, nil
}

// defaultTopN bounds the ranking returned by Query for TopK series;
// QueryTopN takes an explicit bound.
const defaultTopN = 10

// ErrBadDim reports a stratified query naming a dimension the series
// does not have (or a grouped dimension on a kind without one).
var ErrBadDim = errors.New("store: bad group-by dimension")

// Query collapses the buckets of (namespace, metric) overlapping
// [from, to] via sketch merges and returns the series kind's estimates.
func (st *Store) Query(namespace, metric string, from, to time.Time) (Result, error) {
	return st.QueryTopN(namespace, metric, from, to, defaultTopN)
}

// QueryTopN is Query with an explicit bound on the ranking length
// (topn <= 0 means the default); the bound affects TopK rankings and
// GroupBy group rankings. Stratified series report dimension 0.
func (st *Store) QueryTopN(namespace, metric string, from, to time.Time, topn int) (Result, error) {
	return st.QueryGrouped(namespace, metric, from, to, topn, 0)
}

// QueryGrouped is QueryTopN with an explicit stratification dimension
// for Stratified series: the result's Strata slice describes dimension
// dim. Any dim other than 0 on a non-stratified series, or a dim outside
// the series' dimensionality, returns ErrBadDim.
// estScratches pools estimator scratch buffers across queries: the
// bottom-k estimate appends every sampled entry, and a per-query buffer
// would re-grow from empty on every query of the hot range-query path.
var estScratches = sync.Pool{New: func() any { return new(estimator.Scratch) }}

func (st *Store) QueryGrouped(namespace, metric string, from, to time.Time, topn, dim int) (Result, error) {
	st.queries.Add(1)
	ob := st.obs.Load()
	var qStart time.Time
	if ob != nil {
		qStart = time.Now()
	}
	// Dimension validation is pushed into collapseRange, which resolves
	// the series anyway: a bad dim on a long series must not pay for
	// (and then discard) a full merge, and the valid case must not pay
	// for a second key lookup.
	c, err := st.collapseRange(Key{Namespace: namespace, Metric: metric}, from, to, dim)
	if err != nil {
		return Result{}, err
	}
	defer c.release()
	out, kind, merged := c.out, c.kind, c.merged
	if topn <= 0 {
		topn = defaultTopN
	}
	res := Result{Kind: kind.String(), Buckets: merged, Planned: c.planned, Threshold: out.Threshold()}
	if math.IsInf(res.Threshold, 1) {
		res.Threshold, res.Exact = 0, true
	}
	switch kind {
	case Distinct:
		sk := out.(*engine.DistinctSampler).Sketch()
		res.DistinctEstimate = sk.Estimate()
		res.SampleSize = sk.SampleSize()
	case Window:
		sample := out.Sample()
		res.SampleSize = len(sample)
		if t := res.Threshold; t > 0 {
			res.CountEstimate = float64(len(sample)) / t
		}
	case TopK:
		sk := out.(*engine.TopKSampler).Sketch()
		res.Sum = float64(sk.SubsetSum(nil)) // exact: USS conserves totals
		res.SampleSize = sk.Len()
		for _, r := range sk.AppendTopK(nil, topn) {
			res.TopK = append(res.TopK, TopKItem{Key: r.Key, Estimate: float64(r.Estimate)})
		}
	case VarOpt:
		sk := out.(*engine.VarOptSampler).Sketch()
		res.Sum = sk.SubsetSum(nil)
		res.WeightSum = sk.EstimateWeight()
		res.SampleSize = sk.Len()
		res.Exact = sk.Tau() == 0 // below capacity: the sample is the stream
	case Decay:
		sk := out.(*engine.DecaySampler).Sketch()
		asOf := to
		if now := st.cfg.Now(); to.After(now) {
			// An open-ended range ("to = now or later") decays to the
			// present, not to the range's nominal end.
			asOf = now
		}
		t := float64(asOf.UnixNano()) / float64(time.Second)
		res.DecayedSum = sk.DecayedSum(t, nil)
		res.DecayedCount = sk.DecayedCount(t)
		res.AsOfUnix = asOf.Unix()
		res.SampleSize = sk.SampleSize()
	case GroupBy:
		sk := out.(*engine.GroupBySampler).Sketch()
		for _, ge := range sk.AppendGroupEstimates(nil, topn) {
			res.Groups = append(res.Groups, GroupResult{
				Group: ge.Group, DistinctEstimate: ge.Estimate, Dedicated: ge.Dedicated})
		}
		res.GroupCount = sk.Groups()
		res.SampleSize = sk.MemoryItems()
		// Threshold is Tmax, the shared pool's sampling rate; dedicated
		// heavy groups sample at their own (lower) thresholds, so Tmax=1
		// does not imply exactness and Exact is never claimed.
		res.Threshold, res.Exact = sk.Tmax(), false
	case Stratified:
		sk := out.(*engine.StratifiedSampler).Sketch()
		res.Sum, res.VarianceEstimate = sk.SubsetSum(nil)
		for _, ss := range sk.StratumStats(dim) {
			res.Strata = append(res.Strata, StratumResult{
				Label: ss.Label, Sampled: ss.Sampled, SumEstimate: ss.SumEstimate,
				CountEstimate: ss.CountEstimate, VarianceEstimate: ss.VarianceEstimate})
		}
		res.StratumDim = &dim
		res.SampleSize = sk.Len()
		// The generic inf-threshold inference above would claim exactness
		// whenever ANY stratum is still open (MaxThreshold is a max);
		// exact really means NO stratum has started subsampling.
		res.Exact = sk.Exact()
		if !res.Exact && math.IsInf(out.Threshold(), 1) {
			res.Threshold = 0 // mixed state: open strata alongside subsampled ones
		}
	default:
		sk := out.(*engine.BottomKSampler).Sketch()
		sc := estScratches.Get().(*estimator.Scratch)
		res.Sum, res.VarianceEstimate = sk.SubsetSumInto(nil, sc)
		estScratches.Put(sc)
		res.SampleSize = sk.SampleSize()
	}
	if ob != nil {
		ob.observeQuery(namespace, metric, merged, qStart)
	}
	return res, nil
}

// QuerySample collapses the covered buckets and returns the merged
// sample with pseudo-inclusion probabilities, for callers running their
// own estimators.
func (st *Store) QuerySample(namespace, metric string, from, to time.Time) ([]engine.Sample, error) {
	st.queries.Add(1)
	ob := st.obs.Load()
	var qStart time.Time
	if ob != nil {
		qStart = time.Now()
	}
	c, err := st.collapseRange(Key{Namespace: namespace, Metric: metric}, from, to, 0)
	if err != nil {
		return nil, err
	}
	sample := c.out.Sample()
	c.release()
	if ob != nil {
		ob.observeQuery(namespace, metric, c.merged, qStart)
	}
	return sample, nil
}

// KindOf returns the sketch kind of an existing key.
func (st *Store) KindOf(namespace, metric string) (Kind, error) {
	st.mu.RLock()
	s := st.series[Key{Namespace: namespace, Metric: metric}]
	st.mu.RUnlock()
	if s == nil {
		return 0, fmt.Errorf("%w: %s/%s", ErrUnknownKey, namespace, metric)
	}
	return s.kind, nil
}

// Keys returns the live keys, sorted by namespace then metric.
func (st *Store) Keys() []Key {
	st.mu.RLock()
	out := make([]Key, 0, len(st.series))
	for k := range st.series {
		out = append(out, k)
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Namespace != out[j].Namespace {
			return out[i].Namespace < out[j].Namespace
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// KeyInfo is one live key together with its sketch kind.
type KeyInfo struct {
	Key
	Kind Kind `json:"kind"`
}

// KeysInfo returns the live keys with their kinds, read in one pass
// under one lock, sorted by namespace then metric.
func (st *Store) KeysInfo() []KeyInfo {
	st.mu.RLock()
	out := make([]KeyInfo, 0, len(st.series))
	for k, s := range st.series {
		out = append(out, KeyInfo{Key: k, Kind: s.kind})
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Namespace != out[j].Namespace {
			return out[i].Namespace < out[j].Namespace
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// Stats returns a snapshot of the store's counters and gauges.
func (st *Store) Stats() Stats {
	s := Stats{
		Adds:      st.adds.Load(),
		Rotations: st.rotations.Load(),
		Evictions: st.evictions.Load(),
		Queries:   st.queries.Load(),
		Snapshots: st.snapshots.Load(),
		Restores:  st.restores.Load(),
	}
	if pc := st.plans; pc != nil {
		s.PlanHits = pc.hits.Load()
		s.PlanMisses = pc.misses.Load()
		s.PlanInvalidations = pc.invalidations.Load()
		s.PlanEvictions = pc.evictions.Load()
		s.PlanCacheBytes, s.PlanCacheEntries = pc.usage()
	}
	st.mu.RLock()
	snapshot := make([]*series, 0, len(st.series))
	for _, sr := range st.series {
		snapshot = append(snapshot, sr)
	}
	s.Keys = len(st.series)
	st.mu.RUnlock()
	for _, sr := range snapshot {
		sr.mu.Lock()
		s.Buckets += len(sr.sealed)
		if sr.cur != nil {
			s.Buckets++
		}
		sr.mu.Unlock()
	}
	return s
}
