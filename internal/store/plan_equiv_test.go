package store

// The plan-cache equivalence harness: a store with the plan cache
// enabled must be indistinguishable — bit for bit — from a twin with
// the cache disabled, at every step of a workload that interleaves
// ingest, rotation, retention pruning and repeated range queries across
// every sketch kind. "Indistinguishable" is checked two ways at each
// step: the JSON encoding of every query Result (after clearing the
// Planned marker, the one field allowed to differ) and the exact bytes
// of a whole-store snapshot.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"ats/internal/engine"
	"ats/internal/stream"
)

// planEquivConfig pins a shared synthetic clock; planBytes selects the
// twin (0 = default-enabled cache, negative = disabled).
func planEquivConfig(now *time.Time, planBytes int64) Config {
	return Config{
		K: 128, Seed: 9, BucketWidth: time.Minute, Retention: 8, Shards: 2,
		PlanCacheBytes: planBytes,
		Now:            func() time.Time { return *now },
	}
}

// planEquivItems builds one deterministic batch usable by every kind.
func planEquivItems(rng *stream.RNG, z *stream.Zipf, n int) []engine.Item {
	items := make([]engine.Item, n)
	for i := range items {
		w := 1 + 4*rng.Float64()
		key := z.Next()
		items[i] = engine.Item{Key: key, Weight: w, Value: w,
			Group:  key % 7,
			Strata: []uint32{uint32(key % 5), uint32(key % 3)}}
	}
	return items
}

// checkPlanEquiv queries both twins twice (cold-or-extended, then
// certainly-warm) and fails unless all responses agree bit-identically.
// liveIn is the number of non-sealed buckets the range covers (the
// current bucket, when included): Buckets minus liveIn is the sealed
// overlap, and a repeated query over >= 2 sealed buckets must be
// answered from the plan cache.
func checkPlanEquiv(t *testing.T, enabled, disabled *Store, metric string, from, to time.Time, dim, liveIn int, ctx string) {
	t.Helper()
	run := func(st *Store) Result {
		res, err := st.QueryGrouped("plan", metric, from, to, 0, dim)
		if err != nil {
			t.Fatalf("%s: query %s: %v", ctx, metric, err)
		}
		return res
	}
	e1, d1 := run(enabled), run(disabled)
	e2, d2 := run(enabled), run(disabled)
	if d1.Planned || d2.Planned {
		t.Fatalf("%s: %s: disabled store reported a planned query", ctx, metric)
	}
	sealed := e1.Buckets - liveIn
	if sealed >= 2 && !e2.Planned {
		t.Fatalf("%s: %s: repeated query over %d sealed buckets was not planned", ctx, metric, sealed)
	}
	if sealed < 2 && e2.Planned {
		t.Fatalf("%s: %s: query over %d sealed buckets claimed a plan", ctx, metric, sealed)
	}
	for i, pair := range [][2]Result{{e1, d1}, {e2, d2}} {
		ea, da := pair[0], pair[1]
		ea.Planned = false
		ja, err := json.Marshal(ea)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(da)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s: %s: response %d diverges\n  enabled:  %s\n  disabled: %s", ctx, metric, i+1, ja, jb)
		}
	}
}

// TestPlanCacheEquivalence drives 14 buckets of seeded ingest across all
// 8 kinds (rotation every bucket, retention pruning from bucket 9 on)
// through a cache-enabled store and a cache-disabled twin, asserting at
// every step that repeated range queries — full-range, mid-range-start,
// and sealed-only — return bit-identical results and that the two
// stores' snapshots stay byte-identical. It then proves the restored
// store (empty plan cache) re-converges: cold queries after Restore
// still match the twin, and repeats are planned again.
func TestPlanCacheEquivalence(t *testing.T) {
	now := epoch
	enabled := New(planEquivConfig(&now, 0))
	disabled := New(planEquivConfig(&now, -1))

	rng := stream.NewRNG(23)
	z := stream.NewZipf(400, 1.2, 24)

	const buckets = 14
	for bucketN := 0; bucketN < buckets; bucketN++ {
		items := planEquivItems(rng, z, 600)
		for _, kind := range Kinds() {
			for _, st := range []*Store{enabled, disabled} {
				// Each store gets its own copy: Window/Decay ingest stamps
				// the items' time fields in place.
				batch := make([]engine.Item, len(items))
				copy(batch, items)
				if err := st.AddBatchKindAt("plan", "m-"+kind.String(), kind, batch, now); err != nil {
					t.Fatalf("bucket %d, kind %s: %v", bucketN, kind, err)
				}
			}
		}

		for _, kind := range Kinds() {
			metric := "m-" + kind.String()
			ctx := fmt.Sprintf("bucket %d", bucketN)
			// Full range: all sealed buckets plus the live one.
			checkPlanEquiv(t, enabled, disabled, metric, epoch, now.Add(time.Minute), 0, 1, ctx+" full")
			// Mid-range start: a distinct (key, lo) plan.
			if bucketN >= 2 {
				checkPlanEquiv(t, enabled, disabled, metric, epoch.Add(2*time.Minute), now.Add(time.Minute), 0, 1, ctx+" mid")
			}
			// Sealed-only range: exercises plans with no live merge.
			if bucketN >= 1 {
				checkPlanEquiv(t, enabled, disabled, metric, epoch, now.Add(-time.Minute), 0, 0, ctx+" sealed")
			}
			if kind == Stratified {
				checkPlanEquiv(t, enabled, disabled, metric, epoch, now.Add(time.Minute), 1, 1, ctx+" dim1")
			}
		}

		var se, sd bytes.Buffer
		if err := enabled.Snapshot(&se); err != nil {
			t.Fatal(err)
		}
		if err := disabled.Snapshot(&sd); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(se.Bytes(), sd.Bytes()) {
			t.Fatalf("bucket %d: snapshots diverge (%d vs %d bytes)", bucketN, se.Len(), sd.Len())
		}

		now = now.Add(time.Minute)
	}

	es, ds := enabled.Stats(), disabled.Stats()
	if es.PlanHits == 0 || es.PlanMisses == 0 || es.PlanInvalidations == 0 {
		t.Fatalf("enabled plan stats did not move: %+v", es)
	}
	if es.PlanCacheEntries == 0 || es.PlanCacheBytes == 0 {
		t.Fatalf("plan cache empty after warm queries: %+v", es)
	}
	if ds.PlanHits != 0 || ds.PlanMisses != 0 || ds.PlanCacheEntries != 0 {
		t.Fatalf("disabled store has plan activity: %+v", ds)
	}

	// Restore continuation: the restored store starts with an empty plan
	// cache, must answer cold exactly like the long-lived disabled twin,
	// and re-warms.
	var snap bytes.Buffer
	if err := enabled.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored := New(planEquivConfig(&now, 0))
	if err := restored.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	if rs := restored.Stats(); rs.PlanCacheEntries != 0 {
		t.Fatalf("restored store has %d cached plans", rs.PlanCacheEntries)
	}
	for _, kind := range Kinds() {
		metric := "m-" + kind.String()
		// The restored store holds only sealed buckets (no live bucket
		// until the next ingest), so the full range has liveIn 0.
		checkPlanEquiv(t, restored, disabled, metric, epoch, now, 0, 0, "restored full")
	}
}
