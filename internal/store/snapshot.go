package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"ats/internal/codec"
	"ats/internal/engine"
)

// Snapshot stream format (little-endian):
//
//	magic   uint32  "ATSS"
//	version uint8   3
//	kind    uint8   the store's DEFAULT kind
//	k       uint32
//	seed    uint64
//	width   int64   bucket width in nanoseconds
//	delta   float64 sliding-window length in seconds (Window series)
//	lambda  float64 decay rate per second (Decay series; v2+)
//	groupM  uint32  dedicated sketches of GroupBy series (v3+)
//	stratK  uint32  per-stratum bottom-k of Stratified series (v3+)
//	sdims   uint32  dimensions of Stratified series (v3+)
//	series records, each:
//	  marker      uint8  1
//	  kind        uint8  the series' sketch kind (v2+)
//	  nsLen       uint16, namespace bytes
//	  metricLen   uint16, metric bytes
//	  bucketCount uint32
//	  buckets, each: idx int64, then one self-describing codec envelope
//	marker uint8 0 (end of stream)
//
// Version 1 streams (no lambda field, no per-series kind byte: every
// series is the header kind) and version 2 streams (no groupM/stratK/
// sdims fields) are still readable; Snapshot always writes version 3.
//
// Every bucket payload goes through the universal codec registry, so the
// stream stays decodable as sketch kinds evolve: the envelope names the
// codec, the store only supplies framing. Restore cross-checks each
// envelope's codec name against the series' kind, so a stream whose
// framing and payloads disagree is rejected instead of silently
// mis-typed.

const (
	snapMagic   = 0x41545353 // "ATSS"
	snapVersion = 3
)

var (
	// ErrSnapshotCorrupt reports malformed snapshot framing.
	ErrSnapshotCorrupt = errors.New("store: corrupt snapshot")
	// ErrSnapshotConfig reports a snapshot whose sketch configuration
	// does not match the restoring store's.
	ErrSnapshotConfig = errors.New("store: snapshot configuration mismatch")
	// ErrNotEmpty reports a Restore into a store that already has keys.
	ErrNotEmpty = errors.New("store: restore requires an empty store")
)

// maxKeyLen bounds namespace/metric lengths in snapshots (they are
// uint16-framed on the wire anyway; this guards the encoder).
const maxKeyLen = 1<<16 - 1

// Snapshot serializes the entire keyspace to w: every sealed bucket plus
// the current bucket of every key (collapsed), each as one codec
// envelope. Writers may run concurrently — each key is locked only while
// its buckets are written, so the snapshot is per-key consistent, the
// same guarantee the engine's Snapshot gives per shard.
func (st *Store) Snapshot(w io.Writer) error {
	st.snapshots.Add(1)
	bw := bufio.NewWriter(w)

	head := binary.LittleEndian.AppendUint32(nil, snapMagic)
	head = append(head, snapVersion, uint8(st.cfg.Kind))
	head = binary.LittleEndian.AppendUint32(head, uint32(st.cfg.K))
	head = binary.LittleEndian.AppendUint64(head, st.cfg.Seed)
	head = binary.LittleEndian.AppendUint64(head, uint64(st.cfg.BucketWidth))
	head = binary.LittleEndian.AppendUint64(head, math.Float64bits(st.cfg.WindowDelta))
	head = binary.LittleEndian.AppendUint64(head, math.Float64bits(st.cfg.DecayLambda))
	head = binary.LittleEndian.AppendUint32(head, uint32(st.cfg.GroupM))
	head = binary.LittleEndian.AppendUint32(head, uint32(st.cfg.StratumK))
	head = binary.LittleEndian.AppendUint32(head, uint32(st.cfg.StratifiedDims))
	if _, err := bw.Write(head); err != nil {
		return err
	}

	for _, key := range st.Keys() {
		st.mu.RLock()
		s := st.series[key]
		st.mu.RUnlock()
		if s == nil {
			continue // evicted since Keys()
		}
		if err := st.writeSeries(bw, key, s); err != nil {
			return err
		}
	}
	if err := bw.WriteByte(0); err != nil {
		return err
	}
	return bw.Flush()
}

func (st *Store) writeSeries(bw *bufio.Writer, key Key, s *series) error {
	if len(key.Namespace) > maxKeyLen || len(key.Metric) > maxKeyLen {
		return fmt.Errorf("store: key %q/%q exceeds frame limit", key.Namespace, key.Metric)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	buckets := make([]bucket, 0, len(s.sealed)+1)
	buckets = append(buckets, s.sealed...)
	if s.cur != nil {
		collapsed, err := s.cur.Snapshot()
		if err != nil {
			return fmt.Errorf("store: collapsing current bucket of %s/%s: %w", key.Namespace, key.Metric, err)
		}
		buckets = append(buckets, bucket{idx: s.curIdx, s: collapsed})
	}

	if err := bw.WriteByte(1); err != nil {
		return err
	}
	frame := []byte{uint8(s.kind)}
	frame = binary.LittleEndian.AppendUint16(frame, uint16(len(key.Namespace)))
	frame = append(frame, key.Namespace...)
	frame = binary.LittleEndian.AppendUint16(frame, uint16(len(key.Metric)))
	frame = append(frame, key.Metric...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(buckets)))
	if _, err := bw.Write(frame); err != nil {
		return err
	}
	for _, b := range buckets {
		sm, ok := b.s.(engine.SnapshotMarshaler)
		if !ok {
			return fmt.Errorf("store: %T does not support serialization", b.s)
		}
		payload, err := sm.MarshalBinary()
		if err != nil {
			return err
		}
		env, err := codec.Envelope(sm.CodecName(), payload)
		if err != nil {
			return err
		}
		var idx [8]byte
		binary.LittleEndian.PutUint64(idx[:], uint64(b.idx))
		if _, err := bw.Write(idx[:]); err != nil {
			return err
		}
		if _, err := bw.Write(env); err != nil {
			return err
		}
	}
	return nil
}

// Restore loads a snapshot written by Snapshot into an empty store whose
// configuration (default kind, k, seed, bucket width, window delta,
// decay lambda) matches the snapshot's. Restored buckets are all sealed;
// ingest after a restore opens fresh current buckets and merges
// seamlessly with the restored history.
func (st *Store) Restore(r io.Reader) error {
	st.mu.Lock()
	if len(st.series) != 0 {
		st.mu.Unlock()
		return ErrNotEmpty
	}
	st.mu.Unlock()

	br := bufio.NewReader(r)
	var head [34]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return fmt.Errorf("%w: header: %v", ErrSnapshotCorrupt, err)
	}
	if binary.LittleEndian.Uint32(head[:]) != snapMagic {
		return fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	version := head[4]
	if version < 1 || version > snapVersion {
		return fmt.Errorf("%w: version %d", ErrSnapshotCorrupt, version)
	}
	if Kind(head[5]) != st.cfg.Kind {
		return fmt.Errorf("%w: snapshot kind %s, store kind %s", ErrSnapshotConfig, Kind(head[5]), st.cfg.Kind)
	}
	if k := int(binary.LittleEndian.Uint32(head[6:])); k != st.cfg.K {
		return fmt.Errorf("%w: snapshot k=%d, store k=%d", ErrSnapshotConfig, k, st.cfg.K)
	}
	if seed := binary.LittleEndian.Uint64(head[10:]); seed != st.cfg.Seed {
		return fmt.Errorf("%w: snapshot seed %d, store seed %d", ErrSnapshotConfig, seed, st.cfg.Seed)
	}
	if w := int64(binary.LittleEndian.Uint64(head[18:])); w != int64(st.cfg.BucketWidth) {
		return fmt.Errorf("%w: snapshot bucket width %d, store %d", ErrSnapshotConfig, w, int64(st.cfg.BucketWidth))
	}
	if delta := math.Float64frombits(binary.LittleEndian.Uint64(head[26:])); delta != st.cfg.WindowDelta {
		// A delta mismatch would not fail until the first range query
		// tries to merge restored window buckets; reject it up front.
		return fmt.Errorf("%w: snapshot window delta %v, store %v", ErrSnapshotConfig, delta, st.cfg.WindowDelta)
	}
	if version >= 2 {
		var lam [8]byte
		if _, err := io.ReadFull(br, lam[:]); err != nil {
			return fmt.Errorf("%w: header: %v", ErrSnapshotCorrupt, err)
		}
		if lambda := math.Float64frombits(binary.LittleEndian.Uint64(lam[:])); lambda != st.cfg.DecayLambda {
			return fmt.Errorf("%w: snapshot decay lambda %v, store %v", ErrSnapshotConfig, lambda, st.cfg.DecayLambda)
		}
	}
	if version >= 3 {
		var grp [12]byte
		if _, err := io.ReadFull(br, grp[:]); err != nil {
			return fmt.Errorf("%w: header: %v", ErrSnapshotCorrupt, err)
		}
		if m := int(binary.LittleEndian.Uint32(grp[:])); m != st.cfg.GroupM {
			return fmt.Errorf("%w: snapshot group m=%d, store %d", ErrSnapshotConfig, m, st.cfg.GroupM)
		}
		if sk := int(binary.LittleEndian.Uint32(grp[4:])); sk != st.cfg.StratumK {
			return fmt.Errorf("%w: snapshot stratum k=%d, store %d", ErrSnapshotConfig, sk, st.cfg.StratumK)
		}
		if d := int(binary.LittleEndian.Uint32(grp[8:])); d != st.cfg.StratifiedDims {
			return fmt.Errorf("%w: snapshot stratified dims=%d, store %d", ErrSnapshotConfig, d, st.cfg.StratifiedDims)
		}
	}

	restored := make(map[Key]*series)
	for {
		marker, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: missing end marker: %v", ErrSnapshotCorrupt, err)
		}
		if marker == 0 {
			break
		}
		if marker != 1 {
			return fmt.Errorf("%w: bad series marker %d", ErrSnapshotCorrupt, marker)
		}
		kind := st.cfg.Kind
		if version >= 2 {
			kb, err := br.ReadByte()
			if err != nil {
				return fmt.Errorf("%w: series kind: %v", ErrSnapshotCorrupt, err)
			}
			if kb > uint8(Stratified) {
				return fmt.Errorf("%w: unknown series kind %d", ErrSnapshotCorrupt, kb)
			}
			kind = Kind(kb)
		}
		key, s, err := st.readSeries(br, kind)
		if err != nil {
			return err
		}
		if _, dup := restored[key]; dup {
			return fmt.Errorf("%w: duplicate key %s/%s", ErrSnapshotCorrupt, key.Namespace, key.Metric)
		}
		restored[key] = s
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.series) != 0 {
		return ErrNotEmpty
	}
	st.series = restored
	st.restores.Add(1)
	if st.plans != nil {
		// Restore replaces the whole keyspace; no cached plan can name
		// the restored buckets. (Restore requires an empty store, but
		// evicted series may have raced plans in before emptiness was
		// checked.)
		st.plans.invalidateAll()
	}
	return nil
}

func (st *Store) readSeries(br *bufio.Reader, kind Kind) (Key, *series, error) {
	readString := func() (string, error) {
		var n [2]byte
		if _, err := io.ReadFull(br, n[:]); err != nil {
			return "", err
		}
		buf := make([]byte, binary.LittleEndian.Uint16(n[:]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	ns, err := readString()
	if err != nil {
		return Key{}, nil, fmt.Errorf("%w: namespace: %v", ErrSnapshotCorrupt, err)
	}
	metric, err := readString()
	if err != nil {
		return Key{}, nil, fmt.Errorf("%w: metric: %v", ErrSnapshotCorrupt, err)
	}
	key := Key{Namespace: ns, Metric: metric}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return Key{}, nil, fmt.Errorf("%w: bucket count: %v", ErrSnapshotCorrupt, err)
	}
	// The count is only a loop bound — each iteration reads a
	// length-checked envelope — so a huge claimed count cannot force a
	// huge allocation, it just runs the reader into EOF.
	count := int(binary.LittleEndian.Uint32(cnt[:]))
	s := &series{kind: kind, curIdx: -1 << 62}
	lastIdx := int64(math.MinInt64)
	for i := 0; i < count; i++ {
		var idxBuf [8]byte
		if _, err := io.ReadFull(br, idxBuf[:]); err != nil {
			return Key{}, nil, fmt.Errorf("%w: bucket index: %v", ErrSnapshotCorrupt, err)
		}
		idx := int64(binary.LittleEndian.Uint64(idxBuf[:]))
		if idx < lastIdx {
			return Key{}, nil, fmt.Errorf("%w: bucket indices out of order (%d after %d)", ErrSnapshotCorrupt, idx, lastIdx)
		}
		lastIdx = idx
		name, v, err := codec.Read(br)
		if err != nil {
			return Key{}, nil, fmt.Errorf("store: bucket %d of %s/%s: %w", idx, ns, metric, err)
		}
		if name != kindCodecName(kind) {
			return Key{}, nil, fmt.Errorf("%w: bucket codec %q in a %s series", ErrSnapshotConfig, name, kind)
		}
		sampler, err := engine.WrapDecoded(name, v)
		if err != nil {
			return Key{}, nil, err
		}
		s.sealed = append(s.sealed, bucket{idx: idx, s: sampler})
	}
	return key, s, nil
}

// kindCodecName maps a sketch kind to its registered codec name.
func kindCodecName(kind Kind) string {
	switch kind {
	case Distinct:
		return codec.NameDistinct
	case Window:
		return codec.NameWindow
	case TopK:
		return codec.NameTopK
	case VarOpt:
		return codec.NameVarOpt
	case Decay:
		return codec.NameDecay
	case GroupBy:
		return codec.NameGroupBy
	case Stratified:
		return codec.NameStratified
	default:
		return codec.NameBottomK
	}
}
