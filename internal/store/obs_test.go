package store

import (
	"log/slog"
	"strings"
	"testing"
	"time"

	"ats/internal/engine"
	"ats/internal/obs"
)

// TestInstrumentedStore drives rotations and queries through an
// instrumented store and checks the histograms, the merge-width value
// histogram, and the threshold-gated slow-query log line.
func TestInstrumentedStore(t *testing.T) {
	epoch := time.Unix(1_700_000_000, 0)
	now := epoch
	st := New(Config{Kind: BottomK, K: 32, Seed: 1, BucketWidth: time.Minute, Retention: 100,
		Now: func() time.Time { return now }})

	reg := obs.NewRegistry()
	var logBuf strings.Builder
	lg, err := obs.NewLogger(&logBuf, "text", "")
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 0ns... use 1ns so every query counts as slow: the gate
	// logic is what's under test, not wall-clock behavior.
	st.Instrument(reg, lg, time.Nanosecond)

	const buckets = 5
	for b := 0; b < buckets; b++ {
		at := epoch.Add(time.Duration(b) * time.Minute)
		items := []engine.Item{{Key: uint64(b), Weight: 1, Value: 1}}
		if err := st.AddBatchAt("ns", "m", items, at); err != nil {
			t.Fatal(err)
		}
	}
	// buckets-1 rotations happened (first add creates, no seal).
	if h := reg.FindHistogram("ats_store_rotation_seconds"); h == nil || h.Count() != buckets-1 {
		t.Fatalf("rotation histogram count = %v, want %d", h, buckets-1)
	}

	if _, err := st.Query("ns", "m", epoch, epoch.Add(buckets*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if h := reg.FindHistogram("ats_store_query_seconds"); h == nil || h.Count() != 1 {
		t.Fatal("query duration not recorded")
	}
	mw := reg.FindHistogram("ats_store_query_merge_buckets")
	if mw == nil {
		t.Fatal("merge-width histogram not registered")
	}
	// The query covered 4 sealed buckets + the current one = 5 merged;
	// the value histogram's sum is the raw merged count.
	if s := mw.Snapshot(); s.Count != 1 || s.Sum != buckets {
		t.Fatalf("merge width snapshot = %+v, want count 1 sum %d", s, buckets)
	}

	out := logBuf.String()
	for _, want := range []string{"slow query", "namespace=ns", "metric=m", "merged_buckets=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query log missing %q: %q", want, out)
		}
	}

	// Counter funcs must agree with Stats().
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	for _, want := range []string{
		"ats_store_adds_total 5",
		"ats_store_rotations_total 4",
		"ats_store_queries_total 1",
		"ats_store_keys 1",
		"ats_store_slow_queries_total 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q (stats %+v):\n%s", want, stats, b.String())
		}
	}

	// Disabled slow-query log (slowAfter <= 0) keeps metrics flowing but
	// never logs.
	var quiet strings.Builder
	qlg := slog.New(slog.NewTextHandler(&quiet, nil))
	st2 := New(Config{Kind: BottomK, K: 32, Seed: 1, Now: func() time.Time { return now }})
	reg2 := obs.NewRegistry()
	st2.Instrument(reg2, qlg, 0)
	if err := st2.AddBatch("ns", "m", []engine.Item{{Key: 1, Weight: 1, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Query("ns", "m", epoch.Add(-time.Minute), epoch.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if quiet.Len() != 0 {
		t.Errorf("slow-query log emitted with threshold disabled: %q", quiet.String())
	}
	if h := reg2.FindHistogram("ats_store_query_seconds"); h == nil || h.Count() != 1 {
		t.Error("metrics stopped flowing with slow log disabled")
	}
}
