package store

import (
	"log/slog"
	"sync/atomic"
	"time"

	"ats/internal/obs"
)

// observer bundles the metric handles the store records into. It lives
// behind an atomic pointer so the uninstrumented store pays exactly one
// nil-check on the paths that would record — nothing on the per-item
// ingest path, which is the <5%-overhead budget's hot loop.
type observer struct {
	rotation   *obs.Histogram
	query      *obs.Histogram
	mergeWidth *obs.Histogram
	slowTotal  *obs.Counter
	log        *slog.Logger
	slowAfter  time.Duration
}

// Instrument registers the store's metrics with reg and enables
// recording: bucket rotation durations, range-query durations, the
// merge fan-in width of each range query, and scrape-time views of the
// store counters. When log is non-nil, queries slower than slowAfter
// additionally emit one structured log line naming the series and the
// merge width (slowAfter <= 0 disables the log, not the metrics).
// Instrument is not a hot-path call; use it once at boot.
func (st *Store) Instrument(reg *obs.Registry, log *slog.Logger, slowAfter time.Duration) {
	if reg == nil {
		st.obs.Store(nil)
		return
	}
	ob := &observer{
		rotation:   reg.Histogram("ats_store_rotation_seconds", "Bucket seal (collapse) durations."),
		query:      reg.Histogram("ats_store_query_seconds", "Range query durations, collapse through estimation."),
		mergeWidth: reg.ValueHistogram("ats_store_query_merge_buckets", "Buckets merged per range query (fan-in width)."),
		slowTotal:  reg.Counter("ats_store_slow_queries_total", "Range queries slower than the slow-query threshold."),
		slowAfter:  slowAfter,
	}
	if slowAfter > 0 {
		ob.log = log
	}
	fromAtomic := func(a *atomic.Int64) func() int64 { return a.Load }
	reg.CounterFunc("ats_store_adds_total", "Items applied to the store.", fromAtomic(&st.adds))
	reg.CounterFunc("ats_store_rotations_total", "Bucket rotations (seals).", fromAtomic(&st.rotations))
	reg.CounterFunc("ats_store_evictions_total", "LRU key evictions.", fromAtomic(&st.evictions))
	reg.CounterFunc("ats_store_queries_total", "Range queries served.", fromAtomic(&st.queries))
	reg.CounterFunc("ats_store_snapshots_total", "Store snapshots written.", fromAtomic(&st.snapshots))
	reg.CounterFunc("ats_store_restores_total", "Store snapshots restored.", fromAtomic(&st.restores))
	reg.GaugeFunc("ats_store_keys", "Live series keys.", func() int64 {
		st.mu.RLock()
		defer st.mu.RUnlock()
		return int64(len(st.series))
	})
	if pc := st.plans; pc != nil {
		reg.CounterFunc("ats_store_plan_hits_total", "Range queries whose sealed prefix came from the plan cache.", fromAtomic(&pc.hits))
		reg.CounterFunc("ats_store_plan_misses_total", "Range queries that rebuilt their sealed prefix cold.", fromAtomic(&pc.misses))
		reg.CounterFunc("ats_store_plan_invalidations_total", "Cached plans dropped by pruning, eviction or restore.", fromAtomic(&pc.invalidations))
		reg.CounterFunc("ats_store_plan_evictions_total", "Cached plans evicted by the byte-budget LRU.", fromAtomic(&pc.evictions))
		reg.GaugeFunc("ats_store_plan_cache_bytes", "Bytes held by the plan cache.", func() int64 {
			b, _ := pc.usage()
			return b
		})
		reg.GaugeFunc("ats_store_plan_cache_entries", "Plans held by the plan cache.", func() int64 {
			_, n := pc.usage()
			return int64(n)
		})
	}
	st.obs.Store(ob)
}

// observeQuery records one finished range query: duration, merge
// fan-in, and the threshold-gated slow-query log line.
func (ob *observer) observeQuery(namespace, metric string, merged int, start time.Time) {
	elapsed := time.Since(start)
	ob.query.Observe(elapsed)
	ob.mergeWidth.ObserveValue(int64(merged))
	if ob.slowAfter > 0 && elapsed >= ob.slowAfter {
		ob.slowTotal.Inc()
		if ob.log != nil {
			ob.log.Warn("slow query",
				"namespace", namespace,
				"metric", metric,
				"merged_buckets", merged,
				"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
		}
	}
}
