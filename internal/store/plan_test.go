package store

// Plan-cache lifecycle tests: each mutation that can change which
// buckets a (key, lo) pair names must invalidate exactly the affected
// plans — rotation none, retention pruning the plans behind the
// horizon, series eviction the victim's plans, Restore all of them —
// plus the byte-budget LRU and a concurrency hammer.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func planTestConfig(now *time.Time, retention, maxKeys int, planBytes int64) Config {
	return Config{
		K: 32, Seed: 5, BucketWidth: time.Minute, Retention: retention,
		MaxKeys: maxKeys, PlanCacheBytes: planBytes,
		Now: func() time.Time { return *now },
	}
}

func planIngest(t *testing.T, st *Store, metric string, bucketN int, seed uint64) {
	t.Helper()
	at := epoch.Add(time.Duration(bucketN) * time.Minute)
	if err := st.AddBatchAt("ns", metric, zipfItems(200, seed), at); err != nil {
		t.Fatal(err)
	}
}

// TestPlanRotationExtendsPlans: sealing a new bucket invalidates
// nothing — the cached prefix stays valid and the next query extends it
// instead of rebuilding.
func TestPlanRotationExtendsPlans(t *testing.T) {
	now := epoch
	st := New(planTestConfig(&now, 16, 0, 0))
	for b := 0; b < 4; b++ {
		planIngest(t, st, "m", b, uint64(b)+1)
	}
	now = epoch.Add(4 * time.Minute)

	res, err := st.Query("ns", "m", epoch, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.Planned {
		t.Fatal("first query claimed a plan")
	}

	// Rotate: bucket 3 seals, bucket 4 opens.
	planIngest(t, st, "m", 4, 5)
	now = epoch.Add(5 * time.Minute)

	res, err = st.Query("ns", "m", epoch, now)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Planned {
		t.Fatal("post-rotation query did not extend the cached plan")
	}
	if res.Buckets != 5 {
		t.Fatalf("merged %d buckets, want 5", res.Buckets)
	}
	s := st.Stats()
	if s.PlanInvalidations != 0 {
		t.Fatalf("rotation invalidated %d plans, want 0", s.PlanInvalidations)
	}
	if s.PlanHits != 1 || s.PlanMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", s.PlanHits, s.PlanMisses)
	}
}

// TestPlanRetentionPruneInvalidates: pruning drops exactly the plans
// whose first bucket fell behind the horizon.
func TestPlanRetentionPruneInvalidates(t *testing.T) {
	now := epoch
	st := New(planTestConfig(&now, 3, 0, 0))
	for b := 0; b < 4; b++ {
		planIngest(t, st, "m", b, uint64(b)+1)
	}
	now = epoch.Add(4 * time.Minute)
	if _, err := st.Query("ns", "m", epoch, now); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.PlanCacheEntries != 1 {
		t.Fatalf("cached %d plans, want 1", s.PlanCacheEntries)
	}

	// Jump to bucket 7: the rotation prunes every sealed bucket behind
	// cut = 7 - 3, taking the cached plan (lo = bucket 0) with it.
	planIngest(t, st, "m", 7, 8)
	now = epoch.Add(8 * time.Minute)
	s := st.Stats()
	if s.PlanInvalidations != 1 {
		t.Fatalf("prune invalidated %d plans, want 1", s.PlanInvalidations)
	}
	if s.PlanCacheEntries != 0 {
		t.Fatalf("stale plans survive the prune: %d entries", s.PlanCacheEntries)
	}
}

// TestPlanSeriesEvictionInvalidates: LRU key eviction purges the
// victim's plans, so a re-created series at the same bucket indices is
// answered from its own data, never a stale plan.
func TestPlanSeriesEvictionInvalidates(t *testing.T) {
	now := epoch
	st := New(planTestConfig(&now, 16, 2, 0))
	for b := 0; b < 3; b++ {
		planIngest(t, st, "a", b, uint64(b)+1)
	}
	// Cache a plan for a's sealed prefix.
	if _, err := st.Query("ns", "a", epoch, epoch.Add(3*time.Minute)); err != nil {
		t.Fatal(err)
	}
	// b is touched later than a's query, then c evicts a.
	planIngest(t, st, "b", 5, 9)
	planIngest(t, st, "c", 6, 10)
	s := st.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.PlanInvalidations == 0 || s.PlanCacheEntries != 0 {
		t.Fatalf("victim's plans survive eviction: %+v", s)
	}

	// Re-create a at the same bucket indices with DIFFERENT data; the
	// answer must match a fresh store fed only the new data.
	for b := 0; b < 3; b++ {
		planIngest(t, st, "a", b, uint64(b)+100)
	}
	got, err := st.Query("ns", "a", epoch, epoch.Add(3*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(planTestConfig(&now, 16, 2, 0))
	for b := 0; b < 3; b++ {
		planIngest(t, fresh, "a", b, uint64(b)+100)
	}
	want, err := fresh.Query("ns", "a", epoch, epoch.Add(3*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	jg, _ := json.Marshal(got)
	jw, _ := json.Marshal(want)
	if !bytes.Equal(jg, jw) {
		t.Fatalf("re-created series answered stale data:\n  got:  %s\n  want: %s", jg, jw)
	}
}

// TestPlanLRUEvictionByBudget: the byte budget holds — least-recently
// used plans are evicted, the footprint never exceeds the budget, and
// an evicted plan simply rebuilds on the next query.
func TestPlanLRUEvictionByBudget(t *testing.T) {
	now := epoch
	const budget = 2048
	st := New(planTestConfig(&now, 16, 0, budget))
	metrics := []string{"m0", "m1", "m2", "m3", "m4", "m5"}
	for _, m := range metrics {
		for b := 0; b < 3; b++ {
			planIngest(t, st, m, b, uint64(b)+3)
		}
	}
	now = epoch.Add(3 * time.Minute)
	for _, m := range metrics {
		if _, err := st.Query("ns", m, epoch, now); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	if s.PlanEvictions == 0 {
		t.Fatalf("budget %d held %d plans without evicting: %+v", budget, len(metrics), s)
	}
	if s.PlanCacheBytes > budget {
		t.Fatalf("cache footprint %d exceeds budget %d", s.PlanCacheBytes, budget)
	}
	if s.PlanCacheEntries == 0 {
		t.Fatal("cache emptied itself")
	}
	// An evicted plan is a miss, not an error: the query rebuilds and
	// re-caches.
	res, err := st.Query("ns", metrics[0], epoch, now)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := st.Query("ns", metrics[0], epoch, now)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Planned {
		t.Fatal("rebuilt plan was not reused")
	}
	res2.Planned = res.Planned
	jg, _ := json.Marshal(res)
	jw, _ := json.Marshal(res2)
	if !bytes.Equal(jg, jw) {
		t.Fatalf("rebuild diverged:\n  %s\n  %s", jg, jw)
	}
}

// TestPlanCacheUnit exercises the cache structure directly: LRU order
// honors lookups, replacement accounting stays consistent, and the
// invalidation entry points drop exactly the matching plans.
func TestPlanCacheUnit(t *testing.T) {
	k1 := Key{Namespace: "n", Metric: "a"}
	k2 := Key{Namespace: "n", Metric: "b"}
	env := bytes.Repeat([]byte{7}, 16)
	entrySize := int64(len(env)) + planEntryOverhead

	pc := newPlanCache(2 * entrySize)
	pc.store(planKey{k1, 0}, 1, 2, env)
	pc.store(planKey{k1, 5}, 6, 2, env)
	// Bump (k1, 0), then overflow: (k1, 5) must be the victim.
	if _, _, _, ok := pc.lookup(planKey{k1, 0}); !ok {
		t.Fatal("lookup lost a stored plan")
	}
	pc.store(planKey{k2, 0}, 1, 2, env)
	if _, _, _, ok := pc.lookup(planKey{k1, 5}); ok {
		t.Fatal("LRU evicted the wrong plan")
	}
	if _, _, _, ok := pc.lookup(planKey{k1, 0}); !ok {
		t.Fatal("LRU evicted the bumped plan")
	}
	if got := pc.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	// Replacement keeps one entry per (key, lo) and exact byte accounting.
	pc = newPlanCache(1 << 20)
	pc.store(planKey{k1, 0}, 1, 2, env)
	pc.store(planKey{k1, 0}, 3, 4, bytes.Repeat([]byte{8}, 32))
	if b, n := pc.usage(); n != 1 || b != 32+planEntryOverhead {
		t.Fatalf("after replace: %d entries, %d bytes", n, b)
	}
	if _, hi, count, _ := pc.lookup(planKey{k1, 0}); hi != 3 || count != 4 {
		t.Fatalf("replace kept the old plan: hi=%d count=%d", hi, count)
	}

	// invalidateBelow drops only the plans behind the cut, only for the
	// named key.
	pc = newPlanCache(1 << 20)
	for _, lo := range []int64{0, 5, 9} {
		pc.store(planKey{k1, lo}, lo+1, 2, env)
	}
	pc.store(planKey{k2, 0}, 1, 2, env)
	pc.invalidateBelow(k1, 5)
	for _, tc := range []struct {
		pk   planKey
		want bool
	}{{planKey{k1, 0}, false}, {planKey{k1, 5}, true}, {planKey{k1, 9}, true}, {planKey{k2, 0}, true}} {
		if _, _, _, ok := pc.lookup(tc.pk); ok != tc.want {
			t.Fatalf("after invalidateBelow: %+v present=%v, want %v", tc.pk, ok, tc.want)
		}
	}
	pc.invalidateKey(k1)
	if _, n := pc.usage(); n != 1 {
		t.Fatalf("invalidateKey left %d entries, want 1 (other key)", n)
	}
	pc.invalidateAll()
	if b, n := pc.usage(); n != 0 || b != 0 {
		t.Fatalf("invalidateAll left %d entries, %d bytes", n, b)
	}
}

// TestPlanCacheRaceHammer mixes ingest (with rotation and retention
// pruning), range queries, key eviction and whole-store snapshots
// against a hot plan cache; run under -race it proves the cache's
// locking composes with the store's. Estimates are not asserted — the
// equivalence harness owns correctness — only absence of races, panics
// and unexpected errors.
func TestPlanCacheRaceHammer(t *testing.T) {
	st := New(Config{
		K: 64, Seed: 3, BucketWidth: 2 * time.Millisecond, Retention: 4,
		MaxKeys: 3, PlanCacheBytes: 8 << 10,
	})
	kinds := []Kind{BottomK, TopK, Distinct, Window}
	metric := func(i int) string { return fmt.Sprintf("m%d", i) }

	const dur = 150 * time.Millisecond
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(2)
		go func() { // ingester: rotations, prunes, evictions
			defer wg.Done()
			items := zipfItems(50, uint64(i)+1)
			for time.Now().Before(deadline) {
				if err := st.AddBatchKind("ns", metric(i), kinds[i], items); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() { // querier: hot plans over a rolling range
			defer wg.Done()
			for time.Now().Before(deadline) {
				now := time.Now()
				_, _ = st.Query("ns", metric(i), now.Add(-time.Second), now)
			}
		}()
	}
	wg.Add(1)
	go func() { // snapshotter
		defer wg.Done()
		for time.Now().Before(deadline) {
			var b bytes.Buffer
			if err := st.Snapshot(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if s := st.Stats(); s.Queries == 0 || s.Rotations == 0 {
		t.Fatalf("hammer did not exercise the store: %+v", s)
	}
}
