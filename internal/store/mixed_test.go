package store

import (
	"bytes"
	"errors"

	"reflect"
	"testing"
	"time"

	"ats/internal/engine"
	"ats/internal/stream"
)

// mixedConfig pins a synthetic clock so rotation and decay evaluation
// are deterministic.
func mixedConfig(now *time.Time) Config {
	return Config{
		K: 128, Seed: 9, BucketWidth: time.Minute, Retention: 30, Shards: 2,
		Now: func() time.Time { return *now },
	}
}

// feedMixed creates one key per sketch kind and drives ingest across
// several buckets. Returns the metric name per kind.
func feedMixed(t *testing.T, st *Store, now *time.Time) map[Kind]string {
	t.Helper()
	metrics := make(map[Kind]string)
	rng := stream.NewRNG(17)
	z := stream.NewZipf(500, 1.2, 18)
	for bucketN := 0; bucketN < 5; bucketN++ {
		items := make([]engine.Item, 800)
		for i := range items {
			w := 1 + 4*rng.Float64()
			key := z.Next()
			items[i] = engine.Item{Key: key, Weight: w, Value: w,
				Group:  key % 7,
				Strata: []uint32{uint32(key % 5), uint32(key % 3)}}
		}
		for _, kind := range Kinds() {
			metric := "m-" + kind.String()
			metrics[kind] = metric
			batch := make([]engine.Item, len(items))
			copy(batch, items)
			if err := st.AddBatchKindAt("mixed", metric, kind, batch, *now); err != nil {
				t.Fatalf("bucket %d, kind %s: %v", bucketN, kind, err)
			}
		}
		*now = now.Add(time.Minute)
	}
	return metrics
}

// TestMixedKindStoreRoundTrip is the end-to-end contract of the
// per-series-kind store: one store holding every sketch kind at once
// snapshots and restores bit-identically, answers the same queries
// after the round trip, and rejects kind-mismatched ingest with the
// typed error.
func TestMixedKindStoreRoundTrip(t *testing.T) {
	now := epoch
	st := New(mixedConfig(&now))
	metrics := feedMixed(t, st, &now)

	if st.Stats().Keys != len(Kinds()) {
		t.Fatalf("store holds %d keys, want %d", st.Stats().Keys, len(Kinds()))
	}

	// Kind-mismatched ingest is rejected with the typed error, for both
	// explicit kinds and the kind-less default path.
	err := st.AddBatchKind("mixed", metrics[Distinct], TopK,
		[]engine.Item{{Key: 1, Weight: 1, Value: 1}})
	if !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("cross-kind ingest: got %v, want ErrKindMismatch", err)
	}
	err = st.AddBatch("mixed", metrics[Window], []engine.Item{{Key: 1, Weight: 1, Value: 1}})
	if !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("default-kind ingest into window series: got %v, want ErrKindMismatch", err)
	}
	// The rejected batches must not have touched any series.
	if got := st.Stats().Adds; got != int64(5*800*len(Kinds())) {
		t.Fatalf("adds counter %d moved on rejected ingest", got)
	}

	// Every kind answers its own estimator fields.
	from, to := epoch, now
	want := make(map[Kind]Result)
	for kind, metric := range metrics {
		res, err := st.Query("mixed", metric, from, to)
		if err != nil {
			t.Fatalf("query %s: %v", kind, err)
		}
		if res.Kind != kind.String() {
			t.Errorf("%s: result kind %q", kind, res.Kind)
		}
		if res.Buckets == 0 || res.SampleSize == 0 {
			t.Errorf("%s: empty result %+v", kind, res)
		}
		switch kind {
		case BottomK:
			if res.Sum <= 0 {
				t.Errorf("bottomk: no sum in %+v", res)
			}
		case Distinct:
			if res.DistinctEstimate <= 0 {
				t.Errorf("distinct: no estimate in %+v", res)
			}
		case Window:
			if res.CountEstimate <= 0 && !res.Exact {
				t.Errorf("window: no count estimate in %+v", res)
			}
		case TopK:
			if len(res.TopK) == 0 || res.Sum != float64(5*800) {
				t.Errorf("topk: want ranking and exact total %d in %+v", 5*800, res)
			}
		case VarOpt:
			if res.Sum <= 0 || res.WeightSum <= 0 {
				t.Errorf("varopt: no weighted sums in %+v", res)
			}
		case Decay:
			if res.DecayedSum <= 0 || res.DecayedCount <= 0 || res.AsOfUnix == 0 {
				t.Errorf("decay: no decayed aggregates in %+v", res)
			}
		case GroupBy:
			if len(res.Groups) == 0 || res.GroupCount != 7 {
				t.Errorf("groupby: want 7 groups with a ranking in %+v", res)
			}
		case Stratified:
			if res.Sum <= 0 || len(res.Strata) != 5 || res.StratumDim == nil || *res.StratumDim != 0 {
				t.Errorf("stratified: want sum and 5 dim-0 strata in %+v", res)
			}
		}
		if kindName, err := st.KindOf("mixed", metric); err != nil || kindName != kind {
			t.Errorf("KindOf(%s) = %v, %v", metric, kindName, err)
		}
		want[kind] = res
	}

	// Snapshot → restore → re-query: bit-identical snapshot bytes and
	// deeply equal query results.
	var snap1 bytes.Buffer
	if err := st.Snapshot(&snap1); err != nil {
		t.Fatal(err)
	}
	st2 := New(mixedConfig(&now))
	if err := st2.Restore(bytes.NewReader(snap1.Bytes())); err != nil {
		t.Fatal(err)
	}
	var snap2 bytes.Buffer
	if err := st2.Snapshot(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
		t.Fatal("snapshot → restore → snapshot is not bit-identical")
	}
	for kind, metric := range metrics {
		res, err := st2.Query("mixed", metric, from, to)
		if err != nil {
			t.Fatalf("restored query %s: %v", kind, err)
		}
		if !reflect.DeepEqual(res, want[kind]) {
			t.Errorf("%s: restored query %+v != original %+v", kind, res, want[kind])
		}
	}

	// Restored series keep their kinds: cross-kind ingest still rejected,
	// in-kind ingest still accepted.
	if err := st2.AddBatchKind("mixed", metrics[Decay], BottomK,
		[]engine.Item{{Key: 1, Weight: 1, Value: 1}}); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("restored decay series accepted bottomk ingest: %v", err)
	}
	for kind, metric := range metrics {
		if err := st2.AddBatchKindAt("mixed", metric, kind,
			[]engine.Item{{Key: 7, Weight: 1, Value: 1}}, now); err != nil {
			t.Errorf("post-restore ingest into %s: %v", kind, err)
		}
	}
}

// TestMixedKindSnapshotRejectsSwappedKinds ensures a stream whose series
// kind byte disagrees with its bucket envelopes cannot be restored.
func TestMixedKindSnapshotRejectsSwappedKinds(t *testing.T) {
	now := epoch
	st := New(mixedConfig(&now))
	if err := st.AddBatchKindAt("ns", "m", TopK,
		[]engine.Item{{Key: 1, Weight: 1, Value: 1}}, now); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The series kind byte is right after the header (54 bytes in v3) and
	// the series marker.
	i := 54 + 1
	if Kind(data[i]) != TopK {
		t.Fatalf("test assumption broken: byte %d is %d, want the series kind", i, data[i])
	}
	data[i] = uint8(VarOpt)
	st2 := New(mixedConfig(&now))
	err := st2.Restore(bytes.NewReader(data))
	if !errors.Is(err, ErrSnapshotConfig) {
		t.Fatalf("swapped-kind snapshot restored: %v", err)
	}
}

// TestPerKindQueryAgainstExact cross-checks each new kind's estimate
// against ground truth on a stream small enough to verify directly.
func TestPerKindQueryAgainstExact(t *testing.T) {
	now := epoch
	st := New(mixedConfig(&now))
	const n = 4000
	rng := stream.NewRNG(23)
	exactWeight := 0.0
	counts := map[uint64]int{}
	items := make([]engine.Item, 0, n)
	for i := 0; i < n; i++ {
		key := uint64(i % 100)
		w := 1 + rng.Float64()
		exactWeight += w
		counts[key]++
		items = append(items, engine.Item{Key: key, Weight: w, Value: w})
	}
	for _, kind := range []Kind{TopK, VarOpt} {
		batch := make([]engine.Item, len(items))
		copy(batch, items)
		if err := st.AddBatchKindAt("ns", kind.String(), kind, batch, now); err != nil {
			t.Fatal(err)
		}
	}
	// The decay series gets unique keys: its priorities are hash-derived
	// per key, so duplicated keys would carry perfectly correlated
	// priorities and degrade the count estimate.
	decayItems := make([]engine.Item, n)
	for i := range decayItems {
		decayItems[i] = engine.Item{Key: uint64(i), Weight: 1, Value: 1}
	}
	if err := st.AddBatchKindAt("ns", Decay.String(), Decay, decayItems, now); err != nil {
		t.Fatal(err)
	}

	res, err := st.Query("ns", "topk", epoch, now)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform 100-key stream, m=128 counters: every count is tracked
	// exactly.
	for _, item := range res.TopK {
		if int(item.Estimate) != counts[item.Key] {
			t.Errorf("topk key %d estimate %v, exact %d", item.Key, item.Estimate, counts[item.Key])
		}
	}

	res, err = st.Query("ns", "varopt", epoch, now)
	if err != nil {
		t.Fatal(err)
	}
	if rel := relDiff(res.WeightSum, exactWeight); rel > 0.15 {
		t.Errorf("varopt weight sum %v vs exact %v (rel %v)", res.WeightSum, exactWeight, rel)
	}

	res, err = st.Query("ns", "decay", epoch, now)
	if err != nil {
		t.Fatal(err)
	}
	// All arrivals at the query instant: nothing has decayed yet, so the
	// decayed count estimates the number of arrivals.
	if rel := relDiff(res.DecayedCount, n); rel > 0.2 {
		t.Errorf("decayed count %v vs %d arrivals (rel %v)", res.DecayedCount, n, rel)
	}
}
