package store

// Store ↔ history interaction: the history sampler (§2.7) reconstructs
// the bottom-k sample of any stream prefix after the fact; the store
// reaches the same sample for the whole stream by merging its time
// buckets. Both derive priorities from the same seeded key hash, so for
// the full range they must agree exactly — the store is the "forgetful"
// production counterpart of the archival history sampler.

import (
	"sort"
	"testing"
	"time"

	"ats/internal/history"
)

func TestStoreFullRangeMatchesHistorySampler(t *testing.T) {
	const (
		k       = 128
		seed    = 33
		buckets = 6
		perB    = 3000
	)
	items := zipfItems(buckets*perB, seed)
	st := New(Config{Kind: BottomK, K: k, Seed: seed, BucketWidth: time.Minute, Retention: 100})
	hist := history.New(k, seed)
	for b := 0; b < buckets; b++ {
		chunk := items[b*perB : (b+1)*perB]
		st.AddBatchAt("ns", "m", chunk, epoch.Add(time.Duration(b)*time.Minute))
		for _, it := range chunk {
			hist.Add(it.Key, it.Weight, it.Value)
		}
	}

	n := buckets * perB
	wantThr := hist.ThresholdAt(n)
	res, err := st.Query("ns", "m", epoch, epoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold != wantThr {
		t.Fatalf("store threshold %v != history threshold %v", res.Threshold, wantThr)
	}

	sample, err := st.QuerySample("ns", "m", epoch, epoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	histSample := hist.SampleAt(n)
	if len(sample) != len(histSample) {
		t.Fatalf("store sample %d items, history %d", len(sample), len(histSample))
	}
	type kp struct {
		key uint64
		pri float64
	}
	norm := func(keys []kp) {
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].pri != keys[j].pri {
				return keys[i].pri < keys[j].pri
			}
			return keys[i].key < keys[j].key
		})
	}
	got := make([]kp, len(sample))
	for i, s := range sample {
		got[i] = kp{s.Key, s.Priority}
	}
	want := make([]kp, len(histSample))
	for i, e := range histSample {
		want[i] = kp{e.Key, e.Priority}
	}
	norm(got)
	norm(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample[%d]: store (%d, %v) != history (%d, %v)",
				i, got[i].key, got[i].pri, want[i].key, want[i].pri)
		}
	}
}

// TestStorePrefixMatchesHistoryPrefix aligns bucket boundaries with
// stream positions: a store range query ending at bucket b sees exactly
// the first (b+1)*perB items, which is a history prefix query.
func TestStorePrefixMatchesHistoryPrefix(t *testing.T) {
	const (
		k       = 64
		seed    = 8
		buckets = 5
		perB    = 2000
	)
	items := zipfItems(buckets*perB, seed)
	st := New(Config{Kind: BottomK, K: k, Seed: seed, BucketWidth: time.Minute, Retention: 100})
	hist := history.New(k, seed)
	for b := 0; b < buckets; b++ {
		chunk := items[b*perB : (b+1)*perB]
		st.AddBatchAt("ns", "m", chunk, epoch.Add(time.Duration(b)*time.Minute))
		for _, it := range chunk {
			hist.Add(it.Key, it.Weight, it.Value)
		}
	}
	for b := 0; b < buckets; b++ {
		res, err := st.Query("ns", "m", epoch, epoch.Add(time.Duration(b)*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Threshold, hist.ThresholdAt((b+1)*perB); got != want {
			t.Fatalf("prefix through bucket %d: store threshold %v != history %v", b, got, want)
		}
	}
}

// TestHistoryUnbiasedAcrossStoreBuckets checks the estimates themselves:
// the history prefix estimate and the store bucket-merge estimate target
// the same population total and agree to float-reordering precision.
func TestHistoryUnbiasedAcrossStoreBuckets(t *testing.T) {
	const (
		k       = 256
		seed    = 14
		buckets = 4
		perB    = 4000
	)
	// Unique keys: duplicate keys share a hashed priority, which biases
	// aggregate HT sums (the documented bottom-k caveat to pre-aggregate
	// per key), and this test compares against the exact total.
	items := zipfItems(buckets*perB, seed)
	for i := range items {
		items[i].Key = uint64(i)
	}
	st := New(Config{Kind: BottomK, K: k, Seed: seed, BucketWidth: time.Minute, Retention: 100})
	hist := history.New(k, seed)
	exact := 0.0
	for b := 0; b < buckets; b++ {
		chunk := items[b*perB : (b+1)*perB]
		st.AddBatchAt("ns", "m", chunk, epoch.Add(time.Duration(b)*time.Minute))
		for _, it := range chunk {
			hist.Add(it.Key, it.Weight, it.Value)
			exact += it.Value
		}
	}
	res, err := st.Query("ns", "m", epoch, epoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	histEst := hist.SubsetSumAt(buckets*perB, nil)
	if relDiff(res.Sum, histEst) > 1e-12 {
		t.Fatalf("store estimate %v != history estimate %v", res.Sum, histEst)
	}
	if relDiff(res.Sum, exact) > 0.2 {
		t.Fatalf("estimate %v implausibly far from exact %v", res.Sum, exact)
	}
}
