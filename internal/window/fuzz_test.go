package window

import "testing"

// fuzzSeedSampler marshals a sampler populated with n arrivals at the
// given per-item spacing, for the seed corpus.
func fuzzSeedSampler(t testing.TB, k int, seed uint64, n int, dt float64) []byte {
	s := New(k, 1.0, seed)
	for i := 0; i < n; i++ {
		s.Add(uint64(i)*2654435761, float64(i)*dt)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzCodecRoundTrip feeds arbitrary bytes to UnmarshalBinary. Inputs that
// decode must respect the sketch invariants and survive a
// marshal/unmarshal round trip with identical semantics; inputs that do
// not decode must fail cleanly without panicking.
func FuzzCodecRoundTrip(f *testing.F) {
	// Seed corpus: empty, below-k, steady-state dense and sparse windows,
	// a merged pair, the empty input, and a truncated valid prefix.
	f.Add(fuzzSeedSampler(f, 4, 1, 0, 0.01))
	f.Add(fuzzSeedSampler(f, 4, 1, 3, 0.01))
	f.Add(fuzzSeedSampler(f, 16, 42, 2000, 0.002))
	f.Add(fuzzSeedSampler(f, 16, 42, 50, 0.3))
	merged := New(8, 1.0, 9)
	other := New(8, 1.0, 10)
	for i := 0; i < 400; i++ {
		merged.Add(uint64(i), float64(i)*0.01)
		other.Add(uint64(i+1000), float64(i)*0.01)
	}
	if err := merged.Merge(other); err != nil {
		f.Fatal(err)
	}
	if data, err := merged.MarshalBinary(); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("ATSwgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sampler
		if err := s.UnmarshalBinary(data); err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		// Decoded state must respect the structural invariants.
		if s.k <= 0 || len(s.current) > s.k {
			t.Fatalf("decoded invalid sampler: k=%d current=%d", s.k, len(s.current))
		}
		cutCur := s.now - s.delta
		for _, it := range s.current {
			if !(it.R < it.T) || it.Time <= cutCur || it.Time > s.now {
				t.Fatalf("decoded invalid current item %+v (now=%v)", it, s.now)
			}
		}
		if thr := s.ImprovedThreshold(); !(thr > 0 && thr <= 1) {
			t.Fatalf("decoded improved threshold %v", thr)
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var s2 Sampler
		if err := s2.UnmarshalBinary(out); err != nil {
			t.Fatalf("round trip rejected its own output: %v", err)
		}
		if s2.k != s.k || s2.delta != s.delta || s2.now != s.now || s2.lastBoundary != s.lastBoundary {
			t.Fatalf("round trip changed identity: (%d,%v,%v,%v) -> (%d,%v,%v,%v)",
				s.k, s.delta, s.now, s.lastBoundary, s2.k, s2.delta, s2.now, s2.lastBoundary)
		}
		if s2.rng.State() != s.rng.State() {
			t.Fatal("round trip changed RNG state")
		}
		if s2.StoredItems() != s.StoredItems() {
			t.Fatalf("round trip changed storage: %d -> %d", s.StoredItems(), s2.StoredItems())
		}
		if !sampleEqual(&s, &s2) {
			t.Fatal("round trip changed improved sample")
		}
		if s.GLThreshold() != s2.GLThreshold() {
			t.Fatalf("round trip changed GL threshold: %v -> %v", s.GLThreshold(), s2.GLThreshold())
		}
	})
}
