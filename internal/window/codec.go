package window

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Serialization format (little-endian):
//
//	magic    uint32  "ATSw"
//	version  uint8   1
//	k        uint32
//	delta    float64
//	now      float64
//	boundary float64  last exclusion boundary
//	rng      4 × uint64  xoshiro256** state
//	curCount uint32
//	expCount uint32
//	current  curCount × (key uint64, time float64, r float64, t float64)
//	expired  expCount × same
//
// The format captures the sketch's full state including the RNG position:
// an unmarshaled sampler continues the priority stream exactly where the
// original left off, so original and restored copies stay in lockstep
// under identical future arrivals. Cache fields (maxIdx, maxT, oldest-time
// gates) are derived state and are recomputed on decode.

const (
	codecMagic   = 0x41545377 // "ATSw"
	codecVersion = 1
)

var (
	// ErrCorrupt reports malformed or truncated serialized data.
	ErrCorrupt = errors.New("window: corrupt serialized sampler")
	// ErrVersion reports an unsupported serialization version.
	ErrVersion = errors.New("window: unsupported serialization version")
)

const (
	codecHeader   = 4 + 1 + 4 + 8 + 8 + 8 + 32 + 4 + 4
	codecItemSize = 32
)

// MarshalBinary serializes the sampler.
func (s *Sampler) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, codecHeader+(len(s.current)+len(s.expired))*codecItemSize)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.k))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.delta))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.now))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.lastBoundary))
	for _, w := range s.rng.State() {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.current)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.expired)))
	appendItem := func(it Item) {
		buf = binary.LittleEndian.AppendUint64(buf, it.Key)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.Time))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.R))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.T))
	}
	for _, it := range s.current {
		appendItem(it)
	}
	for _, it := range s.expired {
		appendItem(it)
	}
	return buf, nil
}

// UnmarshalBinary restores a sampler serialized by MarshalBinary,
// overwriting the receiver.
func (s *Sampler) UnmarshalBinary(data []byte) error {
	if len(data) < codecHeader {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != codecMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != codecVersion {
		return fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	k := int(binary.LittleEndian.Uint32(data[5:]))
	if k <= 0 {
		return fmt.Errorf("%w: non-positive k", ErrCorrupt)
	}
	delta := math.Float64frombits(binary.LittleEndian.Uint64(data[9:]))
	if !(delta > 0) || math.IsInf(delta, 1) {
		return fmt.Errorf("%w: invalid delta %v", ErrCorrupt, delta)
	}
	now := math.Float64frombits(binary.LittleEndian.Uint64(data[17:]))
	if math.IsNaN(now) || math.IsInf(now, 1) {
		return fmt.Errorf("%w: invalid clock %v", ErrCorrupt, now)
	}
	boundary := math.Float64frombits(binary.LittleEndian.Uint64(data[25:]))
	if !(boundary > 0 && boundary <= 1) {
		return fmt.Errorf("%w: boundary %v outside (0,1]", ErrCorrupt, boundary)
	}
	var st [4]uint64
	for i := range st {
		st[i] = binary.LittleEndian.Uint64(data[33+8*i:])
	}
	curCount := int(binary.LittleEndian.Uint32(data[65:]))
	expCount := int(binary.LittleEndian.Uint32(data[69:]))
	if curCount > k {
		return fmt.Errorf("%w: %d current items for k=%d", ErrCorrupt, curCount, k)
	}
	// Length is validated against the declared counts BEFORE any
	// count-sized allocation, so a crafted header claiming billions of
	// items with a tiny body is rejected without allocating.
	if len(data) != codecHeader+(curCount+expCount)*codecItemSize {
		return fmt.Errorf("%w: body is %d bytes, want %d items",
			ErrCorrupt, len(data)-codecHeader, curCount+expCount)
	}
	if (curCount > 0 || expCount > 0) && math.IsInf(now, -1) {
		return fmt.Errorf("%w: stored items with unset clock", ErrCorrupt)
	}
	restored := New(k, delta, 0)
	if err := restored.rng.SetState(st); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	restored.now = now
	restored.lastBoundary = boundary
	off := codecHeader
	readItem := func() Item {
		it := Item{
			Key:  binary.LittleEndian.Uint64(data[off:]),
			Time: math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:])),
			R:    math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:])),
			T:    math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:])),
		}
		off += codecItemSize
		return it
	}
	cutCur := now - delta
	cutExp := now - 2*delta
	for i := 0; i < curCount; i++ {
		it := readItem()
		// Current examples satisfy R < T (inclusion is equivalent to the
		// priority lying below the per-item threshold) and lie inside the
		// current window.
		if !(it.R > 0 && it.R < 1) || !(it.T <= 1) || !(it.R < it.T) {
			return fmt.Errorf("%w: current item %d has R=%v T=%v", ErrCorrupt, i, it.R, it.T)
		}
		if !(it.Time > cutCur && it.Time <= now) {
			return fmt.Errorf("%w: current item %d at %v outside (%v, %v]", ErrCorrupt, i, it.Time, cutCur, now)
		}
		if it.Time < restored.oldestCur {
			restored.oldestCur = it.Time
		}
		restored.current = append(restored.current, it)
	}
	for i := 0; i < expCount; i++ {
		it := readItem()
		if !(it.R > 0 && it.R < 1) || !(it.T <= 1) || !(it.R < it.T) {
			return fmt.Errorf("%w: expired item %d has R=%v T=%v", ErrCorrupt, i, it.R, it.T)
		}
		if !(it.Time > cutExp && it.Time <= cutCur) {
			return fmt.Errorf("%w: expired item %d at %v outside (%v, %v]", ErrCorrupt, i, it.Time, cutExp, cutCur)
		}
		if it.Time < restored.oldestExp {
			restored.oldestExp = it.Time
		}
		restored.expired = append(restored.expired, it)
	}
	// maxT is an upper bound on the current thresholds; recompute it
	// exactly so the clamp fast path stays sound. maxIdx stays -1 (lazy).
	restored.maxT = 0
	for _, it := range restored.current {
		if it.T > restored.maxT {
			restored.maxT = it.T
		}
	}
	if len(restored.current) == 0 {
		restored.maxT = 1
	}
	*s = *restored
	return nil
}
