package window

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// populatedSampler builds a sampler with both current and expired storage.
func populatedSampler(t testing.TB, k int, seed uint64, n int) *Sampler {
	t.Helper()
	s := New(k, 1.0, seed)
	for i := 0; i < n; i++ {
		s.Add(uint64(i), float64(i)*0.002) // 500 arrivals per window
	}
	return s
}

func sampleEqual(a, b *Sampler) bool {
	sa, ta := a.ImprovedSample()
	sb, tb := b.ImprovedSample()
	if ta != tb || len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 50, 5000} {
		s := populatedSampler(t, 64, 9, n)
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		var r Sampler
		if err := r.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if r.K() != s.K() || r.Delta() != s.Delta() || r.Now() != s.Now() {
			t.Fatalf("n=%d: identity changed: k=%d delta=%v now=%v", n, r.K(), r.Delta(), r.Now())
		}
		if r.StoredItems() != s.StoredItems() {
			t.Fatalf("n=%d: stored %d != %d", n, r.StoredItems(), s.StoredItems())
		}
		if r.GLThreshold() != s.GLThreshold() {
			t.Fatalf("n=%d: GL threshold %v != %v", n, r.GLThreshold(), s.GLThreshold())
		}
		if !sampleEqual(s, &r) {
			t.Fatalf("n=%d: improved sample changed", n)
		}
	}
}

// TestCodecResumesRNGStream is the property the RNG state in the envelope
// buys: original and restored samplers stay in lockstep under identical
// future arrivals, because the restored copy draws the same priorities.
func TestCodecResumesRNGStream(t *testing.T) {
	s := populatedSampler(t, 32, 4, 2000)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Sampler
	if err := r.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	base := s.Now()
	for i := 0; i < 3000; i++ {
		at := base + float64(i)*0.002
		bs := s.Add(uint64(1_000_000+i), at)
		br := r.Add(uint64(1_000_000+i), at)
		if bs != br {
			t.Fatalf("arrival %d: boundary diverged %v != %v", i, bs, br)
		}
	}
	if !sampleEqual(s, &r) {
		t.Fatal("samples diverged after restore")
	}
}

// TestCodecRejectsDecodeBomb crafts a header that claims a huge item count
// (and a huge k) with a tiny body; decoding must fail on the length check
// before any count-sized allocation happens.
func TestCodecRejectsDecodeBomb(t *testing.T) {
	s := New(4, 1, 1)
	s.Add(1, 0.5)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bomb := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bomb[5:], math.MaxUint32)  // k
	binary.LittleEndian.PutUint32(bomb[65:], math.MaxUint32) // curCount
	binary.LittleEndian.PutUint32(bomb[69:], math.MaxUint32) // expCount
	var r Sampler
	if err := r.UnmarshalBinary(bomb); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode bomb accepted: %v", err)
	}
}

func TestCodecRejectsCorruptInputs(t *testing.T) {
	valid, err := populatedSampler(t, 8, 2, 100).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(off int, b byte) []byte {
		out := append([]byte(nil), valid...)
		out[off] ^= b
		return out
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   valid[:20],
		"bad magic":      mut(0, 0xff),
		"bad version":    mut(4, 0x7f),
		"truncated body": valid[:len(valid)-1],
		"trailing bytes": append(append([]byte(nil), valid...), 0),
	}
	for name, data := range cases {
		var r Sampler
		if err := r.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Zero RNG state is a fixed point of xoshiro and must be rejected.
	zeroRNG := append([]byte(nil), valid...)
	for i := 0; i < 32; i++ {
		zeroRNG[33+i] = 0
	}
	var r Sampler
	if err := r.UnmarshalBinary(zeroRNG); !errors.Is(err, ErrCorrupt) {
		t.Errorf("all-zero RNG state accepted: %v", err)
	}
}
