package window

import (
	"math"
	"testing"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []struct {
		k     int
		delta float64
	}{{0, 1}, {-1, 1}, {5, 0}, {5, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %v) must panic", bad.k, bad.delta)
				}
			}()
			New(bad.k, bad.delta, 1)
		}()
	}
}

func TestBelowCapacityKeepsEverything(t *testing.T) {
	s := New(10, 1, 1)
	for i := 0; i < 10; i++ {
		s.Add(uint64(i), float64(i)*0.01)
	}
	if got := len(s.CurrentItems()); got != 10 {
		t.Errorf("current = %d, want 10", got)
	}
	if th := s.ImprovedThreshold(); th != 1 {
		t.Errorf("improved threshold = %v, want 1 while below capacity", th)
	}
}

func TestCurrentCapacityNeverExceeded(t *testing.T) {
	s := New(5, 1, 2)
	rng := stream.NewRNG(3)
	for i := 0; i < 2000; i++ {
		s.Add(uint64(i), float64(i)*0.001)
		if n := len(s.CurrentItems()); n > 5 {
			t.Fatalf("current sample %d exceeds k=5", n)
		}
		_ = rng
	}
}

func TestExpiryMovesAndDrops(t *testing.T) {
	s := New(3, 1, 4)
	s.AddWithPriority(1, 0.0, 0.5)
	s.AddWithPriority(2, 0.5, 0.6)
	// Advance past the current window for item 1.
	s.Advance(1.2)
	if len(s.CurrentItems()) != 1 {
		t.Errorf("current = %d, want 1 after expiry", len(s.CurrentItems()))
	}
	if s.StoredItems() != 2 {
		t.Errorf("stored = %d, want 2 (one expired retained)", s.StoredItems())
	}
	// Advance past two window lengths for item 1: dropped entirely.
	s.Advance(2.3)
	if s.StoredItems() != 1 {
		t.Errorf("stored = %d, want 1 after full expiry", s.StoredItems())
	}
}

func TestNegativeTimesSupported(t *testing.T) {
	s := New(2, 1, 5)
	s.AddWithPriority(1, -5.0, 0.2)
	s.AddWithPriority(2, -4.5, 0.3)
	s.Advance(-3.9)
	if len(s.CurrentItems()) != 1 {
		t.Errorf("current = %d, want 1 (negative-time expiry)", len(s.CurrentItems()))
	}
}

func TestExclusionBoundarySemantics(t *testing.T) {
	s := New(2, 10, 6)
	// Fill with priorities 0.5, 0.7.
	s.AddWithPriority(1, 0, 0.5)
	s.AddWithPriority(2, 0.1, 0.7)
	// New max arrives: rejected, boundary = its own priority.
	if b := s.AddWithPriority(3, 0.2, 0.9); b != 0.9 {
		t.Errorf("boundary = %v, want 0.9 (rejected max)", b)
	}
	if len(s.CurrentItems()) != 2 {
		t.Error("rejected item must not displace anything")
	}
	// Smaller priority arrives: evicts stored max 0.7; boundary 0.7.
	if b := s.AddWithPriority(4, 0.3, 0.1); b != 0.7 {
		t.Errorf("boundary = %v, want 0.7 (evicted max)", b)
	}
	cur := s.CurrentItems()
	if len(cur) != 2 {
		t.Fatalf("current = %d, want 2", len(cur))
	}
	for _, it := range cur {
		if it.R >= 0.7 {
			t.Errorf("item with R=%v must have been evicted", it.R)
		}
		if it.T > 0.7 {
			t.Errorf("item threshold %v must be clamped to <= 0.7", it.T)
		}
	}
}

func TestImprovedThresholdIsMinOverCurrent(t *testing.T) {
	s := New(3, 100, 7)
	s.AddWithPriority(1, 0, 0.10)
	s.AddWithPriority(2, 1, 0.20)
	s.AddWithPriority(3, 2, 0.30)
	s.AddWithPriority(4, 3, 0.25) // evicts 0.30, clamps everyone to 0.30
	if th := s.ImprovedThreshold(); th != 0.30 {
		t.Errorf("improved threshold = %v, want 0.30", th)
	}
	s.AddWithPriority(5, 4, 0.05) // evicts 0.25, clamps to 0.25
	if th := s.ImprovedThreshold(); th != 0.25 {
		t.Errorf("improved threshold = %v, want 0.25", th)
	}
	imp, thr := s.ImprovedSample()
	if thr != 0.25 {
		t.Errorf("sample threshold = %v", thr)
	}
	for _, it := range imp {
		if it.R >= thr {
			t.Errorf("improved sample contains item above threshold: %v", it.R)
		}
	}
}

func TestGLThresholdUsesStored(t *testing.T) {
	s := New(2, 1, 8)
	s.AddWithPriority(1, 0.0, 0.10)
	s.AddWithPriority(2, 0.1, 0.20)
	// Move them to expired; fresh current items.
	s.AddWithPriority(3, 1.5, 0.40)
	s.AddWithPriority(4, 1.6, 0.50)
	// Stored: expired {0.10, 0.20}, current {0.40, 0.50}; k=2 -> 2nd
	// smallest = 0.20.
	if th := s.GLThreshold(); th != 0.20 {
		t.Errorf("G&L threshold = %v, want 0.20", th)
	}
	gl, _ := s.GLSample()
	if len(gl) != 0 {
		t.Errorf("G&L sample has %d items; none of the current are below 0.20", len(gl))
	}
	// The improved threshold ignores expired items entirely.
	if th := s.ImprovedThreshold(); th != 1 {
		t.Errorf("improved threshold = %v, want 1 (no clamps yet)", th)
	}
}

// TestUniformSampleProperty: at a steady arrival rate, every item in the
// current window should appear in the extracted sample with equal
// frequency (uniformity), for both extraction rules.
func TestUniformSampleProperty(t *testing.T) {
	const (
		k      = 20
		delta  = 1.0
		rate   = 200.0
		trials = 400
	)
	// Track inclusion counts by arrival-position-in-window bucket.
	const buckets = 10
	glCounts := make([]float64, buckets)
	impCounts := make([]float64, buckets)
	for trial := 0; trial < trials; trial++ {
		s := New(k, delta, uint64(trial)+1)
		arr := stream.NewArrivals(stream.ConstantRate(rate), 0, uint64(trial)+9999)
		var inWindow []stream.Arrival
		for {
			a := arr.Next()
			if a.Time > 3 {
				break
			}
			s.Add(a.Key, a.Time)
			if a.Time > 3-delta {
				inWindow = append(inWindow, a)
			}
		}
		s.Advance(3)
		gl, _ := s.GLSample()
		imp, _ := s.ImprovedSample()
		inGL := make(map[uint64]bool, len(gl))
		for _, it := range gl {
			inGL[it.Key] = true
		}
		inImp := make(map[uint64]bool, len(imp))
		for _, it := range imp {
			inImp[it.Key] = true
		}
		for _, a := range inWindow {
			b := int((a.Time - (3 - delta)) / delta * buckets)
			if b >= buckets {
				b = buckets - 1
			}
			if inGL[a.Key] {
				glCounts[b]++
			}
			if inImp[a.Key] {
				impCounts[b]++
			}
		}
	}
	checkFlat := func(name string, counts []float64) {
		var r estimator.Running
		for _, c := range counts {
			r.Add(c)
		}
		if r.Mean() == 0 {
			t.Fatalf("%s: no samples at all", name)
		}
		for b, c := range counts {
			if dev := math.Abs(c-r.Mean()) / r.Mean(); dev > 0.15 {
				t.Errorf("%s: bucket %d count %v deviates %.0f%% from mean %v (non-uniform)",
					name, b, c, dev*100, r.Mean())
			}
		}
	}
	checkFlat("G&L", glCounts)
	checkFlat("improved", impCounts)
	// And the improved rule must actually produce more samples.
	var glTotal, impTotal float64
	for b := range glCounts {
		glTotal += glCounts[b]
		impTotal += impCounts[b]
	}
	if impTotal < 1.4*glTotal {
		t.Errorf("improved sample (%v) should be ≈ 2x the G&L sample (%v)", impTotal, glTotal)
	}
}

func TestSampleSizesNeverExceedK(t *testing.T) {
	s := New(7, 0.5, 10)
	arr := stream.NewArrivals(stream.ConstantRate(300), 0, 11)
	for {
		a := arr.Next()
		if a.Time > 2 {
			break
		}
		s.Add(a.Key, a.Time)
		gl, glT := s.GLSample()
		imp, impT := s.ImprovedSample()
		if len(gl) > 7 || len(imp) > 7 {
			t.Fatalf("sample sizes %d/%d exceed k", len(gl), len(imp))
		}
		if glT > 1 || impT > 1 {
			t.Fatalf("thresholds above 1: %v %v", glT, impT)
		}
	}
}

func TestMergeRejectsMismatched(t *testing.T) {
	a := New(5, 1, 1)
	if err := a.Merge(New(6, 1, 2)); err == nil {
		t.Error("merge with different k must fail")
	}
	if err := a.Merge(New(5, 2, 2)); err == nil {
		t.Error("merge with different delta must fail")
	}
}

func TestMergeEmpty(t *testing.T) {
	a, b := New(5, 1, 1), New(5, 1, 2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.StoredItems() != 0 {
		t.Error("merging empty samplers must stay empty")
	}
	// One-sided: empty absorbs a populated sampler.
	for i := 0; i < 100; i++ {
		b.Add(uint64(i), float64(i)*0.01)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.CurrentItems()) == 0 || len(a.CurrentItems()) > 5 {
		t.Errorf("merged current size %d", len(a.CurrentItems()))
	}
	if b.StoredItems() == 0 {
		t.Error("merge must not modify the argument")
	}
}

func TestMergeInvariants(t *testing.T) {
	const k, delta = 10, 1.0
	a, b := New(k, delta, 3), New(k, delta, 4)
	// Disjoint halves of one arrival stream, b running slightly ahead.
	for i := 0; i < 2000; i++ {
		tm := float64(i) * 0.002
		if i%2 == 0 {
			a.Add(uint64(i), tm)
		} else {
			b.Add(uint64(i), tm)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	cur := a.CurrentItems()
	if len(cur) > k {
		t.Fatalf("merged current size %d > k", len(cur))
	}
	now := a.Now()
	for _, it := range cur {
		if it.Time <= now-delta || it.Time > now {
			t.Errorf("current item at %v outside window ending %v", it.Time, now)
		}
		if it.T <= 0 || it.T > 1 {
			t.Errorf("per-item threshold %v out of range", it.T)
		}
	}
	imp, thr := a.ImprovedSample()
	if len(imp) > k {
		t.Fatalf("improved sample %d > k", len(imp))
	}
	for _, it := range imp {
		if it.R >= thr {
			t.Errorf("sampled priority %v >= threshold %v", it.R, thr)
		}
	}
}

// TestMergeUnbiasedCount verifies by Monte Carlo that the improved-sample
// HT count |S|/t from a merged pair of shards estimates the true window
// population without material bias.
func TestMergeUnbiasedCount(t *testing.T) {
	const (
		k      = 20
		delta  = 1.0
		perWin = 300
		trials = 200
	)
	var est estimator.Running
	for trial := 0; trial < trials; trial++ {
		a := New(k, delta, uint64(2*trial+1))
		b := New(k, delta, uint64(2*trial+2))
		n := 2 * perWin // two windows of history
		for i := 0; i < n; i++ {
			tm := float64(i) * 2.0 / float64(n)
			if i%2 == 0 {
				a.Add(uint64(i), tm)
			} else {
				b.Add(uint64(i), tm)
			}
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		s, thr := a.ImprovedSample()
		est.Add(float64(len(s)) / thr)
	}
	if math.Abs(est.Mean()-perWin)/perWin > 0.1 {
		t.Errorf("merged HT count mean %v, want ≈ %v", est.Mean(), float64(perWin))
	}
}

// TestLateArrivalCannotEnterCurrent pins the multi-producer hazard: an
// arrival whose time is already outside the current window (the clock
// having been advanced by a faster producer) must not displace in-window
// items or appear in the sample.
func TestLateArrivalCannotEnterCurrent(t *testing.T) {
	s := New(3, 1, 9)
	for i := 0; i < 10; i++ {
		s.Add(uint64(i), 2.5+float64(i)*0.01)
	}
	// Late arrivals: one older than 2Δ (dropped), one in the expired band.
	s.Add(100, 0.2)
	s.Add(101, 1.7)
	for _, it := range s.CurrentItems() {
		if it.Time <= s.Now()-s.Delta() {
			t.Fatalf("late arrival at %v entered the current sample (now %v)", it.Time, s.Now())
		}
	}
	imp, _ := s.ImprovedSample()
	for _, it := range imp {
		if it.Key >= 100 {
			t.Fatalf("late arrival key %d sampled", it.Key)
		}
	}
	// The clock must not have gone backwards.
	if s.Now() < 2.59 {
		t.Errorf("clock regressed to %v", s.Now())
	}
}

// TestLateInWindowArrivalStillExpires is the regression for the expiry
// gate: a late (but in-window) arrival accepted into a full sample must
// still expire on time — the oldest-time cache must not go stale-high.
func TestLateInWindowArrivalStillExpires(t *testing.T) {
	s := New(2, 10, 1)
	s.AddWithPriority(1, 104, 0.5)
	s.AddWithPriority(2, 105, 0.6)
	// Late arrival, still inside the window, small priority: accepted.
	if b := s.AddWithPriority(3, 96, 0.1); b != 0.6 {
		t.Fatalf("boundary = %v, want 0.6", b)
	}
	s.Advance(107) // cutCur = 97: the t=96 item must leave current storage
	for _, it := range s.CurrentItems() {
		if it.Time <= 97 {
			t.Fatalf("expired item (t=%v) still in the current sample", it.Time)
		}
	}
	items, _ := s.ImprovedSample()
	for _, it := range items {
		if it.Time <= 97 {
			t.Fatalf("expired item (t=%v) reported in the improved sample", it.Time)
		}
	}
}

// TestMergeSelfIsRejected is the self-merge regression: merging a sampler
// into itself would duplicate items and clamp thresholds to retained
// priorities.
func TestMergeSelfIsRejected(t *testing.T) {
	s := New(4, 10, 1)
	for i := 0; i < 4; i++ {
		s.AddWithPriority(uint64(i), float64(i), 0.1+0.1*float64(i))
	}
	before := s.CurrentItems()
	if err := s.Merge(s); err == nil {
		t.Fatal("self-merge must be rejected")
	}
	after := s.CurrentItems()
	if len(after) != len(before) {
		t.Fatalf("self-merge changed the sample: %d -> %d items", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("self-merge changed item[%d]: %+v -> %+v", i, before[i], after[i])
		}
	}
}
