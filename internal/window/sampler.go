// Package window implements bounded-space uniform sampling from time-based
// sliding windows (§3.2 of the paper). It contains the Gemulla & Lehner
// (G&L) two-window sketch and both threshold rules for extracting a uniform
// sample from it:
//
//   - the original G&L rule — the k-th smallest priority among ALL stored
//     (current and expired) items — which is conservative and discards
//     about half of the usable points; and
//   - the paper's improved rule — the minimum of the per-item thresholds of
//     the current examples — which is 1-substitutable by composition
//     (sequential rule + min), constant over the current window, and hence
//     fully substitutable by Theorem 6. It uses exactly the same sketch and
//     roughly doubles the usable sample.
package window

import (
	"errors"
	"math"

	"ats/internal/stream"
)

// Item is one stored element of the sketch.
type Item struct {
	Key uint64
	// Time is the arrival time.
	Time float64
	// R is the Uniform(0,1) priority assigned at arrival.
	R float64
	// T is the item's per-item threshold: the running minimum of the
	// exclusion boundaries observed while the item has been a current
	// example. Inclusion in current storage is equivalent to R < T.
	T float64
}

// Sampler is the G&L two-window sketch: current examples in (t-Δ, t] and
// expired examples in (t-2Δ, t-Δ]. At most k current examples are retained.
type Sampler struct {
	k     int
	delta float64
	rng   *stream.RNG

	current []Item // invariant: len(current) <= k
	expired []Item
	now     float64

	// lastBoundary records, for instrumentation (Figure 1), the exclusion
	// boundary of the most recent arrival event (1 when the sample was not
	// full).
	lastBoundary float64

	// maxIdx caches the index of the maximum-R current example (-1 =
	// unknown, recomputed lazily), and maxT is an upper bound on the
	// largest per-item threshold among current examples. Together they
	// make the steady-state full-window arrival O(1): the max scan is
	// skipped while the cache is valid and the clamp loop is skipped
	// whenever the boundary cannot lower any stored threshold.
	maxIdx int
	maxT   float64
	// oldestCur and oldestExp lower-bound the earliest arrival time held
	// in current and expired storage, so Advance can skip its expiry
	// scans entirely while the clock has not reached them (they may be
	// stale-low after an eviction, which only costs a redundant scan).
	oldestCur float64
	oldestExp float64
}

// New returns a sliding-window sampler with sample-size parameter k and
// window length delta. Priorities are drawn from the supplied seed.
func New(k int, delta float64, seed uint64) *Sampler {
	if k <= 0 {
		panic("window: k must be positive")
	}
	if delta <= 0 {
		panic("window: delta must be positive")
	}
	return &Sampler{
		k:            k,
		delta:        delta,
		rng:          stream.NewRNG(seed),
		lastBoundary: 1,
		now:          math.Inf(-1),
		maxIdx:       -1,
		maxT:         1,
		oldestCur:    math.Inf(1),
		oldestExp:    math.Inf(1),
	}
}

// K returns the sample-size parameter.
func (s *Sampler) K() int { return s.k }

// Delta returns the window length.
func (s *Sampler) Delta() float64 { return s.delta }

// Now returns the latest time the sampler has advanced to.
func (s *Sampler) Now() float64 { return s.now }

// Add processes an arrival at the given time (times must be
// non-decreasing). It returns the exclusion boundary applied by this
// arrival: 1 while the current sample is below capacity, otherwise the
// priority of the item excluded by this arrival (the new item itself or the
// evicted maximum). This is the per-item initial threshold plotted in
// Figure 1.
func (s *Sampler) Add(key uint64, t float64) float64 {
	return s.AddWithPriority(key, t, s.rng.Open01())
}

// AddWithPriority is Add with an externally supplied Uniform(0,1) priority,
// for deterministic tests.
func (s *Sampler) AddWithPriority(key uint64, t, r float64) float64 {
	s.Advance(t)
	// The Item value is built per-branch rather than up front: the
	// steady-state rejection below never stores one, and keeping the
	// composite literal off that path keeps it store-free.
	if t <= s.now-s.delta {
		// Late arrival already outside the current window (possible when
		// several producers share a sampler, e.g. through the sharded
		// engine): it can never be a current example, so route it the way
		// Advance would — to expired storage or the void — instead of
		// letting it displace an in-window item.
		if t > s.now-2*s.delta {
			if t < s.oldestExp {
				s.oldestExp = t
			}
			s.expired = append(s.expired, Item{Key: key, Time: t, R: r, T: 1})
		}
		return s.lastBoundary
	}
	if len(s.current) < s.k {
		if t < s.oldestCur {
			s.oldestCur = t
		}
		// advanceSlow refreshes maxIdx when it shrinks the sample, so the
		// cache can be live here; extend it over the appended item (ties
		// keep the earlier index, matching the lazy rescan).
		if s.maxIdx >= 0 && r > s.current[s.maxIdx].R {
			s.maxIdx = len(s.current)
		}
		s.current = append(s.current, Item{Key: key, Time: t, R: r, T: 1})
		s.maxT = 1 // the new item enters with T = 1
		s.lastBoundary = 1
		return 1
	}
	// Full: the maximum of the k current priorities and the new priority is
	// excluded; its value is the event's exclusion boundary. Every current
	// example (including a newly accepted one) clamps its per-item
	// threshold to the boundary. This is the sequential 1-substitutable
	// rule: the boundary is always the priority of an excluded item, so it
	// never depends on the priority of any retained item.
	if s.maxIdx < 0 {
		s.maxIdx = 0
		for i := 1; i < len(s.current); i++ {
			if s.current[i].R > s.current[s.maxIdx].R {
				s.maxIdx = i
			}
		}
	}
	boundary := s.current[s.maxIdx].R
	if r >= boundary {
		// The new item is the maximum: reject it, boundary is its
		// priority. The stored maximum is unchanged, so the cache stays
		// valid and a steady-state rejection costs O(1).
		boundary = r
		s.clamp(boundary)
		s.lastBoundary = boundary
		return boundary
	}
	// Evict the stored maximum, accept the new item.
	s.current[s.maxIdx] = Item{Key: key, Time: t, R: r, T: 1}
	s.maxIdx = -1
	s.maxT = 1 // the accepted item enters with T = 1 (clamped just below)
	if t < s.oldestCur {
		// A late (but in-window) arrival can be older than everything
		// stored; without this the expiry gate would go stale-high and
		// Advance could leave an expired item in the current sample.
		s.oldestCur = t
	}
	s.clamp(boundary)
	s.lastBoundary = boundary
	return boundary
}

// clamp lowers every current example's per-item threshold to the boundary.
// maxT upper-bounds the largest stored threshold, so a boundary at or
// above it cannot change anything and the loop is skipped — in the steady
// state only the rare arrivals that follow an acceptance pay O(k).
func (s *Sampler) clamp(boundary float64) {
	if boundary >= s.maxT {
		return
	}
	for i := range s.current {
		// Unconditional store: min(T, boundary) leaves already-low
		// thresholds untouched, and writing always avoids a
		// data-dependent branch on the hot clamp loop.
		t := s.current[i].T
		if boundary < t {
			t = boundary
		}
		s.current[i].T = t
	}
	s.maxT = boundary
}

// Advance moves the sampler's clock to time t (monotonically): current
// examples older than t-Δ become expired; expired examples older than 2Δ
// are discarded.
//
// The method is only the expiry gate — small enough to inline into the
// per-arrival hot path — and the expiry scans live in advanceSlow, which
// runs only when the clock has actually reached the oldest stored item.
func (s *Sampler) Advance(t float64) {
	if t < s.now {
		return
	}
	s.now = t
	// No emptiness checks: oldestCur/oldestExp are +Inf whenever their
	// slice is empty (advanceSlow restores that invariant), so the time
	// comparisons alone decide — and keep this gate inlinable.
	if s.oldestCur <= t-s.delta || s.oldestExp <= t-2*s.delta {
		s.advanceSlow(t)
	}
}

// advanceSlow re-buckets storage against the advanced clock: current
// examples older than t-Δ become expired; expired examples older than 2Δ
// are discarded.
func (s *Sampler) advanceSlow(t float64) {
	cutCur := t - s.delta
	cutExp := t - 2*s.delta
	if len(s.current) > 0 && s.oldestCur <= cutCur {
		keep := s.current[:0]
		oldest := math.Inf(1)
		maxIdx := -1
		maxR := math.Inf(-1)
		for _, it := range s.current {
			if it.Time > cutCur {
				if it.Time < oldest {
					oldest = it.Time
				}
				// Track the survivors' max-R index in the same pass (ties
				// keep the earliest, like the lazy rescan), so shrinking
				// the sample does not force a second O(k) scan on the
				// next full-sample arrival.
				if it.R > maxR {
					maxR = it.R
					maxIdx = len(keep)
				}
				keep = append(keep, it)
			} else if it.Time > cutExp {
				if it.Time < s.oldestExp {
					s.oldestExp = it.Time
				}
				s.expired = append(s.expired, it)
			}
		}
		if len(keep) != len(s.current) {
			s.maxIdx = maxIdx // indices shifted; recomputed above
		}
		s.current = keep
		s.oldestCur = oldest
	}
	if len(s.expired) > 0 && s.oldestExp <= cutExp {
		keep := s.expired[:0]
		oldest := math.Inf(1)
		for _, it := range s.expired {
			if it.Time > cutExp {
				if it.Time < oldest {
					oldest = it.Time
				}
				keep = append(keep, it)
			}
		}
		s.expired = keep
		s.oldestExp = oldest
	}
}

// Merge folds another sampler with the same k and delta into s, advancing
// s to the later of the two clocks. Items from o are re-bucketed against
// the merged clock (current, expired, or discarded); if the combined
// current set exceeds k, the largest-priority items are evicted one by one,
// each eviction clamping the per-item thresholds of the survivors to the
// evicted priority — the same sequential 1-substitutable rule as
// AddWithPriority, so the merged per-item thresholds never depend on a
// retained item's own priority. o is not modified.
func (s *Sampler) Merge(o *Sampler) error {
	if o == s {
		// Iterating o's storage while appending to the same slices would
		// duplicate items and clamp thresholds to retained priorities.
		return errors.New("window: cannot merge a sampler into itself")
	}
	if o.k != s.k {
		return errors.New("window: cannot merge samplers with different k")
	}
	if o.delta != s.delta {
		return errors.New("window: cannot merge samplers with different delta")
	}
	now := s.now
	if o.now > now {
		now = o.now
	}
	s.Advance(now)
	cutCur := now - s.delta
	cutExp := now - 2*s.delta
	for _, it := range o.expired {
		if it.Time > cutExp && it.Time <= cutCur {
			if it.Time < s.oldestExp {
				s.oldestExp = it.Time
			}
			s.expired = append(s.expired, it)
		}
	}
	for _, it := range o.current {
		switch {
		case it.Time > cutCur:
			if it.Time < s.oldestCur {
				s.oldestCur = it.Time
			}
			s.current = append(s.current, it)
		case it.Time > cutExp:
			if it.Time < s.oldestExp {
				s.oldestExp = it.Time
			}
			s.expired = append(s.expired, it)
		}
	}
	// Foreign items invalidate both caches (their thresholds may exceed
	// s's current maximum).
	s.maxIdx = -1
	s.maxT = 1
	for len(s.current) > s.k {
		maxIdx := 0
		for i := 1; i < len(s.current); i++ {
			if s.current[i].R > s.current[maxIdx].R {
				maxIdx = i
			}
		}
		boundary := s.current[maxIdx].R
		last := len(s.current) - 1
		s.current[maxIdx] = s.current[last]
		s.current = s.current[:last]
		s.clamp(boundary)
		s.lastBoundary = boundary
	}
	return nil
}

// StoredItems returns the total number of stored items (current + expired),
// i.e. the sketch's space usage in items.
func (s *Sampler) StoredItems() int { return len(s.current) + len(s.expired) }

// GLThreshold returns the original Gemulla & Lehner extraction threshold:
// the k-th smallest priority among all stored items, or 1 when fewer than k
// items are stored.
func (s *Sampler) GLThreshold() float64 {
	n := len(s.current) + len(s.expired)
	if n < s.k {
		return 1
	}
	all := make([]float64, 0, n)
	for _, it := range s.current {
		all = append(all, it.R)
	}
	for _, it := range s.expired {
		all = append(all, it.R)
	}
	return kthSmallest(all, s.k)
}

// ImprovedThreshold returns the paper's improved extraction threshold: the
// minimum of the per-item thresholds of the current examples, or 1 when
// there are no current examples.
func (s *Sampler) ImprovedThreshold() float64 {
	t := 1.0
	for _, it := range s.current {
		if it.T < t {
			t = it.T
		}
	}
	return t
}

// GLSample returns the uniform sample of the current window under the G&L
// threshold: current items with priority at most the threshold (the
// threshold item itself is included by symmetry, as in the paper).
func (s *Sampler) GLSample() ([]Item, float64) {
	t := s.GLThreshold()
	var out []Item
	for _, it := range s.current {
		if it.R <= t {
			out = append(out, it)
		}
	}
	return out, t
}

// ImprovedSample returns the uniform sample of the current window under the
// improved threshold: current items with priority strictly below it. Use
// AppendImprovedSample to reuse a buffer instead.
func (s *Sampler) ImprovedSample() ([]Item, float64) {
	return s.AppendImprovedSample(nil)
}

// AppendImprovedSample appends the improved-threshold sample to dst and
// returns the extended slice with the threshold; with a reused dst it
// performs no allocation.
func (s *Sampler) AppendImprovedSample(dst []Item) ([]Item, float64) {
	t := s.ImprovedThreshold()
	for _, it := range s.current {
		if it.R < t {
			dst = append(dst, it)
		}
	}
	return dst, t
}

// CurrentItems returns a copy of the current examples.
func (s *Sampler) CurrentItems() []Item {
	out := make([]Item, len(s.current))
	copy(out, s.current)
	return out
}

// kthSmallest returns the k-th smallest element of xs (1-based); +inf if
// k > len(xs). It mutates a copy.
func kthSmallest(xs []float64, k int) float64 {
	if k > len(xs) {
		return math.Inf(1)
	}
	buf := make([]float64, len(xs))
	copy(buf, xs)
	lo, hi := 0, len(buf)-1
	target := k - 1
	for lo < hi {
		p := buf[lo+(hi-lo)/2]
		i, j := lo, hi
		for i <= j {
			for buf[i] < p {
				i++
			}
			for buf[j] > p {
				j--
			}
			if i <= j {
				buf[i], buf[j] = buf[j], buf[i]
				i++
				j--
			}
		}
		switch {
		case target <= j:
			hi = j
		case target >= i:
			lo = i
		default:
			return buf[target]
		}
	}
	return buf[target]
}
