package groupby

import (
	"math"
	"sort"
	"testing"

	"ats/internal/stream"
)

// TestGroupedDistinctAccuracy is the statistical-accuracy harness for
// grouped distinct counting: seeded synthetic streams with Zipf and
// uniform group skew, estimates compared against exactly computed
// per-group distinct counts, with relative-error bounds asserted on the
// heavy groups (whose dedicated sketches adapt the sampling rate) and an
// absolute bound — a fraction of the heavy-group scale, the paper's §3.6
// guarantee — on the light ones.
func TestGroupedDistinctAccuracy(t *testing.T) {
	type tc struct {
		name      string
		m, k      int
		seed      uint64
		groups    int
		items     int
		zipfS     float64 // 0 = uniform group skew
		heavyRel  float64 // max mean relative error over the top-m/2 groups
		lightFrac float64 // max |err| on any group, as a fraction of the largest group
	}
	cases := []tc{
		{"zipf-mild", 16, 128, 101, 400, 200000, 1.2, 0.20, 0.20},
		{"zipf-steep", 16, 128, 103, 400, 200000, 1.6, 0.20, 0.20},
		{"uniform", 16, 128, 107, 64, 200000, 0, 0.25, 0.25},
		{"small-sketch-zipf", 8, 64, 109, 300, 150000, 1.4, 0.35, 0.30},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cnt := New(c.m, c.k, c.seed)
			exact := make(map[uint64]map[uint64]struct{})
			var z *stream.Zipf
			if c.zipfS > 0 {
				z = stream.NewZipf(c.groups, c.zipfS, c.seed+1)
			}
			rng := stream.NewRNG(c.seed + 2)
			for i := 0; i < c.items; i++ {
				var g uint64
				if z != nil {
					g = z.Next()
				} else {
					g = uint64(rng.Intn(c.groups))
				}
				key := g<<40 | uint64(rng.Intn(1<<16))
				cnt.Add(g, key)
				if exact[g] == nil {
					exact[g] = make(map[uint64]struct{})
				}
				exact[g][key] = struct{}{}
			}

			// Rank groups by exact distinct count.
			type gc struct {
				g uint64
				n int
			}
			ranked := make([]gc, 0, len(exact))
			for g, set := range exact {
				ranked = append(ranked, gc{g, len(set)})
			}
			sort.Slice(ranked, func(i, j int) bool {
				if ranked[i].n != ranked[j].n {
					return ranked[i].n > ranked[j].n
				}
				return ranked[i].g < ranked[j].g
			})
			largest := float64(ranked[0].n)

			// Heavy groups: mean relative error bound.
			heavy := c.m / 2
			if heavy > len(ranked) {
				heavy = len(ranked)
			}
			sumRel := 0.0
			for _, r := range ranked[:heavy] {
				est := cnt.Estimate(r.g)
				sumRel += math.Abs(est-float64(r.n)) / float64(r.n)
			}
			if meanRel := sumRel / float64(heavy); meanRel > c.heavyRel {
				t.Errorf("mean relative error over top %d groups = %.3f, bound %.3f",
					heavy, meanRel, c.heavyRel)
			}

			// Every group: error bounded by a fraction of the heavy scale.
			for _, r := range ranked {
				est := cnt.Estimate(r.g)
				if frac := math.Abs(est-float64(r.n)) / largest; frac > c.lightFrac {
					t.Errorf("group %d (exact %d): estimate %.1f off by %.3f of heavy scale, bound %.3f",
						r.g, r.n, est, frac, c.lightFrac)
				}
			}

			// The ranking surface must put genuinely heavy groups on top:
			// the top-5 estimated groups must all be within the top-m
			// exact groups. Under uniform skew every group is statistically
			// identical, so ranking order carries no signal — skip it.
			if c.zipfS == 0 {
				return
			}
			top := cnt.GroupEstimates(5)
			exactTop := make(map[uint64]struct{})
			for _, r := range ranked[:min(c.m, len(ranked))] {
				exactTop[r.g] = struct{}{}
			}
			for _, ge := range top {
				if _, ok := exactTop[ge.Group]; !ok {
					t.Errorf("estimated-top group %d (est %.1f) is not among the exact top %d",
						ge.Group, ge.Estimate, c.m)
				}
			}
		})
	}
}
