// Package groupby implements the "frequent items for distinct counting"
// scheme of §3.6: estimating distinct counts grouped by an attribute when
// there are far too many groups to give each its own sketch. It maintains m
// dedicated bottom-k sketches for the currently-heavy groups plus one
// general pool of (group, hash) samples thresholded at
// Tmax = max_g T_g. When a pooled group accumulates more than k items, it
// is promoted: it takes over the dedicated slot of the group with the
// largest threshold, whose items are demoted back into the pool.
//
// The effect is that the sampling rate adapts to the appropriate rate for
// the top m groups, and the tolerated error for small groups is a fraction
// of the heavy groups' sizes rather than of their own.
package groupby

import (
	"sort"

	"ats/internal/stream"
)

// poolItem is one sampled (group, hash) pair in the general pool.
type poolItem struct {
	group uint64
	hash  float64
}

// groupSketch is a dedicated bottom-k sketch for one group, stored as a
// sorted slice (k is small; insertion is O(k)).
type groupSketch struct {
	hashes []float64 // sorted ascending, at most k+1 retained
}

func (g *groupSketch) threshold(k int) float64 {
	if len(g.hashes) < k+1 {
		return 1
	}
	return g.hashes[k]
}

func (g *groupSketch) add(h float64, k int) {
	i := sort.SearchFloat64s(g.hashes, h)
	if i < len(g.hashes) && g.hashes[i] == h {
		return
	}
	if i > k {
		return // beyond the (k+1)-th smallest; irrelevant
	}
	g.hashes = append(g.hashes, 0)
	copy(g.hashes[i+1:], g.hashes[i:])
	g.hashes[i] = h
	if len(g.hashes) > k+1 {
		g.hashes = g.hashes[:k+1]
	}
}

func (g *groupSketch) estimate(k int) float64 {
	t := g.threshold(k)
	if t >= 1 {
		return float64(len(g.hashes))
	}
	n := sort.SearchFloat64s(g.hashes, t)
	return float64(n) / t
}

// Counter estimates distinct counts per group with m dedicated sketches of
// size k plus a shared pool.
type Counter struct {
	m, k int
	seed uint64

	dedicated map[uint64]*groupSketch
	pool      []poolItem
	poolByG   map[uint64]int // group -> item count in pool
	tmax      float64
	groups    map[uint64]struct{} // all group ids ever seen
}

// New returns a Counter with at most m dedicated sketches of size k.
func New(m, k int, seed uint64) *Counter {
	if m <= 0 || k <= 0 {
		panic("groupby: m and k must be positive")
	}
	return &Counter{
		m:         m,
		k:         k,
		seed:      seed,
		dedicated: make(map[uint64]*groupSketch, m),
		poolByG:   make(map[uint64]int),
		tmax:      1,
		groups:    make(map[uint64]struct{}),
	}
}

// Add offers an item belonging to the given group.
func (c *Counter) Add(group, key uint64) {
	c.groups[group] = struct{}{}
	h := stream.HashU01(key, c.seed)
	if g, ok := c.dedicated[group]; ok {
		g.add(h, c.k)
		c.refreshTmax()
		return
	}
	if h >= c.tmax {
		return
	}
	// Deduplicate within the pool (same group+hash).
	for _, it := range c.pool {
		if it.group == group && it.hash == h {
			return
		}
	}
	c.pool = append(c.pool, poolItem{group: group, hash: h})
	c.poolByG[group]++
	if c.poolByG[group] > c.k {
		c.promote(group)
	}
}

// promote moves group into a dedicated sketch, evicting the dedicated
// group with the largest threshold if all m slots are taken.
func (c *Counter) promote(group uint64) {
	gs := &groupSketch{}
	rest := c.pool[:0]
	for _, it := range c.pool {
		if it.group == group {
			gs.add(it.hash, c.k)
		} else {
			rest = append(rest, it)
		}
	}
	c.pool = rest
	delete(c.poolByG, group)

	if len(c.dedicated) >= c.m {
		// Demote the dedicated group with the largest threshold.
		var worst uint64
		worstT := -1.0
		for g, sk := range c.dedicated {
			if t := sk.threshold(c.k); t > worstT {
				worst, worstT = g, t
			}
		}
		demoted := c.dedicated[worst]
		delete(c.dedicated, worst)
		for _, h := range demoted.hashes {
			if h < c.tmax {
				c.pool = append(c.pool, poolItem{group: worst, hash: h})
				c.poolByG[worst]++
			}
		}
	}
	c.dedicated[group] = gs
	c.refreshTmax()
}

// refreshTmax recomputes Tmax = max over dedicated thresholds and prunes
// pool items above it.
func (c *Counter) refreshTmax() {
	t := 0.0
	if len(c.dedicated) < c.m {
		t = 1 // open slots: the pool must accept everything
	} else {
		for _, sk := range c.dedicated {
			if th := sk.threshold(c.k); th > t {
				t = th
			}
		}
	}
	if t >= c.tmax {
		return
	}
	c.tmax = t
	rest := c.pool[:0]
	for _, it := range c.pool {
		if it.hash < c.tmax {
			rest = append(rest, it)
		} else {
			c.poolByG[it.group]--
			if c.poolByG[it.group] == 0 {
				delete(c.poolByG, it.group)
			}
		}
	}
	c.pool = rest
}

// Estimate returns the estimated distinct count for a group: the dedicated
// sketch estimate if promoted, otherwise the HT estimate of its pool items
// at rate Tmax.
func (c *Counter) Estimate(group uint64) float64 {
	if g, ok := c.dedicated[group]; ok {
		return g.estimate(c.k)
	}
	return float64(c.poolByG[group]) / c.tmax
}

// Groups returns the number of distinct groups observed.
func (c *Counter) Groups() int { return len(c.groups) }

// MemoryItems returns the total retained items across dedicated sketches
// and the pool — the footprint compared against the one-sketch-per-group
// baseline.
func (c *Counter) MemoryItems() int {
	n := len(c.pool)
	for _, g := range c.dedicated {
		n += len(g.hashes)
	}
	return n
}

// Tmax returns the pool threshold.
func (c *Counter) Tmax() float64 { return c.tmax }

// DedicatedGroups returns the ids of currently promoted groups.
func (c *Counter) DedicatedGroups() []uint64 {
	out := make([]uint64, 0, len(c.dedicated))
	for g := range c.dedicated {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
