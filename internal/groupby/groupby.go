// Package groupby implements the "frequent items for distinct counting"
// scheme of §3.6: estimating distinct counts grouped by an attribute when
// there are far too many groups to give each its own sketch. It maintains m
// dedicated bottom-k sketches for the currently-heavy groups plus one
// general pool of (group, hash) samples thresholded at
// Tmax = max_g T_g. When a pooled group accumulates more than k items, it
// is promoted: it takes over the dedicated slot of the group with the
// largest threshold, whose items are demoted back into the pool.
//
// The effect is that the sampling rate adapts to the appropriate rate for
// the top m groups, and the tolerated error for small groups is a fraction
// of the heavy groups' sizes rather than of their own.
package groupby

import (
	"errors"
	"fmt"
	"sort"

	"ats/internal/stream"
)

// poolItem is one sampled (group, hash) pair in the general pool.
type poolItem struct {
	group uint64
	hash  float64
}

// groupSketch is a dedicated bottom-k sketch for one group, stored as a
// sorted slice (k is small; insertion is O(k)).
type groupSketch struct {
	hashes []float64 // sorted ascending, at most k+1 retained
}

func (g *groupSketch) threshold(k int) float64 {
	if len(g.hashes) < k+1 {
		return 1
	}
	return g.hashes[k]
}

// add offers a hash and reports whether the sketch changed (a no-op add
// cannot have moved the group's threshold).
func (g *groupSketch) add(h float64, k int) bool {
	i := sort.SearchFloat64s(g.hashes, h)
	if i < len(g.hashes) && g.hashes[i] == h {
		return false
	}
	if i > k {
		return false // beyond the (k+1)-th smallest; irrelevant
	}
	g.hashes = append(g.hashes, 0)
	copy(g.hashes[i+1:], g.hashes[i:])
	g.hashes[i] = h
	if len(g.hashes) > k+1 {
		g.hashes = g.hashes[:k+1]
	}
	return true
}

func (g *groupSketch) estimate(k int) float64 {
	t := g.threshold(k)
	if t >= 1 {
		return float64(len(g.hashes))
	}
	n := sort.SearchFloat64s(g.hashes, t)
	return float64(n) / t
}

// Counter estimates distinct counts per group with m dedicated sketches of
// size k plus a shared pool.
type Counter struct {
	m, k int
	seed uint64

	dedicated map[uint64]*groupSketch
	pool      []poolItem
	poolByG   map[uint64]int // group -> item count in pool
	// poolSet is the derived membership index of pool, keeping the
	// duplicate check (and therefore Merge replays) O(1) per point; it
	// is rebuilt on decode, never serialized.
	poolSet map[poolItem]struct{}
	tmax    float64
	groups  map[uint64]struct{} // all group ids ever seen
}

// New returns a Counter with at most m dedicated sketches of size k.
func New(m, k int, seed uint64) *Counter {
	if m <= 0 || k <= 0 {
		panic("groupby: m and k must be positive")
	}
	return &Counter{
		m:         m,
		k:         k,
		seed:      seed,
		dedicated: make(map[uint64]*groupSketch, m),
		poolByG:   make(map[uint64]int),
		poolSet:   make(map[poolItem]struct{}),
		tmax:      1,
		groups:    make(map[uint64]struct{}),
	}
}

// M returns the number of dedicated sketch slots.
func (c *Counter) M() int { return c.m }

// K returns the per-group sketch size.
func (c *Counter) K() int { return c.k }

// Seed returns the coordination seed; counters sharing a seed are
// mergeable.
func (c *Counter) Seed() uint64 { return c.seed }

// Add offers an item belonging to the given group.
func (c *Counter) Add(group, key uint64) {
	c.groups[group] = struct{}{}
	c.addHash(group, stream.HashU01(key, c.seed))
}

// addHash offers an already-hashed priority for group: the shared
// building block of Add and Merge (merged points must not be re-hashed).
func (c *Counter) addHash(group uint64, h float64) {
	if g, ok := c.dedicated[group]; ok {
		// refreshTmax walks every dedicated sketch (O(m)); skip it when
		// the add was a no-op — no threshold can have moved.
		if g.add(h, c.k) {
			c.refreshTmax()
		}
		return
	}
	if h >= c.tmax {
		return
	}
	// Deduplicate within the pool (same group+hash).
	it := poolItem{group: group, hash: h}
	if _, dup := c.poolSet[it]; dup {
		return
	}
	c.pool = append(c.pool, it)
	c.poolSet[it] = struct{}{}
	c.poolByG[group]++
	if c.poolByG[group] > c.k {
		c.promote(group)
	}
}

// promote moves group into a dedicated sketch, evicting the dedicated
// group with the largest threshold if all m slots are taken.
func (c *Counter) promote(group uint64) {
	gs := &groupSketch{}
	rest := c.pool[:0]
	for _, it := range c.pool {
		if it.group == group {
			gs.add(it.hash, c.k)
			delete(c.poolSet, it)
		} else {
			rest = append(rest, it)
		}
	}
	c.pool = rest
	delete(c.poolByG, group)

	if len(c.dedicated) >= c.m {
		// Demote the dedicated group with the largest threshold,
		// tie-broken by smaller group id so eviction (and therefore Merge)
		// is deterministic regardless of map iteration order.
		var worst uint64
		worstT := -1.0
		for g, sk := range c.dedicated {
			if t := sk.threshold(c.k); t > worstT || (t == worstT && g < worst) {
				worst, worstT = g, t
			}
		}
		demoted := c.dedicated[worst]
		delete(c.dedicated, worst)
		for _, h := range demoted.hashes {
			if h < c.tmax {
				it := poolItem{group: worst, hash: h}
				c.pool = append(c.pool, it)
				c.poolSet[it] = struct{}{}
				c.poolByG[worst]++
			}
		}
	}
	c.dedicated[group] = gs
	c.refreshTmax()
}

// refreshTmax recomputes Tmax = max over dedicated thresholds and prunes
// pool items above it.
func (c *Counter) refreshTmax() {
	t := 0.0
	if len(c.dedicated) < c.m {
		t = 1 // open slots: the pool must accept everything
	} else {
		for _, sk := range c.dedicated {
			if th := sk.threshold(c.k); th > t {
				t = th
			}
		}
	}
	if t >= c.tmax {
		return
	}
	c.tmax = t
	rest := c.pool[:0]
	for _, it := range c.pool {
		if it.hash < c.tmax {
			rest = append(rest, it)
		} else {
			delete(c.poolSet, it)
			c.poolByG[it.group]--
			if c.poolByG[it.group] == 0 {
				delete(c.poolByG, it.group)
			}
		}
	}
	c.pool = rest
}

// Estimate returns the estimated distinct count for a group: the dedicated
// sketch estimate if promoted, otherwise the HT estimate of its pool items
// at rate Tmax.
func (c *Counter) Estimate(group uint64) float64 {
	if g, ok := c.dedicated[group]; ok {
		return g.estimate(c.k)
	}
	return float64(c.poolByG[group]) / c.tmax
}

// Groups returns the number of distinct groups observed.
func (c *Counter) Groups() int { return len(c.groups) }

// MemoryItems returns the total retained items across dedicated sketches
// and the pool — the footprint compared against the one-sketch-per-group
// baseline.
func (c *Counter) MemoryItems() int {
	n := len(c.pool)
	for _, g := range c.dedicated {
		n += len(g.hashes)
	}
	return n
}

// Tmax returns the pool threshold.
func (c *Counter) Tmax() float64 { return c.tmax }

// Point is one retained (group, hash) sample point with the
// pseudo-inclusion probability implied by its threshold: the owning
// dedicated sketch's threshold for promoted groups, Tmax for pooled
// points (1 when the threshold is still open). Only points strictly
// below their threshold are reported — exactly the points the estimators
// count.
type Point struct {
	Group uint64
	Hash  float64
	P     float64
}

// Points returns every retained sample point in canonical order (groups
// ascending, hashes ascending), ready for Horvitz-Thompson estimation: a
// subset count of the points of one group reproduces Estimate(group).
func (c *Counter) Points() []Point {
	out := make([]Point, 0, c.MemoryItems())
	for _, g := range c.DedicatedGroups() {
		sk := c.dedicated[g]
		t := sk.threshold(c.k)
		if t >= 1 {
			for _, h := range sk.hashes {
				out = append(out, Point{Group: g, Hash: h, P: 1})
			}
			continue
		}
		for _, h := range sk.hashes {
			if h < t {
				out = append(out, Point{Group: g, Hash: h, P: t})
			}
		}
	}
	p := c.tmax
	for _, it := range c.pool {
		out = append(out, Point{Group: it.group, Hash: it.hash, P: p})
	}
	// One final sort orders everything — dedicated and pooled points
	// alike — so the pool needs no pre-sorting of its own.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// GroupEstimate is one group with its estimated distinct count.
type GroupEstimate struct {
	Group    uint64
	Estimate float64
	// Dedicated reports whether the group currently owns a dedicated
	// sketch (heavy group) or is estimated from the shared pool.
	Dedicated bool
}

// GroupEstimates returns the estimated distinct count of every group with
// at least one retained point, sorted by estimate descending (ties broken
// by ascending group id). n > 0 truncates the ranking to the n largest.
// Groups whose points were all pruned from the pool are absent: their
// estimate is statistically indistinguishable from zero at the current
// sampling rate.
func (c *Counter) GroupEstimates(n int) []GroupEstimate {
	out := make([]GroupEstimate, 0, len(c.dedicated)+len(c.poolByG))
	for g := range c.dedicated {
		out = append(out, GroupEstimate{Group: g, Estimate: c.Estimate(g), Dedicated: true})
	}
	for g := range c.poolByG {
		out = append(out, GroupEstimate{Group: g, Estimate: c.Estimate(g)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Group < out[j].Group
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// AppendGroupEstimates appends the n largest group estimates to dst in
// the same order GroupEstimates(n) returns them (estimate descending,
// ties by ascending group id) and returns the extended slice. It
// materializes only n entries: one scan over the groups maintaining an
// n-length insertion buffer instead of building and sorting the full
// ranking, the bounded form the store's query planner pushes below the
// merge.
func (c *Counter) AppendGroupEstimates(dst []GroupEstimate, n int) []GroupEstimate {
	if n <= 0 {
		return dst
	}
	base := len(dst)
	before := func(a, b GroupEstimate) bool {
		if a.Estimate != b.Estimate {
			return a.Estimate > b.Estimate
		}
		return a.Group < b.Group
	}
	add := func(e GroupEstimate) {
		if len(dst)-base == n {
			if !before(e, dst[len(dst)-1]) {
				return
			}
			dst = dst[:len(dst)-1]
		}
		i := len(dst)
		dst = append(dst, e)
		for i > base && before(e, dst[i-1]) {
			dst[i] = dst[i-1]
			i--
		}
		dst[i] = e
	}
	for g := range c.dedicated {
		add(GroupEstimate{Group: g, Estimate: c.Estimate(g), Dedicated: true})
	}
	for g := range c.poolByG {
		add(GroupEstimate{Group: g, Estimate: c.Estimate(g)})
	}
	return dst
}

// Merge folds another counter into c. Both counters must share m, k and
// seed (their hashes are coordinated, so the union of retained points is
// a valid state of the combined stream); merging a counter into itself is
// rejected. The other counter is not modified. Points are replayed in a
// canonical order (groups ascending, hashes ascending), so merging equal
// logical states always produces identical results regardless of map
// iteration order.
func (c *Counter) Merge(o *Counter) error {
	if c == o {
		return errors.New("groupby: cannot merge a counter into itself")
	}
	if c.m != o.m || c.k != o.k || c.seed != o.seed {
		return fmt.Errorf("groupby: incompatible counters (m=%d/%d, k=%d/%d, seed=%d/%d)",
			c.m, o.m, c.k, o.k, c.seed, o.seed)
	}
	for _, g := range sortedGroups(o.groups) {
		c.groups[g] = struct{}{}
	}
	for _, g := range o.DedicatedGroups() {
		for _, h := range o.dedicated[g].hashes {
			c.addHash(g, h)
		}
	}
	for _, it := range sortedPoolCopy(o.pool) {
		c.addHash(it.group, it.hash)
	}
	return nil
}

// sortedPoolCopy returns the pool in canonical (group, hash) order — the
// single definition of the order the codec serializes and Merge replays
// in (the marshal ∘ unmarshal identity depends on all sites agreeing).
func sortedPoolCopy(pool []poolItem) []poolItem {
	out := make([]poolItem, len(pool))
	copy(out, pool)
	sort.Slice(out, func(i, j int) bool {
		if out[i].group != out[j].group {
			return out[i].group < out[j].group
		}
		return out[i].hash < out[j].hash
	})
	return out
}

func sortedGroups(set map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DedicatedGroups returns the ids of currently promoted groups.
func (c *Counter) DedicatedGroups() []uint64 {
	out := make([]uint64, 0, len(c.dedicated))
	for g := range c.dedicated {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
