package groupby

import (
	"math"
	"testing"

	"ats/internal/stream"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ m, k int }{{0, 5}, {5, 0}, {-1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) must panic", c.m, c.k)
				}
			}()
			New(c.m, c.k, 1)
		}()
	}
}

func TestSmallGroupsExactViaPool(t *testing.T) {
	c := New(2, 8, 1)
	// Below promotion pressure everything sits in the pool at Tmax = 1, so
	// counts are exact.
	for g := uint64(0); g < 5; g++ {
		for i := uint64(0); i < 4; i++ {
			c.Add(g, g*100+i)
		}
	}
	for g := uint64(0); g < 5; g++ {
		if got := c.Estimate(g); got != 4 {
			t.Errorf("group %d estimate %v, want exact 4", g, got)
		}
	}
	if c.Groups() != 5 {
		t.Errorf("groups = %d", c.Groups())
	}
}

func TestPromotionOnHeavyGroup(t *testing.T) {
	c := New(2, 8, 2)
	for i := uint64(0); i < 100; i++ {
		c.Add(7, i)
	}
	promoted := c.DedicatedGroups()
	if len(promoted) != 1 || promoted[0] != 7 {
		t.Fatalf("promoted = %v, want [7]", promoted)
	}
	est := c.Estimate(7)
	if est < 50 || est > 200 {
		t.Errorf("promoted group estimate %v, want ≈ 100", est)
	}
}

func TestDuplicateItemsIgnored(t *testing.T) {
	c := New(2, 8, 3)
	for i := 0; i < 50; i++ {
		c.Add(1, 42) // same item repeatedly
	}
	if got := c.Estimate(1); got != 1 {
		t.Errorf("estimate %v, want 1 for a single distinct item", got)
	}
}

func TestHeavyGroupsAccurate(t *testing.T) {
	c := New(10, 64, 4)
	rng := stream.NewRNG(5)
	// 3 heavy groups with 5000 distinct items; 500 light groups with 5.
	truth := make(map[uint64]int)
	for g := uint64(0); g < 3; g++ {
		for i := 0; i < 5000; i++ {
			c.Add(g, g<<32|uint64(i))
		}
		truth[g] = 5000
	}
	for g := uint64(100); g < 600; g++ {
		for i := 0; i < 5; i++ {
			c.Add(g, g<<32|uint64(i))
		}
		truth[g] = 5
	}
	_ = rng
	for g := uint64(0); g < 3; g++ {
		est := c.Estimate(g)
		if rel := math.Abs(est-5000) / 5000; rel > 0.5 {
			t.Errorf("heavy group %d estimate %v (rel err %v)", g, est, rel)
		}
	}
	// Memory must be far below one-sketch-per-group on the heavy side.
	if c.MemoryItems() > 3*(64+1)+500*64 {
		t.Errorf("memory %d items seems unbounded", c.MemoryItems())
	}
}

func TestMemoryBoundedUnderManyGroups(t *testing.T) {
	m, k := 8, 16
	c := New(m, k, 6)
	z := stream.NewZipf(2000, 1.2, 7)
	rng := stream.NewRNG(8)
	for i := 0; i < 100000; i++ {
		g := z.Next()
		c.Add(g, g<<32|uint64(rng.Intn(5000)))
	}
	// Dedicated sketches hold at most m*(k+1); the pool holds the union of
	// group samples at Tmax. The bound below is loose but catches
	// unbounded growth.
	if c.MemoryItems() > 40*m*(k+1) {
		t.Errorf("memory %d items; dedicated budget is %d", c.MemoryItems(), m*(k+1))
	}
	if got := len(c.DedicatedGroups()); got != m {
		t.Errorf("dedicated groups = %d, want %d", got, m)
	}
	if c.Tmax() <= 0 || c.Tmax() > 1 {
		t.Errorf("Tmax = %v out of (0, 1]", c.Tmax())
	}
}

func TestPoolPrunedWhenTmaxDrops(t *testing.T) {
	c := New(1, 4, 9)
	// Promote one group; its threshold becomes Tmax.
	for i := uint64(0); i < 200; i++ {
		c.Add(1, i)
	}
	tmax := c.Tmax()
	if tmax >= 1 {
		t.Fatal("Tmax should have dropped below 1")
	}
	// Pool items must all be below Tmax.
	for _, it := range c.pool {
		if it.hash >= tmax {
			t.Errorf("pool item hash %v above Tmax %v", it.hash, tmax)
		}
	}
}
