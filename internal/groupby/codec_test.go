package groupby

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"

	"ats/internal/stream"
)

// loadedCounter builds a counter driven far enough to have promoted
// groups, a populated pool and a Tmax below 1.
func loadedCounter(t testing.TB, m, k int, seed uint64, items int) *Counter {
	t.Helper()
	c := New(m, k, seed)
	z := stream.NewZipf(400, 1.3, seed^0x5eed)
	rng := stream.NewRNG(seed + 1)
	for i := 0; i < items; i++ {
		g := z.Next()
		c.Add(g, g<<32|uint64(rng.Intn(4000)))
	}
	return c
}

func TestCodecRoundTripBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    *Counter
	}{
		{"empty", New(4, 8, 1)},
		{"pool-only", func() *Counter {
			c := New(4, 8, 2)
			for g := uint64(0); g < 3; g++ {
				for i := uint64(0); i < 4; i++ {
					c.Add(g, g*100+i)
				}
			}
			return c
		}()},
		{"promoted", loadedCounter(t, 4, 8, 3, 20000)},
		{"big", loadedCounter(t, 16, 32, 4, 100000)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, err := tc.c.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var d Counter
			if err := d.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			again, err := d.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("marshal ∘ unmarshal is not the identity on bytes: %d vs %d bytes", len(data), len(again))
			}
			// Logical state must match exactly.
			if d.Tmax() != tc.c.Tmax() || d.Groups() != tc.c.Groups() ||
				d.MemoryItems() != tc.c.MemoryItems() {
				t.Fatalf("round trip changed state: tmax %v->%v, groups %d->%d",
					tc.c.Tmax(), d.Tmax(), tc.c.Groups(), d.Groups())
			}
			if !reflect.DeepEqual(d.GroupEstimates(0), tc.c.GroupEstimates(0)) {
				t.Fatal("round trip changed group estimates")
			}
			// A restored counter must keep ingesting identically.
			c2 := tc.c
			for i := uint64(0); i < 500; i++ {
				c2.Add(i%7, i*0x9e3779b97f4a7c15)
				d.Add(i%7, i*0x9e3779b97f4a7c15)
			}
			b1, _ := c2.MarshalBinary()
			b2, _ := d.MarshalBinary()
			if !bytes.Equal(b1, b2) {
				t.Fatal("restored counter diverged from original under identical ingest")
			}
		})
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	c := loadedCounter(t, 4, 8, 5, 20000)
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), data...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":       {},
		"truncated":   data[:len(data)-3],
		"bad magic":   mutate(func(b []byte) { b[0] ^= 0xff }),
		"bad version": mutate(func(b []byte) { b[4] = 99 }),
		"zero m":      mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[5:], 0) }),
		"zero k":      mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[9:], 0) }),
		"tmax > 1": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[21:], math.Float64bits(1.5))
		}),
		"tmax NaN": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[21:], math.Float64bits(math.NaN()))
		}),
		"trailing garbage": append(append([]byte(nil), data...), 1, 2, 3),
	}
	for name, bad := range cases {
		var d Counter
		if err := d.UnmarshalBinary(bad); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Errorf("%s: error %v is not ErrCorrupt/ErrVersion", name, err)
		}
	}
}

// TestCodecDecodeBomb ensures a crafted header claiming huge section
// counts cannot force a large allocation: the decoder must fail on the
// actual (short) data length first.
func TestCodecDecodeBomb(t *testing.T) {
	buf := make([]byte, 0, codecHeader)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 1<<31)               // m
	buf = binary.LittleEndian.AppendUint32(buf, 1<<31)               // k
	buf = binary.LittleEndian.AppendUint64(buf, 1)                   // seed
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(1)) // tmax
	buf = binary.LittleEndian.AppendUint32(buf, 1<<31)               // nded
	buf = binary.LittleEndian.AppendUint32(buf, 1<<31)               // npool
	buf = binary.LittleEndian.AppendUint64(buf, 1<<60)               // ngroups
	var d Counter
	if err := d.UnmarshalBinary(buf); err == nil {
		t.Fatal("decode bomb accepted")
	}
}

func TestMergeMatchesCombinedIngest(t *testing.T) {
	// Split one stream across two counters, merge, and compare against a
	// counter that saw everything: the heavy-group estimates must agree
	// closely (the merged state is a valid state of the combined stream,
	// not necessarily the identical one).
	a, b, all := New(8, 32, 7), New(8, 32, 7), New(8, 32, 7)
	z := stream.NewZipf(300, 1.4, 11)
	rng := stream.NewRNG(12)
	for i := 0; i < 60000; i++ {
		g := z.Next()
		key := g<<32 | uint64(rng.Intn(3000))
		if i%2 == 0 {
			a.Add(g, key)
		} else {
			b.Add(g, key)
		}
		all.Add(g, key)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, ge := range all.GroupEstimates(5) {
		merged := a.Estimate(ge.Group)
		if rel := math.Abs(merged-ge.Estimate) / ge.Estimate; rel > 0.35 {
			t.Errorf("group %d: merged %v vs combined %v (rel %v)", ge.Group, merged, ge.Estimate, rel)
		}
	}
	if a.Groups() != all.Groups() {
		t.Errorf("merged observed %d groups, combined %d", a.Groups(), all.Groups())
	}
}

func TestMergeDeterministicAcrossRepresentations(t *testing.T) {
	// Merging a live counter and merging its decoded round trip into
	// identical targets must produce byte-identical results: the store's
	// restored-bucket queries depend on it.
	b := loadedCounter(t, 4, 16, 13, 30000)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Counter
	if err := decoded.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	t1 := loadedCounter(t, 4, 16, 13, 10000)
	t2 := loadedCounter(t, 4, 16, 13, 10000)
	if err := t1.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := t2.Merge(&decoded); err != nil {
		t.Fatal(err)
	}
	m1, _ := t1.MarshalBinary()
	m2, _ := t2.MarshalBinary()
	if !bytes.Equal(m1, m2) {
		t.Fatal("merging a decoded counter diverged from merging the live counter")
	}
}

func TestMergeGuards(t *testing.T) {
	c := New(4, 8, 1)
	if err := c.Merge(c); err == nil {
		t.Error("self-merge must be rejected")
	}
	for _, o := range []*Counter{New(5, 8, 1), New(4, 9, 1), New(4, 8, 2)} {
		if err := c.Merge(o); err == nil {
			t.Errorf("incompatible merge (m=%d k=%d seed=%d) accepted", o.m, o.k, o.seed)
		}
	}
	// The rejected merges must not have touched the counter.
	if c.Groups() != 0 || c.MemoryItems() != 0 || c.Tmax() != 1 {
		t.Error("rejected merge mutated the counter")
	}
}
