package groupby

import (
	"bytes"
	"testing"
)

// fuzzSeedCounter serializes a counter state for the fuzz seed corpus.
func fuzzSeedCounter(t testing.TB, m, k int, seed uint64, items int) []byte {
	data, err := loadedCounter(t, m, k, seed, items).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzGroupByCodecRoundTrip feeds arbitrary bytes to UnmarshalBinary.
// Decodable inputs must satisfy the counter's structural invariants and
// survive a marshal/unmarshal round trip bit-identically (the codec is
// canonical); everything else must be rejected with an error, never a
// panic or an unbounded allocation.
func FuzzGroupByCodecRoundTrip(f *testing.F) {
	f.Add(fuzzSeedCounter(f, 4, 8, 1, 0))
	f.Add(fuzzSeedCounter(f, 4, 8, 2, 50))
	f.Add(fuzzSeedCounter(f, 4, 8, 3, 20000))
	f.Add(fuzzSeedCounter(f, 16, 32, 4, 60000))
	if data := fuzzSeedCounter(f, 8, 16, 5, 30000); len(data) > 10 {
		f.Add(data[:len(data)-7])
	}
	f.Add([]byte{})
	f.Add([]byte("ATSGgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var c Counter
		if err := c.UnmarshalBinary(data); err != nil {
			return
		}
		if c.m <= 0 || c.k <= 0 || !(c.tmax > 0) || c.tmax > 1 {
			t.Fatalf("decoded invalid counter: m=%d k=%d tmax=%v", c.m, c.k, c.tmax)
		}
		if len(c.dedicated) > c.m {
			t.Fatalf("decoded %d dedicated groups for m=%d", len(c.dedicated), c.m)
		}
		for g, sk := range c.dedicated {
			if len(sk.hashes) > c.k+1 {
				t.Fatalf("dedicated group %d holds %d hashes for k=%d", g, len(sk.hashes), c.k)
			}
		}
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("codec is not canonical: %d bytes in, %d bytes out", len(data), len(out))
		}
		// Estimates over the decoded state must be finite and non-negative.
		for _, ge := range c.GroupEstimates(0) {
			if ge.Estimate < 0 || ge.Estimate != ge.Estimate {
				t.Fatalf("group %d estimate %v", ge.Group, ge.Estimate)
			}
		}
	})
}
