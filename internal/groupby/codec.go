package groupby

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Serialization format (little-endian):
//
//	magic   uint32  "ATSG"
//	version uint8   1
//	m       uint32
//	k       uint32
//	seed    uint64
//	tmax    float64
//	nded    uint32  dedicated groups (<= m)
//	npool   uint32  pool items
//	ngroups uint64  observed group ids
//	dedicated, sorted by group ascending, each:
//	  group uint64, nh uint32 (1..k+1), then nh × hash float64 ascending
//	pool, sorted by (group, hash) ascending: npool × (group uint64, hash float64)
//	groups, sorted ascending: ngroups × uint64
//
// Everything a counter holds is either in the stream or derived from it
// (poolByG is recomputed from the pool). Marshal canonicalizes map and
// pool order, so marshal ∘ unmarshal is the identity on bytes and two
// counters with equal logical state serialize identically.

const (
	codecMagic   = 0x41545347 // "ATSG"
	codecVersion = 1

	codecHeader = 4 + 1 + 4 + 4 + 8 + 8 + 4 + 4 + 8
)

var (
	// ErrCorrupt reports malformed or truncated serialized data.
	ErrCorrupt = errors.New("groupby: corrupt serialized counter")
	// ErrVersion reports an unsupported serialization version.
	ErrVersion = errors.New("groupby: unsupported serialization version")
)

// MarshalBinary serializes the counter in canonical form.
func (c *Counter) MarshalBinary() ([]byte, error) {
	ded := c.DedicatedGroups()
	size := codecHeader + len(c.pool)*16 + len(c.groups)*8
	for _, g := range ded {
		size += 8 + 4 + len(c.dedicated[g].hashes)*8
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.m))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.k))
	buf = binary.LittleEndian.AppendUint64(buf, c.seed)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.tmax))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ded)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.pool)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.groups)))
	for _, g := range ded {
		hs := c.dedicated[g].hashes
		buf = binary.LittleEndian.AppendUint64(buf, g)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hs)))
		for _, h := range hs {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h))
		}
	}
	for _, it := range sortedPoolCopy(c.pool) {
		buf = binary.LittleEndian.AppendUint64(buf, it.group)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.hash))
	}
	for _, g := range sortedGroups(c.groups) {
		buf = binary.LittleEndian.AppendUint64(buf, g)
	}
	return buf, nil
}

// UnmarshalBinary restores a counter serialized by MarshalBinary,
// overwriting the receiver. Every section length is validated against the
// actual data length before any count-sized allocation (decode-bomb
// guard), and the counter's structural invariants are re-checked so a
// crafted stream cannot materialize an impossible state.
func (c *Counter) UnmarshalBinary(data []byte) error {
	if len(data) < codecHeader {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != codecMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != codecVersion {
		return fmt.Errorf("%w: got %d", ErrVersion, data[4])
	}
	m := int(binary.LittleEndian.Uint32(data[5:]))
	k := int(binary.LittleEndian.Uint32(data[9:]))
	if m <= 0 || k <= 0 {
		return fmt.Errorf("%w: non-positive m=%d or k=%d", ErrCorrupt, m, k)
	}
	seed := binary.LittleEndian.Uint64(data[13:])
	tmax := math.Float64frombits(binary.LittleEndian.Uint64(data[21:]))
	if !(tmax > 0) || tmax > 1 {
		return fmt.Errorf("%w: tmax %v outside (0,1]", ErrCorrupt, tmax)
	}
	nded := int(binary.LittleEndian.Uint32(data[29:]))
	npool := int(binary.LittleEndian.Uint32(data[33:]))
	ngroups := binary.LittleEndian.Uint64(data[37:])
	if nded > m {
		return fmt.Errorf("%w: %d dedicated groups for m=%d", ErrCorrupt, nded, m)
	}
	if nded < m && tmax != 1 {
		return fmt.Errorf("%w: tmax %v with %d/%d dedicated slots open", ErrCorrupt, tmax, m-nded, m)
	}

	// Built by hand rather than through New: New pre-sizes the dedicated
	// map by m, and m here is attacker-controlled header input — map
	// capacities must follow the actual data, not the claim.
	restored := &Counter{
		m: m, k: k, seed: seed, tmax: tmax,
		dedicated: make(map[uint64]*groupSketch),
		poolByG:   make(map[uint64]int),
		poolSet:   make(map[poolItem]struct{}),
		groups:    make(map[uint64]struct{}),
	}
	off := codecHeader
	need := func(n int) error {
		if n < 0 || len(data)-off < n {
			return fmt.Errorf("%w: truncated body at offset %d", ErrCorrupt, off)
		}
		return nil
	}

	lastGroup, first := uint64(0), true
	for i := 0; i < nded; i++ {
		if err := need(12); err != nil {
			return err
		}
		g := binary.LittleEndian.Uint64(data[off:])
		nh := int(binary.LittleEndian.Uint32(data[off+8:]))
		off += 12
		if !first && g <= lastGroup {
			return fmt.Errorf("%w: dedicated groups out of order", ErrCorrupt)
		}
		lastGroup, first = g, false
		if nh < 1 || nh > k+1 {
			return fmt.Errorf("%w: dedicated group %d holds %d hashes for k=%d", ErrCorrupt, g, nh, k)
		}
		if err := need(nh * 8); err != nil {
			return err
		}
		hs := make([]float64, nh)
		for j := range hs {
			h := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
			if !(h > 0) || h >= 1 {
				return fmt.Errorf("%w: dedicated hash %v outside (0,1)", ErrCorrupt, h)
			}
			if j > 0 && h <= hs[j-1] {
				return fmt.Errorf("%w: dedicated hashes out of order", ErrCorrupt)
			}
			hs[j] = h
		}
		restored.dedicated[g] = &groupSketch{hashes: hs}
	}

	if err := need(npool * 16); err != nil {
		return err
	}
	var lastPool poolItem
	for i := 0; i < npool; i++ {
		g := binary.LittleEndian.Uint64(data[off:])
		h := math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		off += 16
		if !(h > 0) || h >= tmax {
			return fmt.Errorf("%w: pool hash %v outside (0,tmax)", ErrCorrupt, h)
		}
		if i > 0 && (g < lastPool.group || (g == lastPool.group && h <= lastPool.hash)) {
			return fmt.Errorf("%w: pool items out of order", ErrCorrupt)
		}
		if _, dedicated := restored.dedicated[g]; dedicated {
			return fmt.Errorf("%w: group %d is both dedicated and pooled", ErrCorrupt, g)
		}
		lastPool = poolItem{group: g, hash: h}
		restored.pool = append(restored.pool, lastPool)
		restored.poolSet[lastPool] = struct{}{}
		restored.poolByG[g]++
		if restored.poolByG[g] > k {
			return fmt.Errorf("%w: pooled group %d exceeds k=%d items", ErrCorrupt, g, k)
		}
	}

	// The remaining bytes must be exactly the observed-group section.
	if uint64(len(data)-off) != ngroups*8 || ngroups*8/8 != ngroups {
		return fmt.Errorf("%w: trailing section is %d bytes, want %d groups", ErrCorrupt, len(data)-off, ngroups)
	}
	var lastObs uint64
	for i := uint64(0); i < ngroups; i++ {
		g := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if i > 0 && g <= lastObs {
			return fmt.Errorf("%w: observed groups out of order", ErrCorrupt)
		}
		lastObs = g
		restored.groups[g] = struct{}{}
	}
	for g := range restored.dedicated {
		if _, ok := restored.groups[g]; !ok {
			return fmt.Errorf("%w: dedicated group %d missing from observed set", ErrCorrupt, g)
		}
	}
	for g := range restored.poolByG {
		if _, ok := restored.groups[g]; !ok {
			return fmt.Errorf("%w: pooled group %d missing from observed set", ErrCorrupt, g)
		}
	}
	*c = *restored
	return nil
}
