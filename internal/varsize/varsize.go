// Package varsize implements variance-sized samples (§3.9): instead of a
// fixed sample size k (which gives the relative-error guarantee
// V(ε) <= S²/(k-1) of priority sampling), the sample is grown until the
// estimated variance of the Horvitz-Thompson total meets an absolute
// target δ². The stopping rule "the first threshold T, scanning downward,
// at which the estimated variance reaches δ²" is a stopping time on the
// descending priority sequence, hence substitutable by Theorem 8; the
// heuristic variant without oversampling is justified by the asymptotic
// theory of §6.
package varsize

import (
	"math"
	"sort"

	"ats/internal/core"
	"ats/internal/stream"
)

// Entry is one retained weighted item.
type Entry struct {
	Key      uint64
	Weight   float64
	Value    float64
	Priority float64
}

// Sampler retains every item whose priority is below its retention
// threshold, and shrinks the retention threshold as the stream grows so
// that the retained set stays a modest oversampling of the δ²-crossing
// sample.
type Sampler struct {
	target2 float64 // δ²
	// overshoot >= 1 is the threshold-space oversampling factor: when
	// bounded-memory eviction is enabled (SetHorizon), retention keeps all
	// items with priority below overshoot × the current stopping threshold
	// so the stopping sample stays strictly inside the retained set.
	overshoot float64
	seed      uint64
	heap      []Entry // max-heap on Priority
	threshold float64 // retention threshold
	n         int
	// sinceShrink counts retained insertions since the last shrink probe;
	// probes cost O(|heap| log |heap|), so they run only after the heap has
	// grown by a constant fraction.
	sinceShrink int
	// horizon is the expected total stream length. 0 (the default) means
	// "retain everything" — the §3.9 rule is then applied offline at
	// Estimate time, which is always statistically safe. A positive horizon
	// enables bounded-memory eviction: the retention boundary is placed
	// where the current variance estimate equals δ²·(n/horizon)/overshoot,
	// anticipating that V̂ at a fixed threshold grows linearly in the
	// number of items seen (see shrink).
	horizon int
}

// New returns a sampler targeting absolute standard error delta (> 0) on
// the population total. overshoot >= 1 sets the oversampling safety factor
// (2 is a reasonable default; 1 disables oversampling and relies on the
// asymptotic argument of §6).
func New(delta, overshoot float64, seed uint64) *Sampler {
	if delta <= 0 {
		panic("varsize: delta must be positive")
	}
	if overshoot < 1 {
		panic("varsize: overshoot must be at least 1")
	}
	return &Sampler{
		target2:   delta * delta,
		overshoot: overshoot,
		seed:      seed,
		threshold: math.Inf(1),
	}
}

// Add offers an item with weight w > 0 and value x.
func (s *Sampler) Add(key uint64, w, x float64) {
	if w <= 0 {
		return
	}
	u := stream.HashU01(key, s.seed)
	s.AddWithPriority(Entry{Key: key, Weight: w, Value: x, Priority: u / w})
}

// AddWithPriority offers an item with an explicit priority.
func (s *Sampler) AddWithPriority(e Entry) {
	s.n++
	if e.Priority >= s.threshold {
		return
	}
	s.heap = append(s.heap, e)
	siftUp(s.heap, len(s.heap)-1)
	s.sinceShrink++
	if s.sinceShrink >= 16 && s.sinceShrink >= len(s.heap)/8 {
		s.sinceShrink = 0
		s.shrink()
	}
}

// SetHorizon declares the expected total stream length, enabling
// bounded-memory eviction. Without it the sampler retains every offered
// item and applies the stopping rule offline at Estimate time.
func (s *Sampler) SetHorizon(n int) { s.horizon = n }

// shrink lowers the retention threshold, but only when the data seen so
// far proves it safe. At a fixed threshold t, V̂(t; n) is a sum of
// non-negative per-item contributions, so it grows roughly linearly in the
// number of stream items n. The retention boundary is therefore placed at
// the threshold where the CURRENT variance estimate equals
// δ² × (n/horizon) / overshoot: by the linear-growth argument, the
// variance there at the horizon is ≈ δ²/overshoot < δ², which keeps the
// final stopping threshold — and hence the whole stopping sample —
// strictly inside the retained set, with the overshoot factor as the
// paper's "slight oversampling" buffer (§3.9) against fluctuations.
// While even that reduced target is unreachable (early stream), nothing is
// evicted and the retained set stays exact.
func (s *Sampler) shrink() {
	if s.horizon <= 0 {
		return
	}
	// Do not evict on a thin prefix: variance estimates from a small
	// fraction of the stream are too noisy to certify a cut, and the
	// retention threshold can never rise again. Memory therefore peaks at
	// ~horizon/8 items before eviction starts.
	if s.n < s.horizon/8 {
		return
	}
	frac := float64(s.n) / float64(s.horizon)
	if frac > 1 {
		frac = 1
	}
	probeTarget := s.target2 * frac / s.overshoot
	cut, ok := crossingThreshold(s.heap, s.threshold, probeTarget)
	if !ok {
		return
	}
	for len(s.heap) > 1 && s.heap[0].Priority > cut {
		s.threshold = popRoot(&s.heap).Priority
	}
}

// Result is the outcome of a variance-sized estimate.
type Result struct {
	// Sum is the HT estimate of the population total at the stopping
	// threshold.
	Sum float64
	// VarianceEstimate is V̂ at the stopping threshold (≈ δ² when the
	// stopping rule fired; smaller when the whole stream fit).
	VarianceEstimate float64
	// Threshold is the stopping threshold (+inf when no downsampling was
	// needed).
	Threshold float64
	// SampleSize is the number of items used by the estimate.
	SampleSize int
	// Stopped reports whether the δ² stopping rule fired (false means the
	// retained set — possibly the whole stream — was used exactly).
	Stopped bool
}

// Estimate computes the stopping threshold T* — the largest threshold at
// which the estimated variance reaches δ² — and the HT estimate at T*.
//
// The sweep is event-driven: as t decreases, item i contributes
// x_i²/(w_i²t²) − x_i²/(w_i t) to V̂(t) exactly while R_i < t < 1/w_i, so
// maintaining the two running sums between the sorted event points finds
// the first crossing in O(m log m).
func (s *Sampler) Estimate() Result {
	if len(s.heap) == 0 {
		return Result{Threshold: s.threshold}
	}
	if tStar, ok := crossingThreshold(s.heap, s.threshold, s.target2); ok {
		return s.resultAt(s.heap, tStar, true)
	}
	// The target variance is unreachable: use everything retained.
	return s.resultAt(s.heap, s.threshold, false)
}

// crossingThreshold finds the largest threshold t <= hi at which
// V̂(t) = target over the given entries, scanning downward through the
// event points (an item contributes x²/(w²t²) − x²/(wt) exactly while
// R < t < 1/w). It returns false when the target is unreachable below hi,
// or when the variance already meets the target AT hi — in that case the
// true crossing lies above hi where the caller has no data, so there is no
// usable crossing below (scanning further down would only find the spot
// where the emptying sample drops back through the target, which is not a
// stopping time).
func crossingThreshold(entries []Entry, hi, target float64) (float64, bool) {
	if !math.IsInf(hi, 1) {
		v := 0.0
		for _, e := range entries {
			if e.Priority >= hi {
				continue
			}
			p := e.Weight * hi
			if p < 1 {
				v += e.Value * e.Value * (1 - p) / (p * p)
			}
		}
		if v >= target {
			return 0, false
		}
	}
	type event struct {
		t    float64
		add  bool // true: item starts contributing (t = 1/w); false: leaves (t = R)
		a, b float64
	}
	events := make([]event, 0, 2*len(entries))
	for _, e := range entries {
		a := e.Value * e.Value / (e.Weight * e.Weight)
		b := e.Value * e.Value / e.Weight
		events = append(events, event{t: 1 / e.Weight, add: true, a: a, b: b})
		events = append(events, event{t: e.Priority, add: false, a: a, b: b})
	}
	// Descending by t; at equal t process "leave" before "add" so an item
	// with R == 1/w (impossible for U in (0,1), but defensive) nets out.
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t > events[j].t
		}
		return !events[i].add && events[j].add
	})

	var A, B float64
	for _, ev := range events {
		lo := ev.t
		if lo < hi && A > 0 {
			// V̂(t) = A/t² − B/t on (lo, hi); find t with V̂(t) = target.
			u := (B + math.Sqrt(B*B+4*A*target)) / (2 * A)
			if u > 0 {
				tCross := 1 / u
				if tCross > lo && tCross <= hi {
					return tCross, true
				}
			}
		}
		if lo < hi {
			hi = lo
		}
		if ev.add {
			A += ev.a
			B += ev.b
		} else {
			A -= ev.a
			B -= ev.b
		}
	}
	return 0, false
}

func (s *Sampler) resultAt(active []Entry, t float64, stopped bool) Result {
	sum := 0.0
	v := 0.0
	n := 0
	for _, e := range active {
		if e.Priority >= t {
			continue
		}
		n++
		if math.IsInf(t, 1) {
			sum += e.Value
			continue
		}
		p := core.InclusionProb(e.Weight, t)
		if p > 0 {
			sum += e.Value / p
		}
		if p > 0 && p < 1 {
			v += e.Value * e.Value * (1 - p) / (p * p)
		}
	}
	return Result{Sum: sum, VarianceEstimate: v, Threshold: t, SampleSize: n, Stopped: stopped}
}

// varianceOf returns V̂(t) over the given entries (used by tests).
func varianceOf(entries []Entry, t float64) float64 {
	v := 0.0
	for _, e := range entries {
		if e.Priority >= t {
			continue
		}
		p := core.InclusionProb(e.Weight, t)
		if p > 0 && p < 1 {
			v += e.Value * e.Value * (1 - p) / (p * p)
		}
	}
	return v
}

// Len returns the number of retained items.
func (s *Sampler) Len() int { return len(s.heap) }

// N returns the number of items offered.
func (s *Sampler) N() int { return s.n }

// RetentionThreshold returns the current retention threshold.
func (s *Sampler) RetentionThreshold() float64 { return s.threshold }

// --- max-heap on Priority ---

func siftUp(h []Entry, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].Priority >= h[i].Priority {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func popRoot(h *[]Entry) Entry {
	old := *h
	root := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	n := len(*h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && (*h)[l].Priority > (*h)[largest].Priority {
			largest = l
		}
		if r < n && (*h)[r].Priority > (*h)[largest].Priority {
			largest = r
		}
		if largest == i {
			break
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
	return root
}
