package varsize

import (
	"math"
	"testing"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ delta, over float64 }{{0, 2}, {-1, 2}, {1, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v, %v) must panic", c.delta, c.over)
				}
			}()
			New(c.delta, c.over, 1)
		}()
	}
}

func TestExactWhenTargetUnreachable(t *testing.T) {
	// A tiny stream can never reach the target variance: the estimate must
	// be the exact sum.
	s := New(1000, 2, 1)
	want := 0.0
	for i := 0; i < 20; i++ {
		v := float64(i + 1)
		s.Add(uint64(i), v, v)
		want += v
	}
	r := s.Estimate()
	if r.Stopped {
		t.Error("stopping rule must not fire on a tiny stream")
	}
	if r.Sum != want {
		t.Errorf("sum = %v, want exact %v", r.Sum, want)
	}
	if r.SampleSize != 20 {
		t.Errorf("sample size = %d, want 20", r.SampleSize)
	}
}

func TestStoppingFiresOnLongStream(t *testing.T) {
	items := stream.ParetoWeights(5000, 1.5, 4)
	s := New(500, 2, 9)
	for _, it := range items {
		s.Add(it.Key, it.Weight, it.Value)
	}
	r := s.Estimate()
	if !r.Stopped {
		t.Fatal("stopping rule should fire on a long stream with a loose target")
	}
	if r.SampleSize >= 5000 || r.SampleSize == 0 {
		t.Errorf("sample size = %d, want a proper subset", r.SampleSize)
	}
	// The variance estimate at the stopping threshold should be ≈ δ².
	if r.VarianceEstimate < 0.5*500*500 || r.VarianceEstimate > 2*500*500 {
		t.Errorf("variance at stop = %v, want ≈ %v", r.VarianceEstimate, 500.0*500)
	}
	// Retention keeps an oversample beyond the stopping threshold.
	if s.Len() < r.SampleSize {
		t.Errorf("retained %d < used %d", s.Len(), r.SampleSize)
	}
}

func TestLooserTargetsSmallerSamples(t *testing.T) {
	items := stream.ParetoWeights(8000, 1.5, 5)
	sizes := make([]int, 0, 3)
	for _, delta := range []float64{300, 900, 2700} {
		s := New(delta, 2, 11)
		for _, it := range items {
			s.Add(it.Key, it.Weight, it.Value)
		}
		sizes = append(sizes, s.Estimate().SampleSize)
	}
	if !(sizes[0] > sizes[1] && sizes[1] > sizes[2]) {
		t.Errorf("sample sizes %v must decrease as the target loosens", sizes)
	}
}

// TestAchievedErrorTracksTarget is the §3.9 validation: over Monte-Carlo
// trials the realized SD of the estimates should be near the target δ.
func TestAchievedErrorTracksTarget(t *testing.T) {
	items := stream.ParetoWeights(6000, 1.5, 6)
	truth := 0.0
	for _, it := range items {
		truth += it.Value
	}
	delta := 800.0
	var est estimator.Running
	for trial := 0; trial < 150; trial++ {
		s := New(delta, 2, 100+uint64(trial))
		for _, it := range items {
			s.Add(it.Key, it.Weight, it.Value)
		}
		est.Add(s.Estimate().Sum)
	}
	if z := (est.Mean() - truth) / est.SE(); math.Abs(z) > 4.5 {
		t.Errorf("estimate biased: mean %v truth %v z %v", est.Mean(), truth, z)
	}
	achieved := math.Sqrt(est.Variance() + (est.Mean()-truth)*(est.Mean()-truth))
	if achieved < 0.5*delta || achieved > 2*delta {
		t.Errorf("achieved SD %v, want within 2x of target %v", achieved, delta)
	}
}

func TestInvalidWeightIgnored(t *testing.T) {
	s := New(10, 1, 2)
	s.Add(1, 0, 5)
	s.Add(2, -3, 5)
	if s.Len() != 0 {
		t.Error("non-positive weights must be ignored")
	}
}

func TestRetentionThresholdMonotone(t *testing.T) {
	s := New(50, 1.5, 3)
	rng := stream.NewRNG(4)
	last := math.Inf(1)
	for i := 0; i < 3000; i++ {
		w := rng.Open01() * 5
		s.Add(uint64(i), w, w)
		if th := s.RetentionThreshold(); th > last {
			t.Fatalf("retention threshold rose %v -> %v", last, th)
		} else {
			last = th
		}
	}
	if s.N() != 3000 {
		t.Errorf("N = %d", s.N())
	}
}

func TestVarianceOfMatchesManual(t *testing.T) {
	entries := []Entry{
		{Weight: 1, Value: 2, Priority: 0.1},
		{Weight: 2, Value: 3, Priority: 0.2},
		{Weight: 100, Value: 1, Priority: 0.001},
	}
	tt := 0.3
	want := 0.0
	for _, e := range entries {
		p := e.Weight * tt
		if p > 1 {
			p = 1
		}
		if p < 1 {
			want += e.Value * e.Value * (1 - p) / (p * p)
		}
	}
	if got := varianceOf(entries, tt); math.Abs(got-want) > 1e-12 {
		t.Errorf("varianceOf = %v, want %v", got, want)
	}
}

func TestHorizonBoundsMemory(t *testing.T) {
	items := stream.ParetoWeights(20000, 1.5, 7)
	delta := 3000.0
	full := New(delta, 2, 42)
	bounded := New(delta, 2, 42)
	bounded.SetHorizon(len(items))
	for _, it := range items {
		full.Add(it.Key, it.Weight, it.Value)
		bounded.Add(it.Key, it.Weight, it.Value)
	}
	if full.Len() != 20000 {
		t.Errorf("default sampler must retain everything, kept %d", full.Len())
	}
	if bounded.Len() >= full.Len()/2 {
		t.Errorf("horizon sampler kept %d of %d items; eviction ineffective",
			bounded.Len(), full.Len())
	}
	// Both must produce (nearly) the same stopping estimate: the bounded
	// retention still contains the stopping sample.
	rf, rb := full.Estimate(), bounded.Estimate()
	if !rf.Stopped || !rb.Stopped {
		t.Fatal("both samplers should hit the stopping rule")
	}
	if math.Abs(rf.Threshold-rb.Threshold) > 1e-12*rf.Threshold {
		t.Errorf("stopping thresholds differ: %v vs %v", rf.Threshold, rb.Threshold)
	}
	if math.Abs(rf.Sum-rb.Sum) > 1e-9*rf.Sum {
		t.Errorf("estimates differ: %v vs %v", rf.Sum, rb.Sum)
	}
}

func TestHorizonAchievedError(t *testing.T) {
	items := stream.ParetoWeights(6000, 1.5, 8)
	truth := 0.0
	for _, it := range items {
		truth += it.Value
	}
	delta := 900.0
	var est estimator.Running
	for trial := 0; trial < 150; trial++ {
		s := New(delta, 2, 300+uint64(trial))
		s.SetHorizon(len(items))
		for _, it := range items {
			s.Add(it.Key, it.Weight, it.Value)
		}
		est.Add(s.Estimate().Sum)
	}
	achieved := math.Sqrt(est.Variance() + (est.Mean()-truth)*(est.Mean()-truth))
	if achieved < 0.5*delta || achieved > 2*delta {
		t.Errorf("achieved SD %v, want within 2x of target %v", achieved, delta)
	}
}
