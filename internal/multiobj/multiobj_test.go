package multiobj

import (
	"math"
	"testing"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ k, obj int }{{0, 2}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) must panic", c.k, c.obj)
				}
			}()
			New(c.k, c.obj, 1)
		}()
	}
}

func TestAddValidation(t *testing.T) {
	s := New(5, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong objective count must panic")
		}
	}()
	s.Add(Item{Key: 1, Weights: []float64{1}, Values: []float64{1}})
}

func mkItems(n int, seed uint64) []Item {
	rng := stream.NewRNG(seed)
	items := make([]Item, n)
	for i := range items {
		w1 := rng.Open01() * 3
		w2 := rng.Open01() * 3
		items[i] = Item{
			Key:     uint64(i),
			Weights: []float64{w1, w2},
			Values:  []float64{w1, w2},
		}
	}
	return items
}

func TestPerObjectiveThresholds(t *testing.T) {
	s := New(20, 2, 3)
	for _, it := range mkItems(500, 4) {
		s.Add(it)
	}
	for j := 0; j < 2; j++ {
		th := s.Threshold(j)
		if math.IsInf(th, 1) || th <= 0 {
			t.Errorf("objective %d threshold = %v", j, th)
		}
	}
	if s.K() != 20 || s.Objectives() != 2 {
		t.Error("accessors wrong")
	}
}

func TestCombinedSizeBounds(t *testing.T) {
	s := New(25, 3, 5)
	rng := stream.NewRNG(6)
	for i := 0; i < 2000; i++ {
		w := make([]float64, 3)
		v := make([]float64, 3)
		for j := range w {
			w[j] = rng.Open01() * 2
			v[j] = w[j]
		}
		s.Add(Item{Key: uint64(i), Weights: w, Values: v})
	}
	size := s.CombinedSize()
	if size > 3*25 {
		t.Errorf("combined size %d exceeds c*k", size)
	}
	if size < 25 {
		t.Errorf("combined size %d below k", size)
	}
}

func TestScalarMultiplesCollapse(t *testing.T) {
	// §3.8: when all objective weights are scalar multiples of each other,
	// per-objective samples coincide and the union is exactly k items.
	s := New(30, 3, 7)
	rng := stream.NewRNG(8)
	for i := 0; i < 3000; i++ {
		base := rng.Open01() * 4
		s.Add(Item{
			Key:     uint64(i),
			Weights: []float64{base, 2 * base, 5 * base},
			Values:  []float64{base, 2 * base, 5 * base},
		})
	}
	// The threshold item may differ per objective; allow a tiny slack.
	if size := s.CombinedSize(); size > 31 {
		t.Errorf("scalar-multiple objectives: combined size %d, want ≈ k = 30", size)
	}
}

func TestIndependentObjectivesNearCK(t *testing.T) {
	s := New(30, 3, 9)
	rng := stream.NewRNG(10)
	for i := 0; i < 5000; i++ {
		s.Add(Item{
			Key:     uint64(i),
			Weights: []float64{rng.Open01(), rng.Open01(), rng.Open01()},
			Values:  []float64{1, 1, 1},
		})
	}
	// Independent weights still share the per-item uniform (coordinated
	// sampling), so the union is well below c*k — but it must be clearly
	// larger than a single objective's k.
	size := s.CombinedSize()
	if size <= 39 {
		t.Errorf("independent objectives: combined size %d, want well above k = 30", size)
	}
	if size > 90 {
		t.Errorf("combined size %d exceeds c*k", size)
	}
}

func TestSubsetSumUnbiasedPerObjective(t *testing.T) {
	items := mkItems(800, 11)
	var truth [2]float64
	for _, it := range items {
		for j := 0; j < 2; j++ {
			truth[j] += it.Values[j]
		}
	}
	var est [2]estimator.Running
	for trial := 0; trial < 1500; trial++ {
		s := New(60, 2, 100+uint64(trial))
		for _, it := range items {
			s.Add(it)
		}
		for j := 0; j < 2; j++ {
			est[j].Add(s.SubsetSum(j, nil))
		}
	}
	for j := 0; j < 2; j++ {
		if z := (est[j].Mean() - truth[j]) / est[j].SE(); math.Abs(z) > 4.5 {
			t.Errorf("objective %d biased: mean %v truth %v z %v", j, est[j].Mean(), truth[j], z)
		}
	}
}

func TestExactWhenSmall(t *testing.T) {
	s := New(100, 2, 12)
	items := mkItems(30, 13)
	want := 0.0
	for _, it := range items {
		s.Add(it)
		want += it.Values[0]
	}
	if got := s.SubsetSum(0, nil); math.Abs(got-want) > 1e-9 {
		t.Errorf("exact subset sum = %v, want %v", got, want)
	}
}

func TestZeroWeightObjectiveSkipped(t *testing.T) {
	s := New(5, 2, 14)
	s.Add(Item{Key: 1, Weights: []float64{0, 1}, Values: []float64{1, 1}})
	if got := s.SubsetSum(0, nil); got != 0 {
		t.Errorf("zero-weight objective sum = %v, want 0", got)
	}
	if got := s.SubsetSum(1, nil); got != 1 {
		t.Errorf("objective 1 sum = %v, want 1", got)
	}
}
