// Package multiobj implements multi-objective coordinated samples (§3.8,
// after Cohen 2015): one sample that serves queries weighted by several
// different objectives (e.g. profit AND revenue). Each item draws a single
// shared uniform U_i; objective j assigns it priority R_ij = U_i / w_ij and
// keeps a bottom-k sketch. The combined sample is the union of the
// per-objective samples; an item's per-item threshold for estimating under
// objective j is objective j's threshold.
//
// Because the uniforms are shared, highly correlated objective weights give
// highly correlated priorities, so the union is much smaller than c×k —
// when weights are exact scalar multiples the sketches coincide and only
// 1/c of the worst-case budget is used.
package multiobj

import (
	"math"

	"ats/internal/core"
	"ats/internal/estimator"
	"ats/internal/stream"
)

// Item is a record with one weight and one value per objective.
type Item struct {
	Key uint64
	// Weights[j] is the item's weight under objective j (> 0).
	Weights []float64
	// Values[j] is the quantity summed by queries under objective j
	// (commonly Values = Weights).
	Values []float64
}

// Sketch maintains c coordinated bottom-k sketches over shared uniforms.
type Sketch struct {
	k, c int
	seed uint64
	// heaps[j] is a max-heap (by priority under objective j) of the k+1
	// smallest-priority items for objective j.
	heaps [][]entry
	n     int
}

type entry struct {
	item     Item
	u        float64
	priority float64
}

// New returns a multi-objective sketch with c objectives and per-objective
// sample size k.
func New(k, c int, seed uint64) *Sketch {
	if k <= 0 || c <= 0 {
		panic("multiobj: k and c must be positive")
	}
	return &Sketch{k: k, c: c, seed: seed, heaps: make([][]entry, c)}
}

// Add offers an item with weights for every objective.
func (s *Sketch) Add(it Item) {
	if len(it.Weights) != s.c || len(it.Values) != s.c {
		panic("multiobj: item with wrong number of objectives")
	}
	s.n++
	u := stream.HashU01(it.Key, s.seed)
	for j := 0; j < s.c; j++ {
		w := it.Weights[j]
		if w <= 0 {
			continue
		}
		e := entry{item: it, u: u, priority: u / w}
		h := s.heaps[j]
		if len(h) == s.k+1 && e.priority >= h[0].priority {
			continue
		}
		h = append(h, e)
		siftUpE(h, len(h)-1)
		if len(h) > s.k+1 {
			popRootE(&h)
		}
		s.heaps[j] = h
	}
}

// Threshold returns objective j's bottom-k threshold.
func (s *Sketch) Threshold(j int) float64 {
	h := s.heaps[j]
	if len(h) < s.k+1 {
		return math.Inf(1)
	}
	return h[0].priority
}

// CombinedSize returns the number of distinct items stored across all
// objectives — the sketch's actual footprint.
func (s *Sketch) CombinedSize() int {
	seen := make(map[uint64]struct{})
	for j := 0; j < s.c; j++ {
		t := s.Threshold(j)
		for _, e := range s.heaps[j] {
			if e.priority < t {
				seen[e.item.Key] = struct{}{}
			}
		}
	}
	return len(seen)
}

// SubsetSum returns the HT estimate of Σ Values[j] under objective j over
// items matching pred (nil for all), using objective j's own sample and
// threshold.
func (s *Sketch) SubsetSum(j int, pred func(Item) bool) float64 {
	t := s.Threshold(j)
	if math.IsInf(t, 1) {
		sum := 0.0
		for _, e := range s.heaps[j] {
			if pred == nil || pred(e.item) {
				sum += e.item.Values[j]
			}
		}
		return sum
	}
	sampled := make([]estimator.Sampled, 0, s.k)
	for _, e := range s.heaps[j] {
		if e.priority >= t {
			continue
		}
		if pred != nil && !pred(e.item) {
			continue
		}
		sampled = append(sampled, estimator.Sampled{
			Value: e.item.Values[j],
			P:     core.InclusionProb(e.item.Weights[j], t),
		})
	}
	return estimator.SubsetSum(sampled)
}

// Objectives returns the number of objectives c.
func (s *Sketch) Objectives() int { return s.c }

// K returns the per-objective sample size.
func (s *Sketch) K() int { return s.k }

// --- max-heap on priority ---

func siftUpE(h []entry, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].priority >= h[i].priority {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func popRootE(h *[]entry) {
	old := *h
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	n := len(*h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && (*h)[l].priority > (*h)[largest].priority {
			largest = l
		}
		if r < n && (*h)[r].priority > (*h)[largest].priority {
			largest = r
		}
		if largest == i {
			return
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}
