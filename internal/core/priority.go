// Package core implements the adaptive threshold sampling framework of
// Ting, "Adaptive Threshold Sampling" (SIGMOD 2022): priority
// distributions, fixed and adaptive thresholds, threshold recalibration,
// substitutability checking, threshold composition, and the
// priority-threshold duality used for time-decayed sampling.
//
// The framework's central objects are a per-item random priority R_i drawn
// from a distribution with CDF F_i, and a threshold T_i; item i is included
// in the sample iff R_i < T_i. When T_i is fixed, the inclusion probability
// is F_i(T_i) and the sample is an independent (Poisson) sample. The
// theorems in §2 of the paper give conditions — implemented and verified
// here — under which data-dependent thresholds may be treated as fixed.
package core

import "math"

// Dist is the distribution of an item's priority. Priorities are
// continuous, real-valued random variables; CDF must be non-decreasing with
// CDF(r) in [0, 1].
type Dist interface {
	// CDF returns F(r) = P(R < r).
	CDF(r float64) float64
	// Quantile returns F^{-1}(u) for u in (0, 1); it is the inverse
	// probability transform used to draw priorities from a shared uniform.
	Quantile(u float64) float64
}

// Uniform01 is the Uniform(0, 1) priority distribution used for unweighted
// sampling and distinct counting.
type Uniform01 struct{}

// CDF returns min(max(r, 0), 1).
func (Uniform01) CDF(r float64) float64 {
	if r <= 0 {
		return 0
	}
	if r >= 1 {
		return 1
	}
	return r
}

// Quantile returns u.
func (Uniform01) Quantile(u float64) float64 { return u }

// InverseWeight is the priority-sampling distribution R = U/w for an item
// with weight w > 0, i.e. Uniform(0, 1/w): F(r) = min(1, w*r) for r >= 0.
// Larger weights give stochastically smaller priorities and hence higher
// inclusion probabilities. By Theorem 12 of the paper, in the sublinear
// sampling regime every sufficiently smooth priority distribution is
// asymptotically equivalent to this family.
type InverseWeight struct {
	W float64
}

// CDF returns min(1, w*r) for r >= 0 and 0 otherwise.
func (d InverseWeight) CDF(r float64) float64 {
	if r <= 0 {
		return 0
	}
	p := d.W * r
	if p >= 1 {
		return 1
	}
	return p
}

// Quantile returns u/w.
func (d InverseWeight) Quantile(u float64) float64 { return u / d.W }

// Exponential is the priority distribution R ~ Exponential(rate w):
// F(r) = 1 - exp(-w*r). It satisfies the linear-expansion-at-zero condition
// of Theorem 12 with slope w, so in the sublinear regime it behaves like
// InverseWeight{w}.
type Exponential struct {
	Rate float64
}

// CDF returns 1 - exp(-rate*r) for r >= 0.
func (d Exponential) CDF(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return -math.Expm1(-d.Rate * r)
}

// Quantile returns -log(1-u)/rate.
func (d Exponential) Quantile(u float64) float64 {
	return -math.Log1p(-u) / d.Rate
}

// PriorityFor draws the priority for a weighted item from a shared uniform
// u in (0, 1): R = u / w. Using a hash of the item key as u coordinates
// samples across sketches (the same item gets the same priority
// everywhere), which is what enables sketch merging.
func PriorityFor(u, w float64) float64 {
	if w <= 0 {
		return math.Inf(1)
	}
	return u / w
}

// InclusionProb returns the pseudo-inclusion probability F(T) = min(1, w*T)
// for a weighted item under threshold T with InverseWeight priorities. This
// is the denominator of the Horvitz-Thompson estimator.
func InclusionProb(w, t float64) float64 {
	if t <= 0 || w <= 0 {
		return 0
	}
	p := w * t
	if p >= 1 {
		return 1
	}
	return p
}
