package core

import (
	"math"
	"testing"
	"testing/quick"

	"ats/internal/stream"
)

func randomPriorities(seed uint64, n int) []float64 {
	rng := stream.NewRNG(seed)
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = rng.Open01()
	}
	return pr
}

func TestBottomKIsSubstitutable(t *testing.T) {
	f := func(seed uint64) bool {
		pr := randomPriorities(seed, 25)
		return CheckSubstitutable(BottomKRule(6), pr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFixedIsSubstitutable(t *testing.T) {
	f := func(seed uint64) bool {
		pr := randomPriorities(seed, 20)
		return CheckSubstitutable(FixedRule(0.4), pr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBudgetRuleIsSubstitutable(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		n := 20
		pr := make([]float64, n)
		sizes := make([]int, n)
		for i := range pr {
			pr[i] = rng.Open01()
			sizes[i] = 1 + rng.Intn(5)
		}
		return CheckSubstitutable(BudgetRule(sizes, 12), pr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinOfSubstitutableIsSubstitutable(t *testing.T) {
	// Theorem 9: min of substitutable rules stays substitutable.
	f := func(seed uint64) bool {
		pr := randomPriorities(seed, 25)
		rule := MinRules(BottomKRule(4), BottomKRule(8), FixedRule(0.5))
		return CheckSubstitutable(rule, pr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxOfBottomKIsOneSubstitutable(t *testing.T) {
	// Theorem 9: max of substitutable rules is 1-substitutable (used by
	// multi-stratified sampling, where it is in fact fully substitutable
	// because the strata partition the items; here we only assert the
	// 1-substitutability that the theorem guarantees in general).
	f := func(seed uint64) bool {
		pr := randomPriorities(seed, 25)
		// Two "strata": even and odd indices, each with a bottom-k rule
		// applied to its own coordinates (the other coordinates are passed
		// through but ignored by using +inf placeholders).
		even := func(p []float64) []float64 {
			var sub []float64
			for i := 0; i < len(p); i += 2 {
				sub = append(sub, p[i])
			}
			th := KthSmallest(sub, 4)
			out := make([]float64, len(p))
			for i := range out {
				if i%2 == 0 {
					out[i] = th
				} else {
					out[i] = math.Inf(-1)
				}
			}
			return out
		}
		odd := func(p []float64) []float64 {
			var sub []float64
			for i := 1; i < len(p); i += 2 {
				sub = append(sub, p[i])
			}
			th := KthSmallest(sub, 4)
			out := make([]float64, len(p))
			for i := range out {
				if i%2 == 1 {
					out[i] = th
				} else {
					out[i] = math.Inf(-1)
				}
			}
			return out
		}
		rule := MaxRules(even, odd)
		return CheckOneSubstitutable(rule, pr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// genderExclusionRule is the paper's §2.3 counterexample: the threshold is
// the minimum priority among "female" items (odd indices), excluding all of
// them. Note the subtlety: the rule IS substitutable for sampled subsets
// (the threshold never depends on a sampled — even-index — priority); the
// gross bias comes from the odd items having inclusion probability zero,
// which violates the F_i(T_i) > 0 proviso of Corollary 3 rather than
// substitutability itself.
func genderExclusionRule(p []float64) []float64 {
	minOdd := math.Inf(1)
	for i := 1; i < len(p); i += 2 {
		if p[i] < minOdd {
			minOdd = p[i]
		}
	}
	out := make([]float64, len(p))
	for i := range out {
		out[i] = minOdd
	}
	return out
}

func TestGenderRuleSubstitutableButZeroProb(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		pr := randomPriorities(seed, 12)
		if !CheckSubstitutable(genderExclusionRule, pr) {
			t.Fatalf("seed %d: the exclusion rule's thresholds never depend on sampled priorities", seed)
		}
		// No odd-index item is ever sampled: its priority is >= the min of
		// the odd priorities, which is the threshold.
		th := genderExclusionRule(pr)
		for i := 1; i < len(pr); i += 2 {
			if pr[i] < th[i] {
				t.Fatalf("seed %d: odd item %d sampled; the rule should exclude it", seed, i)
			}
		}
	}
}

// inflatedMinRule is genuinely non-substitutable: the common threshold is
// twice the minimum priority, so the minimum item is always sampled and
// recalibrating it to -inf collapses the threshold.
func inflatedMinRule(p []float64) []float64 {
	m := math.Inf(1)
	for _, v := range p {
		if v < m {
			m = v
		}
	}
	out := make([]float64, len(p))
	for i := range out {
		out[i] = 2 * m
	}
	return out
}

func TestInflatedMinRuleIsNotSubstitutable(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		pr := randomPriorities(seed, 12)
		if CheckSubstitutable(inflatedMinRule, pr) {
			t.Fatalf("seed %d: a threshold depending on a sampled priority must fail the check", seed)
		}
	}
}

func TestSequentialRuleIsOneButNotTwoSubstitutable(t *testing.T) {
	// §2.7 example: a "keep if ever in the bottom-k prefix" threshold — the
	// threshold for item i is the k-th smallest among the PRECEDING
	// priorities (sequential rule). It is 1-substitutable but not fully
	// substitutable.
	k := 3
	seq := func(p []float64) []float64 {
		out := make([]float64, len(p))
		for i := range p {
			if i < k {
				out[i] = math.Inf(1)
				continue
			}
			out[i] = KthSmallest(p[:i], k)
		}
		return out
	}
	one, two := 0, 0
	for seed := uint64(0); seed < 120; seed++ {
		pr := randomPriorities(seed, 12)
		if CheckOneSubstitutable(seq, pr) {
			one++
		}
		if !CheckDSubstitutable(seq, pr, 2) {
			two++
		}
	}
	if one != 120 {
		t.Errorf("sequential rule should always be 1-substitutable; got %d/120", one)
	}
	if two == 0 {
		t.Error("sequential rule should fail 2-substitutability on some draws")
	}
}

func TestCheckDSubstitutableDegenerate(t *testing.T) {
	pr := randomPriorities(4, 10)
	if !CheckDSubstitutable(BottomKRule(3), pr, 3) {
		t.Error("bottom-k should be d-substitutable for every d")
	}
	if !CheckDSubstitutable(FixedRule(0.5), pr, 0) {
		t.Error("d=0 must trivially pass")
	}
}

func TestThresholdsAgreeInfinities(t *testing.T) {
	orig := []float64{math.Inf(1), 1}
	rec := []float64{math.Inf(1), 1}
	if !thresholdsAgree(orig, rec, []int{0, 1}) {
		t.Error("identical vectors with +inf entries must agree")
	}
	rec2 := []float64{math.Inf(1), 1 + 1e-6}
	if thresholdsAgree(orig, rec2, []int{1}) {
		t.Error("clearly different finite thresholds must not agree")
	}
}

// TestStoppingTimeRuleSubstitutable validates Theorem 8 directly: order
// the priorities descending R_ρ1 > R_ρ2 > ...; let M be a stopping time of
// that sequence (here: the first index where the running sum of priorities
// exceeds a constant); the rule τ(R) = R_ρM is fully substitutable.
func TestStoppingTimeRuleSubstitutable(t *testing.T) {
	stoppingRule := func(p []float64) []float64 {
		idx := argsort(p) // ascending
		// Walk descending, accumulate, stop when the sum passes 2.0.
		acc := 0.0
		threshold := math.Inf(-1) // degenerate: nothing sampled
		for i := len(idx) - 1; i >= 0; i-- {
			acc += p[idx[i]]
			if acc > 2.0 {
				threshold = p[idx[i]]
				break
			}
		}
		out := make([]float64, len(p))
		for i := range out {
			out[i] = threshold
		}
		return out
	}
	f := func(seed uint64) bool {
		pr := randomPriorities(seed, 20)
		return CheckSubstitutable(stoppingRule, pr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNonStoppingRuleFails shows the contrast: a rule that looks one step
// PAST the stopping point into the sampled region (peeking at the next
// smaller priority) depends on a sampled item's priority and fails the
// check on some draws.
func TestNonStoppingRuleFails(t *testing.T) {
	peekingRule := func(p []float64) []float64 {
		idx := argsort(p)
		acc := 0.0
		threshold := math.Inf(-1)
		for i := len(idx) - 1; i >= 0; i-- {
			acc += p[idx[i]]
			if acc > 2.0 {
				// Peek one beyond the stopping point: the threshold now
				// depends on a SAMPLED priority.
				if i > 0 {
					threshold = (p[idx[i]] + p[idx[i-1]]) / 2
				} else {
					threshold = p[idx[i]]
				}
				break
			}
		}
		out := make([]float64, len(p))
		for i := range out {
			out[i] = threshold
		}
		return out
	}
	failed := false
	for seed := uint64(0); seed < 60; seed++ {
		pr := randomPriorities(seed, 20)
		if !CheckSubstitutable(peekingRule, pr) {
			failed = true
			break
		}
	}
	if !failed {
		t.Error("a rule peeking into the sample should fail substitutability")
	}
}
