package core

import "math"

// DecayedInclusion implements the priority-threshold duality of §2.9 for
// exponentially time-decayed sampling. An item arriving with weight w at
// time t0 has time-varying weight w(t) = w * exp(-(t - t0)); instead of
// rescaling every stored priority as time passes, the stored priority
// R = U/w (computed once, at arrival, using the arrival-time weight) is
// compared against an exponentially decaying effective threshold:
//
//	include at time t  ⇔  R < exp(-(t - t0)) * T(t)
//
// which is algebraically identical to U/w(t) < T(t) with the decayed
// weight. Adjusting the threshold is thus equivalent to adjusting the
// priorities, and stored priorities never need to be rewritten.
type DecayedInclusion struct {
	// Threshold is the base threshold T(t) chosen by the surrounding
	// sampling scheme.
	Threshold float64
}

// Include reports whether an item with stored priority r (drawn at arrival
// time t0 against the arrival-time weight) is in the time-decayed sample at
// time t.
func (d DecayedInclusion) Include(r, t0, t float64) bool {
	return r < d.EffectiveThreshold(t0, t)
}

// EffectiveThreshold returns exp(-(t-t0)) * T, the threshold against which
// the original arrival-time priority is compared at time t. It shrinks as
// the item ages, so old items fall out of the sample without their stored
// priorities ever changing.
func (d DecayedInclusion) EffectiveThreshold(t0, t float64) float64 {
	return math.Exp(-(t - t0)) * d.Threshold
}

// DecayedInclusionProb returns the pseudo-inclusion probability at time t
// of an item with arrival weight w and arrival time t0 under base threshold
// T. Since R = U/w with U ~ Uniform(0,1),
//
//	P(R < exp(-(t-t0)) T) = min(1, w exp(-(t-t0)) T) = min(1, w(t) T),
//
// the Horvitz-Thompson weight uses the decayed weight w(t), as expected.
func DecayedInclusionProb(w, t0, t, threshold float64) float64 {
	wt := w * math.Exp(-(t - t0))
	return InclusionProb(wt, threshold)
}
