package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ats/internal/stream"
)

func TestKthSmallest(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	for k := 1; k <= 5; k++ {
		if got := KthSmallest(xs, k); got != float64(k) {
			t.Errorf("KthSmallest(k=%d) = %v, want %d", k, got, k)
		}
	}
	if got := KthSmallest(xs, 6); !math.IsInf(got, 1) {
		t.Errorf("KthSmallest beyond length = %v, want +inf", got)
	}
	// Input must not be mutated.
	want := []float64{5, 1, 4, 2, 3}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("KthSmallest mutated its input: %v", xs)
		}
	}
}

func TestKthSmallestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k <= 0")
		}
	}()
	KthSmallest([]float64{1}, 0)
}

func TestKthSmallestMatchesSortQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed uint64, n uint8) bool {
		rng := stream.NewRNG(seed)
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for k := 1; k <= m; k++ {
			if KthSmallest(xs, k) != sorted[k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFixedRule(t *testing.T) {
	rule := FixedRule(0.3)
	th := rule([]float64{0.1, 0.5, 0.9})
	for i, v := range th {
		if v != 0.3 {
			t.Errorf("threshold[%d] = %v, want 0.3", i, v)
		}
	}
	z := Sample(rule, []float64{0.1, 0.5, 0.9})
	want := []bool{true, false, false}
	for i := range z {
		if z[i] != want[i] {
			t.Errorf("Sample[%d] = %v, want %v", i, z[i], want[i])
		}
	}
}

func TestBottomKRule(t *testing.T) {
	rule := BottomKRule(2)
	pr := []float64{0.9, 0.1, 0.5, 0.3, 0.7}
	th := rule(pr)
	// (k+1)-th smallest = 3rd smallest = 0.5.
	for i, v := range th {
		if v != 0.5 {
			t.Errorf("threshold[%d] = %v, want 0.5", i, v)
		}
	}
	z := Sample(rule, pr)
	wantSampled := map[int]bool{1: true, 3: true}
	for i := range z {
		if z[i] != wantSampled[i] {
			t.Errorf("item %d sampled=%v, want %v", i, z[i], wantSampled[i])
		}
	}
}

func TestBottomKRuleSmallInput(t *testing.T) {
	rule := BottomKRule(5)
	th := rule([]float64{0.2, 0.4})
	for i, v := range th {
		if !math.IsInf(v, 1) {
			t.Errorf("threshold[%d] = %v, want +inf for n <= k", i, v)
		}
	}
}

func TestBudgetRule(t *testing.T) {
	// Priorities ascending by index: sizes 1, 10, 1; budget 2.
	sizes := []int{1, 10, 1}
	rule := BudgetRule(sizes, 2)
	pr := []float64{0.1, 0.2, 0.3}
	th := rule(pr)
	// Cumulative 1, 11 -> first overflow at index 1 -> threshold 0.2.
	for i, v := range th {
		if v != 0.2 {
			t.Errorf("threshold[%d] = %v, want 0.2", i, v)
		}
	}
	z := Sample(rule, pr)
	if !z[0] || z[1] || z[2] {
		t.Errorf("sample = %v, want only item 0", z)
	}
}

func TestBudgetRuleAllFit(t *testing.T) {
	rule := BudgetRule([]int{1, 1, 1}, 10)
	th := rule([]float64{0.5, 0.6, 0.7})
	for _, v := range th {
		if !math.IsInf(v, 1) {
			t.Errorf("threshold = %v, want +inf when everything fits", v)
		}
	}
}

func TestMinMaxRules(t *testing.T) {
	r1 := FixedRule(0.2)
	r2 := FixedRule(0.5)
	pr := []float64{0.1, 0.3, 0.6}
	minTh := MinRules(r1, r2)(pr)
	maxTh := MaxRules(r1, r2)(pr)
	for i := range pr {
		if minTh[i] != 0.2 {
			t.Errorf("min threshold[%d] = %v, want 0.2", i, minTh[i])
		}
		if maxTh[i] != 0.5 {
			t.Errorf("max threshold[%d] = %v, want 0.5", i, maxTh[i])
		}
	}
}

func TestCombineRulesPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when combining zero rules")
		}
	}()
	MinRules()
}

func TestRecalibrateBottomK(t *testing.T) {
	// §2.5.1: recalibrating a sampled item's priority to -inf must not
	// change the bottom-k threshold.
	rng := stream.NewRNG(9)
	pr := make([]float64, 30)
	for i := range pr {
		pr[i] = rng.Float64()
	}
	rule := BottomKRule(5)
	orig := rule(pr)
	z := Sample(rule, pr)
	for i, sampled := range z {
		if !sampled {
			continue
		}
		rec := Recalibrate(rule, pr, []int{i})
		if rec[i] != orig[i] {
			t.Errorf("recalibrated threshold for sampled item %d changed: %v -> %v", i, orig[i], rec[i])
		}
	}
	// Recalibrating an UNSAMPLED item (the threshold item itself) lowers
	// the threshold.
	thresholdItem := -1
	for i := range pr {
		if pr[i] == orig[i] {
			thresholdItem = i
		}
	}
	if thresholdItem >= 0 {
		rec := Recalibrate(rule, pr, []int{thresholdItem})
		if rec[0] >= orig[0] {
			t.Errorf("recalibrating the threshold item should lower the threshold: %v -> %v", orig[0], rec[0])
		}
	}
}

func TestArgsortStable(t *testing.T) {
	xs := []float64{3, 1, 2, 1, 3}
	idx := argsort(xs)
	want := []int{1, 3, 2, 0, 4}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("argsort = %v, want %v", idx, want)
		}
	}
}

func TestArgsortQuick(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := stream.NewRNG(seed)
		m := int(n % 100)
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		idx := argsort(xs)
		if len(idx) != m {
			return false
		}
		seen := make(map[int]bool, m)
		for i := 1; i < m; i++ {
			if xs[idx[i-1]] > xs[idx[i]] {
				return false
			}
		}
		for _, j := range idx {
			if seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
