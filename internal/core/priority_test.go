package core

import (
	"math"
	"testing"
	"testing/quick"

	"ats/internal/stream"
)

func TestUniform01(t *testing.T) {
	d := Uniform01{}
	cases := []struct{ r, want float64 }{
		{-1, 0}, {0, 0}, {0.25, 0.25}, {1, 1}, {2, 1},
	}
	for _, c := range cases {
		if got := d.CDF(c.r); got != c.want {
			t.Errorf("CDF(%v) = %v, want %v", c.r, got, c.want)
		}
	}
	if d.Quantile(0.7) != 0.7 {
		t.Error("Uniform01 quantile must be the identity")
	}
}

func TestInverseWeight(t *testing.T) {
	d := InverseWeight{W: 4}
	if got := d.CDF(0.1); got != 0.4 {
		t.Errorf("CDF(0.1) = %v, want 0.4", got)
	}
	if got := d.CDF(10); got != 1 {
		t.Errorf("CDF(10) = %v, want 1 (clamped)", got)
	}
	if got := d.CDF(-0.5); got != 0 {
		t.Errorf("CDF(-0.5) = %v, want 0", got)
	}
	if got := d.Quantile(0.2); math.Abs(got-0.05) > 1e-15 {
		t.Errorf("Quantile(0.2) = %v, want 0.05", got)
	}
}

func TestExponentialRoundTrip(t *testing.T) {
	d := Exponential{Rate: 2.5}
	f := func(u float64) bool {
		u = math.Abs(u)
		u -= math.Floor(u) // into [0,1)
		if u == 0 {
			return true
		}
		r := d.Quantile(u)
		return math.Abs(d.CDF(r)-u) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExponentialLinearAtZero(t *testing.T) {
	// The Theorem 12 condition: F(r) ≈ rate·r near 0.
	d := Exponential{Rate: 3}
	for _, r := range []float64{1e-6, 1e-8, 1e-10} {
		if got := d.CDF(r); math.Abs(got-3*r) > 3*r*1e-4 {
			t.Errorf("CDF(%v) = %v, want ≈ %v", r, got, 3*r)
		}
	}
}

func TestPriorityFor(t *testing.T) {
	if got := PriorityFor(0.5, 2); got != 0.25 {
		t.Errorf("PriorityFor = %v, want 0.25", got)
	}
	if got := PriorityFor(0.5, 0); !math.IsInf(got, 1) {
		t.Errorf("zero weight must give +inf priority, got %v", got)
	}
}

func TestInclusionProb(t *testing.T) {
	cases := []struct{ w, t, want float64 }{
		{2, 0.25, 0.5},
		{2, 10, 1},
		{2, 0, 0},
		{0, 0.5, 0},
		{-1, 0.5, 0},
	}
	for _, c := range cases {
		if got := InclusionProb(c.w, c.t); got != c.want {
			t.Errorf("InclusionProb(%v, %v) = %v, want %v", c.w, c.t, got, c.want)
		}
	}
}

func TestInclusionProbMatchesCDF(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		w := rng.Open01() * 10
		th := rng.Open01()
		return math.Abs(InclusionProb(w, th)-InverseWeight{W: w}.CDF(th)) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecayedInclusion(t *testing.T) {
	d := DecayedInclusion{Threshold: 0.5}
	// At t = t0 the effective threshold is the base threshold.
	if got := d.EffectiveThreshold(3, 3); got != 0.5 {
		t.Errorf("effective threshold at age 0 = %v, want 0.5", got)
	}
	// One time unit later the threshold shrinks by e.
	if got := d.EffectiveThreshold(3, 4); math.Abs(got-0.5/math.E) > 1e-12 {
		t.Errorf("effective threshold at age 1 = %v, want %v", got, 0.5/math.E)
	}
	// An item included now falls out as it ages.
	r := 0.4
	if !d.Include(r, 0, 0) {
		t.Error("item with r=0.4 must be included at age 0 under T=0.5")
	}
	if d.Include(r, 0, 5) {
		t.Error("item must fall out of a decayed sample at age 5")
	}
}

func TestDecayedInclusionProbEquivalence(t *testing.T) {
	// P(R < eff threshold) computed directly must equal the decayed-weight
	// form min(1, w(t)·T).
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		w := rng.Open01() * 5
		t0 := rng.Float64() * 10
		tt := t0 + rng.Float64()*3
		th := rng.Open01()
		d := DecayedInclusion{Threshold: th}
		direct := InverseWeight{W: w}.CDF(d.EffectiveThreshold(t0, tt))
		viaWeight := DecayedInclusionProb(w, t0, tt, th)
		return math.Abs(direct-viaWeight) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecayedMonteCarlo(t *testing.T) {
	// Empirical inclusion frequency matches DecayedInclusionProb.
	rng := stream.NewRNG(77)
	w, t0, tt, th := 2.0, 0.0, 0.8, 0.3
	want := DecayedInclusionProb(w, t0, tt, th)
	d := DecayedInclusion{Threshold: th}
	n, hits := 200000, 0
	for i := 0; i < n; i++ {
		r := rng.Open01() / w
		if d.Include(r, t0, tt) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-want) > 0.005 {
		t.Errorf("empirical inclusion %v, want %v", got, want)
	}
}
