package core

import "math"

// CheckSubstitutable verifies, for one realized priority vector, the
// substitutability condition of §2.6: for the sampled index set λ (and all
// of its subsets — by Theorem 6 it suffices to recalibrate the full sampled
// set and singletons), the recalibrated thresholds equal the originals.
// It returns false if any recalibration changes any threshold for a sampled
// item, which would mean fixed-threshold estimators cannot be reused
// blindly.
//
// The check is exact for the given priorities; use it inside randomized
// property tests to accumulate evidence over many draws.
func CheckSubstitutable(rule Rule, priorities []float64) bool {
	orig := rule(priorities)
	sampled := make([]int, 0, len(priorities))
	for i := range priorities {
		if priorities[i] < orig[i] {
			sampled = append(sampled, i)
		}
	}
	// Full sampled set.
	if !thresholdsAgree(orig, Recalibrate(rule, priorities, sampled), sampled) {
		return false
	}
	// Singletons (Theorem 6's sufficient condition).
	for _, i := range sampled {
		rec := Recalibrate(rule, priorities, []int{i})
		if !thresholdsAgree(orig, rec, sampled) {
			return false
		}
	}
	return true
}

// CheckDSubstitutable verifies d-substitutability for one realized priority
// vector: for every sampled subset of size <= d (enumerated exhaustively,
// so keep the sample small in tests), recalibration must not change the
// thresholds of that subset.
func CheckDSubstitutable(rule Rule, priorities []float64, d int) bool {
	orig := rule(priorities)
	var sampled []int
	for i := range priorities {
		if priorities[i] < orig[i] {
			sampled = append(sampled, i)
		}
	}
	return checkSubsets(rule, priorities, orig, sampled, nil, 0, d)
}

func checkSubsets(rule Rule, priorities, orig []float64, sampled, chosen []int, start, d int) bool {
	if len(chosen) > 0 {
		rec := Recalibrate(rule, priorities, chosen)
		if !thresholdsAgree(orig, rec, chosen) {
			return false
		}
	}
	if len(chosen) == d {
		return true
	}
	for i := start; i < len(sampled); i++ {
		if !checkSubsets(rule, priorities, orig, sampled, append(chosen, sampled[i]), i+1, d) {
			return false
		}
	}
	return true
}

// CheckOneSubstitutable verifies 1-substitutability: recalibrating any
// single sampled item's priority to -inf leaves that item's threshold
// unchanged. 1-substitutable thresholds admit unbiased HT estimates of sums
// (degree-1 polynomials) but not, in general, of variances.
func CheckOneSubstitutable(rule Rule, priorities []float64) bool {
	orig := rule(priorities)
	for i := range priorities {
		if priorities[i] >= orig[i] {
			continue
		}
		rec := Recalibrate(rule, priorities, []int{i})
		if math.Abs(rec[i]-orig[i]) > substTol(orig[i]) {
			return false
		}
	}
	return true
}

func thresholdsAgree(orig, rec []float64, idx []int) bool {
	for _, i := range idx {
		if math.IsInf(orig[i], 1) && math.IsInf(rec[i], 1) {
			continue
		}
		if math.Abs(orig[i]-rec[i]) > substTol(orig[i]) {
			return false
		}
	}
	return true
}

func substTol(t float64) float64 {
	a := math.Abs(t)
	if a < 1 {
		a = 1
	}
	return 1e-12 * a
}
