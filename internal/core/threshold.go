package core

import "math"

// Rule is an adaptive thresholding rule: given the full vector of
// priorities (and, implicitly, the data the rule closes over), it returns a
// per-item threshold vector of the same length. Item i is sampled iff
// priorities[i] < thresholds[i].
//
// Rules are pure functions of their argument so that the recalibration and
// substitutability machinery can re-evaluate them on perturbed priority
// vectors. Rules used with Recalibrate and substitutability checks should
// be non-decreasing: lowering any priority never lowers any threshold.
type Rule func(priorities []float64) (thresholds []float64)

// Sample applies a rule to a priority vector and reports which items are
// included.
func Sample(rule Rule, priorities []float64) []bool {
	t := rule(priorities)
	z := make([]bool, len(priorities))
	for i := range priorities {
		z[i] = priorities[i] < t[i]
	}
	return z
}

// Recalibrate computes the recalibrated thresholds T̃^λ of §2.5 with
// respect to the index set lambda: the thresholds produced by the rule
// after driving every priority in lambda to -inf (the infimum over those
// coordinates, which for a non-decreasing rule is attained at the minimal
// values). The returned vector is the alternative threshold that is
// independent of the priorities indexed by lambda, enabling the conditional
// inclusion-probability factorization of Lemma 1.
func Recalibrate(rule Rule, priorities []float64, lambda []int) []float64 {
	perturbed := make([]float64, len(priorities))
	copy(perturbed, priorities)
	for _, i := range lambda {
		perturbed[i] = math.Inf(-1)
	}
	return rule(perturbed)
}

// FixedRule returns a Rule with the same constant threshold for every item
// — the plain Poisson sampling design.
func FixedRule(t float64) Rule {
	return func(priorities []float64) []float64 {
		out := make([]float64, len(priorities))
		for i := range out {
			out[i] = t
		}
		return out
	}
}

// BottomKRule returns the bottom-k thresholding rule: the common threshold
// is the (k+1)-th smallest priority (or +inf when n <= k). This is the
// canonical substitutable threshold of §2.5.1: the sample is exactly the k
// smallest-priority items.
func BottomKRule(k int) Rule {
	return func(priorities []float64) []float64 {
		t := KthSmallest(priorities, k+1) // +inf when n <= k
		out := make([]float64, len(priorities))
		for i := range out {
			out[i] = t
		}
		return out
	}
}

// BudgetRule returns the variable item-size thresholding rule of §3.1:
// visiting items in ascending priority order, accumulate sizes; the
// threshold is the priority of the first item that would push the total
// over budget (or +inf if everything fits). sizes[i] is the size of item i.
func BudgetRule(sizes []int, budget int) Rule {
	return func(priorities []float64) []float64 {
		n := len(priorities)
		order := argsort(priorities)
		t := math.Inf(1)
		total := 0
		for _, i := range order {
			total += sizes[i]
			if total > budget {
				t = priorities[i]
				break
			}
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = t
		}
		return out
	}
}

// MinRules composes rules by taking the per-item minimum of their
// thresholds. By Theorem 9, the minimum of substitutable (resp.
// d-substitutable) rules is substitutable (resp. d-substitutable).
func MinRules(rules ...Rule) Rule {
	return combineRules(math.Min, rules)
}

// MaxRules composes rules by taking the per-item maximum of their
// thresholds. By Theorem 9, the maximum of 1-substitutable rules is
// 1-substitutable (this is the combination used by multi-stratified
// sampling and LCS-style merges).
func MaxRules(rules ...Rule) Rule {
	return combineRules(math.Max, rules)
}

func combineRules(op func(a, b float64) float64, rules []Rule) Rule {
	if len(rules) == 0 {
		panic("core: combining zero rules")
	}
	return func(priorities []float64) []float64 {
		out := rules[0](priorities)
		for _, r := range rules[1:] {
			t := r(priorities)
			for i := range out {
				out[i] = op(out[i], t[i])
			}
		}
		return out
	}
}

// KthSmallest returns the k-th smallest value of xs (1-based), or +inf when
// k > len(xs). It runs in O(n) expected time via quickselect and does not
// modify xs.
func KthSmallest(xs []float64, k int) float64 {
	if k <= 0 {
		panic("core: KthSmallest with k <= 0")
	}
	if k > len(xs) {
		return math.Inf(1)
	}
	buf := make([]float64, len(xs))
	copy(buf, xs)
	return quickselect(buf, k-1)
}

// quickselect returns the element with 0-based rank k of buf, reordering
// buf in place. Median-of-three pivoting keeps adversarial inputs at bay;
// the inputs here are random priorities anyway.
func quickselect(buf []float64, k int) float64 {
	lo, hi := 0, len(buf)-1
	for {
		if lo == hi {
			return buf[lo]
		}
		p := medianOfThree(buf, lo, hi)
		i, j := lo, hi
		for i <= j {
			for buf[i] < p {
				i++
			}
			for buf[j] > p {
				j--
			}
			if i <= j {
				buf[i], buf[j] = buf[j], buf[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return buf[k]
		}
	}
}

func medianOfThree(buf []float64, lo, hi int) float64 {
	mid := lo + (hi-lo)/2
	a, b, c := buf[lo], buf[mid], buf[hi]
	switch {
	case (a <= b) == (b <= c):
		return b
	case (b <= a) == (a <= c):
		return a
	default:
		return c
	}
}

func argsort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Simple bottom-up merge sort on indices: stable and allocation-light.
	buf := make([]int, len(idx))
	for width := 1; width < len(idx); width *= 2 {
		for lo := 0; lo < len(idx); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(idx) {
				mid = len(idx)
			}
			if hi > len(idx) {
				hi = len(idx)
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if xs[idx[i]] <= xs[idx[j]] {
					buf[k] = idx[i]
					i++
				} else {
					buf[k] = idx[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = idx[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = idx[j]
				j++
				k++
			}
		}
		idx, buf = buf, idx
	}
	return idx
}
