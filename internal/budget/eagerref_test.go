package budget

// Equivalence regression against the pre-keeper eager implementation
// (which evicted from a max-heap on every overflow), plus steady-state
// allocation checks for the scratch-buffer version.

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ats/internal/estimator"
	"ats/internal/stream"
)

// eagerSampler is the original evict-as-you-go implementation.
type eagerSampler struct {
	budget    int
	heap      []Entry
	totalSize int
	threshold float64
}

func newEager(budget int) *eagerSampler {
	return &eagerSampler{budget: budget, threshold: math.Inf(1)}
}

func (s *eagerSampler) AddWithPriority(e Entry) {
	if e.Priority >= s.threshold {
		return
	}
	s.heap = append(s.heap, e)
	for i := len(s.heap) - 1; i > 0; {
		p := (i - 1) / 2
		if s.heap[p].Priority >= s.heap[i].Priority {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
	s.totalSize += e.Size
	for s.totalSize > s.budget {
		root := s.heap[0]
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		n := len(s.heap)
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			largest := i
			if l < n && s.heap[l].Priority > s.heap[largest].Priority {
				largest = l
			}
			if r < n && s.heap[r].Priority > s.heap[largest].Priority {
				largest = r
			}
			if largest == i {
				break
			}
			s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
			i = largest
		}
		s.totalSize -= root.Size
		s.threshold = root.Priority
	}
}

func TestScratchMatchesEagerImplementation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		budget := 20 + rng.Intn(100)
		n := rng.Intn(400)
		a := New(budget, seed)
		b := newEager(budget)
		for i := 0; i < n; i++ {
			e := Entry{
				Key: uint64(i), Weight: 1, Value: 1,
				Size: 1 + rng.Intn(12), Priority: rng.Open01(),
			}
			a.AddWithPriority(e)
			b.AddWithPriority(e)
			if i%23 == 0 {
				_ = a.Threshold() // interleaved settles must not change the outcome
			}
		}
		if a.Threshold() != b.threshold {
			return false
		}
		if a.UsedBytes() != b.totalSize || a.Len() != len(b.heap) {
			return false
		}
		sa := a.Sample()
		sb := append([]Entry(nil), b.heap...)
		sort.Slice(sa, func(i, j int) bool { return sa[i].Priority < sa[j].Priority })
		sort.Slice(sb, func(i, j int) bool { return sb[i].Priority < sb[j].Priority })
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestBudgetSteadyStateZeroAllocs(t *testing.T) {
	s := New(1<<12, 9)
	rng := stream.NewRNG(4)
	for i := 0; i < 20000; i++ {
		s.Add(uint64(i), 1, 1, 16+rng.Intn(64))
	}
	key := uint64(20000)
	if allocs := testing.AllocsPerRun(1000, func() {
		key++
		s.Add(key, 1, 1, 32)
	}); allocs != 0 {
		t.Errorf("Add allocates %v per op in steady state, want 0", allocs)
	}
	buf := make([]Entry, 0, s.Len())
	if allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendSample(buf[:0])
	}); allocs != 0 {
		t.Errorf("AppendSample allocates %v per op, want 0", allocs)
	}
	var sc estimator.Scratch
	var sum float64
	if allocs := testing.AllocsPerRun(100, func() {
		sum, _ = s.SubsetSumInto(nil, &sc)
	}); allocs != 0 {
		t.Errorf("SubsetSumInto allocates %v per op, want 0", allocs)
	}
	if sum <= 0 {
		t.Error("SubsetSumInto returned a non-positive total")
	}
}

func BenchmarkAddBudget(b *testing.B) {
	rng := stream.NewRNG(13)
	sizes := make([]int, 1<<16)
	pris := make([]float64, 1<<16)
	for i := range sizes {
		sizes[i] = 16 + rng.Intn(64)
		pris[i] = rng.Open01()
	}
	b.Run("impl=scratch", func(b *testing.B) {
		s := New(1<<12, 2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i & (1<<16 - 1)
			s.AddWithPriority(Entry{Key: uint64(i), Weight: 1, Value: 1, Size: sizes[j], Priority: pris[j]})
		}
	})
	b.Run("impl=eagerheap", func(b *testing.B) {
		s := newEager(1 << 12)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i & (1<<16 - 1)
			s.AddWithPriority(Entry{Key: uint64(i), Weight: 1, Value: 1, Size: sizes[j], Priority: pris[j]})
		}
	})
}
