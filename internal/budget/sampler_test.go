package budget

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("budget <= 0 must panic")
		}
	}()
	New(0, 1)
}

func TestAllFitWithinBudget(t *testing.T) {
	s := New(100, 1)
	for i := 0; i < 10; i++ {
		s.Add(uint64(i), 1, 1, 5)
	}
	if s.Len() != 10 || s.UsedBytes() != 50 {
		t.Errorf("len=%d used=%d, want 10/50", s.Len(), s.UsedBytes())
	}
	if !math.IsInf(s.Threshold(), 1) {
		t.Error("threshold must stay +inf while everything fits")
	}
	sum, v := s.SubsetSum(nil)
	if sum != 10 || v != 0 {
		t.Errorf("exact sum = %v var %v, want 10, 0", sum, v)
	}
}

// TestMatchesPrefixRule verifies the defining property of §3.1: the sample
// equals the maximal ascending-priority prefix that fits the budget, and
// the threshold is the priority of the first overflowing item.
func TestMatchesPrefixRule(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		budget := 30
		s := New(budget, seed)
		type rec struct {
			pr   float64
			size int
		}
		var all []rec
		for i := 0; i < 50; i++ {
			pr := rng.Open01()
			size := 1 + rng.Intn(7)
			all = append(all, rec{pr, size})
			s.AddWithPriority(Entry{Key: uint64(i), Weight: 1, Value: 1, Size: size, Priority: pr})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].pr < all[j].pr })
		wantThreshold := math.Inf(1)
		total := 0
		wantCount := 0
		for _, r := range all {
			total += r.size
			if total > budget {
				wantThreshold = r.pr
				break
			}
			wantCount++
		}
		if s.Threshold() != wantThreshold {
			return false
		}
		if s.Len() != wantCount {
			return false
		}
		for _, e := range s.Sample() {
			if e.Priority >= wantThreshold {
				return false
			}
		}
		return s.UsedBytes() <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRejectedAboveThreshold(t *testing.T) {
	s := New(3, 2)
	s.AddWithPriority(Entry{Key: 1, Weight: 1, Value: 1, Size: 2, Priority: 0.1})
	s.AddWithPriority(Entry{Key: 2, Weight: 1, Value: 1, Size: 2, Priority: 0.2}) // overflows: T=0.2
	if s.Threshold() != 0.2 {
		t.Fatalf("threshold = %v, want 0.2", s.Threshold())
	}
	// An item above the threshold is rejected even though it would fit.
	s.AddWithPriority(Entry{Key: 3, Weight: 1, Value: 1, Size: 1, Priority: 0.5})
	if s.Len() != 1 {
		t.Error("item above the threshold must be rejected")
	}
	// An item below the threshold is accepted.
	s.AddWithPriority(Entry{Key: 4, Weight: 1, Value: 1, Size: 1, Priority: 0.05})
	if s.Len() != 2 {
		t.Error("item below the threshold must be accepted")
	}
}

func TestThresholdMonotoneNonIncreasing(t *testing.T) {
	rng := stream.NewRNG(11)
	s := New(20, 3)
	last := math.Inf(1)
	for i := 0; i < 500; i++ {
		s.AddWithPriority(Entry{
			Key: uint64(i), Weight: 1, Value: 1,
			Size: 1 + rng.Intn(4), Priority: rng.Open01(),
		})
		if th := s.Threshold(); th > last {
			t.Fatalf("threshold increased: %v -> %v", last, th)
		} else {
			last = th
		}
	}
}

func TestInvalidItemsIgnored(t *testing.T) {
	s := New(10, 4)
	s.Add(1, 0, 1, 1)  // zero weight
	s.Add(2, 1, 1, 0)  // zero size
	s.Add(3, -1, 1, 2) // negative weight
	if s.N() != 0 || s.Len() != 0 {
		t.Error("invalid items must be ignored entirely")
	}
}

// TestUnbiasedSubsetSum is the §3.1 claim: with B >= Lmax the usual HT
// estimator is unbiased, and with B >= 2*Lmax so is its variance estimate.
func TestUnbiasedSubsetSum(t *testing.T) {
	rng := stream.NewRNG(17)
	n := 150
	sizes := make([]int, n)
	values := make([]float64, n)
	truth := 0.0
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(6)
		values[i] = float64(sizes[i])
		truth += values[i]
	}
	budget := 60 // >= 2*Lmax = 12
	trials := 4000
	var est, varEst estimator.Running
	for trial := 0; trial < trials; trial++ {
		s := New(budget, uint64(trial)+500)
		for i := 0; i < n; i++ {
			s.Add(uint64(i), 1, values[i], sizes[i])
		}
		sum, v := s.SubsetSum(nil)
		est.Add(sum)
		varEst.Add(v)
	}
	if z := (est.Mean() - truth) / est.SE(); math.Abs(z) > 4.5 {
		t.Errorf("biased: mean %v truth %v z %v", est.Mean(), truth, z)
	}
	if ratio := varEst.Mean() / est.Variance(); ratio < 0.8 || ratio > 1.2 {
		t.Errorf("variance estimate ratio %v, want ≈ 1", ratio)
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stream.NewRNG(seed)
		budget := 25
		s := New(budget, seed)
		for i := 0; i < 200; i++ {
			s.Add(uint64(i), rng.Open01()*2, 1, 1+rng.Intn(10))
			if s.UsedBytes() > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
