// Package budget implements the variable item-size sampler of §3.1:
// instead of keeping a fixed number k of items (which forces the
// conservative k = B/Lmax when item sizes vary), it keeps as many
// smallest-priority items as fit within a memory budget of B bytes. The
// thresholding rule — the priority of the first item, in ascending priority
// order, that would overflow the budget — is substitutable, so plain HT
// estimators apply (subset sums when B >= Lmax, variance estimates when
// B >= 2*Lmax).
package budget

import (
	"math"

	"ats/internal/core"
	"ats/internal/estimator"
	"ats/internal/stream"
)

// Entry is one retained item.
type Entry struct {
	Key      uint64
	Weight   float64
	Value    float64
	Size     int
	Priority float64
}

// Sampler keeps the maximal ascending-priority prefix of the stream that
// fits in the byte budget.
type Sampler struct {
	budget int
	seed   uint64
	// heap is a max-heap on Priority of the currently retained prefix plus
	// (transiently) a newly inserted item.
	heap      []Entry
	totalSize int
	// threshold is the priority of the first item that overflowed the
	// budget (+inf until the budget has ever been exceeded). Items with
	// priority >= threshold are rejected outright.
	threshold float64
	n         int
}

// New returns a sampler with the given byte budget. budget must be
// positive.
func New(budget int, seed uint64) *Sampler {
	if budget <= 0 {
		panic("budget: budget must be positive")
	}
	return &Sampler{budget: budget, seed: seed, threshold: math.Inf(1)}
}

// Budget returns the configured byte budget.
func (s *Sampler) Budget() int { return s.budget }

// N returns the number of items offered.
func (s *Sampler) N() int { return s.n }

// UsedBytes returns the total size of currently retained items.
func (s *Sampler) UsedBytes() int { return s.totalSize }

// Add offers an item. Weight must be positive; size must be positive and
// should not exceed the budget (an item larger than the whole budget has
// zero inclusion probability, which the estimators skip but the paper
// requires B >= Lmax for unbiasedness).
func (s *Sampler) Add(key uint64, weight, value float64, size int) {
	if weight <= 0 || size <= 0 {
		return
	}
	u := stream.HashU01(key, s.seed)
	s.AddWithPriority(Entry{Key: key, Weight: weight, Value: value, Size: size, Priority: u / weight})
}

// AddWithPriority offers an item with an explicit priority.
func (s *Sampler) AddWithPriority(e Entry) {
	s.n++
	if e.Priority >= s.threshold {
		return
	}
	s.heap = append(s.heap, e)
	siftUp(s.heap, len(s.heap)-1)
	s.totalSize += e.Size
	// Evict from the largest priority down until the prefix fits. The
	// first eviction that brings the total to <= budget defines the new
	// threshold: in ascending-priority order that evicted item is exactly
	// the first to overflow the budget.
	for s.totalSize > s.budget {
		evicted := popRoot(&s.heap)
		s.totalSize -= evicted.Size
		s.threshold = evicted.Priority
	}
}

// Threshold returns the current adaptive threshold (+inf while everything
// seen so far fits in the budget).
func (s *Sampler) Threshold() float64 { return s.threshold }

// Sample returns the retained items (unordered, freshly allocated).
func (s *Sampler) Sample() []Entry {
	out := make([]Entry, len(s.heap))
	copy(out, s.heap)
	return out
}

// Len returns the number of retained items.
func (s *Sampler) Len() int { return len(s.heap) }

// SubsetSum returns the HT estimate of Σ value over stream items matching
// pred (nil for all), plus the unbiased variance estimate.
func (s *Sampler) SubsetSum(pred func(Entry) bool) (sum, varianceEstimate float64) {
	t := s.threshold
	if math.IsInf(t, 1) {
		for _, e := range s.heap {
			if pred == nil || pred(e) {
				sum += e.Value
			}
		}
		return sum, 0
	}
	sampled := make([]estimator.Sampled, 0, len(s.heap))
	for _, e := range s.heap {
		if pred != nil && !pred(e) {
			continue
		}
		sampled = append(sampled, estimator.Sampled{
			Value: e.Value,
			P:     core.InclusionProb(e.Weight, t),
		})
	}
	return estimator.SubsetSum(sampled), estimator.HTVarianceEstimate(sampled)
}

// --- max-heap on Priority ---

func siftUp(h []Entry, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Priority >= h[i].Priority {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func popRoot(h *[]Entry) Entry {
	old := *h
	root := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	siftDown(*h, 0)
	return root
}

func siftDown(h []Entry, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l].Priority > h[largest].Priority {
			largest = l
		}
		if r < n && h[r].Priority > h[largest].Priority {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
