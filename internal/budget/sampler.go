// Package budget implements the variable item-size sampler of §3.1:
// instead of keeping a fixed number k of items (which forces the
// conservative k = B/Lmax when item sizes vary), it keeps as many
// smallest-priority items as fit within a memory budget of B bytes. The
// thresholding rule — the priority of the first item, in ascending priority
// order, that would overflow the budget — is substitutable, so plain HT
// estimators apply (subset sums when B >= Lmax, variance estimates when
// B >= 2*Lmax).
//
// Like the bottom-k and distinct sketches, ingest is amortized O(1) per
// item: accepted items are appended to a scratch buffer and the exact
// budget rule is re-established by a weighted quickselect only when the
// buffer outgrows its compaction limit (or a query needs the settled
// state). Because the rule depends only on the multiset of (priority,
// size) pairs, deferred compaction retains exactly the same items and
// threshold as the original evict-as-you-go heap.
package budget

import (
	"math"

	"ats/internal/core"
	"ats/internal/estimator"
	"ats/internal/stream"
)

// scratchSlack is the minimum headroom of appended items before a
// compaction is worthwhile.
const scratchSlack = 32

// insertionCutoff mirrors the keeper's quickselect base case.
const insertionCutoff = 12

// Entry is one retained item.
type Entry struct {
	Key      uint64
	Weight   float64
	Value    float64
	Size     int
	Priority float64
}

// Sampler keeps the maximal ascending-priority prefix of the stream that
// fits in the byte budget. Query methods settle the scratch buffer first;
// they may mutate the internal representation but never the logical
// state.
type Sampler struct {
	budget int
	seed   uint64
	// buf holds the retained prefix plus items accepted since the last
	// compaction; bufSize is the total Size over buf.
	buf     []Entry
	bufSize int
	// limit is the buffer length that triggers a compaction attempt.
	limit int
	// threshold is the priority of the first item that overflowed the
	// budget (+inf until the budget has ever been exceeded). Items with
	// priority >= threshold are rejected outright.
	threshold float64
	n         int
}

// New returns a sampler with the given byte budget. budget must be
// positive.
func New(budget int, seed uint64) *Sampler {
	if budget <= 0 {
		panic("budget: budget must be positive")
	}
	return &Sampler{budget: budget, seed: seed, threshold: math.Inf(1), limit: scratchSlack}
}

// Budget returns the configured byte budget.
func (s *Sampler) Budget() int { return s.budget }

// N returns the number of items offered.
func (s *Sampler) N() int { return s.n }

// UsedBytes returns the total size of currently retained items.
func (s *Sampler) UsedBytes() int {
	s.settle()
	return s.bufSize
}

// Add offers an item. Weight must be positive; size must be positive and
// should not exceed the budget (an item larger than the whole budget has
// zero inclusion probability, which the estimators skip but the paper
// requires B >= Lmax for unbiasedness).
func (s *Sampler) Add(key uint64, weight, value float64, size int) {
	if weight <= 0 || size <= 0 {
		return
	}
	u := stream.HashU01(key, s.seed)
	s.AddWithPriority(Entry{Key: key, Weight: weight, Value: value, Size: size, Priority: u / weight})
}

// AddWithPriority offers an item with an explicit priority.
func (s *Sampler) AddWithPriority(e Entry) {
	s.n++
	if e.Priority >= s.threshold {
		return
	}
	if len(s.buf) >= s.limit && s.bufSize > s.budget {
		s.settle()
		if e.Priority >= s.threshold {
			return
		}
	}
	s.buf = append(s.buf, e)
	s.bufSize += e.Size
}

// settle re-establishes the exact budget rule over the buffered items:
// the maximal ascending-priority prefix fitting the budget is retained
// and the threshold becomes the priority of the first overflowing item.
// While everything buffered fits, nothing changes (matching the eager
// implementation, whose threshold only moved on eviction).
func (s *Sampler) settle() {
	s.limit = 2*len(s.buf) + scratchSlack
	if s.bufSize <= s.budget {
		return
	}
	m, kept, overflow := weightedPrefix(s.buf, s.budget)
	s.buf = s.buf[:m]
	s.bufSize = kept
	s.threshold = overflow
	s.limit = 2*m + scratchSlack
}

// weightedPrefix rearranges buf so that the maximal ascending-priority
// prefix with total Size <= budget occupies buf[:m] and returns m, the
// prefix's total size, and the priority of the first overflowing item.
// It must only be called when the whole buffer overflows the budget.
// Expected O(len(buf)): quickselect-style partitioning that descends into
// the half containing the budget boundary, accounting whole left halves
// in O(range) sums.
func weightedPrefix(buf []Entry, budget int) (m, kept int, overflow float64) {
	lo, hi := 0, len(buf)-1
	taken := 0 // bytes of the confirmed prefix buf[:lo]
	for hi-lo >= insertionCutoff {
		mid := lo + (hi-lo)/2
		if buf[mid].Priority < buf[lo].Priority {
			buf[mid], buf[lo] = buf[lo], buf[mid]
		}
		if buf[hi].Priority < buf[lo].Priority {
			buf[hi], buf[lo] = buf[lo], buf[hi]
		}
		if buf[hi].Priority < buf[mid].Priority {
			buf[hi], buf[mid] = buf[mid], buf[hi]
		}
		p := buf[mid].Priority
		i, j := lo, hi
		for i <= j {
			for buf[i].Priority < p {
				i++
			}
			for buf[j].Priority > p {
				j--
			}
			if i <= j {
				buf[i], buf[j] = buf[j], buf[i]
				i++
				j--
			}
		}
		if j < lo {
			// Empty left partition: buf[lo] equals the pivot and is a
			// minimum of the window; account for it alone.
			if taken+buf[lo].Size > budget {
				return lo, taken, buf[lo].Priority
			}
			taken += buf[lo].Size
			lo++
			continue
		}
		leftSize := 0
		for t := lo; t <= j; t++ {
			leftSize += buf[t].Size
		}
		if taken+leftSize > budget {
			hi = j // the boundary lies inside the left partition
		} else {
			taken += leftSize
			lo = j + 1
		}
	}
	// Base case: order the remaining window and scan for the boundary.
	for i := lo + 1; i <= hi; i++ {
		e := buf[i]
		j := i - 1
		for j >= lo && buf[j].Priority > e.Priority {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = e
	}
	for t := lo; t <= hi; t++ {
		if taken+buf[t].Size > budget {
			return t, taken, buf[t].Priority
		}
		taken += buf[t].Size
	}
	return hi + 1, taken, math.Inf(1)
}

// Threshold returns the current adaptive threshold (+inf while everything
// seen so far fits in the budget).
func (s *Sampler) Threshold() float64 {
	s.settle()
	return s.threshold
}

// Sample returns the retained items (unordered, freshly allocated). Use
// AppendSample to reuse a buffer instead.
func (s *Sampler) Sample() []Entry {
	s.settle()
	out := make([]Entry, len(s.buf))
	copy(out, s.buf)
	return out
}

// AppendSample appends the retained items to dst and returns the extended
// slice; with a reused dst it performs no allocation.
func (s *Sampler) AppendSample(dst []Entry) []Entry {
	s.settle()
	return append(dst, s.buf...)
}

// Len returns the number of retained items.
func (s *Sampler) Len() int {
	s.settle()
	return len(s.buf)
}

// SubsetSum returns the HT estimate of Σ value over stream items matching
// pred (nil for all), plus the unbiased variance estimate.
func (s *Sampler) SubsetSum(pred func(Entry) bool) (sum, varianceEstimate float64) {
	var sc estimator.Scratch
	return s.SubsetSumInto(pred, &sc)
}

// SubsetSumInto is SubsetSum with a caller-supplied reusable scratch
// buffer: steady-state estimation performs no allocation.
func (s *Sampler) SubsetSumInto(pred func(Entry) bool, sc *estimator.Scratch) (sum, varianceEstimate float64) {
	s.settle()
	t := s.threshold
	if math.IsInf(t, 1) {
		for _, e := range s.buf {
			if pred == nil || pred(e) {
				sum += e.Value
			}
		}
		return sum, 0
	}
	sc.Reset()
	for _, e := range s.buf {
		if pred != nil && !pred(e) {
			continue
		}
		sc.Append(estimator.Sampled{
			Value: e.Value,
			P:     core.InclusionProb(e.Weight, t),
		})
	}
	return sc.SubsetSum()
}
