// Package reservoir implements weighted reservoir sampling with
// exponential jumps à la Efraimidis & Spirakis (IPL 2006), cited as [13]
// in the paper. A-Res keeps the k items with the largest keys u^{1/w};
// taking logarithms, -ln(u)/w ~ Exponential(w), so A-Res is EXACTLY
// bottom-k adaptive threshold sampling with Exponential(w) priorities —
// a concrete instance of the paper's observation (Theorem 12) that
// priority families are interchangeable, here at finite n: the bottom-k
// rule is substitutable for any continuous priority family, so the HT
// estimator with F(r) = 1 - exp(-w r) is exactly unbiased.
package reservoir

import (
	"math"

	"ats/internal/estimator"
	"ats/internal/stream"
)

// Entry is one retained item.
type Entry struct {
	Key    uint64
	Weight float64
	Value  float64
	// Priority is the exponential priority -ln(U)/w (small = likely kept);
	// equivalently -ln(key) for the classical A-Res key u^{1/w}.
	Priority float64
}

// Sketch is an Efraimidis-Spirakis weighted reservoir of size k.
type Sketch struct {
	k    int
	seed uint64
	heap []Entry // max-heap on Priority holding the k+1 smallest
	n    int
}

// New returns an empty weighted reservoir of size k.
func New(k int, seed uint64) *Sketch {
	if k <= 0 {
		panic("reservoir: k must be positive")
	}
	return &Sketch{k: k, seed: seed}
}

// K returns the reservoir size.
func (s *Sketch) K() int { return s.k }

// N returns the number of items offered.
func (s *Sketch) N() int { return s.n }

// Add offers an item with weight w > 0 and value x.
func (s *Sketch) Add(key uint64, w, x float64) {
	if w <= 0 {
		return
	}
	u := stream.HashU01(key, s.seed)
	s.AddWithPriority(Entry{Key: key, Weight: w, Value: x, Priority: -math.Log(u) / w})
}

// AddWithPriority offers an item with an explicit exponential priority.
func (s *Sketch) AddWithPriority(e Entry) {
	s.n++
	if len(s.heap) == s.k+1 && e.Priority >= s.heap[0].Priority {
		return
	}
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].Priority >= s.heap[i].Priority {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
	if len(s.heap) > s.k+1 {
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		s.siftDown(0)
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.heap[l].Priority > s.heap[largest].Priority {
			largest = l
		}
		if r < n && s.heap[r].Priority > s.heap[largest].Priority {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}

// Threshold returns the (k+1)-th smallest exponential priority (+inf while
// fewer than k+1 items have been seen).
func (s *Sketch) Threshold() float64 {
	if len(s.heap) < s.k+1 {
		return math.Inf(1)
	}
	return s.heap[0].Priority
}

// Sample returns the retained entries with priority strictly below the
// threshold.
func (s *Sketch) Sample() []Entry {
	t := s.Threshold()
	out := make([]Entry, 0, s.k)
	for _, e := range s.heap {
		if e.Priority < t {
			out = append(out, e)
		}
	}
	return out
}

// InclusionProb returns the pseudo-inclusion probability of a retained
// entry under the exponential priority CDF: 1 - exp(-w·T).
func (s *Sketch) InclusionProb(e Entry) float64 {
	t := s.Threshold()
	if math.IsInf(t, 1) {
		return 1
	}
	return -math.Expm1(-e.Weight * t)
}

// SubsetSum returns the HT estimate of Σ value over stream items matching
// pred (nil for all). Exactly unbiased: the bottom-k rule is substitutable
// regardless of the priority family, and the pseudo-inclusion probability
// uses the exponential CDF.
func (s *Sketch) SubsetSum(pred func(Entry) bool) float64 {
	t := s.Threshold()
	if math.IsInf(t, 1) {
		sum := 0.0
		for _, e := range s.heap {
			if pred == nil || pred(e) {
				sum += e.Value
			}
		}
		return sum
	}
	sample := make([]estimator.Sampled, 0, s.k)
	for _, e := range s.heap {
		if e.Priority >= t {
			continue
		}
		if pred != nil && !pred(e) {
			continue
		}
		sample = append(sample, estimator.Sampled{Value: e.Value, P: s.InclusionProb(e)})
	}
	return estimator.SubsetSum(sample)
}
