package reservoir

import (
	"math"
	"sort"
	"testing"

	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k <= 0 must panic")
		}
	}()
	New(0, 1)
}

func TestFixedSize(t *testing.T) {
	s := New(20, 1)
	rng := stream.NewRNG(2)
	for i := 0; i < 2000; i++ {
		s.Add(uint64(i), rng.Open01()*5, 1)
	}
	if got := len(s.Sample()); got != 20 {
		t.Errorf("sample size %d, want 20", got)
	}
}

// TestEquivalentToARes verifies the classical A-Res formulation: keeping
// the k LARGEST keys u^{1/w} selects exactly the same items as our
// bottom-k on -ln(u)/w.
func TestEquivalentToARes(t *testing.T) {
	rng := stream.NewRNG(3)
	type rec struct {
		key uint64
		u   float64
		w   float64
	}
	n := 300
	k := 15
	recs := make([]rec, n)
	s := New(k, 99)
	for i := range recs {
		recs[i] = rec{key: uint64(i), u: rng.Open01(), w: 0.2 + rng.Float64()*4}
		s.AddWithPriority(Entry{
			Key: recs[i].key, Weight: recs[i].w, Value: 1,
			Priority: -math.Log(recs[i].u) / recs[i].w,
		})
	}
	// A-Res: sort by u^{1/w} descending, take top k.
	sort.Slice(recs, func(i, j int) bool {
		return math.Pow(recs[i].u, 1/recs[i].w) > math.Pow(recs[j].u, 1/recs[j].w)
	})
	want := make(map[uint64]bool, k)
	for _, r := range recs[:k] {
		want[r.key] = true
	}
	got := s.Sample()
	if len(got) != k {
		t.Fatalf("sample size %d", len(got))
	}
	for _, e := range got {
		if !want[e.Key] {
			t.Fatalf("item %d sampled by bottom-k(exp) but not by A-Res", e.Key)
		}
	}
}

// TestSubsetSumUnbiased: the HT estimator with the exponential CDF is
// exactly unbiased — the bottom-k threshold is substitutable for any
// continuous priority family.
func TestSubsetSumUnbiased(t *testing.T) {
	items := stream.ParetoWeights(500, 1.5, 4)
	truth := 0.0
	pred := func(e Entry) bool { return e.Key%3 == 0 }
	for _, it := range items {
		if it.Key%3 == 0 {
			truth += it.Value
		}
	}
	var est estimator.Running
	for trial := 0; trial < 4000; trial++ {
		s := New(60, uint64(trial)+100)
		for _, it := range items {
			s.Add(it.Key, it.Weight, it.Value)
		}
		est.Add(s.SubsetSum(pred))
	}
	if z := (est.Mean() - truth) / est.SE(); math.Abs(z) > 4.5 {
		t.Errorf("ES reservoir subset sum biased: mean %v truth %v z %v", est.Mean(), truth, z)
	}
}

// TestTheorem12FiniteSample compares the exponential-priority reservoir
// against the U/w-priority bottom-k at matched k: per Theorem 12 their
// estimator distributions converge; at finite n they should already be
// close (SD ratio within ~15%).
func TestTheorem12FiniteSample(t *testing.T) {
	items := stream.ParetoWeights(4000, 1.5, 5)
	truth := 0.0
	for _, it := range items {
		truth += it.Value
	}
	k := 64
	var expEsts, uniEsts []float64
	for trial := 0; trial < 600; trial++ {
		seed := uint64(trial) + 1000
		es := New(k, seed)
		for _, it := range items {
			es.Add(it.Key, it.Weight, it.Value)
		}
		expEsts = append(expEsts, es.SubsetSum(nil))

		uni := newUniformBottomK(k, seed, items)
		uniEsts = append(uniEsts, uni)
	}
	sdExp := estimator.RelativeSD(expEsts, truth)
	sdUni := estimator.RelativeSD(uniEsts, truth)
	if ratio := sdExp / sdUni; ratio < 0.85 || ratio > 1.18 {
		t.Errorf("priority-family SD ratio %v (exp %v vs uniform %v), want ≈ 1",
			ratio, sdExp, sdUni)
	}
}

// newUniformBottomK computes the U/w-priority bottom-k HT total directly
// (avoiding an import cycle with internal/bottomk is unnecessary — this
// keeps the comparison self-contained).
func newUniformBottomK(k int, seed uint64, items []stream.WeightedItem) float64 {
	type it struct {
		pr float64
		w  float64
		v  float64
	}
	all := make([]it, len(items))
	for i, x := range items {
		u := stream.HashU01(x.Key, seed)
		all[i] = it{pr: u / x.Weight, w: x.Weight, v: x.Value}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pr < all[j].pr })
	if len(all) <= k {
		sum := 0.0
		for _, x := range all {
			sum += x.v
		}
		return sum
	}
	th := all[k].pr
	sum := 0.0
	for _, x := range all[:k] {
		p := x.w * th
		if p > 1 {
			p = 1
		}
		sum += x.v / p
	}
	return sum
}

func TestInvalidWeightIgnored(t *testing.T) {
	s := New(5, 6)
	s.Add(1, 0, 1)
	s.Add(2, -1, 1)
	if s.N() != 0 || len(s.Sample()) != 0 {
		t.Error("non-positive weights must be ignored")
	}
}

func TestExactBelowK(t *testing.T) {
	s := New(50, 7)
	want := 0.0
	for i := 0; i < 20; i++ {
		v := float64(i + 1)
		s.Add(uint64(i), v, v)
		want += v
	}
	if got := s.SubsetSum(nil); got != want {
		t.Errorf("exact sum %v, want %v", got, want)
	}
	for _, e := range s.Sample() {
		if p := s.InclusionProb(e); p != 1 {
			t.Errorf("below capacity inclusion prob %v, want 1", p)
		}
	}
}
