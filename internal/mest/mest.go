// Package mest implements M-estimation from adaptive threshold samples
// (§4 of the paper): estimators defined as maximizers of an objective
// J_n(θ) = Σ_i f_θ(X_i), computed from a sample by reweighting the
// objective with Horvitz-Thompson weights,
//
//	Ĵ_n(θ; T) = Σ_i f_θ(X_i) · Z_i / F_i(T_i).
//
// Theorem 10 shows such estimators remain consistent under adaptive
// thresholds that converge appropriately; the experiments package
// validates this empirically for the weighted quantile (pinball-loss
// minimizer) and the weighted mean (L2 minimizer) under bottom-k
// thresholds, including the Theorem 12 equivalence of priority
// distributions in the sublinear regime.
package mest

import "sort"

// Point is one sampled observation with its pseudo-inclusion probability.
type Point struct {
	X float64
	// P is the pseudo-inclusion probability F_i(T_i) in (0, 1].
	P float64
}

// Mean returns the HT-weighted mean — the maximizer of the reweighted L2
// objective Σ w_i (X_i - θ)², w_i = 1/P_i. It estimates the population
// mean of X.
func Mean(points []Point) float64 {
	var sw, swx float64
	for _, p := range points {
		if p.P <= 0 {
			continue
		}
		w := 1 / p.P
		sw += w
		swx += w * p.X
	}
	if sw == 0 {
		return 0
	}
	return swx / sw
}

// Quantile returns the HT-weighted q-quantile — the minimizer of the
// reweighted pinball loss. It estimates the population q-quantile of X.
// q must be in (0, 1).
func Quantile(points []Point, q float64) float64 {
	if q <= 0 || q >= 1 {
		panic("mest: q must be in (0, 1)")
	}
	type wp struct{ x, w float64 }
	ps := make([]wp, 0, len(points))
	total := 0.0
	for _, p := range points {
		if p.P <= 0 {
			continue
		}
		w := 1 / p.P
		ps = append(ps, wp{p.X, w})
		total += w
	}
	if len(ps) == 0 {
		return 0
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	target := q * total
	acc := 0.0
	for _, p := range ps {
		acc += p.w
		if acc >= target {
			return p.x
		}
	}
	return ps[len(ps)-1].x
}

// Objective evaluates the HT-reweighted objective Ĵ(θ) = Σ f(X_i, θ)/P_i
// for a caller-supplied per-point loss. It is the generic building block
// for custom M-estimators (maximum likelihood, robust regression, ...).
func Objective(points []Point, theta float64, f func(x, theta float64) float64) float64 {
	s := 0.0
	for _, p := range points {
		if p.P > 0 {
			s += f(p.X, theta) / p.P
		}
	}
	return s
}

// Minimize runs a golden-section search for the minimizer of the
// HT-reweighted objective on [lo, hi]. The objective must be unimodal on
// the interval (true for the convex losses used by mean/quantile/Huber
// estimation).
func Minimize(points []Point, lo, hi float64, f func(x, theta float64) float64) float64 {
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc := Objective(points, c, f)
	fd := Objective(points, d, f)
	for i := 0; i < 100 && b-a > 1e-10*(1+b-a); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = Objective(points, c, f)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = Objective(points, d, f)
		}
	}
	return (a + b) / 2
}

// HuberLoss returns the Huber loss with scale delta, for robust location
// estimation via Minimize.
func HuberLoss(delta float64) func(x, theta float64) float64 {
	return func(x, theta float64) float64 {
		r := x - theta
		if r < 0 {
			r = -r
		}
		if r <= delta {
			return 0.5 * r * r
		}
		return delta * (r - 0.5*delta)
	}
}
