package mest

import (
	"math"
	"sort"
	"testing"

	"ats/internal/bottomk"
	"ats/internal/estimator"
	"ats/internal/stream"
)

func TestMeanExactWhenPOne(t *testing.T) {
	pts := []Point{{X: 1, P: 1}, {X: 2, P: 1}, {X: 6, P: 1}}
	if got := Mean(pts); got != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestMeanWeighting(t *testing.T) {
	// An item with P = 0.5 counts double.
	pts := []Point{{X: 0, P: 1}, {X: 3, P: 0.5}}
	if got := Mean(pts); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}

func TestQuantileValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("q out of (0,1) must panic")
		}
	}()
	Quantile(nil, 1)
}

func TestQuantileExact(t *testing.T) {
	var pts []Point
	for i := 1; i <= 100; i++ {
		pts = append(pts, Point{X: float64(i), P: 1})
	}
	if got := Quantile(pts, 0.5); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := Quantile(pts, 0.9); got != 90 {
		t.Errorf("q90 = %v, want 90", got)
	}
}

// TestQuantileConsistentUnderBottomK is the Theorem 10 validation: the
// HT-weighted quantile from a bottom-k adaptive threshold sample converges
// to the population quantile as n (and k, proportionally) grow.
func TestQuantileConsistentUnderBottomK(t *testing.T) {
	rng := stream.NewRNG(1)
	var prevRMSE float64
	for gi, n := range []int{500, 5000, 50000} {
		// Population: exponential-ish values; weights correlated with X so
		// the sampling is genuinely non-uniform.
		xs := make([]float64, n)
		ws := make([]float64, n)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 10
			ws[i] = 0.5 + xs[i]/10 // bigger values sampled more often
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		truth := sorted[n/2]

		k := n / 10
		var se estimator.Running
		trials := 60
		for trial := 0; trial < trials; trial++ {
			sk := bottomk.New(k, uint64(gi*1000+trial)+7)
			for i := 0; i < n; i++ {
				sk.Add(uint64(i), ws[i], xs[i])
			}
			th := sk.Threshold()
			pts := make([]Point, 0, k)
			for _, e := range sk.Sample() {
				p := e.Weight * th
				if p > 1 {
					p = 1
				}
				pts = append(pts, Point{X: e.Value, P: p})
			}
			err := Quantile(pts, 0.5) - truth
			se.Add(err * err)
		}
		rmse := math.Sqrt(se.Mean()) / truth
		if gi > 0 && rmse > prevRMSE*0.9 {
			t.Errorf("n=%d: relative RMSE %v did not shrink from %v (inconsistent?)", n, rmse, prevRMSE)
		}
		prevRMSE = rmse
	}
}

func TestMinimizeRecoversMeanAndHuber(t *testing.T) {
	rng := stream.NewRNG(2)
	pts := make([]Point, 400)
	for i := range pts {
		pts[i] = Point{X: 5 + rng.NormFloat64(), P: 1}
	}
	l2 := func(x, th float64) float64 { d := x - th; return d * d }
	if got := Minimize(pts, -100, 100, l2); math.Abs(got-Mean(pts)) > 1e-6 {
		t.Errorf("L2 minimizer %v != mean %v", got, Mean(pts))
	}
	// Huber with outliers: stays near 5 even with gross contamination.
	for i := 0; i < 40; i++ {
		pts = append(pts, Point{X: 1000, P: 1})
	}
	robust := Minimize(pts, -100, 2000, HuberLoss(1))
	if math.Abs(robust-5) > 0.5 {
		t.Errorf("Huber estimate %v, want ≈ 5 despite outliers", robust)
	}
	naive := Mean(pts)
	if math.Abs(naive-5) < 10 {
		t.Errorf("sanity: the naive mean %v should have been dragged away", naive)
	}
}

func TestObjectiveSkipsBadP(t *testing.T) {
	pts := []Point{{X: 1, P: 0}, {X: 2, P: 1}}
	got := Objective(pts, 0, func(x, _ float64) float64 { return x })
	if got != 2 {
		t.Errorf("objective = %v, want 2", got)
	}
}
