package fail

import (
	"errors"
	"os"
	"os/exec"
	"testing"
)

func TestDisarmedIsSilent(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("no points armed but Enabled() is true")
	}
	for i := 0; i < 100; i++ {
		if err := Check("wal/append/before"); err != nil {
			t.Fatalf("disarmed Check returned %v", err)
		}
	}
}

func TestErrorFiresOnNthHitOnly(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("wal/fsync=error@3"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("armed but Enabled() is false")
	}
	for i := 1; i <= 5; i++ {
		err := Check("wal/fsync")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want injected error, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
	// Unarmed sibling point never fires.
	if err := Check("wal/fsync/other"); err != nil {
		t.Fatalf("sibling point fired: %v", err)
	}
}

func TestTornTriggersExactlyOnce(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("wal/append/torn=torn@2"); err != nil {
		t.Fatal(err)
	}
	torn, err := Triggered("wal/append/torn")
	if torn || err != nil {
		t.Fatalf("hit 1: torn=%v err=%v", torn, err)
	}
	torn, err = Triggered("wal/append/torn")
	if !torn || err != nil {
		t.Fatalf("hit 2: torn=%v err=%v, want torn", torn, err)
	}
	torn, err = Triggered("wal/append/torn")
	if torn || err != nil {
		t.Fatalf("hit 3: torn=%v err=%v", torn, err)
	}
}

func TestArmRejectsMalformedSpecs(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	for _, spec := range []string{"noequals", "x=", "x=boom", "x=error@0", "x=error@-1", "x=error@huge"} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
}

// TestExitKillsProcess re-execs the test binary with an armed exit
// point and expects the child to die from SIGKILL, not exit cleanly.
func TestExitKillsProcess(t *testing.T) {
	if os.Getenv("FAIL_TEST_CHILD") == "1" {
		// Child: the first hit must not return.
		_ = Check("crash/here")
		os.Exit(0) // reaching this is the failure
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestExitKillsProcess$", "-test.v=false")
	cmd.Env = append(os.Environ(), "FAIL_TEST_CHILD=1", EnvVar+"=crash/here=exit@1")
	err := cmd.Run()
	var xerr *exec.ExitError
	if !errors.As(err, &xerr) {
		t.Fatalf("child exited cleanly (err=%v); Crash did not kill it", err)
	}
	if code := xerr.ExitCode(); code == 0 {
		t.Fatalf("child exit code 0, want a kill")
	}
}
