// Package fail is the fault-injection layer of the durability stack: a
// registry of named failpoints compiled into the hot paths of the WAL,
// snapshot and serving code, armed from the environment and dormant —
// one atomic load — when unarmed.
//
// A failpoint is named like a path ("wal/append/torn") and armed with
//
//	ATS_FAILPOINTS="wal/fsync=error@3,wal/append/torn=exit@17"
//
// meaning: the 3rd hit of wal/fsync returns an injected error, and the
// 17th hit of wal/append/torn fires its custom action and then the
// process dies with SIGKILL (simulating a hard crash — no deferred
// cleanup, no flushes). Actions:
//
//	error  the call site receives ErrInjected (wrapped with the name)
//	exit   the process SIGKILLs itself at the point
//	torn   the call site performs its own partial-effect variant (for
//	       write points: write a prefix of the record) and then exits;
//	       sites opt in via Triggered
//
// Hits are counted per point across the process, so "@N" is
// deterministic for a serialized path (the WAL ingest path is exactly
// that). Tests arm points programmatically with Arm/Reset.
package fail

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// EnvVar is the environment variable holding the armed failpoint spec.
const EnvVar = "ATS_FAILPOINTS"

// ErrInjected is the sentinel wrapped by every injected error.
var ErrInjected = errors.New("fail: injected fault")

// Action is what an armed failpoint does when its hit count is reached.
type Action uint8

const (
	// None means the point is not armed (or not yet reached).
	None Action = iota
	// Error makes Check return an ErrInjected-wrapped error.
	Error
	// Exit SIGKILLs the process at the point.
	Exit
	// Torn is Exit preceded by a site-specific partial effect; only
	// sites that consult Triggered honor it, Check treats it as Exit.
	Torn
)

// point is one armed failpoint.
type point struct {
	action Action
	// nth is the 1-based hit that fires; hits counts calls so far.
	nth  int64
	hits atomic.Int64
}

var (
	mu     sync.Mutex
	points map[string]*point
	// armed is the fast-path gate: false means every helper returns
	// immediately after one atomic load.
	armed    atomic.Bool
	initOnce sync.Once
)

// initFromEnv parses EnvVar once, on first use.
func initFromEnv() {
	initOnce.Do(func() {
		if spec := os.Getenv(EnvVar); spec != "" {
			if err := Arm(spec); err != nil {
				fmt.Fprintf(os.Stderr, "fail: bad %s: %v\n", EnvVar, err)
				os.Exit(2)
			}
		}
	})
}

// Arm parses a spec ("name=action@N[,name=action@N...]") and arms the
// named points, replacing any previous arming of the same names. Tests
// use it directly; the daemon arms from the environment.
func Arm(spec string) error {
	parsed := make(map[string]*point)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return fmt.Errorf("fail: bad entry %q (want name=action@N)", entry)
		}
		actName, nStr, ok := strings.Cut(rest, "@")
		nth := int64(1)
		if ok {
			v, err := strconv.ParseInt(nStr, 10, 64)
			if err != nil || v < 1 {
				return fmt.Errorf("fail: bad hit count in %q", entry)
			}
			nth = v
		}
		var act Action
		switch actName {
		case "error":
			act = Error
		case "exit":
			act = Exit
		case "torn":
			act = Torn
		default:
			return fmt.Errorf("fail: unknown action %q in %q", actName, entry)
		}
		parsed[name] = &point{action: act, nth: nth}
	}
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	for name, p := range parsed {
		points[name] = p
	}
	armed.Store(len(points) > 0)
	return nil
}

// Reset disarms every failpoint (test teardown).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armed.Store(false)
}

// Enabled reports whether any failpoint is armed. One atomic load, so
// callers may gate larger setup on it.
func Enabled() bool {
	initFromEnv()
	return armed.Load()
}

// lookup counts a hit against name and returns the action to take now,
// or None.
func lookup(name string) Action {
	initFromEnv()
	if !armed.Load() {
		return None
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return None
	}
	if p.hits.Add(1) != p.nth {
		return None
	}
	return p.action
}

// Check fires name: it returns nil when unarmed or not yet at the
// armed hit, an ErrInjected-wrapped error for an error action, and
// does not return for exit/torn actions (the process SIGKILLs itself).
func Check(name string) error {
	switch lookup(name) {
	case None:
		return nil
	case Error:
		return fmt.Errorf("%w at %s", ErrInjected, name)
	default:
		Crash(name)
		return nil // unreachable
	}
}

// Triggered reports whether name's torn action fires at this hit. The
// caller performs its partial effect and then must call Crash. Error
// and exit actions behave as in Check (so one call site serves all
// three), which means Triggered can return an error too.
func Triggered(name string) (torn bool, err error) {
	switch lookup(name) {
	case None:
		return false, nil
	case Error:
		return false, fmt.Errorf("%w at %s", ErrInjected, name)
	case Torn:
		return true, nil
	default:
		Crash(name)
		return false, nil // unreachable
	}
}

// Crash terminates the process the hard way — SIGKILL to self, so no
// deferred cleanup, exit hooks or buffered writes run — simulating a
// machine-level crash at the call site. The small stderr note helps
// harnesses attribute the death; it may or may not flush, by design.
func Crash(name string) {
	fmt.Fprintf(os.Stderr, "fail: crashing at %s\n", name)
	if err := syscall.Kill(os.Getpid(), syscall.SIGKILL); err != nil {
		os.Exit(137)
	}
	select {} // SIGKILL delivery is asynchronous; never proceed past here
}
