package stream

import "math"

// Zipf draws items from a Zipf(s) distribution over n items: item rank r
// (1-based) has probability proportional to 1/r^s. It uses inversion on the
// precomputed CDF, which is simple, exact, and fast enough for the
// experiment sizes used here.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf returns a Zipf generator over n items with exponent s > 0.
func NewZipf(n int, s float64, seed uint64) *Zipf {
	if n <= 0 {
		panic("stream: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &Zipf{rng: NewRNG(seed), cdf: cdf}
}

// Next returns the next item identifier in [0, n), 0 being the most
// frequent.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}

// WeightedItem is a (key, weight, value) record for weighted-sampling
// workloads. Value is the measurement being aggregated (often equal to
// Weight for PPS-style workloads).
type WeightedItem struct {
	Key    uint64
	Weight float64
	Value  float64
}

// ParetoWeights generates n weighted items whose weights follow a
// Pareto(alpha) distribution with minimum 1 — a standard skewed workload
// for subset-sum sampling. Value equals Weight so that PPS sampling is
// near-optimal, matching the setting of the priority-sampling experiments.
func ParetoWeights(n int, alpha float64, seed uint64) []WeightedItem {
	rng := NewRNG(seed)
	out := make([]WeightedItem, n)
	for i := range out {
		w := math.Pow(1-rng.Float64(), -1/alpha)
		out[i] = WeightedItem{Key: uint64(i), Weight: w, Value: w}
	}
	return out
}

// UniformWeights generates n items with weights uniform on (0, 1] and
// Value = Weight.
func UniformWeights(n int, seed uint64) []WeightedItem {
	rng := NewRNG(seed)
	out := make([]WeightedItem, n)
	for i := range out {
		w := rng.Open01()
		out[i] = WeightedItem{Key: uint64(i), Weight: w, Value: w}
	}
	return out
}
